// Command pgakv answers a single question with the full PG&AKV pipeline
// and prints the intermediate artefacts (pseudo-graph, retrieved subjects,
// gold graph, fixed graph), which is the quickest way to see the method's
// anatomy on a concrete input.
//
// Usage:
//
//	pgakv -q "Where was <person> born?" [-kg wikidata|freebase] [-model gpt4]
//	pgakv -list 5            # print 5 sample questions to try
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/kg"
)

func main() {
	question := flag.String("q", "", "question to answer")
	kgSource := flag.String("kg", "wikidata", "KG source: wikidata|freebase")
	model := flag.String("model", "gpt3.5", "model grade: gpt3.5|gpt4")
	list := flag.Int("list", 0, "print N sample questions from each dataset and exit")
	quick := flag.Bool("quick", true, "use the small environment (fast startup)")
	asJSON := flag.Bool("json", false, "emit the trace as JSON instead of text")
	flag.Parse()

	if err := run(*question, *kgSource, *model, *list, *quick, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "pgakv:", err)
		os.Exit(1)
	}
}

func run(question, kgSource, model string, list int, quick, asJSON bool) error {
	cfg := bench.DefaultEnvConfig()
	if quick {
		cfg = bench.QuickEnvConfig()
	}
	env, err := bench.NewEnv(cfg)
	if err != nil {
		return err
	}

	if list > 0 {
		for _, ds := range env.Suite.Datasets() {
			fmt.Printf("%s:\n", ds.Name)
			n := list
			if n > len(ds.Questions) {
				n = len(ds.Questions)
			}
			for _, q := range ds.Questions[:n] {
				fmt.Printf("  %s\n", q.Text)
			}
		}
		return nil
	}
	if question == "" {
		return fmt.Errorf("provide -q \"question\" (or -list N for samples)")
	}

	src, err := kg.ParseSource(kgSource)
	if err != nil {
		return err
	}
	modelName := bench.ModelGPT35
	if model == "gpt4" || model == "gpt-4" {
		modelName = bench.ModelGPT4
	}
	p, err := env.Pipeline(modelName, src)
	if err != nil {
		return err
	}
	res, err := p.Answer(question)
	if err != nil {
		return err
	}
	if asJSON {
		return writeTraceJSON(os.Stdout, question, modelName, src.String(), res)
	}

	tr := res.Trace
	fmt.Printf("question: %s\nmodel: %s   kg: %s\n\n", question, modelName, src)
	fmt.Println("--- step 1: pseudo-graph (Gp) ---")
	if tr.PseudoErr != nil {
		fmt.Printf("cypher decode failed: %v\n", tr.PseudoErr)
	}
	fmt.Println(tr.Gp)
	fmt.Println("\n--- steps 2-3: pruned subjects ---")
	for _, sc := range tr.Kept {
		fmt.Printf("  %-30s confidence=%.3f triples=%d\n", sc.Subject, sc.Confidence, sc.Triples)
	}
	fmt.Println("\n--- gold graph (Gg) ---")
	fmt.Println(tr.Gg)
	fmt.Println("\n--- step 4: fixed graph (Gf) ---")
	fmt.Println(tr.Gf)
	fmt.Println("\n--- step 5: answer ---")
	fmt.Println(res.Answer)
	fmt.Printf("\n(LLM calls: %d)\n", tr.LLMCalls)
	return nil
}

// traceJSON is the machine-readable form of one pipeline run.
type traceJSON struct {
	Question  string     `json:"question"`
	Model     string     `json:"model"`
	KG        string     `json:"kg"`
	Answer    string     `json:"answer"`
	Gp        []string   `json:"gp"`
	Kept      []keptJSON `json:"kept_subjects"`
	Gg        []string   `json:"gg"`
	Gf        []string   `json:"gf"`
	LLMCalls  int        `json:"llm_calls"`
	PseudoErr string     `json:"pseudo_error,omitempty"`
}

type keptJSON struct {
	Subject    string  `json:"subject"`
	Confidence float64 `json:"confidence"`
	Triples    int     `json:"triples"`
}

func writeTraceJSON(w io.Writer, question, model, src string, res core.Result) error {
	tr := res.Trace
	doc := traceJSON{
		Question: question, Model: model, KG: src,
		Answer: res.Answer, LLMCalls: tr.LLMCalls,
	}
	for _, t := range tr.Gp.Triples {
		doc.Gp = append(doc.Gp, t.String())
	}
	for _, t := range tr.Gg.Triples {
		doc.Gg = append(doc.Gg, t.String())
	}
	for _, t := range tr.Gf.Triples {
		doc.Gf = append(doc.Gf, t.String())
	}
	for _, sc := range tr.Kept {
		doc.Kept = append(doc.Kept, keptJSON{sc.Subject, sc.Confidence, sc.Triples})
	}
	if tr.PseudoErr != nil {
		doc.PseudoErr = tr.PseudoErr.Error()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
