// Command pgakv answers a single question with any registered method —
// the full PG&AKV pipeline by default — and prints the intermediate
// artefacts (pseudo-graph, retrieved subjects, gold graph, fixed graph)
// when the method produces a trace. It is the quickest way to see a
// method's anatomy on a concrete input.
//
// Usage:
//
//	pgakv -q "Where was <person> born?" [-method ours|io|cot|sc|rag|tog] [-kg wikidata|freebase] [-model gpt4]
//	pgakv -list 5            # print 5 sample questions to try
//	pgakv -methods           # list the registered methods
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/answer"
	"repro/internal/bench"
	"repro/internal/kg"
)

func main() {
	question := flag.String("q", "", "question to answer")
	method := flag.String("method", "ours", "method from the answer registry (see -methods)")
	kgSource := flag.String("kg", "wikidata", "KG source: wikidata|freebase")
	model := flag.String("model", "gpt3.5", "model grade: gpt3.5|gpt4")
	anchor := flag.String("anchor", "", "gold topic entity for anchor-based methods (tog)")
	list := flag.Int("list", 0, "print N sample questions from each dataset and exit")
	methods := flag.Bool("methods", false, "list registered methods and exit")
	quick := flag.Bool("quick", true, "use the small environment (fast startup)")
	asJSON := flag.Bool("json", false, "emit the result as JSON instead of text")
	timeout := flag.Duration("timeout", 0, "per-question deadline (0 = none)")
	flag.Parse()

	if err := run(*question, *method, *kgSource, *model, *anchor, *list, *methods, *quick, *asJSON, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "pgakv:", err)
		os.Exit(1)
	}
}

func run(question, method, kgSource, model, anchor string, list int, methods, quick, asJSON bool, timeout time.Duration) error {
	if methods {
		for _, name := range answer.Names() {
			desc, _ := answer.Describe(name)
			fmt.Printf("%-8s %s\n", name, desc)
		}
		return nil
	}

	cfg := bench.DefaultEnvConfig()
	if quick {
		cfg = bench.QuickEnvConfig()
	}
	env, err := bench.NewEnv(cfg)
	if err != nil {
		return err
	}

	if list > 0 {
		for _, ds := range env.Suite.Datasets() {
			fmt.Printf("%s:\n", ds.Name)
			n := list
			if n > len(ds.Questions) {
				n = len(ds.Questions)
			}
			for _, q := range ds.Questions[:n] {
				fmt.Printf("  %s\n", q.Text)
			}
		}
		return nil
	}
	if question == "" {
		return fmt.Errorf("provide -q \"question\" (or -list N for samples, -methods for methods)")
	}

	src, err := kg.ParseSource(kgSource)
	if err != nil {
		return err
	}
	modelName := bench.ModelGPT35
	if model == "gpt4" || model == "gpt-4" {
		modelName = bench.ModelGPT4
	}
	ans, err := env.Answerer(method, modelName, src)
	if err != nil {
		return err
	}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	q := answer.Query{Text: question, Method: method, Model: modelName}
	if anchor != "" {
		q.Anchors = []string{anchor}
	}
	res, err := ans.Answer(ctx, q)
	if err != nil {
		return fmt.Errorf("%s (class %s)", err, answer.Classify(err))
	}
	if asJSON {
		return writeResultJSON(os.Stdout, question, modelName, src.String(), res)
	}

	fmt.Printf("question: %s\nmethod: %s   model: %s   kg: %s\n\n", question, res.Method, modelName, src)
	if tr := res.Trace; tr != nil {
		fmt.Println("--- step 1: pseudo-graph (Gp) ---")
		if tr.PseudoErr != nil {
			fmt.Printf("cypher decode failed: %v\n", tr.PseudoErr)
		}
		fmt.Println(tr.Gp)
		fmt.Println("\n--- steps 2-3: pruned subjects ---")
		for _, sc := range tr.Kept {
			fmt.Printf("  %-30s confidence=%.3f triples=%d\n", sc.Subject, sc.Confidence, sc.Triples)
		}
		if tr.Gg != nil {
			fmt.Println("\n--- gold graph (Gg) ---")
			fmt.Println(tr.Gg)
		}
		if tr.Gf != nil {
			fmt.Println("\n--- step 4: fixed graph (Gf) ---")
			fmt.Println(tr.Gf)
		}
		fmt.Println("\n--- answer ---")
	} else {
		fmt.Println("--- answer ---")
	}
	fmt.Println(res.Answer)
	fmt.Printf("\n(LLM calls: %d, tokens: %d prompt / %d completion, elapsed: %v)\n",
		res.LLMCalls, res.PromptTokens, res.CompletionTokens, res.Elapsed.Round(time.Microsecond))
	return nil
}

// resultJSON is the machine-readable form of one run.
type resultJSON struct {
	Question         string     `json:"question"`
	Method           string     `json:"method"`
	Model            string     `json:"model"`
	KG               string     `json:"kg"`
	Answer           string     `json:"answer"`
	Gp               []string   `json:"gp,omitempty"`
	Kept             []keptJSON `json:"kept_subjects,omitempty"`
	Gg               []string   `json:"gg,omitempty"`
	Gf               []string   `json:"gf,omitempty"`
	LLMCalls         int        `json:"llm_calls"`
	PromptTokens     int        `json:"prompt_tokens"`
	CompletionTokens int        `json:"completion_tokens"`
	ElapsedMS        int64      `json:"elapsed_ms"`
	PseudoErr        string     `json:"pseudo_error,omitempty"`
}

type keptJSON struct {
	Subject    string  `json:"subject"`
	Confidence float64 `json:"confidence"`
	Triples    int     `json:"triples"`
}

func writeResultJSON(w io.Writer, question, model, src string, res answer.Result) error {
	doc := resultJSON{
		Question: question, Method: res.Method, Model: model, KG: src,
		Answer: res.Answer, LLMCalls: res.LLMCalls,
		PromptTokens: res.PromptTokens, CompletionTokens: res.CompletionTokens,
		ElapsedMS: res.Elapsed.Milliseconds(),
	}
	if tr := res.Trace; tr != nil {
		if tr.Gp != nil {
			for _, t := range tr.Gp.Triples {
				doc.Gp = append(doc.Gp, t.String())
			}
		}
		if tr.Gg != nil {
			for _, t := range tr.Gg.Triples {
				doc.Gg = append(doc.Gg, t.String())
			}
		}
		if tr.Gf != nil {
			for _, t := range tr.Gf.Triples {
				doc.Gf = append(doc.Gf, t.String())
			}
		}
		for _, sc := range tr.Kept {
			doc.Kept = append(doc.Kept, keptJSON{sc.Subject, sc.Confidence, sc.Triples})
		}
		if tr.PseudoErr != nil {
			doc.PseudoErr = tr.PseudoErr.Error()
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
