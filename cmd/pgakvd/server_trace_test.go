package main

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/serve"
	"repro/internal/trace"
)

var (
	traceEnvOnce sync.Once
	traceEnvVal  *bench.Env
	traceEnvErr  error
	traceEnvDir  string
)

// tracedEnv builds one small environment with a file-backed trace store,
// shared by the trace-route tests (records accumulate; tests tolerate
// pre-existing ones).
func tracedEnv(t *testing.T) *bench.Env {
	t.Helper()
	traceEnvOnce.Do(func() {
		dir, err := filepath.Abs(t.TempDir())
		if err != nil {
			traceEnvErr = err
			return
		}
		traceEnvDir = dir
		store, err := trace.NewFileStore(dir)
		if err != nil {
			traceEnvErr = err
			return
		}
		cfg := bench.QuickEnvConfig()
		cfg.Data.SimpleN = 6
		cfg.Data.QALDN = 4
		cfg.Data.NatureN = 2
		cfg.Cache = serve.CacheConfig{Size: 256, TTL: time.Hour}
		cfg.Trace = store
		traceEnvVal, traceEnvErr = bench.NewEnv(cfg)
	})
	if traceEnvErr != nil {
		t.Fatal(traceEnvErr)
	}
	return traceEnvVal
}

func TestTraceRoutesEndToEnd(t *testing.T) {
	h := NewServer(tracedEnv(t), 30*time.Second).Handler()

	// Answer one question twice: the second run hits the cache, so the
	// store ends up with one miss record and one hit record for it.
	for i := 0; i < 2; i++ {
		rec := postJSON(t, h, "/v1/answer", map[string]any{"question": "who wrote Hamlet?", "method": "io"})
		if rec.Code != http.StatusOK {
			t.Fatalf("answer status %d: %s", rec.Code, rec.Body.String())
		}
	}

	// List: both records present, newest first, with the replay-critical
	// fields (epoch, cache_hit) serialized.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/traces?method=io", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("list status %d: %s", rec.Code, rec.Body.String())
	}
	list := decode[struct {
		Traces []map[string]any `json:"traces"`
		Stats  trace.StoreStats `json:"stats"`
	}](t, rec)
	if len(list.Traces) < 2 {
		t.Fatalf("want >=2 io traces, got %d", len(list.Traces))
	}
	newest, prior := list.Traces[0], list.Traces[1]
	if newest["cache_hit"] != true {
		t.Errorf("newest record should be the cache hit: %v", newest)
	}
	if prior["cache_hit"] != false {
		t.Errorf("prior record should be the miss: %v", prior)
	}
	for _, rec := range []map[string]any{newest, prior} {
		if _, ok := rec["epoch"]; !ok {
			t.Errorf("epoch missing from summary: %v", rec)
		}
		if rec["method"] != "io" || rec["question"] != "who wrote Hamlet?" {
			t.Errorf("identity wrong: %v", rec)
		}
	}
	if list.Stats.Records < 2 || list.Stats.Path == "" {
		t.Errorf("store stats not surfaced: %+v", list.Stats)
	}

	// Fetch the full record by id.
	id, _ := newest["id"].(string)
	if id == "" {
		t.Fatalf("summary has no id: %v", newest)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/traces/"+id, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("get status %d: %s", rec.Code, rec.Body.String())
	}
	full := decode[trace.Record](t, rec)
	if full.ID != id || full.Question != "who wrote Hamlet?" || !full.CacheHit {
		t.Errorf("full record wrong: %+v", full)
	}

	// Unknown id is a 404 with the standard error envelope.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/traces/t999999", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("missing id status %d, want 404", rec.Code)
	}

	// Metrics surfaces the store stats.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	metrics := decode[struct {
		Traces        trace.StoreStats `json:"traces"`
		TracesEnabled bool             `json:"traces_enabled"`
	}](t, rec)
	if !metrics.TracesEnabled || metrics.Traces.Records < 2 {
		t.Errorf("metrics trace stats wrong: %+v", metrics)
	}
}

func TestTraceRoutesLimitValidation(t *testing.T) {
	h := NewServer(tracedEnv(t), 30*time.Second).Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/traces?limit=bogus", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bogus limit status %d, want 400", rec.Code)
	}
}

func TestTraceRoutesDisabledWithoutStore(t *testing.T) {
	// The shared untraced environment: both routes refuse with 404 and a
	// hint, rather than returning empty lists that look like data.
	h := testHandler(t)
	for _, path := range []string{"/v1/traces", "/v1/traces/t000001"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusNotFound {
			t.Errorf("%s status %d, want 404", path, rec.Code)
		}
		if body := decode[errorResponse](t, rec); body.Error == "" {
			t.Errorf("%s: no error message", path)
		}
	}
}
