package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/serve"
	"repro/internal/world"
)

var (
	cachedEnvOnce sync.Once
	cachedEnvVal  *bench.Env
	cachedEnvErr  error
)

// cachedEnv builds a small environment with the serving cache enabled —
// the configuration pgakvd runs with by default.
func cachedEnv(t *testing.T) *bench.Env {
	t.Helper()
	cachedEnvOnce.Do(func() {
		cfg := bench.QuickEnvConfig()
		cfg.Data.SimpleN = 10
		cfg.Data.QALDN = 6
		cfg.Data.NatureN = 4
		cfg.Cache = serve.CacheConfig{Size: 256, TTL: time.Hour}
		cachedEnvVal, cachedEnvErr = bench.NewEnv(cfg)
	})
	if cachedEnvErr != nil {
		t.Fatal(cachedEnvErr)
	}
	return cachedEnvVal
}

// TestAnswerCacheHitHeaderAndLatency is the serving acceptance criterion:
// a repeated /v1/answer query returns X-Cache: hit and is at least 10x
// faster than the cold run.
func TestAnswerCacheHitHeaderAndLatency(t *testing.T) {
	env := cachedEnv(t)
	h := NewServer(env, 30*time.Second).Handler()
	person := env.World.Entities[env.World.OfKind(world.KindPerson)[0]]
	req := answerRequest{
		queryItem: queryItem{Question: "Where was " + person.Name + " born?"},
		Method:    "ours",
	}

	coldStart := time.Now()
	rec := postJSON(t, h, "/v1/answer", req)
	cold := time.Since(coldStart)
	if rec.Code != http.StatusOK {
		t.Fatalf("cold: status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("cold X-Cache = %q, want miss", got)
	}
	coldOut := decode[answerResponse](t, rec)

	// Sample several warm requests and take the fastest to keep scheduler
	// noise out of the ratio.
	warm := time.Hour
	var warmOut answerResponse
	for i := 0; i < 5; i++ {
		warmStart := time.Now()
		rec = postJSON(t, h, "/v1/answer", req)
		if d := time.Since(warmStart); d < warm {
			warm = d
		}
		if rec.Code != http.StatusOK {
			t.Fatalf("warm: status %d: %s", rec.Code, rec.Body.String())
		}
		if got := rec.Header().Get("X-Cache"); got != "hit" {
			t.Fatalf("warm X-Cache = %q, want hit", got)
		}
		warmOut = decode[answerResponse](t, rec)
	}
	if warmOut.Answer != coldOut.Answer {
		t.Fatalf("cached answer %q != cold answer %q", warmOut.Answer, coldOut.Answer)
	}
	if warm*10 > cold {
		t.Errorf("warm %v not >=10x faster than cold %v", warm, cold)
	}
}

// TestMetricsEndpoint: /v1/metrics reports per-method counts, latency and
// cache stats after traffic.
func TestMetricsEndpoint(t *testing.T) {
	env := cachedEnv(t)
	h := NewServer(env, 30*time.Second).Handler()
	city := env.World.Entities[env.World.OfKind(world.KindCity)[0]]
	req := answerRequest{
		queryItem: queryItem{Question: "What is the population of " + city.Name + "?"},
		Method:    "cot",
	}
	for i := 0; i < 3; i++ {
		if rec := postJSON(t, h, "/v1/answer", req); rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: status %d: %s", rec.Code, rec.Body.String())
	}
	var out metricsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if !out.CacheEnabled {
		t.Fatal("cache_enabled should be true")
	}
	if out.Cache.Hits < 2 {
		t.Errorf("cache stats %+v, want >= 2 hits", out.Cache)
	}
	var cot *serve.MethodSnapshot
	for i := range out.Methods {
		if out.Methods[i].Method == "cot" {
			cot = &out.Methods[i]
		}
	}
	if cot == nil {
		t.Fatalf("no cot metrics in %+v", out.Methods)
	}
	if cot.Count < 3 || cot.CacheHits < 2 {
		t.Errorf("cot snapshot %+v", cot)
	}
	if cot.LLMCalls < 1 {
		t.Errorf("cot should have real LLM cost from the cold run: %+v", cot)
	}
	if len(cot.Latency.Buckets) == 0 {
		t.Errorf("cot latency snapshot empty: %+v", cot.Latency)
	}
}

// TestMetricsEndpointEmpty: a fresh server serves an empty-but-valid
// metrics document.
func TestMetricsEndpointEmpty(t *testing.T) {
	cfg := bench.QuickEnvConfig()
	cfg.Data.SimpleN = 2
	cfg.Data.QALDN = 2
	cfg.Data.NatureN = 2
	env, err := bench.NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := NewServer(env, time.Second).Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var out metricsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Methods == nil || len(out.Methods) != 0 {
		t.Errorf("methods = %v, want empty list", out.Methods)
	}
	if out.CacheEnabled {
		t.Error("cache should be off in a default quick env")
	}
}

// TestAnswerNoCacheHeaderWhenDisabled: with caching off the X-Cache header
// must be absent entirely.
func TestAnswerNoCacheHeaderWhenDisabled(t *testing.T) {
	h := testHandler(t) // shared env: cache off
	env := serverEnv(t)
	person := env.World.Entities[env.World.OfKind(world.KindPerson)[2]]
	rec := postJSON(t, h, "/v1/answer", answerRequest{
		queryItem: queryItem{Question: "Where was " + person.Name + " born?"},
		Method:    "io",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Cache"); got != "" {
		t.Errorf("X-Cache = %q, want unset when caching is disabled", got)
	}
}
