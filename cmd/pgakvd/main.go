// Command pgakvd serves the answer registry over HTTP JSON — the
// production-facing front door of the reproduction. It assembles the
// synthetic environment once at startup and then answers questions with
// any registered method over either KG schema.
//
// Usage:
//
//	pgakvd [-addr :8080] [-quick] [-seed 42] [-workers 8] [-timeout 30s]
//	       [-cache-size 4096] [-cache-ttl 5m]
//	       [-shard-size 4096] [-compact-threshold 0]
//	       [-llm-concurrency 32] [-stage-timeout 0]
//	       [-data-dir ""] [-fsync interval] [-checkpoint-interval 0]
//	       [-trace-dir ""] [-prompt-dir ""]
//	       [-rate 0] [-burst 8] [-max-inflight 0] [-max-queue 32]
//	       [-hedge-budget 0]
//
// Endpoints:
//
//	GET  /healthz
//	GET  /v1/methods
//	GET  /v1/metrics              per-method counters/latency + cache, dedup, substrate and prompt stats
//	GET  /v1/prompts              loaded prompt versions (active set, candidates, sources)
//	POST /v1/prompts/reload       re-read -prompt-dir and swap the prompt set atomically
//	GET  /v1/traces               recent recorded request traces (-trace-dir servers)
//	GET  /v1/traces/{id}          one full trace record
//	POST /v1/answer               {"question": "...", "method": "ours", "model": "gpt4"}
//	POST /v1/batch                {"method": "cot", "queries": [{"question": "..."}, ...]}
//	POST /v1/ingest               {"kg": "wikidata", "triples": [{"subject": "...", "relation": "...", "object": "..."}]}
//	POST /v1/snapshot/compact     {"kg": "wikidata"}
//	POST /v1/snapshot/checkpoint  {"kg": "wikidata"} (durable servers only)
//
// Serving middleware: every method is wrapped with per-method metrics, an
// LRU+TTL answer cache (disable with -cache-size 0; /v1/answer reports
// X-Cache: hit|miss) and singleflight dedup, so N concurrent identical
// questions cost one pipeline run.
//
// Staged execution: every method runs as a composition of exec stages;
// answer traces and /v1/metrics expose per-stage latency, LLM usage and
// error classes, and -stage-timeout bounds each stage individually. LLM
// calls flow through the shared scheduler (-llm-concurrency): bounded
// concurrency with interactive /v1/answer traffic admitted ahead of
// queued batch work. Per-request token budgets ("token_budget") are
// enforced by the answer registry independently of the scheduler, so
// they hold even with -llm-concurrency 0.
//
// Prompts: every template the methods render is a versioned .prompt file.
// The embedded defaults always load; -prompt-dir overlays operator files
// on top (same name+version replaces, new versions add). SIGHUP or POST
// /v1/prompts/reload re-reads the directory and swaps the whole set
// atomically — an invalid file rejects the reload and the current set
// keeps serving. Answer-cache keys are scoped by the active prompt
// fingerprint, so a reload that changes any active version invalidates
// every cached answer rendered under the old set. Per-request A/B:
// "prompt_versions": {"answer-graph": "2"} in an answer or batch query
// pins specific versions for that request only (candidate versions are
// loaded but never active by default). See docs/operations.md.
//
// Traffic realism: POST /v1/answer with "Accept: text/event-stream"
// streams the run as SSE — one "stage" event per completed pipeline stage,
// then the final "answer" (or "error") event; disconnecting cancels the
// run. -rate/-burst add per-client token-bucket rate limiting (keyed by
// X-API-Key, else the remote address) and -max-inflight/-max-queue add
// queue-depth load shedding: refused requests get a fast 429 with a
// Retry-After header before any pipeline or LLM work. -hedge-budget
// enables tail-latency retrieval hedging — a vector search exceeding the
// budget races a duplicate and the first result wins. All of it is
// observable in /v1/metrics (admission counters, queue depth, hedge
// launches/wins). See docs/operations.md for overload tuning.
//
// Live ingest: each KG source is a versioned substrate — a sharded,
// concurrently-searched vector index over a frozen base plus a delta of
// ingested triples. /v1/ingest publishes a new snapshot atomically (the
// epoch in every answer identifies which one served it), and
// /v1/snapshot/compact folds the delta into a fresh re-sharded base.
// Cache keys are epoch-scoped, so a swap invalidates all prior answers;
// -compact-threshold N (default 2048) compacts automatically once the
// delta holds N triples, which also bounds per-ingest publish cost — the
// delta store copy each publish makes never exceeds the threshold.
//
// Durability: with -data-dir set, every ingest batch is appended to a
// per-source write-ahead log before it is applied (-fsync
// always|interval|never picks the sync policy) and checkpoints — a
// paired (triples.nt, index.bin) snapshot — are written on compaction,
// on the -checkpoint-interval timer, and on POST
// /v1/snapshot/checkpoint. On boot the server recovers: newest valid
// checkpoint, then WAL tail replay, resuming at a non-regressed epoch so
// epoch-scoped cache keys stay correct across restarts. See
// docs/operations.md for the recovery runbook.
//
// Replication: every durable server exposes /v1/repl/info,
// /v1/repl/bootstrap (tar of the newest checkpoint) and /v1/repl/stream
// (the WAL record chain from a requested epoch, then live appends).
// Starting with -replica-of http://primary:8080 (requires -data-dir)
// makes this node a read replica: at boot it bootstraps any source
// whose local state is behind the primary's checkpoint horizon, then
// streams and applies WAL records through the normal ingest path at
// exactly the primary's epochs — so the epoch in an answer means the
// same content on every node. Replicas reject POST /v1/ingest with a
// 307 to the primary and report applied/head epochs, lag and reconnect
// counts under "replication" in /v1/metrics. cmd/pgakvlb load-balances
// reads across replicas and forwards writes to the primary. See
// docs/operations.md for the replication runbook.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/prompts"
	"repro/internal/repl"
	"repro/internal/serve"
	"repro/internal/substrate"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	quick := flag.Bool("quick", false, "use the small test-scale environment (fast startup)")
	seed := flag.Int64("seed", 42, "world/model seed")
	workers := flag.Int("workers", 8, "default batch parallelism")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request deadline (0 = none)")
	cacheSize := flag.Int("cache-size", 4096, "answer cache capacity (0 disables caching and singleflight)")
	cacheTTL := flag.Duration("cache-ttl", 5*time.Minute, "answer cache entry lifetime (0 = no expiry)")
	shardSize := flag.Int("shard-size", 0, "vector-index segment size (0 = vecstore default)")
	compactThreshold := flag.Int("compact-threshold", 2048, "auto-compact when a delta reaches this many triples (0 = manual only; the default bounds per-ingest publish cost)")
	llmConcurrency := flag.Int("llm-concurrency", 32, "max in-flight LLM calls across all traffic; interactive /v1/answer requests preempt queued batch work when saturated (0 = unbounded)")
	stageTimeout := flag.Duration("stage-timeout", 0, "per-stage deadline inside every method run (0 = only the request timeout applies)")
	dataDir := flag.String("data-dir", "", "persist ingested triples under this directory (WAL + checkpoints, one subdirectory per KG source); empty = memory-only, a restart drops post-boot facts")
	traceDir := flag.String("trace-dir", "", "record every answered request as a JSONL trace under this directory (serves GET /v1/traces); empty = tracing off")
	promptDir := flag.String("prompt-dir", "", "overlay .prompt files from this directory on the embedded defaults; SIGHUP or POST /v1/prompts/reload re-reads it (empty = embedded prompts only)")
	fsync := flag.String("fsync", "interval", "WAL sync policy: always (fsync per ingest), interval (background fsync, default), never (OS decides)")
	checkpointInterval := flag.Duration("checkpoint-interval", 0, "write a checkpoint on this timer in addition to compactions and /v1/snapshot/checkpoint (0 = no timer)")
	rate := flag.Float64("rate", 0, "per-client request rate limit on /v1/answer and /v1/batch, in requests/second keyed by X-API-Key or remote address (0 = no rate limiting)")
	burst := flag.Int("burst", 8, "per-client token-bucket burst size (only meaningful with -rate > 0)")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrently served answer/batch requests; arrivals past it queue, then shed with a fast 429 (0 = unbounded)")
	maxQueue := flag.Int("max-queue", 32, "max requests waiting for an in-flight slot before load shedding begins (only meaningful with -max-inflight > 0)")
	hedgeBudget := flag.Duration("hedge-budget", 0, "retrieval tail-latency budget: a vector search exceeding it launches a hedged duplicate and the first result wins (0 = no hedging)")
	ann := flag.Bool("ann", false, "serve vector retrieval through an HNSW graph over each substrate's compacted base (deltas stay exact-scan until the next compaction); off = exact scans only")
	annEf := flag.Int("ann-ef", 0, "HNSW search beam width; wider = better recall, slower (0 = vecstore default; only meaningful with -ann)")
	replicaOf := flag.String("replica-of", "", "run as a read replica of this primary base URL (e.g. http://host:8080): bootstrap from its checkpoints, stream and apply its WAL, redirect local ingests to it; requires -data-dir")
	flag.Parse()

	if *replicaOf != "" && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "pgakvd: -replica-of requires -data-dir (replicas persist their own WAL and checkpoints)")
		os.Exit(1)
	}

	fsyncPolicy, err := substrate.ParseSyncPolicy(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pgakvd:", err)
		os.Exit(1)
	}
	cache := serve.CacheConfig{Size: *cacheSize, TTL: *cacheTTL}
	sub := substrate.Config{
		ShardSize:        *shardSize,
		CompactThreshold: *compactThreshold,
		Replica:          *replicaOf != "",
		Durability: substrate.Durability{
			Dir:                *dataDir,
			Fsync:              fsyncPolicy,
			CheckpointInterval: *checkpointInterval,
		},
		ANN: substrate.ANNConfig{
			Enabled:  *ann,
			EfSearch: *annEf,
		},
	}
	admission := serve.AdmissionConfig{
		Limiter:     serve.LimiterConfig{Rate: *rate, Burst: *burst},
		MaxInFlight: *maxInFlight,
		MaxQueue:    *maxQueue,
	}
	if err := run(*addr, *quick, *seed, *workers, *timeout, cache, sub, *llmConcurrency, *stageTimeout, *traceDir, *promptDir, admission, *hedgeBudget, *replicaOf); err != nil {
		fmt.Fprintln(os.Stderr, "pgakvd:", err)
		os.Exit(1)
	}
}

func run(addr string, quick bool, seed int64, workers int, timeout time.Duration, cache serve.CacheConfig, sub substrate.Config, llmConcurrency int, stageTimeout time.Duration, traceDir, promptDir string, admission serve.AdmissionConfig, hedgeBudget time.Duration, replicaOf string) error {
	cfg := bench.DefaultEnvConfig()
	if quick {
		cfg = bench.QuickEnvConfig()
	}
	cfg.WorldSeed = seed
	cfg.Workers = workers
	cfg.Cache = cache
	cfg.Substrate = sub
	cfg.LLMConcurrency = llmConcurrency
	cfg.Core.StageTimeout = stageTimeout
	cfg.Core.HedgeBudget = hedgeBudget
	reg := prompts.NewRegistry()
	if promptDir != "" {
		if err := reg.LoadDir(promptDir); err != nil {
			return fmt.Errorf("loading prompts: %w", err)
		}
	}
	cfg.Prompts = reg
	fmt.Printf("prompts active: %s\n", reg.Fingerprint())
	if traceDir != "" {
		store, err := trace.NewFileStore(traceDir)
		if err != nil {
			return fmt.Errorf("opening trace store: %w", err)
		}
		defer store.Close()
		cfg.Trace = store
		stats := store.Stats()
		fmt.Printf("tracing to %s (%d existing record(s), %d dropped on recovery)\n", stats.Path, stats.Records, stats.Dropped)
	}

	if replicaOf != "" {
		// Pre-flight: a source whose local state is behind the primary's
		// checkpoint horizon can never catch up over the WAL stream (the
		// primary truncated the log at the checkpoint epoch), so fetch the
		// checkpoint tarball now. Boot recovery below validates and loads
		// it exactly like a locally written checkpoint.
		bctx, bcancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer bcancel()
		client := &http.Client{Timeout: 5 * time.Minute}
		for _, src := range []string{"wikidata", "freebase"} {
			res, err := repl.BootstrapIfBehind(bctx, client, replicaOf, src, filepath.Join(sub.Durability.Dir, src))
			if err != nil {
				return fmt.Errorf("replica bootstrap (%s): %w", src, err)
			}
			if res.Fetched {
				fmt.Printf("replica bootstrap: fetched %s checkpoint at epoch %d from %s\n", src, res.Epoch, replicaOf)
			}
		}
	}

	start := time.Now()
	env, err := bench.NewEnv(cfg)
	if err != nil {
		return err
	}
	defer env.Close()
	fmt.Printf("environment ready in %v: %s\n", time.Since(start).Round(time.Millisecond), env.World.Stats())
	if sub.Durability.Enabled() {
		for src, mgr := range env.Substrates {
			rec := mgr.Recovery()
			checkpoint := "no checkpoint"
			if rec.CheckpointEpoch > 0 {
				checkpoint = fmt.Sprintf("recovered checkpoint epoch %d (%d triples)", rec.CheckpointEpoch, rec.CheckpointTriples)
			}
			fmt.Printf("substrate %s: durable (fsync=%s), %s, replayed %d wal record(s) (%d triples), dropped %d torn record(s)\n",
				src, sub.Durability.Fsync, checkpoint, rec.ReplayedRecords, rec.ReplayedTriples, rec.TornRecordsDropped)
		}
	}

	server := NewServer(env, timeout)
	if sub.Durability.Enabled() {
		// Every durable node serves the replication endpoints: replicas
		// mirror the primary's record chain in their own WAL, so they can
		// in turn bootstrap and feed further replicas (chained topologies).
		mgrs := make(map[string]repl.Manager, len(env.Substrates))
		for src, mgr := range env.Substrates {
			mgrs[src.String()] = mgr
		}
		server.WithReplSource(repl.NewSource(mgrs, replicaOf != ""))
	}
	if replicaOf != "" {
		actx, acancel := context.WithCancel(context.Background())
		defer acancel()
		var appliers []*repl.Applier
		for src, mgr := range env.Substrates {
			a, err := repl.NewApplier(repl.ApplierConfig{Primary: replicaOf, Source: src.String(), Manager: mgr})
			if err != nil {
				return err
			}
			appliers = append(appliers, a)
			go a.Run(actx)
		}
		server.WithReplication(replicaOf, appliers)
		fmt.Printf("replicating %d source(s) from %s\n", len(appliers), replicaOf)
	}
	if admission.Limiter.Rate > 0 || admission.MaxInFlight > 0 {
		server.WithAdmission(serve.NewAdmission(admission))
		fmt.Printf("admission control on: rate=%.1f/s burst=%d max-inflight=%d max-queue=%d\n",
			admission.Limiter.Rate, admission.Limiter.Burst, admission.MaxInFlight, admission.MaxQueue)
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           server.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("listening on %s\n", addr)
		errCh <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	for {
		select {
		case err := <-errCh:
			return err
		case <-hup:
			// Hot reload: re-read -prompt-dir and swap the prompt set
			// atomically. A bad file rejects the whole reload — the set that
			// was serving keeps serving.
			if err := env.Prompts.Reload(); err != nil {
				fmt.Fprintf(os.Stderr, "pgakvd: prompt reload failed, keeping current set: %v\n", err)
			} else {
				fmt.Printf("prompts reloaded: %s\n", env.Prompts.Fingerprint())
			}
		case sig := <-stop:
			fmt.Printf("received %v, draining...\n", sig)
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
				return err
			}
			return nil
		}
	}
}
