// Command pgakvd serves the answer registry over HTTP JSON — the
// production-facing front door of the reproduction. It assembles the
// synthetic environment once at startup and then answers questions with
// any registered method over either KG schema.
//
// Usage:
//
//	pgakvd [-addr :8080] [-quick] [-seed 42] [-workers 8] [-timeout 30s]
//
// Endpoints:
//
//	GET  /healthz
//	GET  /v1/methods
//	POST /v1/answer  {"question": "...", "method": "ours", "model": "gpt4"}
//	POST /v1/batch   {"method": "cot", "queries": [{"question": "..."}, ...]}
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/bench"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	quick := flag.Bool("quick", false, "use the small test-scale environment (fast startup)")
	seed := flag.Int64("seed", 42, "world/model seed")
	workers := flag.Int("workers", 8, "default batch parallelism")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request deadline (0 = none)")
	flag.Parse()

	if err := run(*addr, *quick, *seed, *workers, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "pgakvd:", err)
		os.Exit(1)
	}
}

func run(addr string, quick bool, seed int64, workers int, timeout time.Duration) error {
	cfg := bench.DefaultEnvConfig()
	if quick {
		cfg = bench.QuickEnvConfig()
	}
	cfg.WorldSeed = seed
	cfg.Workers = workers

	start := time.Now()
	env, err := bench.NewEnv(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("environment ready in %v: %s\n", time.Since(start).Round(time.Millisecond), env.World.Stats())

	srv := &http.Server{
		Addr:              addr,
		Handler:           NewServer(env, timeout).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("listening on %s\n", addr)
		errCh <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-stop:
		fmt.Printf("received %v, draining...\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
