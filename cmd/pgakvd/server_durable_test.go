package main

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/serve"
	"repro/internal/substrate"
)

// durableEnv builds a small cache-enabled environment persisting under
// dir with per-ingest fsyncs, so an abandoned environment (our stand-in
// for kill -9 — file descriptors vanish, no flush, no Close) leaves
// every acknowledged ingest on disk.
func durableEnv(t *testing.T, dir string) *bench.Env {
	t.Helper()
	cfg := bench.QuickEnvConfig()
	cfg.Data.SimpleN = 6
	cfg.Data.QALDN = 4
	cfg.Data.NatureN = 2
	cfg.Cache = serve.CacheConfig{Size: 256, TTL: time.Hour}
	cfg.Substrate = substrate.Config{
		ShardSize:  512,
		Durability: substrate.Durability{Dir: dir, Fsync: substrate.SyncAlways},
	}
	env, err := bench.NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// TestRecoveryEndToEnd is the durability acceptance criterion at the
// serving layer: ingest over HTTP, crash, restart on the same data dir
// — the ingested facts answer identically and the epoch never
// regresses, so epoch-scoped cache keys stay correct across restarts.
func TestRecoveryEndToEnd(t *testing.T) {
	dir := t.TempDir()
	env1 := durableEnv(t, dir)
	h1 := NewServer(env1, 30*time.Second).Handler()

	ing := postJSON(t, h1, "/v1/ingest", ingestRequest{
		KG: "wikidata",
		Triples: []tripleWire{
			{Subject: "Zorblax", Relation: "prime directive", Object: "Flumox42"},
			{Subject: "Zorblax", Relation: "homeworld", Object: "Kepler-42b"},
		},
	})
	if ing.Code != http.StatusOK {
		t.Fatalf("ingest: %d: %s", ing.Code, ing.Body.String())
	}
	question := answerRequest{
		queryItem: queryItem{Question: "What is the prime directive of Zorblax?"},
		Method:    "rag",
	}
	rec := postJSON(t, h1, "/v1/answer", question)
	if rec.Code != http.StatusOK {
		t.Fatalf("pre-crash answer: %d: %s", rec.Code, rec.Body.String())
	}
	pre := decode[answerResponse](t, rec)
	if !strings.Contains(pre.Answer, "Flumox42") {
		t.Fatalf("pre-crash answer does not use the ingested fact: %q", pre.Answer)
	}
	// Crash: env1 is abandoned without Close. SyncAlways already forced
	// the ingest records to stable storage.

	env2 := durableEnv(t, dir)
	defer env2.Close()
	h2 := NewServer(env2, 30*time.Second).Handler()
	rec = postJSON(t, h2, "/v1/answer", question)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-restart answer: %d: %s", rec.Code, rec.Body.String())
	}
	post := decode[answerResponse](t, rec)
	if post.Answer != pre.Answer {
		t.Fatalf("answer changed across restart: %q -> %q", pre.Answer, post.Answer)
	}
	if post.Epoch < pre.Epoch {
		t.Fatalf("epoch regressed across restart: %d -> %d", pre.Epoch, post.Epoch)
	}

	// The restarted server keeps full serving function: re-ingest is
	// idempotent, checkpoints write on demand, and metrics report the
	// recovery.
	ing = postJSON(t, h2, "/v1/ingest", ingestRequest{
		KG:      "wikidata",
		Triples: []tripleWire{{Subject: "Zorblax", Relation: "prime directive", Object: "Flumox42"}},
	})
	if ing.Code != http.StatusOK {
		t.Fatalf("post-restart ingest: %d: %s", ing.Code, ing.Body.String())
	}
	if res := decode[ingestResponse](t, ing); res.Added != 0 || res.Skipped != 1 {
		t.Fatalf("recovered fact re-ingested as new: %+v", res)
	}
	cp := postJSON(t, h2, "/v1/snapshot/checkpoint", checkpointRequest{KG: "wikidata"})
	if cp.Code != http.StatusOK {
		t.Fatalf("checkpoint: %d: %s", cp.Code, cp.Body.String())
	}
	if res := decode[checkpointResponse](t, cp); res.Epoch < post.Epoch {
		t.Fatalf("checkpoint epoch %d below serving epoch %d", res.Epoch, post.Epoch)
	}
	stats := env2.SubstrateStats()["wikidata"]
	if !stats.Durability.Enabled || stats.Durability.Recovery.ReplayedTriples != 2 {
		t.Fatalf("durability stats do not reflect the recovery: %+v", stats.Durability)
	}
}

// TestCheckpointEndpointRequiresDurability: a memory-only server says
// so instead of 500ing.
func TestCheckpointEndpointRequiresDurability(t *testing.T) {
	env := ingestEnv(t)
	h := NewServer(env, 30*time.Second).Handler()
	rec := postJSON(t, h, "/v1/snapshot/checkpoint", checkpointRequest{KG: "wikidata"})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "-data-dir") {
		t.Fatalf("error does not point at -data-dir: %s", rec.Body.String())
	}
}
