package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/serve"
	"repro/internal/substrate"
)

var (
	ingestEnvOnce sync.Once
	ingestEnvVal  *bench.Env
	ingestEnvErr  error
)

// ingestEnv builds a small cache-enabled environment with multi-shard
// substrates — the configuration the hot-swap guarantees are about.
func ingestEnv(t *testing.T) *bench.Env {
	t.Helper()
	ingestEnvOnce.Do(func() {
		cfg := bench.QuickEnvConfig()
		cfg.Data.SimpleN = 10
		cfg.Data.QALDN = 6
		cfg.Data.NatureN = 4
		cfg.Cache = serve.CacheConfig{Size: 256, TTL: time.Hour}
		cfg.Substrate = substrate.Config{ShardSize: 512}
		ingestEnvVal, ingestEnvErr = bench.NewEnv(cfg)
	})
	if ingestEnvErr != nil {
		t.Fatal(ingestEnvErr)
	}
	return ingestEnvVal
}

// TestIngestHotSwapEndToEnd is the live-ingest acceptance criterion:
// a fact POSTed to /v1/ingest becomes answerable without a restart, the
// epoch-scoped cache never serves a stale pre-swap answer, and compaction
// preserves the fact while bumping the epoch again.
func TestIngestHotSwapEndToEnd(t *testing.T) {
	env := ingestEnv(t)
	h := NewServer(env, 30*time.Second).Handler()
	question := answerRequest{
		queryItem: queryItem{Question: "What is the prime directive of Zorblax?"},
		Method:    "rag",
	}

	// Before ingest: the substrate knows nothing about Zorblax.
	rec := postJSON(t, h, "/v1/answer", question)
	if rec.Code != http.StatusOK {
		t.Fatalf("pre-ingest answer: %d: %s", rec.Code, rec.Body.String())
	}
	pre := decode[answerResponse](t, rec)
	if strings.Contains(pre.Answer, "Flumox42") {
		t.Fatalf("fact known before ingest: %q", pre.Answer)
	}
	if pre.Epoch != 1 {
		t.Fatalf("pre-ingest epoch = %d, want 1", pre.Epoch)
	}
	// Warm the cache with the stale answer.
	if rec = postJSON(t, h, "/v1/answer", question); rec.Header().Get("X-Cache") != "hit" {
		t.Fatalf("second identical query should hit the cache, got %q", rec.Header().Get("X-Cache"))
	}

	// Ingest the fact.
	rec = postJSON(t, h, "/v1/ingest", ingestRequest{
		KG: "wikidata",
		Triples: []tripleWire{
			{Subject: "Zorblax", Relation: "prime directive", Object: "Flumox42"},
			{Subject: "Zorblax", Relation: "homeworld", Object: "Kepler-42b"},
		},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest: %d: %s", rec.Code, rec.Body.String())
	}
	ing := decode[ingestResponse](t, rec)
	if ing.Added != 2 || ing.Epoch != 2 || ing.DeltaTriples != 2 {
		t.Fatalf("ingest response: %+v", ing)
	}

	// The cached stale answer must NOT be served: the epoch scope changed,
	// so this is a miss that runs against the new snapshot and finds the
	// ingested fact — no restart, no manual invalidation.
	rec = postJSON(t, h, "/v1/answer", question)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-ingest answer: %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("post-swap query served from the stale cache (X-Cache = %q)", got)
	}
	post := decode[answerResponse](t, rec)
	if !strings.Contains(post.Answer, "Flumox42") {
		t.Fatalf("ingested fact not answerable: %q", post.Answer)
	}
	if post.Epoch != 2 {
		t.Fatalf("post-ingest epoch = %d, want 2", post.Epoch)
	}
	// The new answer caches under the new scope.
	if rec = postJSON(t, h, "/v1/answer", question); rec.Header().Get("X-Cache") != "hit" {
		t.Fatal("fresh answer did not cache under the new epoch")
	}
	if hit := decode[answerResponse](t, rec); !strings.Contains(hit.Answer, "Flumox42") {
		t.Fatalf("cached post-swap answer is stale: %q", hit.Answer)
	}

	// Re-ingesting is idempotent and does not bump the epoch.
	rec = postJSON(t, h, "/v1/ingest", ingestRequest{
		KG:      "wikidata",
		Triples: []tripleWire{{Subject: "Zorblax", Relation: "prime directive", Object: "Flumox42"}},
	})
	if again := decode[ingestResponse](t, rec); again.Added != 0 || again.Skipped != 1 || again.Epoch != 2 {
		t.Fatalf("re-ingest: %+v", again)
	}

	// Compact: the delta folds into the base, the epoch bumps, and the
	// fact survives.
	rec = postJSON(t, h, "/v1/snapshot/compact", compactRequest{KG: "wikidata"})
	if rec.Code != http.StatusOK {
		t.Fatalf("compact: %d: %s", rec.Code, rec.Body.String())
	}
	comp := decode[compactResponse](t, rec)
	if comp.Epoch != 3 || comp.DeltaTriples != 0 {
		t.Fatalf("compact response: %+v", comp)
	}
	rec = postJSON(t, h, "/v1/answer", question)
	if got := rec.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("post-compaction query hit a stale scope (X-Cache = %q)", got)
	}
	final := decode[answerResponse](t, rec)
	if !strings.Contains(final.Answer, "Flumox42") || final.Epoch != 3 {
		t.Fatalf("post-compaction answer: %+v", final)
	}

	// Metrics expose the substrate state.
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	metrics := decode[metricsResponse](t, rec2)
	wiki, ok := metrics.Substrates["wikidata"]
	if !ok {
		t.Fatal("metrics missing wikidata substrate")
	}
	if wiki.Epoch != 3 || wiki.DeltaTriples != 0 || wiki.Compactions != 1 || wiki.Ingests != 1 {
		t.Fatalf("substrate metrics: %+v", wiki)
	}
	if wiki.Shards < 2 {
		t.Fatalf("expected a multi-shard index, got %d shards", wiki.Shards)
	}
	// The freebase substrate was never touched.
	if fb := metrics.Substrates["freebase"]; fb.Epoch != 1 || fb.DeltaTriples != 0 {
		t.Fatalf("freebase substrate moved: %+v", fb)
	}
}

func TestIngestValidation(t *testing.T) {
	env := ingestEnv(t)
	h := NewServer(env, 30*time.Second).Handler()

	rec := postJSON(t, h, "/v1/ingest", ingestRequest{KG: "wikidata"})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("empty ingest: %d", rec.Code)
	}
	rec = postJSON(t, h, "/v1/ingest", ingestRequest{
		KG:      "nope",
		Triples: []tripleWire{{Subject: "a", Relation: "r", Object: "o"}},
	})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown source: %d", rec.Code)
	}
	rec = postJSON(t, h, "/v1/ingest", ingestRequest{
		KG:      "wikidata",
		Triples: []tripleWire{{Subject: "a", Relation: "", Object: "o"}},
	})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("empty-field triple: %d", rec.Code)
	}
	rec = postJSON(t, h, "/v1/snapshot/compact", compactRequest{KG: "nope"})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("compact unknown source: %d", rec.Code)
	}
	// "unknown" parses as a valid Source but has no substrate: it must be
	// a clean 400 on every route, never a nil-manager panic.
	for _, probe := range []func() int{
		func() int {
			return postJSON(t, h, "/v1/answer", answerRequest{
				queryItem: queryItem{Question: "q?"}, Method: "rag", KG: "unknown",
			}).Code
		},
		func() int {
			return postJSON(t, h, "/v1/ingest", ingestRequest{
				KG: "unknown", Triples: []tripleWire{{Subject: "a", Relation: "r", Object: "o"}},
			}).Code
		},
		func() int {
			return postJSON(t, h, "/v1/snapshot/compact", compactRequest{KG: "unknown"}).Code
		},
	} {
		if code := probe(); code != http.StatusBadRequest {
			t.Errorf("source \"unknown\": status %d, want 400", code)
		}
	}
}

// TestAnswerMidIngestConsistency hammers /v1/answer while a writer
// ingests a stream of fresh facts: every response must come back 200 with
// a coherent epoch — no partially-swapped substrate is ever observable
// through the API.
func TestAnswerMidIngestConsistency(t *testing.T) {
	env := ingestEnv(t)
	h := NewServer(env, 30*time.Second).Handler()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			rec := postJSON(t, h, "/v1/ingest", ingestRequest{
				KG:      "wikidata",
				Triples: []tripleWire{{Subject: "Streamed", Relation: "value", Object: fmt.Sprintf("v%d", i)}},
			})
			if rec.Code != http.StatusOK {
				t.Errorf("mid-stream ingest: %d: %s", rec.Code, rec.Body.String())
				return
			}
		}
	}()

	q := answerRequest{queryItem: queryItem{Question: "What is the value of Streamed?"}, Method: "rag"}
	deadline := time.Now().Add(2 * time.Second)
	answers := 0
	for time.Now().Before(deadline) {
		rec := postJSON(t, h, "/v1/answer", q)
		if rec.Code != http.StatusOK {
			t.Errorf("mid-ingest answer: %d: %s", rec.Code, rec.Body.String())
			break
		}
		res := decode[answerResponse](t, rec)
		if res.Epoch == 0 {
			t.Error("mid-ingest answer lost its epoch")
			break
		}
		answers++
	}
	close(stop)
	wg.Wait()
	if answers == 0 {
		t.Fatal("no answers served during the ingest stream")
	}
}
