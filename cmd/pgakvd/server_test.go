package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/world"
)

var (
	envOnce sync.Once
	envVal  *bench.Env
	envErr  error
)

// serverEnv builds one small environment for every handler test.
func serverEnv(t *testing.T) *bench.Env {
	t.Helper()
	envOnce.Do(func() {
		cfg := bench.QuickEnvConfig()
		cfg.Data.SimpleN = 10
		cfg.Data.QALDN = 6
		cfg.Data.NatureN = 4
		envVal, envErr = bench.NewEnv(cfg)
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

func testHandler(t *testing.T) http.Handler {
	return NewServer(serverEnv(t), 30*time.Second).Handler()
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(raw))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decode[T any](t *testing.T, rec *httptest.ResponseRecorder) T {
	t.Helper()
	var out T
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("decoding %q: %v", rec.Body.String(), err)
	}
	return out
}

func TestHealthz(t *testing.T) {
	h := testHandler(t)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if got := decode[map[string]string](t, rec); got["status"] != "ok" {
		t.Errorf("body %v", got)
	}
}

func TestMethodsListsRegistry(t *testing.T) {
	h := testHandler(t)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/methods", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Methods []struct {
			Name        string `json:"name"`
			Description string `json:"description"`
		} `json:"methods"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, m := range out.Methods {
		seen[m.Name] = true
		if m.Description == "" {
			t.Errorf("method %q has no description", m.Name)
		}
	}
	for _, want := range []string{"ours", "tog", "io", "cot", "sc", "rag"} {
		if !seen[want] {
			t.Errorf("methods missing %q (have %v)", want, seen)
		}
	}
}

// TestAnswerRoundTripAllMethods is the serving half of the acceptance
// criterion: every method answers a question through POST /v1/answer.
func TestAnswerRoundTripAllMethods(t *testing.T) {
	env := serverEnv(t)
	h := testHandler(t)
	person := env.World.Entities[env.World.OfKind(world.KindPerson)[0]]
	question := "Where was " + person.Name + " born?"

	for _, method := range []string{"ours", "ours-gp", "tog", "io", "cot", "sc", "rag"} {
		rec := postJSON(t, h, "/v1/answer", answerRequest{
			queryItem: queryItem{Question: question, Anchors: []string{person.Name}},
			Method:    method,
			Model:     "gpt4",
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", method, rec.Code, rec.Body.String())
		}
		out := decode[answerResponse](t, rec)
		if out.Answer == "" || out.Method != method || out.LLMCalls < 1 {
			t.Errorf("%s: bad response %+v", method, out)
		}
		if out.Model != bench.ModelGPT4 {
			t.Errorf("%s: model %q", method, out.Model)
		}
	}
}

func TestAnswerIncludesTraceOnRequest(t *testing.T) {
	env := serverEnv(t)
	h := testHandler(t)
	city := env.World.Entities[env.World.OfKind(world.KindCity)[0]]
	rec := postJSON(t, h, "/v1/answer", answerRequest{
		queryItem:    queryItem{Question: "What is the population of " + city.Name + "?"},
		Method:       "ours",
		IncludeTrace: true,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	out := decode[answerResponse](t, rec)
	if out.Trace == nil {
		t.Fatal("trace missing despite include_trace")
	}
}

func TestAnswerUnknownMethod(t *testing.T) {
	h := testHandler(t)
	rec := postJSON(t, h, "/v1/answer", answerRequest{
		queryItem: queryItem{Question: "q?"},
		Method:    "no-such-method",
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", rec.Code, rec.Body.String())
	}
	out := decode[errorResponse](t, rec)
	if out.Class != "unknown-method" {
		t.Errorf("class %q", out.Class)
	}
}

func TestAnswerBadInputs(t *testing.T) {
	h := testHandler(t)
	for name, tc := range map[string]answerRequest{
		"empty question": {Method: "io"},
		"bad model":      {queryItem: queryItem{Question: "q?"}, Model: "gpt-99"},
		"bad kg":         {queryItem: queryItem{Question: "q?"}, KG: "dbpedia"},
	} {
		rec := postJSON(t, h, "/v1/answer", tc)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, rec.Code, rec.Body.String())
		}
	}
	// Malformed JSON body.
	req := httptest.NewRequest(http.MethodPost, "/v1/answer", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", rec.Code)
	}
}

func TestAnswerDeadline(t *testing.T) {
	h := testHandler(t)
	// An unreasonably small timeout must surface as a deadline failure.
	rec := postJSON(t, h, "/v1/answer", answerRequest{
		queryItem: queryItem{Question: "q?"},
		Method:    "ours",
		TimeoutMS: 1,
	})
	if rec.Code == http.StatusOK {
		t.Skip("environment fast enough to beat a 1ms deadline")
	}
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body.String())
	}
	out := decode[errorResponse](t, rec)
	if out.Class != "deadline" {
		t.Errorf("class %q", out.Class)
	}
}

func TestBatchRoundTripWithPartialFailure(t *testing.T) {
	env := serverEnv(t)
	h := testHandler(t)
	person := env.World.Entities[env.World.OfKind(world.KindPerson)[1]]
	rec := postJSON(t, h, "/v1/batch", batchRequest{
		Method:      "tog",
		Concurrency: 2,
		Queries: []queryItem{
			{Question: "Where was " + person.Name + " born?", Anchors: []string{person.Name}},
			{Question: "Where was Nobody born?"}, // no anchors: tog rejects it
			{Question: "Where was " + person.Name + " educated?", Anchors: []string{person.Name}},
		},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	out := decode[batchResponse](t, rec)
	if out.N != 3 || out.Failed != 1 {
		t.Fatalf("N=%d Failed=%d, want 3/1: %s", out.N, out.Failed, rec.Body.String())
	}
	for _, item := range out.Items {
		if item.Index == 1 {
			if item.Class != "invalid-query" || item.Error == "" {
				t.Errorf("item 1 should fail invalid-query, got %+v", item)
			}
		} else if item.Result == nil || item.Result.Answer == "" {
			t.Errorf("item %d should succeed, got %+v", item.Index, item)
		}
	}
}

func TestBatchValidation(t *testing.T) {
	h := testHandler(t)
	if rec := postJSON(t, h, "/v1/batch", batchRequest{Method: "io"}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", rec.Code)
	}
	big := batchRequest{Method: "io"}
	for i := 0; i < 300; i++ {
		big.Queries = append(big.Queries, queryItem{Question: "q?"})
	}
	if rec := postJSON(t, h, "/v1/batch", big); rec.Code != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d, want 400", rec.Code)
	}
}
