package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

// TestAnswerTraceIncludesStageSpans: the staged engine must surface one
// span per pipeline stage in the wire trace, with the LLM-bearing stages
// accounting their calls.
func TestAnswerTraceIncludesStageSpans(t *testing.T) {
	h := testHandler(t)
	rec := postJSON(t, h, "/v1/answer", map[string]any{
		"question":      "Where was X born?",
		"method":        "ours",
		"include_trace": true,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decode[answerResponse](t, rec)
	if resp.Trace == nil {
		t.Fatal("no trace returned")
	}
	stages := resp.Trace.Stages
	if len(stages) == 0 {
		t.Fatal("trace carries no stage spans")
	}
	if stages[0].Stage != core.StagePseudo {
		t.Errorf("first stage = %q, want %q", stages[0].Stage, core.StagePseudo)
	}
	var llmCalls int
	for _, sp := range stages {
		if sp.Error != "" {
			t.Errorf("stage %s failed: %s", sp.Stage, sp.Error)
		}
		llmCalls += sp.LLMCalls
	}
	if llmCalls != resp.LLMCalls {
		t.Errorf("stage spans account %d calls, response says %d", llmCalls, resp.LLMCalls)
	}
}

// TestBaselineTraceIncludesStageSpans: baselines run as compositions too.
func TestBaselineTraceIncludesStageSpans(t *testing.T) {
	h := testHandler(t)
	rec := postJSON(t, h, "/v1/answer", map[string]any{
		"question":      "Where was X born?",
		"method":        "sc",
		"include_trace": true,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decode[answerResponse](t, rec)
	if resp.Trace == nil || len(resp.Trace.Stages) != 2 {
		t.Fatalf("sc trace = %+v, want sample+aggregate spans", resp.Trace)
	}
	if resp.Trace.Stages[0].Stage != "sample" || resp.Trace.Stages[1].Stage != "aggregate" {
		t.Errorf("sc stages = %q, %q", resp.Trace.Stages[0].Stage, resp.Trace.Stages[1].Stage)
	}
	if resp.Trace.Stages[0].LLMCalls < 2 || resp.Trace.Stages[1].LLMCalls != 0 {
		t.Errorf("sc stage calls = %d/%d, want sampling to carry all calls",
			resp.Trace.Stages[0].LLMCalls, resp.Trace.Stages[1].LLMCalls)
	}
}

// TestMetricsExposeStageBreakdown: after traffic, /v1/metrics reports
// per-stage aggregates under the method.
func TestMetricsExposeStageBreakdown(t *testing.T) {
	h := testHandler(t)
	if rec := postJSON(t, h, "/v1/answer", map[string]any{
		"question": "Where was StageMetricsProbe born?",
		"method":   "ours",
	}); rec.Code != http.StatusOK {
		t.Fatalf("answer failed: %s", rec.Body.String())
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	m := decode[metricsResponse](t, rec)
	var found bool
	for _, method := range m.Methods {
		if method.Method != "ours" {
			continue
		}
		found = true
		if len(method.Stages) == 0 {
			t.Fatal("ours has no stage breakdown")
		}
		names := map[string]bool{}
		for _, st := range method.Stages {
			names[st.Stage] = true
			if st.Count < 1 {
				t.Errorf("stage %s count = %d", st.Stage, st.Count)
			}
		}
		for _, want := range []string{core.StagePseudo, core.StageRetrieve, core.StageVerify, core.StageAnswer} {
			if !names[want] {
				t.Errorf("metrics missing stage %q (have %v)", want, names)
			}
		}
	}
	if !found {
		t.Fatal("no metrics for method ours")
	}
}

// TestOversizedBodyGets413: the body cap must answer 413 with the
// too-large class, not a generic 400, and before buffering the payload.
func TestOversizedBodyGets413(t *testing.T) {
	srv := NewServer(serverEnv(t), time.Second)
	srv.maxBody = 512
	h := srv.Handler()
	big := strings.Repeat("x", 2048)
	for _, path := range []string{"/v1/answer", "/v1/batch", "/v1/ingest", "/v1/snapshot/compact"} {
		rec := postJSON(t, h, path, map[string]any{"question": big, "kg": big})
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status %d, want 413 (%s)", path, rec.Code, rec.Body.String())
			continue
		}
		if resp := decode[errorResponse](t, rec); resp.Class != "too-large" {
			t.Errorf("%s: class %q, want too-large", path, resp.Class)
		}
	}
}

var (
	schedEnvOnce sync.Once
	schedEnvVal  *bench.Env
	schedEnvErr  error
)

// schedulerEnv builds a small environment with the shared LLM scheduler
// enabled, for end-to-end flag wiring tests.
func schedulerEnv(t *testing.T) *bench.Env {
	t.Helper()
	schedEnvOnce.Do(func() {
		cfg := bench.QuickEnvConfig()
		cfg.Data.SimpleN = 4
		cfg.Data.QALDN = 2
		cfg.Data.NatureN = 2
		cfg.LLMConcurrency = 2
		schedEnvVal, schedEnvErr = bench.NewEnv(cfg)
	})
	if schedEnvErr != nil {
		t.Fatal(schedEnvErr)
	}
	return schedEnvVal
}

// TestSchedulerStatsOnMetrics: with -llm-concurrency set, serving traffic
// flows through the scheduler and /v1/metrics reports admissions.
func TestSchedulerStatsOnMetrics(t *testing.T) {
	h := NewServer(schedulerEnv(t), 30*time.Second).Handler()
	if rec := postJSON(t, h, "/v1/answer", map[string]any{
		"question": "Where was SchedProbe born?",
		"method":   "cot",
	}); rec.Code != http.StatusOK {
		t.Fatalf("answer failed: %s", rec.Body.String())
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	m := decode[metricsResponse](t, rec)
	if !m.SchedulerEnabled {
		t.Fatal("scheduler_enabled = false on a scheduled environment")
	}
	if m.Scheduler.Concurrency != 2 {
		t.Errorf("scheduler concurrency = %d, want 2", m.Scheduler.Concurrency)
	}
	// /v1/answer runs on the interactive lane.
	if m.Scheduler.AdmittedInteractive < 1 {
		t.Errorf("admitted interactive = %d, want >= 1", m.Scheduler.AdmittedInteractive)
	}
}

// TestTokenBudgetRefusal: a request whose token budget cannot cover its
// first completion is refused with HTTP 429, class budget.
func TestTokenBudgetRefusal(t *testing.T) {
	h := NewServer(schedulerEnv(t), 30*time.Second).Handler()
	rec := postJSON(t, h, "/v1/answer", map[string]any{
		"question":     "Where was BudgetProbe born?",
		"method":       "ours",
		"token_budget": 1,
	})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", rec.Code, rec.Body.String())
	}
	if resp := decode[errorResponse](t, rec); resp.Class != "budget" {
		t.Errorf("class %q, want budget", resp.Class)
	}
}
