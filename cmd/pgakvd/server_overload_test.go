package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/llm"
	"repro/internal/loadgen"
	"repro/internal/serve"
	"repro/internal/world"
)

var (
	overloadEnvOnce sync.Once
	overloadEnvVal  *bench.Env
	overloadEnvErr  error
)

// overloadEnv builds a small cache-less environment: every accepted
// request is a real pipeline run, so overload is genuine work, not
// cache hits. The GPT-4 client gets a per-call delay so service time
// dominates client-side overhead — without it the quick-scale pipeline
// finishes faster than a closed loop can pile up arrivals and the
// admission gate never saturates.
func overloadEnv(t *testing.T) *bench.Env {
	t.Helper()
	overloadEnvOnce.Do(func() {
		cfg := bench.QuickEnvConfig()
		cfg.Data.SimpleN = 10
		cfg.Data.QALDN = 6
		cfg.Data.NatureN = 4
		overloadEnvVal, overloadEnvErr = bench.NewEnv(cfg)
		if overloadEnvErr == nil {
			overloadEnvVal.Clients[bench.ModelGPT4] = delayedClient{
				inner: overloadEnvVal.Clients[bench.ModelGPT4],
				delay: 2 * time.Millisecond,
			}
		}
	})
	if overloadEnvErr != nil {
		t.Fatal(overloadEnvErr)
	}
	return overloadEnvVal
}

// delayedClient adds a fixed context-respecting latency to every LLM
// call.
type delayedClient struct {
	inner llm.Client
	delay time.Duration
}

func (c delayedClient) Name() string { return c.inner.Name() }

func (c delayedClient) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	select {
	case <-time.After(c.delay):
	case <-ctx.Done():
		return llm.Response{}, ctx.Err()
	}
	return c.inner.Complete(ctx, req)
}

// overloadQuestions samples distinct person questions so the burst is
// not a single query deduplicated away.
func overloadQuestions(env *bench.Env, n int) []string {
	people := env.World.OfKind(world.KindPerson)
	if n > len(people) {
		n = len(people)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = "Where was " + env.World.Entities[people[i]].Name + " born?"
	}
	return out
}

// TestOverloadShedsFastAndServesTheRest is the overload chaos test: a
// closed-loop burst of 16 clients hammers a server whose admission gate
// allows 2 in flight plus a queue of 2. The contract under overload:
// every refusal is a 429 carrying Retry-After (loadgen counts a missing
// header as an error), every admitted request completes, the controller's
// books balance exactly, and shedding is far cheaper than service.
func TestOverloadShedsFastAndServesTheRest(t *testing.T) {
	env := overloadEnv(t)
	admission := serve.NewAdmission(serve.AdmissionConfig{
		MaxInFlight:    2,
		MaxQueue:       2,
		RetryAfterHint: 2 * time.Second,
	})
	srv := httptest.NewServer(NewServer(env, 30*time.Second).WithAdmission(admission).Handler())
	defer srv.Close()

	res, err := loadgen.Run(t.Context(), loadgen.Config{
		BaseURL:   srv.URL,
		Method:    "ours",
		Model:     "gpt4", // the delayed client: service time dominates
		Questions: overloadQuestions(env, 32),
		Clients:   16,
		Requests:  240,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}

	if res.Errors != 0 {
		t.Fatalf("%d requests were neither served nor cleanly refused (429 without Retry-After, transport error, or 5xx)", res.Errors)
	}
	if res.Issued != 240 {
		t.Fatalf("issued %d, want 240", res.Issued)
	}
	if res.OK == 0 || res.Rejected == 0 {
		t.Fatalf("burst did not exercise both outcomes: ok=%d rejected=%d", res.OK, res.Rejected)
	}
	if res.OK+res.Rejected != res.Issued {
		t.Fatalf("ok %d + rejected %d != issued %d", res.OK, res.Rejected, res.Issued)
	}

	// The controller's books must balance with the client's view exactly:
	// no rate limiter is configured, so every 429 is a shed.
	st := admission.Stats()
	if st.Shed != res.Rejected {
		t.Fatalf("controller shed %d, clients saw %d rejections", st.Shed, res.Rejected)
	}
	if st.Admitted != res.OK {
		t.Fatalf("controller admitted %d, clients saw %d successes", st.Admitted, res.OK)
	}
	if st.Limited != 0 {
		t.Fatalf("limited = %d with no rate limiter", st.Limited)
	}
	if st.InFlight != 0 || st.QueueDepth != 0 {
		t.Fatalf("gauges not drained: %+v", st)
	}

	// Shedding must be far cheaper than service: a refused request does
	// no pipeline work. The typical refusal must sit well below the
	// typical service; the tail contract — even the shed p99 below the
	// accepted p50 — only holds in a normal build, because race-detector
	// instrumentation inflates the client-side overhead that dominates
	// sub-millisecond refusals.
	if res.Refused.P50MS >= res.Accepted.P50MS {
		t.Fatalf("shed p50 %.2fms >= accepted p50 %.2fms — refusals are not fast",
			res.Refused.P50MS, res.Accepted.P50MS)
	}
	if !raceEnabled && res.Refused.P99MS >= res.Accepted.P50MS {
		t.Fatalf("shed p99 %.2fms >= accepted p50 %.2fms — refusals are not fast",
			res.Refused.P99MS, res.Accepted.P50MS)
	}
	t.Logf("ok=%d rejected=%d accepted p50=%.2fms p99=%.2fms refused p99=%.2fms",
		res.OK, res.Rejected, res.Accepted.P50MS, res.Accepted.P99MS, res.Refused.P99MS)
}

// TestRateLimitedRequestsNeverReachTheLLM is the acceptance criterion
// that refused traffic costs zero model work: with a burst-1 limiter,
// a stream of rate-limited requests leaves the environment's LLM call
// counter exactly where the one admitted request put it.
func TestRateLimitedRequestsNeverReachTheLLM(t *testing.T) {
	env := overloadEnv(t)
	admission := serve.NewAdmission(serve.AdmissionConfig{
		// One request per 1000s: the first spends the burst, everything
		// after is refused.
		Limiter: serve.LimiterConfig{Rate: 0.001, Burst: 1},
	})
	h := NewServer(env, 30*time.Second).WithAdmission(admission).Handler()

	llmCalls := func() int64 {
		var n int64
		for _, m := range env.Metrics.Snapshot() {
			n += m.LLMCalls
		}
		return n
	}

	q := overloadQuestions(env, 8)
	body := answerRequest{queryItem: queryItem{Question: q[7]}, Method: "ours"}
	warm := postJSON(t, h, "/v1/answer", body)
	if warm.Code != http.StatusOK {
		t.Fatalf("warm request: status %d: %s", warm.Code, warm.Body.String())
	}
	after := llmCalls()
	if after == 0 {
		t.Fatal("warm request recorded no LLM calls")
	}

	for i := 0; i < 20; i++ {
		rec := postJSON(t, h, "/v1/answer", body)
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("request %d: status %d, want 429", i, rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatalf("request %d: 429 without Retry-After", i)
		}
		if got := decode[errorResponse](t, rec); got.Class != "rate-limited" {
			t.Fatalf("request %d: class %q, want rate-limited", i, got.Class)
		}
	}
	if got := llmCalls(); got != after {
		t.Fatalf("rate-limited traffic reached the LLM: calls went %d -> %d", after, got)
	}
	if st := admission.Stats(); st.Limited != 20 || st.Admitted != 1 {
		t.Fatalf("stats = %+v, want limited=20 admitted=1", st)
	}
}
