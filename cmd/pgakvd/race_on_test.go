//go:build race

package main

// raceEnabled reports whether this test binary runs under the race
// detector, whose instrumentation inflates client-side latencies enough
// to invalidate tight tail-latency assertions.
const raceEnabled = true
