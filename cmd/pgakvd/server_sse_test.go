package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/serve"
	"repro/internal/world"
)

var (
	sseEnvOnce sync.Once
	sseEnvVal  *bench.Env
	sseEnvErr  error
)

// sseEnv builds a small cache-enabled environment for the streaming
// tests. The GPT-4 client is wrapped to stall LLM calls until the
// request context dies — the handle the disconnect test uses to catch a
// run mid-flight. GPT-3.5 stays fast for the happy-path tests.
func sseEnv(t *testing.T) *bench.Env {
	t.Helper()
	sseEnvOnce.Do(func() {
		cfg := bench.QuickEnvConfig()
		cfg.Data.SimpleN = 10
		cfg.Data.QALDN = 6
		cfg.Data.NatureN = 4
		cfg.Cache = serve.CacheConfig{Size: 256, TTL: time.Hour}
		sseEnvVal, sseEnvErr = bench.NewEnv(cfg)
		if sseEnvErr == nil {
			// Injected before any GPT-4 answerer is built, so every GPT-4
			// pipeline routes its LLM calls through the stall.
			sseEnvVal.Clients[bench.ModelGPT4] = stalledClient{inner: sseEnvVal.Clients[bench.ModelGPT4]}
		}
	})
	if sseEnvErr != nil {
		t.Fatal(sseEnvErr)
	}
	return sseEnvVal
}

// stalledClient blocks every completion until the caller's context is
// cancelled, then reports the cancellation.
type stalledClient struct{ inner llm.Client }

func (c stalledClient) Name() string { return c.inner.Name() }

func (c stalledClient) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	<-ctx.Done()
	return llm.Response{}, ctx.Err()
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data []byte
}

// readSSE parses events off a stream until EOF or maxEvents.
func readSSE(t *testing.T, r io.Reader, maxEvents int) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			if cur.name != "" {
				events = append(events, cur)
				cur = sseEvent{}
				if len(events) == maxEvents {
					return events
				}
			}
		}
	}
	return events
}

// postSSE issues a streaming /v1/answer request against a live test
// server and returns the response for incremental reading.
func postSSE(t *testing.T, baseURL string, body answerRequest) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, baseURL+"/v1/answer", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestSSEStreamsStagesInPipelineOrder is the streaming happy path: a
// fresh question streams one stage event per pipeline stage, in the
// pipeline's order, before the final answer event.
func TestSSEStreamsStagesInPipelineOrder(t *testing.T) {
	env := sseEnv(t)
	srv := httptest.NewServer(NewServer(env, 30*time.Second).Handler())
	defer srv.Close()

	person := env.World.Entities[env.World.OfKind(world.KindPerson)[1]]
	resp := postSSE(t, srv.URL, answerRequest{
		queryItem: queryItem{Question: "Where was " + person.Name + " born?"},
		Method:    "ours",
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	events := readSSE(t, resp.Body, 0)
	if len(events) == 0 {
		t.Fatal("no events")
	}
	last := events[len(events)-1]
	if last.name != "answer" {
		t.Fatalf("terminal event = %q (%s), want answer", last.name, last.data)
	}
	var stages []string
	for _, ev := range events[:len(events)-1] {
		if ev.name != "stage" {
			t.Fatalf("non-stage event %q before the answer", ev.name)
		}
		var sw stageWire
		if err := json.Unmarshal(ev.data, &sw); err != nil {
			t.Fatalf("stage event %q: %v", ev.data, err)
		}
		stages = append(stages, sw.Stage)
	}
	want := []string{core.StagePseudo, core.StageRetrieve, core.StageVerify, core.StageAnswer}
	if len(stages) != len(want) {
		t.Fatalf("stages = %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("stage[%d] = %q, want %q (full: %v)", i, stages[i], want[i], stages)
		}
	}
	var ans answerResponse
	if err := json.Unmarshal(last.data, &ans); err != nil {
		t.Fatal(err)
	}
	if ans.Answer == "" || ans.Cached {
		t.Fatalf("answer event = %+v, want a fresh non-empty answer", ans)
	}
}

// TestSSECacheHitStreamsSingleAnswerEvent replays a question already in
// the answer cache: no stages run, so the stream is exactly one answer
// event, marked cached.
func TestSSECacheHitStreamsSingleAnswerEvent(t *testing.T) {
	env := sseEnv(t)
	srv := httptest.NewServer(NewServer(env, 30*time.Second).Handler())
	defer srv.Close()

	person := env.World.Entities[env.World.OfKind(world.KindPerson)[2]]
	req := answerRequest{
		queryItem: queryItem{Question: "Where was " + person.Name + " born?"},
		Method:    "ours",
	}
	// Warm the cache through the same streaming path.
	warm := postSSE(t, srv.URL, req)
	if _, err := io.Copy(io.Discard, warm.Body); err != nil {
		t.Fatal(err)
	}
	warm.Body.Close()

	resp := postSSE(t, srv.URL, req)
	defer resp.Body.Close()
	events := readSSE(t, resp.Body, 0)
	if len(events) != 1 || events[0].name != "answer" {
		var names []string
		for _, ev := range events {
			names = append(names, ev.name)
		}
		t.Fatalf("cache hit streamed %v, want exactly [answer]", names)
	}
	var ans answerResponse
	if err := json.Unmarshal(events[0].data, &ans); err != nil {
		t.Fatal(err)
	}
	if !ans.Cached {
		t.Fatalf("answer event = %+v, want cached=true", ans)
	}
}

// TestSSEDisconnectCancelsPipeline is the cancellation path: the client
// drops the stream while the first stage is still blocked on the LLM,
// and the in-flight run must die with it — observed as a "canceled"
// error landing in the method's serving metrics.
func TestSSEDisconnectCancelsPipeline(t *testing.T) {
	env := sseEnv(t)
	srv := httptest.NewServer(NewServer(env, 30*time.Second).Handler())
	defer srv.Close()

	canceledCount := func() int64 {
		var n int64
		for _, m := range env.Metrics.Snapshot() {
			n += m.ErrorsByClass["canceled"]
		}
		return n
	}
	before := canceledCount()

	person := env.World.Entities[env.World.OfKind(world.KindPerson)[3]]
	resp := postSSE(t, srv.URL, answerRequest{
		queryItem: queryItem{Question: "Where was " + person.Name + " born?"},
		Method:    "ours",
		Model:     "gpt4", // the stalled client: the run blocks until cancelled
	})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	// Headers are flushed before the run starts, so the server is now
	// blocked inside the pipeline's first LLM call. Hang up mid-stream.
	time.Sleep(50 * time.Millisecond)
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for canceledCount() == before {
		if time.Now().After(deadline) {
			t.Fatal("disconnect never surfaced as a canceled error in metrics")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
