package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/answer"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/core/exec"
	"repro/internal/kg"
	"repro/internal/llm"
	"repro/internal/prompts"
	"repro/internal/repl"
	"repro/internal/serve"
	"repro/internal/substrate"
	"repro/internal/trace"
)

// Server exposes the answer registry over HTTP JSON. Routes:
//
//	GET  /healthz             liveness probe
//	GET  /v1/methods          registered methods, models and KG sources
//	GET  /v1/metrics          per-method serving metrics + cache/dedup/substrate stats
//	GET  /v1/traces           recent recorded request traces (-trace-dir servers)
//	GET  /v1/traces/{id}      one full trace record
//	POST /v1/answer           answer one question (X-Cache: hit|miss when caching)
//	POST /v1/batch            answer many questions with a worker pool
//	POST /v1/ingest           add triples to a KG source's live delta
//	POST /v1/snapshot/compact fold a source's delta into a new frozen base
//	POST /v1/snapshot/checkpoint persist a source's snapshot (durable servers)
//
// Every handler honours the request context: a disconnecting client or an
// expiring per-request timeout cancels the in-flight pipeline run. Answers
// flow through the environment's serving stack (metrics, answer cache,
// singleflight), so repeated and concurrent-identical questions are served
// without re-running the pipeline. /v1/answer runs on the LLM scheduler's
// interactive lane, /v1/batch on the batch lane; batch items get per-item
// deadlines derived from the batch deadline so one slow item cannot starve
// the rest. Oversized POST bodies are refused with 413.
//
// Admission control guards /v1/answer and /v1/batch when configured:
// requests pass a per-client token bucket (keyed by X-API-Key, falling
// back to the remote address) and a bounded in-flight/queue gate before
// the body is even decoded, so an overloaded or abusive client costs a
// fast 429 with a Retry-After header — never a pipeline run or an LLM
// call. /v1/metrics reports the admitted/shed/limited counters and live
// queue depth.
//
// Streaming: POST /v1/answer with "Accept: text/event-stream" serves the
// run as SSE — one "stage" event per completed pipeline stage (emitted
// live via the exec span observer), then a final "answer" event with the
// normal response body, or an "error" event. A cache or singleflight hit
// streams just the answer event. Disconnecting mid-stream cancels the
// in-flight run through the request context.
//
// Ingest and compaction swap substrate snapshots atomically: queries in
// flight keep the snapshot they resolved, new queries see the new epoch,
// and the answer cache's epoch-scoped keys guarantee no pre-swap answer is
// ever served post-swap.
type Server struct {
	env *bench.Env
	// timeout caps each /v1/answer run and is the batch deadline per-item
	// deadlines are derived from (0 = unbounded).
	timeout time.Duration
	// maxBatch bounds /v1/batch size.
	maxBatch int
	// maxConcurrency bounds the per-batch worker pool.
	maxConcurrency int
	// maxIngest bounds a single /v1/ingest batch.
	maxIngest int
	// maxBody bounds every POST body; oversized requests get 413 before
	// the decoder buffers them.
	maxBody int64
	// admit guards /v1/answer and /v1/batch with per-client rate limiting
	// and queue-depth load shedding; nil admits everything.
	admit *serve.Admission
	// replicaOf is the primary's base URL when this node is a read
	// replica; local ingests are redirected there.
	replicaOf string
	// appliers are the per-source stream-apply loops on a replica
	// (surfaced in /v1/metrics).
	appliers []*repl.Applier
	// replSrc serves the /v1/repl/* endpoints on durable nodes.
	replSrc *repl.Source
}

// NewServer wraps an assembled bench environment.
func NewServer(env *bench.Env, timeout time.Duration) *Server {
	return &Server{env: env, timeout: timeout, maxBatch: 256, maxConcurrency: 32, maxIngest: 10000, maxBody: maxBodyBytes}
}

// WithAdmission installs the admission controller guarding the answer
// routes and returns the server for chaining. nil leaves admission off.
func (s *Server) WithAdmission(a *serve.Admission) *Server {
	s.admit = a
	return s
}

// WithReplication marks this server a read replica of primary: local
// ingests are rejected with a 307 to the primary, and the appliers'
// stream books join /v1/metrics.
func (s *Server) WithReplication(primary string, appliers []*repl.Applier) *Server {
	s.replicaOf = primary
	s.appliers = appliers
	return s
}

// WithReplSource mounts the /v1/repl/* endpoints (durable nodes only).
func (s *Server) WithReplSource(src *repl.Source) *Server {
	s.replSrc = src
	return s
}

// clientID identifies the caller for per-client rate limiting: the
// X-API-Key header when present, else the remote host (ports vary per
// connection, so they are stripped — one laptop hammering the server is
// one bucket, not one bucket per TCP connection).
func clientID(r *http.Request) string {
	if key := r.Header.Get("X-API-Key"); key != "" {
		return key
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// admitRequest runs the request through the admission controller before
// any body decoding or pipeline work. On refusal it writes the fast 429
// (Retry-After header plus a JSON body whose class distinguishes
// rate-limited from shed) and returns ok=false. The caller must invoke
// release exactly once when the request finishes.
func (s *Server) admitRequest(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	release, err := s.admit.Admit(r.Context(), clientID(r))
	if err == nil {
		return release, true
	}
	var ref *serve.Refusal
	if errors.As(err, &ref) {
		class := "shed"
		if errors.Is(err, serve.ErrRateLimited) {
			class = "rate-limited"
		}
		w.Header().Set("Retry-After", strconv.Itoa(serve.RetryAfterSeconds(ref.RetryAfter)))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error(), Class: class})
		return nil, false
	}
	// The client went away while queued for a slot.
	writeJSON(w, 499, errorResponse{Error: err.Error(), Class: string(answer.ClassCanceled)})
	return nil, false
}

// Handler builds the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/methods", s.handleMethods)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/prompts", s.handlePrompts)
	mux.HandleFunc("POST /v1/prompts/reload", s.handlePromptsReload)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	mux.HandleFunc("GET /v1/traces/{id}", s.handleTraceByID)
	mux.HandleFunc("POST /v1/answer", s.handleAnswer)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("POST /v1/snapshot/compact", s.handleCompact)
	mux.HandleFunc("POST /v1/snapshot/checkpoint", s.handleCheckpoint)
	if s.replSrc != nil {
		s.replSrc.Mount(mux)
	}
	return mux
}

// --- wire types ---

// answerRequest is the /v1/answer body; queryItem is its reusable core,
// shared with batch items.
type queryItem struct {
	Question string   `json:"question"`
	Open     bool     `json:"open,omitempty"`
	Anchors  []string `json:"anchors,omitempty"`
	// PromptVersions pins specific prompt versions for this query only
	// (A/B testing), e.g. {"answer-graph": "2"}. Unknown names or
	// versions fail the request with class "invalid-query".
	PromptVersions map[string]string `json:"prompt_versions,omitempty"`
}

type answerRequest struct {
	queryItem
	Method       string `json:"method,omitempty"` // default "ours"
	Model        string `json:"model,omitempty"`  // gpt3.5|gpt4
	KG           string `json:"kg,omitempty"`     // wikidata|freebase
	IncludeTrace bool   `json:"include_trace,omitempty"`
	TimeoutMS    int64  `json:"timeout_ms,omitempty"`
	// TokenBudget caps the total LLM tokens this request may spend; the
	// scheduler refuses calls past it (HTTP 429, class "budget").
	TokenBudget int `json:"token_budget,omitempty"`
}

type answerResponse struct {
	Answer           string `json:"answer"`
	Method           string `json:"method"`
	Model            string `json:"model"`
	KG               string `json:"kg"`
	Epoch            uint64 `json:"epoch,omitempty"`
	LLMCalls         int    `json:"llm_calls"`
	PromptTokens     int    `json:"prompt_tokens"`
	CompletionTokens int    `json:"completion_tokens"`
	ElapsedMS        int64  `json:"elapsed_ms"`
	// PromptVersions are the exact prompt versions this run rendered
	// with — the observable half of a "prompt_versions" A/B override.
	PromptVersions map[string]string `json:"prompt_versions,omitempty"`
	// Cached marks an SSE answer event served from the answer cache (the
	// JSON path reports the same through the X-Cache header instead).
	Cached bool       `json:"cached,omitempty"`
	Trace  *traceWire `json:"trace,omitempty"`
}

type traceWire struct {
	Gp           []string    `json:"gp,omitempty"`
	Gg           []string    `json:"gg,omitempty"`
	Gf           []string    `json:"gf,omitempty"`
	KeptSubjects []string    `json:"kept_subjects,omitempty"`
	PseudoError  string      `json:"pseudo_error,omitempty"`
	Stages       []stageWire `json:"stages,omitempty"`
}

// stageWire is one stage span in an answer trace.
type stageWire struct {
	Stage            string  `json:"stage"`
	LatencyMS        float64 `json:"latency_ms"`
	LLMCalls         int     `json:"llm_calls"`
	PromptTokens     int     `json:"prompt_tokens,omitempty"`
	CompletionTokens int     `json:"completion_tokens,omitempty"`
	InputSize        int     `json:"input_size"`
	OutputSize       int     `json:"output_size"`
	Error            string  `json:"error,omitempty"`
}

type batchRequest struct {
	Method      string `json:"method,omitempty"`
	Model       string `json:"model,omitempty"`
	KG          string `json:"kg,omitempty"`
	Concurrency int    `json:"concurrency,omitempty"`
	// TimeoutMS tightens the batch deadline per-item deadlines are derived
	// from (never past the operator's cap).
	TimeoutMS int64       `json:"timeout_ms,omitempty"`
	Queries   []queryItem `json:"queries"`
}

type batchItemResponse struct {
	Index  int             `json:"index"`
	Result *answerResponse `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	Class  string          `json:"class,omitempty"`
}

type batchResponse struct {
	Method    string              `json:"method"`
	Model     string              `json:"model"`
	KG        string              `json:"kg"`
	N         int                 `json:"n"`
	Failed    int                 `json:"failed"`
	ElapsedMS int64               `json:"elapsed_ms"`
	Items     []batchItemResponse `json:"items"`
}

type errorResponse struct {
	Error string `json:"error"`
	Class string `json:"class"`
	// Stages carries the failed run's partial stage spans (the last one
	// names the failing stage and its error class) when the request asked
	// for a trace.
	Stages []stageWire `json:"stages,omitempty"`
}

// --- handlers ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// metricsResponse is the /v1/metrics body.
type metricsResponse struct {
	Methods      []serve.MethodSnapshot     `json:"methods"`
	Cache        serve.CacheStats           `json:"cache"`
	CacheEnabled bool                       `json:"cache_enabled"`
	Singleflight serve.GroupStats           `json:"singleflight"`
	EmbedMemo    core.MemoStats             `json:"embed_memo"`
	Substrates   map[string]substrate.Stats `json:"substrates"`
	// Scheduler reports the shared LLM admission controller: lane depths,
	// wait times, budget refusals (zeros when -llm-concurrency is 0).
	Scheduler        llm.SchedulerStats `json:"scheduler"`
	SchedulerEnabled bool               `json:"scheduler_enabled"`
	// Traces reports the request-trace store (zeros when -trace-dir is
	// unset).
	Traces        trace.StoreStats `json:"traces"`
	TracesEnabled bool             `json:"traces_enabled"`
	// Admission reports the answer-route admission controller: admitted/
	// shed/limited counters and the live in-flight and queue-depth gauges
	// (zeros when admission is off).
	Admission        serve.AdmissionStats `json:"admission"`
	AdmissionEnabled bool                 `json:"admission_enabled"`
	// Hedge reports tail-latency retrieval hedging (zeros when
	// -hedge-budget is 0).
	Hedge        core.HedgeStats `json:"hedge"`
	HedgeEnabled bool            `json:"hedge_enabled"`
	// Prompts reports the active prompt-version set serving requests —
	// the same fingerprint that scopes answer-cache keys, so a reload
	// that changed it is immediately visible here.
	Prompts promptsStatus `json:"prompts"`
	// Replication reports this node's role and, on replicas, the
	// per-source stream books (applied/head epochs, lag, reconnects);
	// absent on memory-only nodes.
	Replication *replicationWire `json:"replication,omitempty"`
}

// replicationWire is the /v1/metrics replication section.
type replicationWire struct {
	Role    string `json:"role"` // "primary" | "replica"
	Primary string `json:"primary,omitempty"`
	// Sources maps KG labels to applier books (replicas only).
	Sources map[string]repl.ApplierStats `json:"sources,omitempty"`
	// CaughtUp is true when every applier is connected with zero lag —
	// the signal the chaos suite and CI gate on.
	CaughtUp bool `json:"caught_up"`
}

// replicationStatus assembles the metrics section (nil when the node
// has no replication role).
func (s *Server) replicationStatus() *replicationWire {
	if s.replicaOf != "" {
		wire := &replicationWire{Role: "replica", Primary: s.replicaOf, Sources: map[string]repl.ApplierStats{}}
		wire.CaughtUp = len(s.appliers) > 0
		for _, a := range s.appliers {
			st := a.Stats()
			wire.Sources[st.Source] = st
			if !st.Connected || st.LagRecords > 0 {
				wire.CaughtUp = false
			}
		}
		return wire
	}
	if s.replSrc != nil {
		return &replicationWire{Role: "primary"}
	}
	return nil
}

// promptsStatus is the /v1/metrics prompt summary: active versions only
// (GET /v1/prompts lists every loaded version including candidates).
type promptsStatus struct {
	Fingerprint string            `json:"fingerprint"`
	Versions    map[string]string `json:"versions"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	resp := metricsResponse{
		Methods:          s.env.Metrics.Snapshot(),
		Cache:            s.env.Cache.Stats(),
		CacheEnabled:     s.env.Cache != nil,
		Singleflight:     s.env.DedupStats(),
		EmbedMemo:        s.env.MemoStats(),
		Substrates:       s.env.SubstrateStats(),
		Scheduler:        s.env.SchedulerStats(),
		SchedulerEnabled: s.env.Scheduler != nil,
		Traces:           s.env.TraceStats(),
		TracesEnabled:    s.env.Cfg.Trace != nil,
		Admission:        s.admit.Stats(),
		AdmissionEnabled: s.admit != nil,
		Hedge:            s.env.HedgeStats(),
		HedgeEnabled:     s.env.Cfg.Core.HedgeBudget > 0,
		Prompts: promptsStatus{
			Fingerprint: s.env.Prompts.Fingerprint(),
			Versions:    s.env.Prompts.View().Versions(),
		},
		Replication: s.replicationStatus(),
	}
	if resp.Methods == nil {
		resp.Methods = []serve.MethodSnapshot{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- prompt-registry handlers ---

// promptsResponse is the GET /v1/prompts (and reload) body: every loaded
// prompt version with its task, candidate flag, active marker and source,
// plus the active-set fingerprint and the overlay directory.
type promptsResponse struct {
	Fingerprint string         `json:"fingerprint"`
	Dir         string         `json:"dir,omitempty"`
	Prompts     []prompts.Info `json:"prompts"`
}

func (s *Server) promptsWire() promptsResponse {
	reg := s.env.Prompts
	return promptsResponse{Fingerprint: reg.Fingerprint(), Dir: reg.Dir(), Prompts: reg.List()}
}

func (s *Server) handlePrompts(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.promptsWire())
}

// handlePromptsReload re-reads the -prompt-dir overlay and swaps the
// prompt set atomically; an invalid file rejects the whole reload with
// 422 and the current set keeps serving. The response is the post-reload
// state, so the caller can diff fingerprints to see whether anything
// actually changed.
func (s *Server) handlePromptsReload(w http.ResponseWriter, r *http.Request) {
	if err := s.env.Prompts.Reload(); err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{
			Error: fmt.Sprintf("prompt reload rejected, current set keeps serving: %v", err),
			Class: "invalid-prompts",
		})
		return
	}
	writeJSON(w, http.StatusOK, s.promptsWire())
}

// --- trace-store handlers ---

// traceSummary is one /v1/traces list entry: enough to scan and pick a
// record without shipping the full graphs.
type traceSummary struct {
	ID         string  `json:"id"`
	Time       string  `json:"time,omitempty"`
	Question   string  `json:"question"`
	Method     string  `json:"method"`
	Model      string  `json:"model,omitempty"`
	KG         string  `json:"kg,omitempty"`
	Epoch      uint64  `json:"epoch"`
	CacheHit   bool    `json:"cache_hit"`
	ErrorClass string  `json:"error_class,omitempty"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	LLMCalls   int     `json:"llm_calls"`
}

type tracesResponse struct {
	Traces []traceSummary   `json:"traces"`
	Stats  trace.StoreStats `json:"stats"`
}

// tracesDisabled writes the 404 every trace route returns on a server
// started without -trace-dir.
func (s *Server) tracesDisabled(w http.ResponseWriter) bool {
	if s.env.Cfg.Trace != nil {
		return false
	}
	writeJSON(w, http.StatusNotFound, errorResponse{
		Error: "tracing is disabled: start pgakvd with -trace-dir to record request traces",
		Class: "not-found",
	})
	return true
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.tracesDisabled(w) {
		return
	}
	limit := 50
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, fmt.Errorf("invalid limit %q", v), answer.ClassInvalidQuery)
			return
		}
		limit = n
	}
	if limit > 500 {
		limit = 500
	}
	recs, err := s.env.Cfg.Trace.List(trace.ListOptions{Limit: limit, Method: r.URL.Query().Get("method")})
	if err != nil {
		writeError(w, err, answer.ClassUpstream)
		return
	}
	resp := tracesResponse{Traces: []traceSummary{}, Stats: s.env.TraceStats()}
	for _, rec := range recs {
		resp.Traces = append(resp.Traces, traceSummary{
			ID:         rec.ID,
			Time:       rec.Time,
			Question:   rec.Question,
			Method:     rec.Method,
			Model:      rec.Model,
			KG:         rec.KG,
			Epoch:      rec.Epoch,
			CacheHit:   rec.CacheHit,
			ErrorClass: rec.ErrorClass,
			ElapsedMS:  float64(rec.ElapsedUS) / 1000,
			LLMCalls:   rec.LLMCalls,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	if s.tracesDisabled(w) {
		return
	}
	rec, err := s.env.Cfg.Trace.Get(r.PathValue("id"))
	if errors.Is(err, trace.ErrNotFound) {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error(), Class: "not-found"})
		return
	}
	if err != nil {
		writeError(w, err, answer.ClassUpstream)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleMethods(w http.ResponseWriter, r *http.Request) {
	type methodInfo struct {
		Name        string `json:"name"`
		Description string `json:"description"`
	}
	var methods []methodInfo
	for _, name := range answer.Names() {
		desc, _ := answer.Describe(name)
		methods = append(methods, methodInfo{Name: name, Description: desc})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"methods":    methods,
		"models":     []string{"gpt3.5", "gpt4"},
		"kg_sources": []string{"wikidata", "freebase"},
	})
}

// maxBodyBytes bounds request bodies before JSON decoding.
const maxBodyBytes = 8 << 20

// decodeBody reads a POST body capped at s.maxBody into v, writing the
// error response itself on failure: 413 when the cap was exceeded (the
// reader stops before buffering an oversized body), 400 otherwise.
// allowEmpty treats an empty body as a decoded zero value.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any, allowEmpty bool) bool {
	err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(v)
	if err == nil || (allowEmpty && errors.Is(err, io.EOF)) {
		return true
	}
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
			Error: fmt.Sprintf("request body exceeds the %d-byte limit", tooLarge.Limit),
			Class: "too-large",
		})
		return false
	}
	writeError(w, fmt.Errorf("decoding request: %w", err), answer.ClassInvalidQuery)
	return false
}

func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admitRequest(w, r)
	if !ok {
		return
	}
	defer release()
	var req answerRequest
	if !s.decodeBody(w, r, &req, false) {
		return
	}
	ans, model, src, err := s.resolve(req.Method, req.Model, req.KG)
	if err != nil {
		writeError(w, err, answer.Classify(err))
		return
	}

	// Interactive lane: a user is waiting on this response, so when the
	// LLM scheduler saturates this request is admitted ahead of queued
	// batch/bench work.
	ctx := llm.WithPriority(r.Context(), llm.PriorityInteractive)
	timeout := s.timeout
	if req.TimeoutMS > 0 {
		// A client may tighten the deadline but never loosen it past the
		// operator's cap.
		requested := time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout == 0 || requested < timeout {
			timeout = requested
		}
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	q := answer.Query{
		Text:           req.Question,
		Method:         ans.Name(),
		Model:          model,
		Open:           req.Open,
		Anchors:        req.Anchors,
		PromptVersions: req.PromptVersions,
	}
	if req.TokenBudget > 0 {
		q.Overrides.TokenBudget = &req.TokenBudget
	}
	if wantsSSE(r) {
		s.streamAnswer(w, ctx, ans, q, src, req.IncludeTrace)
		return
	}
	ctx, info := serve.Attach(ctx)
	res, err := ans.Answer(ctx, q)
	if err != nil {
		resp := errorResponse{Error: err.Error(), Class: string(answer.Classify(err))}
		if req.IncludeTrace && res.Trace != nil {
			// The partial spans name the failing stage and its error class.
			resp.Stages = stageWires(res.Trace.Stages)
		}
		writeJSON(w, statusFor(answer.Classify(err)), resp)
		return
	}
	if info.CacheUsed {
		state := "miss"
		if info.CacheHit {
			state = "hit"
		}
		w.Header().Set("X-Cache", state)
	}
	writeJSON(w, http.StatusOK, toWire(res, src, req.IncludeTrace))
}

// wantsSSE reports whether the client asked for a streamed answer.
func wantsSSE(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// sseWriter frames server-sent events over a flushed ResponseWriter.
// Methods may drive stage graphs from worker goroutines (sampling runs),
// so every event write is serialized under the mutex.
type sseWriter struct {
	mu sync.Mutex
	w  http.ResponseWriter
	f  http.Flusher
}

func (s *sseWriter) event(name string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", name, data)
	s.f.Flush()
}

// streamAnswer serves one answer as SSE: a "stage" event per completed
// pipeline stage — emitted live through the exec span observer while the
// run is still in flight — then a terminal "answer" or "error" event.
// Cache and singleflight hits execute no stages of their own, so they
// stream a single answer event. A client that disconnects mid-stream
// cancels ctx and with it the in-flight run; the terminal error event is
// then written to a dead connection and dropped, but the run's "canceled"
// class still lands in /v1/metrics through the serving stack.
func (s *Server) streamAnswer(w http.ResponseWriter, ctx context.Context, ans answer.Answerer, q answer.Query, src kg.Source, includeTrace bool) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, errors.New("streaming is unsupported by this connection"), answer.ClassInvalidQuery)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	out := &sseWriter{w: w, f: flusher}

	ctx = exec.WithSpanObserver(ctx, func(sp exec.Span) {
		out.event("stage", stageWires([]exec.Span{sp})[0])
	})
	ctx, info := serve.Attach(ctx)
	res, err := ans.Answer(ctx, q)
	if err != nil {
		resp := errorResponse{Error: err.Error(), Class: string(answer.Classify(err))}
		if includeTrace && res.Trace != nil {
			resp.Stages = stageWires(res.Trace.Stages)
		}
		out.event("error", resp)
		return
	}
	wire := toWire(res, src, includeTrace)
	wire.Cached = info.CacheHit
	out.event("answer", wire)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admitRequest(w, r)
	if !ok {
		return
	}
	defer release()
	var req batchRequest
	if !s.decodeBody(w, r, &req, false) {
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, errors.New("batch has no queries"), answer.ClassInvalidQuery)
		return
	}
	if len(req.Queries) > s.maxBatch {
		writeError(w, fmt.Errorf("batch of %d exceeds the limit of %d", len(req.Queries), s.maxBatch), answer.ClassInvalidQuery)
		return
	}
	ans, model, src, err := s.resolve(req.Method, req.Model, req.KG)
	if err != nil {
		writeError(w, err, answer.Classify(err))
		return
	}
	workers := req.Concurrency
	if workers < 1 {
		workers = s.env.Cfg.Workers
	}
	if workers > s.maxConcurrency {
		workers = s.maxConcurrency
	}

	// Batch lane: bulk work yields the LLM scheduler to interactive
	// traffic when the concurrency limit saturates.
	ctx := llm.WithPriority(r.Context(), llm.PriorityBatch)
	batchDeadline := s.timeout
	if req.TimeoutMS > 0 {
		requested := time.Duration(req.TimeoutMS) * time.Millisecond
		if batchDeadline == 0 || requested < batchDeadline {
			batchDeadline = requested
		}
	}
	// Per-item deadlines derive from the batch deadline: every item gets
	// the deadline as its own clock, started when its worker picks it up —
	// the same per-request semantics /v1/answer has. A single slow item
	// times out alone (its entry reports class "deadline") instead of one
	// shared batch timer expiring and failing every item queued behind it,
	// and an item is never killed early just because the batch was large.
	// Total batch wall-clock stays bounded at ceil(N/workers) deadlines.
	opts := []answer.BatchOption{answer.Concurrency(workers)}
	if batchDeadline > 0 {
		opts = append(opts, answer.ItemTimeout(batchDeadline))
	}

	queries := make([]answer.Query, len(req.Queries))
	for i, q := range req.Queries {
		queries[i] = answer.Query{
			Text:           q.Question,
			Method:         ans.Name(),
			Model:          model,
			Open:           q.Open,
			Anchors:        q.Anchors,
			PromptVersions: q.PromptVersions,
		}
	}
	start := time.Now()
	items := answer.Batch(ctx, ans, queries, opts...)

	resp := batchResponse{
		Method:    ans.Name(),
		Model:     model,
		KG:        src.String(),
		N:         len(items),
		ElapsedMS: time.Since(start).Milliseconds(),
	}
	for _, item := range items {
		wireItem := batchItemResponse{Index: item.Index}
		if item.Err != nil {
			resp.Failed++
			wireItem.Error = item.Err.Error()
			wireItem.Class = string(item.Class)
		} else {
			wire := toWire(item.Result, src, false)
			wireItem.Result = &wire
		}
		resp.Items = append(resp.Items, wireItem)
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- live-ingest handlers ---

// tripleWire is the JSON form of one ingested triple.
type tripleWire struct {
	Subject  string `json:"subject"`
	Relation string `json:"relation"`
	Object   string `json:"object"`
	// Ord orders time-varying values of the same (subject, relation).
	Ord int `json:"ord,omitempty"`
}

type ingestRequest struct {
	KG      string       `json:"kg,omitempty"` // default wikidata
	Triples []tripleWire `json:"triples"`
}

type ingestResponse struct {
	KG           string `json:"kg"`
	Added        int    `json:"added"`
	Skipped      int    `json:"skipped"`
	Epoch        uint64 `json:"epoch"`
	BaseTriples  int    `json:"base_triples"`
	DeltaTriples int    `json:"delta_triples"`
}

type compactRequest struct {
	KG string `json:"kg,omitempty"` // default wikidata
}

type compactResponse struct {
	KG           string `json:"kg"`
	Epoch        uint64 `json:"epoch"`
	BaseTriples  int    `json:"base_triples"`
	DeltaTriples int    `json:"delta_triples"`
	ElapsedMS    int64  `json:"elapsed_ms"`
}

// servableSource parses a KG-source label and rejects anything the
// server has no substrate for ("unknown" parses but is not servable).
// The empty label defaults to wikidata.
func (s *Server) servableSource(source string) (kg.Source, error) {
	src := kg.SourceWikidata
	if source != "" {
		var err error
		if src, err = kg.ParseSource(source); err != nil {
			return 0, &answer.InvalidQueryError{Reason: err.Error()}
		}
	}
	if _, ok := s.env.Substrates[src]; !ok {
		return 0, &answer.InvalidQueryError{Reason: fmt.Sprintf("no substrate for source %q (want wikidata or freebase)", source)}
	}
	return src, nil
}

// substrateFor resolves a KG-source label to its live substrate manager.
func (s *Server) substrateFor(source string) (*substrate.Manager, kg.Source, error) {
	src, err := s.servableSource(source)
	if err != nil {
		return nil, 0, err
	}
	return s.env.Substrates[src], src, nil
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.replicaOf != "" {
		// Writes are single-home: a local ingest would fork the epoch
		// chain. 307 preserves the method and body, so a client that
		// follows redirects lands the same ingest on the primary.
		w.Header().Set("Location", s.replicaOf+"/v1/ingest")
		writeJSON(w, http.StatusTemporaryRedirect, errorResponse{
			Error: "this node is a read replica; ingest on the primary at " + s.replicaOf,
			Class: "replica",
		})
		return
	}
	var req ingestRequest
	if !s.decodeBody(w, r, &req, false) {
		return
	}
	if len(req.Triples) == 0 {
		writeError(w, errors.New("ingest has no triples"), answer.ClassInvalidQuery)
		return
	}
	if len(req.Triples) > s.maxIngest {
		writeError(w, fmt.Errorf("ingest of %d triples exceeds the limit of %d", len(req.Triples), s.maxIngest), answer.ClassInvalidQuery)
		return
	}
	mgr, src, err := s.substrateFor(req.KG)
	if err != nil {
		writeError(w, err, answer.Classify(err))
		return
	}
	triples := make([]kg.Triple, len(req.Triples))
	for i, t := range req.Triples {
		triples[i] = kg.Triple{Subject: t.Subject, Relation: t.Relation, Object: t.Object, Ord: t.Ord}
	}
	res, err := mgr.Ingest(triples)
	if err != nil {
		writeError(w, err, answer.ClassInvalidQuery)
		return
	}
	writeJSON(w, http.StatusOK, ingestResponse{
		KG:           src.String(),
		Added:        res.Added,
		Skipped:      res.Skipped,
		Epoch:        res.Epoch,
		BaseTriples:  res.BaseTriples,
		DeltaTriples: res.DeltaTriples,
	})
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	var req compactRequest
	// An empty body means "compact the default source".
	if !s.decodeBody(w, r, &req, true) {
		return
	}
	mgr, src, err := s.substrateFor(req.KG)
	if err != nil {
		writeError(w, err, answer.Classify(err))
		return
	}
	start := time.Now()
	snap, err := mgr.Compact(r.Context())
	if errors.Is(err, substrate.ErrCompacting) {
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error(), Class: "conflict"})
		return
	}
	if err != nil {
		writeError(w, err, answer.Classify(err))
		return
	}
	writeJSON(w, http.StatusOK, compactResponse{
		KG:           src.String(),
		Epoch:        snap.Epoch,
		BaseTriples:  snap.BaseTriples,
		DeltaTriples: snap.DeltaTriples,
		ElapsedMS:    time.Since(start).Milliseconds(),
	})
}

// checkpointRequest/Response are the /v1/snapshot/checkpoint wire forms.
type checkpointRequest struct {
	KG string `json:"kg,omitempty"` // default wikidata
}

type checkpointResponse struct {
	KG        string `json:"kg"`
	Epoch     uint64 `json:"epoch"`
	Triples   int    `json:"triples"`
	Shards    int    `json:"shards"`
	Path      string `json:"path"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	var req checkpointRequest
	// An empty body means "checkpoint the default source".
	if !s.decodeBody(w, r, &req, true) {
		return
	}
	mgr, src, err := s.substrateFor(req.KG)
	if err != nil {
		writeError(w, err, answer.Classify(err))
		return
	}
	start := time.Now()
	info, err := mgr.Checkpoint(r.Context())
	switch {
	case errors.Is(err, substrate.ErrNotDurable):
		writeError(w, errors.New("server is not durable: start pgakvd with -data-dir to enable checkpoints"), answer.ClassInvalidQuery)
		return
	case errors.Is(err, substrate.ErrCheckpointing):
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error(), Class: "conflict"})
		return
	case err != nil:
		writeError(w, err, answer.Classify(err))
		return
	}
	writeJSON(w, http.StatusOK, checkpointResponse{
		KG:        src.String(),
		Epoch:     info.Epoch,
		Triples:   info.Triples,
		Shards:    info.Shards,
		Path:      info.Path,
		ElapsedMS: time.Since(start).Milliseconds(),
	})
}

// resolve maps the request's method/model/kg labels onto a bound Answerer.
func (s *Server) resolve(method, model, source string) (answer.Answerer, string, kg.Source, error) {
	if method == "" {
		method = "ours"
	}
	modelName, err := resolveModel(model)
	if err != nil {
		return nil, "", 0, err
	}
	src, err := s.servableSource(source)
	if err != nil {
		return nil, "", 0, err
	}
	ans, err := s.env.Answerer(method, modelName, src)
	if err != nil {
		return nil, "", 0, err
	}
	return ans, modelName, src, nil
}

// resolveModel maps user-facing model labels onto the bench model table.
func resolveModel(model string) (string, error) {
	switch strings.ToLower(strings.TrimSpace(model)) {
	case "", "gpt3.5", "gpt-3.5", "gpt35":
		return bench.ModelGPT35, nil
	case "gpt4", "gpt-4":
		return bench.ModelGPT4, nil
	default:
		return "", &answer.InvalidQueryError{Reason: fmt.Sprintf("unknown model %q (want gpt3.5 or gpt4)", model)}
	}
}

// toWire converts a Result to its JSON form.
func toWire(res answer.Result, src kg.Source, includeTrace bool) answerResponse {
	out := answerResponse{
		Answer:           res.Answer,
		Method:           res.Method,
		Model:            res.Model,
		KG:               src.String(),
		Epoch:            res.Epoch,
		LLMCalls:         res.LLMCalls,
		PromptTokens:     res.PromptTokens,
		CompletionTokens: res.CompletionTokens,
		ElapsedMS:        res.Elapsed.Milliseconds(),
		PromptVersions:   res.PromptVersions,
	}
	if includeTrace && res.Trace != nil {
		tw := &traceWire{}
		if res.Trace.Gp != nil {
			for _, t := range res.Trace.Gp.Triples {
				tw.Gp = append(tw.Gp, t.String())
			}
		}
		if res.Trace.Gg != nil {
			for _, t := range res.Trace.Gg.Triples {
				tw.Gg = append(tw.Gg, t.String())
			}
		}
		if res.Trace.Gf != nil {
			for _, t := range res.Trace.Gf.Triples {
				tw.Gf = append(tw.Gf, t.String())
			}
		}
		for _, sc := range res.Trace.Kept {
			tw.KeptSubjects = append(tw.KeptSubjects, fmt.Sprintf("%s (%.3f)", sc.Subject, sc.Confidence))
		}
		if res.Trace.PseudoErr != nil {
			tw.PseudoError = res.Trace.PseudoErr.Error()
		}
		tw.Stages = stageWires(res.Trace.Stages)
		out.Trace = tw
	}
	return out
}

// stageWires converts exec spans to their wire form.
func stageWires(spans []exec.Span) []stageWire {
	out := make([]stageWire, 0, len(spans))
	for _, sp := range spans {
		out = append(out, stageWire{
			Stage:            sp.Stage,
			LatencyMS:        float64(sp.Latency) / float64(time.Millisecond),
			LLMCalls:         sp.LLMCalls,
			PromptTokens:     sp.PromptTokens,
			CompletionTokens: sp.CompletionTokens,
			InputSize:        sp.InputSize,
			OutputSize:       sp.OutputSize,
			Error:            sp.Err,
		})
	}
	return out
}

// statusFor maps error classes onto HTTP statuses.
func statusFor(class answer.ErrorClass) int {
	switch class {
	case answer.ClassUnknownMethod, answer.ClassInvalidQuery:
		return http.StatusBadRequest
	case answer.ClassBudget:
		// The request's own token budget ran out mid-run.
		return http.StatusTooManyRequests
	case answer.ClassDeadline:
		return http.StatusGatewayTimeout
	case answer.ClassCanceled:
		// 499: client closed request (nginx convention) — the client is
		// usually gone, but batch-internal cancellations still surface it.
		return 499
	default:
		return http.StatusInternalServerError
	}
}

func writeError(w http.ResponseWriter, err error, class answer.ErrorClass) {
	writeJSON(w, statusFor(class), errorResponse{Error: err.Error(), Class: string(class)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}
