// Command kgtool generates and inspects the synthetic world and its KG
// renderings.
//
// Usage:
//
//	kgtool -stats                         # world + both KG stores
//	kgtool -dump wikidata -limit 20       # print triples of one schema
//	kgtool -subject "Lake ..." -dump wikidata
//	kgtool -datasets                      # dataset summaries + samples
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/datasets"
	"repro/internal/kg"
	"repro/internal/qa"
)

func main() {
	stats := flag.Bool("stats", false, "print world and store statistics")
	dump := flag.String("dump", "", "dump triples of a KG source: wikidata|freebase")
	subject := flag.String("subject", "", "restrict -dump to one subject")
	limit := flag.Int("limit", 30, "max triples to dump")
	dataset := flag.Bool("datasets", false, "print dataset summaries with samples")
	export := flag.String("export", "", "export a KG as JSON to stdout: wikidata|freebase")
	exportNT := flag.String("export-nt", "", "export a KG as NT text to stdout: wikidata|freebase")
	exportDS := flag.String("export-dataset", "", "export a dataset as JSON to stdout: simple|qald|nature")
	exportWorld := flag.Bool("export-world", false, "export the whole world as JSON to stdout")
	quick := flag.Bool("quick", true, "use the small environment")
	seed := flag.Int64("seed", 42, "world seed")
	flag.Parse()

	if err := run(opts{*stats, *dump, *subject, *limit, *dataset, *export, *exportNT, *exportDS, *exportWorld, *quick, *seed}); err != nil {
		fmt.Fprintln(os.Stderr, "kgtool:", err)
		os.Exit(1)
	}
}

type opts struct {
	stats       bool
	dump        string
	subject     string
	limit       int
	dataset     bool
	export      string
	exportNT    string
	exportDS    string
	exportWorld bool
	quick       bool
	seed        int64
}

func run(o opts) error {
	stats, dump, subject, limit, dataset, quick, seed :=
		o.stats, o.dump, o.subject, o.limit, o.dataset, o.quick, o.seed
	cfg := bench.DefaultEnvConfig()
	if quick {
		cfg = bench.QuickEnvConfig()
	}
	cfg.WorldSeed = seed
	env, err := bench.NewEnv(cfg)
	if err != nil {
		return err
	}

	did := false
	if stats {
		did = true
		fmt.Println(env.World.Stats())
		s := env.World.Stats()
		for kind, n := range s.ByKind {
			fmt.Printf("  %-16s %d\n", kind, n)
		}
		for src, st := range env.Stores {
			fmt.Printf("KG[%s]: %s\n", src, st.Stats())
		}
	}
	if dump != "" {
		did = true
		src, err := kg.ParseSource(dump)
		if err != nil {
			return err
		}
		st, ok := env.Stores[src]
		if !ok {
			return fmt.Errorf("no store for source %q", dump)
		}
		var triples []kg.Triple
		if subject != "" {
			canonical, ok := st.FindSubjectFold(subject)
			if !ok {
				return fmt.Errorf("subject %q not found in %s KG", subject, dump)
			}
			triples = st.Subject(canonical)
		} else {
			triples = st.All()
		}
		if len(triples) > limit {
			triples = triples[:limit]
		}
		for _, t := range triples {
			fmt.Println(t)
		}
	}
	if dataset {
		did = true
		for _, ds := range env.Suite.Datasets() {
			fmt.Printf("%s (%s, %d questions)\n", ds.Name, ds.Metric, len(ds.Questions))
			n := 3
			if n > len(ds.Questions) {
				n = len(ds.Questions)
			}
			for _, q := range ds.Questions[:n] {
				fmt.Printf("  Q: %s\n", q.Text)
				if q.Open() {
					fmt.Printf("  ref[0]: %.120s...\n", q.Refs[0])
				} else {
					fmt.Printf("  gold: %v\n", q.Golds)
				}
			}
			fmt.Println()
		}
	}
	if o.export != "" {
		did = true
		src, err := kg.ParseSource(o.export)
		if err != nil {
			return err
		}
		if err := env.Stores[src].WriteJSON(os.Stdout); err != nil {
			return err
		}
	}
	if o.exportNT != "" {
		did = true
		src, err := kg.ParseSource(o.exportNT)
		if err != nil {
			return err
		}
		if err := env.Stores[src].WriteNT(os.Stdout); err != nil {
			return err
		}
	}
	if o.exportDS != "" {
		did = true
		var ds *qa.Dataset
		switch o.exportDS {
		case "simple":
			ds = env.Suite.Simple
		case "qald":
			ds = env.Suite.QALD
		case "nature":
			ds = env.Suite.Nature
		default:
			return fmt.Errorf("unknown dataset %q (want simple|qald|nature)", o.exportDS)
		}
		if err := datasets.WriteJSON(os.Stdout, ds); err != nil {
			return err
		}
	}
	if o.exportWorld {
		did = true
		if err := env.World.WriteJSON(os.Stdout); err != nil {
			return err
		}
	}
	if !did {
		return fmt.Errorf("nothing to do: pass -stats, -dump, -datasets, or an -export flag")
	}
	return nil
}
