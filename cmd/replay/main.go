// Command replay is the record/replay regression harness front end.
//
// Subcommands:
//
//	replay record -out suite.jsonl [-seed 42] [-quick] [-methods Ours,CoT]
//	              [-model GPT-3.5] [-per-dataset 0] [-note ...]
//	    Answer every (question, method) cell against a fresh environment
//	    and write the suite: trace records with gold material, no wall
//	    time, deterministic IDs.
//
//	replay record -from-traces traces.jsonl -out suite.jsonl [-seed 42] [-quick] [-note ...]
//	    Convert a live trace log (cmd/pgakvd's -trace-dir JSONL) into a
//	    suite instead of answering anything: wall time is stripped, IDs
//	    are restamped deterministically, and recorded prompt versions are
//	    promoted into the suite meta. -seed/-quick must name the world the
//	    traffic ran against; -methods/-model/-per-dataset do not apply.
//
//	replay run -suite suite.jsonl -out artifact.json
//	    Replay a recorded suite against the current binary (environment
//	    pinned to the suite's seed/scale, sequential, cache off) and write
//	    the deterministic artifact. Replaying the same suite twice yields
//	    byte-identical artifacts.
//
//	replay diff -baseline old.json -current new.json
//	            [-max-accuracy-drop 0.5] [-max-p95-inflation 1.25]
//	            [-max-token-inflation 1.10]
//	    Compare two artifacts under the regression gate. Exit 1 when the
//	    gate fails — this is what CI's replay-gate job runs.
//
// See docs/operations.md for the baseline-refresh runbook.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/replay"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = cmdRecord(os.Args[2:])
	case "run", "replay":
		err = cmdRun(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "replay: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  replay record -out suite.jsonl [-seed N] [-quick] [-methods a,b] [-model M] [-per-dataset N] [-note ...]
  replay record -from-traces traces.jsonl -out suite.jsonl [-seed N] [-quick] [-note ...]
  replay run    -suite suite.jsonl -out artifact.json [-timeout 0]
  replay diff   -baseline old.json -current new.json [-max-accuracy-drop PP] [-max-p95-inflation X] [-max-token-inflation X]`)
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("out", "", "suite file to write (required)")
	seed := fs.Int64("seed", 42, "world/model seed to pin the suite to")
	quick := fs.Bool("quick", false, "record against the small test-scale environment")
	methods := fs.String("methods", "", "comma-separated registry methods (default: the full Table-II set)")
	model := fs.String("model", "", "model label (default GPT-3.5)")
	perDataset := fs.Int("per-dataset", 0, "cap questions per dataset (0 = all)")
	note := fs.String("note", "", "provenance note stored in the suite meta")
	fromTraces := fs.String("from-traces", "", "convert this live trace log into a suite instead of recording one")
	timeout := fs.Duration("timeout", 0, "overall deadline (0 = none)")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("record: -out is required")
	}
	ctx, cancel := withTimeout(*timeout)
	defer cancel()

	opts := replay.RecordOptions{
		Seed: *seed, Quick: *quick, Model: *model,
		PerDataset: *perDataset, Note: *note,
	}
	if *methods != "" {
		for _, m := range strings.Split(*methods, ",") {
			if m = strings.TrimSpace(m); m != "" {
				opts.Methods = append(opts.Methods, m)
			}
		}
	}
	start := time.Now()
	var suite replay.Suite
	var err error
	if *fromTraces != "" {
		if *methods != "" || *model != "" || *perDataset != 0 {
			return fmt.Errorf("record: -methods/-model/-per-dataset do not apply with -from-traces (the log already fixes them)")
		}
		suite, err = replay.SuiteFromTraces(*fromTraces, opts)
	} else {
		suite, err = replay.RecordSuite(ctx, opts)
	}
	if err != nil {
		return err
	}
	if err := replay.WriteSuite(*out, suite); err != nil {
		return err
	}
	fmt.Printf("recorded %d cells to %s in %v (seed=%d quick=%v)\n",
		len(suite.Records), *out, time.Since(start).Round(time.Millisecond), suite.Meta.Seed, suite.Meta.Quick)
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	suitePath := fs.String("suite", "", "recorded suite to replay (required)")
	out := fs.String("out", "", "artifact file to write (stdout when empty)")
	timeout := fs.Duration("timeout", 0, "overall deadline (0 = none)")
	ann := fs.Bool("ann", false, "serve retrieval through the HNSW layer; the artifact must stay byte-identical to an exact-scan run")
	annEf := fs.Int("ann-ef", 0, "HNSW search beam width (0 = vecstore default; only meaningful with -ann)")
	fs.Parse(args)
	if *suitePath == "" {
		return fmt.Errorf("run: -suite is required")
	}
	ctx, cancel := withTimeout(*timeout)
	defer cancel()

	suite, err := replay.ReadSuite(*suitePath)
	if err != nil {
		return err
	}
	var opts []replay.RunOption
	if *ann {
		opts = append(opts, replay.WithANN(*annEf))
	}
	start := time.Now()
	art, err := replay.Run(ctx, suite, opts...)
	if err != nil {
		return err
	}
	raw, err := art.Encode()
	if err != nil {
		return err
	}
	if *out == "" {
		os.Stdout.Write(raw)
	} else if err := os.WriteFile(*out, raw, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "replayed %d cells in %v\n%s", art.Cells, time.Since(start).Round(time.Millisecond), art.Summary())
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	basePath := fs.String("baseline", "", "baseline artifact (required)")
	curPath := fs.String("current", "", "current artifact (required)")
	th := replay.DefaultThresholds()
	fs.Float64Var(&th.MaxAccuracyDropPP, "max-accuracy-drop", th.MaxAccuracyDropPP, "largest tolerated per-method accuracy drop in percentage points")
	fs.Float64Var(&th.MaxP95Inflation, "max-p95-inflation", th.MaxP95Inflation, "largest tolerated current/baseline virtual p95 ratio")
	fs.Float64Var(&th.MaxTokenInflation, "max-token-inflation", th.MaxTokenInflation, "largest tolerated current/baseline token-cost ratio")
	fs.Parse(args)
	if *basePath == "" || *curPath == "" {
		return fmt.Errorf("diff: -baseline and -current are required")
	}
	baseline, err := readArtifact(*basePath)
	if err != nil {
		return err
	}
	current, err := readArtifact(*curPath)
	if err != nil {
		return err
	}
	rep := replay.Diff(baseline, current, th)
	fmt.Print(rep.Format())
	if !rep.OK() {
		os.Exit(1)
	}
	return nil
}

func readArtifact(path string) (replay.Artifact, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return replay.Artifact{}, err
	}
	a, err := replay.DecodeArtifact(raw)
	if err != nil {
		return replay.Artifact{}, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

func withTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	if d > 0 {
		return context.WithTimeout(context.Background(), d)
	}
	return context.Background(), func() {}
}
