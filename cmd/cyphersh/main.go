// Command cyphersh is an interactive Cypher shell over the synthetic
// world's property graph — the Neo4j-substitute demo. It supports the
// engine's MATCH ... RETURN subset plus CREATE for scratch additions.
//
//	$ go run ./cmd/cyphersh
//	cypher> MATCH (p:Person) RETURN p.name
//	cypher> MATCH (m:MountainRange)-[:COVERS]->(c:Country) RETURN m.name, c.name
//	cypher> CREATE (me:Person {name: 'Visitor'})
//
// Pipe queries on stdin for non-interactive use:
//
//	echo "MATCH (l:Lake) RETURN l.name, l.area" | go run ./cmd/cyphersh
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cypher"
	"repro/internal/propgraph"
	"repro/internal/world"
)

func main() {
	seed := flag.Int64("seed", 42, "world seed")
	small := flag.Bool("quick", true, "use a small world")
	limit := flag.Int("limit", 25, "max rows printed per query")
	flag.Parse()

	cfg := world.DefaultConfig()
	cfg.Seed = *seed
	if *small {
		cfg.People, cfg.Cities, cfg.Countries = 150, 60, 20
		cfg.Works, cfg.Companies, cfg.Universities = 100, 40, 25
	}
	w, err := world.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cyphersh:", err)
		os.Exit(1)
	}
	g := world.BuildPropGraph(w)
	fmt.Printf("loaded %d nodes, %d relationships (labels: Person, City, Country, Lake, MountainRange, ...)\n",
		g.NodeCount(), g.RelCount())
	fmt.Println(`type Cypher queries; "quit" to exit`)

	repl(g, *limit)
}

func repl(g *propgraph.Graph, limit int) {
	ex := executorOver(g)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for {
		fmt.Print("cypher> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch strings.ToLower(line) {
		case "":
			continue
		case "quit", "exit", ":q":
			return
		}
		script, err := cypher.Parse(line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		for _, st := range script.Statements {
			switch st := st.(type) {
			case *cypher.MatchStmt:
				rows, err := ex.Query(st)
				if err != nil {
					fmt.Println("error:", err)
					continue
				}
				shown := rows
				if len(shown) > limit {
					shown = shown[:limit]
				}
				for _, row := range shown {
					fmt.Println("  " + strings.Join(row.Values, " | "))
				}
				if len(rows) > limit {
					fmt.Printf("  ... %d more rows (raise -limit)\n", len(rows)-limit)
				}
				fmt.Printf("(%d rows)\n", len(rows))
			case *cypher.CreateStmt:
				before := ex.Graph().NodeCount()
				if err := ex.Run(&cypher.Script{Statements: []cypher.Statement{st}}); err != nil {
					fmt.Println("error:", err)
					continue
				}
				fmt.Printf("created %d node(s)\n", ex.Graph().NodeCount()-before)
			}
		}
	}
}

// executorOver wraps an existing property graph in an executor so MATCH
// sees the world's nodes. The cypher executor builds its own graph, so we
// replay the world graph into it via direct construction.
func executorOver(g *propgraph.Graph) *cypher.Executor {
	ex := cypher.NewExecutor()
	target := ex.Graph()
	for _, n := range g.Nodes() {
		props := make(map[string]propgraph.Value, len(n.Props))
		for k, v := range n.Props {
			props[k] = v
		}
		target.CreateNode(n.Labels, props)
	}
	for _, r := range g.Rels() {
		if _, err := target.CreateRel(r.From, r.To, r.Type, nil); err != nil {
			// Cannot happen: IDs are dense and types non-empty.
			panic(err)
		}
	}
	return ex
}
