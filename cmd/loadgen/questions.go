package main

import (
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/datasets"
	"repro/internal/world"
)

// questionPool regenerates the server's synthetic world from the same
// seed and scale and samples its dataset suite, so every question in the
// pool is genuinely answerable by the target server — loadgen measures
// serving behaviour, not a wall of invalid-query failures. The pool
// order interleaves the datasets, and zipf sampling over it makes a few
// questions hot (cache/singleflight territory) with a long cold tail.
func questionPool(n int, seed int64, quick bool) ([]string, error) {
	cfg := bench.DefaultEnvConfig()
	if quick {
		cfg = bench.QuickEnvConfig()
	}
	cfg.WorldSeed = seed
	cfg.World.Seed = seed
	w, err := world.Generate(cfg.World)
	if err != nil {
		return nil, fmt.Errorf("regenerating world: %w", err)
	}
	suite, err := datasets.Build(w, cfg.Data)
	if err != nil {
		return nil, fmt.Errorf("rebuilding datasets: %w", err)
	}
	var pool []string
	sets := suite.Datasets()
	for i := 0; len(pool) < n; i++ {
		advanced := false
		for _, ds := range sets {
			if i < len(ds.Questions) {
				pool = append(pool, ds.Questions[i].Text)
				advanced = true
				if len(pool) == n {
					break
				}
			}
		}
		if !advanced {
			break // every dataset exhausted
		}
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("dataset suite produced no questions")
	}
	if len(pool) < n {
		fmt.Fprintf(os.Stderr, "loadgen: question pool capped at %d (suite size)\n", len(pool))
	}
	return pool, nil
}
