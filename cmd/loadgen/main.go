// Command loadgen drives a running pgakvd server with traffic-realistic
// load and writes the run as a BENCH perf-trajectory artifact.
//
// Question popularity is zipfian — a hot head exercising the answer
// cache and singleflight, a long tail forcing real pipeline runs — and
// the arrival model is selectable: closed-loop (-n requests across
// -clients workers, each with one request outstanding; offered load
// self-limits to server capacity) or open-loop (-rate arrivals/second
// for -duration, regardless of server latency; queues grow when the
// server falls behind).
//
// Usage:
//
//	loadgen [-url http://127.0.0.1:8080] [-method ours] [-model gpt3.5] [-kg wikidata]
//	        [-clients 8] [-identities 0] [-zipf 1.3] [-seed 42]
//	        [-n 200]                       closed loop (default)
//	        [-rate 50 -duration 10s]       open loop
//	        [-questions 64] [-timeout 30s] [-out BENCH_load.json]
//	        [-target-lb]                   target is a pgakvlb router
//
// The question pool regenerates the server's deterministic synthetic
// world from the same -seed and -quick scale and samples its dataset
// suite, so every question is answerable by the target server and no
// dataset files are needed. With -out set, the run is written as a
// bench.PerfArtifact whose serving section is the server's /v1/metrics
// snapshot and whose load section is the client-side account (accepted
// vs refused latency kept separate). Committed under testdata/trajectory/
// these artifacts chart how serving behaviour moves across PRs.
//
// Against a replicated topology, point -url at the pgakvlb router and
// set -target-lb: every accepted response is additionally bucketed by
// its X-Served-By header, so the artifact's load section carries one
// latency population per backing node — primary fallbacks and each
// replica separately — instead of one blended distribution.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/loadgen"
	"repro/internal/serve"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "pgakvd base URL")
	method := flag.String("method", "ours", "answer method")
	model := flag.String("model", "gpt3.5", "model label")
	kgSource := flag.String("kg", "wikidata", "KG source")
	clients := flag.Int("clients", 8, "concurrent client workers (closed loop) / identity pool size")
	identities := flag.Int("identities", 0, "spread requests across this many X-API-Key identities (0 = no key header)")
	zipfS := flag.Float64("zipf", 1.3, "zipf skew exponent for question popularity (> 1)")
	seed := flag.Int64("seed", 42, "sampling seed")
	n := flag.Int("n", 200, "closed-loop total request count")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in requests/second (0 = closed loop)")
	duration := flag.Duration("duration", 10*time.Second, "open-loop run length")
	nQuestions := flag.Int("questions", 64, "question pool size")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	out := flag.String("out", "", "write the run as a BENCH perf-trajectory artifact to this path")
	quick := flag.Bool("quick", false, "build the question pool at the quick world scale (match the server's -quick flag) and mark the artifact accordingly")
	targetLB := flag.Bool("target-lb", false, "the target is a pgakvlb router: split the accepted-latency account by the X-Served-By node each response was proxied to")
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if err := run(ctx, config{
		url: *url, method: *method, model: *model, kg: *kgSource,
		clients: *clients, identities: *identities, zipfS: *zipfS, seed: *seed,
		n: *n, rate: *rate, duration: *duration, nQuestions: *nQuestions,
		timeout: *timeout, out: *out, quick: *quick, targetLB: *targetLB,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type config struct {
	url, method, model, kg string
	clients, identities    int
	zipfS                  float64
	seed                   int64
	n                      int
	rate                   float64
	duration               time.Duration
	nQuestions             int
	timeout                time.Duration
	out                    string
	quick                  bool
	targetLB               bool
}

func run(ctx context.Context, cfg config) error {
	questions, err := questionPool(cfg.nQuestions, cfg.seed, cfg.quick)
	if err != nil {
		return err
	}
	res, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:     cfg.url,
		Method:      cfg.method,
		Model:       cfg.model,
		KG:          cfg.kg,
		Questions:   questions,
		ZipfS:       cfg.zipfS,
		Clients:     cfg.clients,
		Identities:  cfg.identities,
		Requests:    cfg.n,
		RatePerSec:  cfg.rate,
		Duration:    cfg.duration,
		Timeout:     cfg.timeout,
		Seed:        cfg.seed,
		SplitByNode: cfg.targetLB,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s loop: issued=%d ok=%d cache_hits=%d rejected=%d errors=%d in %v (%.1f req/s)\n",
		res.Mode, res.Issued, res.OK, res.CacheHits, res.Rejected, res.Errors,
		res.Elapsed.Round(time.Millisecond), res.AchievedRPS())
	fmt.Printf("accepted: n=%d p50=%.1fms p95=%.1fms p99=%.1fms\n",
		res.Accepted.Count, res.Accepted.P50MS, res.Accepted.P95MS, res.Accepted.P99MS)
	if res.Refused.Count > 0 {
		fmt.Printf("refused:  n=%d p50=%.1fms p95=%.1fms p99=%.1fms\n",
			res.Refused.Count, res.Refused.P50MS, res.Refused.P95MS, res.Refused.P99MS)
	}
	if len(res.Nodes) > 0 {
		nodes := make([]string, 0, len(res.Nodes))
		for node := range res.Nodes {
			nodes = append(nodes, node)
		}
		sort.Strings(nodes)
		for _, node := range nodes {
			ns := res.Nodes[node]
			fmt.Printf("node %s: n=%d cache_hits=%d p50=%.1fms p95=%.1fms p99=%.1fms\n",
				node, ns.OK, ns.CacheHits, ns.Latency.P50MS, ns.Latency.P95MS, ns.Latency.P99MS)
		}
	}

	if cfg.out == "" {
		return nil
	}
	methods, err := scrapeMethods(ctx, cfg.url)
	if err != nil {
		return fmt.Errorf("scraping /v1/metrics: %w", err)
	}
	art := bench.BuildLoadPerf(methods, perfLoad(res), cfg.quick, cfg.seed, time.Now())
	f, err := os.Create(cfg.out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := art.Write(f); err != nil {
		return err
	}
	fmt.Println("perf-trajectory artifact written to", cfg.out)
	return nil
}

// perfLoad converts the client-side result into the artifact section.
func perfLoad(res loadgen.Result) bench.PerfLoad {
	var nodes map[string]bench.PerfLoadNode
	if len(res.Nodes) > 0 {
		nodes = make(map[string]bench.PerfLoadNode, len(res.Nodes))
		for node, ns := range res.Nodes {
			nodes[node] = bench.PerfLoadNode{OK: ns.OK, CacheHits: ns.CacheHits, Latency: perfLatency(ns.Latency)}
		}
	}
	return bench.PerfLoad{
		Mode:        res.Mode,
		Clients:     res.Clients,
		ZipfS:       res.ZipfS,
		Issued:      res.Issued,
		OK:          res.OK,
		CacheHits:   res.CacheHits,
		Rejected:    res.Rejected,
		Errors:      res.Errors,
		ElapsedMS:   res.Elapsed.Milliseconds(),
		AchievedRPS: res.AchievedRPS(),
		Accepted:    perfLatency(res.Accepted),
		Refused:     perfLatency(res.Refused),
		Nodes:       nodes,
	}
}

func perfLatency(s loadgen.LatencySummary) bench.PerfLoadLatency {
	return bench.PerfLoadLatency{Count: s.Count, MeanMS: s.MeanMS, P50MS: s.P50MS, P95MS: s.P95MS, P99MS: s.P99MS}
}

// scrapeMethods pulls the server's per-method serving snapshot for the
// artifact's serving section.
func scrapeMethods(ctx context.Context, baseURL string) ([]serve.MethodSnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/v1/metrics returned %s", resp.Status)
	}
	var body struct {
		Methods []serve.MethodSnapshot `json:"methods"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Methods, nil
}
