// Command failures runs the PG&AKV pipeline over a dataset and attributes
// each wrong answer to the stage that lost it — the analysis behind the
// paper's §IV-E error discussion ("the main errors in the model's
// verification process were caused by...").
//
// Stages, in pipeline order:
//
//	pseudo-empty   Cypher failed to decode; no pseudo-graph at all
//	gg-empty       retrieval/pruning kept no subject (often a mangled
//	               tail-entity spelling)
//	gg-missed      a gold graph was built but does not contain the answer
//	gf-missed      Gg had the answer but verification lost it
//	answer-missed  Gf had the answer but answer generation missed it
//
// Usage:
//
//	failures -dataset simple|qald|nature [-model gpt4] [-kg freebase] [-n 100]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/kg"
	"repro/internal/metrics"
	"repro/internal/qa"
)

func main() {
	dataset := flag.String("dataset", "simple", "dataset: simple|qald|nature")
	model := flag.String("model", "gpt3.5", "model grade: gpt3.5|gpt4")
	kgSource := flag.String("kg", "", "KG source (default: the dataset's own)")
	n := flag.Int("n", 0, "max questions (0 = all)")
	quick := flag.Bool("quick", true, "use the small environment")
	verbose := flag.Bool("v", false, "print each failing question")
	flag.Parse()

	if err := run(*dataset, *model, *kgSource, *n, *quick, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "failures:", err)
		os.Exit(1)
	}
}

func run(dataset, model, kgSource string, n int, quick, verbose bool) error {
	cfg := bench.DefaultEnvConfig()
	if quick {
		cfg = bench.QuickEnvConfig()
	}
	env, err := bench.NewEnv(cfg)
	if err != nil {
		return err
	}

	var ds *qa.Dataset
	switch dataset {
	case "simple":
		ds = env.Suite.Simple
	case "qald":
		ds = env.Suite.QALD
	case "nature":
		ds = env.Suite.Nature
	default:
		return fmt.Errorf("unknown dataset %q", dataset)
	}
	src := bench.DefaultSource(ds.Name)
	if kgSource != "" {
		if src, err = kg.ParseSource(kgSource); err != nil {
			return err
		}
	}
	modelName := bench.ModelGPT35
	if strings.Contains(model, "4") {
		modelName = bench.ModelGPT4
	}
	p, err := env.Pipeline(modelName, src)
	if err != nil {
		return err
	}

	questions := ds.Questions
	if n > 0 && n < len(questions) {
		questions = questions[:n]
	}

	stages := map[string]int{}
	right := 0
	for _, q := range questions {
		res, err := p.Answer(context.Background(), q.Text)
		if err != nil {
			return err
		}
		ok := false
		if q.Open() {
			ok = metrics.RougeLMulti(res.Answer, q.Refs) >= 0.30
		} else {
			ok = metrics.Hit1(res.Answer, q.Golds) > 0
		}
		if ok {
			right++
			continue
		}
		stage := attribute(res.Trace.Gp.Len(), res.Trace.Gg, res.Trace.Gf, q)
		stages[stage]++
		if verbose {
			fmt.Printf("FAIL [%s] %s\n  answer: %.120s\n", stage, q.Text, res.Answer)
		}
	}

	total := len(questions)
	fmt.Printf("%s on %s KG with %s: %d/%d correct (%.1f%%)\n",
		ds.Name, src, modelName, right, total, 100*float64(right)/float64(total))
	fmt.Println("failure attribution:")
	for _, stage := range []string{"pseudo-empty", "gg-empty", "gg-missed", "gf-missed", "answer-missed"} {
		if c := stages[stage]; c > 0 {
			fmt.Printf("  %-14s %3d (%.1f%% of questions)\n", stage, c, 100*float64(c)/float64(total))
		}
	}
	return nil
}

// attribute decides which stage lost a wrong answer.
func attribute(gpLen int, gg, gf interface {
	Len() int
	String() string
}, q qa.Question) string {
	switch {
	case gpLen == 0:
		return "pseudo-empty"
	case gg.Len() == 0:
		return "gg-empty"
	case !containsGold(gg.String(), q):
		return "gg-missed"
	case !containsGold(gf.String(), q):
		return "gf-missed"
	default:
		return "answer-missed"
	}
}

// containsGold reports whether the graph text contains any acceptable
// answer surface (normalised substring check; open questions use the first
// reference's leading entity mentions as a proxy).
func containsGold(graphText string, q qa.Question) bool {
	hay := metrics.NormalizeAnswer(graphText)
	targets := q.Golds
	if q.Open() && len(q.Refs) > 0 {
		targets = []string{q.Refs[0]}
		// A graph "contains" an open answer when it mentions a decent
		// share of the reference's vocabulary; approximate with the first
		// sentence.
		first := q.Refs[0]
		if i := strings.IndexByte(first, '.'); i > 0 {
			targets = []string{first[:i]}
		}
	}
	for _, g := range targets {
		ng := metrics.NormalizeAnswer(g)
		if ng != "" && strings.Contains(hay, ng) {
			return true
		}
	}
	return false
}
