// Command pgakvlb is the replication-aware read load-balancer in front
// of a pgakvd primary and its replicas.
//
// Usage:
//
//	pgakvlb -primary http://host:8080 \
//	        -replicas http://host:8081,http://host:8082 \
//	        [-addr :8090] [-max-lag 64] [-probe-interval 500ms]
//
// Reads (/v1/answer, /v1/batch, /v1/methods, /v1/prompts, /v1/traces*)
// round-robin across replicas that are live (/healthz) and within
// -max-lag records of the primary; writes (/v1/ingest, /v1/snapshot/*,
// /v1/prompts/reload) and everything else forward to the primary.
// Every proxied response carries X-Served-By with the backing node's
// URL.
//
// Read-your-writes: a client that just ingested at epoch E sends its
// next read with "X-Min-Epoch: E"; the router only routes it to a
// replica whose last-probed epoch for every source is >= E, falling
// back to the primary (always current) when none qualifies. Probed
// epochs only ever increase, so the cached value is a lower bound —
// the router can be conservative, never stale.
//
// GET /v1/lb/status reports the node table: health, per-source epochs,
// lag, routed-read counts and primary fallbacks.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/repl"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	primary := flag.String("primary", "", "primary pgakvd base URL (required)")
	replicas := flag.String("replicas", "", "comma-separated replica base URLs")
	maxLag := flag.Uint64("max-lag", 64, "max records (= epochs) a replica may trail the primary and still take reads")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "health/epoch probe cadence")
	flag.Parse()

	if *primary == "" {
		fmt.Fprintln(os.Stderr, "pgakvlb: -primary is required")
		os.Exit(1)
	}
	var replicaURLs []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			replicaURLs = append(replicaURLs, u)
		}
	}

	router, err := repl.NewRouter(repl.RouterConfig{
		Primary:       *primary,
		Replicas:      replicaURLs,
		MaxLag:        *maxLag,
		ProbeInterval: *probeInterval,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pgakvlb:", err)
		os.Exit(1)
	}
	defer router.Close()

	fmt.Printf("routing reads across %d replica(s), writes to %s, max lag %d\n", len(replicaURLs), *primary, *maxLag)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           router,
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("listening on %s\n", *addr)
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "pgakvlb:", err)
		os.Exit(1)
	}
}
