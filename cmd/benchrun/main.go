// Command benchrun regenerates the paper's tables and figures against the
// synthetic environment. See DESIGN.md §4 for the experiment index.
//
// Usage:
//
//	benchrun -experiment all            # every table and figure
//	benchrun -experiment table2         # main results only
//	benchrun -experiment fig2 -quick    # fast, smaller environment
//	benchrun -quick -out BENCH_quick.json   # also log a perf-trajectory artifact
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all",
		"which experiment to run: table1|fig2|table2|table3|table4|table5|scenarios|sweeps|recall|all")
	quick := flag.Bool("quick", false, "use the small test-scale environment")
	seed := flag.Int64("seed", 42, "world/model seed")
	workers := flag.Int("workers", 8, "evaluation parallelism")
	timeout := flag.Duration("timeout", 0, "overall deadline for the run (0 = none)")
	csvPath := flag.String("csv", "", "also write a machine-readable CSV of every Table II cell to this path")
	outPath := flag.String("out", "", "also write a BENCH_*.json perf-trajectory artifact (per-method accuracy, latency p50/p95, token cost) to this path")
	recallN := flag.Int("recall-n", 0, "recall experiment: corpus size (0 = default 100000)")
	recallQueries := flag.Int("recall-queries", 0, "recall experiment: probe count (0 = default 200)")
	recallFloor := flag.Float64("recall-floor", 0.95, "recall experiment: minimum recall@k; below it the run exits non-zero (0 = no gate)")
	recallMinSpeedup := flag.Float64("recall-min-speedup", 5, "recall experiment: minimum exact/hnsw p50 ratio; below it the run exits non-zero (0 = no gate)")
	annM := flag.Int("ann-m", 0, "recall experiment: HNSW M, neighbours per node (0 = vecstore default)")
	annEfc := flag.Int("ann-efc", 0, "recall experiment: HNSW efConstruction beam (0 = vecstore default)")
	annEf := flag.Int("ann-ef", 0, "recall experiment: HNSW efSearch beam (0 = vecstore default)")
	flag.Parse()

	if *experiment == "recall" {
		// Standalone: no environment to build, just the two indexes.
		opts := bench.RecallOptions{
			N: *recallN, Queries: *recallQueries,
			M: *annM, EfConstruction: *annEfc, EfSearch: *annEf,
			Seed: *seed, Floor: *recallFloor, MinSpeedup: *recallMinSpeedup,
		}
		pr, err := bench.RunRecall(opts, os.Stdout)
		if *outPath != "" {
			art := bench.BuildRecallPerf(pr, *seed, time.Now())
			if werr := writeTo(*outPath, art.Write); werr != nil {
				fmt.Fprintln(os.Stderr, "benchrun:", werr)
				os.Exit(1)
			}
			fmt.Println("perf-trajectory artifact written to", *outPath)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
			os.Exit(1)
		}
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx, *experiment, *quick, *seed, *workers, *csvPath, *outPath); err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, experiment string, quick bool, seed int64, workers int, csvPath, outPath string) error {
	cfg := bench.DefaultEnvConfig()
	if quick {
		cfg = bench.QuickEnvConfig()
	}
	cfg.WorldSeed = seed
	cfg.Workers = workers

	start := time.Now()
	env, err := bench.NewEnv(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("environment ready in %v: %s\n", time.Since(start).Round(time.Millisecond), env.World.Stats())
	for src, st := range env.Stores {
		fmt.Printf("  KG[%s]: %s\n", src, st.Stats())
	}
	fmt.Print(env.Suite.Describe())
	fmt.Println()

	out := os.Stdout
	runOne := func(name string) error {
		t := time.Now()
		var err error
		switch name {
		case "table1":
			bench.Table1(out)
		case "fig2":
			_, err = bench.Fig2(ctx, env, out)
		case "table2":
			err = bench.Table2(ctx, env, out)
		case "table3":
			err = bench.Table3(ctx, env, out)
		case "table4":
			err = bench.Table4(ctx, env, out)
		case "table5":
			err = bench.Table5(ctx, env, out)
		case "scenarios":
			err = bench.Scenarios(ctx, env, out)
		case "sweeps":
			err = bench.Sweeps(ctx, env, out)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(t).Round(time.Millisecond))
		return nil
	}

	if experiment == "all" {
		for _, name := range []string{"table1", "fig2", "table2", "table3", "table4", "table5", "scenarios"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
	} else if err := runOne(experiment); err != nil {
		return err
	}

	if csvPath != "" || outPath != "" {
		report, err := collectTable2Report(ctx, env)
		if err != nil {
			return err
		}
		if csvPath != "" {
			if err := writeTo(csvPath, report.WriteCSV); err != nil {
				return err
			}
			fmt.Println("CSV report written to", csvPath)
		}
		if outPath != "" {
			art := bench.BuildPerf(env, report, quick, time.Now())
			if err := writeTo(outPath, art.Write); err != nil {
				return err
			}
			fmt.Println("perf-trajectory artifact written to", outPath)
		}
	}
	return nil
}

// collectTable2Report re-runs every Table II cell plus the scenario-pack
// cells through the Report collector (cells are cheap; the environment is
// already warm) for the machine-readable outputs.
func collectTable2Report(ctx context.Context, env *bench.Env) (*bench.Report, error) {
	r := &bench.Report{Title: "table2"}
	for _, model := range []string{bench.ModelGPT35, bench.ModelGPT4} {
		for _, method := range []string{bench.MethodToG, bench.MethodIO, bench.MethodCoT, bench.MethodSC, bench.MethodRAG, bench.MethodOurs} {
			for _, ds := range []string{"SimpleQuestions", "QALD", "NatureQuestions"} {
				if method == bench.MethodToG && ds == "NatureQuestions" {
					continue
				}
				if err := r.Collect(ctx, env, method, model, ds); err != nil {
					return nil, err
				}
			}
		}
	}
	// Scenario-pack cells: the parametric/graph method split over the four
	// stress sets, GPT-3.5 grade (mirrors bench.Scenarios).
	for _, method := range []string{bench.MethodIO, bench.MethodCoT, bench.MethodRAG, bench.MethodOurs} {
		for _, ds := range []string{"TemporalQuestions", "AggregationQuestions", "AdversarialQuestions", "NoisyQuestions"} {
			if err := r.Collect(ctx, env, method, bench.ModelGPT35, ds); err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}

func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
