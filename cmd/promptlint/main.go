// Command promptlint validates committed .prompt files — the CI gate
// that keeps the prompt registry's load-time guarantees ahead of runtime.
//
//	promptlint [path ...]
//
// Each path is a .prompt file or a directory searched (non-recursively)
// for *.prompt files; with no arguments it lints internal/prompts/defaults.
// Every file must parse under the strict frontmatter grammar and pass the
// full Prompt.Validate contract: declared vars matching the body's
// placeholders, every canonical task marker present, the body classifying
// as its declared task, and the extractor probe round-tripping. On top of
// the parser's checks the linter enforces the repository conventions that
// only matter for committed files: the filename must be
// <name>.v<version>.prompt and no (name, version) pair may appear twice
// across the linted set.
//
// Exit status 0 when every file is clean, 1 when anything fails — CI runs
// this over the committed defaults and also proves the failure path by
// doctoring a copy and asserting a nonzero exit.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/prompts"
)

func main() {
	paths := os.Args[1:]
	if len(paths) == 0 {
		paths = []string{filepath.Join("internal", "prompts", "defaults")}
	}
	files, err := collect(paths)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promptlint:", err)
		os.Exit(1)
	}
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "promptlint: no .prompt files found under", paths)
		os.Exit(1)
	}

	failed := 0
	seen := map[string]string{} // "name@version" -> first file
	for _, path := range files {
		p, err := lintFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "promptlint: %s: %v\n", path, err)
			failed++
			continue
		}
		key := fmt.Sprintf("%s@%d", p.Name, p.Version)
		if first, dup := seen[key]; dup {
			fmt.Fprintf(os.Stderr, "promptlint: %s: %s already defined by %s\n", path, key, first)
			failed++
			continue
		}
		seen[key] = path
		fmt.Printf("ok %s (%s task=%s)\n", path, key, p.Task)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "promptlint: %d of %d prompt files failed\n", failed, len(files))
		os.Exit(1)
	}
	fmt.Printf("%d prompt files clean\n", len(files))
}

// collect expands the argument paths into a sorted list of .prompt files.
func collect(paths []string) ([]string, error) {
	var files []string
	for _, path := range paths {
		info, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, path)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(path, "*.prompt"))
		if err != nil {
			return nil, err
		}
		files = append(files, matches...)
	}
	sort.Strings(files)
	return files, nil
}

// lintFile parses one .prompt file (ParsePrompt runs the full Validate
// contract) and enforces the <name>.v<version>.prompt filename convention.
func lintFile(path string) (*prompts.Prompt, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := prompts.ParsePrompt(data)
	if err != nil {
		return nil, err
	}
	if want := fmt.Sprintf("%s.v%d.prompt", p.Name, p.Version); filepath.Base(path) != want {
		return nil, fmt.Errorf("filename should be %s for %s@%d", want, p.Name, p.Version)
	}
	return p, nil
}
