package e2e

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// lbStatus is the slice of /v1/lb/status these tests read.
type lbStatus struct {
	Primary struct {
		Healthy bool `json:"healthy"`
	} `json:"primary"`
	Replicas []struct {
		URL      string `json:"url"`
		Healthy  bool   `json:"healthy"`
		Requests uint64 `json:"requests_routed"`
	} `json:"replicas"`
	MinEpochReads uint64 `json:"min_epoch_reads"`
}

// TestRouterEndToEnd runs the full topology as real processes — primary,
// replica, pgakvlb — and checks the router's contract over real sockets:
// writes land on the primary even when sent to the router, and a
// read-your-writes client (ingest at epoch E, read with X-Min-Epoch: E)
// never sees pre-E content no matter which node the router picks.
func TestRouterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real binaries")
	}
	if raceEnabled {
		t.Skip("process-level chaos; race coverage lives in internal/repl")
	}
	bins := binaries(t)
	pgakvd := filepath.Join(bins, "pgakvd")
	pgakvlb := filepath.Join(bins, "pgakvlb")
	common := []string{"-quick", "-seed", "11", "-fsync", "always", "-compact-threshold", "0", "-cache-size", "0"}

	primary := startNode(t, "primary", pgakvd, freePort(t), append([]string{"-data-dir", t.TempDir()}, common...)...)
	waitHealthy(t, primary, 2*time.Minute)
	replica := startNode(t, "replica", pgakvd, freePort(t), append([]string{"-data-dir", t.TempDir(), "-replica-of", primary.url}, common...)...)
	waitHealthy(t, replica, 2*time.Minute)

	lb := startNode(t, "router", pgakvlb, freePort(t),
		"-primary", primary.url, "-replicas", replica.url, "-max-lag", "64", "-probe-interval", "50ms")
	waitHealthy(t, lb, 30*time.Second)
	waitFor(t, 30*time.Second, "router to see a healthy replica", func() bool {
		var st lbStatus
		if err := getJSON(t, lb.url+"/v1/lb/status", &st); err != nil {
			return false
		}
		return st.Primary.Healthy && len(st.Replicas) == 1 && st.Replicas[0].Healthy
	})

	// Read-your-writes through the router, 40 rounds: each ingest goes
	// through the router (forwarded to the primary), and the immediate
	// follow-up read pins X-Min-Epoch to the ingest's epoch. The replica
	// is racing to apply; whichever node serves, the fact must be there.
	client := &http.Client{Timeout: 30 * time.Second}
	servedBy := map[string]int{}
	for i := 0; i < 40; i++ {
		var ing struct {
			Epoch uint64 `json:"epoch"`
		}
		postJSON(t, lb.url+"/v1/ingest", fact(i), &ing)
		if ing.Epoch == 0 {
			t.Fatalf("round %d: ingest through router returned epoch 0", i)
		}

		req, err := http.NewRequest(http.MethodPost, lb.url+"/v1/answer",
			strings.NewReader(fmt.Sprintf(`{"question": %q, "method": "rag"}`, question(i))))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Min-Epoch", fmt.Sprint(ing.Epoch))
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var ans struct {
			Answer string `json:"answer"`
			Epoch  uint64 `json:"epoch"`
		}
		if err := decodeInto(resp, &ans); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if ans.Epoch < ing.Epoch {
			t.Fatalf("round %d: stale read — ingested at epoch %d, answered at epoch %d", i, ing.Epoch, ans.Epoch)
		}
		if !strings.Contains(ans.Answer, fmt.Sprintf("Zephyr%d", i)) {
			t.Fatalf("round %d: answer missing the just-ingested fact: %q", i, ans.Answer)
		}
		node := resp.Header.Get("X-Served-By")
		if node == "" {
			t.Fatalf("round %d: response missing X-Served-By", i)
		}
		servedBy[node]++
	}
	t.Logf("reads served by: %v", servedBy)

	var st lbStatus
	if err := getJSON(t, lb.url+"/v1/lb/status", &st); err != nil {
		t.Fatal(err)
	}
	if st.MinEpochReads != 40 {
		t.Fatalf("router counted %d min-epoch reads, want 40", st.MinEpochReads)
	}
}

// decodeInto reads an *http.Response body as JSON and closes it.
func decodeInto(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
