// Package e2e drives the real binaries — pgakvd primaries, -replica-of
// replicas and the pgakvlb router — as separate OS processes over real
// sockets. These are the chaos and topology tests: kill -9, restart,
// bootstrap, catch-up. Logic-level coverage lives in the package tests;
// everything here exists to prove the composed system survives what the
// package tests cannot simulate (a process dying mid-syscall).
package e2e

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// binaries builds pgakvd and pgakvlb once per test run and returns the
// directory holding them.
func binaries(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := filepath.Abs("testbin")
		if err != nil {
			buildErr = err
			return
		}
		buildDir = dir
		for _, target := range []string{"./cmd/pgakvd", "./cmd/pgakvlb"} {
			cmd := exec.Command("go", "build", "-o", dir+"/", target)
			cmd.Dir = ".." // repo root
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = fmt.Errorf("go build %s: %v\n%s", target, err, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildDir
}

// freePort asks the kernel for an unused localhost port.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

// logBuffer collects a child process's combined output; safe for the
// process's writer goroutine and the test goroutine to share.
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// node is one running child process (pgakvd or pgakvlb).
type node struct {
	name string
	url  string
	cmd  *exec.Cmd
	logs *logBuffer
	done chan struct{} // closed when the process has been reaped
}

// startNode launches a binary and registers cleanup. The caller still
// has to waitHealthy before using it.
func startNode(t *testing.T, name, bin string, port int, args ...string) *node {
	t.Helper()
	n := &node{
		name: name,
		url:  fmt.Sprintf("http://127.0.0.1:%d", port),
		logs: &logBuffer{},
		done: make(chan struct{}),
	}
	args = append([]string{"-addr", fmt.Sprintf("127.0.0.1:%d", port)}, args...)
	n.cmd = exec.Command(bin, args...)
	n.cmd.Stdout = n.logs
	n.cmd.Stderr = n.logs
	if err := n.cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", name, err)
	}
	go func() {
		n.cmd.Wait()
		close(n.done)
	}()
	t.Cleanup(func() {
		n.kill9()
		if t.Failed() {
			t.Logf("--- %s output ---\n%s", n.name, n.logs.String())
		}
	})
	return n
}

// kill9 delivers SIGKILL — the process gets no chance to flush, drain
// or say goodbye — and waits for the kernel to reap it.
func (n *node) kill9() {
	if n.cmd.Process != nil {
		n.cmd.Process.Kill()
	}
	select {
	case <-n.done:
	case <-time.After(10 * time.Second):
	}
}

func waitHealthy(t *testing.T, n *node, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(n.url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		select {
		case <-n.done:
			t.Fatalf("%s exited before becoming healthy:\n%s", n.name, n.logs.String())
		case <-time.After(50 * time.Millisecond):
		}
	}
	t.Fatalf("%s not healthy after %v:\n%s", n.name, timeout, n.logs.String())
}

func postJSON(t *testing.T, url string, body string, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %s\n%s", url, resp.Status, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("POST %s: decoding %q: %v", url, raw, err)
		}
	}
	return resp
}

func getJSON(t *testing.T, url string, out any) error {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.Unmarshal(raw, out)
}

// nodeMetrics is the slice of /v1/metrics these tests read.
type nodeMetrics struct {
	Substrates map[string]struct {
		Epoch      uint64 `json:"epoch"`
		Durability struct {
			LastCheckpointEpoch uint64 `json:"last_checkpoint_epoch"`
			Recovery            struct {
				CheckpointEpoch uint64 `json:"checkpoint_epoch"`
				ReplayedRecords int    `json:"replayed_records"`
			} `json:"recovery"`
		} `json:"durability"`
	} `json:"substrates"`
	Replication *struct {
		Role    string `json:"role"`
		Primary string `json:"primary"`
		Sources map[string]struct {
			Connected        bool   `json:"connected"`
			AppliedEpoch     uint64 `json:"applied_epoch"`
			HeadEpoch        uint64 `json:"head_epoch"`
			LagRecords       uint64 `json:"lag_records"`
			RecordsApplied   uint64 `json:"records_applied"`
			RecordsSkipped   uint64 `json:"records_skipped"`
			Reconnects       uint64 `json:"reconnects"`
			TruncatedSignals uint64 `json:"truncated_signals"`
		} `json:"sources"`
		CaughtUp bool `json:"caught_up"`
	} `json:"replication"`
}

func metrics(t *testing.T, n *node) (nodeMetrics, error) {
	t.Helper()
	var m nodeMetrics
	err := getJSON(t, n.url+"/v1/metrics", &m)
	return m, err
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", timeout, what)
}

// canonicalAnswer fetches /v1/answer and returns the response with its
// timing-dependent fields stripped and keys re-marshalled in sorted
// order, so two nodes serving identical content produce byte-identical
// strings.
func canonicalAnswer(t *testing.T, n *node, question, method string) string {
	t.Helper()
	var m map[string]any
	postJSON(t, n.url+"/v1/answer",
		fmt.Sprintf(`{"question": %q, "method": %q}`, question, method), &m)
	delete(m, "elapsed_ms")
	delete(m, "cached")
	raw, err := json.Marshal(m) // map keys marshal sorted
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}
