//go:build race

package e2e

// raceEnabled reports whether this test binary runs under the race
// detector.
const raceEnabled = true
