package e2e

import (
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fact i is a synthetic triple every node must agree on; question(i)
// retrieves it through the normal answer path.
func fact(i int) string {
	return fmt.Sprintf(`{"kg": "wikidata", "triples": [{"subject": "Widget%d", "relation": "secret designation", "object": "Zephyr%d"}]}`, i, i)
}

func question(i int) string {
	return fmt.Sprintf("What is the secret designation of Widget%d?", i)
}

// TestChaosReplicaKillAndCatchUp is the replication chaos suite from the
// issue: a real primary with two real replica processes, ingest under
// load, kill -9 one replica mid-stream, compact the primary past the
// dead replica's epoch (so its WAL position is truncated away and the
// restart MUST take the bootstrap path), restart it, and require full
// catch-up: caught_up in /v1/metrics, epochs that never regress, and
// answers byte-identical to the primary on every node.
func TestChaosReplicaKillAndCatchUp(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real binaries")
	}
	if raceEnabled {
		t.Skip("process-level chaos; race coverage lives in internal/repl")
	}
	pgakvd := filepath.Join(binaries(t), "pgakvd")

	// -compact-threshold 0: epochs move only when this test says so.
	// -cache-size 0: every answer runs the pipeline, nothing is replayed
	// from cache. -fsync always: a kill -9 loses at most a torn tail.
	common := []string{"-quick", "-seed", "11", "-fsync", "always", "-compact-threshold", "0", "-cache-size", "0"}
	pDir, r1Dir, r2Dir := t.TempDir(), t.TempDir(), t.TempDir()

	primary := startNode(t, "primary", pgakvd, freePort(t), append([]string{"-data-dir", pDir}, common...)...)
	waitHealthy(t, primary, 2*time.Minute)

	r1Port := freePort(t)
	r1Args := append([]string{"-data-dir", r1Dir, "-replica-of", primary.url}, common...)
	r1 := startNode(t, "replica1", pgakvd, r1Port, r1Args...)
	r2 := startNode(t, "replica2", pgakvd, freePort(t), append([]string{"-data-dir", r2Dir, "-replica-of", primary.url}, common...)...)
	waitHealthy(t, r1, 2*time.Minute)
	waitHealthy(t, r2, 2*time.Minute)

	ingest := func(i int) {
		t.Helper()
		postJSON(t, primary.url+"/v1/ingest", fact(i), nil)
	}

	// Phase 1: steady state. 20 facts, both replicas follow live.
	for i := 0; i < 20; i++ {
		ingest(i)
	}
	var pEpoch uint64
	waitFor(t, 30*time.Second, "both replicas caught up with phase 1", func() bool {
		pm, err := metrics(t, primary)
		if err != nil {
			return false
		}
		pEpoch = pm.Substrates["wikidata"].Epoch
		for _, r := range []*node{r1, r2} {
			m, err := metrics(t, r)
			if err != nil || m.Replication == nil || !m.Replication.CaughtUp {
				return false
			}
			if m.Substrates["wikidata"].Epoch != pEpoch {
				return false
			}
		}
		return true
	})
	preKill, err := metrics(t, r1)
	if err != nil {
		t.Fatal(err)
	}
	preKillEpoch := preKill.Substrates["wikidata"].Epoch
	t.Logf("phase 1 done: primary epoch %d, replicas caught up", pEpoch)

	// Phase 2: ingest under load from a background writer, and kill -9
	// replica1 while records are in flight — mid-stream, mid-apply,
	// possibly mid-WAL-write on its side.
	ingestErrs := make(chan error, 1)
	ingestDone := make(chan struct{})
	go func() {
		defer close(ingestDone)
		for i := 20; i < 60; i++ {
			resp, err := http.Post(primary.url+"/v1/ingest", "application/json", strings.NewReader(fact(i)))
			if err != nil {
				ingestErrs <- fmt.Errorf("background ingest %d: %v", i, err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				ingestErrs <- fmt.Errorf("background ingest %d: %s", i, resp.Status)
				return
			}
		}
	}()
	time.Sleep(30 * time.Millisecond) // let some records be in flight
	r1.kill9()
	t.Log("replica1 killed with SIGKILL mid-stream")
	<-ingestDone
	select {
	case err := <-ingestErrs:
		t.Fatal(err)
	default:
	}

	// Phase 3: compact the primary. On a durable node this also writes a
	// checkpoint and truncates the WAL — the record chain replica1 died
	// holding a position in no longer exists, so its restart cannot
	// resume by epoch alone and must re-bootstrap.
	var compacted struct {
		Epoch uint64 `json:"epoch"`
	}
	postJSON(t, primary.url+"/v1/snapshot/compact", `{"kg": "wikidata"}`, &compacted)
	if compacted.Epoch <= preKillEpoch {
		t.Fatalf("compaction epoch %d did not pass the dead replica's epoch %d", compacted.Epoch, preKillEpoch)
	}
	// A few more facts after the checkpoint, so catch-up needs both the
	// bootstrap tarball AND the streamed WAL tail.
	for i := 60; i < 65; i++ {
		ingest(i)
	}

	// Phase 4: restart replica1 on its old data dir and port.
	r1 = startNode(t, "replica1-restarted", pgakvd, r1Port, r1Args...)
	waitHealthy(t, r1, 2*time.Minute)

	// Epochs must never regress: every observation while catching up is
	// >= the one before, and the first is >= the pre-kill epoch (the
	// bootstrapped checkpoint is far ahead of it).
	lastSeen := preKillEpoch
	waitFor(t, 60*time.Second, "restarted replica1 to catch up", func() bool {
		m, err := metrics(t, r1)
		if err != nil {
			return false
		}
		e := m.Substrates["wikidata"].Epoch
		if e < lastSeen {
			t.Fatalf("replica1 epoch regressed: %d after %d", e, lastSeen)
		}
		lastSeen = e
		pm, err := metrics(t, primary)
		if err != nil {
			return false
		}
		return m.Replication != nil && m.Replication.CaughtUp &&
			e == pm.Substrates["wikidata"].Epoch
	})
	after, err := metrics(t, r1)
	if err != nil {
		t.Fatal(err)
	}
	rec := after.Substrates["wikidata"].Durability.Recovery
	if rec.CheckpointEpoch < compacted.Epoch {
		t.Fatalf("restart recovered checkpoint epoch %d; want >= %d — the bootstrap path was not taken", rec.CheckpointEpoch, compacted.Epoch)
	}
	ws := after.Replication.Sources["wikidata"]
	if ws.LagRecords != 0 || !ws.Connected {
		t.Fatalf("replica1 not fully caught up: %+v", ws)
	}
	t.Logf("replica1 restarted: bootstrapped checkpoint epoch %d, applied %d tail record(s), epoch %d",
		rec.CheckpointEpoch, ws.RecordsApplied, after.Substrates["wikidata"].Epoch)

	// Replica2 rode through everything live.
	waitFor(t, 30*time.Second, "replica2 caught up", func() bool {
		m, err := metrics(t, r2)
		pm, perr := metrics(t, primary)
		return err == nil && perr == nil && m.Replication != nil && m.Replication.CaughtUp &&
			m.Substrates["wikidata"].Epoch == pm.Substrates["wikidata"].Epoch
	})

	// Phase 5: byte-identity. With ingestion quiesced and all three nodes
	// at the same epoch, the canonicalised answer JSON (everything except
	// wall-clock timing) must match byte for byte — same answer text,
	// same epoch, same token accounting — on every node, for facts from
	// every phase: pre-kill, while replica1 was dead, and post-restart.
	for _, i := range []int{0, 7, 19, 25, 42, 59, 61, 64} {
		for _, method := range []string{"rag", "ours"} {
			want := canonicalAnswer(t, primary, question(i), method)
			// Only rag answers verbatim from retrieved triples; "ours" runs
			// the full pipeline and may phrase (or even miss) the fact — what
			// matters there is that every node phrases it identically.
			if method == "rag" && !strings.Contains(want, fmt.Sprintf("Zephyr%d", i)) {
				t.Fatalf("primary answer for fact %d (%s) does not contain the ingested object: %s", i, method, want)
			}
			for _, r := range []*node{r1, r2} {
				if got := canonicalAnswer(t, r, question(i), method); got != want {
					t.Errorf("%s diverges from primary on fact %d (%s):\n  primary: %s\n  %s: %s", r.name, i, method, want, r.name, got)
				}
			}
		}
	}
}

// TestReplicaRedirectsIngest: a replica process never accepts a local
// write — it 307s to the primary so a redirect-following client still
// lands the ingest in the right place.
func TestReplicaRedirectsIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real binaries")
	}
	if raceEnabled {
		t.Skip("process-level chaos; race coverage lives in internal/repl")
	}
	pgakvd := filepath.Join(binaries(t), "pgakvd")
	common := []string{"-quick", "-seed", "11", "-fsync", "always", "-compact-threshold", "0", "-cache-size", "0"}

	primary := startNode(t, "primary", pgakvd, freePort(t), append([]string{"-data-dir", t.TempDir()}, common...)...)
	waitHealthy(t, primary, 2*time.Minute)
	replica := startNode(t, "replica", pgakvd, freePort(t), append([]string{"-data-dir", t.TempDir(), "-replica-of", primary.url}, common...)...)
	waitHealthy(t, replica, 2*time.Minute)

	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse // surface the 307 instead of following it
	}}
	resp, err := client.Post(replica.url+"/v1/ingest", "application/json", strings.NewReader(fact(0)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("replica ingest: %s, want 307", resp.Status)
	}
	if loc := resp.Header.Get("Location"); loc != primary.url+"/v1/ingest" {
		t.Fatalf("redirect Location = %q, want %q", loc, primary.url+"/v1/ingest")
	}

	// And a stock client that follows redirects lands the write on the
	// primary, which then ships it right back to this replica.
	postJSON(t, replica.url+"/v1/ingest", fact(1), nil)
	waitFor(t, 30*time.Second, "redirected ingest to replicate back", func() bool {
		m, err := metrics(t, replica)
		if err != nil || m.Replication == nil {
			return false
		}
		return m.Replication.CaughtUp && m.Replication.Sources["wikidata"].RecordsApplied >= 1
	})
	want := canonicalAnswer(t, primary, question(1), "rag")
	if got := canonicalAnswer(t, replica, question(1), "rag"); got != want {
		t.Fatalf("replica answer diverges after redirected ingest:\n  primary: %s\n  replica: %s", want, got)
	}
}
