// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (DESIGN.md §4) as testing.B benchmarks, plus ablation
// benches for the design choices DESIGN.md §5 calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the reproduced scores via b.ReportMetric, so the
// bench output doubles as a compact experiment log. The environment is the
// test-scale one; cmd/benchrun runs the paper-scale version.
package repro_test

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/answer"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/kg"
	"repro/internal/qa"
	"repro/internal/serve"
	"repro/internal/vecstore"
)

var (
	envOnce sync.Once
	envVal  *bench.Env
	envErr  error
)

func sharedEnv(b *testing.B) *bench.Env {
	b.Helper()
	envOnce.Do(func() {
		envVal, envErr = bench.NewEnv(bench.QuickEnvConfig())
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return envVal
}

// runCell evaluates one (method, model, dataset) cell once per iteration
// and reports the score as a metric.
func runCell(b *testing.B, method, model string, ds *qa.Dataset, src kg.Source) {
	b.Helper()
	env := sharedEnv(b)
	var score float64
	for i := 0; i < b.N; i++ {
		cell, err := env.Run(context.Background(), method, model, ds, src)
		if err != nil {
			b.Fatal(err)
		}
		score = cell.Score
	}
	b.ReportMetric(score, "score")
	b.ReportMetric(float64(len(ds.Questions)), "questions")
}

// BenchmarkTable1CapabilityMatrix regenerates the qualitative Table I.
func BenchmarkTable1CapabilityMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table1(io.Discard)
	}
}

// BenchmarkFig2PseudoGraphAccuracy regenerates the §III-A structural
// validity figures (Cypher ≈98 % vs direct ≈75 %).
func BenchmarkFig2PseudoGraphAccuracy(b *testing.B) {
	env := sharedEnv(b)
	var res bench.Fig2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.Fig2(context.Background(), env, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.CypherValid, "cypher-valid-%")
	b.ReportMetric(res.DirectValid, "direct-valid-%")
}

// BenchmarkTable2MainResults regenerates every Table II cell. Sub-benchmarks
// are named Model/Method/Dataset.
func BenchmarkTable2MainResults(b *testing.B) {
	env := sharedEnv(b)
	for _, model := range []string{bench.ModelGPT35, bench.ModelGPT4} {
		for _, method := range []string{bench.MethodToG, bench.MethodIO, bench.MethodCoT, bench.MethodSC, bench.MethodRAG, bench.MethodOurs} {
			for _, ds := range env.Suite.Datasets() {
				if method == bench.MethodToG && ds.Name == "NatureQuestions" {
					continue
				}
				name := fmt.Sprintf("%s/%s/%s", model, method, ds.Name)
				dsLocal := ds
				b.Run(name, func(b *testing.B) {
					runCell(b, method, model, dsLocal, bench.DefaultSource(dsLocal.Name))
				})
			}
		}
	}
}

// BenchmarkTable3MultiSource regenerates the KG-source generalisation rows:
// GPT-3.5 PG&AKV over each KG schema on SimpleQuestions and NatureQuestions.
func BenchmarkTable3MultiSource(b *testing.B) {
	env := sharedEnv(b)
	for _, src := range []kg.Source{kg.SourceFreebase, kg.SourceWikidata} {
		for _, ds := range []*qa.Dataset{env.Suite.Simple, env.Suite.Nature} {
			name := fmt.Sprintf("Ours-%s/%s", src, ds.Name)
			dsLocal, srcLocal := ds, src
			b.Run(name, func(b *testing.B) {
				runCell(b, bench.MethodOurs, bench.ModelGPT35, dsLocal, srcLocal)
			})
		}
	}
}

// BenchmarkTable4AblationGPT35 regenerates the GPT-3.5 reference ablation.
func BenchmarkTable4AblationGPT35(b *testing.B) {
	benchAblation(b, bench.ModelGPT35)
}

// BenchmarkTable5AblationGPT4 regenerates the GPT-4 reference ablation.
func BenchmarkTable5AblationGPT4(b *testing.B) {
	benchAblation(b, bench.ModelGPT4)
}

func benchAblation(b *testing.B, model string) {
	env := sharedEnv(b)
	for _, row := range []struct{ label, method string }{
		{"CoT", bench.MethodCoT},
		{"withGp", bench.MethodOursGp},
		{"withGf", bench.MethodOurs},
	} {
		for _, ds := range []*qa.Dataset{env.Suite.QALD, env.Suite.Nature} {
			dsLocal, rowLocal := ds, row
			b.Run(fmt.Sprintf("%s/%s", rowLocal.label, dsLocal.Name), func(b *testing.B) {
				runCell(b, rowLocal.method, model, dsLocal, bench.DefaultSource(dsLocal.Name))
			})
		}
	}
}

// --- Ablations beyond the paper's tables (DESIGN.md §5) ---

// BenchmarkAblationConfidenceThreshold sweeps the pruning threshold around
// the paper's 0.7 on QALD with the full pipeline.
func BenchmarkAblationConfidenceThreshold(b *testing.B) {
	env := sharedEnv(b)
	for _, th := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
		th := th
		b.Run(fmt.Sprintf("threshold=%.1f", th), func(b *testing.B) {
			cfg := bench.QuickEnvConfig()
			cfg.Core.ConfidenceThreshold = th
			swept, err := bench.NewEnv(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var score float64
			for i := 0; i < b.N; i++ {
				cell, err := swept.Run(context.Background(), bench.MethodOurs, bench.ModelGPT35,
					env.Suite.QALD, kg.SourceWikidata)
				if err != nil {
					b.Fatal(err)
				}
				score = cell.Score
			}
			b.ReportMetric(score, "score")
		})
	}
}

// BenchmarkAblationTopK sweeps the per-triple retrieval depth around the
// paper's 10.
func BenchmarkAblationTopK(b *testing.B) {
	env := sharedEnv(b)
	for _, k := range []int{3, 5, 10, 20} {
		k := k
		b.Run(fmt.Sprintf("topk=%d", k), func(b *testing.B) {
			cfg := bench.QuickEnvConfig()
			cfg.Core.TopK = k
			swept, err := bench.NewEnv(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var score float64
			for i := 0; i < b.N; i++ {
				cell, err := swept.Run(context.Background(), bench.MethodOurs, bench.ModelGPT35,
					env.Suite.Simple, kg.SourceFreebase)
				if err != nil {
					b.Fatal(err)
				}
				score = cell.Score
			}
			b.ReportMetric(score, "score")
		})
	}
}

// --- Microbenchmarks of the substrates (throughput numbers) ---

// BenchmarkPipelineSingleQuestion measures one full PG&AKV run.
func BenchmarkPipelineSingleQuestion(b *testing.B) {
	env := sharedEnv(b)
	p, err := env.Pipeline(bench.ModelGPT35, kg.SourceWikidata)
	if err != nil {
		b.Fatal(err)
	}
	q := env.Suite.QALD.Questions[0].Text
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Answer(context.Background(), q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVectorSearch measures semantic-query throughput over the KG.
func BenchmarkVectorSearch(b *testing.B) {
	env := sharedEnv(b)
	idx := env.Indexes[kg.SourceWikidata]
	query := env.Suite.Simple.Questions[0].Text
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Search(query, 10)
	}
}

// BenchmarkShardedVsSingleSearch measures the substrate's headline perf
// win: a 50k-triple index scanned as one segment versus fixed-size shards
// searched concurrently and merged by score. Both sub-benchmarks run the
// same exact (full-scan) search with a pre-encoded query, so the delta is
// purely the parallel fan-out.
func BenchmarkShardedVsSingleSearch(b *testing.B) {
	enc := embed.NewEncoder()
	const n = 50000
	triples := make([]kg.Triple, n)
	for i := range triples {
		triples[i] = kg.Triple{
			Subject:  fmt.Sprintf("entity %d of cluster %d", i, i%97),
			Relation: []string{"population", "area", "country", "elevation"}[i%4],
			Object:   fmt.Sprintf("%d", 1000+i),
		}
	}
	single := vecstore.BuildTriples(enc, triples)
	sharded := vecstore.BuildSharded(enc, triples, vecstore.DefaultShardSize)
	qv := enc.Encode("entity 4242 of cluster 13 population")

	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if hits := single.SearchVector(qv, 10); len(hits) != 10 {
				b.Fatalf("got %d hits", len(hits))
			}
		}
	})
	b.Run("sharded", func(b *testing.B) {
		b.ReportMetric(float64(sharded.Shards()), "shards")
		for i := 0; i < b.N; i++ {
			if hits := sharded.SearchVector(qv, 10); len(hits) != 10 {
				b.Fatalf("got %d hits", len(hits))
			}
		}
	})
}

// BenchmarkCypherDecode measures pseudo-graph decode throughput.
func BenchmarkCypherDecode(b *testing.B) {
	env := sharedEnv(b)
	p, err := env.Pipeline(bench.ModelGPT35, kg.SourceWikidata)
	if err != nil {
		b.Fatal(err)
	}
	var tr core.Trace
	if _, err := p.GeneratePseudoGraph(context.Background(), env.Suite.QALD.Questions[0].Text, &tr); err != nil {
		b.Fatal(err)
	}
	code := tr.PseudoCode
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.GeneratePseudoGraph(context.Background(), env.Suite.QALD.Questions[0].Text, nil); err != nil {
			b.Fatal(err)
		}
	}
	_ = code
}

// --- Serving-path benchmarks (internal/serve) ---

// BenchmarkServeCacheColdVsWarm measures the serving stack's answer cache:
// the cold sub-benchmark re-runs the full pipeline every iteration, the
// warm one is primed once and then answers from the LRU.
func BenchmarkServeCacheColdVsWarm(b *testing.B) {
	env := sharedEnv(b)
	base, err := env.Answerer(bench.MethodOurs, bench.ModelGPT35, kg.SourceWikidata)
	if err != nil {
		b.Fatal(err)
	}
	q := answer.Query{Text: env.Suite.QALD.Questions[0].Text}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := base.Answer(context.Background(), q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		cache := serve.NewCache(serve.CacheConfig{Size: 64, TTL: time.Hour})
		stack := serve.Stack(base, serve.WithCache(cache, serve.StaticScope("bench")))
		if _, err := stack.Answer(context.Background(), q); err != nil {
			b.Fatal(err) // prime
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := stack.Answer(context.Background(), q); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if s := cache.Stats(); s.Hits < int64(b.N) {
			b.Fatalf("warm path missed the cache: %+v", s)
		}
	})
}

// BenchmarkBatchDedup measures duplicate folding in answer.Batch: a batch
// that repeats each distinct question 8x, with and without DedupIdentical.
func BenchmarkBatchDedup(b *testing.B) {
	env := sharedEnv(b)
	ans, err := env.Answerer(bench.MethodCoT, bench.ModelGPT35, kg.SourceWikidata)
	if err != nil {
		b.Fatal(err)
	}
	const repeats = 8
	var queries []answer.Query
	for _, q := range env.Suite.QALD.Questions[:4] {
		for r := 0; r < repeats; r++ {
			queries = append(queries, answer.Query{Text: q.Text})
		}
	}
	for _, mode := range []struct {
		name string
		opts []answer.BatchOption
	}{
		{"naive", []answer.BatchOption{answer.Concurrency(4)}},
		{"dedup", []answer.BatchOption{answer.Concurrency(4), answer.DedupIdentical()}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				items := answer.Batch(context.Background(), ans, queries, mode.opts...)
				if err := answer.FirstError(items); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPruneStrategy compares the paper's two-step pruning
// against count-only and no pruning (DESIGN.md §5) on QALD.
func BenchmarkAblationPruneStrategy(b *testing.B) {
	env := sharedEnv(b)
	for _, strat := range []core.PruneStrategy{core.PruneTwoStep, core.PruneCountOnly, core.PruneNone} {
		strat := strat
		b.Run(strat.String(), func(b *testing.B) {
			cfg := bench.QuickEnvConfig()
			cfg.Core.Prune = strat
			swept, err := bench.NewEnv(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var score float64
			for i := 0; i < b.N; i++ {
				cell, err := swept.Run(context.Background(), bench.MethodOurs, bench.ModelGPT35,
					env.Suite.QALD, kg.SourceWikidata)
				if err != nil {
					b.Fatal(err)
				}
				score = cell.Score
			}
			b.ReportMetric(score, "score")
		})
	}
}

// BenchmarkAblationContextOrder compares confidence-ordered gold-graph
// placement (the paper's choice) against a shuffled order on QALD.
func BenchmarkAblationContextOrder(b *testing.B) {
	env := sharedEnv(b)
	for _, shuffled := range []bool{false, true} {
		shuffled := shuffled
		name := "confidence-sorted"
		if shuffled {
			name = "shuffled"
		}
		b.Run(name, func(b *testing.B) {
			cfg := bench.QuickEnvConfig()
			cfg.Core.ShuffleGoldOrder = shuffled
			swept, err := bench.NewEnv(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var score float64
			for i := 0; i < b.N; i++ {
				cell, err := swept.Run(context.Background(), bench.MethodOurs, bench.ModelGPT35,
					env.Suite.QALD, kg.SourceWikidata)
				if err != nil {
					b.Fatal(err)
				}
				score = cell.Score
			}
			b.ReportMetric(score, "score")
		})
	}
}

// BenchmarkStagedVsSequential proves the staged execution engine costs
// nothing over the pre-refactor sequential path: "staged" runs
// Pipeline.Answer (the exec composition with spans, per-stage usage and
// deadline plumbing), "sequential" hand-runs the same four steps the way
// the old monolithic Answer did. CI's bench smoke keeps the ratio visible.
func BenchmarkStagedVsSequential(b *testing.B) {
	env := sharedEnv(b)
	p, err := env.Pipeline(bench.ModelGPT35, kg.SourceWikidata)
	if err != nil {
		b.Fatal(err)
	}
	q := env.Suite.QALD.Questions[0].Text
	ctx := context.Background()

	b.Run("staged", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Answer(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var tr core.Trace
			tr.Question = q
			gp, err := p.GeneratePseudoGraph(ctx, q, &tr)
			if err != nil {
				b.Fatal(err)
			}
			gg := p.QueryAndPrune(gp, &tr)
			gf, err := p.Verify(ctx, q, gp, gg, &tr)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.AnswerFromGraph(ctx, q, gf, &tr); err != nil {
				b.Fatal(err)
			}
		}
	})
}
