// Package propgraph implements the in-memory property graph that stands in
// for Neo4j in the Pseudo-Graph Generation step (DESIGN.md §2). LLM-emitted
// Cypher CREATE statements are executed against a Graph by internal/cypher,
// and the resulting nodes/relationships are decoded back into triples.
//
// The model follows Neo4j's: nodes carry one or more labels and a property
// map; relationships are directed, typed edges with optional properties.
// Node identity during a Cypher script's execution is handled by the cypher
// executor's variable bindings; this package only stores the materialised
// graph.
package propgraph

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Value is a property value: string, int64, float64 or bool.
type Value struct {
	kind byte // 's', 'i', 'f', 'b'
	s    string
	i    int64
	f    float64
	b    bool
}

// StringValue returns a string-typed property value.
func StringValue(s string) Value { return Value{kind: 's', s: s} }

// IntValue returns an integer-typed property value.
func IntValue(i int64) Value { return Value{kind: 'i', i: i} }

// FloatValue returns a float-typed property value.
func FloatValue(f float64) Value { return Value{kind: 'f', f: f} }

// BoolValue returns a boolean property value.
func BoolValue(b bool) Value { return Value{kind: 'b', b: b} }

// Kind returns one of "string", "int", "float", "bool" or "invalid".
func (v Value) Kind() string {
	switch v.kind {
	case 's':
		return "string"
	case 'i':
		return "int"
	case 'f':
		return "float"
	case 'b':
		return "bool"
	default:
		return "invalid"
	}
}

// IsZero reports whether the value is the invalid zero Value.
func (v Value) IsZero() bool { return v.kind == 0 }

// String renders the value in a human-readable form (used when decoding
// node properties into triple objects).
func (v Value) String() string {
	switch v.kind {
	case 's':
		return v.s
	case 'i':
		return strconv.FormatInt(v.i, 10)
	case 'f':
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case 'b':
		return strconv.FormatBool(v.b)
	default:
		return ""
	}
}

// AsString returns the string payload and whether the value is a string.
func (v Value) AsString() (string, bool) { return v.s, v.kind == 's' }

// AsInt returns the integer payload and whether the value is an int.
func (v Value) AsInt() (int64, bool) { return v.i, v.kind == 'i' }

// AsFloat returns a numeric view of the value (ints widen) and whether the
// value is numeric.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case 'f':
		return v.f, true
	case 'i':
		return float64(v.i), true
	default:
		return 0, false
	}
}

// Equal reports deep equality of two values.
func (v Value) Equal(u Value) bool { return v == u }

// Node is a labelled, property-carrying graph node.
type Node struct {
	ID     int
	Labels []string
	Props  map[string]Value
}

// Label returns the node's first label, or "" if it has none.
func (n *Node) Label() string {
	if len(n.Labels) == 0 {
		return ""
	}
	return n.Labels[0]
}

// HasLabel reports whether the node carries the given label.
func (n *Node) HasLabel(label string) bool {
	for _, l := range n.Labels {
		if l == label {
			return true
		}
	}
	return false
}

// Name returns the node's display name: the "name" property if present,
// otherwise any single string property, otherwise its first label.
// Pseudo-graph decoding uses this as the triple subject/object surface.
func (n *Node) Name() string {
	if v, ok := n.Props["name"]; ok {
		return v.String()
	}
	// Deterministic fallback: smallest property key that holds a string.
	keys := make([]string, 0, len(n.Props))
	for k := range n.Props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if s, ok := n.Props[k].AsString(); ok {
			return s
		}
	}
	return n.Label()
}

// Rel is a directed, typed relationship between two nodes.
type Rel struct {
	ID    int
	From  int
	To    int
	Type  string
	Props map[string]Value
}

// Graph is a mutable property graph. The zero value is not usable; call New.
type Graph struct {
	nodes []*Node
	rels  []*Rel
	// byLabel indexes node IDs by label for MATCH support.
	byLabel map[string][]int
}

// New returns an empty property graph.
func New() *Graph {
	return &Graph{byLabel: make(map[string][]int)}
}

// CreateNode adds a node with the given labels and properties, returning it.
func (g *Graph) CreateNode(labels []string, props map[string]Value) *Node {
	if props == nil {
		props = map[string]Value{}
	}
	n := &Node{ID: len(g.nodes), Labels: append([]string(nil), labels...), Props: props}
	g.nodes = append(g.nodes, n)
	for _, l := range n.Labels {
		g.byLabel[l] = append(g.byLabel[l], n.ID)
	}
	return n
}

// CreateRel adds a relationship of the given type from one node to another.
// It returns an error if either endpoint is unknown or the type is empty.
func (g *Graph) CreateRel(from, to int, relType string, props map[string]Value) (*Rel, error) {
	if from < 0 || from >= len(g.nodes) {
		return nil, fmt.Errorf("propgraph: unknown from-node %d", from)
	}
	if to < 0 || to >= len(g.nodes) {
		return nil, fmt.Errorf("propgraph: unknown to-node %d", to)
	}
	if relType == "" {
		return nil, fmt.Errorf("propgraph: empty relationship type")
	}
	if props == nil {
		props = map[string]Value{}
	}
	r := &Rel{ID: len(g.rels), From: from, To: to, Type: relType, Props: props}
	g.rels = append(g.rels, r)
	return r, nil
}

// Node returns the node with the given ID.
func (g *Graph) Node(id int) (*Node, bool) {
	if id < 0 || id >= len(g.nodes) {
		return nil, false
	}
	return g.nodes[id], true
}

// Nodes returns all nodes in creation order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Rels returns all relationships in creation order.
func (g *Graph) Rels() []*Rel { return g.rels }

// NodesByLabel returns the nodes carrying the given label, in creation order.
func (g *Graph) NodesByLabel(label string) []*Node {
	ids := g.byLabel[label]
	out := make([]*Node, 0, len(ids))
	for _, id := range ids {
		out = append(out, g.nodes[id])
	}
	return out
}

// NodeCount returns the number of nodes.
func (g *Graph) NodeCount() int { return len(g.nodes) }

// RelCount returns the number of relationships.
func (g *Graph) RelCount() int { return len(g.rels) }

// relationHumanize converts SHOUTY_SNAKE relationship types and snake_case
// property keys to a lower-case spaced surface form: "COMES_WITH" -> "comes
// with". The paper's pseudo-graphs use Cypher conventions while KG surfaces
// are natural-language-like; humanising when decoding keeps pseudo-triples
// in the same lexical space as the KG so the semantic query can match them.
func relationHumanize(relType string) string {
	return strings.ToLower(strings.ReplaceAll(relType, "_", " "))
}

// DecodeTriples flattens the property graph into subject/relation/object
// statements, the paper's step of "decoding the results into pseudo-graph
// Gp". Two families are produced, in deterministic order:
//
//   - one triple per relationship: <fromName> <humanised type> <toName>;
//   - one triple per non-name node property: <name> <humanised key> <value>.
type Statement struct {
	Subject, Relation, Object string
}

// DecodeTriples returns the graph's statements.
func (g *Graph) DecodeTriples() []Statement {
	var out []Statement
	for _, n := range g.nodes {
		name := n.Name()
		if name == "" {
			continue
		}
		keys := make([]string, 0, len(n.Props))
		for k := range n.Props {
			if k == "name" {
				continue
			}
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			out = append(out, Statement{Subject: name, Relation: relationHumanize(k), Object: n.Props[k].String()})
		}
	}
	for _, r := range g.rels {
		from := g.nodes[r.From].Name()
		to := g.nodes[r.To].Name()
		if from == "" || to == "" {
			continue
		}
		out = append(out, Statement{Subject: from, Relation: relationHumanize(r.Type), Object: to})
	}
	return out
}
