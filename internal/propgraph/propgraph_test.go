package propgraph

import (
	"testing"
)

func TestValues(t *testing.T) {
	tests := []struct {
		v    Value
		kind string
		str  string
	}{
		{StringValue("x"), "string", "x"},
		{IntValue(42), "int", "42"},
		{FloatValue(2.5), "float", "2.5"},
		{BoolValue(true), "bool", "true"},
	}
	for _, tt := range tests {
		if tt.v.Kind() != tt.kind {
			t.Errorf("Kind = %q, want %q", tt.v.Kind(), tt.kind)
		}
		if tt.v.String() != tt.str {
			t.Errorf("String = %q, want %q", tt.v.String(), tt.str)
		}
	}
	var zero Value
	if !zero.IsZero() || zero.Kind() != "invalid" {
		t.Error("zero Value misbehaves")
	}
}

func TestValueAccessors(t *testing.T) {
	if s, ok := StringValue("a").AsString(); !ok || s != "a" {
		t.Error("AsString")
	}
	if i, ok := IntValue(7).AsInt(); !ok || i != 7 {
		t.Error("AsInt")
	}
	if f, ok := IntValue(7).AsFloat(); !ok || f != 7 {
		t.Error("int AsFloat should widen")
	}
	if _, ok := StringValue("a").AsFloat(); ok {
		t.Error("string AsFloat should fail")
	}
}

func TestCreateNodeAndRel(t *testing.T) {
	g := New()
	a := g.CreateNode([]string{"Person"}, map[string]Value{"name": StringValue("Ada")})
	b := g.CreateNode([]string{"City"}, map[string]Value{"name": StringValue("London")})
	r, err := g.CreateRel(a.ID, b.ID, "BORN_IN", nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.From != a.ID || r.To != b.ID || r.Type != "BORN_IN" {
		t.Errorf("rel = %+v", r)
	}
	if g.NodeCount() != 2 || g.RelCount() != 1 {
		t.Errorf("counts: %d nodes %d rels", g.NodeCount(), g.RelCount())
	}
}

func TestCreateRelValidation(t *testing.T) {
	g := New()
	a := g.CreateNode(nil, nil)
	if _, err := g.CreateRel(a.ID, 99, "R", nil); err == nil {
		t.Error("unknown endpoint accepted")
	}
	if _, err := g.CreateRel(a.ID, a.ID, "", nil); err == nil {
		t.Error("empty rel type accepted")
	}
}

func TestNodeName(t *testing.T) {
	g := New()
	named := g.CreateNode([]string{"X"}, map[string]Value{"name": StringValue("Ada")})
	if named.Name() != "Ada" {
		t.Errorf("Name = %q", named.Name())
	}
	// No name property: smallest string property key wins.
	fallback := g.CreateNode([]string{"X"}, map[string]Value{
		"z": StringValue("zz"), "a": StringValue("aa"), "n": IntValue(1),
	})
	if fallback.Name() != "aa" {
		t.Errorf("fallback Name = %q", fallback.Name())
	}
	// No string properties at all: label.
	labelled := g.CreateNode([]string{"Lake"}, map[string]Value{"area": IntValue(5)})
	if labelled.Name() != "Lake" {
		t.Errorf("label Name = %q", labelled.Name())
	}
}

func TestNodesByLabel(t *testing.T) {
	g := New()
	g.CreateNode([]string{"A"}, nil)
	g.CreateNode([]string{"B"}, nil)
	g.CreateNode([]string{"A", "B"}, nil)
	if n := len(g.NodesByLabel("A")); n != 2 {
		t.Errorf("NodesByLabel(A) = %d, want 2", n)
	}
	if n := len(g.NodesByLabel("B")); n != 2 {
		t.Errorf("NodesByLabel(B) = %d, want 2", n)
	}
	if n := len(g.NodesByLabel("C")); n != 0 {
		t.Errorf("NodesByLabel(C) = %d, want 0", n)
	}
}

func TestDecodeTriplesOrderAndContent(t *testing.T) {
	g := New()
	lake := g.CreateNode([]string{"Lake"}, map[string]Value{
		"name": StringValue("Lake Superior"),
		"area": IntValue(82000),
	})
	water := g.CreateNode([]string{"Waterway"}, map[string]Value{"name": StringValue("Keweenaw")})
	if _, err := g.CreateRel(lake.ID, water.ID, "CONNECTS_WITH", nil); err != nil {
		t.Fatal(err)
	}
	stmts := g.DecodeTriples()
	if len(stmts) != 2 {
		t.Fatalf("decoded %d statements, want 2: %v", len(stmts), stmts)
	}
	// Property triples come first (node order), then relationships.
	if stmts[0].Relation != "area" || stmts[0].Object != "82000" {
		t.Errorf("property statement = %+v", stmts[0])
	}
	if stmts[1].Relation != "connects with" || stmts[1].Object != "Keweenaw" {
		t.Errorf("relationship statement = %+v", stmts[1])
	}
}

func TestDecodeSkipsNamelessEndpoints(t *testing.T) {
	g := New()
	a := g.CreateNode(nil, nil) // no name, no label
	b := g.CreateNode([]string{"X"}, map[string]Value{"name": StringValue("B")})
	if _, err := g.CreateRel(a.ID, b.ID, "R", nil); err != nil {
		t.Fatal(err)
	}
	if stmts := g.DecodeTriples(); len(stmts) != 0 {
		t.Errorf("nameless endpoint produced statements: %v", stmts)
	}
}

func TestHasLabel(t *testing.T) {
	g := New()
	n := g.CreateNode([]string{"A", "B"}, nil)
	if !n.HasLabel("A") || !n.HasLabel("B") || n.HasLabel("C") {
		t.Error("HasLabel wrong")
	}
	if n.Label() != "A" {
		t.Errorf("Label = %q", n.Label())
	}
}
