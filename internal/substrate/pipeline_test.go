package substrate

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/kg"
	"repro/internal/llm"
)

// noopClient satisfies llm.Client for tests that never reach an LLM call.
type noopClient struct{}

func (noopClient) Name() string { return "noop" }
func (noopClient) Complete(context.Context, llm.Request) (llm.Response, error) {
	return llm.Response{Text: ""}, nil
}

// TestDeltaTriplesReachGoldGraph runs the pipeline's semantic query +
// pruning steps against a live snapshot: a fact that only exists in the
// delta store must be retrieved into Gt and assembled into Gg, proving the
// whole AKV path sees ingested knowledge without a rebuild.
func TestDeltaTriplesReachGoldGraph(t *testing.T) {
	m := newTestManager(t, 25, Config{ShardSize: 8})
	if _, err := m.Ingest([]kg.Triple{
		{Subject: "Zorblax", Relation: "prime directive", Object: "Flumox"},
		{Subject: "Zorblax", Relation: "homeworld", Object: "Kepler-42b"},
	}); err != nil {
		t.Fatal(err)
	}
	snap := m.Current()
	p, err := core.New(noopClient{}, snap.Store, snap.Index, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The LLM hallucinated the directive's value; retrieval + pruning must
	// still anchor on the delta-resident subject and surface the truth.
	gp := kg.NewGraph(kg.NewTriple("Zorblax", "prime directive", "wrong guess"))
	var tr core.Trace
	gg := p.QueryAndPrune(gp, &tr)
	if !gg.ContainsSR("Zorblax", "prime directive") {
		t.Fatalf("Gg lacks the ingested fact:\n%s", gg)
	}
	if !gg.Contains(kg.NewTriple("Zorblax", "prime directive", "Flumox")) {
		t.Errorf("Gg has the subject but not the true object:\n%s", gg)
	}
	if len(tr.Kept) == 0 || tr.Kept[0].Subject != "Zorblax" {
		t.Errorf("kept = %v", tr.Kept)
	}

	// After compaction the same query runs against the folded base.
	if _, err := m.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap2 := m.Current()
	p2, err := core.New(noopClient{}, snap2.Store, snap2.Index, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if gg2 := p2.QueryAndPrune(gp, nil); !gg2.Contains(kg.NewTriple("Zorblax", "prime directive", "Flumox")) {
		t.Errorf("post-compaction Gg lost the fact:\n%s", gg2)
	}
}
