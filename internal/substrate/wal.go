package substrate

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kg"
)

// SyncPolicy says when the WAL fsyncs appended records to stable storage.
type SyncPolicy int

const (
	// SyncInterval (the default) flushes appended records to the OS on
	// every append and fsyncs on a background timer (Durability.SyncEvery).
	// A crash of the process loses nothing; a crash of the machine loses
	// at most one interval of ingests.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs after every appended record: an acknowledged
	// ingest survives even a machine crash, at the cost of one fsync per
	// ingest batch on the write path.
	SyncAlways
	// SyncNever never fsyncs; records still reach the OS on every append,
	// so only a machine crash (not a process crash) can lose them.
	SyncNever
)

// String renders the policy as its flag value.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParseSyncPolicy converts a -fsync flag value to a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval", "":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("substrate: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// walMagic opens every WAL file; the version byte bumps on incompatible
// record-format changes.
var walMagic = [8]byte{'P', 'G', 'A', 'K', 'W', 'A', 'L', 1}

// maxWALPayload bounds one record's payload so a corrupted length prefix
// fails cleanly instead of attempting a huge read.
const maxWALPayload = 64 << 20

// walRecord is one logged publish: the epoch the publish created and the
// triples it added (empty for epoch markers, e.g. compaction publishes).
type walRecord struct {
	epoch   uint64
	triples []kg.Triple
}

// encodeWALPayload renders a record payload: epoch, triple count, then
// each triple as a length-prefixed NT line (kg.NTLine).
func encodeWALPayload(epoch uint64, triples []kg.Triple) []byte {
	var buf bytes.Buffer
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], epoch)
	buf.Write(u64[:])
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(triples)))
	buf.Write(u32[:])
	for _, t := range triples {
		line := kg.NTLine(t)
		binary.LittleEndian.PutUint32(u32[:], uint32(len(line)))
		buf.Write(u32[:])
		buf.WriteString(line)
	}
	return buf.Bytes()
}

// decodeWALPayload parses an encodeWALPayload buffer. Triple parse errors
// carry their record-local line via *kg.LineError, so replay diagnostics
// can point at the offending entry.
func decodeWALPayload(p []byte) (walRecord, error) {
	if len(p) < 12 {
		return walRecord{}, fmt.Errorf("substrate: wal payload too short (%d bytes)", len(p))
	}
	rec := walRecord{epoch: binary.LittleEndian.Uint64(p[:8])}
	count := binary.LittleEndian.Uint32(p[8:12])
	p = p[12:]
	for i := 0; i < int(count); i++ {
		if len(p) < 4 {
			return walRecord{}, fmt.Errorf("substrate: wal payload truncated at triple %d", i)
		}
		n := binary.LittleEndian.Uint32(p[:4])
		p = p[4:]
		if int(n) > len(p) {
			return walRecord{}, fmt.Errorf("substrate: wal payload truncated at triple %d", i)
		}
		t, ok, err := kg.ParseNTLine(string(p[:n]))
		if err != nil {
			return walRecord{}, &kg.LineError{Line: i + 1, Err: err}
		}
		if !ok {
			return walRecord{}, fmt.Errorf("substrate: wal triple %d is empty", i)
		}
		p = p[n:]
		rec.triples = append(rec.triples, t)
	}
	if len(p) != 0 {
		return walRecord{}, fmt.Errorf("substrate: wal payload has %d trailing bytes", len(p))
	}
	return rec, nil
}

// frameRecord wraps a payload in its [u32 length][u32 crc32] header.
func frameRecord(payload []byte) []byte {
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	return frame
}

// wal is the ingest write-ahead log: an append-only file of checksummed,
// length-prefixed records, one per published ingest batch (plus zero-triple
// epoch markers for compaction publishes). Appends happen under the
// manager's writer lock, so records are in non-decreasing epoch order —
// which is what lets truncation drop a checkpointed prefix by epoch alone.
type wal struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	policy SyncPolicy
	// dirty says bytes reached the OS since the last fsync (SyncInterval's
	// background flusher checks it to skip idle syncs).
	dirty bool

	records atomic.Int64
	bytes   atomic.Int64
	syncs   atomic.Int64
}

// openWAL opens (creating if needed) the log at path for appending. A new
// file gets the magic header; an existing one is appended to as-is — the
// caller must have truncated any torn tail first (see replayWAL).
func openWAL(path string, policy SyncPolicy) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("substrate: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("substrate: stat wal: %w", err)
	}
	if st.Size() == 0 {
		if _, err := f.Write(walMagic[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("substrate: write wal header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("substrate: sync wal header: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("substrate: seek wal: %w", err)
	}
	return &wal{path: path, f: f, policy: policy}, nil
}

// append logs one record and, under SyncAlways, fsyncs it before
// returning. The caller (Manager.Ingest) appends BEFORE mutating any
// in-memory state, so a failed append leaves nothing to roll back.
func (w *wal) append(epoch uint64, triples []kg.Triple) error {
	payload := encodeWALPayload(epoch, triples)
	if len(payload) > maxWALPayload {
		return fmt.Errorf("substrate: wal record of %d bytes exceeds the %d-byte limit", len(payload), maxWALPayload)
	}
	frame := frameRecord(payload)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("substrate: wal is closed or broken")
	}
	off, err := w.f.Seek(0, io.SeekCurrent)
	if err != nil {
		return fmt.Errorf("substrate: wal append: %w", err)
	}
	if _, err := w.f.Write(frame); err != nil {
		// Roll the partial frame back so later acknowledged records don't
		// land after garbage — with length-prefix framing, recovery cannot
		// scan past a torn frame, so anything appended after one would be
		// silently lost. If the rollback itself fails, break the log:
		// rejecting future ingests loudly beats acknowledging writes that
		// a recovery will never see.
		if terr := w.f.Truncate(off); terr != nil {
			w.f.Close()
			w.f = nil
			return fmt.Errorf("substrate: wal append failed (%v) and rollback failed (%v): log is broken, rejecting further writes", err, terr)
		}
		if _, serr := w.f.Seek(off, io.SeekStart); serr != nil {
			w.f.Close()
			w.f = nil
			return fmt.Errorf("substrate: wal append failed (%v) and reseek failed (%v): log is broken, rejecting further writes", err, serr)
		}
		return fmt.Errorf("substrate: wal append: %w", err)
	}
	w.dirty = true
	w.records.Add(1)
	w.bytes.Add(int64(len(frame)))
	if w.policy == SyncAlways {
		return w.syncLocked()
	}
	return nil
}

// sync fsyncs pending bytes (no-op when nothing is dirty or the log is
// closed).
func (w *wal) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil || !w.dirty {
		return nil
	}
	return w.syncLocked()
}

func (w *wal) syncLocked() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("substrate: wal sync: %w", err)
	}
	w.dirty = false
	w.syncs.Add(1)
	return nil
}

// truncateThrough drops every record with epoch <= through — the prefix a
// checkpoint at that epoch now covers. The survivors are rewritten to a
// temporary file that atomically replaces the log, so a crash mid-truncate
// leaves either the old or the new file, never a hybrid.
func (w *wal) truncateThrough(through uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("substrate: wal is closed")
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("substrate: wal sync: %w", err)
	}
	recs, _, _, err := replayWAL(w.path)
	if err != nil {
		return err
	}
	tmp := w.path + ".tmp"
	nf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("substrate: wal truncate: %w", err)
	}
	if _, err := nf.Write(walMagic[:]); err != nil {
		nf.Close()
		return fmt.Errorf("substrate: wal truncate: %w", err)
	}
	for _, rec := range recs {
		if rec.epoch <= through {
			continue
		}
		if _, err := nf.Write(frameRecord(encodeWALPayload(rec.epoch, rec.triples))); err != nil {
			nf.Close()
			return fmt.Errorf("substrate: wal truncate: %w", err)
		}
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		return fmt.Errorf("substrate: wal truncate: %w", err)
	}
	if err := nf.Close(); err != nil {
		return fmt.Errorf("substrate: wal truncate: %w", err)
	}
	if err := os.Rename(tmp, w.path); err != nil {
		return fmt.Errorf("substrate: wal truncate: %w", err)
	}
	if err := syncDir(filepath.Dir(w.path)); err != nil {
		return err
	}
	old := w.f
	nf, err = os.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		// The old handle now points at the unlinked pre-truncation inode;
		// appending there would acknowledge writes no recovery can read.
		// Break the log instead so further ingests fail loudly.
		old.Close()
		w.f = nil
		return fmt.Errorf("substrate: wal reopen after truncation: %w (log is broken, rejecting further writes)", err)
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		nf.Close()
		old.Close()
		w.f = nil
		return fmt.Errorf("substrate: wal reopen after truncation: %w (log is broken, rejecting further writes)", err)
	}
	w.f = nf
	w.dirty = false
	old.Close()
	return nil
}

// close fsyncs and closes the log. Further appends fail.
func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// replayWAL reads every intact record from the log at path. It returns
// the records, the byte offset of the end of the last intact record
// (the valid prefix length), and how many torn/corrupt trailing records
// were dropped. A missing file is an empty log. Torn tails — a partial
// frame or a checksum mismatch — end the scan: with length-prefix
// framing there is no way to resynchronise past a bad record, and
// appends are ordered, so everything after the first bad frame is
// unreliable by construction.
func replayWAL(path string) (recs []walRecord, validBytes int64, torn int, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, 0, nil
	}
	if err != nil {
		return nil, 0, 0, fmt.Errorf("substrate: open wal: %w", err)
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		// Shorter than a header: treat the whole file as a torn write.
		return nil, 0, 1, nil
	}
	if magic != walMagic {
		return nil, 0, 0, fmt.Errorf("substrate: bad wal magic %v", magic)
	}
	validBytes = int64(len(walMagic))
	for {
		var head [8]byte
		_, err := io.ReadFull(f, head[:])
		if errors.Is(err, io.EOF) {
			return recs, validBytes, torn, nil
		}
		if err != nil {
			return recs, validBytes, torn + 1, nil
		}
		n := binary.LittleEndian.Uint32(head[:4])
		sum := binary.LittleEndian.Uint32(head[4:8])
		if n > maxWALPayload {
			return recs, validBytes, torn + 1, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return recs, validBytes, torn + 1, nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, validBytes, torn + 1, nil
		}
		rec, err := decodeWALPayload(payload)
		if err != nil {
			return recs, validBytes, torn + 1, nil
		}
		recs = append(recs, rec)
		validBytes += int64(8 + len(payload))
	}
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("substrate: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("substrate: sync dir %s: %w", dir, err)
	}
	return nil
}

// walFlusher runs the SyncInterval background fsync loop until stop is
// closed.
func (w *wal) flusher(every time.Duration, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = w.sync()
		case <-stop:
			return
		}
	}
}
