package substrate

import (
	"sort"

	"repro/internal/kg"
)

// union is the consistent read view one snapshot exposes: a frozen base
// store plus a frozen copy of the delta taken at publish time. Both halves
// are immutable, so the view never changes under a reader — a query that
// resolved this snapshot sees exactly these triples for its whole run,
// regardless of concurrent ingests or compactions.
//
// Triple IDs are remapped into one ID space: base IDs are unchanged, delta
// IDs are offset by the base length.
type union struct {
	base  *kg.Store
	delta *kg.Store
}

// newUnion builds the combined view. Both stores must be frozen and share
// a source.
func newUnion(base, delta *kg.Store) *union {
	return &union{base: base, delta: delta}
}

var _ kg.Reader = (*union)(nil)

// Source returns the shared KG source.
func (u *union) Source() kg.Source { return u.base.Source() }

// Len returns the combined triple count.
func (u *union) Len() int { return u.base.Len() + u.delta.Len() }

// Get returns the triple with the given combined-space ID.
func (u *union) Get(id int) (kg.Triple, bool) {
	n := u.base.Len()
	if id < n {
		return u.base.Get(id)
	}
	t, ok := u.delta.Get(id - n)
	if ok {
		t.ID = id
	}
	return t, ok
}

// All returns every triple, base first then delta, IDs remapped.
func (u *union) All() []kg.Triple {
	out := append(u.base.All(), u.delta.All()...)
	for i := u.base.Len(); i < len(out); i++ {
		out[i].ID = i
	}
	return out
}

// Contains reports whether either half holds the triple's surface form.
func (u *union) Contains(t kg.Triple) bool {
	return u.base.Contains(t) || u.delta.Contains(t)
}

// merge concatenates a base result with a delta result, remapping the
// delta triples' IDs. Both inputs are caller-owned copies (the Store
// accessors' contract), so mutating and appending here is safe.
func (u *union) merge(b, d []kg.Triple) []kg.Triple {
	if len(d) == 0 {
		return b
	}
	off := u.base.Len()
	for i := range d {
		d[i].ID += off
	}
	return append(b, d...)
}

// Subject returns all triples whose subject matches exactly.
func (u *union) Subject(s string) []kg.Triple {
	return u.merge(u.base.Subject(s), u.delta.Subject(s))
}

// Relation returns all triples with the given relation.
func (u *union) Relation(r string) []kg.Triple {
	return u.merge(u.base.Relation(r), u.delta.Relation(r))
}

// Object returns all triples whose object matches exactly.
func (u *union) Object(o string) []kg.Triple {
	return u.merge(u.base.Object(o), u.delta.Object(o))
}

// SubjectRelation returns the (subject, relation) triples in Ord order
// across both halves, so time-varying facts stay chronological even when
// an ingested value interleaves with base history.
func (u *union) SubjectRelation(s, r string) []kg.Triple {
	out := u.merge(u.base.SubjectRelation(s, r), u.delta.SubjectRelation(s, r))
	sort.SliceStable(out, func(i, j int) bool { return out[i].Ord < out[j].Ord })
	return out
}

// RelationObject is the reverse lookup across both halves.
func (u *union) RelationObject(r, o string) []kg.Triple {
	return u.merge(u.base.RelationObject(r, o), u.delta.RelationObject(r, o))
}

// HasSubject reports whether either half has the subject.
func (u *union) HasSubject(s string) bool {
	return u.base.HasSubject(s) || u.delta.HasSubject(s)
}

// mergeSorted unions two sorted distinct string slices.
func mergeSorted(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	out := append(a, b...)
	sort.Strings(out)
	dedup := out[:0]
	for i, s := range out {
		if i == 0 || s != out[i-1] {
			dedup = append(dedup, s)
		}
	}
	return dedup
}

// Subjects returns all distinct subjects, sorted.
func (u *union) Subjects() []string { return mergeSorted(u.base.Subjects(), u.delta.Subjects()) }

// Relations returns all distinct relations, sorted.
func (u *union) Relations() []string { return mergeSorted(u.base.Relations(), u.delta.Relations()) }

// Objects returns all distinct objects, sorted.
func (u *union) Objects() []string { return mergeSorted(u.base.Objects(), u.delta.Objects()) }

// Neighbours returns the one-hop neighbourhood of s.
func (u *union) Neighbours(s string) []kg.Triple { return u.Subject(s) }

// SubjectGraph returns a Graph holding the given subjects' triples.
func (u *union) SubjectGraph(subjects []string) *kg.Graph {
	g := &kg.Graph{}
	for _, s := range subjects {
		g.Add(u.Subject(s)...)
	}
	return g
}

// FindSubjectFold resolves a case-folded subject, base winning ties.
func (u *union) FindSubjectFold(q string) (string, bool) {
	if s, ok := u.base.FindSubjectFold(q); ok {
		return s, ok
	}
	return u.delta.FindSubjectFold(q)
}

// Stats summarises the combined view with exact distinct counts.
func (u *union) Stats() kg.Stats {
	return kg.Stats{
		Source:    u.Source(),
		Triples:   u.Len(),
		Subjects:  len(u.Subjects()),
		Relations: len(u.Relations()),
		Objects:   len(u.Objects()),
	}
}
