package substrate

import (
	"context"
	"testing"

	"repro/internal/embed"
)

func annConfig(shardSize int) Config {
	return Config{ShardSize: shardSize, ANN: ANNConfig{Enabled: true}}
}

// TestANNLifecycle walks the approximate/exact split through the
// snapshot lifecycle: boot builds a graph over the base, ingests stay
// exact-scan in the delta (graph coverage unchanged), and compaction
// folds everything into a new full-coverage graph.
func TestANNLifecycle(t *testing.T) {
	m := newTestManager(t, 50, annConfig(16))
	st := m.Stats()
	if st.ANN == nil || st.ANN.Nodes != 50 {
		t.Fatalf("boot ANN stats = %+v, want 50-node graph", st.ANN)
	}

	ingestN(t, m, 6, "ann")
	st = m.Stats()
	if st.ANN.Nodes != 50 {
		t.Fatalf("post-ingest graph covers %d nodes, want 50 (delta stays exact)", st.ANN.Nodes)
	}
	// Delta triples must be findable through the hybrid view.
	snap := m.Current()
	hits := snap.Index.Search("Ingested ann 3 discovered in", 3)
	if len(hits) == 0 || hits[0].Triple.Subject != "Ingested ann 3" {
		t.Fatalf("delta triple not served through hybrid: %v", hits)
	}
	if st = m.Stats(); st.ANN.Searches == 0 {
		t.Errorf("graph search not counted: %+v", st.ANN)
	}

	if _, err := m.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	st = m.Stats()
	if st.ANN.Nodes != 56 {
		t.Fatalf("post-compaction graph covers %d nodes, want 56", st.ANN.Nodes)
	}
}

// TestANNMatchesExactOnSubstrate pins answer quality through the full
// manager: on this corpus size the hybrid must agree with the exact
// reference for every query's top hit.
func TestANNMatchesExactOnSubstrate(t *testing.T) {
	m := newTestManager(t, 120, annConfig(32))
	ingestN(t, m, 5, "mix")
	snap := m.Current()
	for _, q := range []string{"Entity 17 related to", "Ingested mix 2 discovered", "Entity 99"} {
		approx := snap.Index.Search(q, 5)
		exact := snap.Index.SearchExact(q, 5)
		if len(approx) == 0 || len(exact) == 0 {
			t.Fatalf("%q: empty results (%d approx, %d exact)", q, len(approx), len(exact))
		}
		if approx[0].Triple.Key() != exact[0].Triple.Key() {
			t.Errorf("%q top hit: approx %v, exact %v", q, approx[0].Triple, exact[0].Triple)
		}
	}
}

// TestANNCheckpointReloadsGraph: a durable ANN manager persists the
// graph inside its checkpoint and recovery reloads it — no rebuild —
// with the epoch intact and the same answers.
func TestANNCheckpointReloadsGraph(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	cfg.ANN = ANNConfig{Enabled: true}
	m1 := recoverTestManager(t, 40, cfg)
	ingestN(t, m1, 6, "crash")
	if _, err := m1.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	preEpoch := m1.Epoch()
	// No Close: kill -9.

	// The checkpoint on disk must carry the graph (reload, not rebuild).
	cp, _ := loadNewestCheckpoint(m1.dir, embed.NewEncoder())
	if cp == nil || cp.ann == nil || cp.ann.Len() != 46 {
		t.Fatalf("checkpoint graph missing or wrong size: %+v", cp)
	}

	m2 := recoverTestManager(t, 40, cfg)
	defer m2.Close()
	if got := m2.Epoch(); got < preEpoch {
		t.Fatalf("epoch regressed across restart: %d -> %d", preEpoch, got)
	}
	st := m2.Stats()
	if st.ANN == nil || st.ANN.Nodes != 46 {
		t.Fatalf("recovered ANN stats = %+v, want 46-node graph", st.ANN)
	}
	assertSameSubstrate(t, m1, m2)
}

// TestANNRecoveryPrefixCoverage: a checkpoint taken before compaction
// flattens base shards + delta segments, so the persisted graph covers
// only the former base. Recovery must serve that split — graph over the
// prefix, exact over the tail — and the next compaction restores full
// coverage.
func TestANNRecoveryPrefixCoverage(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	cfg.ANN = ANNConfig{Enabled: true}
	m1 := recoverTestManager(t, 40, cfg)
	ingestN(t, m1, 8, "tail")
	if _, err := m1.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	// No Close: kill -9.

	m2 := recoverTestManager(t, 40, cfg)
	defer m2.Close()
	snap := m2.Current()
	if snap.Store.Len() != 48 {
		t.Fatalf("recovered %d triples, want 48", snap.Store.Len())
	}
	st := m2.Stats()
	if st.ANN == nil || st.ANN.Nodes != 40 {
		t.Fatalf("recovered ANN covers %d nodes, want the 40-triple former base: %+v", st.ANN.Nodes, st.ANN)
	}
	// The uncovered tail still answers exactly.
	hits := snap.Index.Search("Ingested tail 5 discovered in", 3)
	if len(hits) == 0 || hits[0].Triple.Subject != "Ingested tail 5" {
		t.Fatalf("tail triple not served after recovery: %v", hits)
	}
	// New ingest + compaction folds everything back under the graph.
	ingestN(t, m2, 1, "more")
	if _, err := m2.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := m2.Stats(); st.ANN.Nodes != 49 {
		t.Fatalf("post-compaction graph covers %d nodes, want 49", st.ANN.Nodes)
	}
}

// TestANNDisabledIgnoresPersistedGraph: restarting with ANN off over an
// ANN-bearing checkpoint must serve pure exact scans — the graph record
// is dropped, not an error.
func TestANNDisabledIgnoresPersistedGraph(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	cfg.ANN = ANNConfig{Enabled: true}
	m1 := recoverTestManager(t, 30, cfg)
	ingestN(t, m1, 2, "off")
	if _, err := m1.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	// No Close: kill -9.

	plain := durableConfig(t, dir)
	m2 := recoverTestManager(t, 30, plain)
	defer m2.Close()
	if st := m2.Stats(); st.ANN != nil {
		t.Fatalf("ANN-off manager reports ANN stats: %+v", st.ANN)
	}
	if got := m2.Current().Store.Len(); got != 32 {
		t.Fatalf("recovered %d triples, want 32", got)
	}
}
