package substrate

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/embed"
	"repro/internal/kg"
)

// durableConfig builds a Config persisting under a fresh temp dir with
// per-append fsyncs (tests simulate kill -9 by abandoning the manager
// without Close, so every acknowledged ingest must already be on disk).
func durableConfig(t *testing.T, dir string) Config {
	t.Helper()
	return Config{
		ShardSize:  16,
		Durability: Durability{Dir: dir, Fsync: SyncAlways},
	}
}

// recoverTestManager is newTestManager for the durable constructor.
func recoverTestManager(t *testing.T, n int, cfg Config) *Manager {
	t.Helper()
	m, err := Recover(embed.NewEncoder(), baseStore(n), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// ingestN ingests n distinct facts about distinct subjects and returns
// the triples.
func ingestN(t *testing.T, m *Manager, n int, tag string) []kg.Triple {
	t.Helper()
	triples := make([]kg.Triple, n)
	for i := range triples {
		triples[i] = kg.Triple{
			Subject:  fmt.Sprintf("Ingested %s %d", tag, i),
			Relation: "discovered in",
			Object:   fmt.Sprintf("Expedition %s-%d", tag, i),
		}
		res, err := m.Ingest(triples[i : i+1])
		if err != nil {
			t.Fatal(err)
		}
		if res.Added != 1 {
			t.Fatalf("ingest %d: added %d, want 1", i, res.Added)
		}
	}
	return triples
}

// assertSameSubstrate checks that two managers hold the same triples and
// return the same search results — "the same answers" at the substrate
// level, where every QA method sources its evidence.
func assertSameSubstrate(t *testing.T, before, after *Manager) {
	t.Helper()
	a, b := before.Current(), after.Current()
	if a.Store.Len() != b.Store.Len() {
		t.Fatalf("triple count changed across recovery: %d -> %d", a.Store.Len(), b.Store.Len())
	}
	for _, tr := range a.Store.All() {
		if !b.Store.Contains(tr) {
			t.Fatalf("recovered substrate lost %v", tr)
		}
	}
	for _, q := range []string{"Ingested crash 3 discovered", "Entity 5 related", "Expedition crash-0"} {
		ha, hb := a.Index.Search(q, 5), b.Index.Search(q, 5)
		if len(ha) != len(hb) {
			t.Fatalf("query %q: %d hits before, %d after", q, len(ha), len(hb))
		}
		for i := range ha {
			if !ha[i].Triple.Equal(hb[i].Triple) || ha[i].Score != hb[i].Score {
				t.Fatalf("query %q hit %d diverged: %v/%v vs %v/%v",
					q, i, ha[i].Triple, ha[i].Score, hb[i].Triple, hb[i].Score)
			}
		}
	}
}

// TestRecoverAfterCrash is the durability acceptance criterion: kill -9
// after N ingests (simulated by abandoning the manager without Close),
// restart, and every ingested triple is back with the same search
// results and a non-regressed epoch.
func TestRecoverAfterCrash(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	m1 := recoverTestManager(t, 40, cfg)
	ingestN(t, m1, 8, "crash")
	preEpoch := m1.Epoch()
	if got := m1.Current().DeltaTriples; got != 8 {
		t.Fatalf("delta = %d, want 8", got)
	}
	// No Close: the file descriptors just vanish, as in kill -9.

	m2 := recoverTestManager(t, 40, cfg)
	defer m2.Close()
	if got := m2.Epoch(); got < preEpoch {
		t.Fatalf("epoch regressed across restart: %d -> %d", preEpoch, got)
	}
	if got := m2.Current().Store.Len(); got != 48 {
		t.Fatalf("recovered %d triples, want 48", got)
	}
	assertSameSubstrate(t, m1, m2)
	rec := m2.Recovery()
	if rec.ReplayedRecords != 8 || rec.ReplayedTriples != 8 {
		t.Errorf("recovery = %+v, want 8 records / 8 triples replayed", rec)
	}
	if rec.TornRecordsDropped != 0 {
		t.Errorf("unexpected torn records: %+v", rec)
	}
}

// TestRecoverFromCheckpointPlusTail covers the snapshot-plus-log shape:
// a checkpoint mid-stream, more ingests after it, then a crash — boot
// must load the checkpoint and replay only the tail.
func TestRecoverFromCheckpointPlusTail(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	m1 := recoverTestManager(t, 30, cfg)
	ingestN(t, m1, 5, "pre")
	info, err := m1.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Triples != 35 {
		t.Fatalf("checkpoint captured %d triples, want 35", info.Triples)
	}
	ingestN(t, m1, 3, "post")
	preEpoch := m1.Epoch()

	m2 := recoverTestManager(t, 30, cfg)
	defer m2.Close()
	rec := m2.Recovery()
	if rec.CheckpointEpoch != info.Epoch || rec.CheckpointTriples != 35 {
		t.Fatalf("recovery loaded checkpoint %d (%d triples), want %d (35)", rec.CheckpointEpoch, rec.CheckpointTriples, info.Epoch)
	}
	if rec.ReplayedRecords != 3 {
		t.Fatalf("replayed %d records, want only the 3-record tail", rec.ReplayedRecords)
	}
	if got := m2.Epoch(); got < preEpoch {
		t.Fatalf("epoch regressed: %d -> %d", preEpoch, got)
	}
	if got := m2.Current().Store.Len(); got != 38 {
		t.Fatalf("recovered %d triples, want 38", got)
	}
	assertSameSubstrate(t, m1, m2)
}

// TestCheckpointTruncatesWAL: after a checkpoint the log holds no
// records at or below the checkpointed epoch.
func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	m := recoverTestManager(t, 10, cfg)
	defer m.Close()
	ingestN(t, m, 4, "trunc")
	walPath := filepath.Join(dir, "wikidata", walName)
	recs, _, _, err := replayWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Boot logs a zero-triple epoch marker, then one record per ingest.
	if len(recs) != 5 {
		t.Fatalf("wal holds %d records before checkpoint, want 5", len(recs))
	}
	info, err := m.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	recs, _, _, err = replayWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.epoch <= info.Epoch {
			t.Fatalf("wal still holds record at epoch %d <= checkpoint %d", r.epoch, info.Epoch)
		}
	}
}

// TestRecoverDropsTornTail corrupts the final WAL record — a torn write
// — and expects recovery to keep everything before it, count the drop,
// and keep the file appendable.
func TestRecoverDropsTornTail(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	m1 := recoverTestManager(t, 20, cfg)
	ingestN(t, m1, 5, "torn")

	walPath := filepath.Join(dir, "wikidata", walName)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-way through the final record to simulate a torn write.
	if err := os.WriteFile(walPath, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := recoverTestManager(t, 20, cfg)
	rec := m2.Recovery()
	if rec.TornRecordsDropped != 1 {
		t.Fatalf("torn drops = %d, want 1", rec.TornRecordsDropped)
	}
	if rec.ReplayedRecords != 4 {
		t.Fatalf("replayed %d records, want the 4 intact ones", rec.ReplayedRecords)
	}
	if got := m2.Current().Store.Len(); got != 24 {
		t.Fatalf("recovered %d triples, want 24", got)
	}
	// The truncated log must accept appends again: ingest, crash, recover.
	if _, err := m2.Ingest([]kg.Triple{{Subject: "Post-torn", Relation: "status", Object: "alive"}}); err != nil {
		t.Fatal(err)
	}
	m3 := recoverTestManager(t, 20, cfg)
	defer m3.Close()
	if !m3.Current().Store.Contains(kg.Triple{Subject: "Post-torn", Relation: "status", Object: "alive"}) {
		t.Fatal("append after torn-tail truncation did not survive the next recovery")
	}
}

// TestRecoverSkipsCorruptCheckpoint: a corrupted newest checkpoint falls
// back to an older intact one without losing WAL-replayable state.
func TestRecoverSkipsCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	m1 := recoverTestManager(t, 10, cfg)
	ingestN(t, m1, 2, "cp1")
	if _, err := m1.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	ingestN(t, m1, 2, "cp2")
	info2, err := m1.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest checkpoint's index. Pruning removed the older
	// checkpoint, so recovery must fall back to the seed + WAL... but the
	// WAL was truncated through info2.Epoch. To keep this recoverable we
	// corrupt AND restore a full WAL, as a crash between "checkpoint
	// written" and "WAL truncated" would leave it.
	idx := filepath.Join(info2.Path, indexName)
	if err := os.WriteFile(idx, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "wikidata", walName)
	var buf bytes.Buffer
	buf.Write(walMagic[:])
	for i, tr := range []kg.Triple{
		{Subject: "Ingested cp1 0", Relation: "discovered in", Object: "Expedition cp1-0"},
		{Subject: "Ingested cp1 1", Relation: "discovered in", Object: "Expedition cp1-1"},
		{Subject: "Ingested cp2 0", Relation: "discovered in", Object: "Expedition cp2-0"},
		{Subject: "Ingested cp2 1", Relation: "discovered in", Object: "Expedition cp2-1"},
	} {
		buf.Write(frameRecord(encodeWALPayload(uint64(i+2), []kg.Triple{tr})))
	}
	if err := os.WriteFile(walPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := recoverTestManager(t, 10, cfg)
	defer m2.Close()
	rec := m2.Recovery()
	if rec.SkippedCheckpoints == 0 {
		t.Fatal("corrupt checkpoint was not skipped")
	}
	if got := m2.Current().Store.Len(); got != 14 {
		t.Fatalf("recovered %d triples, want 14", got)
	}
	if m2.Epoch() < info2.Epoch {
		t.Fatalf("epoch regressed past corrupt checkpoint: %d < %d", m2.Epoch(), info2.Epoch)
	}
}

// TestCompactKeepsEpochAcrossRestart: compaction bumps the epoch and
// writes a checkpoint; a crash right after must not regress the epoch.
func TestCompactKeepsEpochAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	m1 := recoverTestManager(t, 15, cfg)
	ingestN(t, m1, 4, "compact")
	if _, err := m1.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	preEpoch := m1.Epoch()
	if got := m1.Current().DeltaTriples; got != 0 {
		t.Fatalf("delta after compaction = %d, want 0", got)
	}

	m2 := recoverTestManager(t, 15, cfg)
	defer m2.Close()
	if got := m2.Epoch(); got < preEpoch {
		t.Fatalf("epoch regressed after compaction restart: %d -> %d", preEpoch, got)
	}
	if got := m2.Current().Store.Len(); got != 19 {
		t.Fatalf("recovered %d triples, want 19", got)
	}
	if m2.Recovery().CheckpointTriples != 19 {
		t.Fatalf("compaction did not leave a checkpoint: %+v", m2.Recovery())
	}
}

// TestIngestIdempotentAcrossRestart: re-ingesting recovered facts
// reports them as duplicates instead of growing the substrate.
func TestIngestIdempotentAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	m1 := recoverTestManager(t, 10, cfg)
	triples := ingestN(t, m1, 3, "idem")

	m2 := recoverTestManager(t, 10, cfg)
	defer m2.Close()
	res, err := m2.Ingest(triples)
	if err != nil {
		t.Fatal(err)
	}
	if res.Added != 0 || res.Skipped != 3 {
		t.Fatalf("re-ingest after recovery: added=%d skipped=%d, want 0/3", res.Added, res.Skipped)
	}
}

// TestIngestRejectsReservedCharacters: fields that would corrupt the
// persisted NT form are refused up front.
func TestIngestRejectsReservedCharacters(t *testing.T) {
	m := newTestManager(t, 5, Config{})
	defer m.Close()
	for _, bad := range []kg.Triple{
		{Subject: "a<b", Relation: "r", Object: "o"},
		{Subject: "a", Relation: "r>s", Object: "o"},
		{Subject: "a", Relation: "r", Object: "o\np"},
		// Over the per-triple size cap: would make the checkpoint NT file
		// unreadable (kg.ReadNT's 1 MiB line buffer).
		{Subject: "a", Relation: "r", Object: strings.Repeat("x", maxTripleBytes)},
	} {
		if _, err := m.Ingest([]kg.Triple{bad}); err == nil {
			t.Errorf("triple %q accepted", bad)
		}
	}
}

// TestTimeVaryingOrdsSurviveRestart: ord assignment (newest-wins for
// ord-0 ingests) must replay to the same ordinals.
func TestTimeVaryingOrdsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	m1 := recoverTestManager(t, 5, cfg)
	// Entity 0 already has a "related to" fact; two more ord-0 ingests
	// must stack past it — including two values inside one batch.
	if _, err := m1.Ingest([]kg.Triple{
		{Subject: "Entity 0", Relation: "related to", Object: "Update A"},
		{Subject: "Entity 0", Relation: "related to", Object: "Update B"},
	}); err != nil {
		t.Fatal(err)
	}
	want := m1.Current().Store.SubjectRelation("Entity 0", "related to")

	m2 := recoverTestManager(t, 5, cfg)
	defer m2.Close()
	got := m2.Current().Store.SubjectRelation("Entity 0", "related to")
	if len(got) != len(want) {
		t.Fatalf("series length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) || got[i].Ord != want[i].Ord {
			t.Errorf("series[%d] = %v@%d, want %v@%d", i, got[i], got[i].Ord, want[i], want[i].Ord)
		}
	}
	if last := got[len(got)-1]; last.Object != "Update B" {
		t.Errorf("newest value after recovery = %q, want Update B", last.Object)
	}
}

// TestCheckpointRequiresDurability: memory-only managers refuse.
func TestCheckpointRequiresDurability(t *testing.T) {
	m := newTestManager(t, 5, Config{})
	defer m.Close()
	if _, err := m.Checkpoint(context.Background()); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("err = %v, want ErrNotDurable", err)
	}
}

// TestRecoveryCoalescesReplayedSegments: a long WAL tail of tiny
// batches must not boot into a snapshot fanning out over one index
// segment per replayed record.
func TestRecoveryCoalescesReplayedSegments(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(t, dir) // ShardSize 16
	m1 := recoverTestManager(t, 30, cfg)
	ingestN(t, m1, 40, "seg") // 40 single-triple WAL records

	m2 := recoverTestManager(t, 30, cfg)
	defer m2.Close()
	if got := m2.Current().Store.Len(); got != 70 {
		t.Fatalf("recovered %d triples, want 70", got)
	}
	// ceil(30/16) = 2 base shards + exactly 1 coalesced delta segment.
	if got := m2.Stats().Shards; got != 3 {
		t.Fatalf("boot snapshot has %d shards, want 3 (2 base + 1 coalesced delta)", got)
	}
}

// TestDurableChurnThenRecover hammers a durable manager with concurrent
// ingests, checkpoints and compactions, then recovers: every
// acknowledged triple must come back and the epoch must not regress.
func TestDurableChurnThenRecover(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	m1 := recoverTestManager(t, 30, cfg)

	const writers, perWriter = 4, 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				_, err := m1.Ingest([]kg.Triple{{
					Subject:  fmt.Sprintf("Churn %d-%d", w, i),
					Relation: "written by",
					Object:   fmt.Sprintf("writer %d", w),
				}})
				if err != nil {
					t.Errorf("ingest %d-%d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := m1.Checkpoint(context.Background()); err != nil && !errors.Is(err, ErrCheckpointing) {
				t.Errorf("checkpoint: %v", err)
			}
			if _, err := m1.Compact(context.Background()); err != nil && !errors.Is(err, ErrCompacting) {
				t.Errorf("compact: %v", err)
			}
		}
	}()
	wg.Wait()
	preEpoch := m1.Epoch()

	m2 := recoverTestManager(t, 30, cfg)
	defer m2.Close()
	if got := m2.Epoch(); got < preEpoch {
		t.Fatalf("epoch regressed: %d -> %d", preEpoch, got)
	}
	if got := m2.Current().Store.Len(); got != 30+writers*perWriter {
		t.Fatalf("recovered %d triples, want %d", got, 30+writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			tr := kg.Triple{
				Subject:  fmt.Sprintf("Churn %d-%d", w, i),
				Relation: "written by",
				Object:   fmt.Sprintf("writer %d", w),
			}
			if !m2.Current().Store.Contains(tr) {
				t.Fatalf("recovered substrate lost %v", tr)
			}
		}
	}
}

// TestWALRecordRoundTrip exercises the record codec directly, markers
// included.
func TestWALRecordRoundTrip(t *testing.T) {
	triples := []kg.Triple{
		{Subject: "S", Relation: "r", Object: "O"},
		{Subject: "S2", Relation: "r2", Object: "O2", Ord: 7},
	}
	rec, err := decodeWALPayload(encodeWALPayload(42, triples))
	if err != nil {
		t.Fatal(err)
	}
	if rec.epoch != 42 || len(rec.triples) != 2 {
		t.Fatalf("decoded %+v", rec)
	}
	if rec.triples[1].Ord != 7 {
		t.Errorf("ord lost: %+v", rec.triples[1])
	}
	marker, err := decodeWALPayload(encodeWALPayload(9, nil))
	if err != nil {
		t.Fatal(err)
	}
	if marker.epoch != 9 || len(marker.triples) != 0 {
		t.Fatalf("marker decoded as %+v", marker)
	}
	// Every truncation of a payload must fail decode, not panic.
	full := encodeWALPayload(42, triples)
	for i := 0; i < len(full); i++ {
		if _, err := decodeWALPayload(full[:i]); err == nil {
			t.Fatalf("truncated payload of %d/%d bytes decoded", i, len(full))
		}
	}
}
