package substrate

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/embed"
	"repro/internal/kg"
	"repro/internal/vecstore"
)

// Checkpoint file layout, under the manager's data directory:
//
//	<dir>/wal.log
//	<dir>/checkpoint-<epoch>/MANIFEST.json
//	<dir>/checkpoint-<epoch>/triples.nt    kg.WriteNTTriples of the snapshot
//	<dir>/checkpoint-<epoch>/index.bin     vecstore.WriteShards of its segments
//
// A checkpoint directory is written as checkpoint-<epoch>.tmp, its files
// fsynced, then renamed into place — MANIFEST.json inside a final-named
// directory is the validity marker. Recovery loads the newest directory
// that fully validates and ignores (then prunes) everything else, so a
// crash at any point leaves either the previous checkpoint or the new one.

const (
	checkpointPrefix = "checkpoint-"
	manifestName     = "MANIFEST.json"
	triplesName      = "triples.nt"
	indexName        = "index.bin"
	walName          = "wal.log"
	// checkpointFormat bumps on incompatible manifest/layout changes.
	checkpointFormat = 1
)

// manifest describes one checkpoint for validation at load time.
type manifest struct {
	Format  int    `json:"format"`
	Epoch   uint64 `json:"epoch"`
	Source  string `json:"source"`
	Triples int    `json:"triples"`
	Shards  int    `json:"shards"`
	// ANNNodes is the persisted HNSW graph's node count (0 = no graph;
	// index.bin is then the v1 container, byte-identical with pre-ANN
	// checkpoints).
	ANNNodes int `json:"ann_nodes,omitempty"`
}

// checkpointDirName renders the final directory name for an epoch; the
// zero-padded hex keeps lexical order equal to epoch order.
func checkpointDirName(epoch uint64) string {
	return fmt.Sprintf("%s%016x", checkpointPrefix, epoch)
}

// parseCheckpointEpoch extracts the epoch from a checkpoint directory
// name, rejecting temporaries and strangers.
func parseCheckpointEpoch(name string) (uint64, bool) {
	if !strings.HasPrefix(name, checkpointPrefix) || strings.HasSuffix(name, ".tmp") {
		return 0, false
	}
	e, err := strconv.ParseUint(strings.TrimPrefix(name, checkpointPrefix), 16, 64)
	if err != nil {
		return 0, false
	}
	return e, true
}

// writeCheckpoint persists one consistent snapshot: the triples and the
// index segments exactly as published, plus a manifest. Returns the final
// directory path.
func writeCheckpoint(dir string, epoch uint64, source kg.Source, triples []kg.Triple, shards []*vecstore.Index, ann *vecstore.HNSW) (string, error) {
	final := filepath.Join(dir, checkpointDirName(epoch))
	tmp := final + ".tmp"
	if err := os.RemoveAll(tmp); err != nil {
		return "", fmt.Errorf("substrate: checkpoint: %w", err)
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return "", fmt.Errorf("substrate: checkpoint: %w", err)
	}
	writeFile := func(name string, write func(f *os.File) error) error {
		f, err := os.OpenFile(filepath.Join(tmp, name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("substrate: checkpoint %s: %w", name, err)
		}
		if err := write(f); err != nil {
			f.Close()
			return fmt.Errorf("substrate: checkpoint %s: %w", name, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("substrate: checkpoint %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("substrate: checkpoint %s: %w", name, err)
		}
		return nil
	}
	if err := writeFile(triplesName, func(f *os.File) error {
		return kg.WriteNTTriples(f, triples)
	}); err != nil {
		return "", err
	}
	if err := writeFile(indexName, func(f *os.File) error {
		_, err := vecstore.WriteShardsHNSW(f, shards, ann)
		return err
	}); err != nil {
		return "", err
	}
	m := manifest{
		Format:  checkpointFormat,
		Epoch:   epoch,
		Source:  source.String(),
		Triples: len(triples),
		Shards:  len(shards),
	}
	if ann != nil {
		m.ANNNodes = ann.Len()
	}
	if err := writeFile(manifestName, func(f *os.File) error {
		return json.NewEncoder(f).Encode(m)
	}); err != nil {
		return "", err
	}
	if err := syncDir(tmp); err != nil {
		return "", err
	}
	if err := os.RemoveAll(final); err != nil {
		return "", fmt.Errorf("substrate: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return "", fmt.Errorf("substrate: checkpoint: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return final, nil
}

// loadedCheckpoint is one fully-validated checkpoint, ready to become a
// manager's base.
type loadedCheckpoint struct {
	epoch  uint64
	store  *kg.Store
	shards []*vecstore.Index
	// ann is the persisted HNSW graph over the shard prefix, nil when
	// the checkpoint was written without one.
	ann *vecstore.HNSW
}

// loadCheckpoint reads and validates one checkpoint directory.
func loadCheckpoint(path string, enc *embed.Encoder) (*loadedCheckpoint, error) {
	mf, err := os.Open(filepath.Join(path, manifestName))
	if err != nil {
		return nil, fmt.Errorf("substrate: checkpoint manifest: %w", err)
	}
	var m manifest
	err = json.NewDecoder(mf).Decode(&m)
	mf.Close()
	if err != nil {
		return nil, fmt.Errorf("substrate: checkpoint manifest: %w", err)
	}
	if m.Format != checkpointFormat {
		return nil, fmt.Errorf("substrate: checkpoint format %d (want %d)", m.Format, checkpointFormat)
	}
	src, err := kg.ParseSource(m.Source)
	if err != nil {
		return nil, err
	}
	tf, err := os.Open(filepath.Join(path, triplesName))
	if err != nil {
		return nil, fmt.Errorf("substrate: checkpoint triples: %w", err)
	}
	store, err := kg.ReadNT(tf, src)
	tf.Close()
	if err != nil {
		return nil, fmt.Errorf("substrate: checkpoint triples: %w", err)
	}
	if store.Len() != m.Triples {
		return nil, fmt.Errorf("substrate: checkpoint holds %d triples, manifest says %d", store.Len(), m.Triples)
	}
	xf, err := os.Open(filepath.Join(path, indexName))
	if err != nil {
		return nil, fmt.Errorf("substrate: checkpoint index: %w", err)
	}
	shards, ann, err := vecstore.ReadShardsHNSW(xf, enc)
	xf.Close()
	if err != nil {
		return nil, fmt.Errorf("substrate: checkpoint index: %w", err)
	}
	if len(shards) != m.Shards {
		return nil, fmt.Errorf("substrate: checkpoint holds %d shards, manifest says %d", len(shards), m.Shards)
	}
	annNodes := 0
	if ann != nil {
		annNodes = ann.Len()
	}
	if annNodes != m.ANNNodes {
		return nil, fmt.Errorf("substrate: checkpoint graph covers %d triples, manifest says %d", annNodes, m.ANNNodes)
	}
	indexed := 0
	for _, sh := range shards {
		indexed += sh.Len()
	}
	if indexed != store.Len() {
		return nil, fmt.Errorf("substrate: checkpoint index covers %d triples, store holds %d", indexed, store.Len())
	}
	return &loadedCheckpoint{epoch: m.Epoch, store: store, shards: shards, ann: ann}, nil
}

// loadNewestCheckpoint scans dir for checkpoint directories and returns
// the newest one that fully validates, or nil when none does. Invalid
// newer checkpoints are skipped (and reported) rather than fatal: an
// older intact checkpoint plus the WAL is still a correct recovery base.
func loadNewestCheckpoint(dir string, enc *embed.Encoder) (*loadedCheckpoint, []error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, []error{fmt.Errorf("substrate: scan checkpoints: %w", err)}
	}
	type cand struct {
		epoch uint64
		path  string
	}
	var cands []cand
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if epoch, ok := parseCheckpointEpoch(e.Name()); ok {
			cands = append(cands, cand{epoch, filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].epoch > cands[j].epoch })
	var skipped []error
	for _, c := range cands {
		cp, err := loadCheckpoint(c.path, enc)
		if err != nil {
			skipped = append(skipped, fmt.Errorf("%s: %w", filepath.Base(c.path), err))
			continue
		}
		return cp, skipped
	}
	return nil, skipped
}

// pruneCheckpoints removes every checkpoint directory except the one for
// keep, plus any leftover temporaries. Best-effort: pruning failures are
// returned for logging but never block serving.
func pruneCheckpoints(dir string, keep uint64) []error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return []error{fmt.Errorf("substrate: prune checkpoints: %w", err)}
	}
	var errs []error
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, checkpointPrefix) {
			continue
		}
		if epoch, ok := parseCheckpointEpoch(name); ok && epoch == keep {
			continue
		}
		if err := os.RemoveAll(filepath.Join(dir, name)); err != nil {
			errs = append(errs, fmt.Errorf("substrate: prune %s: %w", name, err))
		}
	}
	return errs
}
