package substrate

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/embed"
	"repro/internal/kg"
	"repro/internal/vecstore"
)

// Durability configures a Manager's persistence layer.
type Durability struct {
	// Dir is the root data directory; each manager persists under
	// Dir/<source>/. Empty disables persistence entirely.
	Dir string
	// Fsync is the WAL sync policy (default SyncInterval).
	Fsync SyncPolicy
	// SyncEvery is SyncInterval's background fsync cadence; <= 0 uses
	// DefaultSyncEvery.
	SyncEvery time.Duration
	// CheckpointInterval writes a checkpoint on a timer; <= 0 checkpoints
	// only on compaction and explicit Checkpoint calls.
	CheckpointInterval time.Duration
}

// DefaultSyncEvery is the SyncInterval fsync cadence when none is given.
const DefaultSyncEvery = 100 * time.Millisecond

// Enabled reports whether this configuration persists anything.
func (d Durability) Enabled() bool { return d.Dir != "" }

// RecoveryInfo describes what boot recovery restored.
type RecoveryInfo struct {
	// CheckpointEpoch / CheckpointTriples describe the checkpoint the
	// base was loaded from (zero when the seed store was used).
	CheckpointEpoch   uint64 `json:"checkpoint_epoch"`
	CheckpointTriples int    `json:"checkpoint_triples"`
	// ReplayedRecords / ReplayedTriples count the WAL tail replayed on
	// top of the checkpoint through the normal ingest path.
	ReplayedRecords int `json:"replayed_records"`
	ReplayedTriples int `json:"replayed_triples"`
	// TornRecordsDropped counts trailing WAL records dropped because
	// their frame was incomplete or failed its checksum.
	TornRecordsDropped int `json:"torn_records_dropped"`
	// SkippedCheckpoints counts checkpoint directories that failed
	// validation and were passed over for an older (or no) checkpoint.
	SkippedCheckpoints int `json:"skipped_checkpoints"`
}

// Errors the durability layer reports.
var (
	// ErrNotDurable reports a Checkpoint call on a memory-only manager.
	ErrNotDurable = errors.New("substrate: durability is not enabled")
	// ErrCheckpointing reports that a checkpoint is already being written.
	ErrCheckpointing = errors.New("substrate: checkpoint already in progress")
)

// Recover builds a manager with persistence. When cfg.Durability is
// disabled this is exactly NewManager; otherwise it restores the
// substrate's pre-crash state from disk before serving:
//
//  1. Load the newest checkpoint under Dir/<source>/ that fully
//     validates (manifest, triples, index); fall back to older ones,
//     then to the seed store, when newer ones are corrupt.
//  2. Replay the WAL tail — every record with an epoch past the
//     checkpoint's — through the normal ingest path, re-encoding delta
//     index segments. Torn tail records (incomplete frame or checksum
//     mismatch) are dropped with a logged count and physically
//     truncated so appends resume on a clean boundary.
//  3. Resume the epoch at (max persisted epoch) + 1, so the epoch never
//     regresses across a restart and epoch-scoped serving caches stay
//     correct.
//
// The seed store is the deterministic boot-time base (the rendered
// world); it is only used when no checkpoint exists. The manager owns
// the seed from here on, like NewManager. Callers should Close the
// returned manager on shutdown to stop background fsync/checkpoint
// loops and flush the WAL.
func Recover(enc *embed.Encoder, seed *kg.Store, cfg Config) (*Manager, error) {
	if !cfg.Durability.Enabled() {
		return NewManager(enc, seed, cfg), nil
	}
	dir := filepath.Join(cfg.Durability.Dir, seed.Source().String())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("substrate: data dir: %w", err)
	}
	seed.Freeze()
	m := &Manager{
		enc:     enc,
		cfg:     cfg,
		durable: true,
		dir:     dir,
	}

	cp, skipped := loadNewestCheckpoint(dir, enc)
	for _, err := range skipped {
		log.Printf("substrate[%s]: skipping invalid checkpoint: %v", seed.Source(), err)
	}
	m.recovery.SkippedCheckpoints = len(skipped)
	if cp != nil {
		m.base = cp.store
		m.baseShards = cp.shards
		m.epoch = cp.epoch
		m.recovery.CheckpointEpoch = cp.epoch
		m.recovery.CheckpointTriples = cp.store.Len()
		m.lastCheckpointEpoch.Store(cp.epoch)
		if cfg.ANN.Enabled {
			if cp.ann != nil {
				// Reload: the persisted graph binds to a prefix of the
				// checkpoint shards (checkpoints flatten base + delta, so
				// former delta segments surface as uncovered tail shards
				// that stay exact-scanned until the next compaction).
				m.baseANN = cp.ann
			} else {
				// ANN newly enabled over an older checkpoint: build the
				// graph at boot.
				m.baseANN = vecstore.BuildHNSW(enc, cp.store.All(), cfg.ANN.hnswConfig())
			}
		}
	} else {
		m.base = seed
		m.baseShards = vecstore.BuildShards(enc, seed.All(), cfg.ShardSize)
		if cfg.ANN.Enabled {
			m.baseANN = vecstore.BuildHNSW(enc, seed.All(), cfg.ANN.hnswConfig())
		}
	}
	m.delta = kg.NewStore(m.base.Source())

	// Replay the WAL tail through the ingest plan/apply path, then
	// truncate any torn tail so the append cursor lands on a record
	// boundary.
	walPath := filepath.Join(dir, walName)
	recs, validBytes, torn, err := replayWAL(walPath)
	if err != nil {
		return nil, err
	}
	if torn > 0 {
		log.Printf("substrate[%s]: dropping %d torn wal record(s) past byte %d", seed.Source(), torn, validBytes)
		if err := os.Truncate(walPath, validBytes); err != nil {
			return nil, fmt.Errorf("substrate: truncate torn wal tail: %w", err)
		}
	}
	m.recovery.TornRecordsDropped = torn
	m.mu.Lock()
	lastEpoch := m.epoch
	for _, rec := range recs {
		if rec.epoch <= m.recovery.CheckpointEpoch {
			// Already folded into the checkpoint; the record only
			// survived because the post-checkpoint truncation didn't land
			// before the crash.
			continue
		}
		if rec.epoch > lastEpoch {
			lastEpoch = rec.epoch
		}
		if len(rec.triples) == 0 {
			continue // compaction epoch marker
		}
		fresh, _ := m.planLocked(rec.triples)
		m.applyLocked(fresh)
		m.recovery.ReplayedRecords++
		m.recovery.ReplayedTriples += len(fresh)
	}
	if len(m.deltaSegs) > 1 {
		// Live ingest coalesces segments as it goes; replay built one per
		// record, so fold them before publishing — a long WAL tail must
		// not boot into a snapshot fanning out over hundreds of tiny
		// segments.
		m.deltaSegs = []*vecstore.Index{vecstore.BuildTriples(enc, m.deltaTriplesLocked())}
	}
	if cfg.Replica {
		// A replica resumes at EXACTLY the largest persisted epoch: its
		// epoch must track the primary's record chain one-for-one, and the
		// chain extends from precisely this point. A fresh replica (nothing
		// persisted) publishes the seed at epoch 1 — the primary's epoch 1
		// is its own boot publish of the same deterministic seed, so the
		// contents agree and streaming resumes from 1.
		if lastEpoch == 0 {
			lastEpoch = 1
		}
		m.epoch = lastEpoch
		m.republishLocked()
	} else {
		// Resume past everything persisted: the publish below creates epoch
		// lastEpoch+1, so no client ever observes an epoch it has seen
		// before holding different content.
		m.epoch = lastEpoch
		m.publishLocked()
	}
	bootEpoch := m.epoch
	compactNeeded := cfg.CompactThreshold > 0 && m.delta.Len() >= m.cfg.CompactThreshold
	m.mu.Unlock()

	w, err := openWAL(walPath, cfg.Durability.Fsync)
	if err != nil {
		return nil, err
	}
	m.wal = w
	if !cfg.Replica {
		// Log the boot publish as a zero-triple epoch marker so the WAL
		// records EVERY epoch since the chain base: replicas shipping the
		// log see a contiguous chain across primary restarts, and the
		// epoch a recovery resumed at can never regress even if the
		// process dies before its first ingest. (Replicas skip this: their
		// local WAL holds only records shipped from the primary.)
		if err := w.append(bootEpoch, nil); err != nil {
			return nil, fmt.Errorf("substrate: boot epoch marker: %w", err)
		}
	}

	if cfg.Durability.Fsync == SyncInterval {
		every := cfg.Durability.SyncEvery
		if every <= 0 {
			every = DefaultSyncEvery
		}
		m.stopFlush = make(chan struct{})
		m.flushDone = make(chan struct{})
		go w.flusher(every, m.stopFlush, m.flushDone)
	}
	if cfg.Durability.CheckpointInterval > 0 {
		m.stopCkpt = make(chan struct{})
		m.ckptDone = make(chan struct{})
		go m.checkpointLoop(cfg.Durability.CheckpointInterval)
	}
	if compactNeeded {
		// The replayed delta already crossed the auto-compaction
		// threshold; fold it (and checkpoint) in the background instead of
		// waiting for the next live ingest to notice.
		go func() {
			if _, err := m.Compact(context.Background()); err != nil && !errors.Is(err, ErrCompacting) {
				log.Printf("substrate[%s]: post-recovery compaction: %v", m.Source(), err)
			}
		}()
	}
	return m, nil
}

// checkpointLoop writes timer-driven checkpoints until Close.
func (m *Manager) checkpointLoop(every time.Duration) {
	defer close(m.ckptDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if _, err := m.Checkpoint(context.Background()); err != nil && !errors.Is(err, ErrCheckpointing) {
				log.Printf("substrate[%s]: timed checkpoint: %v", m.Source(), err)
			}
		case <-m.stopCkpt:
			return
		}
	}
}

// CheckpointInfo describes one written checkpoint.
type CheckpointInfo struct {
	// Epoch is the snapshot epoch the checkpoint captured.
	Epoch uint64 `json:"epoch"`
	// Triples / Shards describe the persisted snapshot.
	Triples int `json:"triples"`
	Shards  int `json:"shards"`
	// Path is the checkpoint directory on disk.
	Path string `json:"path"`
}

// Checkpoint atomically persists the current snapshot as a paired
// (triples.nt, index.bin) checkpoint, then truncates the WAL up to the
// checkpointed epoch and prunes older checkpoints. The snapshot and its
// index segments are captured under the writer lock, but all file I/O
// runs outside it, so ingest stays live while a checkpoint writes.
// Returns ErrNotDurable on memory-only managers and ErrCheckpointing
// when another checkpoint is in flight.
func (m *Manager) Checkpoint(ctx context.Context) (CheckpointInfo, error) {
	if !m.durable {
		return CheckpointInfo{}, ErrNotDurable
	}
	m.mu.Lock()
	if m.checkpointing {
		m.mu.Unlock()
		return CheckpointInfo{}, ErrCheckpointing
	}
	m.checkpointing = true
	// cur always reflects the master state while m.mu is held (every
	// mutation republishes before releasing the lock), so the snapshot
	// and the segment list captured here are one consistent pair.
	snap := m.cur.Load()
	shards := append(append([]*vecstore.Index(nil), m.baseShards...), m.deltaSegs...)
	ann := m.baseANN
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		m.checkpointing = false
		m.mu.Unlock()
	}()

	if err := ctx.Err(); err != nil {
		return CheckpointInfo{}, err
	}
	path, err := writeCheckpoint(m.dir, snap.Epoch, snap.Store.Source(), snap.Store.All(), shards, ann)
	if err != nil {
		return CheckpointInfo{}, err
	}
	m.checkpoints.Add(1)
	m.lastCheckpointEpoch.Store(snap.Epoch)
	// Truncation and pruning are space reclamation, not correctness:
	// leftover records at or below the checkpoint epoch are filtered at
	// replay, and older checkpoint dirs are simply not the newest. Log
	// failures and keep serving.
	if err := m.wal.truncateThrough(snap.Epoch); err != nil {
		log.Printf("substrate[%s]: wal truncation after checkpoint: %v", m.Source(), err)
	}
	for _, err := range pruneCheckpoints(m.dir, snap.Epoch) {
		log.Printf("substrate[%s]: %v", m.Source(), err)
	}
	return CheckpointInfo{
		Epoch:   snap.Epoch,
		Triples: snap.Store.Len(),
		Shards:  len(shards),
		Path:    path,
	}, nil
}

// Durable reports whether the manager persists its state.
func (m *Manager) Durable() bool { return m.durable }

// Recovery returns what boot recovery restored (zero for memory-only
// managers and first boots).
func (m *Manager) Recovery() RecoveryInfo { return m.recovery }

// Close stops the background fsync and checkpoint loops and flushes and
// closes the WAL. Memory-only managers close trivially. Safe to call
// more than once; the manager must not ingest after Close.
func (m *Manager) Close() error {
	m.closeOnce.Do(func() {
		m.closeSubs()
		if m.stopCkpt != nil {
			close(m.stopCkpt)
			<-m.ckptDone
		}
		if m.stopFlush != nil {
			close(m.stopFlush)
			<-m.flushDone
		}
		if m.wal != nil {
			m.closeErr = m.wal.close()
		}
	})
	return m.closeErr
}
