package substrate

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/embed"
	"repro/internal/kg"
)

func baseStore(n int) *kg.Store {
	st := kg.NewStore(kg.SourceWikidata)
	for i := 0; i < n; i++ {
		st.Add(kg.Triple{
			Subject:  fmt.Sprintf("Entity %d", i),
			Relation: "related to",
			Object:   fmt.Sprintf("Entity %d", (i+1)%n),
		})
	}
	st.Freeze()
	return st
}

func newTestManager(t *testing.T, n int, cfg Config) *Manager {
	t.Helper()
	return NewManager(embed.NewEncoder(), baseStore(n), cfg)
}

func TestBootSnapshot(t *testing.T) {
	m := newTestManager(t, 50, Config{ShardSize: 16})
	snap := m.Current()
	if snap.Epoch != 1 {
		t.Errorf("boot epoch = %d, want 1", snap.Epoch)
	}
	if snap.Store.Len() != 50 || snap.Index.Len() != 50 {
		t.Errorf("boot snapshot: store=%d index=%d, want 50/50", snap.Store.Len(), snap.Index.Len())
	}
	if st := m.Stats(); st.Shards != 4 { // ceil(50/16)
		t.Errorf("shards = %d, want 4", st.Shards)
	}
}

func TestIngestPublishesNewEpoch(t *testing.T) {
	m := newTestManager(t, 20, Config{ShardSize: 8})
	before := m.Current()

	res, err := m.Ingest([]kg.Triple{{Subject: "Zorblax", Relation: "prime directive", Object: "Flumox"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Added != 1 || res.Epoch != before.Epoch+1 {
		t.Errorf("ingest result = %+v", res)
	}

	// The old snapshot is untouched: a reader that resolved it pre-swap
	// keeps a consistent view.
	if before.Store.HasSubject("Zorblax") || before.Index.Len() != 20 {
		t.Error("published snapshot leaked into a previously-resolved one")
	}

	after := m.Current()
	if !after.Store.HasSubject("Zorblax") {
		t.Error("ingested subject missing from the new snapshot's store")
	}
	if after.Index.Len() != 21 || after.Store.Len() != 21 {
		t.Errorf("new snapshot: index=%d store=%d, want 21/21", after.Index.Len(), after.Store.Len())
	}
	hits := after.Index.Search("Zorblax prime directive", 3)
	if len(hits) == 0 || hits[0].Triple.Subject != "Zorblax" {
		t.Errorf("ingested triple not retrievable: %v", hits)
	}
	// Index and store agree on IDs: a delta hit's Triple.ID must resolve
	// to the same fact through the snapshot's store.
	got, ok := after.Store.Get(hits[0].Triple.ID)
	if !ok || !got.Equal(hits[0].Triple) {
		t.Errorf("hit ID %d resolves to %v (ok=%v), want %v", hits[0].Triple.ID, got, ok, hits[0].Triple)
	}
}

func TestIngestDedupAndValidation(t *testing.T) {
	m := newTestManager(t, 10, Config{})
	dup := kg.Triple{Subject: "Entity 0", Relation: "related to", Object: "Entity 1"} // already in base
	res, err := m.Ingest([]kg.Triple{dup})
	if err != nil {
		t.Fatal(err)
	}
	if res.Added != 0 || res.Skipped != 1 {
		t.Errorf("base duplicate: %+v", res)
	}
	if res.Epoch != 1 {
		t.Errorf("no-op ingest bumped the epoch to %d", res.Epoch)
	}

	fresh := kg.Triple{Subject: "New", Relation: "r", Object: "o"}
	if res, _ = m.Ingest([]kg.Triple{fresh, fresh}); res.Added != 1 || res.Skipped != 1 {
		t.Errorf("in-batch duplicate: %+v", res)
	}
	// Re-ingesting a delta-resident fact is also a skip.
	if res, _ = m.Ingest([]kg.Triple{fresh}); res.Added != 0 || res.Skipped != 1 {
		t.Errorf("delta duplicate: %+v", res)
	}

	if _, err := m.Ingest([]kg.Triple{{Subject: "x", Relation: "", Object: "y"}}); err == nil {
		t.Error("structurally empty triple accepted")
	}
}

func TestCompactFoldsDelta(t *testing.T) {
	m := newTestManager(t, 30, Config{ShardSize: 8})
	for i := 0; i < 5; i++ {
		if _, err := m.Ingest([]kg.Triple{{Subject: fmt.Sprintf("D%d", i), Relation: "r", Object: "o"}}); err != nil {
			t.Fatal(err)
		}
	}
	pre := m.Stats()
	if pre.DeltaTriples != 5 || pre.BaseTriples != 30 {
		t.Fatalf("pre-compaction stats: %+v", pre)
	}

	snap, err := m.Compact(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.BaseTriples != 35 || snap.DeltaTriples != 0 {
		t.Errorf("post-compaction snapshot: %+v", snap)
	}
	if snap.Epoch != pre.Epoch+1 {
		t.Errorf("compaction epoch = %d, want %d", snap.Epoch, pre.Epoch+1)
	}
	// The folded facts stay retrievable.
	if hits := snap.Index.Search("D3 r o", 1); len(hits) == 0 || hits[0].Triple.Subject != "D3" {
		t.Errorf("compacted fact lost: %v", hits)
	}
	if !snap.Store.HasSubject("D3") {
		t.Error("compacted subject missing from store")
	}
	// Compacting an empty delta is a no-op.
	again, err := m.Compact(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if again.Epoch != snap.Epoch {
		t.Error("empty compaction bumped the epoch")
	}
}

func TestAutoCompaction(t *testing.T) {
	m := newTestManager(t, 10, Config{ShardSize: 8, CompactThreshold: 3})
	for i := 0; i < 3; i++ {
		if _, err := m.Ingest([]kg.Triple{{Subject: fmt.Sprintf("A%d", i), Relation: "r", Object: "o"}}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := m.Stats(); st.Compactions >= 1 && st.DeltaTriples == 0 {
			if st.BaseTriples != 13 {
				t.Errorf("auto-compacted base = %d, want 13", st.BaseTriples)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("auto-compaction never ran: %+v", m.Stats())
}

// TestSnapshotConsistencyUnderChurn is the mid-ingest consistency
// guarantee: while writers ingest and compact, every reader that resolves
// a snapshot must observe an internally consistent view — index and store
// agree on length, every ingested subject the store knows is retrievable,
// and the view never changes while held.
func TestSnapshotConsistencyUnderChurn(t *testing.T) {
	m := newTestManager(t, 40, Config{ShardSize: 16})
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: ingest a stream of fresh facts, compacting periodically.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, err := m.Ingest([]kg.Triple{{Subject: fmt.Sprintf("Live %d", i), Relation: "streamed", Object: fmt.Sprintf("v%d", i)}})
			if err != nil {
				t.Error(err)
				return
			}
			if i%7 == 0 {
				_, err := m.Compact(context.Background())
				if err != nil && err != ErrCompacting {
					t.Error(err)
					return
				}
			}
		}
	}()

	// Readers: resolve, then interrogate the held snapshot repeatedly.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := m.Current()
				if snap.Store.Len() != snap.Index.Len() {
					t.Errorf("epoch %d: store %d != index %d", snap.Epoch, snap.Store.Len(), snap.Index.Len())
					return
				}
				if snap.Store.Len() != snap.BaseTriples+snap.DeltaTriples {
					t.Errorf("epoch %d: len %d != base %d + delta %d", snap.Epoch, snap.Store.Len(), snap.BaseTriples, snap.DeltaTriples)
					return
				}
				// The view must not move while held.
				n := snap.Store.Len()
				for i := 0; i < 3; i++ {
					if snap.Store.Len() != n || snap.Index.Len() != n {
						t.Errorf("epoch %d: snapshot changed while held", snap.Epoch)
						return
					}
					all := snap.Store.All()
					if len(all) != n {
						t.Errorf("epoch %d: All() = %d, want %d", snap.Epoch, len(all), n)
						return
					}
				}
			}
		}()
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Epochs advanced and nothing was lost: after a final compaction all
	// streamed facts are in the base.
	st := m.Stats()
	if st.Epoch < 3 {
		t.Errorf("churn produced only epoch %d", st.Epoch)
	}
}

// TestIngestUpdatesTimeVaryingFact: ingesting a new value for an
// existing (subject, relation) without an explicit ordinal must make it
// the *latest* value — not sort as the oldest — so verification's
// "pick the last one" rule answers with the update.
func TestIngestUpdatesTimeVaryingFact(t *testing.T) {
	base := kg.NewStore(kg.SourceWikidata)
	base.AddAll([]kg.Triple{
		{Subject: "X", Relation: "population", Object: "1000", Ord: 0},
		{Subject: "X", Relation: "population", Object: "2000", Ord: 1},
	})
	base.Freeze()
	m := NewManager(embed.NewEncoder(), base, Config{})

	// The README-walkthrough shape: no ord field.
	if _, err := m.Ingest([]kg.Triple{{Subject: "X", Relation: "population", Object: "3000"}}); err != nil {
		t.Fatal(err)
	}
	sr := m.Current().Store.SubjectRelation("X", "population")
	if len(sr) != 3 || sr[2].Object != "3000" {
		t.Fatalf("ingested update is not the latest value: %v", sr)
	}

	// A second ingest stacks after the first.
	if _, err := m.Ingest([]kg.Triple{{Subject: "X", Relation: "population", Object: "4000"}}); err != nil {
		t.Fatal(err)
	}
	sr = m.Current().Store.SubjectRelation("X", "population")
	if len(sr) != 4 || sr[3].Object != "4000" {
		t.Fatalf("second update is not the latest value: %v", sr)
	}

	// Ordering survives compaction (the new base re-freezes SR lists).
	if _, err := m.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	sr = m.Current().Store.SubjectRelation("X", "population")
	if len(sr) != 4 || sr[3].Object != "4000" || sr[0].Object != "1000" {
		t.Fatalf("post-compaction ordering broken: %v", sr)
	}

	// A brand-new (subject, relation) with no ordinal keeps Ord 0.
	if _, err := m.Ingest([]kg.Triple{{Subject: "Y", Relation: "area", Object: "7"}}); err != nil {
		t.Fatal(err)
	}
	if sr := m.Current().Store.SubjectRelation("Y", "area"); len(sr) != 1 || sr[0].Ord != 0 {
		t.Fatalf("fresh SR pair gained a spurious ordinal: %v", sr)
	}
}

// TestManySmallIngestsCoalesce: per-batch delta segments must not
// proliferate unboundedly — after many one-triple ingests the snapshot's
// shard count stays bounded and everything remains retrievable.
func TestManySmallIngestsCoalesce(t *testing.T) {
	m := newTestManager(t, 10, Config{ShardSize: 8})
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := m.Ingest([]kg.Triple{{Subject: fmt.Sprintf("Tiny %d", i), Relation: "r", Object: "o"}}); err != nil {
			t.Fatal(err)
		}
	}
	snap := m.Current()
	if snap.Index.Len() != 10+n {
		t.Fatalf("index len = %d, want %d", snap.Index.Len(), 10+n)
	}
	baseShards := 2 // ceil(10/8)
	if shards := snap.Index.Stats().Shards; shards > baseShards+16 {
		t.Errorf("delta segments did not coalesce: %d shards", shards)
	}
	for _, i := range []int{0, 15, n - 1} {
		q := fmt.Sprintf("Tiny %d r o", i)
		hits := snap.Index.Search(q, 1)
		if len(hits) == 0 || hits[0].Triple.Subject != fmt.Sprintf("Tiny %d", i) {
			t.Errorf("%q not retrievable after coalescing: %v", q, hits)
		}
	}
}

func TestUnionReaderSemantics(t *testing.T) {
	m := newTestManager(t, 5, Config{})
	// Ingest a two-value time-varying history (explicit ordinals) to
	// prove SR merge ordering, plus a brand-new subject.
	if _, err := m.Ingest([]kg.Triple{
		{Subject: "Entity 0", Relation: "population", Object: "50", Ord: 0},
		{Subject: "Entity 0", Relation: "population", Object: "100", Ord: 1},
		{Subject: "Fresh", Relation: "r", Object: "Entity 1"},
	}); err != nil {
		t.Fatal(err)
	}
	store := m.Current().Store

	sr := store.SubjectRelation("Entity 0", "population")
	if len(sr) != 2 || sr[0].Object != "50" || sr[1].Object != "100" {
		t.Errorf("SR merge not chronological: %v", sr)
	}

	// IDs are remapped into one space and Get round-trips.
	all := store.All()
	if len(all) != 8 {
		t.Fatalf("All = %d triples, want 8", len(all))
	}
	for i, tr := range all {
		if tr.ID != i {
			t.Errorf("All[%d].ID = %d", i, tr.ID)
		}
		got, ok := store.Get(i)
		if !ok || !got.Equal(tr) || got.ID != i {
			t.Errorf("Get(%d) = %v ok=%v, want %v", i, got, ok, tr)
		}
	}

	if !store.Contains(kg.Triple{Subject: "Fresh", Relation: "r", Object: "Entity 1"}) {
		t.Error("Contains missed a delta triple")
	}
	if s, ok := store.FindSubjectFold("fresh"); !ok || s != "Fresh" {
		t.Errorf("FindSubjectFold(fresh) = %q ok=%v", s, ok)
	}
	if n := len(store.Subjects()); n != 6 { // 5 base + Fresh
		t.Errorf("Subjects = %d, want 6", n)
	}
	if st := store.Stats(); st.Triples != 8 || st.Subjects != 6 {
		t.Errorf("union stats = %+v", st)
	}
	// RelationObject spans both halves.
	ro := store.RelationObject("r", "Entity 1")
	if len(ro) != 1 || ro[0].Subject != "Fresh" {
		t.Errorf("RelationObject = %v", ro)
	}
	// Accessor results are caller-owned (the Reader contract).
	sub := store.Subject("Entity 0")
	sub[0].Subject = "CORRUPTED"
	if store.Subject("Entity 0")[0].Subject == "CORRUPTED" {
		t.Error("union.Subject aliases internal state")
	}
}
