package substrate

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/kg"
)

// Replication support: a durable Manager doubles as the primary end of a
// WAL-shipping pair. Every publish already appends one record to the WAL
// (ingest batches carry their triples, compaction and boot publishes are
// zero-triple epoch markers), so the log is a contiguous chain: every
// epoch after the chain base — the newest checkpoint's epoch, or the
// first boot publish — has exactly one record. A replica that holds
// content(E) reconstructs content(E+k) by applying the records E+1..E+k
// in order; RecordsSince serves the on-disk tail, SubscribeWAL feeds the
// live head, and ApplyReplicated is the replica-side apply that publishes
// at exactly the primary's epoch so epoch-scoped cache keys, traces and
// answers mean the same thing on every node.

// WALRecord is the exported replication unit: one logged publish. Zero
// triples is an epoch marker (compaction or boot publish) — the epoch
// advances, the content does not.
type WALRecord struct {
	Epoch   uint64
	Triples []kg.Triple
}

// EncodeWALRecord renders the record in the WAL payload format — the
// exact bytes the primary logged, reused as the stream wire format.
func EncodeWALRecord(rec WALRecord) []byte {
	return encodeWALPayload(rec.Epoch, rec.Triples)
}

// DecodeWALRecord parses an EncodeWALRecord payload.
func DecodeWALRecord(p []byte) (WALRecord, error) {
	rec, err := decodeWALPayload(p)
	if err != nil {
		return WALRecord{}, err
	}
	return WALRecord{Epoch: rec.epoch, Triples: rec.triples}, nil
}

// ErrTruncatedHistory reports that the WAL no longer reaches back to the
// requested epoch — a checkpoint folded that prefix away. The caller
// must re-sync from a checkpoint instead of the log.
var ErrTruncatedHistory = errors.New("substrate: wal history before the requested epoch was truncated by a checkpoint")

// ErrEpochGap reports an ApplyReplicated record that does not directly
// extend the replica's applied chain.
var ErrEpochGap = errors.New("substrate: replicated record does not extend the applied epoch chain")

// RecordsSince returns every committed WAL record with epoch > from, in
// epoch order. It fails with ErrTruncatedHistory when the log provably
// cannot cover (from, head]: the caller should bootstrap from a
// checkpoint and retry from its epoch. Only durable managers keep a log.
func (m *Manager) RecordsSince(from uint64) ([]WALRecord, error) {
	if !m.durable {
		return nil, ErrNotDurable
	}
	// A concurrent append can leave a half-written final frame; replayWAL
	// treats it as a torn tail and stops cleanly — the record reaches the
	// subscriber feed (and the next RecordsSince) once fully written.
	recs, _, _, err := replayWAL(filepath.Join(m.dir, walName))
	if err != nil {
		return nil, err
	}
	out := make([]WALRecord, 0, len(recs))
	for _, rec := range recs {
		if rec.epoch > from {
			out = append(out, WALRecord{Epoch: rec.epoch, Triples: rec.triples})
		}
	}
	// Coverage check: the chain (from, head] is served only when the
	// checkpoint horizon is at or below from, or the log itself still
	// starts at from+1 or earlier (truncation is best-effort, so records
	// below the horizon may survive). Anything else risks a silent gap.
	if m.lastCheckpointEpoch.Load() > from {
		if len(recs) == 0 || recs[0].epoch > from+1 {
			return nil, ErrTruncatedHistory
		}
	}
	return out, nil
}

// WALSub is one live WAL subscription. C delivers records in append
// order; the channel is closed when the subscriber lags past its buffer
// (re-sync from RecordsSince) or the manager closes.
type WALSub struct {
	C      <-chan WALRecord
	c      chan WALRecord
	id     int
	closed bool
}

// SubscribeWAL registers a live feed of WAL appends with the given
// buffer (<= 0 picks a default). Cancel with the returned function; a
// subscriber that falls more than buf records behind is dropped (its
// channel closes) so a stuck stream can never block ingest.
func (m *Manager) SubscribeWAL(buf int) (*WALSub, func()) {
	if buf <= 0 {
		buf = 256
	}
	c := make(chan WALRecord, buf)
	sub := &WALSub{C: c, c: c}
	m.replMu.Lock()
	m.replSubID++
	sub.id = m.replSubID
	if m.replSubs == nil {
		m.replSubs = make(map[int]*WALSub)
	}
	m.replSubs[sub.id] = sub
	m.replMu.Unlock()
	return sub, func() { m.dropSub(sub.id) }
}

func (m *Manager) dropSub(id int) {
	m.replMu.Lock()
	defer m.replMu.Unlock()
	if sub, ok := m.replSubs[id]; ok {
		delete(m.replSubs, id)
		if !sub.closed {
			sub.closed = true
			close(sub.c)
		}
	}
}

// notifyRepl fans one just-appended record out to the live subscribers.
// Non-blocking: a full subscriber is dropped (channel closed) and must
// re-sync from the log — WAL shipping may lag, never stall the writer.
func (m *Manager) notifyRepl(epoch uint64, triples []kg.Triple) {
	m.replMu.Lock()
	defer m.replMu.Unlock()
	for id, sub := range m.replSubs {
		select {
		case sub.c <- WALRecord{Epoch: epoch, Triples: triples}:
		default:
			delete(m.replSubs, id)
			sub.closed = true
			close(sub.c)
		}
	}
}

// closeSubs drops every live subscription (manager shutdown).
func (m *Manager) closeSubs() {
	m.replMu.Lock()
	defer m.replMu.Unlock()
	for id, sub := range m.replSubs {
		delete(m.replSubs, id)
		sub.closed = true
		close(sub.c)
	}
}

// ApplyReplicated applies one shipped WAL record on a replica manager:
// the record is logged to the local WAL under the primary's epoch,
// applied through the normal ingest plan/apply path, and published at
// exactly rec.Epoch — so the replica's snapshot chain is the primary's,
// epoch for epoch. Records at or below the applied epoch are skipped
// (idempotent across stream resumes); a record past epoch+1 fails with
// ErrEpochGap and the applier must re-sync. Returns whether the record
// advanced the chain.
func (m *Manager) ApplyReplicated(rec WALRecord) (bool, error) {
	if !m.cfg.Replica {
		return false, errors.New("substrate: ApplyReplicated on a non-replica manager")
	}
	m.mu.Lock()
	if rec.Epoch <= m.epoch {
		m.mu.Unlock()
		return false, nil
	}
	if rec.Epoch != m.epoch+1 {
		have, want := m.epoch, rec.Epoch
		m.mu.Unlock()
		return false, fmt.Errorf("%w: applied epoch %d, record epoch %d", ErrEpochGap, have, want)
	}
	if m.wal != nil {
		if err := m.wal.append(rec.Epoch, rec.Triples); err != nil {
			m.mu.Unlock()
			return false, err
		}
	}
	fresh, _ := m.planLocked(rec.Triples)
	m.applyLocked(fresh)
	if len(fresh) > 0 {
		m.ingests.Add(1)
	}
	m.coalesceDeltaSegsLocked()
	m.publishLocked() // epoch was rec.Epoch-1, so this publishes rec.Epoch
	compactNeeded := m.cfg.CompactThreshold > 0 && m.delta.Len() >= m.cfg.CompactThreshold
	m.mu.Unlock()
	if compactNeeded {
		go func() {
			// Replica compactions are epoch-frozen (see Compact), so the
			// fold never desynchronises the applied chain.
			_, _ = m.Compact(context.Background())
		}()
	}
	return true, nil
}

// Replica reports whether this manager applies a primary's WAL instead
// of accepting local ingests.
func (m *Manager) Replica() bool { return m.cfg.Replica }

// LastCheckpointEpoch reports the epoch of the most recent checkpoint
// (written or recovered), 0 when none exists. This is the oldest epoch
// a joining replica can stream from without a bootstrap.
func (m *Manager) LastCheckpointEpoch() uint64 { return m.lastCheckpointEpoch.Load() }

// NewestCheckpoint returns the newest on-disk checkpoint directory and
// its epoch, or ok=false when none exists. The directory is stable: a
// newer checkpoint lands under a different name and pruning only removes
// superseded ones after the new directory is in place, so a caller
// tarring the returned path races at worst with its own slowness.
func (m *Manager) NewestCheckpoint() (path string, epoch uint64, ok bool) {
	if !m.durable {
		return "", 0, false
	}
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return "", 0, false
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if ep, valid := parseCheckpointEpoch(e.Name()); valid && (!ok || ep > epoch) {
			path, epoch, ok = filepath.Join(m.dir, e.Name()), ep, true
		}
	}
	return path, epoch, ok
}

// DataDir returns the manager's persistence directory ("" when
// memory-only).
func (m *Manager) DataDir() string { return m.dir }

// ParseCheckpointDir reports whether name is a checkpoint directory
// name (checkpoint-<epoch hex>) and the epoch it encodes. Exported for
// the replication bootstrap, which validates fetched archive roots.
func ParseCheckpointDir(name string) (uint64, bool) { return parseCheckpointEpoch(name) }

// MaxPersistedEpoch scans a manager data directory (one source's
// Dir/<source>) without building a manager and reports the largest epoch
// its checkpoints and WAL cover — what a recovery from that directory
// would resume at. A missing or empty directory is epoch 0. Used by the
// replica pre-flight to decide whether the primary's stream can extend
// local state or a checkpoint bootstrap is needed first.
func MaxPersistedEpoch(dir string) (uint64, error) {
	var max uint64
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("substrate: scan data dir: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if ep, ok := parseCheckpointEpoch(e.Name()); ok && ep > max {
			// Trust the directory name without full validation: an invalid
			// checkpoint only makes the pre-flight skip a bootstrap it would
			// have tolerated, and recovery re-validates everything anyway.
			max = ep
		}
	}
	recs, _, _, err := replayWAL(filepath.Join(dir, walName))
	if err != nil {
		return 0, err
	}
	for _, rec := range recs {
		if rec.epoch > max {
			max = rec.epoch
		}
	}
	return max, nil
}
