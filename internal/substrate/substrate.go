// Package substrate manages live, versioned knowledge substrates: the
// (kg store, vector index) pair every QA method runs against, made
// updatable under serving traffic without a restart.
//
// The design is snapshot-based. A Manager owns:
//
//   - a frozen base store, vector-indexed as fixed-size shards that are
//     searched concurrently (vecstore.Sharded);
//   - an unfrozen delta store that accumulates ingested triples, with a
//     small delta index rebuilt per ingest batch;
//   - the current Snapshot: an immutable (epoch, kg.Reader,
//     vecstore.Searcher) triple published with an atomic pointer swap.
//
// Readers resolve the current snapshot once per query and keep it for the
// whole run, so a query served mid-ingest sees one consistent substrate
// end-to-end. Writers (Ingest, Compact) build the next snapshot off to the
// side and swap it in; the epoch increments on every swap, which serving
// layers fold into cache-key scopes so a swap implicitly invalidates every
// answer computed against an older substrate.
//
// Compaction folds the delta into a new frozen base — re-sharding the
// index — and resets the delta. It runs concurrently with ingest: only the
// final swap takes the writer lock, and triples ingested during the build
// survive as the new delta.
//
// # Invariants
//
//   - Snapshot immutability: a published Snapshot's Store and Index never
//     change. Queries resolve one snapshot and keep it; swaps never tear
//     a running query.
//   - Epoch monotonicity: every publish increments the epoch, and on
//     durable managers the epoch never regresses across a restart —
//     recovery resumes past the largest persisted epoch, so epoch-scoped
//     serving-cache keys stay valid with zero coordination.
//   - Log-before-apply: on durable managers every ingest batch is
//     appended (and, per policy, fsynced) to the WAL before any in-memory
//     state changes; a failed append rejects the ingest with nothing to
//     roll back.
//
// # Durability
//
// Config.Durability enables persistence: an ingest WAL (wal.go) bounded
// by atomic (triples.nt, index.bin) checkpoints (checkpoint.go), written
// on compaction, on a timer, and on demand. Build durable managers with
// Recover, which loads the newest valid checkpoint, replays the WAL tail
// through the normal ingest path, and drops torn tail records by
// checksum (recover.go). Close a durable manager on shutdown.
package substrate

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/embed"
	"repro/internal/kg"
	"repro/internal/vecstore"
)

// Config sizes a Manager.
type Config struct {
	// ShardSize is the segment size of the base's sharded vector index;
	// <= 0 uses vecstore.DefaultShardSize.
	ShardSize int
	// CompactThreshold starts a background compaction when an ingest
	// leaves the delta at or above this many triples; 0 disables
	// auto-compaction (Compact can still be called explicitly).
	CompactThreshold int
	// Durability configures persistence (ingest WAL + checkpoints); the
	// zero value keeps the manager memory-only. Durable managers must be
	// built with Recover, which replays persisted state at boot.
	Durability Durability
	// ANN configures approximate retrieval over the frozen base; the
	// zero value keeps every search an exact scan.
	ANN ANNConfig
	// Replica puts the manager in WAL-applying mode: recovery resumes at
	// exactly the largest persisted epoch (never +1, so the applied chain
	// can extend it seamlessly), compactions are epoch-frozen (the fold
	// changes layout, not content, so the epoch — and with it every
	// epoch-scoped cache key — stays put), and ApplyReplicated becomes
	// the only legal writer. Local Ingest must not be called.
	Replica bool
}

// ANNConfig enables sublinear approximate retrieval: an HNSW graph is
// built over the frozen base at boot and rebuilt by every compaction
// (off the writer lock), while the hot delta stays exact-scan. The
// snapshot then serves through a vecstore.Hybrid — graph over the base,
// exact over the delta, merged per query — so the approximate/exact
// split rides the existing snapshot lifecycle and epoch-scoped cache
// invalidation unchanged.
type ANNConfig struct {
	// Enabled turns the ANN path on.
	Enabled bool
	// M, EfConstruction, EfSearch and Seed tune the graph; zero values
	// use the vecstore defaults.
	M              int
	EfConstruction int
	EfSearch       int
	Seed           int64
	// DisableExactFallback turns off the escape hatch that routes a
	// query to the exact scan when the beam is narrower than its k.
	DisableExactFallback bool
}

func (c ANNConfig) hnswConfig() vecstore.HNSWConfig {
	return vecstore.HNSWConfig{
		M:              c.M,
		EfConstruction: c.EfConstruction,
		EfSearch:       c.EfSearch,
		Seed:           c.Seed,
	}
}

// Snapshot is one immutable substrate version. Store and Index never
// change after publication; a caller holding a Snapshot can serve any
// number of queries against a consistent view.
type Snapshot struct {
	// Epoch increments on every swap. Serving layers scope cache keys by
	// it so answers from older substrates are never served after a swap.
	Epoch uint64
	// Store is the consistent triple view (base, or base ∪ delta copy).
	Store kg.Reader
	// Index is the sharded vector index over exactly Store's triples.
	Index vecstore.Searcher
	// BaseTriples / DeltaTriples split Store.Len() by origin.
	BaseTriples  int
	DeltaTriples int
}

// ErrCompacting reports that a compaction is already running.
var ErrCompacting = errors.New("substrate: compaction already in progress")

// maxTripleBytes bounds one ingested triple's combined field length —
// comfortably under the 1 MiB per-line cap kg.ReadNT applies when a
// checkpoint is loaded back, so no accepted triple can ever make a
// checkpoint unreadable.
const maxTripleBytes = 256 << 10

// Manager owns the snapshot chain for one KG source. Safe for concurrent
// use: any number of readers (Current/Resolve) proceed lock-free while
// writers serialise on an internal mutex.
type Manager struct {
	enc *embed.Encoder
	cfg Config

	cur atomic.Pointer[Snapshot]

	mu         sync.Mutex // guards the master state below
	base       *kg.Store  // frozen
	baseShards []*vecstore.Index
	// baseANN is the HNSW graph over a prefix of baseShards (usually all
	// of them; after a mid-generation recovery it may cover fewer — the
	// uncovered tail is exact-scanned until the next compaction). Nil
	// when Config.ANN is disabled.
	baseANN *vecstore.HNSW
	delta   *kg.Store // unfrozen, accumulating
	// deltaSegs are the delta's index segments, one per ingest batch
	// (coalesced when they proliferate), so each publish encodes only the
	// newly added triples instead of the whole accumulated delta.
	deltaSegs     []*vecstore.Index
	epoch         uint64
	compacting    bool
	checkpointing bool

	ingests     atomic.Int64
	compactions atomic.Int64
	// annCounters survives snapshot recomposition: every publish wires
	// the same counters into the new Hybrid view.
	annCounters vecstore.ANNCounters

	// Durability state: nil/zero for memory-only managers (see Recover).
	durable bool
	dir     string // per-source data directory
	wal     *wal
	// recovery describes what boot recovery restored; set once by Recover.
	recovery            RecoveryInfo
	checkpoints         atomic.Int64
	lastCheckpointEpoch atomic.Uint64

	// Live WAL-shipping subscribers (repl.go); replMu is ordered after
	// m.mu and the wal mutex — notifyRepl is only called with neither
	// held or with m.mu held, never from inside the wal lock.
	replMu    sync.Mutex
	replSubs  map[int]*WALSub
	replSubID int

	closeOnce sync.Once
	closeErr  error
	stopFlush chan struct{}
	flushDone chan struct{}
	stopCkpt  chan struct{}
	ckptDone  chan struct{}
}

// NewManager builds a manager over a base store, sharding its vector
// index. The store is frozen if it is not already; the manager owns it
// from here on.
func NewManager(enc *embed.Encoder, base *kg.Store, cfg Config) *Manager {
	base.Freeze()
	m := &Manager{
		enc:        enc,
		cfg:        cfg,
		base:       base,
		baseShards: vecstore.BuildShards(enc, base.All(), cfg.ShardSize),
		delta:      kg.NewStore(base.Source()),
		epoch:      0,
	}
	if cfg.ANN.Enabled {
		m.baseANN = vecstore.BuildHNSW(enc, base.All(), cfg.ANN.hnswConfig())
	}
	m.mu.Lock()
	m.publishLocked()
	m.mu.Unlock()
	return m
}

// Current returns the live snapshot. The result is immutable; hold it for
// as long as a consistent view is needed.
func (m *Manager) Current() *Snapshot { return m.cur.Load() }

// Resolve returns the live snapshot's components — the answer.Substrate
// contract: one call per query pins that query to one consistent view.
func (m *Manager) Resolve() (kg.Reader, vecstore.Searcher, uint64) {
	s := m.cur.Load()
	return s.Store, s.Index, s.Epoch
}

// Epoch returns the live snapshot's epoch.
func (m *Manager) Epoch() uint64 { return m.cur.Load().Epoch }

// Source returns the managed KG source.
func (m *Manager) Source() kg.Source { return m.cur.Load().Store.Source() }

// IngestResult reports what one Ingest call did.
type IngestResult struct {
	// Added is how many triples were new; Skipped counts duplicates of
	// base or delta facts.
	Added   int
	Skipped int
	// Epoch is the snapshot epoch after the call (unchanged when nothing
	// was added).
	Epoch uint64
	// BaseTriples / DeltaTriples describe the post-call snapshot.
	BaseTriples  int
	DeltaTriples int
}

// Ingest adds triples to the delta store and, if anything was new,
// publishes a fresh snapshot whose index covers them. Triples already
// present (in base or delta) are skipped, so ingestion is idempotent.
// Structurally empty triples are rejected.
//
// A triple with Ord 0 whose (subject, relation) already holds facts is
// treated as the *newest* value of a time-varying fact: its ordinal is
// assigned past the largest existing one, so "ingest the updated
// population" makes the new value current instead of sorting as the
// oldest. Pass an explicit non-zero Ord to place a value in history.
//
// When the delta reaches Config.CompactThreshold, a background
// compaction starts automatically.
//
// On a durable manager the batch is appended to the write-ahead log
// before any in-memory state changes (fsynced per the configured
// policy): a failed append rejects the ingest with nothing to roll
// back, and an acknowledged ingest survives a restart.
func (m *Manager) Ingest(triples []kg.Triple) (IngestResult, error) {
	if m.cfg.Replica {
		// Replicas have exactly one writer — the primary's shipped WAL. A
		// local ingest would fork the epoch chain: the same epoch number
		// would mean different content here and on the primary.
		return IngestResult{}, errors.New("substrate: manager is a replica; ingest on the primary")
	}
	for i, t := range triples {
		if t.Subject == "" || t.Relation == "" || t.Object == "" {
			return IngestResult{}, fmt.Errorf("substrate: triple %d is missing a field: %v", i, t)
		}
		if strings.ContainsAny(t.Subject+t.Relation+t.Object, "<>\n\r") {
			// The persisted NT form delimits fields with angle brackets and
			// records with newlines; a field containing them would change
			// meaning across a checkpoint/replay round-trip.
			return IngestResult{}, fmt.Errorf("substrate: triple %d contains a reserved character (one of '<', '>', newline): %v", i, t)
		}
		if len(t.Subject)+len(t.Relation)+len(t.Object) > maxTripleBytes {
			// kg.ReadNT scans checkpoint lines with a 1 MiB buffer; a
			// triple past that would be accepted now but make every future
			// checkpoint containing it unloadable at boot.
			return IngestResult{}, fmt.Errorf("substrate: triple %d is %d bytes, over the %d-byte limit", i, len(t.Subject)+len(t.Relation)+len(t.Object), maxTripleBytes)
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	fresh, skipped := m.planLocked(triples)
	var snap *Snapshot
	if len(fresh) > 0 {
		if m.wal != nil {
			// Log-before-apply: the record carries the epoch the publish
			// below will create.
			if err := m.wal.append(m.epoch+1, fresh); err != nil {
				return IngestResult{}, err
			}
		}
		m.applyLocked(fresh)
		m.ingests.Add(1)
		m.coalesceDeltaSegsLocked()
		snap = m.publishLocked()
		if m.wal != nil {
			// The snapshot is live, so a replica that applies this record
			// and answers at snap.Epoch serves exactly what we serve.
			m.notifyRepl(snap.Epoch, fresh)
		}
		if m.cfg.CompactThreshold > 0 && m.delta.Len() >= m.cfg.CompactThreshold {
			go func() {
				// Best-effort: a compaction already running will pick the
				// new triples up on the next trigger.
				_, _ = m.Compact(context.Background())
			}()
		}
	} else {
		snap = m.cur.Load()
	}
	return IngestResult{
		Added:        len(fresh),
		Skipped:      skipped,
		Epoch:        snap.Epoch,
		BaseTriples:  snap.BaseTriples,
		DeltaTriples: snap.DeltaTriples,
	}, nil
}

// planLocked computes which of the batch's triples are actually new —
// duplicates of base, delta or earlier batch entries skipped, ordinals
// assigned — without mutating any state, so the WAL can log the exact
// stored forms before they are applied. Caller holds m.mu.
func (m *Manager) planLocked(triples []kg.Triple) (fresh []kg.Triple, skipped int) {
	seen := make(map[string]bool, len(triples))
	// pendingOrd tracks the largest ordinal planned per (subject,
	// relation) within this batch, so repeated time-varying values keep
	// accumulating past each other exactly as sequential ingests would.
	pendingOrd := make(map[string]int)
	for _, t := range triples {
		if seen[t.Key()] || m.base.Contains(t) || m.delta.Contains(t) {
			skipped++
			continue
		}
		if t.Ord == 0 {
			max, found := m.maxOrdLocked(t.Subject, t.Relation)
			if p, ok := pendingOrd[t.SRKey()]; ok {
				if !found || p > max {
					max = p
				}
				found = true
			}
			if found {
				t.Ord = max + 1
			}
		}
		if p, ok := pendingOrd[t.SRKey()]; !ok || t.Ord > p {
			pendingOrd[t.SRKey()] = t.Ord
		}
		seen[t.Key()] = true
		fresh = append(fresh, t)
	}
	return fresh, skipped
}

// applyLocked adds planned triples to the delta store and appends their
// index segment under the union's combined ID space. Caller holds m.mu;
// the triples must come from planLocked against the current state.
func (m *Manager) applyLocked(fresh []kg.Triple) {
	batch := make([]kg.Triple, 0, len(fresh))
	for _, t := range fresh {
		id, ok := m.delta.Add(t)
		if !ok {
			continue // unreachable for planned triples
		}
		stored, _ := m.delta.Get(id)
		stored.ID = m.base.Len() + id
		batch = append(batch, stored)
	}
	if len(batch) > 0 {
		m.deltaSegs = append(m.deltaSegs, vecstore.BuildTriples(m.enc, batch))
	}
}

// maxOrdLocked returns the largest ordinal stored for (subject, relation)
// across base and delta, and whether the pair holds any facts at all.
// Caller holds m.mu.
func (m *Manager) maxOrdLocked(subject, relation string) (int, bool) {
	max, found := 0, false
	for _, t := range m.base.SubjectRelation(subject, relation) {
		if !found || t.Ord > max {
			max, found = t.Ord, true
		}
	}
	for _, t := range m.delta.SubjectRelation(subject, relation) {
		if !found || t.Ord > max {
			max, found = t.Ord, true
		}
	}
	return max, found
}

// coalesceDeltaSegsLocked folds the per-batch delta segments into one
// once they proliferate: many tiny ingests would otherwise leave the
// snapshot index fanning out over hundreds of near-empty segments. The
// re-encode of the whole delta is amortised across maxDeltaSegs batches,
// and compaction resets everything anyway. Caller holds m.mu.
func (m *Manager) coalesceDeltaSegsLocked() {
	const maxDeltaSegs = 16
	if len(m.deltaSegs) < maxDeltaSegs {
		return
	}
	m.deltaSegs = []*vecstore.Index{vecstore.BuildTriples(m.enc, m.deltaTriplesLocked())}
}

// deltaTriplesLocked returns the delta's triples remapped into the
// union's combined ID space. Caller holds m.mu.
func (m *Manager) deltaTriplesLocked() []kg.Triple {
	out := m.delta.All()
	for i := range out {
		out[i].ID = m.base.Len() + i
	}
	return out
}

// publishLocked builds and swaps in a snapshot of the current master
// state. Caller holds m.mu. The delta is copied into a fresh frozen
// store and composed with the per-batch delta index segments, so publish
// cost is proportional to the latest batch, not the substrate (store
// copy aside, which is map inserts, not encoding).
func (m *Manager) publishLocked() *Snapshot {
	m.epoch++
	return m.republishLocked()
}

// republishLocked builds and swaps in a snapshot of the current master
// state at the CURRENT epoch, without bumping it. Only correct when the
// content at this epoch is unchanged — the replica-mode compaction fold,
// which rearranges base/delta layout but serves the same triple set, so
// epoch-scoped cache keys stay valid. Caller holds m.mu.
func (m *Manager) republishLocked() *Snapshot {
	var store kg.Reader = m.base
	shards := m.baseShards
	if m.delta.Len() > 0 {
		snapDelta := kg.NewStore(m.base.Source())
		snapDelta.AddAll(m.delta.All())
		snapDelta.Freeze()
		store = newUnion(m.base, snapDelta)
		shards = append(append([]*vecstore.Index(nil), m.baseShards...), m.deltaSegs...)
	}
	var index vecstore.Searcher
	if m.baseANN != nil {
		// Approximate over the graph-covered base prefix, exact over the
		// uncovered tail and the hot delta, merged per query. The same
		// counters carry across publishes.
		index = vecstore.ComposeHybrid(m.enc, m.baseANN, shards, vecstore.HybridOptions{
			EfSearch:             m.cfg.ANN.EfSearch,
			DisableExactFallback: m.cfg.ANN.DisableExactFallback,
			Counters:             &m.annCounters,
		})
	} else {
		index = vecstore.Compose(m.enc, shards...)
	}
	snap := &Snapshot{
		Epoch:        m.epoch,
		Store:        store,
		Index:        index,
		BaseTriples:  m.base.Len(),
		DeltaTriples: m.delta.Len(),
	}
	m.cur.Store(snap)
	return snap
}

// Compact folds the delta into a new frozen, re-sharded base and publishes
// the result. The expensive part — re-encoding the merged triple set —
// runs outside the writer lock, so ingest stays live during compaction;
// triples ingested while the build runs carry over into the new delta.
// Returns ErrCompacting if another compaction is in flight. A compaction
// of an empty delta is a no-op returning the current snapshot.
func (m *Manager) Compact(ctx context.Context) (*Snapshot, error) {
	m.mu.Lock()
	if m.compacting {
		m.mu.Unlock()
		return nil, ErrCompacting
	}
	if m.delta.Len() == 0 {
		snap := m.cur.Load()
		m.mu.Unlock()
		return snap, nil
	}
	m.compacting = true
	baseAll := m.base.All()
	deltaPrefix := m.delta.All()
	src := m.base.Source()
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		m.compacting = false
		m.mu.Unlock()
	}()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	newBase := kg.NewStore(src)
	newBase.AddAll(baseAll)
	newBase.AddAll(deltaPrefix)
	newBase.Freeze()
	newShards := vecstore.BuildShards(m.enc, newBase.All(), m.cfg.ShardSize)
	var newANN *vecstore.HNSW
	if m.cfg.ANN.Enabled {
		// The graph build is the expensive part of an ANN compaction;
		// like the re-shard above it runs here, outside the writer lock,
		// so ingest stays live while the graph grows.
		newANN = vecstore.BuildHNSW(m.enc, newBase.All(), m.cfg.ANN.hnswConfig())
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	m.mu.Lock()
	// Whatever arrived during the build becomes the new delta. Delta IDs
	// are assigned in insertion order, so the compacted prefix is exactly
	// the first len(deltaPrefix) triples.
	tail := m.delta.All()[len(deltaPrefix):]
	newDelta := kg.NewStore(src)
	newDelta.AddAll(tail)
	m.base = newBase
	m.baseShards = newShards
	m.baseANN = newANN
	m.delta = newDelta
	m.deltaSegs = nil
	if newDelta.Len() > 0 {
		// Re-segment the carried-over triples against the new base's ID
		// space.
		m.deltaSegs = []*vecstore.Index{vecstore.BuildTriples(m.enc, m.deltaTriplesLocked())}
	}
	m.compactions.Add(1)
	var snap *Snapshot
	if m.cfg.Replica {
		// Epoch-frozen: the fold rearranged base/delta layout but serves
		// the same triple set, and the replica's epoch must keep meaning
		// exactly what the primary's does. No marker is logged either —
		// the local WAL holds only records shipped from the primary.
		snap = m.republishLocked()
	} else {
		snap = m.publishLocked()
		if m.wal != nil {
			// A zero-triple epoch marker: the WAL then records every publish,
			// so a recovery that replays the log never resumes at an epoch
			// below the one clients last saw — even if the checkpoint below
			// fails or the process dies before it lands — and replicas see a
			// contiguous record chain across compactions.
			if err := m.wal.append(snap.Epoch, nil); err != nil {
				log.Printf("substrate[%s]: compaction epoch marker: %v", src, err)
			} else {
				m.notifyRepl(snap.Epoch, nil)
			}
		}
	}
	m.mu.Unlock()

	if m.durable {
		// Compaction is the natural checkpoint moment: the delta just
		// folded into the base, so persisting now keeps the WAL short.
		if _, err := m.Checkpoint(ctx); err != nil && !errors.Is(err, ErrCheckpointing) {
			log.Printf("substrate[%s]: checkpoint after compaction: %v", src, err)
		}
	}
	return snap, nil
}

// Stats is a point-in-time summary of the manager.
type Stats struct {
	Epoch        uint64 `json:"epoch"`
	BaseTriples  int    `json:"base_triples"`
	DeltaTriples int    `json:"delta_triples"`
	Shards       int    `json:"shards"`
	Ingests      int64  `json:"ingests"`
	Compactions  int64  `json:"compactions"`
	// ANN describes the approximate index layer — graph size, levels,
	// the beam in effect, and how traffic split between graph and exact
	// fallback. Nil when Config.ANN is disabled.
	ANN *vecstore.ANNInfo `json:"ann,omitempty"`
	// Durability reports persistence counters; Enabled is false for
	// memory-only managers.
	Durability DurabilityStats `json:"durability"`
}

// DurabilityStats summarises the persistence layer of one manager.
type DurabilityStats struct {
	Enabled bool `json:"enabled"`
	// Fsync is the configured WAL sync policy (always/interval/never).
	Fsync string `json:"fsync,omitempty"`
	// WALRecords / WALBytes / WALSyncs count appends since boot.
	WALRecords int64 `json:"wal_records"`
	WALBytes   int64 `json:"wal_bytes"`
	WALSyncs   int64 `json:"wal_syncs"`
	// Checkpoints counts checkpoints written since boot;
	// LastCheckpointEpoch is the epoch of the newest one.
	Checkpoints         int64  `json:"checkpoints"`
	LastCheckpointEpoch uint64 `json:"last_checkpoint_epoch"`
	// Recovery describes what boot recovery restored.
	Recovery RecoveryInfo `json:"recovery"`
}

// Stats summarises the live snapshot and the writer counters.
func (m *Manager) Stats() Stats {
	snap := m.cur.Load()
	idx := snap.Index.Stats()
	st := Stats{
		Epoch:        snap.Epoch,
		BaseTriples:  snap.BaseTriples,
		DeltaTriples: snap.DeltaTriples,
		Shards:       idx.Shards,
		ANN:          idx.ANN,
		Ingests:      m.ingests.Load(),
		Compactions:  m.compactions.Load(),
	}
	if m.durable {
		st.Durability = DurabilityStats{
			Enabled:             true,
			Fsync:               m.cfg.Durability.Fsync.String(),
			WALRecords:          m.wal.records.Load(),
			WALBytes:            m.wal.bytes.Load(),
			WALSyncs:            m.wal.syncs.Load(),
			Checkpoints:         m.checkpoints.Load(),
			LastCheckpointEpoch: m.lastCheckpointEpoch.Load(),
			Recovery:            m.recovery,
		}
	}
	return st
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("substrate: epoch %d, %d base + %d delta triples, %d shards, %d ingests, %d compactions",
		s.Epoch, s.BaseTriples, s.DeltaTriples, s.Shards, s.Ingests, s.Compactions)
}
