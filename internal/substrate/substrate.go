// Package substrate manages live, versioned knowledge substrates: the
// (kg store, vector index) pair every QA method runs against, made
// updatable under serving traffic without a restart.
//
// The design is snapshot-based. A Manager owns:
//
//   - a frozen base store, vector-indexed as fixed-size shards that are
//     searched concurrently (vecstore.Sharded);
//   - an unfrozen delta store that accumulates ingested triples, with a
//     small delta index rebuilt per ingest batch;
//   - the current Snapshot: an immutable (epoch, kg.Reader,
//     vecstore.Searcher) triple published with an atomic pointer swap.
//
// Readers resolve the current snapshot once per query and keep it for the
// whole run, so a query served mid-ingest sees one consistent substrate
// end-to-end. Writers (Ingest, Compact) build the next snapshot off to the
// side and swap it in; the epoch increments on every swap, which serving
// layers fold into cache-key scopes so a swap implicitly invalidates every
// answer computed against an older substrate.
//
// Compaction folds the delta into a new frozen base — re-sharding the
// index — and resets the delta. It runs concurrently with ingest: only the
// final swap takes the writer lock, and triples ingested during the build
// survive as the new delta.
package substrate

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/embed"
	"repro/internal/kg"
	"repro/internal/vecstore"
)

// Config sizes a Manager.
type Config struct {
	// ShardSize is the segment size of the base's sharded vector index;
	// <= 0 uses vecstore.DefaultShardSize.
	ShardSize int
	// CompactThreshold starts a background compaction when an ingest
	// leaves the delta at or above this many triples; 0 disables
	// auto-compaction (Compact can still be called explicitly).
	CompactThreshold int
}

// Snapshot is one immutable substrate version. Store and Index never
// change after publication; a caller holding a Snapshot can serve any
// number of queries against a consistent view.
type Snapshot struct {
	// Epoch increments on every swap. Serving layers scope cache keys by
	// it so answers from older substrates are never served after a swap.
	Epoch uint64
	// Store is the consistent triple view (base, or base ∪ delta copy).
	Store kg.Reader
	// Index is the sharded vector index over exactly Store's triples.
	Index vecstore.Searcher
	// BaseTriples / DeltaTriples split Store.Len() by origin.
	BaseTriples  int
	DeltaTriples int
}

// ErrCompacting reports that a compaction is already running.
var ErrCompacting = errors.New("substrate: compaction already in progress")

// Manager owns the snapshot chain for one KG source. Safe for concurrent
// use: any number of readers (Current/Resolve) proceed lock-free while
// writers serialise on an internal mutex.
type Manager struct {
	enc *embed.Encoder
	cfg Config

	cur atomic.Pointer[Snapshot]

	mu         sync.Mutex // guards the master state below
	base       *kg.Store  // frozen
	baseShards []*vecstore.Index
	delta      *kg.Store // unfrozen, accumulating
	// deltaSegs are the delta's index segments, one per ingest batch
	// (coalesced when they proliferate), so each publish encodes only the
	// newly added triples instead of the whole accumulated delta.
	deltaSegs  []*vecstore.Index
	epoch      uint64
	compacting bool

	ingests     atomic.Int64
	compactions atomic.Int64
}

// NewManager builds a manager over a base store, sharding its vector
// index. The store is frozen if it is not already; the manager owns it
// from here on.
func NewManager(enc *embed.Encoder, base *kg.Store, cfg Config) *Manager {
	base.Freeze()
	m := &Manager{
		enc:        enc,
		cfg:        cfg,
		base:       base,
		baseShards: vecstore.BuildShards(enc, base.All(), cfg.ShardSize),
		delta:      kg.NewStore(base.Source()),
		epoch:      0,
	}
	m.mu.Lock()
	m.publishLocked()
	m.mu.Unlock()
	return m
}

// Current returns the live snapshot. The result is immutable; hold it for
// as long as a consistent view is needed.
func (m *Manager) Current() *Snapshot { return m.cur.Load() }

// Resolve returns the live snapshot's components — the answer.Substrate
// contract: one call per query pins that query to one consistent view.
func (m *Manager) Resolve() (kg.Reader, vecstore.Searcher, uint64) {
	s := m.cur.Load()
	return s.Store, s.Index, s.Epoch
}

// Epoch returns the live snapshot's epoch.
func (m *Manager) Epoch() uint64 { return m.cur.Load().Epoch }

// Source returns the managed KG source.
func (m *Manager) Source() kg.Source { return m.cur.Load().Store.Source() }

// IngestResult reports what one Ingest call did.
type IngestResult struct {
	// Added is how many triples were new; Skipped counts duplicates of
	// base or delta facts.
	Added   int
	Skipped int
	// Epoch is the snapshot epoch after the call (unchanged when nothing
	// was added).
	Epoch uint64
	// BaseTriples / DeltaTriples describe the post-call snapshot.
	BaseTriples  int
	DeltaTriples int
}

// Ingest adds triples to the delta store and, if anything was new,
// publishes a fresh snapshot whose index covers them. Triples already
// present (in base or delta) are skipped, so ingestion is idempotent.
// Structurally empty triples are rejected.
//
// A triple with Ord 0 whose (subject, relation) already holds facts is
// treated as the *newest* value of a time-varying fact: its ordinal is
// assigned past the largest existing one, so "ingest the updated
// population" makes the new value current instead of sorting as the
// oldest. Pass an explicit non-zero Ord to place a value in history.
//
// When the delta reaches Config.CompactThreshold, a background
// compaction starts automatically.
func (m *Manager) Ingest(triples []kg.Triple) (IngestResult, error) {
	for i, t := range triples {
		if t.Subject == "" || t.Relation == "" || t.Object == "" {
			return IngestResult{}, fmt.Errorf("substrate: triple %d is missing a field: %v", i, t)
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	added, skipped := 0, 0
	var fresh []kg.Triple
	for _, t := range triples {
		if m.base.Contains(t) {
			skipped++
			continue
		}
		if t.Ord == 0 {
			if max, ok := m.maxOrdLocked(t.Subject, t.Relation); ok {
				t.Ord = max + 1
			}
		}
		id, ok := m.delta.Add(t)
		if !ok {
			skipped++
			continue
		}
		added++
		// Record the stored form under the union's combined ID space for
		// this batch's index segment.
		stored, _ := m.delta.Get(id)
		stored.ID = m.base.Len() + id
		fresh = append(fresh, stored)
	}
	var snap *Snapshot
	if added > 0 {
		m.ingests.Add(1)
		m.deltaSegs = append(m.deltaSegs, vecstore.BuildTriples(m.enc, fresh))
		m.coalesceDeltaSegsLocked()
		snap = m.publishLocked()
		if m.cfg.CompactThreshold > 0 && m.delta.Len() >= m.cfg.CompactThreshold {
			go func() {
				// Best-effort: a compaction already running will pick the
				// new triples up on the next trigger.
				_, _ = m.Compact(context.Background())
			}()
		}
	} else {
		snap = m.cur.Load()
	}
	return IngestResult{
		Added:        added,
		Skipped:      skipped,
		Epoch:        snap.Epoch,
		BaseTriples:  snap.BaseTriples,
		DeltaTriples: snap.DeltaTriples,
	}, nil
}

// maxOrdLocked returns the largest ordinal stored for (subject, relation)
// across base and delta, and whether the pair holds any facts at all.
// Caller holds m.mu.
func (m *Manager) maxOrdLocked(subject, relation string) (int, bool) {
	max, found := 0, false
	for _, t := range m.base.SubjectRelation(subject, relation) {
		if !found || t.Ord > max {
			max, found = t.Ord, true
		}
	}
	for _, t := range m.delta.SubjectRelation(subject, relation) {
		if !found || t.Ord > max {
			max, found = t.Ord, true
		}
	}
	return max, found
}

// coalesceDeltaSegsLocked folds the per-batch delta segments into one
// once they proliferate: many tiny ingests would otherwise leave the
// snapshot index fanning out over hundreds of near-empty segments. The
// re-encode of the whole delta is amortised across maxDeltaSegs batches,
// and compaction resets everything anyway. Caller holds m.mu.
func (m *Manager) coalesceDeltaSegsLocked() {
	const maxDeltaSegs = 16
	if len(m.deltaSegs) < maxDeltaSegs {
		return
	}
	m.deltaSegs = []*vecstore.Index{vecstore.BuildTriples(m.enc, m.deltaTriplesLocked())}
}

// deltaTriplesLocked returns the delta's triples remapped into the
// union's combined ID space. Caller holds m.mu.
func (m *Manager) deltaTriplesLocked() []kg.Triple {
	out := m.delta.All()
	for i := range out {
		out[i].ID = m.base.Len() + i
	}
	return out
}

// publishLocked builds and swaps in a snapshot of the current master
// state. Caller holds m.mu. The delta is copied into a fresh frozen
// store and composed with the per-batch delta index segments, so publish
// cost is proportional to the latest batch, not the substrate (store
// copy aside, which is map inserts, not encoding).
func (m *Manager) publishLocked() *Snapshot {
	m.epoch++
	var store kg.Reader = m.base
	shards := m.baseShards
	if m.delta.Len() > 0 {
		snapDelta := kg.NewStore(m.base.Source())
		snapDelta.AddAll(m.delta.All())
		snapDelta.Freeze()
		store = newUnion(m.base, snapDelta)
		shards = append(append([]*vecstore.Index(nil), m.baseShards...), m.deltaSegs...)
	}
	snap := &Snapshot{
		Epoch:        m.epoch,
		Store:        store,
		Index:        vecstore.Compose(m.enc, shards...),
		BaseTriples:  m.base.Len(),
		DeltaTriples: m.delta.Len(),
	}
	m.cur.Store(snap)
	return snap
}

// Compact folds the delta into a new frozen, re-sharded base and publishes
// the result. The expensive part — re-encoding the merged triple set —
// runs outside the writer lock, so ingest stays live during compaction;
// triples ingested while the build runs carry over into the new delta.
// Returns ErrCompacting if another compaction is in flight. A compaction
// of an empty delta is a no-op returning the current snapshot.
func (m *Manager) Compact(ctx context.Context) (*Snapshot, error) {
	m.mu.Lock()
	if m.compacting {
		m.mu.Unlock()
		return nil, ErrCompacting
	}
	if m.delta.Len() == 0 {
		snap := m.cur.Load()
		m.mu.Unlock()
		return snap, nil
	}
	m.compacting = true
	baseAll := m.base.All()
	deltaPrefix := m.delta.All()
	src := m.base.Source()
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		m.compacting = false
		m.mu.Unlock()
	}()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	newBase := kg.NewStore(src)
	newBase.AddAll(baseAll)
	newBase.AddAll(deltaPrefix)
	newBase.Freeze()
	newShards := vecstore.BuildShards(m.enc, newBase.All(), m.cfg.ShardSize)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	// Whatever arrived during the build becomes the new delta. Delta IDs
	// are assigned in insertion order, so the compacted prefix is exactly
	// the first len(deltaPrefix) triples.
	tail := m.delta.All()[len(deltaPrefix):]
	newDelta := kg.NewStore(src)
	newDelta.AddAll(tail)
	m.base = newBase
	m.baseShards = newShards
	m.delta = newDelta
	m.deltaSegs = nil
	if newDelta.Len() > 0 {
		// Re-segment the carried-over triples against the new base's ID
		// space.
		m.deltaSegs = []*vecstore.Index{vecstore.BuildTriples(m.enc, m.deltaTriplesLocked())}
	}
	m.compactions.Add(1)
	return m.publishLocked(), nil
}

// Stats is a point-in-time summary of the manager.
type Stats struct {
	Epoch        uint64 `json:"epoch"`
	BaseTriples  int    `json:"base_triples"`
	DeltaTriples int    `json:"delta_triples"`
	Shards       int    `json:"shards"`
	Ingests      int64  `json:"ingests"`
	Compactions  int64  `json:"compactions"`
}

// Stats summarises the live snapshot and the writer counters.
func (m *Manager) Stats() Stats {
	snap := m.cur.Load()
	return Stats{
		Epoch:        snap.Epoch,
		BaseTriples:  snap.BaseTriples,
		DeltaTriples: snap.DeltaTriples,
		Shards:       snap.Index.Stats().Shards,
		Ingests:      m.ingests.Load(),
		Compactions:  m.compactions.Load(),
	}
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("substrate: epoch %d, %d base + %d delta triples, %d shards, %d ingests, %d compactions",
		s.Epoch, s.BaseTriples, s.DeltaTriples, s.Shards, s.Ingests, s.Compactions)
}
