package llm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/prompts"
	"repro/internal/qa"
	"repro/internal/world"
)

// plannedTriple is one statement the model intends to put in its
// pseudo-graph: subject/object surfaces plus the relation it will phrase.
type plannedTriple struct {
	Subject string
	Rel     world.RelKey
	Object  string
	// Literal marks the object as a property value rather than an entity.
	Literal bool
}

// planPseudoGraph decides which beliefs go into the pseudo-graph for a
// question. This is the "Knowledge Planning" step of Fig. 3: the model lays
// out the knowledge frame it thinks the question needs, filling slots from
// parametric memory (hallucinations included — the frame is still useful,
// which is the paper's core insight).
func (s *SimLM) planPseudoGraph(question string, intent qa.Intent, req Request) []plannedTriple {
	var plan []plannedTriple
	add := func(subject string, rel world.RelKey, object string) {
		info, _ := world.RelByKey(rel)
		plan = append(plan, plannedTriple{
			Subject: subject, Rel: rel, Object: object, Literal: info.ObjectLiteral,
		})
	}

	// recallOrGuess returns the model's belief for (subject, rel) —
	// truthful, corrupted, or fabricated — plus every extra value it
	// believes for multi-valued relations.
	recallAll := func(subject string, rel world.RelKey, salt string) []string {
		if ent, ok := s.mem.resolveSubject(subject); ok {
			beliefs := s.mem.recallSRBoosted(ent.ID, rel, req.Temperature, req.Nonce)
			if len(beliefs) > 0 {
				out := make([]string, len(beliefs))
				for i, b := range beliefs {
					out[i] = b.Object
				}
				return out
			}
		}
		return []string{s.mem.guessForRelation(rel, question, salt)}
	}
	recallOne := func(subject string, rel world.RelKey, salt string) string {
		return recallAll(subject, rel, salt)[0]
	}

	// enrich adds a couple of context facts about an entity beyond the
	// chain itself — the breadth that lets semantic retrieval anchor on
	// the right subject even when the chain value is hallucinated.
	enrich := func(subject string) {
		ent, ok := s.mem.resolveSubject(subject)
		if !ok {
			return
		}
		added := 0
		for _, f := range s.w.FactsOf(ent.ID) {
			if added >= 2 {
				break
			}
			if b, known := s.mem.recallFactBoosted(f, req.Temperature, req.Nonce); known {
				add(subject, f.Rel, b.Object)
				added++
			}
		}
	}

	switch intent.Kind {
	case qa.KindLookup:
		if intent.TRef != qa.TemporalCurrent && len(intent.Chain) == 1 {
			// Temporal lookup: lay out every believed revision in
			// chronological order so the graph QA step can index into the
			// history instead of collapsing to the current value.
			rel := intent.Chain[0]
			if ent, ok := s.mem.resolveSubject(intent.Subject); ok {
				hist := s.mem.recallSRHistory(ent.ID, rel, req.Temperature, req.Nonce)
				if len(hist) > 0 {
					for _, b := range hist {
						add(intent.Subject, rel, b.Object)
					}
					enrich(intent.Subject)
					break
				}
			}
			add(intent.Subject, rel, s.mem.guessForRelation(rel, question, "thist"))
			break
		}
		cur := intent.Subject
		for hop, rel := range intent.Chain {
			info, _ := world.RelByKey(rel)
			val := recallOne(cur, rel, "hop"+strconv.Itoa(hop))
			add(cur, rel, val)
			if hop == 0 {
				enrich(cur)
			}
			if info.ObjectLiteral {
				break
			}
			cur = val
		}
	case qa.KindCount:
		// Cardinality questions plan like comparisons: write down every
		// believed value so downstream counting happens over triples.
		for _, v := range recallAll(intent.Subject, intent.Chain[0], "count") {
			add(intent.Subject, intent.Chain[0], v)
		}
	case qa.KindCompareCount:
		for si, subject := range []string{intent.Subject, intent.Subject2} {
			for i, v := range recallAll(subject, intent.Chain[0], "cmp"+strconv.Itoa(si)) {
				_ = i
				add(subject, intent.Chain[0], v)
			}
		}
	case qa.KindCompareValue:
		add(intent.Subject, intent.Chain[0], recallOne(intent.Subject, intent.Chain[0], "a"))
		add(intent.Subject2, intent.Chain[0], recallOne(intent.Subject2, intent.Chain[0], "b"))
	case qa.KindSuperlative:
		// The model lists the candidates it associates with the filter and
		// their values — exactly the Great Lakes example of Fig. 3.
		count := 0
		if filterEnt, ok := s.mem.resolveSubject(intent.Subject); ok {
			for _, f := range s.w.FactsByRel(intent.FilterRel) {
				if !f.ObjectIsEntity() || f.Object != filterEnt.ID {
					continue
				}
				if _, known := s.mem.recallFactBoosted(f, req.Temperature, req.Nonce); !known {
					continue
				}
				name := s.w.Entities[f.Subject].Name
				add(name, intent.FilterRel, intent.Subject)
				add(name, intent.ValueRel, recallOne(name, intent.ValueRel, "sup"))
				count++
			}
		}
		if count == 0 {
			info, _ := world.RelByKey(intent.FilterRel)
			guess := s.mem.guessEntity(info.SubjectKind, question, "supguess")
			add(guess, intent.FilterRel, intent.Subject)
			add(guess, intent.ValueRel, s.mem.guessForRelation(intent.ValueRel, question, "supval"))
		}
	case qa.KindOpenProfile, qa.KindOpenList, qa.KindOpenField:
		// Open questions: write down whichever support facts the model
		// believes, subject to the grade's selectivity. A cautious model
		// (GPT-4 grade, low OpenPlanSelectivity) volunteers only what it is
		// most sure of, so the pseudo-graph alone is *narrower* than a
		// free-text answer — the Gp regression of Table V.
		for _, f := range s.res.SupportFacts(intent) {
			b, known := s.mem.recallFactBoosted(f, req.Temperature, req.Nonce)
			if !known {
				continue
			}
			if !coin(s.params.OpenPlanSelectivity, s.seed, "planselect", question, strconv.Itoa(f.ID)) {
				continue
			}
			add(s.w.Entities[f.Subject].Name, f.Rel, b.Object)
		}
		if len(plan) == 0 {
			add(intent.Subject, world.RelFieldOfWork,
				s.mem.guessEntity(world.KindField, question, "openguess"))
		}
	}
	return plan
}

// completePseudoGraph renders the plan as a Fig. 3-style completion: a
// short planning paragraph, then a Cypher CREATE program. Structural
// corruption is injected at the grade's Cypher error rate.
func (s *SimLM) completePseudoGraph(req Request) (string, error) {
	question, err := prompts.ExtractTaskQuestion(req.Prompt)
	if err != nil {
		return "", err
	}
	intent, perr := qa.Parse(question)
	var plan []plannedTriple
	if perr == nil {
		plan = s.planPseudoGraph(question, intent, req)
	} else {
		plan = []plannedTriple{{
			Subject: "Unknown Topic", Rel: world.RelFieldOfWork,
			Object: s.mem.guessEntity(world.KindField, question, "np"),
		}}
	}
	code := s.renderCypher(question, plan)
	if coin(s.params.CypherErrRate, s.seed, "cyerr", question, strconv.Itoa(req.Nonce)) {
		code = corruptCypher(code, hash64(s.seed, "cymode", question))
	}
	var b strings.Builder
	b.WriteString("<step 1> {Knowledge Planning}:\n")
	b.WriteString("To answer this question I need the entities involved and their key facts.\n")
	b.WriteString("<step 2> {Knowledge Graph}:\n```\n")
	b.WriteString(code)
	b.WriteString("\n```\n")
	return b.String(), nil
}

// entitySurface returns the spelling the model writes for an entity name
// in generated artefacts. Tail entities get mangled at the grade's
// subject-drift rate scaled by (1 - popularity): the model has seen famous
// names often enough to spell them, obscure ones it reconstructs badly.
// A mangled subject defeats both semantic retrieval and verification
// subject matching — the pipeline's honest tail-entity failure mode.
func (s *SimLM) entitySurface(name, question string) string {
	ent, ok := s.mem.resolveSubject(name)
	if !ok {
		return name
	}
	pop := s.w.Popularity(ent.ID)
	prob := s.params.SubjectDriftRate * (1 - pop)
	if !coin(prob, s.seed, "subjdrift", question, name) {
		return name
	}
	return misspell(name, hash64(s.seed, "misspell", question, name))
}

// misspell mangles a half-remembered name: every substantial token loses
// syllables from its middle, so the result shares little lexical material
// with the true surface and semantic retrieval cannot anchor on it.
func misspell(name string, h uint64) string {
	tokens := strings.Fields(name)
	if len(tokens) == 0 {
		return name
	}
	for i, t := range tokens {
		th := h + uint64(i)*0x9e3779b97f4a7c15
		if len(t) < 5 {
			if len(t) >= 3 {
				tokens[i] = t + "el"
			}
			continue
		}
		cut := 2 + int(th%uint64(len(t)-4))
		keep := len(t) - cut - 2
		if keep < 2 {
			keep = 2
		}
		tokens[i] = t[:keep] + t[len(t)-2:]
	}
	return strings.Join(tokens, " ")
}

// renderCypher emits CREATE statements for the plan: one node per distinct
// entity (with literal facts as properties) and one relationship per
// entity-valued fact. Relation surfaces go through relSurface, so drift
// shows up here.
func (s *SimLM) renderCypher(question string, plan []plannedTriple) string {
	var b strings.Builder
	nodeVar := map[string]string{}
	varSeq := 0
	ensureNode := func(name string, label string) string {
		if v, ok := nodeVar[name]; ok {
			return v
		}
		v := fmt.Sprintf("n%d", varSeq)
		varSeq++
		nodeVar[name] = v
		fmt.Fprintf(&b, "CREATE (%s:%s {name: %s})\n", v, label, cypherString(name))
		return v
	}
	label := func(name string) string {
		if ent, ok := s.mem.resolveSubject(name); ok {
			return cypherLabel(ent.Kind.String())
		}
		return "Entity"
	}
	for _, t := range plan {
		sv := ensureNode(s.entitySurface(t.Subject, question), label(t.Subject))
		surface := s.relSurface(t.Rel, question)
		if t.Literal {
			fmt.Fprintf(&b, "CREATE (%s)-[:%s]->(v%d:Value {name: %s})\n",
				sv, cypherRelType(surface), varSeq, cypherString(t.Object))
			varSeq++
			continue
		}
		ov := ensureNode(s.entitySurface(t.Object, question), label(t.Object))
		fmt.Fprintf(&b, "CREATE (%s)-[:%s]->(%s)\n", sv, cypherRelType(surface), ov)
	}
	return strings.TrimRight(b.String(), "\n")
}

// cypherString quotes a string literal for Cypher.
func cypherString(s string) string {
	return "'" + strings.ReplaceAll(s, "'", `\'`) + "'"
}

// cypherLabel converts a kind name to a Cypher label ("mountain range" ->
// "MountainRange").
func cypherLabel(kind string) string {
	parts := strings.Fields(kind)
	for i, p := range parts {
		parts[i] = strings.ToUpper(p[:1]) + p[1:]
	}
	return strings.Join(parts, "")
}

// cypherRelType converts a relation surface to a Cypher relationship type
// ("place of birth" -> "PLACE_OF_BIRTH").
func cypherRelType(surface string) string {
	return strings.ToUpper(strings.ReplaceAll(strings.TrimSpace(surface), " ", "_"))
}

// corruptCypher injects one of several structural faults — the 2 % failure
// mode of the Cypher route.
func corruptCypher(code string, h uint64) string {
	switch h % 4 {
	case 0:
		// Drop the last closing parenthesis.
		if i := strings.LastIndexByte(code, ')'); i >= 0 {
			return code[:i] + code[i+1:]
		}
	case 1:
		// Break an arrow.
		if i := strings.Index(code, "]->"); i >= 0 {
			return code[:i] + "]>" + code[i+3:]
		}
	case 2:
		// Unterminated string.
		if i := strings.LastIndexByte(code, '\''); i >= 0 {
			return code[:i] + code[i+1:]
		}
	default:
		// Truncate mid-statement.
		if len(code) > 20 {
			return code[:len(code)-10]
		}
	}
	return code + "\nCREATE (broken"
}

// completeDirectTriples renders the plan as bare <s> <r> <o> lines — the
// direct-generation ablation whose structural validity is only ~75 %.
// Corruption modes mirror the paper's example of a malformed direct
// generation ("<Allen Newell> <made Sora>", a two-field line).
func (s *SimLM) completeDirectTriples(req Request) (string, error) {
	question, err := prompts.ExtractTaskQuestion(req.Prompt)
	if err != nil {
		return "", err
	}
	intent, perr := qa.Parse(question)
	var plan []plannedTriple
	if perr == nil {
		plan = s.planPseudoGraph(question, intent, req)
	}
	if len(plan) == 0 {
		plan = []plannedTriple{{
			Subject: "Unknown Topic", Rel: world.RelFieldOfWork,
			Object: s.mem.guessEntity(world.KindField, question, "npd"),
		}}
	}
	// Structural corruption strikes per completion (one malformed line
	// spoils the output), matching how the paper scores validity.
	corruptAt := -1
	if coin(s.params.DirectErrRate, s.seed, "direrr", question, strconv.Itoa(req.Nonce)) {
		corruptAt = int(hash64(s.seed, "dirline", question) % uint64(len(plan)))
	}
	var lines []string
	for i, t := range plan {
		surface := s.relSurface(t.Rel, question)
		subj := s.entitySurface(t.Subject, question)
		obj := t.Object
		if !t.Literal {
			obj = s.entitySurface(t.Object, question)
		}
		line := fmt.Sprintf("<%s> <%s> <%s>", subj, surface, obj)
		if i == corruptAt {
			line = corruptTripleLine(t, surface, hash64(s.seed, "dirmode", question))
		}
		lines = append(lines, line)
	}
	return strings.Join(lines, "\n"), nil
}

// corruptTripleLine produces a structurally invalid triple line.
func corruptTripleLine(t plannedTriple, surface string, h uint64) string {
	switch h % 4 {
	case 0:
		// Two fields: relation and object merged (the paper's example).
		return fmt.Sprintf("<%s> <%s %s>", t.Subject, surface, t.Object)
	case 1:
		// Missing closing bracket.
		return fmt.Sprintf("<%s> <%s> <%s", t.Subject, surface, t.Object)
	case 2:
		// Free-text drift instead of a triple.
		return fmt.Sprintf("%s has %s of %s", t.Subject, surface, t.Object)
	default:
		// Four fields.
		return fmt.Sprintf("<%s> <%s> <%s> <extra>", t.Subject, surface, t.Object)
	}
}
