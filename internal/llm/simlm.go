package llm

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"

	"repro/internal/prompts"
	"repro/internal/qa"
	"repro/internal/world"
)

// SimLM is the deterministic simulated LLM. See the package comment for
// the design; llm.go for the grade parameters. It is safe for concurrent
// use.
type SimLM struct {
	w      *world.World
	params GradeParams
	mem    *memory
	res    *qa.Resolver
	seed   string

	calls            atomic.Int64
	promptTokens     atomic.Int64
	completionTokens atomic.Int64
}

// NewSim builds a simulated model of the given grade over a world. The
// seed isolates this model instance's memory from others with the same
// grade.
func NewSim(w *world.World, params GradeParams, seed int64) *SimLM {
	s := params.Name + "/" + strconv.FormatInt(seed, 10)
	return &SimLM{
		w:      w,
		params: params,
		mem:    &memory{w: w, p: params, seed: s},
		res:    &qa.Resolver{W: w},
		seed:   s,
	}
}

// Name implements Client.
func (s *SimLM) Name() string { return s.params.Name }

// Params returns the grade parameters (read-only use).
func (s *SimLM) Params() GradeParams { return s.params }

// CallStats reports cumulative usage across all completions.
func (s *SimLM) CallStats() (calls, promptTokens, completionTokens int64) {
	return s.calls.Load(), s.promptTokens.Load(), s.completionTokens.Load()
}

// Complete implements Client: classify the prompt by its markers (exactly
// as the texts from internal/prompts are shaped) and produce the grade- and
// memory-dependent behaviour for that task. A cancelled context returns
// its error before any work, standing in for an aborted network call.
func (s *SimLM) Complete(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	if req.Prompt == "" {
		return Response{}, fmt.Errorf("llm: empty prompt")
	}
	var text string
	var err error
	switch kind := prompts.Classify(req.Prompt); kind {
	case prompts.TaskPseudoGraph:
		text, err = s.completePseudoGraph(req)
	case prompts.TaskDirectTriples:
		text, err = s.completeDirectTriples(req)
	case prompts.TaskVerify:
		text, err = s.completeVerify(req)
	case prompts.TaskGraphQA:
		text, err = s.completeGraphQA(req)
	case prompts.TaskScoreRels:
		text, err = s.completeScoreRels(req)
	case prompts.TaskCoT:
		text, err = s.completeParametric(req, true)
	default:
		text, err = s.completeParametric(req, false)
	}
	if err != nil {
		return Response{}, err
	}
	resp := Response{
		Text: text,
		Usage: Usage{
			PromptTokens:     estimateTokens(req.Prompt),
			CompletionTokens: estimateTokens(text),
		},
	}
	s.calls.Add(1)
	s.promptTokens.Add(int64(resp.Usage.PromptTokens))
	s.completionTokens.Add(int64(resp.Usage.CompletionTokens))
	return resp, nil
}
