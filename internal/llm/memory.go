package llm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/world"
)

// hash64 combines string parts into a deterministic 64-bit value (FNV-1a
// over the parts with separators). All of SimLM's stochastic-looking
// behaviour derives from this, so runs are reproducible bit-for-bit.
func hash64(parts ...string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
		h ^= 0x1f
		h *= prime
	}
	for _, p := range parts {
		mix(p)
	}
	// FNV's high bits are weakly mixed for short inputs; finalise with a
	// splitmix64-style avalanche so unit() bits are uniform (coin(p) must
	// actually fire with probability p).
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// coin reports whether the deterministic coin with probability p lands
// heads for the given key parts.
func coin(p float64, parts ...string) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return unit(hash64(parts...)) < p
}

// memory is SimLM's parametric knowledge: a gated, corrupted view of the
// world. It never exposes ground truth directly — every read passes the
// knows/corrupt gates.
type memory struct {
	w    *world.World
	p    GradeParams
	seed string
}

// knowProb is the probability of knowing a fact with the given subject
// popularity.
func (m *memory) knowProb(pop float64) float64 {
	e := m.p.PopExponent
	if e <= 0 {
		e = 1
	}
	powed := 1.0
	for i := 0; i < int(e); i++ {
		powed *= pop
	}
	// Fractional remainder of the exponent via linear blend — cheap and
	// monotone, which is all the simulation needs.
	if frac := e - float64(int(e)); frac > 0 {
		powed = powed*(1-frac) + powed*pop*frac
	}
	pr := m.p.KnowBase + m.p.KnowPopWeight*powed
	if pr > 1 {
		pr = 1
	}
	return pr
}

// knows reports whether the model knows the fact at all.
func (m *memory) knows(f world.Fact) bool {
	pop := m.w.FactPopularity(f)
	return coin(m.knowProb(pop), m.seed, "know", strconv.Itoa(f.ID))
}

// corrupted reports whether a known fact is remembered wrongly.
func (m *memory) corrupted(f world.Fact) bool {
	return coin(m.p.CorruptRate, m.seed, "corrupt", strconv.Itoa(f.ID))
}

// belief is the model's recollection of one fact.
type belief struct {
	// Fact is the underlying world fact.
	Fact world.Fact
	// Object is the believed object surface (truth or distortion).
	Object string
	// Correct reports whether the belief matches ground truth.
	Correct bool
}

// recallFact returns the model's belief about a fact, or ok=false when the
// fact is unknown to it. sampleSalt adds temperature-sample variation: at
// temperature > 0, a known fact can flip to a distorted recollection for
// that sample only.
func (m *memory) recallFact(f world.Fact, temperature float64, nonce int) (belief, bool) {
	if !m.knows(f) {
		return belief{}, false
	}
	truth := m.w.ObjectSurface(f)
	if m.corrupted(f) {
		return belief{Fact: f, Object: m.distort(f, "stable"), Correct: false}, true
	}
	if temperature > 0 {
		flip := m.p.TempNoise * temperature
		if coin(flip, m.seed, "temp", strconv.Itoa(f.ID), strconv.Itoa(nonce)) {
			return belief{Fact: f, Object: m.distort(f, "t"+strconv.Itoa(nonce)), Correct: false}, true
		}
	}
	return belief{Fact: f, Object: truth, Correct: true}, true
}

// recallFactBoosted is recallFact with a second chance: structured
// planning (pseudo-graph generation) activates marginal memories that
// plain QA recall misses, at the grade's PlanActivation rate. Activated
// recollections still pass the corruption gate.
func (m *memory) recallFactBoosted(f world.Fact, temperature float64, nonce int) (belief, bool) {
	if b, ok := m.recallFact(f, temperature, nonce); ok {
		return b, true
	}
	if !coin(m.p.PlanActivation, m.seed, "activate", strconv.Itoa(f.ID)) {
		return belief{}, false
	}
	truth := m.w.ObjectSurface(f)
	if m.corrupted(f) {
		return belief{Fact: f, Object: m.distort(f, "stable"), Correct: false}, true
	}
	return belief{Fact: f, Object: truth, Correct: true}, true
}

// recallSRBoosted is recallSR through the activation path.
func (m *memory) recallSRBoosted(subjectID int, rel world.RelKey, temperature float64, nonce int) []belief {
	facts := m.w.FactsSR(subjectID, rel)
	if len(facts) == 0 {
		return nil
	}
	info, _ := world.RelByKey(rel)
	if info.TimeVarying {
		facts = facts[len(facts)-1:]
	}
	var out []belief
	for _, f := range facts {
		if b, ok := m.recallFactBoosted(f, temperature, nonce); ok {
			out = append(out, b)
		}
	}
	return out
}

// recallSRHistory returns beliefs about every revision of (subject,
// relation) in chronological order, without the time-varying collapse
// recallSR applies. Temporal questions need the full revision history; each
// revision passes the usual know/corrupt gates independently (models
// remember updates they saw and miss ones they did not).
func (m *memory) recallSRHistory(subjectID int, rel world.RelKey, temperature float64, nonce int) []belief {
	facts := m.w.FactsSR(subjectID, rel)
	var out []belief
	for _, f := range facts {
		if b, ok := m.recallFact(f, temperature, nonce); ok {
			out = append(out, b)
		}
	}
	return out
}

// recallSR returns the model's beliefs about (subject entity, relation).
// Time-varying relations collapse to the current revision. Multi-valued
// relations return every known value.
func (m *memory) recallSR(subjectID int, rel world.RelKey, temperature float64, nonce int) []belief {
	facts := m.w.FactsSR(subjectID, rel)
	if len(facts) == 0 {
		return nil
	}
	info, _ := world.RelByKey(rel)
	if info.TimeVarying {
		facts = facts[len(facts)-1:]
	}
	var out []belief
	for _, f := range facts {
		if b, ok := m.recallFact(f, temperature, nonce); ok {
			out = append(out, b)
		}
	}
	return out
}

// resolveSubject finds the world entity for a surface name, tolerating
// case differences (Freebase-style lower-cased questions).
func (m *memory) resolveSubject(name string) (world.Entity, bool) {
	if e, ok := m.w.EntityByName(name); ok {
		return e, true
	}
	// Case-folded scan; worlds are small enough for this rare path.
	folded := strings.ToLower(name)
	for _, e := range m.w.Entities {
		if strings.ToLower(e.Name) == folded {
			return e, true
		}
	}
	return world.Entity{}, false
}

// distort returns a wrong-but-plausible object for a fact: another entity
// of the same kind for entity-valued facts, a perturbed literal otherwise.
// salt varies the distortion between stable corruption and per-sample noise.
func (m *memory) distort(f world.Fact, salt string) string {
	h := hash64(m.seed, "distort", strconv.Itoa(f.ID), salt)
	if f.ObjectIsEntity() {
		kind := m.w.Entities[f.Object].Kind
		pool := m.w.OfKind(kind)
		if len(pool) < 2 {
			return m.w.Entities[f.Object].Name
		}
		pick := pool[int(h%uint64(len(pool)))]
		if pick == f.Object {
			pick = pool[int((h+1)%uint64(len(pool)))]
		}
		return m.w.Entities[pick].Name
	}
	return distortLiteral(f.Literal, h)
}

// distortLiteral perturbs a literal: numbers shift by up to ~20 %, dates
// shift the year, everything else gets a distinguishing suffix.
func distortLiteral(lit string, h uint64) string {
	if len(lit) == 10 && lit[4] == '-' && lit[7] == '-' {
		// Date: shift the year by 1..9.
		year, err := strconv.Atoi(lit[:4])
		if err == nil {
			delta := int(h%9) + 1
			if h%2 == 0 {
				delta = -delta
			}
			return fmt.Sprintf("%04d%s", year+delta, lit[4:])
		}
	}
	if v, err := strconv.ParseInt(lit, 10, 64); err == nil && v != 0 {
		span := v / 5
		if span < 7 {
			span = 7
		}
		delta := int64(h%uint64(span)) + 1
		if h%2 == 0 {
			delta = -delta
		}
		return strconv.FormatInt(v+delta, 10)
	}
	return lit + " or so"
}

// guessEntity fabricates an answer entity of the expected kind when the
// model knows nothing: a deterministic pick that is almost surely wrong.
func (m *memory) guessEntity(kind world.Kind, saltParts ...string) string {
	pool := m.w.OfKind(kind)
	if len(pool) == 0 {
		return "something"
	}
	h := hash64(append([]string{m.seed, "guess"}, saltParts...)...)
	return m.w.Entities[pool[int(h%uint64(len(pool)))]].Name
}

// guessLiteral fabricates a literal of plausible shape for a relation.
func (m *memory) guessLiteral(rel world.RelKey, saltParts ...string) string {
	h := hash64(append([]string{m.seed, "guesslit", string(rel)}, saltParts...)...)
	switch rel {
	case world.RelBirthDate:
		return fmt.Sprintf("%04d-%02d-%02d", 1850+int(h%150), 1+int(h>>8%12), 1+int(h>>16%28))
	case world.RelPopulation:
		return strconv.FormatInt(100_000+int64(h%20_000_000), 10)
	case world.RelArea:
		return strconv.FormatInt(500+int64(h%90_000), 10)
	case world.RelElevation:
		return strconv.FormatInt(1800+int64(h%7000), 10)
	case world.RelLength:
		return strconv.FormatInt(80+int64(h%6000), 10)
	case world.RelInception, world.RelPubYear:
		return strconv.FormatInt(1200+int64(h%800), 10)
	default:
		return strconv.FormatInt(int64(h%1_000_000), 10)
	}
}

// guessForRelation fabricates an object appropriate to a relation's range.
func (m *memory) guessForRelation(rel world.RelKey, saltParts ...string) string {
	info, ok := world.RelByKey(rel)
	if !ok {
		return "something"
	}
	if info.ObjectLiteral {
		return m.guessLiteral(rel, saltParts...)
	}
	return m.guessEntity(info.ObjectKind, append(saltParts, string(rel))...)
}
