// Package llm provides the LLM client interface used by the pipeline and
// baselines, and SimLM — the deterministic simulated model that stands in
// for GPT-3.5/GPT-4 (DESIGN.md §2).
//
// SimLM's design principle: perfect language understanding, imperfect
// memory. It parses prompts exactly (questions come from the invertible
// grammar in internal/qa) but answers from a parametric memory that is a
// partial, corrupted snapshot of the ground-truth world. Whether a fact is
// known, and whether it is corrupted, are deterministic functions of
// (model seed, fact ID) with probabilities that grow with entity
// popularity — mirroring how real LLMs know head entities well and tail
// entities poorly. Every failure mode the paper discusses is reproduced
// mechanically:
//
//   - hallucination            = corrupted fact (wrong object, right shape)
//   - knowledge gap            = unknown fact (deterministic wrong guess)
//   - structural invalidity    = Cypher/triple syntax corruption (Fig. 2)
//   - relation drift           = pseudo-triples phrased off-schema
//   - verification append bug  = gold graph appended instead of merged
//     (the paper's "main error" in §IV-E)
//   - context dominance        = with a non-empty but insufficient graph
//     the model answers from the graph anyway (why RAG underperforms IO
//     on multi-hop QALD in Table II)
//
// # Serving primitives and invariants
//
// Beyond SimLM, the package provides the serving-side LLM plumbing:
// Scheduler (process-wide bounded concurrency with
// interactive-preempts-batch priority lanes), Budgeted (per-request
// token budgets enforced independently of admission — they hold even
// with an unbounded scheduler), and Counting (the usage hook the exec
// engine diffs for per-stage attribution). Invariants:
//
//   - Every Complete honours its context: cancellation and deadlines
//     abort waiting in the scheduler queue, not just the call itself.
//   - Priority is admission order only — once admitted, a batch call is
//     never preempted mid-flight; saturation is where lanes matter.
//   - A budget refusal is a typed error (answer.ClassBudget downstream)
//     attributable to the requesting method and stage, never a silent
//     truncation.
package llm

import (
	"context"
	"strings"
)

// Request is one completion call.
type Request struct {
	Prompt string
	// Temperature controls sampling noise; 0 is greedy/deterministic.
	Temperature float64
	// Nonce distinguishes repeated samples of the same prompt (used by
	// Self-Consistency); same (Prompt, Temperature, Nonce) always yields
	// the same completion.
	Nonce int
}

// Usage is the token accounting of one call (estimated).
type Usage struct {
	PromptTokens     int
	CompletionTokens int
}

// Response is one completion result.
type Response struct {
	Text  string
	Usage Usage
}

// Client is the minimal LLM interface the pipeline depends on.
// Implementations must honour the context: a cancelled or expired context
// makes Complete return the context's error promptly (real backends abort
// the network call; the simulated model checks before answering).
type Client interface {
	// Name identifies the model (e.g. "sim-gpt-3.5").
	Name() string
	// Complete returns the model's completion for the request.
	Complete(ctx context.Context, req Request) (Response, error)
}

// estimateTokens approximates a token count as 4/3 of the word count, the
// usual English heuristic.
func estimateTokens(s string) int {
	return len(strings.Fields(s)) * 4 / 3
}

// GradeParams parameterises a simulated model grade. All probabilities are
// in [0, 1].
type GradeParams struct {
	// Name is the reported model name.
	Name string

	// KnowBase + KnowPopWeight*popularity^PopExponent is the probability
	// the model knows a fact whose subject has the given popularity.
	KnowBase      float64
	KnowPopWeight float64
	PopExponent   float64
	// CorruptRate is the probability a known fact is remembered wrongly
	// (hallucination).
	CorruptRate float64
	// TempNoise scales per-sample corruption at temperature > 0.
	TempNoise float64
	// IOPenalty is the extra per-hop failure probability when answering
	// directly (IO) rather than with decomposed reasoning (CoT).
	IOPenalty float64
	// CypherErrRate / DirectErrRate are the structural-invalidity rates of
	// Cypher-mediated vs direct triple generation (the Fig. 2 quantities:
	// ~2 % and ~25 %).
	CypherErrRate float64
	DirectErrRate float64
	// RelationDriftRate is the probability a pseudo-triple's relation is
	// phrased off-vocabulary, weakening downstream semantic matching.
	RelationDriftRate float64
	// VerifyAppendRate is the probability the verification step degenerates
	// to appending the gold graph after the pseudo-graph without fixing it
	// (the paper's observed main verification error).
	VerifyAppendRate float64
	// StrictGraphAdherence makes the model compose open-ended answers
	// strictly from a provided graph (GPT-4-like instruction following);
	// non-strict models blend in parametric knowledge.
	StrictGraphAdherence bool
	// FillerSentences is how much generic prose pads parametric open
	// answers (lowers ROUGE precision, as verbose real answers do).
	FillerSentences int
	// TangentFacts is how many off-topic parametric facts wander into open
	// answers.
	TangentFacts int
	// OpenRecallFrac scales how much of its known material the model
	// volunteers in open answers without a graph to lean on.
	OpenRecallFrac float64
	// RelScoreNoise is the amplitude of the noise the model adds when asked
	// to score candidate relations against a question (ToG's pruning step);
	// larger values mean worse exploration.
	RelScoreNoise float64
	// SubjectDriftRate scales the probability that the model mangles a
	// tail entity's spelling when writing it into a pseudo-graph (the
	// effective probability is SubjectDriftRate * (1 - popularity)).
	// Mangled subjects defeat semantic retrieval — the tail-entity
	// weakness that makes QID-anchored ToG stronger than PG&AKV on
	// SimpleQuestions in the paper's Table II.
	SubjectDriftRate float64
	// PlanActivation is the probability that structured knowledge planning
	// recovers a fact plain QA recall would miss — the paper's §IV-E
	// finding that "generating pseudo-graphs ... better activates the
	// model's factual knowledge" (w/ Gp beats CoT on QALD-10).
	PlanActivation float64
	// OpenPlanSelectivity is the fraction of its believed facts the model
	// volunteers when planning an *open* question's pseudo-graph. Cautious
	// models (GPT-4 grade) write down only what they are most certain of,
	// which makes the raw Gp narrower than a free-text answer — the small
	// ROUGE regression in the paper's Table V.
	OpenPlanSelectivity float64
	// PremiseCheckRate is the probability that the model notices a
	// false-premise question (asking about a relation the subject cannot
	// have) and declines to answer instead of hallucinating. Higher grades
	// are better calibrated.
	PremiseCheckRate float64
}

// GPT35Params returns the GPT-3.5-grade preset: shallow tail knowledge,
// noticeable hallucination, loose instruction following.
func GPT35Params() GradeParams {
	return GradeParams{
		Name:                "sim-gpt-3.5",
		KnowBase:            0.03,
		KnowPopWeight:       0.90,
		PopExponent:         4.2,
		CorruptRate:         0.16,
		TempNoise:           0.18,
		IOPenalty:           0.10,
		CypherErrRate:       0.02,
		DirectErrRate:       0.25,
		RelationDriftRate:   0.22,
		VerifyAppendRate:    0.12,
		FillerSentences:     8,
		TangentFacts:        3,
		OpenRecallFrac:      0.80,
		RelScoreNoise:       0.65,
		SubjectDriftRate:    0.90,
		PlanActivation:      0.28,
		OpenPlanSelectivity: 0.95,
		PremiseCheckRate:    0.55,
	}
}

// GPT4Params returns the GPT-4-grade preset: broader knowledge, less
// hallucination, strict instruction following.
func GPT4Params() GradeParams {
	return GradeParams{
		Name:                 "sim-gpt-4",
		KnowBase:             0.05,
		KnowPopWeight:        0.92,
		PopExponent:          3.6,
		CorruptRate:          0.08,
		TempNoise:            0.08,
		IOPenalty:            0.07,
		CypherErrRate:        0.015,
		DirectErrRate:        0.20,
		RelationDriftRate:    0.08,
		VerifyAppendRate:     0.05,
		StrictGraphAdherence: true,
		FillerSentences:      8,
		TangentFacts:         2,
		OpenRecallFrac:       0.90,
		RelScoreNoise:        0.40,
		SubjectDriftRate:     0.45,
		PlanActivation:       0.30,
		OpenPlanSelectivity:  0.20,
		PremiseCheckRate:     0.85,
	}
}
