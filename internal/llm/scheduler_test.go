package llm

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// gateClient blocks every Complete until released, reporting starts on a
// channel so tests can observe admission order.
type gateClient struct {
	started chan string
	release chan struct{}
}

func (g *gateClient) Name() string { return "gate" }

func (g *gateClient) Complete(ctx context.Context, req Request) (Response, error) {
	g.started <- req.Prompt
	<-g.release
	return Response{Text: "ok", Usage: Usage{PromptTokens: estimateTokens(req.Prompt), CompletionTokens: 1}}, nil
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSchedulerInteractivePreemptsBatch is the admission-control proof:
// with the concurrency limit saturated and a batch request queued FIRST,
// a later interactive request is still admitted ahead of it.
func TestSchedulerInteractivePreemptsBatch(t *testing.T) {
	inner := &gateClient{started: make(chan string), release: make(chan struct{})}
	sched := NewScheduler(SchedulerConfig{Concurrency: 1})
	client := sched.Wrap(inner)

	done := make(chan string, 3)
	call := func(ctx context.Context, label string) {
		if _, err := client.Complete(ctx, Request{Prompt: label}); err != nil {
			t.Errorf("%s: %v", label, err)
		}
		done <- label
	}

	// Saturate the single slot.
	go call(context.Background(), "occupant")
	if got := <-inner.started; got != "occupant" {
		t.Fatalf("first admission = %q", got)
	}

	// Queue a batch request, then an interactive one behind it.
	go call(WithPriority(context.Background(), PriorityBatch), "batch")
	waitFor(t, "batch to queue", func() bool { return sched.Stats().QueuedBatch == 1 })
	go call(WithPriority(context.Background(), PriorityInteractive), "interactive")
	waitFor(t, "interactive to queue", func() bool { return sched.Stats().QueuedInteractive == 1 })

	// Free the slot: the interactive request must be admitted first even
	// though the batch request has waited longer.
	inner.release <- struct{}{}
	if got := <-inner.started; got != "interactive" {
		t.Fatalf("post-release admission = %q, want interactive", got)
	}
	inner.release <- struct{}{}
	if got := <-inner.started; got != "batch" {
		t.Fatalf("final admission = %q, want batch", got)
	}
	inner.release <- struct{}{}
	for i := 0; i < 3; i++ {
		<-done
	}

	st := sched.Stats()
	if st.AdmittedInteractive != 1 || st.AdmittedBatch != 2 {
		t.Errorf("admissions = %d interactive / %d batch, want 1/2", st.AdmittedInteractive, st.AdmittedBatch)
	}
	if st.Waited != 2 {
		t.Errorf("waited = %d, want 2", st.Waited)
	}
	if st.InFlight != 0 || st.QueuedInteractive != 0 || st.QueuedBatch != 0 {
		t.Errorf("scheduler not drained: %+v", st)
	}
}

// TestSchedulerCancelWhileQueued verifies a cancelled waiter leaves the
// queue without leaking the slot.
func TestSchedulerCancelWhileQueued(t *testing.T) {
	inner := &gateClient{started: make(chan string), release: make(chan struct{})}
	sched := NewScheduler(SchedulerConfig{Concurrency: 1})
	client := sched.Wrap(inner)

	go client.Complete(context.Background(), Request{Prompt: "occupant"}) //nolint:errcheck
	<-inner.started

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := client.Complete(ctx, Request{Prompt: "canceled"})
		errCh <- err
	}()
	waitFor(t, "waiter to queue", func() bool { return sched.Stats().QueuedBatch == 1 })
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued call err = %v, want context.Canceled", err)
	}
	waitFor(t, "queue to drain", func() bool { return sched.Stats().QueuedBatch == 0 })

	// The slot must still cycle: release the occupant and admit a fresh call.
	inner.release <- struct{}{}
	go client.Complete(context.Background(), Request{Prompt: "fresh"}) //nolint:errcheck
	if got := <-inner.started; got != "fresh" {
		t.Fatalf("post-cancel admission = %q", got)
	}
	inner.release <- struct{}{}
	waitFor(t, "in-flight to drain", func() bool { return sched.Stats().InFlight == 0 })
}

// TestBudgetedTokenBudget verifies the per-request budget: calls run
// until the allowance is spent, then fail with ErrBudgetExhausted.
// Enforcement is scheduler-independent — Budgeted wraps the client
// directly here, exactly as the answer registry does.
func TestBudgetedTokenBudget(t *testing.T) {
	client := Budgeted(echoClient{})

	prompt := strings.Repeat("word ", 30) // ~40 estimated tokens
	budget := NewBudget(50)
	ctx := WithBudget(context.Background(), budget)
	if _, err := client.Complete(ctx, Request{Prompt: prompt}); err != nil {
		t.Fatalf("first call within budget: %v", err)
	}
	_, err := client.Complete(ctx, Request{Prompt: prompt})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("second call err = %v, want ErrBudgetExhausted", err)
	}
	var classed interface{ ErrClass() string }
	if !errors.As(err, &classed) || classed.ErrClass() != "budget" {
		t.Errorf("budget refusal must carry span class budget, got %v", err)
	}
	if budget.Rejected() != 1 {
		t.Errorf("budget.Rejected() = %d, want 1", budget.Rejected())
	}

	// A fresh context without a budget is unaffected.
	if _, err := client.Complete(context.Background(), Request{Prompt: prompt}); err != nil {
		t.Fatalf("unbudgeted call: %v", err)
	}
}

// echoClient is a minimal inner client for budget tests.
type echoClient struct{}

func (echoClient) Name() string { return "echo" }
func (echoClient) Complete(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	return Response{Text: "ok", Usage: Usage{PromptTokens: estimateTokens(req.Prompt), CompletionTokens: 2}}, nil
}

// TestCountingUsage verifies the exec Usage hook counter.
func TestCountingUsage(t *testing.T) {
	c := NewCounting(echoClient{})
	for i := 0; i < 3; i++ {
		if _, err := c.Complete(context.Background(), Request{Prompt: "a b c d"}); err != nil {
			t.Fatal(err)
		}
	}
	calls, pt, ct := c.Usage()
	if calls != 3 || pt != 3*estimateTokens("a b c d") || ct != 6 {
		t.Errorf("Usage() = %d/%d/%d", calls, pt, ct)
	}
}
