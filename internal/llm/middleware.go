package llm

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/prompts"
)

// Exchange is one recorded prompt/completion pair.
type Exchange struct {
	Task     prompts.TaskKind
	Request  Request
	Response Response
	Err      error
}

// Recorder wraps a Client and keeps a transcript of every call — the
// debugging companion for pipeline runs (cmd/failures uses it to show what
// the model actually saw and said).
type Recorder struct {
	Inner Client

	mu        sync.Mutex
	exchanges []Exchange
}

// NewRecorder wraps a client.
func NewRecorder(inner Client) *Recorder {
	return &Recorder{Inner: inner}
}

// Name implements Client.
func (r *Recorder) Name() string { return r.Inner.Name() }

// Complete implements Client, recording the exchange.
func (r *Recorder) Complete(ctx context.Context, req Request) (Response, error) {
	resp, err := r.Inner.Complete(ctx, req)
	r.mu.Lock()
	r.exchanges = append(r.exchanges, Exchange{
		Task:     prompts.Classify(req.Prompt),
		Request:  req,
		Response: resp,
		Err:      err,
	})
	r.mu.Unlock()
	return resp, err
}

// Exchanges returns a copy of the transcript so far.
func (r *Recorder) Exchanges() []Exchange {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Exchange, len(r.exchanges))
	copy(out, r.exchanges)
	return out
}

// Reset clears the transcript.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.exchanges = nil
	r.mu.Unlock()
}

// Scripted is a Client that replays canned completions per task kind —
// useful for tests and for replaying transcripts from real LLM endpoints
// through the pipeline. Unconfigured task kinds return an error.
type Scripted struct {
	// ByTask maps a task kind to the completion returned for it. A
	// function receives the raw prompt for content-dependent scripting.
	ByTask map[prompts.TaskKind]func(prompt string) (string, error)

	mu    sync.Mutex
	calls int
}

// NewScripted returns an empty scripted client; register handlers with On.
func NewScripted() *Scripted {
	return &Scripted{ByTask: map[prompts.TaskKind]func(string) (string, error){}}
}

// On registers a fixed completion for a task kind and returns the client
// for chaining.
func (s *Scripted) On(task prompts.TaskKind, completion string) *Scripted {
	s.ByTask[task] = func(string) (string, error) { return completion, nil }
	return s
}

// OnFunc registers a prompt-dependent handler.
func (s *Scripted) OnFunc(task prompts.TaskKind, fn func(prompt string) (string, error)) *Scripted {
	s.ByTask[task] = fn
	return s
}

// Name implements Client.
func (s *Scripted) Name() string { return "scripted" }

// Calls returns the number of completions served.
func (s *Scripted) Calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// Complete implements Client.
func (s *Scripted) Complete(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
	task := prompts.Classify(req.Prompt)
	fn, ok := s.ByTask[task]
	if !ok {
		return Response{}, fmt.Errorf("llm: scripted client has no handler for task %v", task)
	}
	text, err := fn(req.Prompt)
	if err != nil {
		return Response{}, err
	}
	return Response{
		Text: text,
		Usage: Usage{
			PromptTokens:     estimateTokens(req.Prompt),
			CompletionTokens: estimateTokens(text),
		},
	}, nil
}
