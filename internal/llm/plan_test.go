package llm

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cypher"
	"repro/internal/kg"
	"repro/internal/prompts"
	"repro/internal/world"
)

// decodePseudoGraph runs one generation and decodes it.
func decodePseudoGraph(t *testing.T, s *SimLM, question string) *kg.Graph {
	t.Helper()
	resp, err := s.Complete(context.Background(), Request{Prompt: prompts.PseudoGraph(question)})
	if err != nil {
		t.Fatal(err)
	}
	g, err := cypher.Decode(extractFenced(resp.Text))
	if err != nil {
		t.Skipf("structural corruption hit this question: %v", err)
	}
	return g
}

// fullKnowledge returns a model that knows everything truthfully and never
// mangles names — plan-structure tests isolate the shape from the noise.
func fullKnowledge(t *testing.T, w *world.World) *SimLM {
	t.Helper()
	p := GPT4Params()
	p.KnowBase = 1
	p.CorruptRate = 0
	p.CypherErrRate = 0
	p.RelationDriftRate = 0
	p.SubjectDriftRate = 0
	p.OpenPlanSelectivity = 1
	return NewSim(w, p, 42)
}

func TestPlanLookupChain(t *testing.T) {
	w := testWorld(t)
	s := fullKnowledge(t, w)
	p := w.Entities[w.OfKind(world.KindPerson)[0]]
	q := "What is the capital of the country where " + p.Name + " was born?"
	g := decodePseudoGraph(t, s, q)
	// The plan must contain the full chain: person->city, city->country,
	// country->capital (true values, since the model knows everything).
	city := w.Entities[w.FactsSR(p.ID, world.RelBornIn)[0].Object]
	country := w.Entities[w.FactsSR(city.ID, world.RelInCountry)[0].Object]
	capital := w.Entities[w.FactsSR(country.ID, world.RelCapital)[0].Object]
	if !g.Contains(kg.NewTriple(p.Name, "place of birth", city.Name)) {
		t.Errorf("plan lacks hop 1:\n%s", g)
	}
	if !g.Contains(kg.NewTriple(city.Name, "country", country.Name)) {
		t.Errorf("plan lacks hop 2:\n%s", g)
	}
	if !g.Contains(kg.NewTriple(country.Name, "capital", capital.Name)) {
		t.Errorf("plan lacks hop 3:\n%s", g)
	}
}

func TestPlanCompareCount(t *testing.T) {
	w := testWorld(t)
	s := fullKnowledge(t, w)
	ms := w.OfKind(world.KindMountain)
	a, b := w.Entities[ms[0]], w.Entities[ms[1]]
	q := fmt.Sprintf("Who covers more countries, %s or %s?", a.Name, b.Name)
	g := decodePseudoGraph(t, s, q)
	// Every covers fact of both subjects must appear (the Fig. 3 example-2
	// shape).
	for _, ent := range []world.Entity{a, b} {
		for _, f := range w.FactsSR(ent.ID, world.RelCovers) {
			want := kg.NewTriple(ent.Name, "covers country", w.Entities[f.Object].Name)
			if !g.Contains(want) {
				t.Errorf("plan lacks %v:\n%s", want, g)
			}
		}
	}
}

func TestPlanSuperlative(t *testing.T) {
	w := testWorld(t)
	s := fullKnowledge(t, w)
	for _, c := range w.OfKind(world.KindCountry) {
		var lakes []int
		for _, f := range w.FactsByRel(world.RelLocatedIn) {
			if f.ObjectIsEntity() && f.Object == c {
				lakes = append(lakes, f.Subject)
			}
		}
		if len(lakes) < 2 {
			continue
		}
		q := fmt.Sprintf("Which lake in %s has the largest area?", w.Entities[c].Name)
		g := decodePseudoGraph(t, s, q)
		// Every candidate lake must appear with its area (the Fig. 3
		// example-1 shape).
		for _, l := range lakes {
			area, _ := w.CurrentFact(l, world.RelArea)
			want := kg.NewTriple(w.Entities[l].Name, "area", area.Literal)
			if !g.Contains(want) {
				t.Errorf("plan lacks %v:\n%s", want, g)
			}
		}
		return
	}
	t.Skip("no country with 2+ lakes")
}

func TestPlanOpenFieldCoversNotablePeople(t *testing.T) {
	w := testWorld(t)
	s := fullKnowledge(t, w)
	field := w.Entities[w.OfKind(world.KindField)[0]]
	q := "Who are the most notable researchers in " + field.Name + "?"
	g := decodePseudoGraph(t, s, q)
	if g.Len() < 4 {
		t.Fatalf("open-field plan suspiciously small:\n%s", g)
	}
	// All subjects must be people (the support set is person-centric).
	for _, sub := range g.Subjects() {
		ent, ok := w.EntityByName(sub)
		if !ok || ent.Kind != world.KindPerson {
			t.Errorf("plan subject %q is not a person", sub)
		}
	}
}

func TestPlanSelectivityNarrowsOpenPlans(t *testing.T) {
	w := testWorld(t)
	generous := GPT4Params()
	generous.KnowBase = 1
	generous.CorruptRate = 0
	generous.CypherErrRate = 0
	generous.SubjectDriftRate = 0
	generous.OpenPlanSelectivity = 1
	selective := generous
	selective.OpenPlanSelectivity = 0.2

	field := w.Entities[w.OfKind(world.KindField)[1]]
	q := "Who are the most notable researchers in " + field.Name + "?"
	gGen := decodePseudoGraph(t, NewSim(w, generous, 42), q)
	gSel := decodePseudoGraph(t, NewSim(w, selective, 43), q)
	if gSel.Len() >= gGen.Len() {
		t.Errorf("selective plan (%d triples) should be narrower than generous (%d)",
			gSel.Len(), gGen.Len())
	}
}

func TestPlanUnparseableQuestionStillYieldsGraph(t *testing.T) {
	s := newSim(t, GPT35Params())
	resp, err := s.Complete(context.Background(), Request{Prompt: prompts.PseudoGraph("gibberish that matches nothing")})
	if err != nil {
		t.Fatal(err)
	}
	g, err := cypher.Decode(extractFenced(resp.Text))
	if err != nil {
		t.Skip("corruption hit")
	}
	if g.Len() == 0 {
		t.Error("unparseable question should still produce a placeholder plan")
	}
}
