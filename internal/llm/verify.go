package llm

import (
	"strconv"
	"strings"

	"repro/internal/kg"
	"repro/internal/prompts"
	"repro/internal/qa"
	"repro/internal/world"
)

// completeVerify handles the Fig. 4 task: edit the "graph to fix" (Gp)
// against the "gold graph" (Gg). The faithful behaviour per the prompt's
// instructions:
//
//   - a pseudo-triple whose subject+relation finds support in the gold
//     graph is replaced by the gold version (last value for time-varying);
//   - a pseudo-triple with no gold support is deleted;
//   - gold content that is missing from the pseudo-graph but needed for
//     the problem is added.
//
// The grade's VerifyAppendRate injects the paper's observed failure mode:
// the model appends the gold graph after the pseudo-graph wholesale
// instead of editing.
func (s *SimLM) completeVerify(req Request) (string, error) {
	parts, err := prompts.ExtractVerifyParts(req.Prompt)
	if err != nil {
		return "", err
	}
	gold, err := kg.ParseGraph(parts.GoldGraph)
	if err != nil {
		gold = &kg.Graph{}
	}
	toFix, err := kg.ParseGraph(parts.ToFix)
	if err != nil {
		toFix = &kg.Graph{}
	}

	// Failure mode: blind append, no editing.
	if coin(s.params.VerifyAppendRate, s.seed, "vappend", parts.Problem, strconv.Itoa(req.Nonce)) {
		out := toFix.Clone()
		out.Add(gold.Triples...)
		return out.String(), nil
	}

	intent, perr := qa.Parse(parts.Problem)
	open := perr == nil && intent.IsOpen()
	// Temporal problems ask about a non-current revision and count problems
	// aggregate over every value, so for both the verifier keeps the whole
	// group rather than collapsing to the latest value — otherwise the
	// material the graph QA step indexes or counts would be edited away
	// here.
	keepHistory := perr == nil && (intent.TRef != qa.TemporalCurrent || intent.Kind == qa.KindCount)

	goldBySubject := map[string][]kg.Triple{}
	var goldSubjectOrder []string
	for _, t := range gold.Triples {
		k := strings.ToLower(t.Subject)
		if _, seen := goldBySubject[k]; !seen {
			goldSubjectOrder = append(goldSubjectOrder, k)
		}
		goldBySubject[k] = append(goldBySubject[k], t)
	}

	fixed := &kg.Graph{}
	// consumed tracks gold (subject, relation-group representative)
	// already emitted, to avoid duplicates.
	consumed := map[string]bool{}
	emitGroup := func(group []kg.Triple) {
		if len(group) == 0 {
			return
		}
		last := group[len(group)-1] // chronological order: last is current
		key := strings.ToLower(last.Subject) + "\x00" + strings.ToLower(last.Relation)
		if consumed[key] {
			return
		}
		consumed[key] = true
		if keepHistory {
			for _, t := range group {
				fixed.Add(kg.Triple{Subject: t.Subject, Relation: t.Relation, Object: t.Object})
			}
			return
		}
		fixed.Add(kg.Triple{Subject: last.Subject, Relation: last.Relation, Object: last.Object})
	}
	// relationGroup collects the gold triples of a subject sharing a
	// relation surface, preserving order.
	relationGroup := func(ts []kg.Triple, relation string) []kg.Triple {
		var g []kg.Triple
		for _, t := range ts {
			if t.Relation == relation {
				g = append(g, t)
			}
		}
		return g
	}

	// Pass 1: fix or delete each pseudo-triple.
	for _, pt := range toFix.Triples {
		goldTs, ok := goldBySubject[strings.ToLower(pt.Subject)]
		if !ok {
			continue // no gold support at all: delete
		}
		bestRel := ""
		bestSim := 0.0
		for _, gt := range goldTs {
			if sim := relOverlapSim(pt.Relation, gt.Relation); sim > bestSim {
				bestSim = sim
				bestRel = gt.Relation
			}
		}
		if bestSim < relMatchThreshold {
			continue // subject supported but relation is not: delete
		}
		emitGroup(relationGroup(goldTs, bestRel))
	}

	// Pass 2: add missing gold content. For open problems everything
	// relevant is added (breadth is the point); for precise problems a
	// gold triple is relevant when it resembles something the pseudo-graph
	// asked about OR realises a relation the problem itself needs — the
	// prompt's "adding missing content ... to help me solve the [problem]".
	// The problem-driven path is what recovers from relation drift: a
	// pseudo-graph that said "landmass" instead of "continent" still ends
	// up with the gold continent triple.
	pseudoRels := make([]string, 0, len(toFix.Triples))
	for _, pt := range toFix.Triples {
		pseudoRels = append(pseudoRels, pt.Relation)
	}
	var neededRels []world.RelKey
	if perr == nil {
		neededRels = append(neededRels, intent.Chain...)
		if intent.ValueRel != "" {
			neededRels = append(neededRels, intent.ValueRel)
		}
		if intent.FilterRel != "" {
			neededRels = append(neededRels, intent.FilterRel)
		}
	}
	// For open problems the verifier is selective the way the prompt asks
	// ("only extract the information necessary"): a notable-figures
	// question keeps biographical highlights, a list question keeps the
	// listed relation, a profile question keeps everything.
	openRelevant := func(gt kg.Triple) bool {
		switch intent.Kind {
		case qa.KindOpenField:
			for _, need := range []world.RelKey{
				world.RelFieldOfWork, world.RelAward, world.RelNotableWork, world.RelBornIn,
			} {
				if relMatches(gt.Relation, need) {
					return true
				}
			}
			return false
		case qa.KindOpenList:
			return len(intent.Chain) > 0 && relMatches(gt.Relation, intent.Chain[0])
		default: // KindOpenProfile: full breadth
			return true
		}
	}
	relevant := func(gt kg.Triple) bool {
		if open {
			return openRelevant(gt)
		}
		for _, pr := range pseudoRels {
			if relOverlapSim(pr, gt.Relation) >= relMatchThreshold {
				return true
			}
		}
		for _, need := range neededRels {
			if relMatches(gt.Relation, need) {
				return true
			}
		}
		return false
	}
	for _, subj := range goldSubjectOrder {
		goldTs := goldBySubject[subj]
		seenRel := map[string]bool{}
		for _, gt := range goldTs {
			if seenRel[gt.Relation] {
				continue
			}
			seenRel[gt.Relation] = true
			if !relevant(gt) {
				continue
			}
			emitGroup(relationGroup(goldTs, gt.Relation))
		}
	}

	if fixed.Len() == 0 {
		// Nothing survived: the honest output is the (unsupported)
		// pseudo-graph unchanged — the model has no gold evidence to
		// prefer.
		return toFix.String(), nil
	}
	return fixed.String(), nil
}
