package llm

import (
	"context"
	"fmt"
	"strconv"
	"testing"

	"repro/internal/metrics"
	"repro/internal/prompts"
	"repro/internal/qa"
	"repro/internal/world"
)

// TestCountFromGraphExecutesCypher: the aggregation path must count by
// building and executing a Cypher script, which means decoy subjects and
// decoy relations in the retrieved graph must not inflate the count — the
// MATCH property filter has to do real work.
func TestCountFromGraphExecutesCypher(t *testing.T) {
	s := newSim(t, GPT4Params())
	graph := "<Xrange> <covers country> <Alandia>\n" +
		"<Xrange> <covers country> <Borland>\n" +
		"<Xrange> <covers country> <Borland>\n" + // duplicate: counted once
		"<Completely Different> <covers country> <Cestan>\n" + // decoy subject
		"<Xrange> <length> <500>" // decoy relation
	prompt := prompts.AnswerFromGraph("How many countries does Xrange cover?", graph)
	resp, err := s.Complete(context.Background(), Request{Prompt: prompt})
	if err != nil {
		t.Fatal(err)
	}
	if got := metrics.ExtractMarked(resp.Text); got != "2" {
		t.Errorf("count = %q, want 2:\n%s", got, resp.Text)
	}
}

// TestCountFromGraphFallsBackWhenSilent: a graph with nothing about the
// counted relation must not yield a confident zero — the model falls back
// to parametric estimation and still marks some number.
func TestCountFromGraphFallsBackWhenSilent(t *testing.T) {
	s := newSim(t, GPT4Params())
	graph := "<Xrange> <length> <500>"
	prompt := prompts.AnswerFromGraph("How many countries does Xrange cover?", graph)
	resp, err := s.Complete(context.Background(), Request{Prompt: prompt})
	if err != nil {
		t.Fatal(err)
	}
	got := metrics.ExtractMarked(resp.Text)
	if got == "" {
		t.Fatalf("no marked answer: %q", resp.Text)
	}
	if _, err := strconv.Atoi(got); err != nil {
		t.Errorf("fallback count answer is not numeric: %q", got)
	}
}

// TestTemporalFromGraphIndexesHistory: temporal lookups over a graph must
// index into the chronological revision list instead of collapsing to the
// latest value.
func TestTemporalFromGraphIndexesHistory(t *testing.T) {
	s := newSim(t, GPT4Params())
	graph := "<Xcity> <population> <100>\n<Xcity> <population> <200>\n<Xcity> <population> <300>"
	cases := []struct {
		question, want string
	}{
		{"What was the previous population of Xcity?", "200"},
		{"What was the original population of Xcity?", "100"},
		{"What is the population of Xcity?", "300"},
	}
	for _, c := range cases {
		resp, err := s.Complete(context.Background(), Request{Prompt: prompts.AnswerFromGraph(c.question, graph)})
		if err != nil {
			t.Fatal(err)
		}
		if got := metrics.ExtractMarked(resp.Text); got != c.want {
			t.Errorf("%q = %q, want %q", c.question, got, c.want)
		}
	}
}

// TestTemporalParametricRecallsHistory: with full revision knowledge (know
// gates forced open), the parametric route must answer previous/original
// from the memorised history.
func TestTemporalParametricRecallsHistory(t *testing.T) {
	params := GPT4Params()
	params.KnowBase = 1 // know everything
	params.CorruptRate = 0
	params.IOPenalty = 0
	s := newSim(t, params)
	city := s.w.Entities[s.w.OfKind(world.KindCity)[0]]
	facts := s.w.FactsSR(city.ID, world.RelPopulation)
	if len(facts) < 2 {
		t.Fatalf("city %s has %d population revisions, want >=2", city.Name, len(facts))
	}
	prev := facts[len(facts)-2].Literal
	orig := facts[0].Literal
	cases := []struct {
		question, want string
	}{
		{"What was the previous population of " + city.Name + "?", prev},
		{"What was the original population of " + city.Name + "?", orig},
	}
	for _, c := range cases {
		resp, err := s.Complete(context.Background(), Request{Prompt: prompts.IO(c.question)})
		if err != nil {
			t.Fatal(err)
		}
		if got := metrics.ExtractMarked(resp.Text); got != c.want {
			t.Errorf("%q = %q, want %q", c.question, got, c.want)
		}
	}
}

// TestPremiseGateDeclinesFalsePremises: asking a well-formed question about
// an entity of the wrong kind must usually produce {unanswerable} at the
// GPT-4 grade's calibration (PremiseCheckRate 0.85).
func TestPremiseGateDeclinesFalsePremises(t *testing.T) {
	s := newSim(t, GPT4Params())
	people := s.w.OfKind(world.KindPerson)
	declined := 0
	total := 0
	for i := 0; i < 20 && i < len(people); i++ {
		name := s.w.Entities[people[i]].Name
		q := fmt.Sprintf("What is the population of %s?", name)
		resp, err := s.Complete(context.Background(), Request{Prompt: prompts.IO(q)})
		if err != nil {
			t.Fatal(err)
		}
		total++
		if metrics.ExtractMarked(resp.Text) == qa.Unanswerable {
			declined++
		}
	}
	if declined < total/2 {
		t.Errorf("declined %d/%d false-premise questions, want at least half", declined, total)
	}
	if declined == total {
		t.Errorf("declined all %d — the failure mode (confident hallucination) should survive sometimes", total)
	}
}

// TestCountParametricUndercountsAtLowGrade: a weaker grade's count answers
// derive from its believed facts, so across many subjects its counts must
// not all match gold — imperfect memory shows up as miscounts.
func TestCountParametricUndercountsAtLowGrade(t *testing.T) {
	s := newSim(t, GPT35Params())
	res := &qa.Resolver{W: s.w}
	mismatched := false
	for _, id := range s.w.OfKind(world.KindMountain) {
		name := s.w.Entities[id].Name
		in := qa.Intent{Kind: qa.KindCount, Subject: name, Chain: []world.RelKey{world.RelCovers}}
		golds, err := res.Gold(in)
		if err != nil {
			continue
		}
		q := fmt.Sprintf("How many countries does %s cover?", name)
		resp, err := s.Complete(context.Background(), Request{Prompt: prompts.IO(q)})
		if err != nil {
			t.Fatal(err)
		}
		if metrics.ExtractMarked(resp.Text) != golds[0] {
			mismatched = true
			break
		}
	}
	if !mismatched {
		t.Error("GPT-3.5-grade counts matched gold everywhere; memory gating should cause miscounts")
	}
}
