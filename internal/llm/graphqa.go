package llm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cypher"
	"repro/internal/embed"
	"repro/internal/kg"
	"repro/internal/prompts"
	"repro/internal/qa"
	"repro/internal/world"
)

// completeGraphQA handles the Fig. 5 task: answer the problem using the
// provided graph, marking the answer entity with {...}. Per the prompt, an
// empty graph licenses parametric answering; a non-empty graph dominates
// the model's attention — if the needed chain is absent it answers from
// whatever the graph offers (context dominance), which is exactly why raw
// question-level RAG underperforms on multi-hop questions.
func (s *SimLM) completeGraphQA(req Request) (string, error) {
	parts, err := prompts.ExtractGraphQAParts(req.Prompt)
	if err != nil {
		return "", err
	}
	graph, gerr := kg.ParseGraph(parts.Graph)
	if gerr != nil || graph.Len() == 0 {
		// Empty graph: the prompt says answer from own knowledge; the
		// model behaves like CoT.
		return s.completeParametric(rewriteAsProblem(req, parts.Problem), true)
	}
	intent, perr := qa.Parse(parts.Problem)
	if perr != nil {
		return s.bestEffortFromGraph(parts.Problem, graph), nil
	}
	if intent.IsOpen() {
		return s.openFromGraph(parts.Problem, intent, graph, req), nil
	}
	return s.preciseFromGraph(parts.Problem, intent, graph, req), nil
}

// rewriteAsProblem reshapes a graph-QA request into a bare CoT request for
// the parametric fallback path.
func rewriteAsProblem(req Request, problem string) Request {
	return Request{
		Prompt:      "think step by step\n" + prompts.MarkerProblem + " \"" + problem + "\"",
		Temperature: req.Temperature,
		Nonce:       req.Nonce,
	}
}

// findHop locates the graph triples whose subject matches cur and whose
// relation surface realises rel, in graph order. Subject matching is the
// model's reading, not string equality: case folds, and a mangled name
// ("Thealeprurk Stadreltornd") still matches its source ("Thealeprurk
// Stadreltorndman") when they share most name tokens.
func findHop(graph *kg.Graph, cur string, rel world.RelKey) []kg.Triple {
	var out []kg.Triple
	for _, t := range graph.Triples {
		if !subjectMatches(t.Subject, cur) {
			continue
		}
		if relMatches(t.Relation, rel) {
			out = append(out, t)
		}
	}
	return out
}

// subjectReadEncoder scores fuzzy name matches; reading tolerance is an
// LLM capability, independent of any model instance, so one shared encoder
// suffices.
var subjectReadEncoder = embed.NewEncoder()

// subjectMatches reports whether two entity surfaces plausibly name the
// same entity: case-fold equality, a token overlap coefficient of at least
// 0.5 for multi-token names, or character-level similarity above 0.25 (a
// lightly mangled spelling still reads as its source inside a small graph;
// heavily mangled ones — most of a long name's middle gone — do not, which
// is the intended tail-entity failure mode).
func subjectMatches(a, b string) bool {
	if strings.EqualFold(strings.TrimSpace(a), strings.TrimSpace(b)) {
		return true
	}
	if relOverlapSim(a, b) >= 0.5 && len(embed.Tokenize(a)) > 1 && len(embed.Tokenize(b)) > 1 {
		return true
	}
	return subjectReadEncoder.Similarity(a, b) >= 0.25
}

// preciseFromGraph walks the intent inside the graph.
func (s *SimLM) preciseFromGraph(problem string, intent qa.Intent, graph *kg.Graph, req Request) string {
	if s.premiseMismatch(intent) && coin(s.params.PremiseCheckRate, s.seed, "premise", problem) {
		return fmt.Sprintf("The graph offers nothing for that premise; the answer is {%s}.", qa.Unanswerable)
	}
	switch intent.Kind {
	case qa.KindLookup:
		cur := intent.Subject
		for hop, rel := range intent.Chain {
			hits := findHop(graph, cur, rel)
			if len(hits) == 0 {
				return s.bestEffortFromGraph(problem, graph)
			}
			// Time-varying values appear in chronological order; the
			// prompt instructs picking the last. Other relations take the
			// first (highest-ranked) hit.
			info, _ := world.RelByKey(rel)
			obj := hits[0].Object
			if info.TimeVarying {
				obj = hits[len(hits)-1].Object
				switch intent.TRef {
				case qa.TemporalPrevious:
					if len(hits) < 2 {
						return s.bestEffortFromGraph(problem, graph)
					}
					obj = hits[len(hits)-2].Object
				case qa.TemporalOriginal:
					obj = hits[0].Object
				}
			}
			if hop == len(intent.Chain)-1 {
				return fmt.Sprintf("Based on the [graph] above, the answer is {%s}.", obj)
			}
			cur = obj
		}
		return s.bestEffortFromGraph(problem, graph)
	case qa.KindCount:
		return s.countFromGraph(problem, intent, graph, req)
	case qa.KindCompareCount:
		a := len(findHop(graph, intent.Subject, intent.Chain[0]))
		b := len(findHop(graph, intent.Subject2, intent.Chain[0]))
		switch {
		case a == 0 && b == 0:
			// The graph is silent on both: the model still knows the
			// answer is one of the two named subjects and guesses.
			return s.comparisonGuess(problem, intent, req)
		case a >= b:
			return fmt.Sprintf("Based on the [graph] above, {%s} covers more (%d vs %d).", intent.Subject, a, b)
		default:
			return fmt.Sprintf("Based on the [graph] above, {%s} covers more (%d vs %d).", intent.Subject2, b, a)
		}
	case qa.KindCompareValue:
		av, aok := lastNumeric(findHop(graph, intent.Subject, intent.Chain[0]))
		bv, bok := lastNumeric(findHop(graph, intent.Subject2, intent.Chain[0]))
		switch {
		case aok && bok && av >= bv:
			return fmt.Sprintf("Based on the [graph] above, {%s} is larger (%g vs %g).", intent.Subject, av, bv)
		case aok && bok:
			return fmt.Sprintf("Based on the [graph] above, {%s} is larger (%g vs %g).", intent.Subject2, bv, av)
		default:
			return s.comparisonGuess(problem, intent, req)
		}
	case qa.KindSuperlative:
		best, bestV, found := "", -1.0, false
		for _, t := range graph.Triples {
			if !relMatches(t.Relation, intent.ValueRel) {
				continue
			}
			if v, ok := parseNumeric(t.Object); ok && v > bestV {
				bestV, best, found = v, t.Subject, true
			}
		}
		if !found {
			return s.bestEffortFromGraph(problem, graph)
		}
		return fmt.Sprintf("Based on the [graph] above, the largest is {%s} with %g.", best, bestV)
	default:
		return s.bestEffortFromGraph(problem, graph)
	}
}

// countFromGraph answers a cardinality question by genuinely aggregating:
// the model transliterates the retrieved graph into a Cypher script,
// tagging edges that realise the counted relation from the question's
// subject as :TARGET, executes the script through the Cypher engine, and
// counts the distinct objects a MATCH projection returns. Counting happens
// in the graph machinery, not in numeric recall — the point of the
// aggregation pack.
func (s *SimLM) countFromGraph(problem string, intent qa.Intent, graph *kg.Graph, req Request) string {
	rel := intent.Chain[0]
	var b strings.Builder
	tagged := 0
	for i, t := range graph.Triples {
		subj := t.Subject
		relType := "FACT"
		if subjectMatches(t.Subject, intent.Subject) && relMatches(t.Relation, rel) {
			// The model reads a mangled subject as the asked-about entity
			// and canonicalises it while transliterating.
			subj = intent.Subject
			relType = "TARGET"
			tagged++
		}
		fmt.Fprintf(&b, "CREATE (a%d:Entity {name: %s})-[:%s]->(b%d:Entity {name: %s})\n",
			i, cypherString(subj), relType, i, cypherString(t.Object))
	}
	if tagged == 0 {
		// The graph is silent on the counted relation: fall back to memory.
		return s.countParametric(problem, intent, req)
	}
	script, err := cypher.Parse(b.String())
	if err != nil {
		return s.bestEffortFromGraph(problem, graph)
	}
	ex := cypher.NewExecutor()
	if err := ex.Run(script); err != nil {
		return s.bestEffortFromGraph(problem, graph)
	}
	q := fmt.Sprintf("MATCH (s:Entity {name: %s})-[:TARGET]->(o:Entity) RETURN o.name",
		cypherString(intent.Subject))
	qs, err := cypher.Parse(q)
	if err != nil || len(qs.Statements) != 1 {
		return s.bestEffortFromGraph(problem, graph)
	}
	match, ok := qs.Statements[0].(*cypher.MatchStmt)
	if !ok {
		return s.bestEffortFromGraph(problem, graph)
	}
	rows, err := ex.Query(match)
	if err != nil {
		return s.bestEffortFromGraph(problem, graph)
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if len(r.Values) > 0 {
			seen[r.Values[0]] = true
		}
	}
	if len(seen) == 0 {
		return s.countParametric(problem, intent, req)
	}
	return fmt.Sprintf("Counting the matching triples in the [graph] above gives {%d}.", len(seen))
}

// comparisonGuess picks one of a comparison's two subjects when the graph
// offers no usable evidence — a binary guess, right half the time, exactly
// as the parametric paths behave.
func (s *SimLM) comparisonGuess(problem string, intent qa.Intent, req Request) string {
	pick := intent.Subject
	if hash64(s.seed, "gcmpguess", problem, strconv.Itoa(req.Nonce))%2 == 0 {
		pick = intent.Subject2
	}
	return fmt.Sprintf("The graph does not settle it, but I believe {%s}.", pick)
}

// bestEffortFromGraph is context dominance: unable to complete the needed
// reasoning inside the graph, the model answers with the object of the
// triple most similar to the question — plausible-looking and usually
// wrong for multi-hop questions.
func (s *SimLM) bestEffortFromGraph(problem string, graph *kg.Graph) string {
	enc := embed.NewEncoder()
	qv := enc.Encode(problem)
	best := graph.Triples[0]
	bestScore := -1.0
	for _, t := range graph.Triples {
		if score := qv.Dot(enc.Encode(t.Text())); score > bestScore {
			bestScore = score
			best = t
		}
	}
	return fmt.Sprintf("Based on the [graph] above, it appears the answer is {%s}.", best.Object)
}

// lastNumeric parses the last numeric object in a hit list.
func lastNumeric(ts []kg.Triple) (float64, bool) {
	for i := len(ts) - 1; i >= 0; i-- {
		if v, ok := parseNumeric(ts[i].Object); ok {
			return v, true
		}
	}
	return 0, false
}

// openFromGraph composes an open-ended answer grounded in the graph:
// every graph triple is realised as a sentence. Strict-adherence grades
// stop there; looser grades blend in parametric beliefs about the support
// set, which widens coverage when the graph is narrow (the GPT-3.5 vs
// GPT-4 asymmetry of Tables IV/V).
func (s *SimLM) openFromGraph(problem string, intent qa.Intent, graph *kg.Graph, req Request) string {
	var parts []string
	parts = append(parts, "Based on the graph above:")
	if !s.params.StrictGraphAdherence {
		// Loose models pad graph-grounded answers with their usual prose.
		h := hash64(s.seed, "gfiller", problem)
		for i := 0; i < s.params.FillerSentences/2; i++ {
			idx := int((h >> (uint(i%8) * 7)) % uint64(len(fillerSentences)))
			parts = append(parts, fillerSentences[idx])
		}
	}
	// Realise triples. Time-varying relations collapse to their last
	// occurrence (per the prompt); multi-valued relations keep every
	// distinct object — "the products of X" must list all of them.
	lastOf := map[string]kg.Triple{}
	var order []string
	for _, t := range graph.Triples {
		key := strings.ToLower(t.Subject) + "\x00" + strings.ToLower(t.Relation)
		timeVarying := false
		if rel, ok := world.SurfaceToRel(t.Relation); ok {
			if info, ok := world.RelByKey(rel); ok {
				timeVarying = info.TimeVarying
			}
		}
		if !timeVarying {
			key += "\x00" + strings.ToLower(t.Object)
		}
		if _, ok := lastOf[key]; !ok {
			order = append(order, key)
		}
		lastOf[key] = t
	}
	for _, key := range order {
		t := lastOf[key]
		if rel, ok := world.SurfaceToRel(t.Relation); ok {
			parts = append(parts, qa.Realize(t.Subject, rel, t.Object))
		} else {
			parts = append(parts, fmt.Sprintf("%s %s %s.", t.Subject, t.Relation, t.Object))
		}
	}
	if !s.params.StrictGraphAdherence {
		// Blend in parametric beliefs not already covered.
		for _, f := range s.res.SupportFacts(intent) {
			key := strings.ToLower(s.w.Entities[f.Subject].Name) + "\x00" +
				strings.ToLower(naturalSurface[f.Rel])
			if _, covered := lastOf[key]; covered {
				continue
			}
			if !coin(s.params.OpenRecallFrac, s.seed, "gblend", problem, strconv.Itoa(f.ID)) {
				continue
			}
			if b, known := s.mem.recallFact(f, req.Temperature, req.Nonce); known {
				parts = append(parts, qa.Realize(s.w.Entities[f.Subject].Name, f.Rel, b.Object))
			}
		}
	}
	return strings.Join(parts, " ")
}
