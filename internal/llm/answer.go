package llm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/prompts"
	"repro/internal/qa"
	"repro/internal/world"
)

// completeParametric handles IO and CoT prompts: answer purely from
// parametric memory. CoT decomposes multi-hop questions into per-hop
// recalls; IO pays an extra per-hop penalty, modelling undedecomposed
// direct recall.
func (s *SimLM) completeParametric(req Request, cot bool) (string, error) {
	question, err := prompts.ExtractProblem(req.Prompt)
	if err != nil {
		return "", err
	}
	intent, perr := qa.Parse(question)
	if perr != nil {
		// Incomprehensible question: hedge with a fabricated answer.
		return fmt.Sprintf("I believe the answer is {%s}.",
			s.mem.guessEntity(world.KindPerson, question, strconv.Itoa(req.Nonce))), nil
	}
	if intent.IsOpen() {
		return s.openParametric(question, intent, req), nil
	}
	answer := s.preciseParametric(question, intent, req, cot)
	if cot {
		return "Let me reason step by step. " + answer, nil
	}
	return answer, nil
}

// preciseParametric produces a {marked} answer for a precise intent from
// memory alone.
func (s *SimLM) preciseParametric(question string, intent qa.Intent, req Request, cot bool) string {
	nonce := req.Nonce
	if s.premiseMismatch(intent) && coin(s.params.PremiseCheckRate, s.seed, "premise", question) {
		return fmt.Sprintf("That question does not apply to %s, so the answer is {%s}.",
			intent.Subject, qa.Unanswerable)
	}
	switch intent.Kind {
	case qa.KindLookup:
		if intent.TRef != qa.TemporalCurrent {
			return s.temporalParametric(question, intent, req, cot)
		}
		obj := s.recallChain(question, intent.Subject, intent.Chain, req, cot)
		return fmt.Sprintf("The answer is {%s}.", obj)
	case qa.KindCompareCount:
		return s.compareCount(question, intent, req)
	case qa.KindCompareValue:
		return s.compareValue(question, intent, req)
	case qa.KindSuperlative:
		return s.superlativeParametric(question, intent, req)
	case qa.KindCount:
		return s.countParametric(question, intent, req)
	default:
		return fmt.Sprintf("The answer is {%s}.",
			s.mem.guessEntity(world.KindPerson, question, strconv.Itoa(nonce)))
	}
}

// premiseMismatch reports whether the question's premise fails by schema:
// the subject resolves to a world entity whose kind cannot carry the
// chain's first relation (and indeed has no such facts). Unknown subjects
// are not premise failures — the model simply doesn't know them.
func (s *SimLM) premiseMismatch(intent qa.Intent) bool {
	if len(intent.Chain) == 0 {
		return false
	}
	ent, ok := s.mem.resolveSubject(intent.Subject)
	if !ok {
		return false
	}
	info, ok := world.RelByKey(intent.Chain[0])
	if !ok {
		return false
	}
	return info.SubjectKind != ent.Kind && len(s.w.FactsSR(ent.ID, intent.Chain[0])) == 0
}

// temporalParametric answers a lookup about a non-current revision of a
// time-varying fact. The model must have memorised the revision history —
// each revision passes its own recall gates, so a model that missed the
// early updates reports the wrong "previous" value.
func (s *SimLM) temporalParametric(question string, intent qa.Intent, req Request, cot bool) string {
	rel := intent.Chain[0]
	salt := question + "#temporal#" + strconv.Itoa(req.Nonce)
	var value string
	known := false
	if ent, ok := s.mem.resolveSubject(intent.Subject); ok {
		hist := s.mem.recallSRHistory(ent.ID, rel, req.Temperature, req.Nonce)
		switch intent.TRef {
		case qa.TemporalPrevious:
			if len(hist) >= 2 {
				value = hist[len(hist)-2].Object
				known = true
			}
		case qa.TemporalOriginal:
			if len(hist) > 0 {
				value = hist[0].Object
				known = true
			}
		}
	}
	if known && !cot && coin(s.params.IOPenalty, s.seed, "iopen", salt) {
		known = false
	}
	if !known {
		value = s.mem.guessForRelation(rel, salt)
	}
	return fmt.Sprintf("At that time it was {%s}.", value)
}

// countParametric answers a cardinality question by counting believed
// values: a model that misses tail facts undercounts, and one that knows
// nothing guesses a small number.
func (s *SimLM) countParametric(question string, intent qa.Intent, req Request) string {
	if ent, ok := s.mem.resolveSubject(intent.Subject); ok {
		beliefs := s.mem.recallSR(ent.ID, intent.Chain[0], req.Temperature, req.Nonce)
		if len(beliefs) > 0 {
			return fmt.Sprintf("I can recall %s having {%d} of them.", intent.Subject, len(beliefs))
		}
	}
	h := hash64(s.seed, "countguess", question, strconv.Itoa(req.Nonce))
	return fmt.Sprintf("I would estimate {%d}.", 1+int(h%5))
}

// recallChain walks a relation chain through the model's beliefs. Each hop
// recalls (current, rel); unknown hops continue from a fabricated entity of
// the right kind (the model's imagination stays type-consistent). IO mode
// adds a per-hop failure chance on top.
func (s *SimLM) recallChain(question, subject string, chain []world.RelKey, req Request, cot bool) string {
	cur := subject
	for hop, rel := range chain {
		info, _ := world.RelByKey(rel)
		hopSalt := question + "#" + strconv.Itoa(hop) + "#" + strconv.Itoa(req.Nonce)
		var value string
		known := false
		if ent, ok := s.mem.resolveSubject(cur); ok {
			beliefs := s.mem.recallSR(ent.ID, rel, req.Temperature, req.Nonce)
			if len(beliefs) > 0 {
				value = beliefs[0].Object
				known = true
			}
		}
		if known && !cot && coin(s.params.IOPenalty, s.seed, "iopen", hopSalt) {
			known = false
		}
		if !known {
			value = s.mem.guessForRelation(rel, hopSalt)
		}
		if info.ObjectLiteral || hop == len(chain)-1 {
			return value
		}
		cur = value
	}
	return cur
}

// compareCount answers "who has more X" from believed fact counts; with no
// usable knowledge it picks one of the two subjects deterministically (a
// coin-flip guess, right half the time — which is why comparison-heavy
// multi-hop sets are kinder to parametric baselines than tail factoids).
func (s *SimLM) compareCount(question string, intent qa.Intent, req Request) string {
	countOf := func(name string) int {
		ent, ok := s.mem.resolveSubject(name)
		if !ok {
			return 0
		}
		return len(s.mem.recallSR(ent.ID, intent.Chain[0], req.Temperature, req.Nonce))
	}
	a, b := countOf(intent.Subject), countOf(intent.Subject2)
	switch {
	case a > b:
		return fmt.Sprintf("{%s} relates to more of them (%d vs %d).", intent.Subject, a, b)
	case b > a:
		return fmt.Sprintf("{%s} relates to more of them (%d vs %d).", intent.Subject2, b, a)
	default:
		pick := intent.Subject
		if hash64(s.seed, "cmpguess", question, strconv.Itoa(req.Nonce))%2 == 0 {
			pick = intent.Subject2
		}
		return fmt.Sprintf("It is hard to say, but I believe {%s}.", pick)
	}
}

// compareValue answers "which is larger" from believed numeric values,
// guessing between the two when a value is missing.
func (s *SimLM) compareValue(question string, intent qa.Intent, req Request) string {
	valueOf := func(name string) (float64, bool) {
		ent, ok := s.mem.resolveSubject(name)
		if !ok {
			return 0, false
		}
		beliefs := s.mem.recallSR(ent.ID, intent.Chain[0], req.Temperature, req.Nonce)
		if len(beliefs) == 0 {
			return 0, false
		}
		return parseNumeric(beliefs[len(beliefs)-1].Object)
	}
	av, aok := valueOf(intent.Subject)
	bv, bok := valueOf(intent.Subject2)
	if aok && bok {
		if av >= bv {
			return fmt.Sprintf("{%s} is larger (%g vs %g).", intent.Subject, av, bv)
		}
		return fmt.Sprintf("{%s} is larger (%g vs %g).", intent.Subject2, bv, av)
	}
	pick := intent.Subject
	if hash64(s.seed, "cmpvguess", question, strconv.Itoa(req.Nonce))%2 == 0 {
		pick = intent.Subject2
	}
	return fmt.Sprintf("I am not certain, but I would say {%s}.", pick)
}

// superlativeParametric answers "which X in Y is largest" from the believed
// candidate set: the model must both recall the membership facts and the
// value facts.
func (s *SimLM) superlativeParametric(question string, intent qa.Intent, req Request) string {
	filterEnt, ok := s.mem.resolveSubject(intent.Subject)
	if !ok {
		return fmt.Sprintf("Perhaps {%s}.", s.mem.guessEntity(world.KindLake, question, strconv.Itoa(req.Nonce)))
	}
	best := ""
	bestV := -1.0
	for _, f := range s.w.FactsByRel(intent.FilterRel) {
		if !f.ObjectIsEntity() || f.Object != filterEnt.ID {
			continue
		}
		// The model only considers candidates whose membership it knows.
		if _, known := s.mem.recallFact(f, req.Temperature, req.Nonce); !known {
			continue
		}
		candidate := s.w.Entities[f.Subject].Name
		vb := s.mem.recallSR(f.Subject, intent.ValueRel, req.Temperature, req.Nonce)
		if len(vb) == 0 {
			continue
		}
		if v, ok := parseNumeric(vb[len(vb)-1].Object); ok && v > bestV {
			bestV = v
			best = candidate
		}
	}
	if best == "" {
		info, _ := world.RelByKey(intent.FilterRel)
		return fmt.Sprintf("Perhaps {%s}.", s.mem.guessEntity(info.SubjectKind, question, strconv.Itoa(req.Nonce)))
	}
	return fmt.Sprintf("Among them, {%s} has the largest value (%g).", best, bestV)
}

// fillerSentences are the generic prose a parametric open answer pads
// itself with, lowering ROUGE precision the way real chatty answers do.
var fillerSentences = []string{
	"That is an interesting question that touches on several areas.",
	"Many sources discuss this topic from different angles.",
	"It is worth noting that coverage of this subject varies.",
	"Historians and researchers have written extensively about it.",
	"There are several aspects to consider before answering fully.",
	"Context matters a great deal for questions like this.",
}

// openParametric composes an open-ended answer from memory: filler prose,
// the believed subset of the support facts, and a few tangents.
func (s *SimLM) openParametric(question string, intent qa.Intent, req Request) string {
	var parts []string
	h := hash64(s.seed, "filler", question)
	for i := 0; i < s.params.FillerSentences; i++ {
		idx := int((h >> (uint(i%8) * 7)) % uint64(len(fillerSentences)))
		parts = append(parts, fillerSentences[idx])
	}
	support := s.res.SupportFacts(intent)
	for _, f := range support {
		if !coin(s.params.OpenRecallFrac, s.seed, "openrecall", question, strconv.Itoa(f.ID)) {
			continue
		}
		b, known := s.mem.recallFact(f, req.Temperature, req.Nonce)
		if !known {
			continue
		}
		parts = append(parts, qa.Realize(s.w.Entities[b.Fact.Subject].Name, b.Fact.Rel, b.Object))
	}
	// Tangents: facts about unrelated entities the model likes to mention.
	for i := 0; i < s.params.TangentFacts; i++ {
		th := hash64(s.seed, "tangent", question, strconv.Itoa(i))
		f := s.w.Facts[int(th%uint64(len(s.w.Facts)))]
		if b, known := s.mem.recallFact(f, 0, 0); known {
			parts = append(parts, "Relatedly, "+qa.Realize(s.w.Entities[f.Subject].Name, f.Rel, b.Object))
		}
	}
	if len(parts) == 0 {
		return "I do not have enough information about " + intent.Subject + "."
	}
	return strings.Join(parts, " ")
}
