package llm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/embed"
	"repro/internal/prompts"
	"repro/internal/world"
)

// naturalSurface is the model's own phrasing for each relation — the
// vocabulary a web-trained LLM would use, which happens to align with
// Wikidata property labels. Pseudo-triples are emitted in this vocabulary
// regardless of which KG will be queried; the atomic semantic query is what
// bridges the gap to Freebase-style paths (Table III's premise).
var naturalSurface = map[world.RelKey]string{
	world.RelBornIn:       "place of birth",
	world.RelBirthDate:    "date of birth",
	world.RelOccupation:   "occupation",
	world.RelAward:        "award received",
	world.RelEducatedAt:   "educated at",
	world.RelFieldOfWork:  "field of work",
	world.RelNotableWork:  "notable work",
	world.RelCitizenOf:    "country of citizenship",
	world.RelInCountry:    "country",
	world.RelPopulation:   "population",
	world.RelCapital:      "capital",
	world.RelContinent:    "continent",
	world.RelOfficialLang: "official language",
	world.RelArea:         "area",
	world.RelLocatedIn:    "country",
	world.RelInflow:       "inflows",
	world.RelCovers:       "covers country",
	world.RelElevation:    "elevation above sea level",
	world.RelFlowsThrough: "basin country",
	world.RelLength:       "length",
	world.RelFoundedBy:    "founded by",
	world.RelHeadquarters: "headquarters location",
	world.RelIndustry:     "industry",
	world.RelProduct:      "product or material produced",
	world.RelUnivIn:       "located in city",
	world.RelInception:    "inception",
	world.RelCreator:      "creator",
	world.RelGenre:        "genre",
	world.RelPubYear:      "publication date",
	world.RelAwardFor:     "field",
}

// driftSurface is the off-vocabulary phrasing used when relation drift
// strikes: paraphrases that share few or no tokens with the schema labels,
// weakening semantic matching downstream. "Number of population" is taken
// verbatim from the paper's Fig. 4 example of a drifted pseudo-triple.
var driftSurface = map[world.RelKey]string{
	world.RelBornIn:       "birthplace",
	world.RelBirthDate:    "born on",
	world.RelOccupation:   "job",
	world.RelAward:        "prize won",
	world.RelEducatedAt:   "alma mater",
	world.RelFieldOfWork:  "specialty",
	world.RelNotableWork:  "famous creation",
	world.RelCitizenOf:    "nationality",
	world.RelInCountry:    "belongs to nation",
	world.RelPopulation:   "number of population",
	world.RelCapital:      "chief city",
	world.RelContinent:    "landmass",
	world.RelOfficialLang: "speaks",
	world.RelArea:         "size",
	world.RelLocatedIn:    "situated within",
	world.RelInflow:       "fed by",
	world.RelCovers:       "spans",
	world.RelElevation:    "height",
	world.RelFlowsThrough: "passes",
	world.RelLength:       "extent",
	world.RelFoundedBy:    "started by",
	world.RelHeadquarters: "based at",
	world.RelIndustry:     "sector",
	world.RelProduct:      "makes",
	world.RelUnivIn:       "campus city",
	world.RelInception:    "founding year",
	world.RelCreator:      "made by",
	world.RelGenre:        "category",
	world.RelPubYear:      "came out in",
	world.RelAwardFor:     "honours the area of",
}

// relSurface returns the phrasing the model uses for a relation in a given
// question's pseudo-graph, applying deterministic relation drift.
func (s *SimLM) relSurface(rel world.RelKey, question string) string {
	if coin(s.params.RelationDriftRate, s.seed, "drift", question, string(rel)) {
		if d, ok := driftSurface[rel]; ok {
			return d
		}
	}
	if n, ok := naturalSurface[rel]; ok {
		return n
	}
	return strings.ReplaceAll(string(rel), "_", " ")
}

// relTokenSim is the token-level Jaccard similarity between two relation
// surfaces — SimLM's proxy for "reading" whether two relation phrases mean
// the same thing. Schema punctuation tokenises away, so "place of birth"
// vs "people/person/place_of_birth" scores high.
func relTokenSim(a, b string) float64 {
	ta := embed.Tokenize(a)
	tb := embed.Tokenize(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	set := make(map[string]bool, len(ta))
	for _, t := range ta {
		set[t] = true
	}
	inter := 0
	union := len(set)
	seen := make(map[string]bool, len(tb))
	for _, t := range tb {
		if seen[t] {
			continue
		}
		seen[t] = true
		if set[t] {
			inter++
		} else {
			union++
		}
	}
	return float64(inter) / float64(union)
}

// relMatchThreshold is the overlap-coefficient floor for fuzzy relation
// reading. The overlap coefficient (|A∩B| / min(|A|,|B|)) rather than
// Jaccard keeps Freebase path namespaces ("organization/organization/
// headquarters" vs "headquarters location") from drowning the shared
// content tokens; 0.5 admits the paper's Fig. 4 drift example ("Number of
// population" vs "population") while rejecting unrelated relations.
const relMatchThreshold = 0.50

// relOverlapSim is the token overlap coefficient between two relation
// surfaces: the fraction of the smaller surface's tokens found in the
// larger. This is SimLM's proxy for an LLM reading two relation phrasings
// as equivalent.
func relOverlapSim(a, b string) float64 {
	ta := embed.Tokenize(a)
	tb := embed.Tokenize(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	sa := make(map[string]bool, len(ta))
	for _, t := range ta {
		sa[t] = true
	}
	sb := make(map[string]bool, len(tb))
	for _, t := range tb {
		sb[t] = true
	}
	if len(sb) < len(sa) {
		sa, sb = sb, sa
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	return float64(inter) / float64(len(sa))
}

// relMatches reports whether a graph triple's relation surface plausibly
// realises the canonical relation. A surface that resolves exactly to a
// schema relation is authoritative (no fuzzy fallback) — except that
// relations sharing a label (both city-in-country and lake-in-country
// render as "country") are indistinguishable at surface level and match
// each other.
func relMatches(surface string, rel world.RelKey) bool {
	if k, ok := world.SurfaceToRel(surface); ok {
		if k == rel {
			return true
		}
		return naturalSurface[k] != "" && naturalSurface[k] == naturalSurface[rel]
	}
	if n, ok := naturalSurface[rel]; ok && relOverlapSim(surface, n) >= relMatchThreshold {
		return true
	}
	if d, ok := driftSurface[rel]; ok && strings.EqualFold(strings.TrimSpace(surface), d) {
		return true
	}
	return relOverlapSim(surface, strings.ReplaceAll(string(rel), "_", " ")) >= relMatchThreshold
}

// parseNumeric extracts a numeric value from a literal surface.
func parseNumeric(s string) (float64, bool) {
	s = strings.TrimSpace(strings.ReplaceAll(s, ",", ""))
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// completeScoreRels handles the ToG relation-pruning task: score each
// candidate relation's relevance to the question. The model's judgement is
// its token-overlap reading of the relation surface against the question,
// plus grade-scaled noise — GPT-4-grade exploration is steadier than
// GPT-3.5-grade, which is what separates their ToG rows in Table II.
func (s *SimLM) completeScoreRels(req Request) (string, error) {
	question, rels, err := prompts.ExtractScoreRelations(req.Prompt)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, rel := range rels {
		base := relTokenSim(question, rel)
		noise := (unit(hash64(s.seed, "relscore", question, rel)) - 0.5) * s.params.RelScoreNoise
		score := base + noise
		if score < 0 {
			score = 0
		}
		if score > 1 {
			score = 1
		}
		fmt.Fprintf(&b, "%s\t%.4f\n", rel, score)
	}
	return b.String(), nil
}

// ParseRelScores parses a completeScoreRels completion back into a
// relation→score map (exported for the ToG baseline).
func ParseRelScores(completion string) map[string]float64 {
	out := map[string]float64{}
	for _, line := range strings.Split(completion, "\n") {
		line = strings.TrimSpace(line)
		i := strings.LastIndexByte(line, '\t')
		if i <= 0 {
			continue
		}
		if v, ok := parseNumeric(line[i+1:]); ok {
			out[line[:i]] = v
		}
	}
	return out
}
