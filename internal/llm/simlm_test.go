package llm

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cypher"
	"repro/internal/kg"
	"repro/internal/metrics"
	"repro/internal/prompts"
	"repro/internal/qa"
	"repro/internal/world"
)

func testWorld(t testing.TB) *world.World {
	t.Helper()
	cfg := world.DefaultConfig()
	cfg.People = 100
	cfg.Cities = 40
	cfg.Countries = 16
	cfg.Works = 60
	cfg.Companies = 24
	cfg.Universities = 12
	cfg.Lakes = 20
	cfg.Mountains = 12
	cfg.Rivers = 20
	return world.MustGenerate(cfg)
}

func newSim(t testing.TB, params GradeParams) *SimLM {
	t.Helper()
	return NewSim(testWorld(t), params, 42)
}

func TestCompleteDeterministic(t *testing.T) {
	s := newSim(t, GPT35Params())
	req := Request{Prompt: prompts.IO("Where was " + headPerson(s) + " born?")}
	a, err := s.Complete(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Complete(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if a.Text != b.Text {
		t.Error("Complete not deterministic")
	}
}

func headPerson(s *SimLM) string {
	return s.w.Entities[s.w.OfKind(world.KindPerson)[0]].Name
}

func tailPerson(s *SimLM) string {
	people := s.w.OfKind(world.KindPerson)
	return s.w.Entities[people[len(people)-1]].Name
}

func TestEmptyPromptRejected(t *testing.T) {
	s := newSim(t, GPT35Params())
	if _, err := s.Complete(context.Background(), Request{}); err == nil {
		t.Error("empty prompt accepted")
	}
}

func TestUsageAccounting(t *testing.T) {
	s := newSim(t, GPT35Params())
	resp, err := s.Complete(context.Background(), Request{Prompt: prompts.IO("Where was " + headPerson(s) + " born?")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Usage.PromptTokens == 0 || resp.Usage.CompletionTokens == 0 {
		t.Errorf("usage = %+v", resp.Usage)
	}
	calls, pt, ct := s.CallStats()
	if calls != 1 || pt == 0 || ct == 0 {
		t.Errorf("stats = %d %d %d", calls, pt, ct)
	}
}

// TestGradeKnowledgeGap: over the whole fact population, the GPT-4 grade
// must know measurably more facts and hold fewer corrupted beliefs than
// the GPT-3.5 grade (per-question accuracy comparisons at this scale are
// noise-dominated; the memory gates are the ground truth of the claim).
func TestGradeKnowledgeGap(t *testing.T) {
	w := testWorld(t)
	g35 := NewSim(w, GPT35Params(), 42)
	g4 := NewSim(w, GPT4Params(), 42)
	var know35, know4, correct35, correct4 int
	for _, f := range w.Facts {
		if b, ok := g35.mem.recallFact(f, 0, 0); ok {
			know35++
			if b.Correct {
				correct35++
			}
		}
		if b, ok := g4.mem.recallFact(f, 0, 0); ok {
			know4++
			if b.Correct {
				correct4++
			}
		}
	}
	if know4 <= know35 {
		t.Errorf("GPT-4 grade knows %d facts, GPT-3.5 knows %d — want strictly more", know4, know35)
	}
	if correct4 <= correct35 {
		t.Errorf("GPT-4 grade correct on %d facts, GPT-3.5 on %d", correct4, correct35)
	}
	// Corruption rates: GPT-4's conditional error rate must be lower.
	err35 := 1 - float64(correct35)/float64(know35)
	err4 := 1 - float64(correct4)/float64(know4)
	if err4 >= err35 {
		t.Errorf("GPT-4 corruption rate %.3f should be below GPT-3.5's %.3f", err4, err35)
	}
}

// TestPopularityEffect: head entities must be answered correctly more often
// than tail entities.
func TestPopularityEffect(t *testing.T) {
	w := testWorld(t)
	s := NewSim(w, GPT35Params(), 42)
	res := &qa.Resolver{W: w}
	people := w.OfKind(world.KindPerson)
	headRight, tailRight := 0, 0
	n := len(people) / 4
	score := func(ids []int) int {
		right := 0
		for _, p := range ids {
			name := w.Entities[p].Name
			in := qa.Intent{Kind: qa.KindLookup, Subject: name, Chain: []world.RelKey{world.RelBornIn}}
			golds, _ := res.Gold(in)
			resp, err := s.Complete(context.Background(), Request{Prompt: prompts.CoT("Where was " + name + " born?")})
			if err != nil {
				t.Fatal(err)
			}
			if metrics.Hit1(resp.Text, golds) > 0 {
				right++
			}
		}
		return right
	}
	headRight = score(people[:n])
	tailRight = score(people[len(people)-n:])
	if headRight <= tailRight {
		t.Errorf("head accuracy (%d/%d) should exceed tail accuracy (%d/%d)",
			headRight, n, tailRight, n)
	}
}

func TestPseudoGraphDecodes(t *testing.T) {
	s := newSim(t, GPT35Params())
	q := "Where was " + headPerson(s) + " born?"
	resp, err := s.Complete(context.Background(), Request{Prompt: prompts.PseudoGraph(q)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Text, "CREATE") {
		t.Fatalf("pseudo-graph completion lacks Cypher:\n%s", resp.Text)
	}
	code := extractFenced(resp.Text)
	g, err := cypher.Decode(code)
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, code)
	}
	if g.Len() == 0 {
		t.Error("pseudo-graph decoded to zero triples")
	}
}

func extractFenced(text string) string {
	i := strings.Index(text, "```")
	rest := text[i+3:]
	j := strings.Index(rest, "```")
	return rest[:j]
}

// TestPseudoGraphStructuralRates: over many questions, the Cypher route
// must be structurally valid far more often than the direct route.
func TestPseudoGraphStructuralRates(t *testing.T) {
	w := testWorld(t)
	s := NewSim(w, GPT35Params(), 42)
	people := w.OfKind(world.KindPerson)
	cyOK, dirOK, n := 0, 0, 0
	for _, p := range people {
		name := w.Entities[p].Name
		q := "Which award did " + name + " receive?"
		n++
		resp, err := s.Complete(context.Background(), Request{Prompt: prompts.PseudoGraph(q)})
		if err != nil {
			t.Fatal(err)
		}
		if cypher.Validate(extractFenced(resp.Text)) {
			cyOK++
		}
		resp, err = s.Complete(context.Background(), Request{Prompt: prompts.DirectTriples(q)})
		if err != nil {
			t.Fatal(err)
		}
		valid := true
		lines := 0
		for _, line := range strings.Split(resp.Text, "\n") {
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			lines++
			if _, perr := kg.ParseTriple(line); perr != nil {
				valid = false
			}
		}
		if valid && lines > 0 {
			dirOK++
		}
	}
	cyRate := float64(cyOK) / float64(n)
	dirRate := float64(dirOK) / float64(n)
	if cyRate < 0.9 {
		t.Errorf("Cypher validity %.2f, want >= 0.9", cyRate)
	}
	if dirRate > cyRate-0.1 {
		t.Errorf("direct validity %.2f should trail Cypher validity %.2f by >= 0.1", dirRate, cyRate)
	}
}

// TestVerifyFixesPaperExample reproduces Fig. 4's China-population case:
// the drifted pseudo-triple must be replaced with the latest gold value.
func TestVerifyFixesPaperExample(t *testing.T) {
	s := newSim(t, GPT4Params())
	city := s.w.Entities[s.w.OfKind(world.KindCity)[0]]
	pops := s.w.FactsSR(city.ID, world.RelPopulation)
	latest := pops[len(pops)-1].Literal
	var gold strings.Builder
	gold.WriteString("[entity_0]:\n")
	for _, f := range pops {
		gold.WriteString("<" + city.Name + "> <population> <" + f.Literal + ">\n")
	}
	toFix := "<" + city.Name + "> <Number of population> <99999999>"
	prompt := prompts.Verify("What is the population of "+city.Name+"?", gold.String(), toFix)
	resp, err := s.Complete(context.Background(), Request{Prompt: prompt})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := kg.ParseGraph(resp.Text)
	if err != nil {
		t.Fatal(err)
	}
	if !fixed.Contains(kg.NewTriple(city.Name, "population", latest)) {
		t.Errorf("verification did not pick the latest gold value:\n%s", resp.Text)
	}
	if strings.Contains(resp.Text, "99999999") {
		t.Errorf("hallucinated value survived verification:\n%s", resp.Text)
	}
}

func TestVerifyDeletesUnsupported(t *testing.T) {
	s := newSim(t, GPT4Params())
	gold := "[entity_0]:\n<Lake Superior> <area> <82350>"
	toFix := "<Lake Superior> <area> <82000>\n<Dongting Lake> <area> <259430>"
	prompt := prompts.Verify("Which lake is largest?", gold, toFix)
	resp, err := s.Complete(context.Background(), Request{Prompt: prompt})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(resp.Text, "Dongting") {
		t.Errorf("unsupported subject survived:\n%s", resp.Text)
	}
	if !strings.Contains(resp.Text, "82350") {
		t.Errorf("gold value missing:\n%s", resp.Text)
	}
}

func TestGraphQAWalksChain(t *testing.T) {
	s := newSim(t, GPT4Params())
	// Build a graph answering a 2-hop question with surfaces unknown to
	// the model's memory path (pure graph reading).
	p := headPerson(s)
	ent, _ := s.w.EntityByName(p)
	city := s.w.Entities[s.w.FactsSR(ent.ID, world.RelBornIn)[0].Object]
	country := s.w.Entities[s.w.FactsSR(city.ID, world.RelInCountry)[0].Object]
	graph := "<" + p + "> <place of birth> <" + city.Name + ">\n" +
		"<" + city.Name + "> <country> <" + country.Name + ">"
	q := "In which country is the city where " + p + " is headquartered?" // wrong template for person
	_ = q
	// Use a template that parses to born->country... there is none 2-hop;
	// use population instead: single-hop via graph.
	prompt := prompts.AnswerFromGraph("Where was "+p+" born?", graph)
	resp, err := s.Complete(context.Background(), Request{Prompt: prompt})
	if err != nil {
		t.Fatal(err)
	}
	if metrics.ExtractMarked(resp.Text) != city.Name {
		t.Errorf("graph walk answer = %q, want %q", resp.Text, city.Name)
	}
}

func TestGraphQAPicksLatestTimeVarying(t *testing.T) {
	s := newSim(t, GPT4Params())
	graph := "<Xcity> <population> <100>\n<Xcity> <population> <200>\n<Xcity> <population> <300>"
	prompt := prompts.AnswerFromGraph("What is the population of Xcity?", graph)
	resp, err := s.Complete(context.Background(), Request{Prompt: prompt})
	if err != nil {
		t.Fatal(err)
	}
	if metrics.ExtractMarked(resp.Text) != "300" {
		t.Errorf("time-varying answer = %q, want 300", resp.Text)
	}
}

func TestGraphQAEmptyGraphFallsBackToParametric(t *testing.T) {
	s := newSim(t, GPT4Params())
	p := headPerson(s)
	prompt := prompts.AnswerFromGraph("Where was "+p+" born?", "")
	resp, err := s.Complete(context.Background(), Request{Prompt: prompt})
	if err != nil {
		t.Fatal(err)
	}
	if metrics.ExtractMarked(resp.Text) == "" {
		t.Errorf("no answer produced: %q", resp.Text)
	}
}

func TestSCTemperatureVariation(t *testing.T) {
	s := newSim(t, GPT35Params())
	// Across many tail questions and nonces, at least one sampled answer
	// must differ from the greedy one (temperature noise is real).
	varied := false
	people := s.w.OfKind(world.KindPerson)
	for _, p := range people[len(people)-20:] {
		q := "Where was " + s.w.Entities[p].Name + " born?"
		greedy, err := s.Complete(context.Background(), Request{Prompt: prompts.CoT(q)})
		if err != nil {
			t.Fatal(err)
		}
		for nonce := 0; nonce < 3; nonce++ {
			sampled, err := s.Complete(context.Background(), Request{Prompt: prompts.CoT(q), Temperature: 0.7, Nonce: nonce})
			if err != nil {
				t.Fatal(err)
			}
			if sampled.Text != greedy.Text {
				varied = true
			}
		}
	}
	if !varied {
		t.Error("temperature sampling produced no variation at all")
	}
}

func TestScoreRelsParse(t *testing.T) {
	s := newSim(t, GPT35Params())
	rels := []string{"people/person/place_of_birth", "people/person/profession", "award/award_winner/awards_won"}
	resp, err := s.Complete(context.Background(), Request{Prompt: prompts.ScoreRelations("Where was X born?", rels)})
	if err != nil {
		t.Fatal(err)
	}
	scores := ParseRelScores(resp.Text)
	if len(scores) != len(rels) {
		t.Fatalf("parsed %d scores, want %d:\n%s", len(scores), len(rels), resp.Text)
	}
	for rel, sc := range scores {
		if sc < 0 || sc > 1 {
			t.Errorf("score for %q out of range: %v", rel, sc)
		}
	}
}

func TestOpenAnswerMentionsSubjectFacts(t *testing.T) {
	s := newSim(t, GPT4Params())
	field := s.w.Entities[s.w.OfKind(world.KindField)[0]].Name
	q := "Who are the most notable researchers in " + field + "?"
	resp, err := s.Complete(context.Background(), Request{Prompt: prompts.CoT(q)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Text, field) {
		t.Errorf("open answer never mentions the field:\n%s", resp.Text)
	}
}

func TestMisspellChangesName(t *testing.T) {
	for i, name := range []string{"Griadortrianburg", "Thealeprurk Stadreltorndman", "Bob"} {
		got := misspell(name, uint64(i*7+3))
		if name == "Bob" {
			continue // too short to mangle meaningfully
		}
		if got == name {
			t.Errorf("misspell(%q) unchanged", name)
		}
	}
}

func TestDistortLiteral(t *testing.T) {
	if got := distortLiteral("1927-09-04", 5); got == "1927-09-04" || len(got) != 10 {
		t.Errorf("date distortion = %q", got)
	}
	if got := distortLiteral("1000000", 5); got == "1000000" {
		t.Error("number distortion unchanged")
	}
	if got := distortLiteral("not a number", 5); got == "not a number" {
		t.Error("text distortion unchanged")
	}
}

func TestMemoryNoTruthLeak(t *testing.T) {
	// Unknown tail questions must be answered wrongly most of the time —
	// the model may never bypass its knowledge gates.
	w := testWorld(t)
	weak := GPT35Params()
	weak.KnowBase = 0
	weak.KnowPopWeight = 0
	weak.PlanActivation = 0
	s := NewSim(w, weak, 42)
	res := &qa.Resolver{W: w}
	right := 0
	people := w.OfKind(world.KindPerson)
	for _, p := range people {
		name := w.Entities[p].Name
		in := qa.Intent{Kind: qa.KindLookup, Subject: name, Chain: []world.RelKey{world.RelBornIn}}
		golds, _ := res.Gold(in)
		resp, err := s.Complete(context.Background(), Request{Prompt: prompts.IO("Where was " + name + " born?")})
		if err != nil {
			t.Fatal(err)
		}
		if metrics.Hit1(resp.Text, golds) > 0 {
			right++
		}
	}
	// A zero-knowledge model guessing cities can fluke occasionally; more
	// than ~15 % accuracy would mean truth is leaking.
	if float64(right) > 0.15*float64(len(people)) {
		t.Errorf("zero-knowledge model answered %d/%d correctly — truth leak", right, len(people))
	}
}
