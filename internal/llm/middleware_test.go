package llm

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/prompts"
)

func TestScriptedClient(t *testing.T) {
	s := NewScripted().
		On(prompts.TaskIO, "the answer is {42}.").
		OnFunc(prompts.TaskCoT, func(p string) (string, error) {
			if strings.Contains(p, "fail") {
				return "", errors.New("scripted failure")
			}
			return "let me think... {ok}", nil
		})

	resp, err := s.Complete(context.Background(), Request{Prompt: prompts.IO("q?")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text != "the answer is {42}." {
		t.Errorf("IO response = %q", resp.Text)
	}
	if resp.Usage.PromptTokens == 0 {
		t.Error("usage not estimated")
	}

	if _, err := s.Complete(context.Background(), Request{Prompt: prompts.CoT("please fail")}); err == nil {
		t.Error("scripted error swallowed")
	}
	if _, err := s.Complete(context.Background(), Request{Prompt: prompts.PseudoGraph("q?")}); err == nil {
		t.Error("unregistered task accepted")
	}
	if s.Calls() != 3 {
		t.Errorf("calls = %d, want 3", s.Calls())
	}
}

func TestRecorder(t *testing.T) {
	inner := NewScripted().On(prompts.TaskIO, "{x}")
	rec := NewRecorder(inner)
	if rec.Name() != "scripted" {
		t.Errorf("Name = %q", rec.Name())
	}
	if _, err := rec.Complete(context.Background(), Request{Prompt: prompts.IO("q1?")}); err != nil {
		t.Fatal(err)
	}
	// Errors are recorded too.
	_, _ = rec.Complete(context.Background(), Request{Prompt: prompts.CoT("q2?")})

	ex := rec.Exchanges()
	if len(ex) != 2 {
		t.Fatalf("recorded %d exchanges, want 2", len(ex))
	}
	if ex[0].Task != prompts.TaskIO || ex[0].Response.Text != "{x}" {
		t.Errorf("exchange 0 = %+v", ex[0])
	}
	if ex[1].Err == nil {
		t.Error("exchange 1 should carry the error")
	}
	rec.Reset()
	if len(rec.Exchanges()) != 0 {
		t.Error("Reset did not clear the transcript")
	}
}

func TestRecorderWrapsSimLM(t *testing.T) {
	sim := newSim(t, GPT35Params())
	rec := NewRecorder(sim)
	q := "Where was " + headPerson(sim) + " born?"
	direct, err := sim.Complete(context.Background(), Request{Prompt: prompts.CoT(q)})
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := rec.Complete(context.Background(), Request{Prompt: prompts.CoT(q)})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Text != wrapped.Text {
		t.Error("Recorder altered the completion")
	}
}
