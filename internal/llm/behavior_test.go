package llm

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/kg"
	"repro/internal/metrics"
	"repro/internal/prompts"
	"repro/internal/world"
)

// TestCoinUniformity guards the avalanche finaliser: coin(p) must fire
// with probability ~p over sequential keys (FNV's raw high bits failed
// this badly before the fix).
func TestCoinUniformity(t *testing.T) {
	for _, p := range []float64{0.05, 0.16, 0.5, 0.9} {
		fired := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if coin(p, "seed", "kind", strconv.Itoa(i)) {
				fired++
			}
		}
		got := float64(fired) / n
		// 5 sigma tolerance.
		tol := 5 * math.Sqrt(p*(1-p)/n)
		if math.Abs(got-p) > tol {
			t.Errorf("coin(%v) fired at rate %v (tolerance %v)", p, got, tol)
		}
	}
}

func TestCoinEdgeCases(t *testing.T) {
	if coin(0, "x") {
		t.Error("coin(0) fired")
	}
	if !coin(1, "x") {
		t.Error("coin(1) did not fire")
	}
}

// TestVerifyAppendRateStatistical: the append failure must occur at
// roughly the configured rate over many problems.
func TestVerifyAppendRateStatistical(t *testing.T) {
	w := testWorld(t)
	params := GPT35Params()
	params.VerifyAppendRate = 0.3
	s := NewSim(w, params, 42)
	gold := "[entity_0]:\n<Lake Superior> <area> <82350>"
	toFix := "<Dongting Lake> <area> <259430>"
	appended := 0
	const n = 400
	for i := 0; i < n; i++ {
		prompt := prompts.Verify(fmt.Sprintf("problem %d?", i), gold, toFix)
		resp, err := s.Complete(context.Background(), Request{Prompt: prompt})
		if err != nil {
			t.Fatal(err)
		}
		// Append failure keeps the unsupported Dongting triple AND the gold.
		if strings.Contains(resp.Text, "Dongting") && strings.Contains(resp.Text, "82350") {
			appended++
		}
	}
	rate := float64(appended) / n
	if rate < 0.2 || rate > 0.4 {
		t.Errorf("append failure rate %.3f, configured 0.3", rate)
	}
}

// TestRelationDriftRateStatistical: pseudo-graph relations drift at
// roughly the configured rate.
func TestRelationDriftRateStatistical(t *testing.T) {
	w := testWorld(t)
	params := GPT35Params()
	params.RelationDriftRate = 0.4
	s := NewSim(w, params, 42)
	drifted := 0
	const n = 500
	for i := 0; i < n; i++ {
		surface := s.relSurface(world.RelPopulation, fmt.Sprintf("q%d", i))
		if surface == driftSurface[world.RelPopulation] {
			drifted++
		} else if surface != naturalSurface[world.RelPopulation] {
			t.Fatalf("unexpected surface %q", surface)
		}
	}
	rate := float64(drifted) / n
	if rate < 0.3 || rate > 0.5 {
		t.Errorf("drift rate %.3f, configured 0.4", rate)
	}
}

// TestSubjectDriftPopularityDependence: tail entities get mangled more
// often than head entities.
func TestSubjectDriftPopularityDependence(t *testing.T) {
	w := testWorld(t)
	s := NewSim(w, GPT35Params(), 42)
	people := w.OfKind(world.KindPerson)
	mangleRate := func(ids []int) float64 {
		mangled := 0
		trials := 0
		for _, id := range ids {
			name := w.Entities[id].Name
			for i := 0; i < 10; i++ {
				trials++
				if s.entitySurface(name, fmt.Sprintf("q%d", i)) != name {
					mangled++
				}
			}
		}
		return float64(mangled) / float64(trials)
	}
	head := mangleRate(people[:10])
	tail := mangleRate(people[len(people)-10:])
	if head >= tail {
		t.Errorf("head mangle rate %.3f should be below tail %.3f", head, tail)
	}
}

func TestCompareCountParametric(t *testing.T) {
	w := testWorld(t)
	// A fully-knowing model must answer count comparisons correctly.
	params := GPT35Params()
	params.KnowBase = 1
	params.CorruptRate = 0
	s := NewSim(w, params, 42)
	ms := w.OfKind(world.KindMountain)
	a, b := w.Entities[ms[0]], w.Entities[ms[1]]
	ca := len(w.FactsSR(a.ID, world.RelCovers))
	cb := len(w.FactsSR(b.ID, world.RelCovers))
	if ca == cb {
		t.Skip("tied mountains in this world")
	}
	want := a.Name
	if cb > ca {
		want = b.Name
	}
	q := fmt.Sprintf("Who covers more countries, %s or %s?", a.Name, b.Name)
	resp, err := s.Complete(context.Background(), Request{Prompt: prompts.CoT(q)})
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Hit1(resp.Text, []string{want}) != 1 {
		t.Errorf("compare answer %q, want %q", resp.Text, want)
	}
}

func TestCompareValueParametric(t *testing.T) {
	w := testWorld(t)
	params := GPT4Params()
	params.KnowBase = 1
	params.CorruptRate = 0
	s := NewSim(w, params, 42)
	lakes := w.OfKind(world.KindLake)
	a, b := w.Entities[lakes[0]], w.Entities[lakes[1]]
	av, _ := w.CurrentFact(a.ID, world.RelArea)
	bv, _ := w.CurrentFact(b.ID, world.RelArea)
	want := a.Name
	if bv.Literal > av.Literal && len(bv.Literal) >= len(av.Literal) {
		want = b.Name
	}
	// Use numeric comparison to be safe.
	var avn, bvn float64
	fmt.Sscanf(av.Literal, "%f", &avn)
	fmt.Sscanf(bv.Literal, "%f", &bvn)
	if bvn > avn {
		want = b.Name
	} else {
		want = a.Name
	}
	q := fmt.Sprintf("Which has a larger area, %s or %s?", a.Name, b.Name)
	resp, err := s.Complete(context.Background(), Request{Prompt: prompts.CoT(q)})
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Hit1(resp.Text, []string{want}) != 1 {
		t.Errorf("value compare %q, want %q", resp.Text, want)
	}
}

func TestSuperlativeParametricFullKnowledge(t *testing.T) {
	w := testWorld(t)
	params := GPT4Params()
	params.KnowBase = 1
	params.CorruptRate = 0
	s := NewSim(w, params, 42)
	// Find a country with lakes.
	for _, c := range w.OfKind(world.KindCountry) {
		var best string
		bestV := -1.0
		for _, f := range w.FactsByRel(world.RelLocatedIn) {
			if !f.ObjectIsEntity() || f.Object != c {
				continue
			}
			vf, ok := w.CurrentFact(f.Subject, world.RelArea)
			if !ok {
				continue
			}
			var v float64
			fmt.Sscanf(vf.Literal, "%f", &v)
			if v > bestV {
				bestV = v
				best = w.Entities[f.Subject].Name
			}
		}
		if best == "" {
			continue
		}
		q := fmt.Sprintf("Which lake in %s has the largest area?", w.Entities[c].Name)
		resp, err := s.Complete(context.Background(), Request{Prompt: prompts.CoT(q)})
		if err != nil {
			t.Fatal(err)
		}
		if metrics.Hit1(resp.Text, []string{best}) != 1 {
			t.Errorf("superlative %q, want %q", resp.Text, best)
		}
		return
	}
	t.Skip("no country with lakes")
}

func TestGraphQACompareFromGraph(t *testing.T) {
	s := newSim(t, GPT4Params())
	graph := strings.Join([]string{
		"<The Andes> <covers country> <Peru>",
		"<The Andes> <covers country> <Chile>",
		"<The Andes> <covers country> <Ecuador>",
		"<The Himalayas> <covers country> <India>",
	}, "\n")
	q := "Who covers more countries, The Andes or The Himalayas?"
	resp, err := s.Complete(context.Background(), Request{Prompt: prompts.AnswerFromGraph(q, graph)})
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Hit1(resp.Text, []string{"The Andes"}) != 1 {
		t.Errorf("graph compare = %q", resp.Text)
	}
}

func TestGraphQASuperlativeFromGraph(t *testing.T) {
	s := newSim(t, GPT4Params())
	graph := strings.Join([]string{
		"<Lake Superior> <area> <82350>",
		"<Lake Michigan> <area> <57750>",
		"<Lake Huron> <area> <59600>",
	}, "\n")
	q := "Which lake in Canada has the largest area?"
	resp, err := s.Complete(context.Background(), Request{Prompt: prompts.AnswerFromGraph(q, graph)})
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Hit1(resp.Text, []string{"Lake Superior"}) != 1 {
		t.Errorf("graph superlative = %q", resp.Text)
	}
}

func TestSubjectMatchesFuzzy(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{"China", "china", true},                                   // case fold
		{"Thealeprurk Stadreltorndman", "Thealeprurk Stman", true}, // shared token
		{"Niapren Nornorlstein", "Niapn Nornstein", true},          // char-level
		{"Lake Superior", "Lake Michigan", false},                  // different lakes... shares "Lake"
		{"Alpha Beta", "Gamma Delta", false},                       // nothing shared
	}
	for _, tt := range tests {
		if tt.a == "Lake Superior" {
			// "Lake" is a shared token of two-token names: overlap 0.5
			// matches by design (the model's reading is charitable); skip
			// asserting this ambiguous case.
			continue
		}
		if got := subjectMatches(tt.a, tt.b); got != tt.want {
			t.Errorf("subjectMatches(%q, %q) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestParseRelScoresIgnoresGarbage(t *testing.T) {
	scores := ParseRelScores("rel1\t0.5\nnot a line\nrel2\t0.25\n\t0.1\n")
	if len(scores) != 2 || scores["rel1"] != 0.5 || scores["rel2"] != 0.25 {
		t.Errorf("scores = %v", scores)
	}
}

func TestVerifyHandlesEmptyGold(t *testing.T) {
	s := newSim(t, GPT4Params())
	prompt := prompts.Verify("q?", "", "<a> <r> <x>")
	resp, err := s.Complete(context.Background(), Request{Prompt: prompt})
	if err != nil {
		t.Fatal(err)
	}
	// With no gold evidence the pseudo-graph passes through.
	g, err := kg.ParseGraph(resp.Text)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Contains(kg.NewTriple("a", "r", "x")) {
		t.Errorf("empty-gold verify lost the pseudo-graph: %q", resp.Text)
	}
}

func TestOpenListFromGraphRealisesAll(t *testing.T) {
	s := newSim(t, GPT4Params())
	graph := strings.Join([]string{
		"<Acme Corp> <product or material produced> <The Widget Engine>",
		"<Acme Corp> <product or material produced> <The Gadget Atlas>",
	}, "\n")
	q := "What are the products of Acme Corp?"
	resp, err := s.Complete(context.Background(), Request{Prompt: prompts.AnswerFromGraph(q, graph)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Text, "Widget") || !strings.Contains(resp.Text, "Gadget") {
		t.Errorf("open list answer incomplete: %q", resp.Text)
	}
}
