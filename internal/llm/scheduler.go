package llm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Priority is the admission lane of a request. The LLM is the one truly
// scarce resource of the system, so when the scheduler's concurrency limit
// saturates, interactive traffic (a user waiting on /v1/answer) is admitted
// ahead of queued batch work (benchmarks, /v1/batch sweeps) no matter how
// long the batch queue is.
type Priority int

const (
	// PriorityBatch is the default lane: bulk evaluation, batch endpoints,
	// background work.
	PriorityBatch Priority = iota
	// PriorityInteractive is the preempting lane for latency-sensitive
	// requests.
	PriorityInteractive
)

// String names the lane.
func (p Priority) String() string {
	if p == PriorityInteractive {
		return "interactive"
	}
	return "batch"
}

type priorityKey struct{}

// WithPriority tags every LLM call made under ctx with an admission lane.
func WithPriority(ctx context.Context, p Priority) context.Context {
	return context.WithValue(ctx, priorityKey{}, p)
}

// PriorityFrom reads the lane from ctx; untagged contexts are batch.
func PriorityFrom(ctx context.Context) Priority {
	p, _ := ctx.Value(priorityKey{}).(Priority)
	return p
}

// ErrBudgetExhausted reports that a request's token budget could not cover
// another completion call.
var ErrBudgetExhausted = errors.New("llm: token budget exhausted")

// budgetError wraps ErrBudgetExhausted and names its span class, so stage
// spans report "budget" instead of a generic upstream failure.
type budgetError struct{ err error }

func (e *budgetError) Error() string { return e.err.Error() }

// Unwrap exposes ErrBudgetExhausted for errors.Is.
func (e *budgetError) Unwrap() error { return e.err }

// ErrClass implements the exec engine's span classification hook.
func (e *budgetError) ErrClass() string { return "budget" }

// Budget is a per-request token allowance shared by every LLM call made on
// behalf of one logical query. Attach with WithBudget; a scheduler-wrapped
// client debits each call's prompt and completion tokens and refuses calls
// once the allowance is spent, turning runaway multi-call methods into a
// bounded, reportable failure instead of unbounded cost.
type Budget struct {
	remaining atomic.Int64
	rejected  atomic.Int64
}

// NewBudget allows the given number of tokens (prompt + completion).
func NewBudget(tokens int) *Budget {
	b := &Budget{}
	b.remaining.Store(int64(tokens))
	return b
}

// Remaining reports the unspent allowance (negative once overdrawn by a
// completion that ran longer than estimated).
func (b *Budget) Remaining() int { return int(b.remaining.Load()) }

// Rejected reports how many calls this budget refused.
func (b *Budget) Rejected() int { return int(b.rejected.Load()) }

// take debits n tokens; it reports false — debiting nothing — when the
// remaining allowance cannot cover them.
func (b *Budget) take(n int) bool {
	for {
		cur := b.remaining.Load()
		if cur < int64(n) {
			return false
		}
		if b.remaining.CompareAndSwap(cur, cur-int64(n)) {
			return true
		}
	}
}

// spend debits n tokens unconditionally (actual completion usage may
// overdraw; the next take then refuses).
func (b *Budget) spend(n int) { b.remaining.Add(-int64(n)) }

type budgetKey struct{}

// WithBudget attaches a token budget to every scheduled LLM call under ctx.
func WithBudget(ctx context.Context, b *Budget) context.Context {
	return context.WithValue(ctx, budgetKey{}, b)
}

// budgetFrom reads the budget, nil when none is attached.
func budgetFrom(ctx context.Context) *Budget {
	b, _ := ctx.Value(budgetKey{}).(*Budget)
	return b
}

// Budgeted enforces the context's token budget around a client: a call
// whose estimated prompt tokens the budget cannot cover is refused with
// ErrBudgetExhausted (span/error class "budget"); completion tokens are
// debited after the call, so a budget overdraws by at most one completion.
// Enforcement lives here — independent of the scheduler — so budgets hold
// even when admission control is unbounded. Contexts without a budget
// pass straight through.
func Budgeted(inner Client) Client { return &budgetedClient{inner: inner} }

type budgetedClient struct {
	inner Client
}

// Name implements Client.
func (c *budgetedClient) Name() string { return c.inner.Name() }

// Complete implements Client.
func (c *budgetedClient) Complete(ctx context.Context, req Request) (Response, error) {
	b := budgetFrom(ctx)
	if b == nil {
		return c.inner.Complete(ctx, req)
	}
	if !b.take(estimateTokens(req.Prompt)) {
		b.rejected.Add(1)
		return Response{}, &budgetError{err: fmt.Errorf("llm: completion refused: %w", ErrBudgetExhausted)}
	}
	resp, err := c.inner.Complete(ctx, req)
	if err == nil {
		b.spend(resp.Usage.CompletionTokens)
	}
	return resp, err
}

// SchedulerConfig sizes the shared scheduler.
type SchedulerConfig struct {
	// Concurrency is the maximum number of in-flight Complete calls across
	// every client the scheduler wraps; <= 0 means 16.
	Concurrency int
}

// Scheduler is the shared admission controller for LLM calls: a bounded
// concurrency slot pool with two priority lanes. One Scheduler is shared
// across every model client (Wrap), so the limit covers the process, not
// one backend. Safe for concurrent use.
type Scheduler struct {
	mu          sync.Mutex
	limit       int
	inFlight    int
	interactive []*waiter
	batch       []*waiter

	admitted  [2]atomic.Int64 // by Priority
	queued    atomic.Int64    // admissions that had to wait
	waitNS    atomic.Int64    // cumulative queue time
	maxWaitNS atomic.Int64
}

// waiter is one queued admission.
type waiter struct {
	ready chan struct{}
}

// NewScheduler builds a scheduler.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 16
	}
	return &Scheduler{limit: cfg.Concurrency}
}

// Concurrency returns the slot-pool size.
func (s *Scheduler) Concurrency() int { return s.limit }

// Acquire blocks until a slot is free (interactive requests jump every
// queued batch request) or ctx ends. Callers must Release exactly once per
// successful Acquire.
func (s *Scheduler) Acquire(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	pri := PriorityFrom(ctx)
	s.mu.Lock()
	if s.inFlight < s.limit {
		s.inFlight++
		s.admitted[lane(pri)].Add(1)
		s.mu.Unlock()
		return nil
	}
	w := &waiter{ready: make(chan struct{})}
	if pri == PriorityInteractive {
		s.interactive = append(s.interactive, w)
	} else {
		s.batch = append(s.batch, w)
	}
	s.mu.Unlock()
	start := time.Now()
	select {
	case <-w.ready:
		// Waited counts only granted admissions, at grant time — waiters
		// that cancel before admission would otherwise deflate MeanWaitMS
		// exactly when the operator is diagnosing queueing.
		s.queued.Add(1)
		wait := time.Since(start).Nanoseconds()
		s.waitNS.Add(wait)
		for {
			max := s.maxWaitNS.Load()
			if wait <= max || s.maxWaitNS.CompareAndSwap(max, wait) {
				break
			}
		}
		s.admitted[lane(pri)].Add(1)
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		removed := s.remove(w)
		s.mu.Unlock()
		if !removed {
			// Release raced us and already granted the slot: hand it back so
			// the pool never leaks capacity.
			s.Release()
		}
		return ctx.Err()
	}
}

// Release returns a slot, handing it directly to the longest-waiting
// interactive request if any, else the longest-waiting batch request.
func (s *Scheduler) Release() {
	s.mu.Lock()
	var w *waiter
	if len(s.interactive) > 0 {
		w = s.interactive[0]
		s.interactive = s.interactive[1:]
	} else if len(s.batch) > 0 {
		w = s.batch[0]
		s.batch = s.batch[1:]
	}
	if w != nil {
		// The slot transfers without touching inFlight.
		close(w.ready)
		s.mu.Unlock()
		return
	}
	s.inFlight--
	s.mu.Unlock()
}

// remove drops w from whichever queue holds it; false means it was already
// granted.
func (s *Scheduler) remove(w *waiter) bool {
	for i, q := range s.interactive {
		if q == w {
			s.interactive = append(s.interactive[:i], s.interactive[i+1:]...)
			return true
		}
	}
	for i, q := range s.batch {
		if q == w {
			s.batch = append(s.batch[:i], s.batch[i+1:]...)
			return true
		}
	}
	return false
}

// lane maps a Priority onto its stats slot.
func lane(p Priority) int {
	if p == PriorityInteractive {
		return 1
	}
	return 0
}

// SchedulerStats is a point-in-time scheduler snapshot.
type SchedulerStats struct {
	// Concurrency is the slot-pool size; InFlight the slots in use.
	Concurrency int `json:"concurrency"`
	InFlight    int `json:"in_flight"`
	// QueuedInteractive / QueuedBatch are the current queue depths.
	QueuedInteractive int `json:"queued_interactive"`
	QueuedBatch       int `json:"queued_batch"`
	// AdmittedInteractive / AdmittedBatch count admissions per lane.
	AdmittedInteractive int64 `json:"admitted_interactive"`
	AdmittedBatch       int64 `json:"admitted_batch"`
	// Waited counts admissions that had to queue; MeanWaitMS / MaxWaitMS
	// summarise their queue time. (Budget refusals appear per method as
	// error class "budget" in the serving metrics, not here — budgets are
	// enforced by Budgeted, upstream of admission.)
	Waited     int64   `json:"waited"`
	MeanWaitMS float64 `json:"mean_wait_ms"`
	MaxWaitMS  float64 `json:"max_wait_ms"`
}

// Stats snapshots the scheduler. Safe on nil (all zeros).
func (s *Scheduler) Stats() SchedulerStats {
	if s == nil {
		return SchedulerStats{}
	}
	s.mu.Lock()
	st := SchedulerStats{
		Concurrency:       s.limit,
		InFlight:          s.inFlight,
		QueuedInteractive: len(s.interactive),
		QueuedBatch:       len(s.batch),
	}
	s.mu.Unlock()
	st.AdmittedBatch = s.admitted[0].Load()
	st.AdmittedInteractive = s.admitted[1].Load()
	st.Waited = s.queued.Load()
	if st.Waited > 0 {
		st.MeanWaitMS = float64(s.waitNS.Load()) / float64(st.Waited) / 1e6
	}
	st.MaxWaitMS = float64(s.maxWaitNS.Load()) / 1e6
	return st
}

// Wrap routes a client's Complete calls through the scheduler's admission
// control. A nil scheduler returns the client unwrapped.
func (s *Scheduler) Wrap(inner Client) Client {
	if s == nil {
		return inner
	}
	return &scheduledClient{inner: inner, sched: s}
}

// scheduledClient is one backend behind the shared scheduler.
type scheduledClient struct {
	inner Client
	sched *Scheduler
}

// Name implements Client.
func (c *scheduledClient) Name() string { return c.inner.Name() }

// Complete implements Client: slot acquisition, then the inner call.
func (c *scheduledClient) Complete(ctx context.Context, req Request) (Response, error) {
	if err := c.sched.Acquire(ctx); err != nil {
		return Response{}, err
	}
	defer c.sched.Release()
	return c.inner.Complete(ctx, req)
}

// Counting wraps a client and tallies usage of every successful call —
// the exec engine's per-stage Usage hook. Safe for concurrent use.
type Counting struct {
	Inner Client

	calls            atomic.Int64
	promptTokens     atomic.Int64
	completionTokens atomic.Int64
}

// NewCounting wraps a client.
func NewCounting(inner Client) *Counting { return &Counting{Inner: inner} }

// Name implements Client.
func (c *Counting) Name() string { return c.Inner.Name() }

// Complete implements Client, counting successful calls.
func (c *Counting) Complete(ctx context.Context, req Request) (Response, error) {
	resp, err := c.Inner.Complete(ctx, req)
	if err == nil {
		c.calls.Add(1)
		c.promptTokens.Add(int64(resp.Usage.PromptTokens))
		c.completionTokens.Add(int64(resp.Usage.CompletionTokens))
	}
	return resp, err
}

// Usage snapshots the counters (an exec.UsageFunc).
func (c *Counting) Usage() (calls, promptTokens, completionTokens int) {
	return int(c.calls.Load()), int(c.promptTokens.Load()), int(c.completionTokens.Load())
}
