package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrNotFound reports a record ID the store does not hold.
var ErrNotFound = errors.New("trace: record not found")

// ListOptions filter a List call.
type ListOptions struct {
	// Limit caps the result count; <= 0 returns everything.
	Limit int
	// Method keeps only records of one method (case-insensitive); empty
	// keeps all.
	Method string
}

// StoreStats is a point-in-time store summary.
type StoreStats struct {
	// Records is the number of live, decodable records.
	Records int `json:"records"`
	// Dropped counts undecodable lines found at open (torn tails, corrupt
	// lines) plus records that failed to append.
	Dropped int `json:"dropped"`
	// Bytes is the store's current on-disk size (0 for memory stores).
	Bytes int64 `json:"bytes"`
	// Path locates the backing file ("" for memory stores).
	Path string `json:"path,omitempty"`
}

// Store persists request-trace records. Implementations are safe for
// concurrent use. Append assigns the record's ID (and wall time) and
// returns the stamped record; List returns newest-first.
type Store interface {
	Append(Record) (Record, error)
	Get(id string) (Record, error)
	List(ListOptions) ([]Record, error)
	Stats() StoreStats
	Close() error
}

// --- file store ---

// traceFileName is the single JSONL file a FileStore appends to.
const traceFileName = "traces.jsonl"

// FileStore is the JSONL-backed Store: one append-only file, one record
// per line. Opening an existing store recovers its index by scanning; a
// torn final line (a crash mid-append) is physically truncated away and
// counted, and corrupt interior lines are skipped and counted, so a
// damaged store always reopens with every decodable record intact.
type FileStore struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	end     int64 // append offset
	index   map[string]span
	order   []string // IDs in file order
	seq     int      // last assigned sequence number
	dropped int
	now     func() time.Time // test hook
}

// span locates one record line inside the file.
type span struct {
	off int64
	len int
}

// NewFileStore opens (creating if needed) the JSONL trace store in dir.
func NewFileStore(dir string) (*FileStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("trace: file store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: create store dir: %w", err)
	}
	path := filepath.Join(dir, traceFileName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trace: open store: %w", err)
	}
	s := &FileStore{
		f:     f,
		path:  path,
		index: map[string]span{},
		now:   time.Now,
	}
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// recover scans the file, building the ID index and sequence counter,
// skipping corrupt lines and truncating a torn (unterminated) tail.
func (s *FileStore) recover() error {
	r := bufio.NewReaderSize(s.f, 1<<16)
	var off int64
	for {
		line, err := r.ReadBytes('\n')
		if err != nil && !errors.Is(err, io.EOF) {
			return fmt.Errorf("trace: scan store: %w", err)
		}
		if len(line) > 0 && line[len(line)-1] != '\n' {
			// Torn tail: a crash mid-append left an unterminated line.
			// Truncate it away so the next append starts a clean line.
			s.dropped++
			if terr := s.f.Truncate(off); terr != nil {
				return fmt.Errorf("trace: truncate torn tail: %w", terr)
			}
			break
		}
		if len(line) > 0 {
			rec, derr := Decode(line)
			if derr != nil || rec.ID == "" {
				s.dropped++
			} else {
				s.index[rec.ID] = span{off: off, len: len(line)}
				s.order = append(s.order, rec.ID)
				if n, ok := parseSeq(rec.ID); ok && n > s.seq {
					s.seq = n
				}
			}
			off += int64(len(line))
		}
		if errors.Is(err, io.EOF) {
			break
		}
	}
	s.end = off
	return nil
}

// parseSeq extracts the numeric part of a "t%06d" record ID.
func parseSeq(id string) (int, bool) {
	if !strings.HasPrefix(id, "t") {
		return 0, false
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Append implements Store: the record is stamped with the next sequence ID
// and the current wall time, encoded, and written as one line.
func (s *FileStore) Append(rec Record) (Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return Record{}, fmt.Errorf("trace: store is closed")
	}
	stamped := rec.Stamp(fmt.Sprintf("t%06d", s.seq+1), s.now())
	line, err := Encode(stamped)
	if err != nil {
		s.dropped++
		return Record{}, err
	}
	if _, err := s.f.WriteAt(line, s.end); err != nil {
		s.dropped++
		return Record{}, fmt.Errorf("trace: append record: %w", err)
	}
	s.seq++
	s.index[stamped.ID] = span{off: s.end, len: len(line)}
	s.order = append(s.order, stamped.ID)
	s.end += int64(len(line))
	return stamped, nil
}

// Get implements Store.
func (s *FileStore) Get(id string) (Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.getLocked(id)
}

func (s *FileStore) getLocked(id string) (Record, error) {
	if s.f == nil {
		return Record{}, fmt.Errorf("trace: store is closed")
	}
	sp, ok := s.index[id]
	if !ok {
		return Record{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	buf := make([]byte, sp.len)
	if _, err := s.f.ReadAt(buf, sp.off); err != nil {
		return Record{}, fmt.Errorf("trace: read record %s: %w", id, err)
	}
	return Decode(buf)
}

// List implements Store: newest-first, optionally filtered by method.
func (s *FileStore) List(opts ListOptions) ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Record
	for i := len(s.order) - 1; i >= 0; i-- {
		if opts.Limit > 0 && len(out) >= opts.Limit {
			break
		}
		rec, err := s.getLocked(s.order[i])
		if err != nil {
			return nil, err
		}
		if opts.Method != "" && !strings.EqualFold(opts.Method, rec.Method) {
			continue
		}
		out = append(out, rec)
	}
	return out, nil
}

// Stats implements Store. Safe on a nil store (all zeros).
func (s *FileStore) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Records: len(s.order),
		Dropped: s.dropped,
		Bytes:   s.end,
		Path:    s.path,
	}
}

// Close flushes and closes the backing file; the store refuses further
// appends and reads afterwards.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// --- memory store ---

// MemStore is the in-memory Store: the same contract as FileStore without
// persistence, for tests and embedded recording.
type MemStore struct {
	mu      sync.Mutex
	records []Record
	index   map[string]int
	seq     int
	now     func() time.Time
}

// NewMemStore builds an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{index: map[string]int{}, now: time.Now}
}

// Append implements Store.
func (s *MemStore) Append(rec Record) (Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	stamped := rec.Stamp(fmt.Sprintf("t%06d", s.seq+1), s.now())
	s.seq++
	s.index[stamped.ID] = len(s.records)
	s.records = append(s.records, stamped)
	return stamped, nil
}

// Get implements Store.
func (s *MemStore) Get(id string) (Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.index[id]
	if !ok {
		return Record{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return s.records[i], nil
}

// List implements Store: newest-first.
func (s *MemStore) List(opts ListOptions) ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Record
	for i := len(s.records) - 1; i >= 0; i-- {
		if opts.Limit > 0 && len(out) >= opts.Limit {
			break
		}
		rec := s.records[i]
		if opts.Method != "" && !strings.EqualFold(opts.Method, rec.Method) {
			continue
		}
		out = append(out, rec)
	}
	return out, nil
}

// Stats implements Store.
func (s *MemStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{Records: len(s.records)}
}

// Close implements Store (no-op).
func (s *MemStore) Close() error { return nil }
