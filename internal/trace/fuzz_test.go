package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// codecSeeds cover the JSONL record surface: real encoded records, the
// empty/blank degenerate cases, and the torn/truncated/glued shapes a
// crashed writer or a corrupted file actually produces — mirroring the
// cypher fuzz corpus's panic-hunting intent.
func codecSeeds() [][]byte {
	full, _ := Encode(Record{
		ID: "t000001", Time: "2026-08-08T00:00:00Z",
		Question: "capital of China?", Method: "ours", Model: "GPT-4", KG: "wikidata",
		Anchors: []string{"China"}, Golds: []string{"Beijing"},
		Answer: "Beijing", Epoch: 3, CacheHit: true,
		LLMCalls: 3, PromptTokens: 120, CompletionTokens: 40,
		Gp: []string{"(China, capital, ?)"}, Kept: []KeptSubject{{Subject: "China", Confidence: 0.9, Triples: 4}},
	})
	minimal, _ := Encode(Record{Question: "q", Method: "io"})
	erred, _ := Encode(Record{Question: "q", Method: "cot", Error: "boom", ErrorClass: "upstream"})
	return [][]byte{
		full,
		minimal,
		erred,
		full[:len(full)/2],              // torn mid-record
		full[:len(full)-2],              // truncated before the newline
		bytes.TrimRight(full, "\n"),     // unterminated but complete
		append(full[:len(full)-1], '}'), // trailing garbage
		[]byte(""),
		[]byte("\n"),
		[]byte("   \n"),
		[]byte("{}"),
		[]byte(`{"question": 42}`),
		[]byte(`{"epoch": -1}`),
		[]byte(`{"stages": [{"latency": "x"}]}`),
		[]byte(`{"question":"a"}{"question":"b"}`), // glued records
		[]byte("\xff\xfe\x00"),
		[]byte(`{"question":"` + string(bytes.Repeat([]byte("a"), 1000)) + `"}`),
		[]byte(`null`),
		[]byte(`[]`),
		[]byte(`"just a string"`),
	}
}

// FuzzDecode: arbitrary bytes must either decode into a record that
// re-encodes and decodes back to itself (round-trip), or error cleanly —
// never panic, and never half-populate silently.
func FuzzDecode(f *testing.F) {
	for _, seed := range codecSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		rec, err := Decode(line)
		if err != nil {
			return
		}
		// A decodable line must survive the round trip bit-for-bit at the
		// Record level: Encode then Decode reproduces the same record.
		out, err := Encode(rec)
		if err != nil {
			t.Fatalf("Decode accepted a record Encode refuses: %v", err)
		}
		back, err := Decode(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v\nline: %q", err, out)
		}
		if !reflect.DeepEqual(rec, back) {
			t.Fatalf("round trip diverged:\n got %+v\nwant %+v", back, rec)
		}
	})
}

// TestFuzzSeedsTornError pins the corpus intent outside fuzz mode: every
// torn or structurally broken seed errors rather than yielding a record.
func TestFuzzSeedsTornError(t *testing.T) {
	full, _ := Encode(Record{Question: "q", Method: "ours", Answer: "a"})
	for name, line := range map[string][]byte{
		"torn":     full[:len(full)/2],
		"glued":    []byte(`{"question":"a"}{"question":"b"}`),
		"empty":    []byte(""),
		"non-json": []byte("CORRUPT\n"),
		"array":    []byte(`[]`),
	} {
		if _, err := Decode(line); err == nil {
			t.Errorf("Decode(%s) accepted broken input", name)
		}
	}
	// And the healthy seed keeps decoding.
	if _, err := Decode(full); err != nil {
		t.Errorf("Decode(full) = %v, want ok", err)
	}
}
