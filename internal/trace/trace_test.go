package trace

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/answer"
	"repro/internal/core"
	"repro/internal/core/exec"
	"repro/internal/kg"
)

// sampleResult builds a Result exercising every serialized trace field.
func sampleResult() answer.Result {
	return answer.Result{
		Answer:           "Beijing",
		Method:           "ours",
		Model:            "GPT-4",
		Epoch:            7,
		Elapsed:          1500 * time.Microsecond,
		LLMCalls:         3,
		PromptTokens:     120,
		CompletionTokens: 40,
		Trace: &core.Trace{
			Question:   "capital of China?",
			PseudoCode: "CREATE (c:Country {name: 'China'})",
			PseudoErr:  errors.New("bad cypher"),
			Gp:         kg.NewGraph(kg.NewTriple("China", "capital", "?")),
			Gg:         kg.NewGraph(kg.NewTriple("China", "capital", "Beijing")),
			Gf:         kg.NewGraph(kg.NewTriple("China", "capital", "Beijing")),
			Kept:       []core.SubjectConfidence{{Subject: "China", Confidence: 0.9, Triples: 4}},
			Stages: []exec.Span{
				{Stage: core.StagePseudo, LLMCalls: 1, PromptTokens: 50},
				{Stage: core.StageAnswer, LLMCalls: 1, CompletionTokens: 20},
			},
		},
	}
}

func TestBuildCapturesEverything(t *testing.T) {
	q := answer.Query{Text: "capital of China?", Open: false, Anchors: []string{"China"}}
	res := sampleResult()
	rec := Build(q, res, nil, Meta{KG: "wikidata", CacheHit: true, Shared: true, Golds: []string{"Beijing"}})

	if rec.Question != q.Text || rec.Method != "ours" || rec.Model != "GPT-4" || rec.KG != "wikidata" {
		t.Fatalf("identity fields wrong: %+v", rec)
	}
	if rec.Epoch != 7 || !rec.CacheHit || !rec.Shared {
		t.Fatalf("epoch/cache-hit/shared not captured: epoch=%d hit=%v shared=%v", rec.Epoch, rec.CacheHit, rec.Shared)
	}
	if rec.LLMCalls != 3 || rec.PromptTokens != 120 || rec.CompletionTokens != 40 || rec.ElapsedUS != 1500 {
		t.Fatalf("usage wrong: %+v", rec)
	}
	if len(rec.Stages) != 2 || rec.Stages[0].Stage != core.StagePseudo {
		t.Fatalf("stages wrong: %+v", rec.Stages)
	}
	if len(rec.Gp) != 1 || len(rec.Gg) != 1 || len(rec.Gf) != 1 {
		t.Fatalf("graphs not rendered: %+v", rec)
	}
	if rec.PseudoErr != "bad cypher" || rec.PseudoCode == "" {
		t.Fatalf("pseudo fields wrong: %+v", rec)
	}
	if len(rec.Kept) != 1 || rec.Kept[0].Subject != "China" {
		t.Fatalf("kept wrong: %+v", rec.Kept)
	}
	if len(rec.Golds) != 1 || rec.Golds[0] != "Beijing" {
		t.Fatalf("golds wrong: %+v", rec.Golds)
	}
	if rec.Error != "" || rec.ErrorClass != "" {
		t.Fatalf("unexpected error fields: %+v", rec)
	}
}

func TestBuildError(t *testing.T) {
	q := answer.Query{Text: "q?"}
	res := answer.Result{Method: "cot", Trace: &core.Trace{Stages: []exec.Span{{Stage: "sample", Err: exec.ErrClassDeadline}}}}
	rec := Build(q, res, &answer.InvalidQueryError{Reason: "nope"}, Meta{})
	if rec.Error == "" || rec.ErrorClass != string(answer.ClassInvalidQuery) {
		t.Fatalf("error not classified: %+v", rec)
	}
	if len(rec.Stages) != 1 || rec.Stages[0].Err != exec.ErrClassDeadline {
		t.Fatalf("partial spans lost: %+v", rec.Stages)
	}
}

// TestBuildIsolation is the aliasing contract: a stored record and the
// live result it was built from must be fully independent — mutating one
// never reaches the other, for every serialized trace field.
func TestBuildIsolation(t *testing.T) {
	q := answer.Query{Text: "capital of China?", Anchors: []string{"China"}}
	res := sampleResult()
	rec := Build(q, res, nil, Meta{KG: "wikidata", Golds: []string{"Beijing"}})
	want := Build(q, sampleResult(), nil, Meta{KG: "wikidata", Golds: []string{"Beijing"}})

	// Mutate every mutable reference the live result still holds.
	res.Trace.Gp.Add(kg.NewTriple("poison", "p", "p"))
	res.Trace.Gg.Add(kg.NewTriple("poison", "p", "p"))
	res.Trace.Gf.Add(kg.NewTriple("poison", "p", "p"))
	res.Trace.Kept[0].Subject = "CORRUPTED"
	res.Trace.Stages[0].Stage = "CORRUPTED"
	res.Trace.Stages[1].LLMCalls = 99
	q.Anchors[0] = "CORRUPTED"

	if !reflect.DeepEqual(rec, want) {
		t.Fatalf("mutating the live result changed the record:\n got %+v\nwant %+v", rec, want)
	}

	// And the other direction: corrupting the record must not reach the
	// (re-built) live trace.
	res2 := sampleResult()
	rec2 := Build(q, res2, nil, Meta{})
	rec2.Stages[0].Stage = "CORRUPTED"
	rec2.Kept[0].Subject = "CORRUPTED"
	rec2.Gp[0] = "CORRUPTED"
	if res2.Trace.Stages[0].Stage != core.StagePseudo || res2.Trace.Kept[0].Subject != "China" {
		t.Fatalf("mutating the record reached the live trace: %+v", res2.Trace)
	}
	if res2.Trace.Gp.Triples[0].Subject != "China" {
		t.Fatalf("mutating the record reached the live graph: %+v", res2.Trace.Gp)
	}
}

func TestStamp(t *testing.T) {
	rec := Record{Question: "q"}
	at := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	got := rec.Stamp("t000042", at)
	if got.ID != "t000042" || got.Time != "2026-08-08T12:00:00Z" {
		t.Fatalf("stamp wrong: %+v", got)
	}
	// A zero time stays omitted (deterministic suites).
	if got2 := rec.Stamp("t1", time.Time{}); got2.Time != "" {
		t.Fatalf("zero time should stay empty, got %q", got2.Time)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rec := Build(
		answer.Query{Text: "capital of China?", Open: true, Anchors: []string{"China"}},
		sampleResult(),
		errors.New("upstream boom"),
		Meta{KG: "wikidata", CacheHit: true, Golds: []string{"Beijing"}, Refs: []string{"long ref"}},
	).Stamp("t000001", time.Date(2026, 8, 8, 1, 2, 3, 0, time.UTC))

	line, err := Encode(rec)
	if err != nil {
		t.Fatal(err)
	}
	if line[len(line)-1] != '\n' {
		t.Fatal("encoded line is not newline-terminated")
	}
	back, err := Decode(line)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, back) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, rec)
	}
}

func TestDecodeRejectsTornAndGarbage(t *testing.T) {
	line, err := Encode(Record{Question: "q", Method: "ours"})
	if err != nil {
		t.Fatal(err)
	}
	for name, input := range map[string][]byte{
		"empty":      []byte(""),
		"blank":      []byte("   \n"),
		"torn":       line[:len(line)/2],
		"not-json":   []byte("not json at all\n"),
		"glued":      append(append([]byte{}, line[:len(line)-1]...), []byte(`{"question":"x"}`+"\n")...),
		"wrong-type": []byte(`{"question": 42}` + "\n"),
	} {
		if _, err := Decode(input); err == nil {
			t.Errorf("Decode(%s) = nil error, want failure", name)
		}
	}
}
