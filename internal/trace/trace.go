// Package trace is the durable request-trace subsystem: every answered
// query already produces a rich in-memory trace (per-stage exec.Spans, LLM
// usage, the pipeline's intermediate graphs, the substrate epoch) and this
// package is where those artefacts stop evaporating. A Record is the
// fully-serialized, self-contained form of one request — no pointers into
// live result graphs — and a Store persists Records append-only as JSONL,
// one record per line (the shape of Genkit's file trace store).
//
// Consumers:
//
//   - serve.WithTrace appends a Record for every request flowing through a
//     serving stack (opt-in; cmd/pgakvd's -trace-dir).
//   - internal/replay records evaluation suites as Records-with-golds and
//     re-runs them deterministically against the current binary.
//   - GET /v1/traces[/{id}] exposes the store for inspection.
//
// # Invariants
//
//   - Records alias nothing: Build renders graphs to fresh strings and
//     copies every slice, so a stored Record can never be corrupted by (or
//     corrupt) the live Result it was built from.
//   - Records always serialize the substrate epoch and the cache-hit flag,
//     even when zero/false — replay diffs need them to separate substrate
//     churn and cache effects from genuine method regressions.
//   - The codec round-trips: Decode(Encode(r)) == r for any valid Record,
//     and torn or truncated lines produce an error, never a panic or a
//     silently wrong Record.
package trace

import (
	"time"

	"repro/internal/answer"
	"repro/internal/core/exec"
	"repro/internal/kg"
)

// KeptSubject is one pruned-and-kept subject with its confidence, the
// serialized form of core.SubjectConfidence.
type KeptSubject struct {
	Subject    string  `json:"subject"`
	Confidence float64 `json:"confidence"`
	Triples    int     `json:"triples"`
}

// Record is one request's full trace in self-contained, serializable form.
// String and slice fields are owned by the record outright — nothing
// aliases the live Result graphs it was built from.
type Record struct {
	// ID identifies the record within its store (assigned by Append).
	ID string `json:"id,omitempty"`
	// Time is the wall-clock completion time (RFC3339Nano; empty in
	// deterministic replay suites, where wall time is noise).
	Time string `json:"time,omitempty"`

	// Question / Method / Model / KG identify what was asked of whom.
	Question string `json:"question"`
	Method   string `json:"method"`
	Model    string `json:"model,omitempty"`
	KG       string `json:"kg,omitempty"`
	// Open marks a ROUGE-scored open question; Anchors are gold topic
	// entities for anchor-based methods.
	Open    bool     `json:"open,omitempty"`
	Anchors []string `json:"anchors,omitempty"`
	// Golds / Refs carry the evaluation material when the record was made
	// from a dataset question (replay suites); live traffic has none.
	Golds []string `json:"golds,omitempty"`
	Refs  []string `json:"refs,omitempty"`

	// Answer is the final answer text; Error/ErrorClass the failure.
	Answer     string `json:"answer,omitempty"`
	Error      string `json:"error,omitempty"`
	ErrorClass string `json:"error_class,omitempty"`

	// Epoch is the substrate snapshot that served the request and CacheHit
	// whether the answer came from the serving cache. Both serialize
	// unconditionally: replay diffs separate substrate churn (epoch moved)
	// and cache effects (hits report zero usage) from genuine method
	// regressions, so omitting the zero values would erase the signal.
	Epoch    uint64 `json:"epoch"`
	CacheHit bool   `json:"cache_hit"`
	// Shared marks a singleflight follower that received a leader's run.
	Shared bool `json:"shared,omitempty"`

	// ElapsedUS is the request's wall time in microseconds; LLMCalls and
	// the token counters account every model call made on its behalf.
	ElapsedUS        int64 `json:"elapsed_us,omitempty"`
	LLMCalls         int   `json:"llm_calls"`
	PromptTokens     int   `json:"prompt_tokens"`
	CompletionTokens int   `json:"completion_tokens"`

	// PromptVersions pins the exact prompt versions the request rendered
	// with (prompt name -> version string), so replay can restore them and
	// diffs can attribute a regression to a prompt change.
	PromptVersions map[string]string `json:"prompt_versions,omitempty"`

	// Stages are the run's per-stage spans, in execution order.
	Stages []exec.Span `json:"stages,omitempty"`

	// Pipeline artefacts (pipeline-backed methods only): the extracted
	// Cypher, the decode failure, the three graphs as rendered triples,
	// and the kept subjects with confidences.
	PseudoCode string        `json:"pseudo_code,omitempty"`
	PseudoErr  string        `json:"pseudo_err,omitempty"`
	Gp         []string      `json:"gp,omitempty"`
	Gg         []string      `json:"gg,omitempty"`
	Gf         []string      `json:"gf,omitempty"`
	Kept       []KeptSubject `json:"kept,omitempty"`
}

// Meta carries the serving-context facts a Result does not know about
// itself: the KG source it ran against, what the serving stack did with
// the request, and optional gold material for replay suites.
type Meta struct {
	KG       string
	CacheHit bool
	Shared   bool
	Golds    []string
	Refs     []string
}

// Build renders one answered (or failed) query into a self-contained
// Record. Every slice is copied and every graph rendered to fresh strings:
// mutating the Result (or its trace) afterwards cannot change the record,
// and vice versa. Build does not assign ID or Time — the Store does, at
// Append.
func Build(q answer.Query, res answer.Result, err error, m Meta) Record {
	rec := Record{
		Question:         q.Text,
		Method:           res.Method,
		Model:            res.Model,
		KG:               m.KG,
		Open:             q.Open,
		Anchors:          append([]string(nil), q.Anchors...),
		Golds:            append([]string(nil), m.Golds...),
		Refs:             append([]string(nil), m.Refs...),
		Answer:           res.Answer,
		Epoch:            res.Epoch,
		CacheHit:         m.CacheHit,
		Shared:           m.Shared,
		ElapsedUS:        res.Elapsed.Microseconds(),
		LLMCalls:         res.LLMCalls,
		PromptTokens:     res.PromptTokens,
		CompletionTokens: res.CompletionTokens,
	}
	if rec.Method == "" {
		rec.Method = q.Method
	}
	if len(res.PromptVersions) > 0 {
		rec.PromptVersions = make(map[string]string, len(res.PromptVersions))
		for k, v := range res.PromptVersions {
			rec.PromptVersions[k] = v
		}
	}
	if rec.Model == "" {
		rec.Model = q.Model
	}
	if err != nil {
		rec.Error = err.Error()
		rec.ErrorClass = string(answer.Classify(err))
	}
	if tr := res.Trace; tr != nil {
		rec.Stages = append([]exec.Span(nil), tr.Stages...)
		rec.PseudoCode = tr.PseudoCode
		if tr.PseudoErr != nil {
			rec.PseudoErr = tr.PseudoErr.Error()
		}
		rec.Gp = renderGraph(tr.Gp)
		rec.Gg = renderGraph(tr.Gg)
		rec.Gf = renderGraph(tr.Gf)
		for _, sc := range tr.Kept {
			rec.Kept = append(rec.Kept, KeptSubject{
				Subject: sc.Subject, Confidence: sc.Confidence, Triples: sc.Triples,
			})
		}
	}
	return rec
}

// renderGraph flattens a graph into owned triple strings (nil for a nil or
// empty graph, so empty stays omitted on the wire).
func renderGraph(g *kg.Graph) []string {
	if g == nil || g.Len() == 0 {
		return nil
	}
	out := make([]string, 0, g.Len())
	for _, t := range g.Triples {
		out = append(out, t.String())
	}
	return out
}

// Stamp returns a copy of the record with its identity assigned: the
// store-sequence ID and, when t is non-zero, the RFC3339Nano wall time.
func (r Record) Stamp(id string, t time.Time) Record {
	r.ID = id
	if !t.IsZero() {
		r.Time = t.UTC().Format(time.RFC3339Nano)
	}
	return r
}
