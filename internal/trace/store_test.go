package trace

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// openTestStore builds a FileStore with a fixed clock.
func openTestStore(t *testing.T, dir string) *FileStore {
	t.Helper()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.now = func() time.Time { return time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC) }
	t.Cleanup(func() { s.Close() })
	return s
}

func TestFileStoreAppendGetList(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	a, err := s.Append(Record{Question: "q1", Method: "ours", Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Append(Record{Question: "q2", Method: "rag", Epoch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != "t000001" || b.ID != "t000002" {
		t.Fatalf("sequence IDs wrong: %q %q", a.ID, b.ID)
	}
	if a.Time == "" {
		t.Fatal("append did not stamp wall time")
	}

	got, err := s.Get(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Question != "q1" || got.Epoch != 1 {
		t.Fatalf("get returned wrong record: %+v", got)
	}
	if _, err := s.Get("t999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing ID error = %v, want ErrNotFound", err)
	}

	all, err := s.List(ListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || all[0].Question != "q2" || all[1].Question != "q1" {
		t.Fatalf("list should be newest-first: %+v", all)
	}
	one, err := s.List(ListOptions{Limit: 1})
	if err != nil || len(one) != 1 || one[0].Question != "q2" {
		t.Fatalf("limited list wrong: %+v (%v)", one, err)
	}
	rag, err := s.List(ListOptions{Method: "RAG"})
	if err != nil || len(rag) != 1 || rag[0].Question != "q2" {
		t.Fatalf("method filter wrong: %+v (%v)", rag, err)
	}

	st := s.Stats()
	if st.Records != 2 || st.Dropped != 0 || st.Bytes == 0 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

func TestFileStoreReopenResumesSequence(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	if _, err := s.Append(Record{Question: "q1", Method: "ours"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(Record{Question: "q2", Method: "ours"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTestStore(t, dir)
	c, err := s2.Append(Record{Question: "q3", Method: "ours"})
	if err != nil {
		t.Fatal(err)
	}
	if c.ID != "t000003" {
		t.Fatalf("sequence did not resume: %q", c.ID)
	}
	all, err := s2.List(ListOptions{})
	if err != nil || len(all) != 3 {
		t.Fatalf("reopened store lost records: %d (%v)", len(all), err)
	}
}

func TestFileStoreTornTailTruncatedAndCounted(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	full, err := s.Append(Record{Question: "intact", Method: "ours"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: half a record, no terminating newline.
	path := filepath.Join(dir, traceFileName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"question":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openTestStore(t, dir)
	st := s2.Stats()
	if st.Records != 1 || st.Dropped != 1 {
		t.Fatalf("torn tail not dropped: %+v", st)
	}
	// The tail must be physically gone so the next append is a clean line.
	next, err := s2.Append(Record{Question: "after-crash", Method: "ours"})
	if err != nil {
		t.Fatal(err)
	}
	if next.ID != "t000002" {
		t.Fatalf("sequence wrong after torn-tail recovery: %q", next.ID)
	}
	if _, err := s2.Get(full.ID); err != nil {
		t.Fatalf("intact record lost: %v", err)
	}
	got, err := s2.Get(next.ID)
	if err != nil || got.Question != "after-crash" {
		t.Fatalf("post-recovery append unreadable: %+v (%v)", got, err)
	}
}

func TestFileStoreSkipsCorruptInteriorLine(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	if _, err := s.Append(Record{Question: "q1", Method: "ours"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, traceFileName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A complete-but-corrupt line followed by a good record.
	if _, err := f.WriteString("CORRUPT LINE\n"); err != nil {
		t.Fatal(err)
	}
	line, _ := Encode(Record{ID: "t000009", Question: "q9", Method: "ours"})
	if _, err := f.Write(line); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openTestStore(t, dir)
	st := s2.Stats()
	if st.Records != 2 || st.Dropped != 1 {
		t.Fatalf("corrupt line handling wrong: %+v", st)
	}
	// Sequence resumes past the highest surviving ID.
	next, err := s2.Append(Record{Question: "q10", Method: "ours"})
	if err != nil || next.ID != "t000010" {
		t.Fatalf("sequence wrong: %q (%v)", next.ID, err)
	}
}

func TestFileStoreConcurrentAppendAndRead(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if _, err := s.Append(Record{Question: "q", Method: "ours"}); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.List(ListOptions{Limit: 5}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.Records != 160 || st.Dropped != 0 {
		t.Fatalf("concurrent appends lost records: %+v", st)
	}
}

func TestMemStoreContract(t *testing.T) {
	s := NewMemStore()
	a, err := s.Append(Record{Question: "q1", Method: "ours"})
	if err != nil || a.ID != "t000001" {
		t.Fatalf("append: %+v (%v)", a, err)
	}
	if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	got, err := s.Get(a.ID)
	if err != nil || got.Question != "q1" {
		t.Fatalf("get: %+v (%v)", got, err)
	}
	if st := s.Stats(); st.Records != 1 {
		t.Fatalf("stats: %+v", st)
	}
}
