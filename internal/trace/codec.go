package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// The JSONL codec: one Record per line. Encode produces exactly one
// newline-terminated line (json.Marshal escapes control characters, so a
// record can never span lines); Decode parses one line back, rejecting
// torn or truncated records with an error instead of a partial Record.

// Encode marshals a record as a single newline-terminated JSONL line.
func Encode(r Record) ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("trace: encode record: %w", err)
	}
	return append(b, '\n'), nil
}

// Decode parses one JSONL line into a Record. The line may carry its
// trailing newline. A torn line (truncated JSON), trailing garbage after
// the record, or a blank line all error cleanly.
func Decode(line []byte) (Record, error) {
	line = bytes.TrimRight(line, "\r\n")
	if len(bytes.TrimSpace(line)) == 0 {
		return Record{}, fmt.Errorf("trace: decode: empty line")
	}
	dec := json.NewDecoder(bytes.NewReader(line))
	var r Record
	if err := dec.Decode(&r); err != nil {
		return Record{}, fmt.Errorf("trace: decode record: %w", err)
	}
	// Anything after the object means the line glued two records together
	// (a torn write followed by an append): refuse rather than silently
	// dropping the tail.
	if dec.More() {
		return Record{}, fmt.Errorf("trace: decode record: trailing data after record")
	}
	return r, nil
}
