// Package loadgen drives a pgakvd answer endpoint with traffic-realistic
// load: a pool of client identities issuing /v1/answer requests whose
// question popularity follows a zipfian distribution (a few hot questions
// dominate, a long tail of cold ones — the shape that exercises the
// answer cache and singleflight the way production traffic would).
//
// Two arrival models are supported. Closed-loop: each of N clients keeps
// exactly one request outstanding, so offered load self-limits to server
// capacity — the model for saturation and overload tests. Open-loop: a
// fixed arrival rate independent of server latency, so queues grow when
// the server falls behind — the model for measuring latency under a
// target throughput.
//
// Accepted (2xx) and refused (429) latencies are summarised separately:
// the whole point of load shedding is that refusals are much cheaper
// than service, and folding the two into one distribution would hide it.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config shapes one load-generation run.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Method/Model/KG select the answerer; empty values use the server
	// defaults ("ours", gpt3.5, wikidata).
	Method string
	Model  string
	KG     string
	// Questions is the query pool sampled with zipfian popularity;
	// index 0 is the hottest question.
	Questions []string
	// ZipfS is the zipf skew exponent (> 1; larger = hotter head).
	// Zero picks the default 1.3.
	ZipfS float64
	// Clients is the number of concurrent workers (closed loop) or client
	// identities (both modes). Zero picks 4.
	Clients int
	// Identities, when > 0, spreads requests across this many X-API-Key
	// values so per-client rate limits see distinct buckets; 0 sends no
	// key (all traffic is one identity per source address).
	Identities int
	// Requests is the closed-loop total request count.
	Requests int
	// RatePerSec > 0 switches to open-loop arrivals at this aggregate
	// rate for Duration.
	RatePerSec float64
	// Duration bounds an open-loop run.
	Duration time.Duration
	// Timeout caps each request (0 = 30s).
	Timeout time.Duration
	// Seed makes the zipf sampling deterministic.
	Seed int64
	// HTTPClient overrides the transport (tests inject the httptest
	// client); nil uses a pooled default.
	HTTPClient *http.Client
	// SplitByNode additionally buckets accepted responses by the
	// X-Served-By header — the node a pgakvlb router proxied each request
	// to — so a replicated topology's latency populations can be compared
	// per backing node. Responses without the header land under "origin".
	SplitByNode bool
}

// Result is one run's client-side account.
type Result struct {
	Mode      string  `json:"mode"` // "closed" or "open"
	Clients   int     `json:"clients"`
	ZipfS     float64 `json:"zipf_s"`
	Issued    int64   `json:"issued"`
	OK        int64   `json:"ok"`
	CacheHits int64   `json:"cache_hits"`
	// Rejected counts 429s — shed or rate-limited before any pipeline
	// work, by the admission contract.
	Rejected int64 `json:"rejected"`
	// Errors counts transport failures and non-2xx/non-429 statuses.
	Errors  int64         `json:"errors"`
	Elapsed time.Duration `json:"elapsed"`
	// Accepted and Refused summarise the two latency populations
	// separately; shedding is working when Refused sits far below
	// Accepted.
	Accepted LatencySummary `json:"accepted"`
	Refused  LatencySummary `json:"refused"`
	// Nodes splits the accepted population by the node that served each
	// response (Config.SplitByNode); nil otherwise.
	Nodes map[string]NodeSummary `json:"nodes,omitempty"`
}

// NodeSummary is one backing node's share of a routed run.
type NodeSummary struct {
	OK        int64          `json:"ok"`
	CacheHits int64          `json:"cache_hits"`
	Latency   LatencySummary `json:"latency"`
}

// AchievedRPS is the completed-request throughput.
func (r Result) AchievedRPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Issued) / r.Elapsed.Seconds()
}

// LatencySummary is a client-observed latency distribution.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// sampleSet accumulates latency samples for one population.
type sampleSet struct {
	mu sync.Mutex
	ms []float64
}

func (s *sampleSet) add(d time.Duration) {
	s.mu.Lock()
	s.ms = append(s.ms, float64(d)/float64(time.Millisecond))
	s.mu.Unlock()
}

func (s *sampleSet) summary() LatencySummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := LatencySummary{Count: int64(len(s.ms))}
	if len(s.ms) == 0 {
		return out
	}
	sorted := append([]float64(nil), s.ms...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	out.MeanMS = sum / float64(len(sorted))
	out.P50MS = percentile(sorted, 0.50)
	out.P95MS = percentile(sorted, 0.95)
	out.P99MS = percentile(sorted, 0.99)
	return out
}

// percentile reads the p-quantile from an ascending slice
// (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Run executes the configured load against the server. The context
// cancels the whole run early; in-flight requests are abandoned.
func Run(ctx context.Context, cfg Config) (Result, error) {
	if cfg.BaseURL == "" {
		return Result{}, fmt.Errorf("loadgen: BaseURL is required")
	}
	if len(cfg.Questions) == 0 {
		return Result{}, fmt.Errorf("loadgen: question pool is empty")
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.3
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	httpc := cfg.HTTPClient
	if httpc == nil {
		httpc = &http.Client{}
	}
	g := &generator{cfg: cfg, httpc: httpc}
	start := time.Now()
	var err error
	if cfg.RatePerSec > 0 {
		err = g.runOpen(ctx)
	} else {
		err = g.runClosed(ctx)
	}
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Mode:      "closed",
		Clients:   cfg.Clients,
		ZipfS:     cfg.ZipfS,
		Issued:    g.issued.Load(),
		OK:        g.ok.Load(),
		CacheHits: g.cacheHits.Load(),
		Rejected:  g.rejected.Load(),
		Errors:    g.errors.Load(),
		Elapsed:   time.Since(start),
		Accepted:  g.accepted.summary(),
		Refused:   g.refused.summary(),
		Nodes:     g.nodeSummaries(),
	}
	if cfg.RatePerSec > 0 {
		res.Mode = "open"
	}
	return res, nil
}

type generator struct {
	cfg   Config
	httpc *http.Client

	issued    atomic.Int64
	ok        atomic.Int64
	cacheHits atomic.Int64
	rejected  atomic.Int64
	errors    atomic.Int64
	accepted  sampleSet
	refused   sampleSet

	nodeMu sync.Mutex
	nodes  map[string]*nodeAccount
}

// nodeAccount accumulates one backing node's accepted responses.
type nodeAccount struct {
	ok        int64
	cacheHits int64
	samples   sampleSet
}

// recordNode buckets one accepted response under the node that served
// it (only called with SplitByNode on).
func (g *generator) recordNode(node string, elapsed time.Duration, cacheHit bool) {
	if node == "" {
		node = "origin"
	}
	g.nodeMu.Lock()
	if g.nodes == nil {
		g.nodes = make(map[string]*nodeAccount)
	}
	acct := g.nodes[node]
	if acct == nil {
		acct = &nodeAccount{}
		g.nodes[node] = acct
	}
	acct.ok++
	if cacheHit {
		acct.cacheHits++
	}
	g.nodeMu.Unlock()
	acct.samples.add(elapsed)
}

func (g *generator) nodeSummaries() map[string]NodeSummary {
	g.nodeMu.Lock()
	defer g.nodeMu.Unlock()
	if g.nodes == nil {
		return nil
	}
	out := make(map[string]NodeSummary, len(g.nodes))
	for node, acct := range g.nodes {
		out[node] = NodeSummary{OK: acct.ok, CacheHits: acct.cacheHits, Latency: acct.samples.summary()}
	}
	return out
}

// runClosed keeps cfg.Clients workers each with one request outstanding
// until cfg.Requests have been issued.
func (g *generator) runClosed(ctx context.Context) error {
	if g.cfg.Requests <= 0 {
		return fmt.Errorf("loadgen: closed loop needs Requests > 0 (or set RatePerSec for open loop)")
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < g.cfg.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(g.cfg.Seed + int64(w)*7919))
			zipf := g.newZipf(rng)
			for {
				n := next.Add(1)
				if n > int64(g.cfg.Requests) || ctx.Err() != nil {
					return
				}
				g.issue(ctx, w, rng, zipf)
			}
		}(w)
	}
	wg.Wait()
	return nil
}

// runOpen dispatches arrivals at the configured aggregate rate for the
// configured duration, regardless of how fast the server responds.
func (g *generator) runOpen(ctx context.Context) error {
	if g.cfg.Duration <= 0 {
		return fmt.Errorf("loadgen: open loop needs Duration > 0")
	}
	interval := time.Duration(float64(time.Second) / g.cfg.RatePerSec)
	if interval <= 0 {
		interval = time.Microsecond
	}
	rng := rand.New(rand.NewSource(g.cfg.Seed))
	zipf := g.newZipf(rng)
	var mu sync.Mutex // guards rng/zipf shared across arrival goroutines
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.NewTimer(g.cfg.Duration)
	defer deadline.Stop()
	var wg sync.WaitGroup
	arrival := 0
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			return nil
		case <-deadline.C:
			wg.Wait()
			return nil
		case <-ticker.C:
			arrival++
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				mu.Lock()
				q := g.cfg.Questions[int(zipf.Uint64())%len(g.cfg.Questions)]
				mu.Unlock()
				g.send(ctx, w, q)
			}(arrival)
		}
	}
}

func (g *generator) newZipf(rng *rand.Rand) *rand.Zipf {
	return rand.NewZipf(rng, g.cfg.ZipfS, 1, uint64(len(g.cfg.Questions)-1))
}

func (g *generator) issue(ctx context.Context, w int, rng *rand.Rand, zipf *rand.Zipf) {
	q := g.cfg.Questions[int(zipf.Uint64())%len(g.cfg.Questions)]
	g.send(ctx, w, q)
}

// send issues one /v1/answer request and accounts for its outcome.
func (g *generator) send(ctx context.Context, w int, question string) {
	body, _ := json.Marshal(map[string]any{
		"question": question,
		"method":   g.cfg.Method,
		"model":    g.cfg.Model,
		"kg":       g.cfg.KG,
	})
	rctx, cancel := context.WithTimeout(ctx, g.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, g.cfg.BaseURL+"/v1/answer", bytes.NewReader(body))
	if err != nil {
		g.errors.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if g.cfg.Identities > 0 {
		req.Header.Set("X-API-Key", fmt.Sprintf("loadgen-%d", w%g.cfg.Identities))
	}
	g.issued.Add(1)
	start := time.Now()
	resp, err := g.httpc.Do(req)
	elapsed := time.Since(start)
	if err != nil {
		g.errors.Add(1)
		return
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		if resp.Header.Get("Retry-After") == "" {
			// A 429 without Retry-After violates the admission contract;
			// count it as an error so tests and operators see it.
			g.errors.Add(1)
			return
		}
		g.rejected.Add(1)
		g.refused.add(elapsed)
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		g.ok.Add(1)
		g.accepted.add(elapsed)
		hit := resp.Header.Get("X-Cache") == "hit"
		if hit {
			g.cacheHits.Add(1)
		}
		if g.cfg.SplitByNode {
			g.recordNode(resp.Header.Get("X-Served-By"), elapsed, hit)
		}
	default:
		g.errors.Add(1)
	}
}
