package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/answer"
	"repro/internal/core"
	"repro/internal/core/exec"
	"repro/internal/kg"
	"repro/internal/vecstore"
)

// TestCacheGetReturnsIsolatedCopy is the aliasing regression: a caller
// mutating a cached Result's trace — any graph, hit list, candidate or
// span slice, all of which the trace store now serializes — must never
// corrupt the entry other callers will receive.
func TestCacheGetReturnsIsolatedCopy(t *testing.T) {
	c := NewCache(CacheConfig{Size: 4})
	orig := answer.Result{
		Answer: "a",
		Trace: &core.Trace{
			Gp:         kg.NewGraph(kg.NewTriple("p", "r", "o")),
			Gg:         kg.NewGraph(kg.NewTriple("g", "r", "o")),
			Gf:         kg.NewGraph(kg.NewTriple("s", "r", "o")),
			Gt:         []vecstore.Hit{{Triple: kg.NewTriple("s", "r", "o"), Score: 0.5}},
			Candidates: []core.SubjectConfidence{{Subject: "c", Confidence: 0.4}},
			Kept:       []core.SubjectConfidence{{Subject: "s", Confidence: 1}},
			Stages: []exec.Span{
				{Stage: core.StagePseudo, LLMCalls: 1, Latency: time.Millisecond},
				{Stage: core.StageAnswer, LLMCalls: 1},
			},
		},
	}
	c.Put("k", orig)

	// Mutating the producer's copy after Put must not reach the cache.
	orig.Trace.Gp.Add(kg.NewTriple("post-put", "p", "p"))
	orig.Trace.Gg.Add(kg.NewTriple("post-put", "p", "p"))
	orig.Trace.Gf.Add(kg.NewTriple("post-put", "p", "p"))
	orig.Trace.Gt[0].Score = -1
	orig.Trace.Candidates[0].Subject = "CORRUPTED"
	orig.Trace.Kept[0].Subject = "CORRUPTED"
	orig.Trace.Stages[0].Stage = "CORRUPTED"
	orig.Trace.Stages[1].LLMCalls = 99

	first, ok := c.Get("k")
	if !ok {
		t.Fatal("miss")
	}
	if first.Trace.Gp.Len() != 1 || first.Trace.Gg.Len() != 1 || first.Trace.Gf.Len() != 1 {
		t.Fatalf("producer graph mutation reached the cache: %+v", first.Trace)
	}
	if first.Trace.Gt[0].Score != 0.5 || first.Trace.Candidates[0].Subject != "c" || first.Trace.Kept[0].Subject != "s" {
		t.Fatalf("producer mutation reached the cache: %+v", first.Trace)
	}
	if first.Trace.Stages[0].Stage != core.StagePseudo || first.Trace.Stages[1].LLMCalls != 1 {
		t.Fatalf("producer span mutation reached the cache: %+v", first.Trace.Stages)
	}

	// Mutating one hitter's copy must not reach the next hitter.
	first.Trace.Gp.Add(kg.NewTriple("hit-poison", "p", "p"))
	first.Trace.Gg.Add(kg.NewTriple("hit-poison", "p", "p"))
	first.Trace.Gf.Add(kg.NewTriple("hit-poison", "p", "p"))
	first.Trace.Gt = append(first.Trace.Gt, vecstore.Hit{})
	first.Trace.Candidates[0].Confidence = -1
	first.Trace.Kept[0].Confidence = -1
	first.Trace.Stages[0].Latency = time.Hour
	first.Trace.Stages = append(first.Trace.Stages, exec.Span{Stage: "bogus"})

	second, ok := c.Get("k")
	if !ok {
		t.Fatal("miss")
	}
	if second.Trace.Gp.Len() != 1 || second.Trace.Gg.Len() != 1 || second.Trace.Gf.Len() != 1 {
		t.Fatalf("hitter graph mutation reached the cache: %+v", second.Trace)
	}
	if len(second.Trace.Gt) != 1 || second.Trace.Candidates[0].Confidence != 0.4 || second.Trace.Kept[0].Confidence != 1 {
		t.Fatalf("hitter mutation reached the cache: %+v", second.Trace)
	}
	if len(second.Trace.Stages) != 2 || second.Trace.Stages[0].Latency != time.Millisecond {
		t.Fatalf("hitter span mutation reached the cache: %+v", second.Trace.Stages)
	}
}

// TestSingleflightFollowerTraceIsolated: followers joining a leader's run
// must each receive their own trace copy — a shared pointer would let any
// caller corrupt the others' results concurrently.
func TestSingleflightFollowerTraceIsolated(t *testing.T) {
	block := make(chan struct{})
	traced := answerFunc{name: "traced", fn: func(ctx context.Context, q answer.Query) (answer.Result, error) {
		select {
		case <-block:
		case <-ctx.Done():
			return answer.Result{}, ctx.Err()
		}
		return answer.Result{
			Answer: "a",
			Trace:  &core.Trace{Gf: kg.NewGraph(kg.NewTriple("s", "r", "o"))},
		}, nil
	}}
	group := NewGroup()
	stack := Stack(traced, WithSingleflight(group, nil))
	q := answer.Query{Text: "q?"}

	const n = 4
	var wg sync.WaitGroup
	results := make([]answer.Result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = stack.Answer(context.Background(), q)
		}(i)
	}
	for group.Stats().Runs < 1 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(block)
	wg.Wait()

	if group.Stats().Shared == 0 {
		t.Skip("no followers joined; nothing to check")
	}
	seen := map[*core.Trace]bool{}
	for i, res := range results {
		if res.Trace == nil {
			t.Fatalf("caller %d lost its trace", i)
		}
		if seen[res.Trace] {
			t.Fatal("two callers share one trace pointer")
		}
		seen[res.Trace] = true
		res.Trace.Gf.Add(kg.NewTriple("poison", "p", "p"))
	}
	for i, res := range results {
		if res.Trace.Gf.Len() != 2 {
			t.Fatalf("caller %d's trace was mutated by another caller: %d triples", i, res.Trace.Gf.Len())
		}
	}
}

// TestDynamicScopeInvalidates: bumping the value a ScopeFunc returns (the
// substrate epoch) must make previously-cached answers unreachable — the
// hot-swap cache-invalidation guarantee.
func TestDynamicScopeInvalidates(t *testing.T) {
	var epoch atomic.Uint64
	epoch.Store(1)
	scope := func() string { return "m/kg@" + string(rune('0'+epoch.Load())) }

	stub := &stubAnswerer{name: "stub"}
	cache := NewCache(CacheConfig{Size: 8})
	stack := Stack(stub, WithCache(cache, scope))
	q := answer.Query{Text: "who is X?"}

	if _, err := stack.Answer(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	ctx, info := Attach(context.Background())
	if _, err := stack.Answer(ctx, q); err != nil {
		t.Fatal(err)
	}
	if !info.CacheHit {
		t.Fatal("same scope should hit")
	}

	epoch.Store(2) // the swap
	ctx2, info2 := Attach(context.Background())
	if _, err := stack.Answer(ctx2, q); err != nil {
		t.Fatal(err)
	}
	if info2.CacheHit {
		t.Fatal("stale entry served across an epoch bump")
	}
	if stub.runs.Load() != 2 {
		t.Fatalf("underlying runs = %d, want 2 (one per epoch)", stub.runs.Load())
	}
}
