package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/answer"
)

// TestCacheConcurrentHammer drives the cache from 32 goroutines mixing
// gets, puts and stats over an overlapping key space; run with -race.
func TestCacheConcurrentHammer(t *testing.T) {
	cache := NewCache(CacheConfig{Size: 64})
	const goroutines = 32
	const iters = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("key-%d", (g*iters+i)%100)
				if res, ok := cache.Get(key); ok {
					if res.Answer == "" {
						t.Errorf("hit with empty result for %s", key)
						return
					}
				} else {
					cache.Put(key, answer.Result{Answer: "v:" + key})
				}
				if i%50 == 0 {
					_ = cache.Stats()
					_ = cache.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := cache.Len(); got > 64 {
		t.Fatalf("cache grew past capacity: %d", got)
	}
	s := cache.Stats()
	if s.Hits+s.Misses != goroutines*iters {
		t.Fatalf("hits %d + misses %d != %d lookups", s.Hits, s.Misses, goroutines*iters)
	}
}

// TestFullStackConcurrentHammer drives the complete metrics + cache +
// singleflight stack from 32 goroutines over a small query space; run with
// -race. Every caller must get the right answer for its own query.
func TestFullStackConcurrentHammer(t *testing.T) {
	stub := &stubAnswerer{name: "stub"}
	collector := NewCollector()
	cache := NewCache(CacheConfig{Size: 16})
	group := NewGroup()
	stack := Stack(stub, WithMetrics(collector), WithCache(cache, nil), WithSingleflight(group, nil))

	const goroutines = 32
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				text := fmt.Sprintf("question %d?", (g+i)%8)
				ctx, _ := Attach(context.Background())
				res, err := stack.Answer(ctx, answer.Query{Text: text})
				if err != nil {
					t.Error(err)
					return
				}
				if want := "answer to " + text; res.Answer != want {
					t.Errorf("got %q want %q", res.Answer, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	snaps := collector.Snapshot()
	if len(snaps) != 1 || snaps[0].Count != goroutines*iters {
		t.Fatalf("metrics count = %+v, want %d requests", snaps, goroutines*iters)
	}
	// With 8 distinct queries and a 16-entry cache, the underlying method
	// runs only a handful of times (first miss per query, possibly a few
	// singleflight leaders racing the first fill).
	if runs := stub.runs.Load(); runs > 8*4 {
		t.Fatalf("underlying runs = %d — cache/singleflight not deduplicating", runs)
	}
}
