// Package serve is the serving-scale middleware layer over the unified
// answer API: composable Answerer wrappers that production front doors
// (cmd/pgakvd) and the bench harness stack between callers and the
// underlying method.
//
//	stack := serve.Stack(ans,
//	    serve.WithMetrics(collector),    // outermost: sees every request
//	    serve.WithCache(cache),          // answers repeats from memory
//	    serve.WithSingleflight(group),   // N concurrent identical queries -> 1 run
//	)
//
// The three middlewares are independent; any subset composes. Request
// introspection (did the cache hit? was the run shared?) flows through an
// Info attached to the context with Attach, so HTTP handlers can emit
// X-Cache headers and metrics can attribute LLM cost to real runs only.
//
// # Invariants
//
//   - Epoch-scoped keys: cache and singleflight keys live under a caller
//     scope (ScopeFunc) that includes the substrate epoch alongside the
//     model/KG binding. A substrate hot swap moves the scope, making
//     every pre-swap answer unreachable — invalidation by construction,
//     not by expiry. Because durable substrates never regress their epoch
//     across a restart, the guarantee holds across process lifetimes too.
//   - Errors are never cached, and a singleflight follower whose own
//     context is still live retries past a cancelled or panicking leader
//     instead of inheriting its failure.
//   - Cached results are isolated: Put and Get deep-copy the Result's
//     Trace (graphs and stage spans), so no caller can mutate an entry
//     another caller will receive.
package serve

import (
	"context"

	"repro/internal/answer"
)

// Middleware wraps an Answerer with one serving concern.
type Middleware func(answer.Answerer) answer.Answerer

// Stack applies middlewares so that the first listed is the outermost
// layer — Stack(a, m1, m2) answers through m1(m2(a)).
func Stack(ans answer.Answerer, mws ...Middleware) answer.Answerer {
	for i := len(mws) - 1; i >= 0; i-- {
		if mws[i] != nil {
			ans = mws[i](ans)
		}
	}
	return ans
}

// Info reports what the serving stack did with one request. Attach it to
// the context before calling Answer; the middlewares fill it in.
type Info struct {
	// CacheHit is true when the answer came from the cache.
	CacheHit bool
	// CacheUsed is true when a cache middleware saw the request at all
	// (distinguishes "miss" from "no cache configured").
	CacheUsed bool
	// Shared is true when singleflight coalesced this request onto
	// another in-flight identical run.
	Shared bool
}

type infoKey struct{}

// Attach returns a context carrying a fresh Info for one request.
func Attach(ctx context.Context) (context.Context, *Info) {
	info := &Info{}
	return context.WithValue(ctx, infoKey{}, info), info
}

// infoFrom returns the request's Info, or nil when none was attached.
func infoFrom(ctx context.Context) *Info {
	info, _ := ctx.Value(infoKey{}).(*Info)
	return info
}

// named wraps an inner Answerer preserving its Name; middlewares embed it.
type named struct{ inner answer.Answerer }

func (n named) Name() string { return n.inner.Name() }

// ScopeFunc names the namespace a request's cache/singleflight key lives
// in, evaluated per request. Scopes carry everything the query itself
// cannot express — callers sharing one Cache or Group across answerers
// bound to different substrates (KG source, model binding) MUST use a
// distinct scope per binding or identical questions will collide across
// them. Dynamic components belong here too: folding the substrate epoch
// into the scope makes a hot swap invalidate every prior entry at once,
// because post-swap lookups key into a namespace no stale answer was ever
// written to.
type ScopeFunc func() string

// StaticScope returns a ScopeFunc for a fixed namespace.
func StaticScope(s string) ScopeFunc { return func() string { return s } }

// scopeOrEmpty normalises a nil ScopeFunc to the empty namespace.
func scopeOrEmpty(scope ScopeFunc) ScopeFunc {
	if scope == nil {
		return StaticScope("")
	}
	return scope
}

// key computes the cache/singleflight identity for a query against the
// wrapped method. The query's own labels win so per-request model routing
// stays distinct; the bound method name is the fallback.
func key(ans answer.Answerer, scope string, q answer.Query) string {
	method := q.Method
	if method == "" {
		method = ans.Name()
	}
	return scope + "\x02" + answer.QueryKey(method, q.Model, q)
}
