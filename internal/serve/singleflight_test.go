package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/answer"
)

// TestSingleflightCoalesces is the dedup acceptance proof: N concurrent
// identical queries trigger exactly one underlying pipeline run and all
// receive its answer.
func TestSingleflightCoalesces(t *testing.T) {
	const n = 16
	stub := &stubAnswerer{name: "stub", block: make(chan struct{})}
	group := NewGroup()
	var entered atomic.Int64
	counting := func(inner answer.Answerer) answer.Answerer {
		return answerFunc{name: inner.Name(), fn: func(ctx context.Context, q answer.Query) (answer.Result, error) {
			entered.Add(1)
			return inner.Answer(ctx, q)
		}}
	}
	stack := Stack(stub, counting, WithSingleflight(group, nil))
	q := answer.Query{Text: "Where was X born?"}

	var wg sync.WaitGroup
	results := make([]answer.Result, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = stack.Answer(context.Background(), q)
		}(i)
	}
	// Let every caller reach the singleflight layer and pile up behind the
	// blocked leader before releasing it.
	for entered.Load() < n {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(stub.block)
	wg.Wait()

	if got := stub.runs.Load(); got != 1 {
		t.Fatalf("underlying runs = %d, want exactly 1", got)
	}
	totalCalls := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i].Answer != results[0].Answer {
			t.Fatalf("caller %d got %q, caller 0 got %q", i, results[i].Answer, results[0].Answer)
		}
		totalCalls += results[i].LLMCalls
	}
	// Followers report zero usage — summing cost across all N responses
	// must equal the single real run's cost (the stub reports 3 calls).
	if totalCalls != 3 {
		t.Fatalf("summed LLM calls = %d across %d callers, want 3 (leader only)", totalCalls, n)
	}
	if s := group.Stats(); s.Runs != 1 || s.Shared != n-1 {
		t.Fatalf("group stats %+v, want runs=1 shared=%d", s, n-1)
	}
}

func TestSingleflightDistinctKeysRunIndependently(t *testing.T) {
	stub := &stubAnswerer{name: "stub"}
	stack := Stack(stub, WithSingleflight(NewGroup(), nil))
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := answer.Query{Text: "question " + string(rune('a'+i))}
			if _, err := stack.Answer(context.Background(), q); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := stub.runs.Load(); got != 4 {
		t.Fatalf("distinct queries: runs = %d, want 4", got)
	}
}

// TestSingleflightFollowerSurvivesLeaderCancel: a follower whose own
// context is live must not inherit the leader's cancellation — it retries
// with its own run.
func TestSingleflightFollowerSurvivesLeaderCancel(t *testing.T) {
	stub := &stubAnswerer{name: "stub", block: make(chan struct{})}
	group := NewGroup()
	stack := Stack(stub, WithSingleflight(group, nil))
	q := answer.Query{Text: "q?"}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, err := stack.Answer(leaderCtx, q)
		leaderDone <- err
	}()
	for stub.runs.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	followerDone := make(chan error, 1)
	go func() {
		_, err := stack.Answer(context.Background(), q)
		followerDone <- err
	}()
	// Give the follower time to join the leader's flight, then cancel the
	// leader. The follower's retry lap will be a fresh (unblocked after
	// close) run.
	time.Sleep(10 * time.Millisecond)
	cancelLeader()
	if err := <-leaderDone; err == nil {
		t.Fatal("leader should fail with its cancellation")
	}
	close(stub.block)
	if err := <-followerDone; err != nil {
		t.Fatalf("follower with a live context should succeed, got %v", err)
	}
	if got := stub.runs.Load(); got != 2 {
		t.Fatalf("runs = %d, want 2 (cancelled leader + follower retry)", got)
	}
}

func TestSingleflightFollowerOwnCancel(t *testing.T) {
	stub := &stubAnswerer{name: "stub", block: make(chan struct{})}
	stack := Stack(stub, WithSingleflight(NewGroup(), nil))
	q := answer.Query{Text: "q?"}

	go stack.Answer(context.Background(), q) //nolint:errcheck — released below
	for stub.runs.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := stack.Answer(ctx, q); err == nil {
		t.Fatal("cancelled follower should fail immediately")
	}
	close(stub.block)
}

func TestGroupNilStats(t *testing.T) {
	var g *Group
	if s := g.Stats(); s != (GroupStats{}) {
		t.Fatalf("nil group stats %+v", s)
	}
}

// panickyAnswerer panics on its first run, succeeds afterwards.
type panickyAnswerer struct {
	stub  stubAnswerer
	first atomic.Bool
}

func (p *panickyAnswerer) Name() string { return "panicky" }
func (p *panickyAnswerer) Answer(ctx context.Context, q answer.Query) (answer.Result, error) {
	if p.first.CompareAndSwap(false, true) {
		panic("induced")
	}
	return p.stub.Answer(ctx, q)
}

// TestSingleflightLeaderPanicDoesNotPoisonKey: a panicking leader must not
// leak its flight — followers get an error (or a clean retry result), and
// the key works again afterwards.
func TestSingleflightLeaderPanicDoesNotPoisonKey(t *testing.T) {
	ans := &panickyAnswerer{stub: stubAnswerer{name: "panicky"}}
	stack := Stack(ans, WithSingleflight(NewGroup(), nil))
	q := answer.Query{Text: "q?"}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("leader's panic should propagate")
			}
		}()
		stack.Answer(context.Background(), q) //nolint:errcheck — panics
	}()

	// The key must not be poisoned: the next identical query runs fresh
	// and succeeds instead of hanging on a leaked flight.
	done := make(chan error, 1)
	go func() {
		_, err := stack.Answer(context.Background(), q)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("post-panic query failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-panic query hung: flight entry leaked")
	}
}
