package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/answer"
	"repro/internal/core/exec"
)

func TestCollectorRecordAndSnapshot(t *testing.T) {
	c := NewCollector()
	usage := answer.Result{LLMCalls: 3, PromptTokens: 100, CompletionTokens: 10}
	c.Record("ours", 4*time.Millisecond, nil, usage, Info{})
	c.Record("ours", 40*time.Millisecond, nil, usage, Info{})
	c.Record("ours", 2*time.Millisecond, context.Canceled, answer.Result{}, Info{})
	c.Record("ours", time.Millisecond/2, nil, answer.Result{}, Info{CacheHit: true})
	c.Record("cot", 8*time.Millisecond, &answer.InvalidQueryError{Reason: "empty"}, answer.Result{}, Info{})

	snaps := c.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("methods = %d, want 2", len(snaps))
	}
	// Sorted by name: cot first.
	cot, ours := snaps[0], snaps[1]
	if cot.Method != "cot" || ours.Method != "ours" {
		t.Fatalf("order %q %q", cot.Method, ours.Method)
	}
	if ours.Count != 4 || ours.Errors != 1 || ours.CacheHits != 1 {
		t.Errorf("ours %+v", ours)
	}
	if ours.ErrorsByClass[string(answer.ClassCanceled)] != 1 {
		t.Errorf("ours errors by class %v", ours.ErrorsByClass)
	}
	if ours.LLMCalls != 6 || ours.PromptTokens != 200 || ours.CompletionTokens != 20 {
		t.Errorf("ours usage %+v", ours)
	}
	if cot.Count != 1 || cot.ErrorsByClass[string(answer.ClassInvalidQuery)] != 1 {
		t.Errorf("cot %+v", cot)
	}
	if ours.Latency.MeanMS <= 0 || ours.Latency.P50MS <= 0 || ours.Latency.P95MS < ours.Latency.P50MS {
		t.Errorf("latency %+v", ours.Latency)
	}
	var bucketTotal int64
	for _, b := range ours.Latency.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != ours.Count {
		t.Errorf("bucket total %d != count %d", bucketTotal, ours.Count)
	}
}

func TestCollectorNilSafe(t *testing.T) {
	var c *Collector
	c.Record("m", time.Millisecond, nil, answer.Result{}, Info{})
	if c.Snapshot() != nil {
		t.Fatal("nil collector snapshot should be nil")
	}
}

func TestQuantileEstimates(t *testing.T) {
	// 100 requests all in the (2ms, 5ms] bucket: every quantile lands
	// inside it.
	counts := make([]int64, len(latencyBucketsMS)+1)
	counts[2] = 100
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := quantile(counts, 100, q)
		if got <= 2 || got > 5 {
			t.Errorf("q%.2f = %v, want in (2, 5]", q, got)
		}
	}
	// +Inf bucket reports its floor.
	counts = make([]int64, len(latencyBucketsMS)+1)
	counts[len(counts)-1] = 10
	if got := quantile(counts, 10, 0.5); got != latencyBucketsMS[len(latencyBucketsMS)-1] {
		t.Errorf("+Inf bucket quantile = %v", got)
	}
}

func TestMetricsMiddlewareAttributesCost(t *testing.T) {
	stub := &stubAnswerer{name: "stub"}
	collector := NewCollector()
	cache := NewCache(CacheConfig{Size: 4})
	stack := Stack(stub, WithMetrics(collector), WithCache(cache, nil))
	q := answer.Query{Text: "q?"}

	for i := 0; i < 3; i++ {
		if _, err := stack.Answer(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	snaps := collector.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("snapshot %+v", snaps)
	}
	s := snaps[0]
	if s.Count != 3 || s.CacheHits != 2 {
		t.Fatalf("count=%d hits=%d, want 3/2", s.Count, s.CacheHits)
	}
	// Only the one real run contributes LLM cost.
	if s.LLMCalls != 3 || s.PromptTokens != 100 {
		t.Fatalf("usage should count the single real run once: %+v", s)
	}
}

func TestMetricsMiddlewareRecordsErrors(t *testing.T) {
	stub := &stubAnswerer{name: "stub", err: fmt.Errorf("wrapped: %w", errors.New("boom"))}
	collector := NewCollector()
	stack := Stack(stub, WithMetrics(collector))
	if _, err := stack.Answer(context.Background(), answer.Query{Text: "q?"}); err == nil {
		t.Fatal("want error")
	}
	s := collector.Snapshot()[0]
	if s.Errors != 1 || s.ErrorsByClass[string(answer.ClassUpstream)] != 1 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.LLMCalls != 0 {
		t.Fatalf("failed run contributed usage: %+v", s)
	}
}

// TestCollectorStageAggregation: spans fold into per-stage counts,
// errors-by-class and mean latency, sorted by stage name.
func TestCollectorStageAggregation(t *testing.T) {
	c := NewCollector()
	c.RecordStages("ours", []exec.Span{
		{Stage: "pseudo-graph", Latency: 4 * time.Millisecond, LLMCalls: 1, PromptTokens: 40, CompletionTokens: 8},
		{Stage: "answer", Latency: 2 * time.Millisecond, LLMCalls: 1},
	})
	c.RecordStages("ours", []exec.Span{
		{Stage: "pseudo-graph", Latency: 2 * time.Millisecond, LLMCalls: 1},
		{Stage: "answer", Err: exec.ErrClassDeadline, Latency: time.Millisecond},
	})

	snaps := c.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("methods = %d, want 1", len(snaps))
	}
	stages := snaps[0].Stages
	if len(stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(stages))
	}
	// Sorted by name: answer before pseudo-graph.
	ans, pg := stages[0], stages[1]
	if ans.Stage != "answer" || pg.Stage != "pseudo-graph" {
		t.Fatalf("stage order: %q, %q", ans.Stage, pg.Stage)
	}
	if pg.Count != 2 || pg.LLMCalls != 2 || pg.PromptTokens != 40 {
		t.Errorf("pseudo-graph aggregate = %+v", pg)
	}
	if pg.MeanLatencyMS != 3 {
		t.Errorf("pseudo-graph mean latency = %v, want 3ms", pg.MeanLatencyMS)
	}
	if ans.Errors != 1 || ans.ErrorsByClass[exec.ErrClassDeadline] != 1 {
		t.Errorf("answer errors = %+v", ans)
	}

	// Nil collector and empty spans are no-ops.
	var nilC *Collector
	nilC.RecordStages("m", []exec.Span{{Stage: "s"}})
	c.RecordStages("ours", nil)
}
