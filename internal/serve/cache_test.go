package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/answer"
)

func TestCacheNilAndDisabled(t *testing.T) {
	if c := NewCache(CacheConfig{Size: 0}); c != nil {
		t.Fatal("size 0 should disable the cache")
	}
	var c *Cache
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache must miss")
	}
	c.Put("k", answer.Result{}) // must not panic
	if s := c.Stats(); s != (CacheStats{}) {
		t.Fatalf("nil cache stats %+v", s)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(CacheConfig{Size: 2})
	c.Put("a", answer.Result{Answer: "A"})
	c.Put("b", answer.Result{Answer: "B"})
	// Touch "a" so "b" is the LRU victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should be cached")
	}
	c.Put("c", answer.Result{Answer: "C"})
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should survive", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Size != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	c := NewCache(CacheConfig{Size: 4, TTL: time.Minute})
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	c.Put("k", answer.Result{Answer: "v"})
	if _, ok := c.Get("k"); !ok {
		t.Fatal("fresh entry should hit")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := c.Get("k"); ok {
		t.Fatal("expired entry should miss")
	}
	if s := c.Stats(); s.Expirations != 1 || s.Size != 0 {
		t.Fatalf("stats %+v", s)
	}
	// Re-put refreshes the TTL.
	c.Put("k", answer.Result{Answer: "v2"})
	now = now.Add(30 * time.Second)
	if res, ok := c.Get("k"); !ok || res.Answer != "v2" {
		t.Fatalf("refreshed entry: ok=%v res=%+v", ok, res)
	}
}

func TestCacheMiddlewareHitAndMiss(t *testing.T) {
	stub := &stubAnswerer{name: "stub"}
	cache := NewCache(CacheConfig{Size: 8})
	stack := Stack(stub, WithCache(cache, nil))
	q := answer.Query{Text: "Where was X born?"}

	ctx, info := Attach(context.Background())
	res1, err := stack.Answer(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if info.CacheHit || !info.CacheUsed {
		t.Fatalf("first call: info %+v", info)
	}

	ctx, info = Attach(context.Background())
	res2, err := stack.Answer(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !info.CacheHit {
		t.Fatal("second identical call should hit")
	}
	if res2.Answer != res1.Answer {
		t.Fatalf("cached answer %q != original %q", res2.Answer, res1.Answer)
	}
	if stub.runs.Load() != 1 {
		t.Fatalf("underlying runs = %d, want 1", stub.runs.Load())
	}

	// Normalisation: case and whitespace variants share the entry.
	ctx, info = Attach(context.Background())
	if _, err := stack.Answer(ctx, answer.Query{Text: "  where was  x BORN? "}); err != nil {
		t.Fatal(err)
	}
	if !info.CacheHit {
		t.Fatal("normalised variant should hit")
	}

	// A different question misses.
	ctx, info = Attach(context.Background())
	if _, err := stack.Answer(ctx, answer.Query{Text: "Where was Y born?"}); err != nil {
		t.Fatal(err)
	}
	if info.CacheHit {
		t.Fatal("different question should miss")
	}
	if stub.runs.Load() != 2 {
		t.Fatalf("underlying runs = %d, want 2", stub.runs.Load())
	}
}

func TestCacheMiddlewareDoesNotCacheErrors(t *testing.T) {
	stub := &stubAnswerer{name: "stub", err: errors.New("boom")}
	cache := NewCache(CacheConfig{Size: 8})
	stack := Stack(stub, WithCache(cache, nil))
	q := answer.Query{Text: "q?"}
	for i := 0; i < 3; i++ {
		if _, err := stack.Answer(context.Background(), q); err == nil {
			t.Fatal("want error")
		}
	}
	if stub.runs.Load() != 3 {
		t.Fatalf("errors must not be cached: runs = %d", stub.runs.Load())
	}
	if cache.Len() != 0 {
		t.Fatalf("cache should stay empty, has %d", cache.Len())
	}
}

func TestQueryKeyDistinguishesSemantics(t *testing.T) {
	base := answer.Query{Text: "q?", Anchors: []string{"B", "A"}}
	key := answer.QueryKey("ours", "m", base)
	if key != answer.QueryKey("OURS", "m", answer.Query{Text: " q? ", Anchors: []string{"a", "b"}}) {
		t.Error("case/space/anchor-order variants should share a key")
	}
	open := base
	open.Open = true
	if key == answer.QueryKey("ours", "m", open) {
		t.Error("open flag must change the key")
	}
	k := 5
	overridden := base
	overridden.Overrides.TopK = &k
	if key == answer.QueryKey("ours", "m", overridden) {
		t.Error("overrides must change the key")
	}
	if key == answer.QueryKey("ours", "other-model", base) {
		t.Error("model must change the key")
	}
	if key == answer.QueryKey("cot", "m", base) {
		t.Error("method must change the key")
	}
}

// TestQueryKeySeparatorInjection: client-controlled text must not be able
// to embed the key format's field separators and collide with a
// semantically different query.
func TestQueryKeySeparatorInjection(t *testing.T) {
	// "q\x00o" must not mimic {Text: "q", Open: true}'s field layout.
	smuggled := answer.QueryKey("m", "", answer.Query{Text: "q\x00o"})
	open := answer.QueryKey("m", "", answer.Query{Text: "q", Open: true})
	if smuggled == open {
		t.Error("NUL in text forged the open-flag field")
	}
	// "a\x01b" as one anchor must not equal anchors ["a", "b"].
	oneAnchor := answer.QueryKey("m", "", answer.Query{Text: "q", Anchors: []string{"a\x01b"}})
	twoAnchors := answer.QueryKey("m", "", answer.Query{Text: "q", Anchors: []string{"a", "b"}})
	if oneAnchor == twoAnchors {
		t.Error("\\x01 in an anchor forged the anchor-list separator")
	}
}

// TestCacheHitZeroesUsage: hits must not replay the cold run's LLM cost
// or elapsed time — clients summing usage over responses would
// double-count otherwise.
func TestCacheHitZeroesUsage(t *testing.T) {
	stub := &stubAnswerer{name: "stub", delay: 5 * time.Millisecond}
	stack := Stack(stub, WithCache(NewCache(CacheConfig{Size: 4}), nil))
	q := answer.Query{Text: "q?"}

	cold, err := stack.Answer(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if cold.LLMCalls == 0 {
		t.Fatalf("cold run should report real usage: %+v", cold)
	}
	warm, err := stack.Answer(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if warm.LLMCalls != 0 || warm.PromptTokens != 0 || warm.CompletionTokens != 0 {
		t.Fatalf("hit replayed usage: %+v", warm)
	}
	if warm.Elapsed >= cold.Elapsed {
		t.Fatalf("hit elapsed %v should be below the cold run's %v", warm.Elapsed, cold.Elapsed)
	}
	if warm.Answer != cold.Answer {
		t.Fatalf("hit answer %q != cold %q", warm.Answer, cold.Answer)
	}
}
