package serve

import (
	"context"

	"repro/internal/answer"
	"repro/internal/trace"
)

// Recorder is the slice of the trace.Store contract the tracing
// middleware needs: consume one finished request's record. Both
// trace.FileStore and trace.MemStore satisfy it.
type Recorder interface {
	Append(trace.Record) (trace.Record, error)
}

// WithTrace records every request flowing through the stack — success or
// failure — into a trace store. Place it outside the cache and
// singleflight layers so the record captures what the serving stack
// actually did (cache hits, shared runs) alongside the result's substrate
// epoch; those three fields are what lets replay diffs tell substrate
// churn and cache effects apart from method regressions.
//
// kgLabel names the KG source this answerer is bound to (the query itself
// does not carry it). A nil recorder yields a no-op middleware. Append
// failures are deliberately swallowed: tracing is observability, and a
// full disk must degrade recording, never answering (the store's Dropped
// stat still counts the loss).
func WithTrace(rec Recorder, kgLabel string) Middleware {
	return func(inner answer.Answerer) answer.Answerer {
		if rec == nil {
			return inner
		}
		return &tracedAnswerer{named: named{inner}, rec: rec, kg: kgLabel}
	}
}

type tracedAnswerer struct {
	named
	rec Recorder
	kg  string
}

func (a *tracedAnswerer) Answer(ctx context.Context, q answer.Query) (answer.Result, error) {
	// The cache/singleflight layers report what they did through the
	// request Info; attach one ourselves when the front door didn't, so
	// traced requests outside an HTTP handler (bench cells, replay
	// recording) still capture the cache-hit flag.
	info := infoFrom(ctx)
	if info == nil {
		ctx, info = Attach(ctx)
	}
	res, err := a.inner.Answer(ctx, q)
	_, _ = a.rec.Append(trace.Build(q, res, err, trace.Meta{
		KG:       a.kg,
		CacheHit: info.CacheHit,
		Shared:   info.Shared,
	}))
	return res, err
}
