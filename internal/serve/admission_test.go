package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAdmissionNilAdmitsEverything(t *testing.T) {
	var a *Admission
	release, err := a.Admit(context.Background(), "x")
	if err != nil {
		t.Fatal(err)
	}
	release()
	if st := a.Stats(); st.Admitted != 0 {
		t.Fatalf("nil stats = %+v", st)
	}
}

func TestAdmissionShedsWhenQueueFull(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 1, RetryAfterHint: 7 * time.Second})
	ctx := context.Background()

	release1, err := a.Admit(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	// Second request queues; it must be granted once release1 runs.
	granted := make(chan error, 1)
	go func() {
		release2, err := a.Admit(ctx, "b")
		if err == nil {
			defer release2()
		}
		granted <- err
	}()
	// Wait until the waiter is actually queued so the third arrival sees
	// a full queue deterministically.
	deadline := time.Now().Add(5 * time.Second)
	for a.Stats().QueueDepth != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Third request: in-flight full, queue full -> shed with the hint.
	_, err = a.Admit(ctx, "c")
	var ref *Refusal
	if !errors.As(err, &ref) || !errors.Is(err, ErrShed) {
		t.Fatalf("want shed refusal, got %v", err)
	}
	if ref.RetryAfter != 7*time.Second {
		t.Fatalf("RetryAfter = %v, want 7s", ref.RetryAfter)
	}

	release1()
	if err := <-granted; err != nil {
		t.Fatalf("queued request not granted: %v", err)
	}
	st := a.Stats()
	if st.Admitted != 2 || st.Shed != 1 || st.Queued != 1 {
		t.Fatalf("stats = %+v, want admitted=2 shed=1 queued=1", st)
	}
	if st.InFlight != 0 || st.QueueDepth != 0 {
		t.Fatalf("gauges not drained: %+v", st)
	}
}

func TestAdmissionQueuedWaiterHonoursContext(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 4})
	release, err := a.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Admit(ctx, "b")
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for a.Stats().QueueDepth != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	release()
	st := a.Stats()
	if st.InFlight != 0 || st.QueueDepth != 0 {
		t.Fatalf("gauges not drained after cancel: %+v", st)
	}
	// The slot is still usable.
	release2, err := a.Admit(context.Background(), "c")
	if err != nil {
		t.Fatal(err)
	}
	release2()
}

func TestAdmissionRateLimitBeforeQueue(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmission(AdmissionConfig{
		Limiter:     LimiterConfig{Rate: 1, Burst: 1, Clock: clk.now},
		MaxInFlight: 8,
		MaxQueue:    8,
	})
	ctx := context.Background()
	release, err := a.Admit(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	release()
	_, err = a.Admit(ctx, "a")
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("want rate-limit refusal, got %v", err)
	}
	var ref *Refusal
	if !errors.As(err, &ref) || ref.RetryAfter <= 0 {
		t.Fatalf("refusal carries no Retry-After: %v", err)
	}
	st := a.Stats()
	if st.Limited != 1 || st.Admitted != 1 {
		t.Fatalf("stats = %+v, want limited=1 admitted=1", st)
	}
}

// TestAdmissionHammer is the race-detector hammer for the admission
// path: 64 goroutines across 8 client identities drive the limiter and
// shedder concurrently, and the controller's counters must account for
// every single request exactly — admitted + shed + limited == issued —
// with both gauges drained at the end. Runs under CI's -race job.
func TestAdmissionHammer(t *testing.T) {
	const (
		goroutines = 64
		perG       = 50
		identities = 8
	)
	a := NewAdmission(AdmissionConfig{
		// A generous refilling bucket so all three outcomes occur.
		Limiter:     LimiterConfig{Rate: 500, Burst: 40},
		MaxInFlight: 6,
		MaxQueue:    6,
	})
	var admitted, shed, limited atomic.Int64
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := fmt.Sprintf("client-%d", g%identities)
			for i := 0; i < perG; i++ {
				release, err := a.Admit(ctx, client)
				switch {
				case err == nil:
					admitted.Add(1)
					// A tiny critical section keeps slots contended so
					// the queue and shedding paths are exercised.
					time.Sleep(50 * time.Microsecond)
					release()
				case errors.Is(err, ErrShed):
					shed.Add(1)
				case errors.Is(err, ErrRateLimited):
					limited.Add(1)
				default:
					t.Errorf("unexpected admission error: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()

	total := int64(goroutines * perG)
	if admitted.Load()+shed.Load()+limited.Load() != total {
		t.Fatalf("outcomes %d+%d+%d != %d issued",
			admitted.Load(), shed.Load(), limited.Load(), total)
	}
	st := a.Stats()
	if st.Admitted != admitted.Load() {
		t.Errorf("controller admitted %d, callers saw %d", st.Admitted, admitted.Load())
	}
	if st.Shed != shed.Load() {
		t.Errorf("controller shed %d, callers saw %d", st.Shed, shed.Load())
	}
	if st.Limited != limited.Load() {
		t.Errorf("controller limited %d, callers saw %d", st.Limited, limited.Load())
	}
	if st.InFlight != 0 || st.QueueDepth != 0 {
		t.Errorf("gauges not drained: in_flight=%d queue_depth=%d", st.InFlight, st.QueueDepth)
	}
	if admitted.Load() == 0 || shed.Load() == 0 {
		t.Errorf("hammer did not exercise both paths: admitted=%d shed=%d",
			admitted.Load(), shed.Load())
	}
}
