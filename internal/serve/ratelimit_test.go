package serve

import (
	"testing"
	"time"
)

// fakeClock is an injectable, manually-advanced Clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func (c *fakeClock) rewind(d time.Duration)  { c.t = c.t.Add(-d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

// TestLimiterRefillEdges drives the token bucket through its refill edge
// cases with an injected clock.
func TestLimiterRefillEdges(t *testing.T) {
	type step struct {
		advance time.Duration // clock movement before the call (negative = skew backwards)
		wantOK  bool
		// wantRetryAtLeast/AtMost bound the refusal's Retry-After; both
		// zero means "don't check".
		wantRetryAtLeast time.Duration
		wantRetryAtMost  time.Duration
	}
	cases := []struct {
		name  string
		rate  float64
		burst int
		steps []step
	}{
		{
			// Rate <= 0 disables the limiter entirely: the documented
			// production semantic of `-rate 0`.
			name: "zero rate means disabled", rate: 0, burst: 1,
			steps: []step{{wantOK: true}, {wantOK: true}, {wantOK: true}},
		},
		{
			name: "negative rate means disabled", rate: -3, burst: 1,
			steps: []step{{wantOK: true}, {wantOK: true}},
		},
		{
			// burst=1: one immediate request, then strictly one per period.
			name: "burst one enforces the steady rate", rate: 2, burst: 1,
			steps: []step{
				{wantOK: true},
				{wantOK: false, wantRetryAtLeast: 400 * time.Millisecond, wantRetryAtMost: 500 * time.Millisecond},
				{advance: 499 * time.Millisecond, wantOK: false},
				{advance: 1 * time.Millisecond, wantOK: true}, // exactly one period since the spend
				{wantOK: false},
			},
		},
		{
			// A full burst drains back-to-back, then refills at the rate.
			name: "burst drains then refills", rate: 1, burst: 3,
			steps: []step{
				{wantOK: true}, {wantOK: true}, {wantOK: true},
				{wantOK: false, wantRetryAtLeast: time.Second, wantRetryAtMost: time.Second},
				{advance: 2 * time.Second, wantOK: true},
				{wantOK: true},
				{wantOK: false},
			},
		},
		{
			// Refill is capped at burst no matter how long the idle gap.
			name: "idle gap never exceeds burst", rate: 10, burst: 2,
			steps: []step{
				{advance: time.Hour, wantOK: true},
				{wantOK: true},
				{wantOK: false},
			},
		},
		{
			// A backwards-moving clock must neither mint tokens nor panic;
			// the bucket re-anchors and refills from the earlier instant.
			name: "clock skew backwards mints nothing", rate: 1, burst: 1,
			steps: []step{
				{wantOK: true},
				{advance: -30 * time.Second, wantOK: false},
				{wantOK: false},
				{advance: time.Second, wantOK: true}, // one period after the re-anchor
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := newFakeClock()
			l := NewLimiter(LimiterConfig{Rate: tc.rate, Burst: tc.burst, Clock: clk.now})
			for i, s := range tc.steps {
				if s.advance > 0 {
					clk.advance(s.advance)
				} else if s.advance < 0 {
					clk.rewind(-s.advance)
				}
				ok, retry := l.Allow("client")
				if ok != s.wantOK {
					t.Fatalf("step %d: Allow = %v, want %v", i, ok, s.wantOK)
				}
				if ok && retry != 0 {
					t.Fatalf("step %d: allowed call reported Retry-After %v", i, retry)
				}
				if s.wantRetryAtLeast > 0 && retry < s.wantRetryAtLeast {
					t.Fatalf("step %d: Retry-After %v < %v", i, retry, s.wantRetryAtLeast)
				}
				if s.wantRetryAtMost > 0 && retry > s.wantRetryAtMost {
					t.Fatalf("step %d: Retry-After %v > %v", i, retry, s.wantRetryAtMost)
				}
			}
		})
	}
}

func TestLimiterIsolatesClients(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(LimiterConfig{Rate: 1, Burst: 1, Clock: clk.now})
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("first request from a refused")
	}
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("second request from a allowed inside the period")
	}
	// b's bucket is untouched by a's spending.
	if ok, _ := l.Allow("b"); !ok {
		t.Fatal("first request from b refused")
	}
	st := l.Stats()
	if st.Allowed != 2 || st.Limited != 1 || st.Clients != 2 {
		t.Fatalf("stats = %+v, want allowed=2 limited=1 clients=2", st)
	}
}

func TestLimiterEvictsStalestClient(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(LimiterConfig{Rate: 1, Burst: 1, Clock: clk.now, MaxClients: 2})
	l.Allow("a")
	clk.advance(time.Second)
	l.Allow("b")
	clk.advance(time.Second)
	l.Allow("c") // table full: "a" (stalest) is evicted
	if got := l.Stats().Clients; got != 2 {
		t.Fatalf("clients = %d, want 2", got)
	}
	// "a" returns with a fresh bucket (more permissive, never less).
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("evicted client refused on return")
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{-time.Second, 1},
		{time.Millisecond, 1},
		{time.Second, 1},
		{1001 * time.Millisecond, 2},
		{2500 * time.Millisecond, 3},
		{time.Minute, 60},
	}
	for _, tc := range cases {
		if got := RetryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("RetryAfterSeconds(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}
