package serve

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/answer"
)

// stubAnswerer is a controllable fake method: counts runs, optionally
// blocks until released, optionally fails.
type stubAnswerer struct {
	name  string
	runs  atomic.Int64
	delay time.Duration
	block chan struct{} // if non-nil, Answer waits for it (or ctx)
	err   error
}

func (s *stubAnswerer) Name() string { return s.name }

func (s *stubAnswerer) Answer(ctx context.Context, q answer.Query) (answer.Result, error) {
	start := time.Now()
	s.runs.Add(1)
	if s.block != nil {
		select {
		case <-s.block:
		case <-ctx.Done():
			return answer.Result{}, ctx.Err()
		}
	}
	if s.delay > 0 {
		select {
		case <-time.After(s.delay):
		case <-ctx.Done():
			return answer.Result{}, ctx.Err()
		}
	}
	if s.err != nil {
		return answer.Result{}, s.err
	}
	return answer.Result{
		Answer: "answer to " + q.Text, Method: s.name, Elapsed: time.Since(start),
		LLMCalls: 3, PromptTokens: 100, CompletionTokens: 10,
	}, nil
}

func TestStackOrderOutermostFirst(t *testing.T) {
	stub := &stubAnswerer{name: "stub"}
	var order []string
	mw := func(label string) Middleware {
		return func(inner answer.Answerer) answer.Answerer {
			return answerFunc{name: inner.Name(), fn: func(ctx context.Context, q answer.Query) (answer.Result, error) {
				order = append(order, label)
				return inner.Answer(ctx, q)
			}}
		}
	}
	stack := Stack(stub, mw("outer"), mw("inner"))
	if _, err := stack.Answer(context.Background(), answer.Query{Text: "q"}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("order = %v, want [outer inner]", order)
	}
	if stack.Name() != "stub" {
		t.Errorf("stack name %q", stack.Name())
	}
}

// answerFunc adapts a closure to answer.Answerer for middleware tests.
type answerFunc struct {
	name string
	fn   func(context.Context, answer.Query) (answer.Result, error)
}

func (a answerFunc) Name() string { return a.name }
func (a answerFunc) Answer(ctx context.Context, q answer.Query) (answer.Result, error) {
	return a.fn(ctx, q)
}

func TestStackSkipsNilMiddleware(t *testing.T) {
	stub := &stubAnswerer{name: "stub"}
	stack := Stack(stub, WithCache(nil, nil), WithSingleflight(nil, nil), WithMetrics(nil), nil)
	if stack != answer.Answerer(stub) {
		t.Fatal("nil middlewares should leave the answerer untouched")
	}
}

func TestInfoRoundTrip(t *testing.T) {
	ctx, info := Attach(context.Background())
	got := infoFrom(ctx)
	if got != info {
		t.Fatal("infoFrom should return the attached Info")
	}
	if infoFrom(context.Background()) != nil {
		t.Fatal("bare context must have no Info")
	}
}
