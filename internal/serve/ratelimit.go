package serve

import (
	"math"
	"sync"
	"time"
)

// Clock supplies the current time; injectable so limiter tests can drive
// refill deterministically (including skew: a clock that goes backwards
// must never mint tokens).
type Clock func() time.Time

// LimiterConfig sizes a per-client token-bucket rate limiter.
type LimiterConfig struct {
	// Rate is the steady-state allowance in requests per second per
	// client identity. <= 0 disables limiting: every Allow succeeds.
	Rate float64
	// Burst is the bucket capacity — how many requests a client may send
	// back-to-back before the steady rate applies. < 1 is clamped to 1 so
	// an enabled limiter can always admit something.
	Burst int
	// MaxClients bounds the client-identity table; when full, the stalest
	// bucket is evicted (a returning client restarts with a full bucket —
	// strictly more permissive, never less). <= 0 means 4096.
	Clock      Clock
	MaxClients int
}

// Limiter is a per-client token-bucket rate limiter keyed by an opaque
// client identity (API key, remote address). Safe for concurrent use.
type Limiter struct {
	rate       float64
	burst      float64
	maxClients int
	now        Clock

	mu      sync.Mutex
	buckets map[string]*bucket

	allowed int64
	limited int64
}

// bucket is one client's token balance at its last refill instant.
type bucket struct {
	tokens float64
	last   time.Time
}

// NewLimiter builds a limiter. A Rate <= 0 yields a disabled limiter
// (Allow always succeeds, nothing is tracked).
func NewLimiter(cfg LimiterConfig) *Limiter {
	if cfg.Burst < 1 {
		cfg.Burst = 1
	}
	if cfg.MaxClients <= 0 {
		cfg.MaxClients = 4096
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Limiter{
		rate:       cfg.Rate,
		burst:      float64(cfg.Burst),
		maxClients: cfg.MaxClients,
		now:        cfg.Clock,
		buckets:    map[string]*bucket{},
	}
}

// Enabled reports whether the limiter enforces anything.
func (l *Limiter) Enabled() bool { return l != nil && l.rate > 0 }

// Allow spends one token from the client's bucket. When the bucket is
// empty it refuses and reports how long until the next token accrues —
// the Retry-After the caller should surface.
func (l *Limiter) Allow(client string) (ok bool, retryAfter time.Duration) {
	if !l.Enabled() {
		return true, 0
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[client]
	if b == nil {
		if len(l.buckets) >= l.maxClients {
			l.evictStalest()
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	} else {
		// Refill from elapsed time. A backwards-moving clock (skew, NTP
		// step) yields a negative delta that must not drain or mint
		// tokens; the bucket just re-anchors at the new instant.
		if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
			b.tokens = math.Min(l.burst, b.tokens+elapsed*l.rate)
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		l.allowed++
		return true, 0
	}
	l.limited++
	return false, l.retryAfter(b)
}

// retryAfter is the time until the bucket's next whole token at the
// steady rate. Callers hold l.mu.
func (l *Limiter) retryAfter(b *bucket) time.Duration {
	deficit := 1 - b.tokens
	return time.Duration(deficit / l.rate * float64(time.Second))
}

// evictStalest drops the bucket with the oldest refill instant. Callers
// hold l.mu; only called when the table is full, so the linear scan is a
// bounded, rare cost.
func (l *Limiter) evictStalest() {
	var stalest string
	var oldest time.Time
	first := true
	for client, b := range l.buckets {
		if first || b.last.Before(oldest) {
			stalest, oldest, first = client, b.last, false
		}
	}
	delete(l.buckets, stalest)
}

// LimiterStats is a point-in-time limiter snapshot.
type LimiterStats struct {
	// Rate / Burst echo the configuration (Rate 0 = disabled).
	Rate  float64 `json:"rate"`
	Burst int     `json:"burst"`
	// Clients is the number of tracked client identities.
	Clients int `json:"clients"`
	// Allowed / Limited count Allow outcomes.
	Allowed int64 `json:"allowed"`
	Limited int64 `json:"limited"`
}

// Stats snapshots the limiter. Safe on nil (all zeros).
func (l *Limiter) Stats() LimiterStats {
	if l == nil {
		return LimiterStats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return LimiterStats{
		Rate:    l.rate,
		Burst:   int(l.burst),
		Clients: len(l.buckets),
		Allowed: l.allowed,
		Limited: l.limited,
	}
}

// RetryAfterSeconds renders a Retry-After duration as the header's
// whole-seconds form, rounding up so a client that waits exactly the
// advertised time is never refused again, with a floor of 1.
func RetryAfterSeconds(d time.Duration) int {
	if d <= 0 {
		return 1
	}
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		return 1
	}
	return secs
}
