package serve

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/answer"
)

// CacheConfig sizes an answer cache.
type CacheConfig struct {
	// Size is the maximum number of cached answers; <= 0 disables the
	// cache (NewCache returns nil).
	Size int
	// TTL is how long an entry stays servable; 0 means no expiry.
	TTL time.Duration
}

// Cache is an LRU+TTL cache of answer results keyed on the normalised
// (method, model, query) identity. Safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	size    int
	ttl     time.Duration
	now     func() time.Time // test hook

	hits        atomic.Int64
	misses      atomic.Int64
	evictions   atomic.Int64
	expirations atomic.Int64
}

// entry is one cached answer with its expiry.
type entry struct {
	key     string
	result  answer.Result
	expires time.Time // zero = never
}

// NewCache builds a cache; a non-positive size returns nil, which every
// consumer treats as "caching disabled".
func NewCache(cfg CacheConfig) *Cache {
	if cfg.Size <= 0 {
		return nil
	}
	return &Cache{
		entries: make(map[string]*list.Element, cfg.Size),
		order:   list.New(),
		size:    cfg.Size,
		ttl:     cfg.TTL,
		now:     time.Now,
	}
}

// Get returns the cached result for key, if present and unexpired. The
// result is an isolated copy: mutating its trace cannot corrupt the cached
// entry, and two hitters of the same key cannot corrupt each other.
func (c *Cache) Get(key string) (answer.Result, bool) {
	if c == nil {
		return answer.Result{}, false
	}
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return answer.Result{}, false
	}
	e := el.Value.(*entry)
	if !e.expires.IsZero() && c.now().After(e.expires) {
		c.order.Remove(el)
		delete(c.entries, key)
		c.mu.Unlock()
		c.expirations.Add(1)
		c.misses.Add(1)
		return answer.Result{}, false
	}
	c.order.MoveToFront(el)
	res := e.result
	c.mu.Unlock()
	c.hits.Add(1)
	return res.Clone(), true
}

// Put stores a result under key, evicting the least recently used entry
// when full. Re-putting an existing key refreshes its value and TTL. The
// cache keeps its own copy, so the producer remains free to hand the
// original (trace included) to its caller.
func (c *Cache) Put(key string, res answer.Result) {
	if c == nil {
		return
	}
	res = res.Clone()
	var expires time.Time
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry)
		e.result = res
		e.expires = expires
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.size {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*entry).key)
			c.evictions.Add(1)
		}
	}
	c.entries[key] = c.order.PushFront(&entry{key: key, result: res, expires: expires})
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// CacheStats is a point-in-time cache counters snapshot.
type CacheStats struct {
	Size        int   `json:"size"`
	Capacity    int   `json:"capacity"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	Expirations int64 `json:"expirations"`
}

// Stats snapshots the counters. Safe on a nil cache (all zeros).
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		Size:        c.Len(),
		Capacity:    c.size,
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Evictions:   c.evictions.Load(),
		Expirations: c.expirations.Load(),
	}
}

// WithCache answers repeated queries from the cache. Only successful
// results are stored; errors always pass through uncached. Hits report
// the lookup's elapsed time and zero LLM usage (the cost belongs to the
// run that filled the entry). A nil cache yields a no-op middleware.
// scope namespaces this answerer's entries within a shared cache,
// re-evaluated on every request — pass the substrate binding including
// the live epoch (e.g. "model/kg@epoch") when one Cache serves answerers
// over different or hot-swappable backends; a nil scope is the empty
// namespace.
func WithCache(c *Cache, scope ScopeFunc) Middleware {
	return func(inner answer.Answerer) answer.Answerer {
		if c == nil {
			return inner
		}
		return &cachedAnswerer{named: named{inner}, cache: c, scope: scopeOrEmpty(scope)}
	}
}

type cachedAnswerer struct {
	named
	cache *Cache
	scope ScopeFunc
}

func (a *cachedAnswerer) Answer(ctx context.Context, q answer.Query) (answer.Result, error) {
	start := time.Now()
	k := key(a.inner, a.scope(), q)
	info := infoFrom(ctx)
	if info != nil {
		info.CacheUsed = true
	}
	if res, ok := a.cache.Get(k); ok {
		if info != nil {
			info.CacheHit = true
		}
		// A hit costs nothing upstream: report the lookup's wall time and
		// zero LLM usage, so clients summing cost over responses never
		// double-count the run that populated the entry.
		res.Elapsed = time.Since(start)
		res.LLMCalls = 0
		res.PromptTokens = 0
		res.CompletionTokens = 0
		return res, nil
	}
	res, err := a.inner.Answer(ctx, q)
	if err == nil {
		a.cache.Put(k, res)
	}
	return res, err
}
