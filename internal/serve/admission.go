package serve

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrShed reports that the admission queue was full and the request was
// rejected before any work was admitted.
var ErrShed = errors.New("serve: request shed: server over capacity")

// ErrRateLimited reports that the client's token bucket was empty.
var ErrRateLimited = errors.New("serve: request rate-limited")

// AdmissionConfig sizes the admission controller.
type AdmissionConfig struct {
	// Limiter configures the per-client token bucket (Rate <= 0 disables
	// that half; shedding still applies).
	Limiter LimiterConfig
	// MaxInFlight bounds concurrently-admitted requests. <= 0 disables
	// shedding (every request is admitted immediately).
	MaxInFlight int
	// MaxQueue bounds how many requests may wait for an in-flight slot
	// before new arrivals are shed. 0 sheds as soon as MaxInFlight is
	// reached (no queue).
	MaxQueue int
	// RetryAfterHint is the Retry-After advertised on shed responses;
	// <= 0 means 1s. Limited responses compute theirs from the bucket.
	RetryAfterHint time.Duration
}

// Admission is the serving front door's admission controller: a
// per-client token-bucket rate limiter (ratelimit.go) composed with a
// queue-depth load shedder. Both run before any pipeline or LLM work is
// admitted, so an overloaded server's refusals are fast 429s —
// microseconds of handler time and zero upstream cost — instead of
// requests timing out deep in the stack. Admit either returns a release
// func (the request may run; call release exactly once when done) or a
// typed refusal carrying the Retry-After to advertise. Safe for
// concurrent use.
type Admission struct {
	limiter    *Limiter
	maxIn      int
	maxQueue   int
	retryHint  time.Duration
	mu         sync.Mutex
	inFlight   int
	queue      []chan struct{}
	admitted   int64
	shed       int64
	queuedEver int64
}

// NewAdmission builds the controller.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.RetryAfterHint <= 0 {
		cfg.RetryAfterHint = time.Second
	}
	return &Admission{
		limiter:   NewLimiter(cfg.Limiter),
		maxIn:     cfg.MaxInFlight,
		maxQueue:  cfg.MaxQueue,
		retryHint: cfg.RetryAfterHint,
	}
}

// Refusal is a typed admission rejection: Err is ErrShed or
// ErrRateLimited and RetryAfter is the backoff to advertise.
type Refusal struct {
	Err        error
	RetryAfter time.Duration
}

func (r *Refusal) Error() string { return r.Err.Error() }

// Unwrap exposes the refusal kind for errors.Is.
func (r *Refusal) Unwrap() error { return r.Err }

// Admit runs both gates for one request from the given client identity:
// the token bucket first (a limited client is refused without touching
// the queue), then the in-flight gate — admitted immediately when a slot
// is free, queued while the queue has room, shed otherwise. The returned
// release must be called exactly once when the admitted request finishes.
// A context that ends while queued returns ctx.Err() and gives the spot
// up. Admit on a nil controller admits everything with a no-op release.
func (a *Admission) Admit(ctx context.Context, client string) (release func(), err error) {
	if a == nil {
		return func() {}, nil
	}
	if ok, retry := a.limiter.Allow(client); !ok {
		return nil, &Refusal{Err: ErrRateLimited, RetryAfter: retry}
	}
	if a.maxIn <= 0 {
		a.mu.Lock()
		a.admitted++
		a.mu.Unlock()
		return func() {}, nil
	}
	a.mu.Lock()
	if a.inFlight < a.maxIn {
		a.inFlight++
		a.admitted++
		a.mu.Unlock()
		return a.release, nil
	}
	if len(a.queue) >= a.maxQueue {
		a.shed++
		a.mu.Unlock()
		return nil, &Refusal{Err: ErrShed, RetryAfter: a.retryHint}
	}
	ready := make(chan struct{})
	a.queue = append(a.queue, ready)
	a.mu.Unlock()

	select {
	case <-ready:
		// The releasing request handed its slot over directly; inFlight
		// was never decremented. Queued counts grants, not arrivals, so
		// waiters that cancel never inflate it.
		a.mu.Lock()
		a.admitted++
		a.queuedEver++
		a.mu.Unlock()
		return a.release, nil
	case <-ctx.Done():
		a.mu.Lock()
		if !a.dequeue(ready) {
			// release raced us and already granted the slot: hand it
			// back so capacity never leaks.
			a.mu.Unlock()
			a.release()
		} else {
			a.mu.Unlock()
		}
		return nil, ctx.Err()
	}
}

// release returns an in-flight slot, handing it to the longest-waiting
// queued request if any.
func (a *Admission) release() {
	a.mu.Lock()
	if len(a.queue) > 0 {
		ready := a.queue[0]
		a.queue = a.queue[1:]
		close(ready)
		a.mu.Unlock()
		return
	}
	a.inFlight--
	a.mu.Unlock()
}

// dequeue removes a waiter; false means it was already granted. Callers
// hold a.mu.
func (a *Admission) dequeue(ready chan struct{}) bool {
	for i, q := range a.queue {
		if q == ready {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			return true
		}
	}
	return false
}

// AdmissionStats is a point-in-time admission snapshot.
type AdmissionStats struct {
	// MaxInFlight / MaxQueue echo the configuration (MaxInFlight 0 =
	// shedding disabled).
	MaxInFlight int `json:"max_in_flight"`
	MaxQueue    int `json:"max_queue"`
	// InFlight / QueueDepth are the current gauges.
	InFlight   int `json:"in_flight"`
	QueueDepth int `json:"queue_depth"`
	// Admitted / Shed count admission outcomes; Queued counts admitted
	// requests that had to wait for a slot first.
	Admitted int64 `json:"admitted"`
	Shed     int64 `json:"shed"`
	Queued   int64 `json:"queued"`
	// Limited is the token-bucket refusals (the limiter's own snapshot
	// carries rate/burst/clients).
	Limited int64        `json:"limited"`
	Limiter LimiterStats `json:"limiter"`
}

// Stats snapshots the controller. Safe on nil (all zeros).
func (a *Admission) Stats() AdmissionStats {
	if a == nil {
		return AdmissionStats{}
	}
	lim := a.limiter.Stats()
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		MaxInFlight: a.maxIn,
		MaxQueue:    a.maxQueue,
		InFlight:    a.inFlight,
		QueueDepth:  len(a.queue),
		Admitted:    a.admitted,
		Shed:        a.shed,
		Queued:      a.queuedEver,
		Limited:     lim.Limited,
		Limiter:     lim,
	}
}
