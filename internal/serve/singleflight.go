package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/answer"
)

// Group coalesces concurrent identical queries: the first caller (the
// leader) runs the underlying pipeline, everyone else (followers) waits
// and shares the leader's outcome. Distinct keys never wait on each other.
type Group struct {
	mu      sync.Mutex
	flights map[string]*flight

	runs   atomic.Int64 // leader executions
	shared atomic.Int64 // follower joins
}

// flight is one in-progress run.
type flight struct {
	done chan struct{}
	res  answer.Result
	err  error
}

// NewGroup returns an empty singleflight group.
func NewGroup() *Group {
	return &Group{flights: make(map[string]*flight)}
}

// GroupStats is a point-in-time dedup counters snapshot.
type GroupStats struct {
	Runs   int64 `json:"runs"`
	Shared int64 `json:"shared"`
}

// Stats snapshots the counters. Safe on a nil group (all zeros).
func (g *Group) Stats() GroupStats {
	if g == nil {
		return GroupStats{}
	}
	return GroupStats{Runs: g.runs.Load(), Shared: g.shared.Load()}
}

// Do runs fn once per key among concurrent callers. A follower whose own
// context is still live does not inherit the leader's cancellation: if the
// shared outcome is a context error, the follower retries with a fresh
// flight instead of failing through no fault of its own.
func (g *Group) Do(ctx context.Context, key string, fn func() (answer.Result, error)) (answer.Result, bool, error) {
	for {
		g.mu.Lock()
		if f, ok := g.flights[key]; ok {
			g.mu.Unlock()
			select {
			case <-ctx.Done():
				return answer.Result{}, false, ctx.Err()
			case <-f.done:
			}
			if isContextErr(f.err) && ctx.Err() == nil {
				// The leader was cancelled but this caller wasn't:
				// take another lap rather than surfacing its error.
				continue
			}
			g.shared.Add(1)
			return f.res, true, f.err
		}
		f := &flight{done: make(chan struct{})}
		g.flights[key] = f
		g.mu.Unlock()

		g.runs.Add(1)
		// Clean up even if fn panics: otherwise the flight entry leaks and
		// every future identical query blocks on f.done forever. Followers
		// see an error; the panic itself propagates on the leader's stack.
		var panicked any
		func() {
			defer func() {
				if r := recover(); r != nil {
					panicked = r
					f.err = fmt.Errorf("serve: singleflight leader panicked: %v", r)
				}
				g.mu.Lock()
				delete(g.flights, key)
				g.mu.Unlock()
				close(f.done)
			}()
			f.res, f.err = fn()
		}()
		if panicked != nil {
			panic(panicked)
		}
		return f.res, false, f.err
	}
}

// isContextErr reports whether err is (or wraps) a context outcome.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// WithSingleflight dedups concurrent identical queries onto one
// underlying run. A nil group yields a no-op middleware. scope plays the
// same role as in WithCache (nil meaning the empty namespace): it keeps
// identical questions against different substrate bindings — or different
// epochs of the same one — from coalescing onto one run.
func WithSingleflight(g *Group, scope ScopeFunc) Middleware {
	return func(inner answer.Answerer) answer.Answerer {
		if g == nil {
			return inner
		}
		return &dedupAnswerer{named: named{inner}, group: g, scope: scopeOrEmpty(scope)}
	}
}

type dedupAnswerer struct {
	named
	group *Group
	scope ScopeFunc
}

func (a *dedupAnswerer) Answer(ctx context.Context, q answer.Query) (answer.Result, error) {
	start := time.Now()
	res, shared, err := a.group.Do(ctx, key(a.inner, a.scope(), q), func() (answer.Result, error) {
		return a.inner.Answer(ctx, q)
	})
	if shared {
		if info := infoFrom(ctx); info != nil {
			info.Shared = true
		}
		// Mirror the cache middleware on both counts: the upstream cost
		// belongs to the leader's response alone, the follower's elapsed
		// time is how long it actually waited, and the result is an
		// isolated copy — the leader and every follower would otherwise
		// share one Trace pointer, so any of them mutating it would
		// corrupt the others.
		res = res.Clone()
		res.Elapsed = time.Since(start)
		res.LLMCalls = 0
		res.PromptTokens = 0
		res.CompletionTokens = 0
	}
	return res, err
}
