package serve

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/answer"
	"repro/internal/core/exec"
)

// latencyBucketsMS are the histogram upper bounds in milliseconds; the
// final implicit bucket is +Inf. Exponential-ish spacing covers the range
// from cache hits (sub-millisecond) to slow multi-call pipeline runs.
var latencyBucketsMS = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// errorClasses is the fixed set of answer error classes tracked per slot;
// anything new lands in the last, catch-all slot.
var errorClasses = []answer.ErrorClass{
	answer.ClassCanceled,
	answer.ClassDeadline,
	answer.ClassUnknownMethod,
	answer.ClassInvalidQuery,
	answer.ClassBudget,
	answer.ClassUpstream,
}

// Collector aggregates per-method serving metrics. The hot path is
// lock-cheap: one sync.Map lookup plus a handful of atomic adds; the
// mutex is only taken to insert a method's slot the first time it is seen.
type Collector struct {
	methods sync.Map // method name -> *methodStats
	mu      sync.Mutex
	start   time.Time
}

// methodStats is one method's counters; every hot-path field is atomic.
// Stage aggregation takes a short mutex — stage cardinality is tiny (four
// pipeline stages, at most a few per baseline) and spans arrive once per
// request, not per call.
type methodStats struct {
	count     atomic.Int64
	classes   [6]atomic.Int64 // indexed parallel to errorClasses
	other     atomic.Int64    // error classes outside the fixed set
	cacheHits atomic.Int64
	shared    atomic.Int64

	latencySumNS atomic.Int64
	buckets      [13]atomic.Int64 // len(latencyBucketsMS) + 1 (+Inf)

	llmCalls         atomic.Int64
	promptTokens     atomic.Int64
	completionTokens atomic.Int64

	stageMu sync.Mutex
	stages  map[string]*stageStats
}

// stageStats aggregates one stage's spans within a method.
type stageStats struct {
	count            int64
	errors           int64
	errorsByClass    map[string]int64
	latencyNS        int64
	llmCalls         int64
	promptTokens     int64
	completionTokens int64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{start: time.Now()}
}

// stats returns (creating if needed) the method's slot.
func (c *Collector) stats(method string) *methodStats {
	if s, ok := c.methods.Load(method); ok {
		return s.(*methodStats)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.methods.Load(method); ok {
		return s.(*methodStats)
	}
	s := &methodStats{}
	c.methods.Store(method, s)
	return s
}

// Record registers one completed request. usage carries the result's LLM
// accounting; pass a zero Result for failed or cache-served requests so
// upstream cost is attributed only to real runs.
func (c *Collector) Record(method string, elapsed time.Duration, err error, usage answer.Result, info Info) {
	if c == nil {
		return
	}
	s := c.stats(method)
	s.count.Add(1)
	if err != nil {
		class := answer.Classify(err)
		slot := -1
		for i, known := range errorClasses {
			if class == known {
				slot = i
				break
			}
		}
		if slot >= 0 {
			s.classes[slot].Add(1)
		} else {
			s.other.Add(1)
		}
	}
	if info.CacheHit {
		s.cacheHits.Add(1)
	}
	if info.Shared {
		s.shared.Add(1)
	}
	s.latencySumNS.Add(int64(elapsed))
	ms := float64(elapsed) / float64(time.Millisecond)
	slot := len(latencyBucketsMS)
	for i, bound := range latencyBucketsMS {
		if ms <= bound {
			slot = i
			break
		}
	}
	s.buckets[slot].Add(1)
	s.llmCalls.Add(int64(usage.LLMCalls))
	s.promptTokens.Add(int64(usage.PromptTokens))
	s.completionTokens.Add(int64(usage.CompletionTokens))
}

// RecordStages folds one run's stage spans into the method's per-stage
// aggregates. Callers skip cache hits and coalesced runs — their spans
// belong to the run that actually executed.
func (c *Collector) RecordStages(method string, spans []exec.Span) {
	if c == nil || len(spans) == 0 {
		return
	}
	s := c.stats(method)
	s.stageMu.Lock()
	defer s.stageMu.Unlock()
	if s.stages == nil {
		s.stages = make(map[string]*stageStats, len(spans))
	}
	for _, sp := range spans {
		st := s.stages[sp.Stage]
		if st == nil {
			st = &stageStats{}
			s.stages[sp.Stage] = st
		}
		st.count++
		if sp.Err != "" {
			st.errors++
			if st.errorsByClass == nil {
				st.errorsByClass = map[string]int64{}
			}
			st.errorsByClass[sp.Err]++
		}
		st.latencyNS += int64(sp.Latency)
		st.llmCalls += int64(sp.LLMCalls)
		st.promptTokens += int64(sp.PromptTokens)
		st.completionTokens += int64(sp.CompletionTokens)
	}
}

// LatencySnapshot summarises a method's latency distribution.
type LatencySnapshot struct {
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	// Buckets maps each upper bound (ms; -1 = +Inf) to its count, in
	// bound order.
	Buckets []BucketCount `json:"buckets"`
}

// BucketCount is one histogram cell.
type BucketCount struct {
	UpperMS float64 `json:"upper_ms"` // -1 means +Inf
	Count   int64   `json:"count"`
}

// StageSnapshot is one stage's aggregate within a method: how often it
// ran, how long it took, what it cost, and how it failed.
type StageSnapshot struct {
	Stage            string           `json:"stage"`
	Count            int64            `json:"count"`
	Errors           int64            `json:"errors"`
	ErrorsByClass    map[string]int64 `json:"errors_by_class,omitempty"`
	MeanLatencyMS    float64          `json:"mean_latency_ms"`
	LLMCalls         int64            `json:"llm_calls"`
	PromptTokens     int64            `json:"prompt_tokens"`
	CompletionTokens int64            `json:"completion_tokens"`
}

// MethodSnapshot is one method's point-in-time metrics.
type MethodSnapshot struct {
	Method           string           `json:"method"`
	Count            int64            `json:"count"`
	Errors           int64            `json:"errors"`
	ErrorsByClass    map[string]int64 `json:"errors_by_class,omitempty"`
	CacheHits        int64            `json:"cache_hits"`
	SharedRuns       int64            `json:"shared_runs"`
	LLMCalls         int64            `json:"llm_calls"`
	PromptTokens     int64            `json:"prompt_tokens"`
	CompletionTokens int64            `json:"completion_tokens"`
	Latency          LatencySnapshot  `json:"latency"`
	// Stages breaks the method down per executed stage, sorted by stage
	// name; empty until the method has reported spans.
	Stages []StageSnapshot `json:"stages,omitempty"`
}

// Snapshot returns every method's metrics, sorted by method name.
func (c *Collector) Snapshot() []MethodSnapshot {
	if c == nil {
		return nil
	}
	var out []MethodSnapshot
	c.methods.Range(func(k, v any) bool {
		s := v.(*methodStats)
		snap := MethodSnapshot{
			Method:           k.(string),
			Count:            s.count.Load(),
			CacheHits:        s.cacheHits.Load(),
			SharedRuns:       s.shared.Load(),
			LLMCalls:         s.llmCalls.Load(),
			PromptTokens:     s.promptTokens.Load(),
			CompletionTokens: s.completionTokens.Load(),
		}
		byClass := map[string]int64{}
		for i, class := range errorClasses {
			if n := s.classes[i].Load(); n > 0 {
				byClass[string(class)] = n
				snap.Errors += n
			}
		}
		if n := s.other.Load(); n > 0 {
			byClass["other"] = n
			snap.Errors += n
		}
		if len(byClass) > 0 {
			snap.ErrorsByClass = byClass
		}
		snap.Latency = latencySnapshot(s)
		snap.Stages = stageSnapshots(s)
		out = append(out, snap)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Method < out[j].Method })
	return out
}

// stageSnapshots folds a method's per-stage aggregates, sorted by stage
// name for stable output.
func stageSnapshots(s *methodStats) []StageSnapshot {
	s.stageMu.Lock()
	defer s.stageMu.Unlock()
	if len(s.stages) == 0 {
		return nil
	}
	out := make([]StageSnapshot, 0, len(s.stages))
	for name, st := range s.stages {
		snap := StageSnapshot{
			Stage:            name,
			Count:            st.count,
			Errors:           st.errors,
			LLMCalls:         st.llmCalls,
			PromptTokens:     st.promptTokens,
			CompletionTokens: st.completionTokens,
		}
		if len(st.errorsByClass) > 0 {
			snap.ErrorsByClass = make(map[string]int64, len(st.errorsByClass))
			for k, v := range st.errorsByClass {
				snap.ErrorsByClass[k] = v
			}
		}
		if st.count > 0 {
			snap.MeanLatencyMS = float64(st.latencyNS) / float64(st.count) / float64(time.Millisecond)
		}
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}

// latencySnapshot folds a method's histogram into mean and estimated
// quantiles (linear interpolation within the winning bucket).
func latencySnapshot(s *methodStats) LatencySnapshot {
	var snap LatencySnapshot
	var total int64
	counts := make([]int64, len(latencyBucketsMS)+1)
	for i := range counts {
		counts[i] = s.buckets[i].Load()
		total += counts[i]
		upper := -1.0
		if i < len(latencyBucketsMS) {
			upper = latencyBucketsMS[i]
		}
		snap.Buckets = append(snap.Buckets, BucketCount{UpperMS: upper, Count: counts[i]})
	}
	if total == 0 {
		return snap
	}
	snap.MeanMS = float64(s.latencySumNS.Load()) / float64(total) / float64(time.Millisecond)
	snap.P50MS = quantile(counts, total, 0.50)
	snap.P95MS = quantile(counts, total, 0.95)
	snap.P99MS = quantile(counts, total, 0.99)
	return snap
}

// quantile estimates the q-quantile from bucket counts: the position
// interpolated linearly inside the bucket that crosses rank q*total. The
// +Inf bucket reports its lower bound.
func quantile(counts []int64, total int64, q float64) float64 {
	rank := q * float64(total)
	var seen float64
	for i, n := range counts {
		if n == 0 {
			continue
		}
		if seen+float64(n) >= rank {
			lo := 0.0
			if i > 0 {
				lo = latencyBucketsMS[i-1]
			}
			if i >= len(latencyBucketsMS) {
				return lo // +Inf bucket: report its floor
			}
			hi := latencyBucketsMS[i]
			frac := (rank - seen) / float64(n)
			return lo + (hi-lo)*frac
		}
		seen += float64(n)
	}
	return 0
}

// WithMetrics records every request's count, latency, error class and —
// for real (non-cache-hit) runs — LLM cost. Place it outermost so its
// clock covers the whole stack. A nil collector yields a no-op middleware.
func WithMetrics(c *Collector) Middleware {
	return func(inner answer.Answerer) answer.Answerer {
		if c == nil {
			return inner
		}
		return &meteredAnswerer{named: named{inner}, collector: c}
	}
}

type meteredAnswerer struct {
	named
	collector *Collector
}

func (a *meteredAnswerer) Answer(ctx context.Context, q answer.Query) (answer.Result, error) {
	info := infoFrom(ctx)
	if info == nil {
		// No caller-attached Info: attach one so inner layers can still
		// report cache hits for cost attribution.
		ctx, info = Attach(ctx)
	}
	start := time.Now()
	res, err := a.inner.Answer(ctx, q)
	usage := res
	if info.CacheHit || info.Shared {
		// The upstream cost was (or will be) attributed to the run that
		// actually executed; count nothing twice.
		usage = answer.Result{}
	} else if res.Trace != nil {
		// Per-stage aggregation from the run's spans — failed runs report
		// their partial spans too, so the failing stage is attributed.
		a.collector.RecordStages(a.inner.Name(), res.Trace.Stages)
	}
	a.collector.Record(a.inner.Name(), time.Since(start), err, usage, *info)
	return res, err
}
