package serve

import (
	"context"
	"errors"
	"testing"

	"repro/internal/answer"
	"repro/internal/core"
	"repro/internal/core/exec"
	"repro/internal/kg"
	"repro/internal/trace"
)

// tracedStub answers with a fixed result carrying a full trace.
type tracedStub struct {
	res answer.Result
	err error
}

func (s *tracedStub) Name() string { return "stub" }
func (s *tracedStub) Answer(ctx context.Context, q answer.Query) (answer.Result, error) {
	return s.res, s.err
}

func TestWithTraceRecordsSuccess(t *testing.T) {
	store := trace.NewMemStore()
	stub := &tracedStub{res: answer.Result{
		Answer: "Beijing", Method: "ours", Model: "GPT-4", Epoch: 5,
		LLMCalls: 2, PromptTokens: 10, CompletionTokens: 4,
		Trace: &core.Trace{
			Gf:     kg.NewGraph(kg.NewTriple("China", "capital", "Beijing")),
			Stages: []exec.Span{{Stage: core.StageAnswer, LLMCalls: 1}},
		},
	}}
	stack := Stack(stub, WithTrace(store, "wikidata"))
	if _, err := stack.Answer(context.Background(), answer.Query{Text: "capital of China?"}); err != nil {
		t.Fatal(err)
	}
	recs, err := store.List(trace.ListOptions{})
	if err != nil || len(recs) != 1 {
		t.Fatalf("want 1 record, got %d (%v)", len(recs), err)
	}
	rec := recs[0]
	if rec.ID == "" || rec.Time == "" {
		t.Fatalf("record not stamped: %+v", rec)
	}
	if rec.Question != "capital of China?" || rec.Method != "ours" || rec.KG != "wikidata" {
		t.Fatalf("identity wrong: %+v", rec)
	}
	if rec.Epoch != 5 || rec.CacheHit || rec.LLMCalls != 2 {
		t.Fatalf("epoch/usage wrong: %+v", rec)
	}
	if len(rec.Stages) != 1 || len(rec.Gf) != 1 {
		t.Fatalf("trace artefacts missing: %+v", rec)
	}
}

func TestWithTraceRecordsFailure(t *testing.T) {
	store := trace.NewMemStore()
	stub := &tracedStub{
		res: answer.Result{Method: "cot", Trace: &core.Trace{Stages: []exec.Span{{Stage: "sample", Err: exec.ErrClassUpstream}}}},
		err: errors.New("llm exploded"),
	}
	stack := Stack(stub, WithTrace(store, "freebase"))
	if _, err := stack.Answer(context.Background(), answer.Query{Text: "q?"}); err == nil {
		t.Fatal("stub error should propagate")
	}
	recs, _ := store.List(trace.ListOptions{})
	if len(recs) != 1 {
		t.Fatalf("failed runs must be recorded too, got %d", len(recs))
	}
	if recs[0].Error == "" || recs[0].ErrorClass != string(answer.ClassUpstream) {
		t.Fatalf("error not captured: %+v", recs[0])
	}
	if len(recs[0].Stages) != 1 {
		t.Fatalf("partial spans lost: %+v", recs[0])
	}
}

// TestWithTraceCapturesCacheHit: the tracing layer sits outside the cache,
// so a hit's record must carry CacheHit=true — replay needs it to exclude
// zero-usage hits from cost comparisons.
func TestWithTraceCapturesCacheHit(t *testing.T) {
	store := trace.NewMemStore()
	stub := &tracedStub{res: answer.Result{Answer: "a", Method: "ours", LLMCalls: 3}}
	cache := NewCache(CacheConfig{Size: 8})
	stack := Stack(stub, WithTrace(store, "wikidata"), WithCache(cache, nil))

	q := answer.Query{Text: "repeat me"}
	if _, err := stack.Answer(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if _, err := stack.Answer(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	recs, _ := store.List(trace.ListOptions{})
	if len(recs) != 2 {
		t.Fatalf("want 2 records, got %d", len(recs))
	}
	// Newest first: the second request hit.
	if !recs[0].CacheHit || recs[0].LLMCalls != 0 {
		t.Fatalf("hit record wrong: %+v", recs[0])
	}
	if recs[1].CacheHit {
		t.Fatalf("miss record wrong: %+v", recs[1])
	}
}

func TestWithTraceNilRecorderIsNoop(t *testing.T) {
	stub := &tracedStub{res: answer.Result{Answer: "a"}}
	stack := Stack(stub, WithTrace(nil, "wikidata"))
	if stack != stub {
		t.Fatal("nil recorder should return the inner answerer unchanged")
	}
}

// TestWithTraceSwallowsAppendFailure: a broken store must never fail the
// request.
type failingRecorder struct{}

func (failingRecorder) Append(trace.Record) (trace.Record, error) {
	return trace.Record{}, errors.New("disk full")
}

func TestWithTraceSwallowsAppendFailure(t *testing.T) {
	stub := &tracedStub{res: answer.Result{Answer: "a"}}
	stack := Stack(stub, WithTrace(failingRecorder{}, "wikidata"))
	res, err := stack.Answer(context.Background(), answer.Query{Text: "q"})
	if err != nil || res.Answer != "a" {
		t.Fatalf("append failure leaked into the request: %v", err)
	}
}
