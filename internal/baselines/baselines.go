// Package baselines implements the comparison methods of the paper's
// Table II: IO prompting, Chain-of-Thought, Self-Consistency, question-
// level RAG, and Think-on-Graph (ToG). Each is a small strategy over the
// same llm.Client and KG substrates the PG&AKV pipeline uses, so method
// differences — not plumbing differences — drive the benchmark deltas.
package baselines

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/embed"
	"repro/internal/kg"
	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/prompts"
	"repro/internal/vecstore"
)

// IO answers with the standard input-output prompt (6 in-context
// examples), no reasoning elicitation.
func IO(ctx context.Context, client llm.Client, question string) (string, error) {
	resp, err := client.Complete(ctx, llm.Request{Prompt: prompts.IO(question)})
	if err != nil {
		return "", fmt.Errorf("baselines: IO: %w", err)
	}
	return resp.Text, nil
}

// CoT answers with chain-of-thought prompting.
func CoT(ctx context.Context, client llm.Client, question string) (string, error) {
	resp, err := client.Complete(ctx, llm.Request{Prompt: prompts.CoT(question)})
	if err != nil {
		return "", fmt.Errorf("baselines: CoT: %w", err)
	}
	return resp.Text, nil
}

// SCConfig parameterises Self-Consistency; the paper samples three CoT
// completions at temperature 0.7 and votes.
type SCConfig struct {
	Samples     int
	Temperature float64
}

// DefaultSCConfig returns the paper's SC settings.
func DefaultSCConfig() SCConfig { return SCConfig{Samples: 3, Temperature: 0.7} }

// SC answers with Self-Consistency: sample several CoT completions and
// aggregate. Precise answers vote on the normalised {marked} entity; open
// answers take the medoid by pairwise ROUGE-L (the sample most consistent
// with the others).
func SC(ctx context.Context, client llm.Client, question string, open bool, cfg SCConfig) (string, error) {
	if cfg.Samples < 1 {
		cfg = DefaultSCConfig()
	}
	samples := make([]string, 0, cfg.Samples)
	for i := 0; i < cfg.Samples; i++ {
		resp, err := client.Complete(ctx, llm.Request{
			Prompt:      prompts.CoT(question),
			Temperature: cfg.Temperature,
			Nonce:       i,
		})
		if err != nil {
			return "", fmt.Errorf("baselines: SC sample %d: %w", i, err)
		}
		samples = append(samples, resp.Text)
	}
	if open {
		return scMedoid(samples), nil
	}
	return scVote(samples), nil
}

// scVote picks the majority normalised marked answer; ties break toward
// the earliest sample, mirroring greedy preference.
func scVote(samples []string) string {
	counts := map[string]int{}
	first := map[string]int{}
	for i, s := range samples {
		key := metrics.NormalizeAnswer(metrics.ExtractMarked(s))
		counts[key]++
		if _, ok := first[key]; !ok {
			first[key] = i
		}
	}
	bestKey := ""
	bestCount := -1
	for key, c := range counts {
		if c > bestCount || (c == bestCount && first[key] < first[bestKey]) {
			bestKey = key
			bestCount = c
		}
	}
	return samples[first[bestKey]]
}

// scMedoid picks the sample with the highest mean ROUGE-L-f1 against the
// other samples.
func scMedoid(samples []string) string {
	if len(samples) == 1 {
		return samples[0]
	}
	best := 0
	bestScore := -1.0
	for i := range samples {
		var sum float64
		for j := range samples {
			if i == j {
				continue
			}
			_, _, f1 := metrics.RougeL(samples[i], samples[j])
			sum += f1
		}
		if sum > bestScore {
			bestScore = sum
			best = i
		}
	}
	return samples[best]
}

// RAGConfig parameterises question-level retrieval.
type RAGConfig struct {
	// TopK is how many triples are retrieved for the question.
	TopK int
}

// DefaultRAGConfig returns the standard setting.
func DefaultRAGConfig() RAGConfig { return RAGConfig{TopK: 5} }

// RAG retrieves the triples most similar to the *question text* (not to
// pseudo-triples — that is the method's defining weakness on multi-hop
// questions, where intermediate entities never appear in the question) and
// answers from them.
func RAG(ctx context.Context, client llm.Client, index vecstore.Searcher, question string, cfg RAGConfig) (string, error) {
	if cfg.TopK <= 0 {
		cfg = DefaultRAGConfig()
	}
	hits := index.Search(question, cfg.TopK)
	g := &kg.Graph{}
	for _, h := range hits {
		g.Add(h.Triple)
	}
	resp, err := client.Complete(ctx, llm.Request{
		Prompt: prompts.AnswerFromGraph(question, g.String()),
	})
	if err != nil {
		return "", fmt.Errorf("baselines: RAG: %w", err)
	}
	return resp.Text, nil
}

// ToGConfig parameterises Think-on-Graph exploration.
type ToGConfig struct {
	// Depth is the exploration depth (hops from the anchors).
	Depth int
	// RelBeam is how many relations are kept per entity per hop.
	RelBeam int
	// WidthCap bounds the frontier size.
	WidthCap int
}

// DefaultToGConfig returns the exploration settings used in the benches.
func DefaultToGConfig() ToGConfig { return ToGConfig{Depth: 3, RelBeam: 2, WidthCap: 8} }

// ToG implements Think-on-Graph: anchored at the gold topic entities (the
// paper notes ToG "leaks the QID" — the anchors are given, which is its
// headline advantage and its generalisation weakness), it explores the KG
// by asking the LLM to score each candidate relation against the question
// (the original method's LLM-based pruning, and its dominant error
// source), then answers from the explored subgraph.
func ToG(ctx context.Context, client llm.Client, store kg.Reader, enc *embed.Encoder, question string, anchors []string, cfg ToGConfig) (string, error) {
	if cfg.Depth <= 0 {
		cfg = DefaultToGConfig()
	}
	explored := &kg.Graph{}
	frontier := make([]string, 0, len(anchors))
	for _, a := range anchors {
		if canonical, ok := store.FindSubjectFold(a); ok {
			frontier = append(frontier, canonical)
		}
	}
	seen := map[string]bool{}
	for depth := 0; depth < cfg.Depth && len(frontier) > 0; depth++ {
		var next []string
		for _, ent := range frontier {
			if seen[ent] {
				continue
			}
			seen[ent] = true
			triples := store.Subject(ent)
			if len(triples) == 0 {
				continue
			}
			var candidates []string
			seenRel := map[string]bool{}
			for _, t := range triples {
				if !seenRel[t.Relation] {
					seenRel[t.Relation] = true
					candidates = append(candidates, t.Relation)
				}
			}
			kept, err := pruneRelations(ctx, client, question, candidates, cfg.RelBeam)
			if err != nil {
				return "", fmt.Errorf("baselines: ToG: %w", err)
			}
			for _, rel := range kept {
				for _, t := range store.SubjectRelation(ent, rel) {
					explored.Add(t)
					if len(next) < cfg.WidthCap && store.HasSubject(t.Object) {
						next = append(next, t.Object)
					}
				}
			}
		}
		frontier = next
	}

	resp, err := client.Complete(ctx, llm.Request{
		Prompt: prompts.AnswerFromGraph(question, explored.Dedup().String()),
	})
	if err != nil {
		return "", fmt.Errorf("baselines: ToG: %w", err)
	}
	return resp.Text, nil
}

// pruneRelations asks the LLM to score candidate relations against the
// question and keeps the top beam.
func pruneRelations(ctx context.Context, client llm.Client, question string, candidates []string, beam int) ([]string, error) {
	if beam <= 0 {
		beam = 2
	}
	if len(candidates) <= beam {
		return candidates, nil
	}
	resp, err := client.Complete(ctx, llm.Request{
		Prompt: prompts.ScoreRelations(question, candidates),
	})
	if err != nil {
		return nil, err
	}
	scores := llm.ParseRelScores(resp.Text)
	sorted := append([]string(nil), candidates...)
	sort.SliceStable(sorted, func(i, j int) bool {
		si, sj := scores[sorted[i]], scores[sorted[j]]
		if si != sj {
			return si > sj
		}
		return sorted[i] < sorted[j]
	})
	return sorted[:beam], nil
}
