// Package baselines implements the comparison methods of the paper's
// Table II: IO prompting, Chain-of-Thought, Self-Consistency, question-
// level RAG, and Think-on-Graph (ToG). Each method is a composition of
// typed stages (internal/core/exec) over the same llm.Client and KG
// substrates the PG&AKV pipeline uses, so method differences — not
// plumbing differences — drive the benchmark deltas, and every method
// emits the same per-stage trace spans (latency, LLM usage, sizes) the
// pipeline does.
package baselines

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core/exec"
	"repro/internal/embed"
	"repro/internal/kg"
	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/prompts"
	"repro/internal/vecstore"
)

// Stage names of the baseline compositions.
const (
	// StageAnswer is the final (for IO/CoT: only) LLM answer generation.
	StageAnswer = "answer"
	// StageSample is Self-Consistency's multi-sample draw.
	StageSample = "sample"
	// StageAggregate is Self-Consistency's vote/medoid fold (no LLM).
	StageAggregate = "aggregate"
	// StageRetrieve is RAG's question-level vector retrieval (no LLM).
	StageRetrieve = "retrieve"
	// StageExplore is ToG's anchored KG exploration with LLM pruning.
	StageExplore = "explore"
)

// State is the shared scratch space a baseline composition runs over: each
// stage reads what earlier stages produced and writes its own artefact.
type State struct {
	Question string
	// Open marks an open-ended question (SC aggregates by medoid instead
	// of majority vote).
	Open bool
	// Anchors are the gold topic entities anchor-based methods start from.
	Anchors []string

	// Samples holds SC's drawn completions.
	Samples []string
	// Graph is the evidence graph retrieval/exploration stages build.
	Graph *kg.Graph
	// Answer is the composition's final output.
	Answer string
}

// view resolves the prompt view for a request: the View pinned into the
// context by the answer layer wins (carrying per-request A/B overrides
// and hot-reload consistency); bare callers fall back to the shared
// default registry's active set.
func view(ctx context.Context) *prompts.View {
	return prompts.Default().For(ctx)
}

// answerStage builds the terminal LLM stage from a prompt constructor.
func answerStage(client llm.Client, build func(ctx context.Context, s *State) string, wrap string) exec.Stage[State] {
	return exec.Stage[State]{
		Name: StageAnswer,
		Run: func(ctx context.Context, s *State) error {
			resp, err := client.Complete(ctx, llm.Request{Prompt: build(ctx, s)})
			if err != nil {
				return fmt.Errorf("baselines: %s: %w", wrap, err)
			}
			s.Answer = resp.Text
			return nil
		},
		InputSize:  func(s *State) int { return len(s.Question) },
		OutputSize: func(s *State) int { return len(s.Answer) },
	}
}

// IOStages is the IO composition: one answer stage with the standard
// input-output prompt (6 in-context examples), no reasoning elicitation.
func IOStages(client llm.Client) []exec.Stage[State] {
	return []exec.Stage[State]{
		answerStage(client, func(ctx context.Context, s *State) string { return view(ctx).IO(s.Question) }, "IO"),
	}
}

// CoTStages is the Chain-of-Thought composition.
func CoTStages(client llm.Client) []exec.Stage[State] {
	return []exec.Stage[State]{
		answerStage(client, func(ctx context.Context, s *State) string { return view(ctx).CoT(s.Question) }, "CoT"),
	}
}

// IO answers with the standard input-output prompt.
func IO(ctx context.Context, client llm.Client, question string) (string, error) {
	return runComposition(ctx, question, false, nil, IOStages(client))
}

// CoT answers with chain-of-thought prompting.
func CoT(ctx context.Context, client llm.Client, question string) (string, error) {
	return runComposition(ctx, question, false, nil, CoTStages(client))
}

// runComposition executes a baseline composition over a fresh state.
func runComposition(ctx context.Context, question string, open bool, anchors []string, stages []exec.Stage[State]) (string, error) {
	st := State{Question: question, Open: open, Anchors: anchors}
	if _, err := exec.Run(ctx, &st, exec.Options{}, stages...); err != nil {
		return "", err
	}
	return st.Answer, nil
}

// SCConfig parameterises Self-Consistency; the paper samples three CoT
// completions at temperature 0.7 and votes.
type SCConfig struct {
	Samples     int
	Temperature float64
}

// DefaultSCConfig returns the paper's SC settings.
func DefaultSCConfig() SCConfig { return SCConfig{Samples: 3, Temperature: 0.7} }

// SCStages is the Self-Consistency composition: a sampling stage that
// draws cfg.Samples CoT completions, then an LLM-free aggregation stage —
// majority vote on the normalised {marked} entity for precise questions,
// pairwise-ROUGE medoid for open ones.
func SCStages(client llm.Client, cfg SCConfig) []exec.Stage[State] {
	if cfg.Samples < 1 {
		cfg = DefaultSCConfig()
	}
	return []exec.Stage[State]{
		{
			Name: StageSample,
			Run: func(ctx context.Context, s *State) error {
				s.Samples = s.Samples[:0]
				for i := 0; i < cfg.Samples; i++ {
					resp, err := client.Complete(ctx, llm.Request{
						Prompt:      view(ctx).CoT(s.Question),
						Temperature: cfg.Temperature,
						Nonce:       i,
					})
					if err != nil {
						return fmt.Errorf("baselines: SC sample %d: %w", i, err)
					}
					s.Samples = append(s.Samples, resp.Text)
				}
				return nil
			},
			InputSize:  func(s *State) int { return len(s.Question) },
			OutputSize: func(s *State) int { return len(s.Samples) },
		},
		{
			Name: StageAggregate,
			Run: func(ctx context.Context, s *State) error {
				if s.Open {
					s.Answer = scMedoid(s.Samples)
				} else {
					s.Answer = scVote(s.Samples)
				}
				return nil
			},
			InputSize:  func(s *State) int { return len(s.Samples) },
			OutputSize: func(s *State) int { return len(s.Answer) },
		},
	}
}

// SC answers with Self-Consistency: sample several CoT completions and
// aggregate.
func SC(ctx context.Context, client llm.Client, question string, open bool, cfg SCConfig) (string, error) {
	return runComposition(ctx, question, open, nil, SCStages(client, cfg))
}

// scVote picks the majority normalised marked answer; ties break toward
// the earliest sample, mirroring greedy preference.
func scVote(samples []string) string {
	counts := map[string]int{}
	first := map[string]int{}
	for i, s := range samples {
		key := metrics.NormalizeAnswer(metrics.ExtractMarked(s))
		counts[key]++
		if _, ok := first[key]; !ok {
			first[key] = i
		}
	}
	bestKey := ""
	bestCount := -1
	for key, c := range counts {
		if c > bestCount || (c == bestCount && first[key] < first[bestKey]) {
			bestKey = key
			bestCount = c
		}
	}
	return samples[first[bestKey]]
}

// scMedoid picks the sample with the highest mean ROUGE-L-f1 against the
// other samples.
func scMedoid(samples []string) string {
	if len(samples) == 1 {
		return samples[0]
	}
	best := 0
	bestScore := -1.0
	for i := range samples {
		var sum float64
		for j := range samples {
			if i == j {
				continue
			}
			_, _, f1 := metrics.RougeL(samples[i], samples[j])
			sum += f1
		}
		if sum > bestScore {
			bestScore = sum
			best = i
		}
	}
	return samples[best]
}

// RAGConfig parameterises question-level retrieval.
type RAGConfig struct {
	// TopK is how many triples are retrieved for the question.
	TopK int
}

// DefaultRAGConfig returns the standard setting.
func DefaultRAGConfig() RAGConfig { return RAGConfig{TopK: 5} }

// RAGStages is the RAG composition: an LLM-free retrieval stage over the
// *question text* (not pseudo-triples — the method's defining weakness on
// multi-hop questions, where intermediate entities never appear in the
// question), then answer generation from the retrieved triples.
func RAGStages(client llm.Client, index vecstore.Searcher, cfg RAGConfig) []exec.Stage[State] {
	if cfg.TopK <= 0 {
		cfg = DefaultRAGConfig()
	}
	return []exec.Stage[State]{
		{
			Name: StageRetrieve,
			Run: func(ctx context.Context, s *State) error {
				g := &kg.Graph{}
				for _, h := range index.Search(s.Question, cfg.TopK) {
					g.Add(h.Triple)
				}
				s.Graph = g
				return nil
			},
			InputSize:  func(s *State) int { return len(s.Question) },
			OutputSize: func(s *State) int { return s.Graph.Len() },
		},
		answerStage(client, func(ctx context.Context, s *State) string {
			return view(ctx).AnswerFromGraph(s.Question, s.Graph.String())
		}, "RAG"),
	}
}

// RAG retrieves the triples most similar to the question and answers from
// them.
func RAG(ctx context.Context, client llm.Client, index vecstore.Searcher, question string, cfg RAGConfig) (string, error) {
	return runComposition(ctx, question, false, nil, RAGStages(client, index, cfg))
}

// ToGConfig parameterises Think-on-Graph exploration.
type ToGConfig struct {
	// Depth is the exploration depth (hops from the anchors).
	Depth int
	// RelBeam is how many relations are kept per entity per hop.
	RelBeam int
	// WidthCap bounds the frontier size.
	WidthCap int
}

// DefaultToGConfig returns the exploration settings used in the benches.
func DefaultToGConfig() ToGConfig { return ToGConfig{Depth: 3, RelBeam: 2, WidthCap: 8} }

// ToGStages is the Think-on-Graph composition: anchored at the gold topic
// entities (the paper notes ToG "leaks the QID" — the anchors are given,
// which is its headline advantage and its generalisation weakness), an
// exploration stage walks the KG asking the LLM to score each candidate
// relation against the question (the original method's LLM-based pruning,
// and its dominant error source), then an answer stage reads the explored
// subgraph.
func ToGStages(client llm.Client, store kg.Reader, cfg ToGConfig) []exec.Stage[State] {
	if cfg.Depth <= 0 {
		cfg = DefaultToGConfig()
	}
	return []exec.Stage[State]{
		{
			Name: StageExplore,
			Run: func(ctx context.Context, s *State) error {
				explored, err := explore(ctx, client, store, s.Question, s.Anchors, cfg)
				if err != nil {
					return err
				}
				s.Graph = explored
				return nil
			},
			InputSize:  func(s *State) int { return len(s.Anchors) },
			OutputSize: func(s *State) int { return s.Graph.Len() },
		},
		answerStage(client, func(ctx context.Context, s *State) string {
			return view(ctx).AnswerFromGraph(s.Question, s.Graph.String())
		}, "ToG"),
	}
}

// ToG implements Think-on-Graph over the gold topic entities. The encoder
// parameter is kept for signature stability with earlier revisions.
func ToG(ctx context.Context, client llm.Client, store kg.Reader, enc *embed.Encoder, question string, anchors []string, cfg ToGConfig) (string, error) {
	_ = enc
	return runComposition(ctx, question, false, anchors, ToGStages(client, store, cfg))
}

// explore walks the KG from the anchors, keeping the LLM-pruned relation
// beam per entity per hop, and returns the deduplicated explored subgraph.
func explore(ctx context.Context, client llm.Client, store kg.Reader, question string, anchors []string, cfg ToGConfig) (*kg.Graph, error) {
	explored := &kg.Graph{}
	frontier := make([]string, 0, len(anchors))
	for _, a := range anchors {
		if canonical, ok := store.FindSubjectFold(a); ok {
			frontier = append(frontier, canonical)
		}
	}
	seen := map[string]bool{}
	for depth := 0; depth < cfg.Depth && len(frontier) > 0; depth++ {
		var next []string
		for _, ent := range frontier {
			if seen[ent] {
				continue
			}
			seen[ent] = true
			triples := store.Subject(ent)
			if len(triples) == 0 {
				continue
			}
			var candidates []string
			seenRel := map[string]bool{}
			for _, t := range triples {
				if !seenRel[t.Relation] {
					seenRel[t.Relation] = true
					candidates = append(candidates, t.Relation)
				}
			}
			kept, err := pruneRelations(ctx, client, question, candidates, cfg.RelBeam)
			if err != nil {
				return nil, fmt.Errorf("baselines: ToG: %w", err)
			}
			for _, rel := range kept {
				for _, t := range store.SubjectRelation(ent, rel) {
					explored.Add(t)
					if len(next) < cfg.WidthCap && store.HasSubject(t.Object) {
						next = append(next, t.Object)
					}
				}
			}
		}
		frontier = next
	}
	return explored.Dedup(), nil
}

// pruneRelations asks the LLM to score candidate relations against the
// question and keeps the top beam.
func pruneRelations(ctx context.Context, client llm.Client, question string, candidates []string, beam int) ([]string, error) {
	if beam <= 0 {
		beam = 2
	}
	if len(candidates) <= beam {
		return candidates, nil
	}
	resp, err := client.Complete(ctx, llm.Request{
		Prompt: view(ctx).ScoreRelations(question, candidates),
	})
	if err != nil {
		return nil, err
	}
	scores := llm.ParseRelScores(resp.Text)
	sorted := append([]string(nil), candidates...)
	sort.SliceStable(sorted, func(i, j int) bool {
		si, sj := scores[sorted[i]], scores[sorted[j]]
		if si != sj {
			return si > sj
		}
		return sorted[i] < sorted[j]
	})
	return sorted[:beam], nil
}
