package baselines

import (
	"context"
	"testing"

	"repro/internal/embed"
	"repro/internal/kg"
	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/prompts"
	"repro/internal/vecstore"
	"repro/internal/world"
)

func testEnv(t testing.TB) (*world.World, *llm.SimLM, *kg.Store, *vecstore.Index) {
	t.Helper()
	cfg := world.DefaultConfig()
	cfg.People = 100
	cfg.Cities = 40
	cfg.Countries = 16
	cfg.Works = 60
	cfg.Companies = 24
	cfg.Universities = 12
	cfg.Lakes = 20
	cfg.Mountains = 12
	cfg.Rivers = 20
	w := world.MustGenerate(cfg)
	m := llm.NewSim(w, llm.GPT4Params(), 42)
	st := world.WikidataSchema().Render(w)
	idx := vecstore.Build(embed.NewEncoder(), st)
	return w, m, st, idx
}

func TestIOAndCoTProduceMarkedAnswers(t *testing.T) {
	w, m, _, _ := testEnv(t)
	q := "Where was " + w.Entities[w.OfKind(world.KindPerson)[0]].Name + " born?"
	for name, fn := range map[string]func(context.Context, llm.Client, string) (string, error){
		"IO": IO, "CoT": CoT,
	} {
		out, err := fn(context.Background(), m, q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if metrics.ExtractMarked(out) == out {
			t.Errorf("%s answer unmarked: %q", name, out)
		}
	}
}

func TestSCVoteMajority(t *testing.T) {
	got := scVote([]string{"the answer is {Paris}.", "I think {Rome}.", "surely {Paris}!"})
	if metrics.NormalizeAnswer(metrics.ExtractMarked(got)) != "paris" {
		t.Errorf("vote = %q", got)
	}
}

func TestSCVoteTieBreaksEarliest(t *testing.T) {
	got := scVote([]string{"{Rome} maybe", "{Paris} maybe"})
	if metrics.NormalizeAnswer(metrics.ExtractMarked(got)) != "rome" {
		t.Errorf("tie break = %q", got)
	}
}

func TestSCMedoid(t *testing.T) {
	samples := []string{
		"alpha beta gamma delta",
		"alpha beta gamma epsilon",
		"totally different words here",
	}
	got := scMedoid(samples)
	if got == samples[2] {
		t.Errorf("medoid picked the outlier: %q", got)
	}
	if scMedoid(samples[:1]) != samples[0] {
		t.Error("single-sample medoid should be identity")
	}
}

func TestSCDeterministic(t *testing.T) {
	w, m, _, _ := testEnv(t)
	q := "Where was " + w.Entities[w.OfKind(world.KindPerson)[5]].Name + " born?"
	a, err := SC(context.Background(), m, q, false, DefaultSCConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SC(context.Background(), m, q, false, DefaultSCConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("SC not deterministic")
	}
}

func TestRAGRetrievesAndAnswers(t *testing.T) {
	w, m, _, idx := testEnv(t)
	city := w.Entities[w.OfKind(world.KindCity)[0]]
	q := "What is the population of " + city.Name + "?"
	out, err := RAG(context.Background(), m, idx, q, DefaultRAGConfig())
	if err != nil {
		t.Fatal(err)
	}
	if metrics.ExtractMarked(out) == out {
		t.Errorf("RAG answer unmarked: %q", out)
	}
}

func TestToGAnchorsOnGoldEntity(t *testing.T) {
	w, m, st, _ := testEnv(t)
	enc := embed.NewEncoder()
	city := w.Entities[w.OfKind(world.KindCity)[0]]
	q := "What is the population of " + city.Name + "?"
	out, err := ToG(context.Background(), m, st, enc, q, []string{city.Name}, DefaultToGConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Cities have only two relations; both fit the beam, so the answer
	// must be the latest gold population.
	pops := w.FactsSR(city.ID, world.RelPopulation)
	want := pops[len(pops)-1].Literal
	if metrics.Hit1(out, []string{want}) != 1 {
		t.Errorf("ToG answer %q, want %q", out, want)
	}
}

func TestToGUnknownAnchor(t *testing.T) {
	_, m, st, _ := testEnv(t)
	enc := embed.NewEncoder()
	out, err := ToG(context.Background(), m, st, enc, "Where was Nobody born?", []string{"Nobody At All"}, DefaultToGConfig())
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Error("ToG with unknown anchor should still answer (parametric fallback)")
	}
}

func TestPruneRelationsBeam(t *testing.T) {
	_, m, _, _ := testEnv(t)
	cands := []string{"r1", "r2"}
	kept, err := pruneRelations(context.Background(), m, "question?", cands, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 2 {
		t.Errorf("small candidate set should pass through, got %v", kept)
	}
	many := []string{"place of birth", "profession", "award received", "nationality", "educated at"}
	kept, err = pruneRelations(context.Background(), m, "Where was X born?", many, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 2 {
		t.Errorf("beam = %v, want 2 relations", kept)
	}
}

func TestScoreRelationsPromptClassified(t *testing.T) {
	p := prompts.ScoreRelations("q?", []string{"a", "b", "c"})
	if prompts.Classify(p) != prompts.TaskScoreRels {
		t.Error("score-relations prompt misclassified")
	}
}
