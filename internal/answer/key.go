package answer

import (
	"sort"
	"strconv"
	"strings"
)

// QueryKey returns the canonical identity of a query for caching and
// deduplication layers: two queries with the same key are answered
// identically by the same method and model. Normalisation is deliberately
// conservative — it folds case and whitespace and ignores anchor order,
// but keeps every semantic knob (open flag, overrides) because those
// change the produced answer.
func QueryKey(method, model string, q Query) string {
	var b strings.Builder
	b.Grow(len(method) + len(model) + len(q.Text) + 32)
	b.WriteString(strings.ToLower(strings.TrimSpace(method)))
	b.WriteByte(0)
	b.WriteString(strings.ToLower(strings.TrimSpace(model)))
	b.WriteByte(0)
	b.WriteString(normalizeText(q.Text))
	b.WriteByte(0)
	if q.Open {
		b.WriteByte('o')
	}
	b.WriteByte(0)
	if len(q.Anchors) > 0 {
		anchors := make([]string, 0, len(q.Anchors))
		for _, a := range q.Anchors {
			if a = normalizeText(a); a != "" {
				anchors = append(anchors, a)
			}
		}
		sort.Strings(anchors)
		b.WriteString(strings.Join(anchors, "\x01"))
	}
	b.WriteByte(0)
	writeOverrides(&b, q.Overrides)
	if len(q.PromptVersions) > 0 {
		// Prompt-version overrides change the rendered prompts and so the
		// answer; pinned and unpinned queries must never share a cache
		// entry. Sorted for map-order stability.
		b.WriteByte(0)
		names := make([]string, 0, len(q.PromptVersions))
		for name := range q.PromptVersions {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			b.WriteString(normalizeText(name))
			b.WriteByte('@')
			b.WriteString(normalizeText(q.PromptVersions[name]))
			b.WriteByte(';')
		}
	}
	return b.String()
}

// DedupKey is QueryKey applied to the query's own routing labels — the
// identity Batch's duplicate folding groups by.
func (q Query) DedupKey() string { return QueryKey(q.Method, q.Model, q) }

// normalizeText lower-cases, collapses all runs of whitespace to a
// single space, and strips remaining control characters. The strip is a
// security property, not just hygiene: the key format uses \x00/\x01 as
// field separators, so client-supplied text must never be able to embed
// them and mimic another query's field layout.
func normalizeText(s string) string {
	s = strings.ToLower(strings.Join(strings.Fields(s), " "))
	return strings.Map(func(r rune) rune {
		if r < 0x20 || r == 0x7f {
			return -1
		}
		return r
	}, s)
}

// writeOverrides appends the set overrides in a fixed order; unset fields
// contribute nothing, so the zero Overrides keeps the key stable.
func writeOverrides(b *strings.Builder, o Overrides) {
	if o.Temperature != nil {
		b.WriteString("t=")
		b.WriteString(strconv.FormatFloat(*o.Temperature, 'g', -1, 64))
		b.WriteByte(';')
	}
	if o.TopK != nil {
		b.WriteString("k=")
		b.WriteString(strconv.Itoa(*o.TopK))
		b.WriteByte(';')
	}
	if o.Samples != nil {
		b.WriteString("s=")
		b.WriteString(strconv.Itoa(*o.Samples))
		b.WriteByte(';')
	}
	if o.TokenBudget != nil {
		// A budget changes the outcome (a run may be refused mid-way), so
		// budgeted and unbudgeted queries must never share a cache entry or
		// a singleflight leader.
		b.WriteString("b=")
		b.WriteString(strconv.Itoa(*o.TokenBudget))
		b.WriteByte(';')
	}
}
