package answer

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestClassifyTable drives Classify through every error class, bare and
// wrapped (serving layers almost always see wrapped errors: handlers add
// context with %w, batch items annotate with their index, and so on).
func TestClassifyTable(t *testing.T) {
	wrap := func(err error) error { return fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", err)) }
	cases := []struct {
		name string
		err  error
		want ErrorClass
	}{
		{"nil", nil, ClassNone},
		{"canceled", context.Canceled, ClassCanceled},
		{"canceled wrapped", wrap(context.Canceled), ClassCanceled},
		{"deadline", context.DeadlineExceeded, ClassDeadline},
		{"deadline wrapped", wrap(context.DeadlineExceeded), ClassDeadline},
		{"unknown method", &UnknownMethodError{Name: "nope"}, ClassUnknownMethod},
		{"unknown method wrapped", wrap(&UnknownMethodError{Name: "nope"}), ClassUnknownMethod},
		{"invalid query", &InvalidQueryError{Reason: "empty"}, ClassInvalidQuery},
		{"invalid query wrapped", wrap(&InvalidQueryError{Reason: "empty"}), ClassInvalidQuery},
		{"plain upstream", errors.New("llm transport broke"), ClassUpstream},
		{"upstream wrapped", wrap(errors.New("llm transport broke")), ClassUpstream},
		{"joined non-context", errors.Join(errors.New("a"), errors.New("b")), ClassUpstream},
		{"joined with canceled", errors.Join(errors.New("a"), context.Canceled), ClassCanceled},
		// Context errors outrank typed errors: a cancelled run that also
		// wraps an InvalidQueryError surfaces as cancellation, matching
		// the switch order in Classify.
		{"canceled wrapping typed", fmt.Errorf("%w: %w", context.Canceled, &InvalidQueryError{Reason: "x"}), ClassCanceled},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Classify(tc.err); got != tc.want {
				t.Errorf("Classify(%v) = %q, want %q", tc.err, got, tc.want)
			}
		})
	}
}

// TestClassifyErrorMessages pins the typed errors' rendered messages,
// which serving responses expose verbatim.
func TestClassifyErrorMessages(t *testing.T) {
	if msg := (&UnknownMethodError{Name: "zap"}).Error(); !strings.Contains(msg, `"zap"`) {
		t.Errorf("UnknownMethodError message %q should name the method", msg)
	}
	if msg := (&InvalidQueryError{Reason: "empty question text"}).Error(); !strings.Contains(msg, "empty question text") {
		t.Errorf("InvalidQueryError message %q should carry the reason", msg)
	}
}
