package answer

import (
	"context"
	"runtime"
	"sync"
	"time"
)

// BatchItem is one query's outcome inside a batch. Failures are isolated
// per item: Err and Class are set and the remaining items still run.
type BatchItem struct {
	// Index is the query's position in the input slice.
	Index int
	// Query echoes the input.
	Query Query
	// Result is valid when Err is nil.
	Result Result
	// Err is this item's failure, if any.
	Err error
	// Class buckets Err (ClassNone when Err is nil).
	Class ErrorClass
}

// batchOptions configure Batch.
type batchOptions struct {
	workers     int
	dedup       bool
	itemTimeout time.Duration
}

// BatchOption mutates batch execution settings.
type BatchOption func(*batchOptions)

// Concurrency sets the worker-pool size (default: GOMAXPROCS, capped at
// the batch size).
func Concurrency(n int) BatchOption {
	return func(o *batchOptions) { o.workers = n }
}

// ItemTimeout bounds each item's run individually: the item's clock
// starts when its worker picks it up, so one slow item times out alone
// (its entry reports ClassDeadline) instead of a shared batch deadline
// expiring and failing every item still in flight behind it.
func ItemTimeout(d time.Duration) BatchOption {
	return func(o *batchOptions) { o.itemTimeout = d }
}

// DedupIdentical folds queries with the same DedupKey onto one
// execution: the first occurrence runs, every duplicate receives a copy
// of its outcome (result or error). Benchmark reruns and bursty serving
// traffic repeat questions heavily, so this turns N identical pipeline
// runs into one.
func DedupIdentical() BatchOption {
	return func(o *batchOptions) { o.dedup = true }
}

// Batch answers every query with a worker pool and per-item error
// isolation: one failing query marks only its own item. Cancelling ctx
// stops new work promptly — items not yet started are marked with the
// context's error — and the returned slice always has one entry per input
// query, in input order. With DedupIdentical, queries sharing a DedupKey
// execute once and duplicates are answered from their leader's outcome.
func Batch(ctx context.Context, ans Answerer, queries []Query, opts ...BatchOption) []BatchItem {
	o := batchOptions{workers: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		opt(&o)
	}
	if o.workers < 1 {
		o.workers = 1
	}
	if o.workers > len(queries) {
		o.workers = len(queries)
	}

	// With dedup on, only the first occurrence of each identity runs;
	// duplicates are filled in from their leader afterwards.
	run := make([]int, 0, len(queries))
	var leaderOf map[int]int // duplicate index -> leader index
	if o.dedup {
		leaderOf = make(map[int]int)
		firstByKey := make(map[string]int, len(queries))
		for i, q := range queries {
			key := q.DedupKey()
			if leader, seen := firstByKey[key]; seen {
				leaderOf[i] = leader
				continue
			}
			firstByKey[key] = i
			run = append(run, i)
		}
	} else {
		for i := range queries {
			run = append(run, i)
		}
	}

	items := make([]BatchItem, len(queries))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < o.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				item := BatchItem{Index: i, Query: queries[i]}
				if err := ctx.Err(); err != nil {
					item.Err = err
				} else {
					itemCtx, cancel := ctx, context.CancelFunc(func() {})
					if o.itemTimeout > 0 {
						itemCtx, cancel = context.WithTimeout(ctx, o.itemTimeout)
					}
					item.Result, item.Err = ans.Answer(itemCtx, queries[i])
					cancel()
				}
				item.Class = Classify(item.Err)
				items[i] = item
			}
		}()
	}
	for _, i := range run {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for dup, leader := range leaderOf {
		item := items[leader]
		item.Index = dup
		item.Query = queries[dup]
		// Each duplicate gets its own trace copy — sharing the leader's
		// pointer would let one caller's mutation corrupt every folded
		// item's result.
		item.Result = item.Result.Clone()
		items[dup] = item
	}
	return items
}

// FirstError returns the first (by input order) item error in a batch, or
// nil — the convenience for callers that treat any failure as fatal.
func FirstError(items []BatchItem) error {
	for i := range items {
		if items[i].Err != nil {
			return items[i].Err
		}
	}
	return nil
}
