package answer

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/kg"
	"repro/internal/llm"
	"repro/internal/prompts"
	"repro/internal/vecstore"
	"repro/internal/world"
)

// testDeps builds a small world with every substrate wired, backed by the
// simulated GPT-3.5-grade model.
func testDeps(t testing.TB) (Deps, *world.World) {
	t.Helper()
	cfg := world.DefaultConfig()
	cfg.People = 100
	cfg.Cities = 40
	cfg.Works = 60
	cfg.Companies = 25
	cfg.Universities = 15
	w, err := world.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := world.WikidataSchema().Render(w)
	enc := embed.NewEncoder()
	return Deps{
		Client:  llm.NewSim(w, llm.GPT35Params(), 42),
		Store:   st,
		Index:   vecstore.Build(enc, st),
		Encoder: enc,
	}, w
}

func TestRegistryNamesAndDescribe(t *testing.T) {
	names := Names()
	for _, want := range []string{"ours", "ours-gp", "tog", "io", "cot", "sc", "rag"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing %q (have %v)", want, names)
		}
		desc, ok := Describe(want)
		if !ok || desc == "" {
			t.Errorf("no description for %q", want)
		}
	}
	if desc, _ := Describe("SC"); !strings.Contains(desc, "0.7") {
		t.Errorf("SC description should mention temperature, got %q", desc)
	}
	if _, ok := Describe("nope"); ok {
		t.Error("unexpected description for unknown name")
	}
	// Aliases resolve but do not appear as canonical names.
	if _, ok := Describe("pgakv"); !ok {
		t.Error("alias pgakv should resolve")
	}
	for _, n := range names {
		if n == "pgakv" {
			t.Error("alias leaked into Names()")
		}
	}
}

func TestNewUnknownMethod(t *testing.T) {
	deps, _ := testDeps(t)
	_, err := New("no-such-method", deps)
	var unknown *UnknownMethodError
	if !errors.As(err, &unknown) {
		t.Fatalf("want *UnknownMethodError, got %v", err)
	}
	if Classify(err) != ClassUnknownMethod {
		t.Errorf("Classify = %q, want %q", Classify(err), ClassUnknownMethod)
	}
}

func TestNewValidatesDeps(t *testing.T) {
	deps, _ := testDeps(t)
	if _, err := New("rag", Deps{Client: deps.Client}); err == nil {
		t.Error("rag without an index should fail at construction")
	}
	if _, err := New("ours", Deps{Client: deps.Client, Store: deps.Store}); err == nil {
		t.Error("ours without an index should fail at construction")
	}
	if _, err := New("io", Deps{}); err == nil {
		t.Error("io without a client should fail at construction")
	}
}

// TestAllMethodsAnswer is the acceptance check: every registry method is
// constructible via New and answers a question through the uniform API,
// with usage accounting filled in.
func TestAllMethodsAnswer(t *testing.T) {
	deps, w := testDeps(t)
	person := w.Entities[w.OfKind(world.KindPerson)[0]]
	q := Query{
		Text:    fmt.Sprintf("Where was %s born?", person.Name),
		Anchors: []string{person.Name},
	}
	for _, name := range Names() {
		ans, err := New(name, deps)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if ans.Name() != name {
			t.Errorf("Name() = %q, want %q", ans.Name(), name)
		}
		res, err := ans.Answer(context.Background(), q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Answer == "" {
			t.Errorf("%s: empty answer", name)
		}
		if res.Method != name {
			t.Errorf("%s: result method = %q", name, res.Method)
		}
		if res.Model != "sim-gpt-3.5" {
			t.Errorf("%s: result model = %q", name, res.Model)
		}
		if res.LLMCalls < 1 || res.PromptTokens < 1 {
			t.Errorf("%s: usage accounting empty: %+v", name, res)
		}
		if res.Trace == nil {
			t.Errorf("%s: nil trace, want stage spans", name)
			continue
		}
		if len(res.Trace.Stages) == 0 {
			t.Errorf("%s: trace has no stage spans", name)
		}
		var spanCalls int
		for _, sp := range res.Trace.Stages {
			if sp.Err != "" {
				t.Errorf("%s: stage %s carries error class %q", name, sp.Stage, sp.Err)
			}
			spanCalls += sp.LLMCalls
		}
		if spanCalls != res.LLMCalls {
			t.Errorf("%s: stage spans account %d LLM calls, result says %d", name, spanCalls, res.LLMCalls)
		}
		// Pipeline-backed methods additionally carry the graph artefacts.
		if name == "ours" && res.Trace.Gg == nil {
			t.Errorf("%s: trace missing gold graph", name)
		}
	}
}

func TestAnswerRejectsEmptyQuery(t *testing.T) {
	deps, _ := testDeps(t)
	ans, err := New("io", deps)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ans.Answer(context.Background(), Query{Text: "   "})
	var invalid *InvalidQueryError
	if !errors.As(err, &invalid) {
		t.Fatalf("want *InvalidQueryError, got %v", err)
	}
	if Classify(err) != ClassInvalidQuery {
		t.Errorf("Classify = %q", Classify(err))
	}
}

// TestCancellationMidPipeline cancels the context from inside the first
// LLM call of a pipeline run: step 1 (pseudo-graph generation) completes,
// and the run must abort with context.Canceled at the next LLM step
// instead of finishing.
func TestCancellationMidPipeline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	scripted := llm.NewScripted().
		OnFunc(prompts.TaskPseudoGraph, func(string) (string, error) {
			cancel() // caller gives up while the pipeline is mid-flight
			return "```\nCREATE (c:City {name: 'Beijing', population: 100})\n```", nil
		}).
		On(prompts.TaskVerify, "Beijing | population | 100").
		On(prompts.TaskGraphQA, "the answer is {100}.")

	st := kg.NewStore(kg.SourceWikidata)
	st.AddAll([]kg.Triple{{Subject: "Beijing", Relation: "population", Object: "21893095"}})
	st.Freeze()
	enc := embed.NewEncoder()
	deps := Deps{Client: scripted, Store: st, Index: vecstore.Build(enc, st), Encoder: enc}

	ans, err := New("ours", deps)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ans.Answer(ctx, Query{Text: "What is the population of Beijing?"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if Classify(err) != ClassCanceled {
		t.Errorf("Classify = %q, want %q", Classify(err), ClassCanceled)
	}
}

// TestAnswerPreCancelled: an already-cancelled context never reaches the
// method.
func TestAnswerPreCancelled(t *testing.T) {
	deps, _ := testDeps(t)
	ans, err := New("cot", deps)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ans.Answer(ctx, Query{Text: "q?"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestDeadlineClassified(t *testing.T) {
	deps, _ := testDeps(t)
	ans, err := New("cot", deps)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), -1)
	defer cancel()
	_, err = ans.Answer(ctx, Query{Text: "q?"})
	if Classify(err) != ClassDeadline {
		t.Fatalf("Classify = %q (err %v), want %q", Classify(err), err, ClassDeadline)
	}
}

func TestPerRequestOverrides(t *testing.T) {
	deps, w := testDeps(t)
	person := w.Entities[w.OfKind(world.KindPerson)[3]]
	q := Query{Text: fmt.Sprintf("Where was %s born?", person.Name)}

	ans, err := New("sc", deps)
	if err != nil {
		t.Fatal(err)
	}
	base, err := ans.Answer(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	one := 1
	q.Overrides.Samples = &one
	single, err := ans.Answer(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if base.LLMCalls != DefaultSCConfig().Samples || single.LLMCalls != 1 {
		t.Errorf("SC call counts: base %d (want %d), overridden %d (want 1)",
			base.LLMCalls, DefaultSCConfig().Samples, single.LLMCalls)
	}
}

func TestWithCoreConfigOption(t *testing.T) {
	deps, _ := testDeps(t)
	cfg := core.DefaultConfig()
	cfg.TopK = 3
	if _, err := New("ours", deps, WithCoreConfig(cfg), WithModelLabel("custom")); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineMemoPersistsAcrossQueries: pipeline-backed methods rebuild
// core.Pipeline per query, so the embedding memo must live at the
// answerer level to warm across questions.
func TestPipelineMemoPersistsAcrossQueries(t *testing.T) {
	deps, w := testDeps(t)
	ans, err := New("ours", deps)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Text: "What is the population of " + w.Entities[w.OfKind(world.KindCity)[0]].Name + "?"}
	if _, err := ans.Answer(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	m := ans.(*method)
	after1 := m.opts.Core.Memo.Stats()
	if after1.Misses == 0 {
		t.Fatal("first query should populate the answerer-level memo")
	}
	if _, err := ans.Answer(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	after2 := m.opts.Core.Memo.Stats()
	if after2.Hits <= after1.Hits {
		t.Fatalf("repeat query should hit the memo: hits %d -> %d", after1.Hits, after2.Hits)
	}
	if after2.Misses != after1.Misses {
		t.Fatalf("repeat query re-encoded: misses %d -> %d", after1.Misses, after2.Misses)
	}
}
