// Package answer is the unified method surface of the repository: every
// QA method — the paper's PG&AKV pipeline and the five baselines of
// Table II — is exposed as the same context-aware Answerer contract, built
// through a registry (Register/New) and runnable in bulk with Batch.
//
// The package exists so that callers (the bench harness, the CLI tools,
// the HTTP server, and any future scaling layer) speak one stable API
// instead of hand-wiring each method's ad-hoc signature:
//
//	ans, err := answer.New("ours", deps)             // or "io", "cot", ...
//	res, err := ans.Answer(ctx, answer.Query{Text: "Where was X born?"})
//
// All methods honour context cancellation and deadlines, report uniform
// usage accounting (LLM calls, token estimates, wall time), and classify
// failures into a small set of typed error classes for serving layers.
package answer

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/llm"
)

// Query is one question for an Answerer, with optional per-request
// overrides. Method and Model are routing labels: a concrete Answerer is
// already bound to a method and model, but servers and batch reports carry
// them through for dispatch and attribution.
type Query struct {
	// Text is the question. Required.
	Text string
	// Method optionally names the registry method this query targets
	// (used by dispatching layers; informational on a bound Answerer).
	Method string
	// Model optionally labels the backing model for attribution.
	Model string
	// Open marks an open-ended question (affects Self-Consistency
	// aggregation: medoid instead of majority vote).
	Open bool
	// Anchors are the gold topic entities for anchor-based methods (ToG).
	Anchors []string
	// PromptVersions pins prompt versions for this query (prompt name ->
	// version string), the per-request A/B override. Unset names use the
	// registry's active versions. Unknown names or versions fail the query
	// with ClassInvalidQuery before any work starts.
	PromptVersions map[string]string
	// Overrides tune a single request without rebuilding the Answerer.
	Overrides Overrides
}

// Overrides are per-request knobs; nil fields keep the Answerer's
// configured defaults. Methods ignore overrides that do not apply to them.
type Overrides struct {
	// Temperature overrides the sampling temperature where the method
	// samples (pipeline LLM calls, SC samples).
	Temperature *float64
	// TopK overrides retrieval depth (RAG question-level retrieval, the
	// pipeline's per-triple semantic query).
	TopK *int
	// Samples overrides the Self-Consistency sample count.
	Samples *int
	// TokenBudget caps the total tokens (prompt + completion) the query's
	// LLM calls may spend; the shared scheduler refuses calls past it with
	// a ClassBudget error. nil or <= 0 means unlimited.
	TokenBudget *int
}

// Result is the uniform outcome of one answered query.
type Result struct {
	// Answer is the method's final answer text.
	Answer string
	// Method and Model identify what produced the answer.
	Method string
	Model  string
	// Epoch is the substrate snapshot the query ran against (0 when the
	// Answerer is bound to a static store/index rather than a Substrate).
	Epoch uint64
	// Elapsed is the wall-clock time of the run.
	Elapsed time.Duration
	// LLMCalls / PromptTokens / CompletionTokens account every model call
	// made on behalf of this query.
	LLMCalls         int
	PromptTokens     int
	CompletionTokens int
	// PromptVersions records the exact prompt versions the query rendered
	// with (prompt name -> version string) — the provenance trace records
	// pin and replay restores.
	PromptVersions map[string]string
	// Trace carries the run's intermediate artefacts and per-stage spans.
	// Pipeline-backed methods ("ours", "ours-gp") fill the full graph
	// trace; baseline methods carry their stage spans. On a failed run the
	// partial trace (spans up to and including the failing stage) is still
	// returned alongside the error.
	Trace *core.Trace
}

// Clone returns a copy safe to hand to an independent caller: the trace —
// the only mutable reference a Result carries — is deep-copied, so caches
// and their clients can never corrupt each other through shared graphs.
func (r Result) Clone() Result {
	out := r
	out.Trace = r.Trace.Clone()
	if r.PromptVersions != nil {
		out.PromptVersions = make(map[string]string, len(r.PromptVersions))
		for k, v := range r.PromptVersions {
			out.PromptVersions[k] = v
		}
	}
	return out
}

// Answerer is the core contract: one method, bound to its dependencies,
// answering questions under a context.
type Answerer interface {
	// Name returns the canonical registry name of the method.
	Name() string
	// Answer runs the method for one query. Cancellation or deadline
	// expiry of ctx aborts the run at the next LLM call and returns the
	// context's error.
	Answer(ctx context.Context, q Query) (Result, error)
}

// ErrorClass buckets failures for serving layers (HTTP status mapping,
// batch reports, retry policies).
type ErrorClass string

const (
	// ClassNone means no error.
	ClassNone ErrorClass = ""
	// ClassCanceled: the caller cancelled the context.
	ClassCanceled ErrorClass = "canceled"
	// ClassDeadline: the context's deadline expired.
	ClassDeadline ErrorClass = "deadline"
	// ClassUnknownMethod: the registry has no such method.
	ClassUnknownMethod ErrorClass = "unknown-method"
	// ClassInvalidQuery: the query is malformed (e.g. empty text).
	ClassInvalidQuery ErrorClass = "invalid-query"
	// ClassUpstream: the LLM client or a pipeline stage failed.
	ClassUpstream ErrorClass = "upstream"
	// ClassBudget: the query's token budget was exhausted mid-run.
	ClassBudget ErrorClass = "budget"
)

// UnknownMethodError reports a name the registry does not know.
type UnknownMethodError struct {
	Name string
}

func (e *UnknownMethodError) Error() string {
	return fmt.Sprintf("answer: unknown method %q (known: %v)", e.Name, Names())
}

// InvalidQueryError reports a malformed query.
type InvalidQueryError struct {
	Reason string
}

func (e *InvalidQueryError) Error() string {
	return "answer: invalid query: " + e.Reason
}

// Classify maps an error from this package (or wrapping one) to its class.
func Classify(err error) ErrorClass {
	switch {
	case err == nil:
		return ClassNone
	case errors.Is(err, context.Canceled):
		return ClassCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return ClassDeadline
	case errors.Is(err, llm.ErrBudgetExhausted):
		return ClassBudget
	}
	var unknown *UnknownMethodError
	if errors.As(err, &unknown) {
		return ClassUnknownMethod
	}
	var invalid *InvalidQueryError
	if errors.As(err, &invalid) {
		return ClassInvalidQuery
	}
	return ClassUpstream
}
