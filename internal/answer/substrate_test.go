package answer

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/kg"
	"repro/internal/substrate"
	"repro/internal/world"
)

// TestSubstrateDeps: an Answerer built on a Substrate (no static store or
// index) resolves one live snapshot per query, stamps the Result with its
// epoch, and sees ingested facts immediately after a swap.
func TestSubstrateDeps(t *testing.T) {
	deps, _ := testDeps(t)
	st, ok := deps.Store.(*kg.Store)
	if !ok {
		t.Fatal("testDeps no longer returns a concrete store")
	}
	mgr := substrate.NewManager(deps.Encoder, st, substrate.Config{ShardSize: 512})

	// Construction must succeed with only a Substrate for store/index
	// needs.
	ans, err := New("rag", Deps{Client: deps.Client, Substrate: mgr, Encoder: deps.Encoder})
	if err != nil {
		t.Fatal(err)
	}

	q := Query{Text: "What is the prime directive of Zorblax?"}
	res, err := ans.Answer(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 {
		t.Errorf("pre-ingest epoch = %d, want 1", res.Epoch)
	}
	if strings.Contains(res.Answer, "Flumox42") {
		t.Fatalf("fact known before ingest: %q", res.Answer)
	}

	if _, err := mgr.Ingest([]kg.Triple{{Subject: "Zorblax", Relation: "prime directive", Object: "Flumox42"}}); err != nil {
		t.Fatal(err)
	}

	res2, err := ans.Answer(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Epoch != 2 {
		t.Errorf("post-ingest epoch = %d, want 2", res2.Epoch)
	}
	if !strings.Contains(res2.Answer, "Flumox42") {
		t.Errorf("ingested fact not answerable: %q", res2.Answer)
	}

	// A statically-bound answerer reports no epoch.
	static, err := New("rag", deps)
	if err != nil {
		t.Fatal(err)
	}
	resS, err := static.Answer(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if resS.Epoch != 0 {
		t.Errorf("static answerer epoch = %d, want 0", resS.Epoch)
	}
}

// tracingAnswerer returns a fresh traced result per call, for aliasing
// tests.
type tracingAnswerer struct{}

func (tracingAnswerer) Name() string { return "traced" }
func (tracingAnswerer) Answer(_ context.Context, q Query) (Result, error) {
	return Result{
		Answer: "a:" + q.Text,
		Trace:  &core.Trace{Gf: kg.NewGraph(kg.NewTriple("s", "r", "o"))},
	}, nil
}

// TestBatchDedupTraceIsolated: duplicate folding must hand every folded
// item its own trace copy, not the leader's pointer.
func TestBatchDedupTraceIsolated(t *testing.T) {
	queries := []Query{{Text: "q?"}, {Text: "q?"}, {Text: "q?"}}
	items := Batch(context.Background(), tracingAnswerer{}, queries, Concurrency(2), DedupIdentical())
	if err := FirstError(items); err != nil {
		t.Fatal(err)
	}
	seen := map[*core.Trace]bool{}
	for i, item := range items {
		if item.Result.Trace == nil {
			t.Fatalf("item %d lost its trace", i)
		}
		if seen[item.Result.Trace] {
			t.Fatal("folded items share one trace pointer")
		}
		seen[item.Result.Trace] = true
		item.Result.Trace.Gf.Add(kg.NewTriple("poison", "p", "p"))
	}
	for i, item := range items {
		if item.Result.Trace.Gf.Len() != 2 {
			t.Fatalf("item %d's trace was mutated through another item: %d triples", i, item.Result.Trace.Gf.Len())
		}
	}
}

func TestResultCloneIsolatesTrace(t *testing.T) {
	deps, w := testDeps(t)
	ans, err := New("ours", deps)
	if err != nil {
		t.Fatal(err)
	}
	person := w.Entities[w.OfKind(world.KindPerson)[0]]
	res, err := ans.Answer(context.Background(), Query{Text: "Where was " + person.Name + " born?"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Gp == nil {
		t.Skip("pipeline produced no trace graphs for this question")
	}
	cl := res.Clone()
	if cl.Trace == res.Trace {
		t.Fatal("Clone shares the trace pointer")
	}
	before := res.Trace.Gp.Len()
	cl.Trace.Gp.Add(kg.NewTriple("poison", "p", "p"))
	if res.Trace.Gp.Len() != before {
		t.Error("mutating a clone's trace changed the original")
	}
}
