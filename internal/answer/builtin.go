package answer

import (
	"context"
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/core/exec"
	"repro/internal/llm"
)

// Config aliases keep the answer API self-contained: callers configure
// methods without importing the baselines package.
type (
	// SCConfig parameterises Self-Consistency sampling.
	SCConfig = baselines.SCConfig
	// RAGConfig parameterises question-level retrieval.
	RAGConfig = baselines.RAGConfig
	// ToGConfig parameterises Think-on-Graph exploration.
	ToGConfig = baselines.ToGConfig
)

// DefaultSCConfig returns the paper's Self-Consistency settings.
func DefaultSCConfig() SCConfig { return baselines.DefaultSCConfig() }

// DefaultRAGConfig returns the standard retrieval setting.
func DefaultRAGConfig() RAGConfig { return baselines.DefaultRAGConfig() }

// DefaultToGConfig returns the exploration settings used in the benches.
func DefaultToGConfig() ToGConfig { return baselines.DefaultToGConfig() }

// coreConfig applies per-request overrides to the configured pipeline
// settings.
func coreConfig(d Deps, o Options, q Query) core.Config {
	cfg := o.Core
	if cfg.Prompts == nil {
		// The per-request view pinned into the context wins anyway; wiring
		// the registry keeps direct pipeline reuse consistent too.
		cfg.Prompts = d.Prompts
	}
	if q.Overrides.Temperature != nil {
		cfg.Temperature = *q.Overrides.Temperature
	}
	if q.Overrides.TopK != nil {
		cfg.TopK = *q.Overrides.TopK
	}
	return cfg
}

// stageBuilder constructs a baseline composition from the validated deps.
type stageBuilder func(d Deps, o Options, q Query, client llm.Client) []exec.Stage[baselines.State]

// runBaseline executes a baseline stage composition with per-stage usage
// accounting: every method returns a trace carrying its stage spans —
// the same observability surface the pipeline-backed methods have. The
// partial trace (spans up to the failing stage) survives errors.
func runBaseline(build stageBuilder) RunFunc {
	return func(ctx context.Context, d Deps, o Options, q Query) (string, *core.Trace, error) {
		// The registry hands every method a *llm.Counting client; reuse it
		// so one counting layer serves span diffs and query totals alike.
		counter, ok := d.Client.(*llm.Counting)
		if !ok {
			counter = llm.NewCounting(d.Client)
		}
		stages := build(d, o, q, counter)
		st := baselines.State{Question: q.Text, Open: q.Open, Anchors: q.Anchors}
		spans, err := exec.Run(ctx, &st,
			exec.Options{DefaultTimeout: o.Core.StageTimeout, Usage: counter.Usage}, stages...)
		tr := &core.Trace{Question: q.Text, Stages: spans}
		tr.LLMCalls, _, _ = counter.Usage()
		if err != nil {
			return "", tr, err
		}
		return st.Answer, tr, nil
	}
}

// The built-in registrations: the paper's method (plus its Gp-only
// ablation) and the five Table II baselines, in the paper's table order.
// Every method — pipeline and baseline alike — runs as a composition of
// exec stages, so answer traces uniformly expose per-stage spans.
func init() {
	MustRegister(Registration{
		Name:        "ours",
		Aliases:     []string{"pgakv", "pg-akv"},
		Description: "PG&AKV: pseudo-graph generation + atomic knowledge verification (the paper's method)",
		NeedsStore:  true,
		NeedsIndex:  true,
		Run: func(ctx context.Context, d Deps, o Options, q Query) (string, *core.Trace, error) {
			p, err := core.New(d.Client, d.Store, d.Index, coreConfig(d, o, q))
			if err != nil {
				return "", nil, err
			}
			res, err := p.Answer(ctx, q.Text)
			if err != nil {
				return "", &res.Trace, err
			}
			return res.Answer, &res.Trace, nil
		},
	})
	MustRegister(Registration{
		Name:        "ours-gp",
		Aliases:     []string{"pgakv-gp"},
		Description: "PG&AKV ablation: answer from the raw pseudo-graph Gp, skipping verification",
		NeedsStore:  true,
		NeedsIndex:  true,
		Run: func(ctx context.Context, d Deps, o Options, q Query) (string, *core.Trace, error) {
			p, err := core.New(d.Client, d.Store, d.Index, coreConfig(d, o, q))
			if err != nil {
				return "", nil, err
			}
			res, err := p.AnswerPseudoOnly(ctx, q.Text)
			if err != nil {
				return "", &res.Trace, err
			}
			return res.Answer, &res.Trace, nil
		},
	})
	MustRegister(Registration{
		Name:         "tog",
		Description:  "Think-on-Graph: QID-anchored KG exploration with LLM relation pruning",
		NeedsStore:   true,
		NeedsEncoder: true,
		Run: func(ctx context.Context, d Deps, o Options, q Query) (string, *core.Trace, error) {
			if len(q.Anchors) == 0 {
				return "", nil, &InvalidQueryError{Reason: "method tog needs anchor entities"}
			}
			return runBaseline(func(d Deps, o Options, q Query, client llm.Client) []exec.Stage[baselines.State] {
				return baselines.ToGStages(client, d.Store, o.ToG)
			})(ctx, d, o, q)
		},
	})
	MustRegister(Registration{
		Name:        "io",
		Description: "standard input-output prompting, 6 in-context examples",
		Run: runBaseline(func(d Deps, o Options, q Query, client llm.Client) []exec.Stage[baselines.State] {
			return baselines.IOStages(client)
		}),
	})
	MustRegister(Registration{
		Name:        "cot",
		Description: "chain-of-thought prompting",
		Run: runBaseline(func(d Deps, o Options, q Query, client llm.Client) []exec.Stage[baselines.State] {
			return baselines.CoTStages(client)
		}),
	})
	MustRegister(Registration{
		Name:        "sc",
		Description: fmt.Sprintf("self-consistency: %d CoT samples at temperature %.1f, voted", DefaultSCConfig().Samples, DefaultSCConfig().Temperature),
		Run: runBaseline(func(d Deps, o Options, q Query, client llm.Client) []exec.Stage[baselines.State] {
			cfg := o.SC
			if q.Overrides.Samples != nil {
				cfg.Samples = *q.Overrides.Samples
			}
			if q.Overrides.Temperature != nil {
				cfg.Temperature = *q.Overrides.Temperature
			}
			return baselines.SCStages(client, cfg)
		}),
	})
	MustRegister(Registration{
		Name:        "rag",
		Description: "question-level retrieval over the semantic KG",
		NeedsIndex:  true,
		Run: runBaseline(func(d Deps, o Options, q Query, client llm.Client) []exec.Stage[baselines.State] {
			cfg := o.RAG
			if q.Overrides.TopK != nil {
				cfg.TopK = *q.Overrides.TopK
			}
			return baselines.RAGStages(client, d.Index, cfg)
		}),
	})
}
