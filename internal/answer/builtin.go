package answer

import (
	"context"
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
)

// Config aliases keep the answer API self-contained: callers configure
// methods without importing the baselines package.
type (
	// SCConfig parameterises Self-Consistency sampling.
	SCConfig = baselines.SCConfig
	// RAGConfig parameterises question-level retrieval.
	RAGConfig = baselines.RAGConfig
	// ToGConfig parameterises Think-on-Graph exploration.
	ToGConfig = baselines.ToGConfig
)

// DefaultSCConfig returns the paper's Self-Consistency settings.
func DefaultSCConfig() SCConfig { return baselines.DefaultSCConfig() }

// DefaultRAGConfig returns the standard retrieval setting.
func DefaultRAGConfig() RAGConfig { return baselines.DefaultRAGConfig() }

// DefaultToGConfig returns the exploration settings used in the benches.
func DefaultToGConfig() ToGConfig { return baselines.DefaultToGConfig() }

// coreConfig applies per-request overrides to the configured pipeline
// settings.
func coreConfig(o Options, q Query) core.Config {
	cfg := o.Core
	if q.Overrides.Temperature != nil {
		cfg.Temperature = *q.Overrides.Temperature
	}
	if q.Overrides.TopK != nil {
		cfg.TopK = *q.Overrides.TopK
	}
	return cfg
}

// The built-in registrations: the paper's method (plus its Gp-only
// ablation) and the five Table II baselines, in the paper's table order.
func init() {
	MustRegister(Registration{
		Name:        "ours",
		Aliases:     []string{"pgakv", "pg-akv"},
		Description: "PG&AKV: pseudo-graph generation + atomic knowledge verification (the paper's method)",
		NeedsStore:  true,
		NeedsIndex:  true,
		Run: func(ctx context.Context, d Deps, o Options, q Query) (string, *core.Trace, error) {
			p, err := core.New(d.Client, d.Store, d.Index, coreConfig(o, q))
			if err != nil {
				return "", nil, err
			}
			res, err := p.Answer(ctx, q.Text)
			if err != nil {
				return "", nil, err
			}
			return res.Answer, &res.Trace, nil
		},
	})
	MustRegister(Registration{
		Name:        "ours-gp",
		Aliases:     []string{"pgakv-gp"},
		Description: "PG&AKV ablation: answer from the raw pseudo-graph Gp, skipping verification",
		NeedsStore:  true,
		NeedsIndex:  true,
		Run: func(ctx context.Context, d Deps, o Options, q Query) (string, *core.Trace, error) {
			p, err := core.New(d.Client, d.Store, d.Index, coreConfig(o, q))
			if err != nil {
				return "", nil, err
			}
			var tr core.Trace
			tr.Question = q.Text
			gp, err := p.GeneratePseudoGraph(ctx, q.Text, &tr)
			if err != nil {
				return "", nil, err
			}
			tr.Gp = gp
			text, err := p.AnswerFromGraph(ctx, q.Text, gp, &tr)
			if err != nil {
				return "", nil, err
			}
			return text, &tr, nil
		},
	})
	MustRegister(Registration{
		Name:         "tog",
		Description:  "Think-on-Graph: QID-anchored KG exploration with LLM relation pruning",
		NeedsStore:   true,
		NeedsEncoder: true,
		Run: func(ctx context.Context, d Deps, o Options, q Query) (string, *core.Trace, error) {
			if len(q.Anchors) == 0 {
				return "", nil, &InvalidQueryError{Reason: "method tog needs anchor entities"}
			}
			text, err := baselines.ToG(ctx, d.Client, d.Store, d.Encoder, q.Text, q.Anchors, o.ToG)
			return text, nil, err
		},
	})
	MustRegister(Registration{
		Name:        "io",
		Description: "standard input-output prompting, 6 in-context examples",
		Run: func(ctx context.Context, d Deps, o Options, q Query) (string, *core.Trace, error) {
			text, err := baselines.IO(ctx, d.Client, q.Text)
			return text, nil, err
		},
	})
	MustRegister(Registration{
		Name:        "cot",
		Description: "chain-of-thought prompting",
		Run: func(ctx context.Context, d Deps, o Options, q Query) (string, *core.Trace, error) {
			text, err := baselines.CoT(ctx, d.Client, q.Text)
			return text, nil, err
		},
	})
	MustRegister(Registration{
		Name:        "sc",
		Description: fmt.Sprintf("self-consistency: %d CoT samples at temperature %.1f, voted", DefaultSCConfig().Samples, DefaultSCConfig().Temperature),
		Run: func(ctx context.Context, d Deps, o Options, q Query) (string, *core.Trace, error) {
			cfg := o.SC
			if q.Overrides.Samples != nil {
				cfg.Samples = *q.Overrides.Samples
			}
			if q.Overrides.Temperature != nil {
				cfg.Temperature = *q.Overrides.Temperature
			}
			text, err := baselines.SC(ctx, d.Client, q.Text, q.Open, cfg)
			return text, nil, err
		},
	})
	MustRegister(Registration{
		Name:        "rag",
		Description: "question-level retrieval over the semantic KG",
		NeedsIndex:  true,
		Run: func(ctx context.Context, d Deps, o Options, q Query) (string, *core.Trace, error) {
			cfg := o.RAG
			if q.Overrides.TopK != nil {
				cfg.TopK = *q.Overrides.TopK
			}
			text, err := baselines.RAG(ctx, d.Client, d.Index, q.Text, cfg)
			return text, nil, err
		},
	})
}
