package answer

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/kg"
	"repro/internal/llm"
	"repro/internal/prompts"
	"repro/internal/vecstore"
)

// Substrate provides versioned, consistent (store, index) snapshots — the
// live-ingest contract implemented by internal/substrate's Manager. Each
// Resolve call returns one immutable view plus its epoch; a method that
// resolves once per query is guaranteed a consistent substrate for the
// whole run, even while ingests and compactions swap the live snapshot.
type Substrate interface {
	Resolve() (kg.Reader, vecstore.Searcher, uint64)
}

// Deps are the substrates a method may need. Every method needs a Client;
// the registry validates the rest per method (see Registration).
type Deps struct {
	// Client is the LLM backend. Required by every method.
	Client llm.Client
	// Store is the KG triple view (ToG exploration, pipeline gold-graph
	// assembly).
	Store kg.Reader
	// Index is the vector index over the store (RAG, pipeline semantic
	// query).
	Index vecstore.Searcher
	// Encoder embeds text consistently with the index (ToG).
	Encoder *embed.Encoder
	// Substrate, when set, supplies Store and Index per query from the
	// live snapshot chain: every Answer call resolves one snapshot and
	// runs end-to-end against it, overriding any statically-bound Store
	// and Index above. Methods needing a store or index are satisfied by
	// a Substrate at construction time.
	Substrate Substrate
	// Prompts is the versioned prompt registry queries render from; nil
	// uses the shared embedded defaults. Every Answer call resolves one
	// immutable view (active versions plus the query's PromptVersions
	// overrides) and pins it into the context, so a hot reload mid-query
	// can never mix prompt versions within one run.
	Prompts *prompts.Registry
}

// Options collects the per-method configuration an Answerer is built with.
// Construct through functional options to New; zero values mean the
// paper's defaults.
type Options struct {
	// Core configures pipeline-backed methods.
	Core core.Config
	// SC / RAG / ToG configure the respective baselines.
	SC  SCConfig
	RAG RAGConfig
	ToG ToGConfig
	// Model labels results for attribution; defaults to Client.Name().
	Model string
}

// Option mutates Options (the functional-options pattern).
type Option func(*Options)

// WithCoreConfig sets the pipeline configuration for "ours"/"ours-gp".
func WithCoreConfig(cfg core.Config) Option { return func(o *Options) { o.Core = cfg } }

// WithSCConfig sets the Self-Consistency sampling configuration.
func WithSCConfig(cfg SCConfig) Option { return func(o *Options) { o.SC = cfg } }

// WithRAGConfig sets the question-level retrieval configuration.
func WithRAGConfig(cfg RAGConfig) Option { return func(o *Options) { o.RAG = cfg } }

// WithToGConfig sets the Think-on-Graph exploration configuration.
func WithToGConfig(cfg ToGConfig) Option { return func(o *Options) { o.ToG = cfg } }

// WithModelLabel overrides the model name reported in results.
func WithModelLabel(name string) Option { return func(o *Options) { o.Model = name } }

// RunFunc is a method implementation: answer one query with the given
// dependencies and options. The returned trace is optional.
type RunFunc func(ctx context.Context, d Deps, o Options, q Query) (string, *core.Trace, error)

// Registration declares one method for the registry.
type Registration struct {
	// Name is the canonical identifier (lower-case, e.g. "cot").
	Name string
	// Aliases resolve to this method too (e.g. "pgakv" -> "ours").
	Aliases []string
	// Description is a one-line human-readable summary.
	Description string
	// NeedsStore / NeedsIndex / NeedsEncoder are validated against Deps
	// at construction time so misconfiguration fails fast, not mid-query.
	NeedsStore   bool
	NeedsIndex   bool
	NeedsEncoder bool
	// Run is the implementation.
	Run RunFunc
}

// registry is the process-global method table, guarded for concurrent
// Register/New from servers and tests.
var registry = struct {
	sync.RWMutex
	order  []string
	byName map[string]*Registration
}{byName: map[string]*Registration{}}

// Register adds a method. Names and aliases are case-insensitive and must
// be unique across the registry.
func Register(r Registration) error {
	if r.Name == "" || r.Run == nil {
		return fmt.Errorf("answer: registration needs a name and a run function")
	}
	registry.Lock()
	defer registry.Unlock()
	keys := append([]string{r.Name}, r.Aliases...)
	for _, k := range keys {
		if _, dup := registry.byName[strings.ToLower(k)]; dup {
			return fmt.Errorf("answer: method %q already registered", k)
		}
	}
	reg := r
	for _, k := range keys {
		registry.byName[strings.ToLower(k)] = &reg
	}
	registry.order = append(registry.order, strings.ToLower(r.Name))
	return nil
}

// MustRegister is Register for package init blocks.
func MustRegister(r Registration) {
	if err := Register(r); err != nil {
		panic(err)
	}
}

// Names returns the canonical method names in registration order.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	return append([]string(nil), registry.order...)
}

// Describe returns the one-line description of a method (or alias) and
// whether it is registered.
func Describe(name string) (string, bool) {
	registry.RLock()
	defer registry.RUnlock()
	r, ok := registry.byName[strings.ToLower(name)]
	if !ok {
		return "", false
	}
	return r.Description, true
}

// lookup resolves a name or alias.
func lookup(name string) (*Registration, bool) {
	registry.RLock()
	defer registry.RUnlock()
	r, ok := registry.byName[strings.ToLower(name)]
	return r, ok
}

// New builds the named method over the given dependencies. The name is
// case-insensitive and may be an alias. Missing dependencies fail here,
// with a typed *UnknownMethodError for names the registry does not know.
func New(name string, deps Deps, opts ...Option) (Answerer, error) {
	reg, ok := lookup(name)
	if !ok {
		return nil, &UnknownMethodError{Name: name}
	}
	if deps.Client == nil {
		return nil, fmt.Errorf("answer: method %q needs an LLM client", reg.Name)
	}
	if reg.NeedsStore && deps.Store == nil && deps.Substrate == nil {
		return nil, fmt.Errorf("answer: method %q needs a KG store", reg.Name)
	}
	if reg.NeedsIndex && deps.Index == nil && deps.Substrate == nil {
		return nil, fmt.Errorf("answer: method %q needs a vector index", reg.Name)
	}
	if reg.NeedsEncoder && deps.Encoder == nil {
		return nil, fmt.Errorf("answer: method %q needs an encoder", reg.Name)
	}
	o := Options{Core: core.DefaultConfig(), SC: DefaultSCConfig(), RAG: DefaultRAGConfig(), ToG: DefaultToGConfig()}
	for _, opt := range opts {
		opt(&o)
	}
	if o.Model == "" {
		o.Model = deps.Client.Name()
	}
	if o.Core.Memo == nil && deps.Index != nil {
		// Pipeline-backed methods rebuild their core.Pipeline per query
		// (the counting client differs each time); an answerer-level memo
		// makes pseudo-triple embeddings persist across questions anyway.
		o.Core.Memo = core.NewMemo(deps.Index.Encoder(), 0)
	}
	return &method{reg: reg, deps: deps, opts: o}, nil
}

// method binds a registration to dependencies and options; it is the
// concrete Answerer every registry method shares.
type method struct {
	reg  *Registration
	deps Deps
	opts Options
}

// Name implements Answerer.
func (m *method) Name() string { return m.reg.Name }

// Answer implements Answerer: validate, wrap the client for usage
// accounting, run the method, assemble the uniform result. On a failed run
// the result still carries the usage actually spent and the partial trace
// (with stage spans up to the failure), so serving layers can meter and
// attribute errors per stage.
func (m *method) Answer(ctx context.Context, q Query) (Result, error) {
	if strings.TrimSpace(q.Text) == "" {
		return Result{}, &InvalidQueryError{Reason: "empty question text"}
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if q.Overrides.TokenBudget != nil && *q.Overrides.TokenBudget > 0 {
		ctx = llm.WithBudget(ctx, llm.NewBudget(*q.Overrides.TokenBudget))
	}
	// Resolve the prompt view once, strictly: a bad version override is an
	// invalid query, and the pinned view keeps the whole run — across every
	// stage — on one consistent prompt set even through a hot reload.
	view, verr := m.deps.Prompts.Resolve(q.PromptVersions)
	if verr != nil {
		return Result{}, &InvalidQueryError{Reason: verr.Error()}
	}
	ctx = prompts.WithView(ctx, view)
	// Budget enforcement sits inside the counter, so refused calls never
	// count as usage — and holds whether or not a scheduler is configured.
	counter := llm.NewCounting(llm.Budgeted(m.deps.Client))
	deps := m.deps
	deps.Client = counter
	var epoch uint64
	if deps.Substrate != nil {
		// One resolve per query: the whole run — retrieval, pruning,
		// verification — sees this snapshot, no matter how many swaps
		// happen underneath it.
		deps.Store, deps.Index, epoch = deps.Substrate.Resolve()
	}

	start := time.Now()
	text, trace, err := m.reg.Run(ctx, deps, m.opts, q)
	calls, promptTokens, completionTokens := counter.Usage()
	return Result{
		Answer:           text,
		Method:           m.reg.Name,
		Model:            m.opts.Model,
		Epoch:            epoch,
		Elapsed:          time.Since(start),
		LLMCalls:         calls,
		PromptTokens:     promptTokens,
		CompletionTokens: completionTokens,
		PromptVersions:   view.Versions(),
		Trace:            trace,
	}, err
}
