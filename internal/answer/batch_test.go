package answer

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stubAnswerer fails queries whose text contains "fail", counts concurrent
// executions, and otherwise echoes the question.
type stubAnswerer struct {
	inFlight    atomic.Int64
	maxInFlight atomic.Int64
	delay       time.Duration
}

func (s *stubAnswerer) Name() string { return "stub" }

func (s *stubAnswerer) Answer(ctx context.Context, q Query) (Result, error) {
	cur := s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	for {
		prev := s.maxInFlight.Load()
		if cur <= prev || s.maxInFlight.CompareAndSwap(prev, cur) {
			break
		}
	}
	if s.delay > 0 {
		select {
		case <-time.After(s.delay):
		case <-ctx.Done():
			return Result{}, ctx.Err()
		}
	}
	if strings.Contains(q.Text, "fail") {
		return Result{}, errors.New("stub: induced failure")
	}
	return Result{Answer: "echo: " + q.Text, Method: "stub"}, nil
}

func TestBatchPartialFailureIsolation(t *testing.T) {
	queries := []Query{
		{Text: "q0"}, {Text: "q1 fail"}, {Text: "q2"}, {Text: "q3 fail"}, {Text: "q4"},
	}
	items := Batch(context.Background(), &stubAnswerer{}, queries, Concurrency(2))
	if len(items) != len(queries) {
		t.Fatalf("got %d items, want %d", len(items), len(queries))
	}
	for i, item := range items {
		if item.Index != i || item.Query.Text != queries[i].Text {
			t.Errorf("item %d out of order: %+v", i, item)
		}
		wantFail := strings.Contains(queries[i].Text, "fail")
		if (item.Err != nil) != wantFail {
			t.Errorf("item %d err = %v, want failure=%v", i, item.Err, wantFail)
		}
		if wantFail && item.Class != ClassUpstream {
			t.Errorf("item %d class = %q, want %q", i, item.Class, ClassUpstream)
		}
		if !wantFail && item.Result.Answer != "echo: "+queries[i].Text {
			t.Errorf("item %d answer = %q", i, item.Result.Answer)
		}
	}
	if err := FirstError(items); err == nil || !strings.Contains(err.Error(), "induced") {
		t.Errorf("FirstError = %v", err)
	}
}

func TestBatchConcurrencyBound(t *testing.T) {
	stub := &stubAnswerer{delay: 5 * time.Millisecond}
	var queries []Query
	for i := 0; i < 12; i++ {
		queries = append(queries, Query{Text: fmt.Sprintf("q%d", i)})
	}
	items := Batch(context.Background(), stub, queries, Concurrency(3))
	if err := FirstError(items); err != nil {
		t.Fatal(err)
	}
	if max := stub.maxInFlight.Load(); max > 3 {
		t.Errorf("max in-flight = %d, want <= 3", max)
	}
}

func TestBatchCancellationMarksRemaining(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	queries := []Query{{Text: "a"}, {Text: "b"}, {Text: "c"}}
	items := Batch(ctx, &stubAnswerer{}, queries, Concurrency(1))
	for i, item := range items {
		if !errors.Is(item.Err, context.Canceled) {
			t.Errorf("item %d err = %v, want context.Canceled", i, item.Err)
		}
		if item.Class != ClassCanceled {
			t.Errorf("item %d class = %q", i, item.Class)
		}
	}
}

func TestBatchEmptyAndDefaults(t *testing.T) {
	if items := Batch(context.Background(), &stubAnswerer{}, nil); len(items) != 0 {
		t.Errorf("empty batch returned %d items", len(items))
	}
	// Zero/negative concurrency falls back to a single worker.
	items := Batch(context.Background(), &stubAnswerer{}, []Query{{Text: "x"}}, Concurrency(-4))
	if err := FirstError(items); err != nil {
		t.Fatal(err)
	}
}

// countingAnswerer tallies Answer invocations.
type countingAnswerer struct {
	stubAnswerer
	runs atomic.Int64
}

func (c *countingAnswerer) Answer(ctx context.Context, q Query) (Result, error) {
	c.runs.Add(1)
	return c.stubAnswerer.Answer(ctx, q)
}

func TestBatchDedupIdentical(t *testing.T) {
	ans := &countingAnswerer{}
	queries := []Query{
		{Text: "Where was X born?"},
		{Text: "Where was Y born?"},
		{Text: "  where was  x BORN? "}, // normalised duplicate of 0
		{Text: "Where was X born?"},     // exact duplicate of 0
		{Text: "Where was Y born?"},     // duplicate of 1
		{Text: "Where was Z born?"},
	}
	items := Batch(context.Background(), ans, queries, Concurrency(4), DedupIdentical())
	if got := ans.runs.Load(); got != 3 {
		t.Fatalf("underlying runs = %d, want 3 distinct", got)
	}
	if len(items) != len(queries) {
		t.Fatalf("items = %d, want %d", len(items), len(queries))
	}
	for i, item := range items {
		if item.Index != i || item.Query.Text != queries[i].Text {
			t.Errorf("item %d mislabelled: %+v", i, item)
		}
		if item.Err != nil {
			t.Errorf("item %d: %v", i, item.Err)
		}
	}
	// Duplicates carry the leader's answer.
	if items[3].Result.Answer != items[0].Result.Answer {
		t.Errorf("duplicate answer %q != leader %q", items[3].Result.Answer, items[0].Result.Answer)
	}
	if items[4].Result.Answer != items[1].Result.Answer {
		t.Errorf("duplicate answer %q != leader %q", items[4].Result.Answer, items[1].Result.Answer)
	}
}

func TestBatchDedupCopiesErrors(t *testing.T) {
	ans := &countingAnswerer{}
	queries := []Query{
		{Text: "will fail"},
		{Text: "will fail"},
		{Text: "fine"},
	}
	items := Batch(context.Background(), ans, queries, DedupIdentical())
	if got := ans.runs.Load(); got != 2 {
		t.Fatalf("runs = %d, want 2", got)
	}
	for _, i := range []int{0, 1} {
		if items[i].Err == nil || items[i].Class != ClassUpstream {
			t.Errorf("item %d should carry the leader's failure: %+v", i, items[i])
		}
	}
	if items[2].Err != nil {
		t.Errorf("item 2: %v", items[2].Err)
	}
}

func TestBatchWithoutDedupRunsEverything(t *testing.T) {
	ans := &countingAnswerer{}
	queries := []Query{{Text: "same"}, {Text: "same"}, {Text: "same"}}
	Batch(context.Background(), ans, queries)
	if got := ans.runs.Load(); got != 3 {
		t.Fatalf("runs = %d, want 3 (dedup must be opt-in)", got)
	}
}

// slowOnceAnswerer sleeps only for queries containing "slow"; everything
// else returns immediately.
type slowOnceAnswerer struct {
	slowDelay time.Duration
}

func (s *slowOnceAnswerer) Name() string { return "slow-once" }

func (s *slowOnceAnswerer) Answer(ctx context.Context, q Query) (Result, error) {
	if strings.Contains(q.Text, "slow") {
		select {
		case <-time.After(s.slowDelay):
		case <-ctx.Done():
			return Result{}, ctx.Err()
		}
	}
	return Result{Answer: "echo: " + q.Text, Method: s.Name()}, nil
}

// TestBatchItemTimeoutIsolatesSlowItem is the deadline-starvation fix: a
// per-item timeout makes only the slow item fail with ClassDeadline while
// every other item completes, where a shared batch deadline would have
// failed everything queued behind the slow one.
func TestBatchItemTimeoutIsolatesSlowItem(t *testing.T) {
	ans := &slowOnceAnswerer{slowDelay: 5 * time.Second}
	queries := []Query{
		{Text: "q0"}, {Text: "q1 slow"}, {Text: "q2"}, {Text: "q3"}, {Text: "q4"},
	}
	start := time.Now()
	items := Batch(context.Background(), ans, queries,
		Concurrency(2), ItemTimeout(50*time.Millisecond))
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("batch took %v; the slow item starved the pool", elapsed)
	}
	for i, item := range items {
		if strings.Contains(item.Query.Text, "slow") {
			if item.Class != ClassDeadline {
				t.Errorf("slow item class = %q, want deadline", item.Class)
			}
			continue
		}
		if item.Err != nil {
			t.Errorf("item %d (%q) failed: %v — per-item deadlines must isolate the slow item", i, item.Query.Text, item.Err)
		}
	}
}

// TestBatchItemTimeoutClockStartsAtPickup: items queued behind busy
// workers must not have their deadline burn down while waiting.
func TestBatchItemTimeoutClockStartsAtPickup(t *testing.T) {
	// One worker, every item takes 30ms, item timeout 50ms: a shared
	// deadline would expire during item 3; per-item clocks never do.
	ans := &stubAnswerer{delay: 30 * time.Millisecond}
	queries := []Query{{Text: "q0"}, {Text: "q1"}, {Text: "q2"}, {Text: "q3"}, {Text: "q4"}}
	items := Batch(context.Background(), ans, queries,
		Concurrency(1), ItemTimeout(50*time.Millisecond))
	if err := FirstError(items); err != nil {
		t.Fatalf("late items timed out under a per-item clock: %v", err)
	}
}
