// Package qa defines the question model shared by dataset generation and
// the simulated LLM: intents (the machine-readable meaning of a question),
// the invertible natural-language template grammar that renders and parses
// them, and the Question/Dataset containers.
//
// The grammar is deliberately unambiguous: every template renders to a
// distinct surface shape, so parsing is exact. This pins the simulation at
// the right altitude — the paper's methods differ in how they access
// knowledge, not in question understanding, so the simulated LLM gets
// perfect NLU and imperfect memory (see internal/llm).
package qa

import (
	"fmt"

	"repro/internal/kg"
	"repro/internal/world"
)

// IntentKind classifies question meanings.
type IntentKind int

const (
	// KindLookup walks a relation chain from Subject; the answer is the
	// terminal object. Chain length 1 = single-hop (SimpleQuestions-like),
	// >1 = multi-hop (QALD-like).
	KindLookup IntentKind = iota
	// KindCompareCount asks which of Subject/Subject2 has more objects
	// under Chain[0] ("Who covers more countries, the Andes or the
	// Himalayas?").
	KindCompareCount
	// KindCompareValue asks which of Subject/Subject2 has the larger
	// numeric value under Chain[0] ("Which has a larger area, A or B?").
	KindCompareValue
	// KindSuperlative asks which entity filtered by (FilterRel = Subject)
	// maximises ValueRel ("Who has the largest area of the lakes in X?").
	KindSuperlative
	// KindOpenProfile asks for an open-ended description of Subject
	// ("Tell me about X.").
	KindOpenProfile
	// KindOpenField asks for the notable people of field Subject and what
	// they are known for.
	KindOpenField
	// KindOpenList asks for all objects of Subject under Chain[0], with
	// context ("What are the products of X?").
	KindOpenList
	// KindCount asks how many objects Subject has under Chain[0] ("How many
	// countries does X cover?"); the answer is a cardinality, which the
	// graph-based methods obtain by actually aggregating over retrieved
	// triples.
	KindCount
)

// String names the intent kind.
func (k IntentKind) String() string {
	switch k {
	case KindLookup:
		return "lookup"
	case KindCompareCount:
		return "compare-count"
	case KindCompareValue:
		return "compare-value"
	case KindSuperlative:
		return "superlative"
	case KindOpenProfile:
		return "open-profile"
	case KindOpenField:
		return "open-field"
	case KindOpenList:
		return "open-list"
	case KindCount:
		return "count"
	default:
		return "unknown"
	}
}

// TemporalRef selects which revision of a time-varying fact a lookup asks
// about. The zero value asks for the current revision, matching every
// pre-existing template.
type TemporalRef int

const (
	// TemporalCurrent asks for the latest revision (the default).
	TemporalCurrent TemporalRef = iota
	// TemporalPrevious asks for the revision immediately before the
	// current one.
	TemporalPrevious
	// TemporalOriginal asks for the first recorded revision.
	TemporalOriginal
)

// String names the temporal reference.
func (t TemporalRef) String() string {
	switch t {
	case TemporalCurrent:
		return "current"
	case TemporalPrevious:
		return "previous"
	case TemporalOriginal:
		return "original"
	default:
		return "unknown"
	}
}

// Unanswerable is the canonical gold answer for questions whose premise
// does not hold in the world (adversarial pack); graders match it like any
// other marked answer.
const Unanswerable = "unanswerable"

// Intent is the machine-readable meaning of a question.
type Intent struct {
	Kind     IntentKind
	Subject  string // canonical world entity name (or field name)
	Subject2 string // second subject for comparisons
	Chain    []world.RelKey
	// ValueRel and FilterRel parameterise superlatives: among entities e
	// with (e FilterRel Subject), maximise ValueRel.
	ValueRel  world.RelKey
	FilterRel world.RelKey
	// TRef selects which revision of a time-varying lookup the question
	// asks about; zero means the current value.
	TRef TemporalRef
}

// IsOpen reports whether the intent expects an open-ended (ROUGE-scored)
// answer rather than a precise one.
func (in Intent) IsOpen() bool {
	switch in.Kind {
	case KindOpenProfile, KindOpenField, KindOpenList:
		return true
	default:
		return false
	}
}

// Hops returns the reasoning depth: chain length for lookups, 2 for
// comparisons and superlatives (gather then compare), 1 for open intents.
func (in Intent) Hops() int {
	switch in.Kind {
	case KindLookup:
		return len(in.Chain)
	case KindCompareCount, KindCompareValue, KindSuperlative, KindCount:
		return 2
	default:
		return 1
	}
}

// Question is one evaluation item.
type Question struct {
	ID     int
	Text   string
	Intent Intent
	// Golds are the acceptable precise answers (for Hit@1); for
	// time-varying facts the current value is first.
	Golds []string
	// Refs are the reference answers for ROUGE-scored open questions.
	Refs []string
	// SourceKG records which KG schema the dataset was constructed
	// against (the paper's "question source").
	SourceKG kg.Source
}

// Open reports whether the question is ROUGE-scored.
func (q Question) Open() bool { return q.Intent.IsOpen() }

// Dataset is a named set of questions with its metric.
type Dataset struct {
	// Name is e.g. "SimpleQuestions", "QALD", "NatureQuestions".
	Name string
	// Metric is "hit@1" or "rouge-l".
	Metric string
	// Questions are the evaluation items.
	Questions []Question
}

// Validate checks internal consistency: every question has the metric's
// required gold material.
func (d *Dataset) Validate() error {
	for _, q := range d.Questions {
		if q.Text == "" {
			return fmt.Errorf("qa: dataset %s question %d has empty text", d.Name, q.ID)
		}
		if q.Open() {
			if len(q.Refs) == 0 {
				return fmt.Errorf("qa: dataset %s question %d (open) has no references", d.Name, q.ID)
			}
		} else if len(q.Golds) == 0 {
			return fmt.Errorf("qa: dataset %s question %d has no gold answers", d.Name, q.ID)
		}
	}
	return nil
}
