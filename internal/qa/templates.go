package qa

import (
	"fmt"
	"strings"

	"repro/internal/world"
)

// Template is one invertible surface form. Prefix/Infix/Suffix delimit the
// one or two entity slots:
//
//	one slot:  Prefix + X + Suffix
//	two slots: Prefix + X + Infix + Y + Suffix
//
// Templates are matched longest-prefix-first at parse time, and the
// generator guarantees entity names never contain template delimiters.
type Template struct {
	Kind      IntentKind
	Chain     []world.RelKey
	ValueRel  world.RelKey
	FilterRel world.RelKey
	TRef      TemporalRef
	Prefix    string
	Infix     string // empty for one-slot templates
	Suffix    string
	TwoSlot   bool
}

// Render fills the template's slots.
func (t Template) Render(x, y string) string {
	if t.TwoSlot {
		return t.Prefix + x + t.Infix + y + t.Suffix
	}
	return t.Prefix + x + t.Suffix
}

// match attempts to invert the template against text, returning the slot
// fillers.
func (t Template) match(text string) (x, y string, ok bool) {
	if !strings.HasPrefix(text, t.Prefix) || !strings.HasSuffix(text, t.Suffix) {
		return "", "", false
	}
	middle := text[len(t.Prefix) : len(text)-len(t.Suffix)]
	if !t.TwoSlot {
		if middle == "" {
			return "", "", false
		}
		return middle, "", true
	}
	i := strings.Index(middle, t.Infix)
	if i <= 0 || i+len(t.Infix) >= len(middle) {
		return "", "", false
	}
	return middle[:i], middle[i+len(t.Infix):], true
}

// LookupTemplates maps each single-hop relation to its question phrasings.
// The first entry is the primary phrasing used by generators; the rest are
// accepted paraphrases.
var LookupTemplates = map[world.RelKey][]Template{
	world.RelBornIn: {
		lk1("Where was ", " born?", world.RelBornIn),
		lk1("In which city was ", " born?", world.RelBornIn),
	},
	world.RelBirthDate: {
		lk1("When was ", " born?", world.RelBirthDate),
		lk1("What is the date of birth of ", "?", world.RelBirthDate),
	},
	world.RelOccupation: {
		lk1("What is the occupation of ", "?", world.RelOccupation),
	},
	world.RelAward: {
		lk1("Which award did ", " receive?", world.RelAward),
		lk1("What award was won by ", "?", world.RelAward),
	},
	world.RelEducatedAt: {
		lk1("Where was ", " educated?", world.RelEducatedAt),
		lk1("Which university did ", " attend?", world.RelEducatedAt),
	},
	world.RelFieldOfWork: {
		lk1("What is the field of work of ", "?", world.RelFieldOfWork),
	},
	world.RelNotableWork: {
		lk1("What is a notable work of ", "?", world.RelNotableWork),
	},
	world.RelCitizenOf: {
		lk1("What is the nationality of ", "?", world.RelCitizenOf),
		lk1("Which country is ", " a citizen of?", world.RelCitizenOf),
	},
	world.RelInCountry: {
		lk1("In which country is the city of ", "?", world.RelInCountry),
	},
	world.RelPopulation: {
		lk1("What is the population of ", "?", world.RelPopulation),
	},
	world.RelCapital: {
		lk1("What is the capital of ", "?", world.RelCapital),
	},
	world.RelContinent: {
		lk1("On which continent is ", "?", world.RelContinent),
	},
	world.RelOfficialLang: {
		lk1("What is the official language of ", "?", world.RelOfficialLang),
	},
	world.RelArea: {
		lk1("What is the area of ", "?", world.RelArea),
	},
	world.RelInflow: {
		lk1("Which river flows into ", "?", world.RelInflow),
	},
	world.RelCovers: {
		lk1("Which country does ", " cover?", world.RelCovers),
	},
	world.RelElevation: {
		lk1("What is the elevation of ", "?", world.RelElevation),
	},
	world.RelFlowsThrough: {
		lk1("Through which country does ", " flow?", world.RelFlowsThrough),
	},
	world.RelLength: {
		lk1("How long is ", "?", world.RelLength),
	},
	world.RelFoundedBy: {
		lk1("Who founded ", "?", world.RelFoundedBy),
		lk1("Who is the founder of ", "?", world.RelFoundedBy),
	},
	world.RelHeadquarters: {
		lk1("Where is ", " headquartered?", world.RelHeadquarters),
	},
	world.RelIndustry: {
		lk1("In which industry does ", " operate?", world.RelIndustry),
	},
	world.RelProduct: {
		lk1("What is a product of ", "?", world.RelProduct),
	},
	world.RelUnivIn: {
		lk1("In which city is ", " located?", world.RelUnivIn),
	},
	world.RelInception: {
		lk1("In which year was ", " established?", world.RelInception),
	},
	world.RelCreator: {
		lk1("Who created ", "?", world.RelCreator),
	},
	world.RelGenre: {
		lk1("What is the genre of ", "?", world.RelGenre),
	},
	world.RelPubYear: {
		lk1("In which year was ", " published?", world.RelPubYear),
	},
	world.RelAwardFor: {
		lk1("In which field is ", " awarded?", world.RelAwardFor),
	},
}

func lk1(prefix, suffix string, chain ...world.RelKey) Template {
	return Template{Kind: KindLookup, Chain: chain, Prefix: prefix, Suffix: suffix}
}

// MultiHopTemplates are the QALD-like chains. Each walks the chain left to
// right from the slot entity.
var MultiHopTemplates = []Template{
	lk1("What is the capital of the country where ", " was born?",
		world.RelBornIn, world.RelInCountry, world.RelCapital),
	lk1("On which continent is the country where ", " was born?",
		world.RelBornIn, world.RelInCountry, world.RelContinent),
	lk1("What is the population of the city where ", " was born?",
		world.RelBornIn, world.RelPopulation),
	lk1("In which city is the university where ", " was educated?",
		world.RelEducatedAt, world.RelUnivIn),
	lk1("In which country is the city where ", " is headquartered?",
		world.RelHeadquarters, world.RelInCountry),
	lk1("What is the official language of the country where ", " is located?",
		world.RelLocatedIn, world.RelOfficialLang),
	lk1("Who created a product of ", "?",
		world.RelProduct, world.RelCreator),
	lk1("In which field is the award received by ", " given?",
		world.RelAward, world.RelAwardFor),
	lk1("What is the genre of a notable work of ", "?",
		world.RelNotableWork, world.RelGenre),
	lk1("What is the nationality of the founder of ", "?",
		world.RelFoundedBy, world.RelCitizenOf),
	lk1("Where was the creator of ", " born?",
		world.RelCreator, world.RelBornIn),
	lk1("What is the capital of the country of citizenship of ", "?",
		world.RelCitizenOf, world.RelCapital),
}

// CompareTemplates are two-slot comparison questions.
var CompareTemplates = []Template{
	{Kind: KindCompareCount, Chain: []world.RelKey{world.RelCovers},
		Prefix: "Who covers more countries, ", Infix: " or ", Suffix: "?", TwoSlot: true},
	{Kind: KindCompareValue, Chain: []world.RelKey{world.RelArea},
		Prefix: "Which has a larger area, ", Infix: " or ", Suffix: "?", TwoSlot: true},
	{Kind: KindCompareValue, Chain: []world.RelKey{world.RelLength},
		Prefix: "Which is longer, ", Infix: " or ", Suffix: "?", TwoSlot: true},
	{Kind: KindCompareValue, Chain: []world.RelKey{world.RelElevation},
		Prefix: "Which is higher, ", Infix: " or ", Suffix: "?", TwoSlot: true},
	{Kind: KindCompareValue, Chain: []world.RelKey{world.RelPopulation},
		Prefix: "Which city has a larger population, ", Infix: " or ", Suffix: "?", TwoSlot: true},
}

// SuperlativeTemplates filter entities by a relation to the slot entity and
// maximise a value relation.
var SuperlativeTemplates = []Template{
	{Kind: KindSuperlative, ValueRel: world.RelArea, FilterRel: world.RelLocatedIn,
		Prefix: "Which lake in ", Suffix: " has the largest area?"},
	{Kind: KindSuperlative, ValueRel: world.RelLength, FilterRel: world.RelFlowsThrough,
		Prefix: "Which river flowing through ", Suffix: " is the longest?"},
}

// TemporalTemplates ask about non-current revisions of time-varying facts.
// Population is the world's only time-varying relation, so every form
// chains through it; TRef distinguishes which revision is wanted.
var TemporalTemplates = []Template{
	{Kind: KindLookup, Chain: []world.RelKey{world.RelPopulation}, TRef: TemporalPrevious,
		Prefix: "What was the previous population of ", Suffix: "?"},
	{Kind: KindLookup, Chain: []world.RelKey{world.RelPopulation}, TRef: TemporalPrevious,
		Prefix: "What was the population of ", Suffix: " before the most recent update?"},
	{Kind: KindLookup, Chain: []world.RelKey{world.RelPopulation}, TRef: TemporalOriginal,
		Prefix: "What was the original population of ", Suffix: "?"},
	{Kind: KindLookup, Chain: []world.RelKey{world.RelPopulation}, TRef: TemporalOriginal,
		Prefix: "What was the population of ", Suffix: " when first recorded?"},
}

// CountTemplates ask for cardinalities over multi-valued relations — the
// aggregation pack. Graph-based methods answer these by counting retrieved
// triples rather than recalling a number.
var CountTemplates = []Template{
	{Kind: KindCount, Chain: []world.RelKey{world.RelCovers},
		Prefix: "How many countries does ", Suffix: " cover?"},
	{Kind: KindCount, Chain: []world.RelKey{world.RelFlowsThrough},
		Prefix: "How many countries does ", Suffix: " flow through?"},
	{Kind: KindCount, Chain: []world.RelKey{world.RelAward},
		Prefix: "How many awards did ", Suffix: " receive?"},
	{Kind: KindCount, Chain: []world.RelKey{world.RelNotableWork},
		Prefix: "How many notable works does ", Suffix: " have?"},
	{Kind: KindCount, Chain: []world.RelKey{world.RelProduct},
		Prefix: "How many products does ", Suffix: " make?"},
	{Kind: KindCount, Chain: []world.RelKey{world.RelInflow},
		Prefix: "How many rivers flow into ", Suffix: "?"},
}

// NoisyTemplates are chatty, informally-phrased paraphrases of single-hop
// lookups: filler words, hedges and lowercase openings. They remain
// invertible (distinct prefixes/suffixes), modelling surface noise rather
// than ambiguity.
var NoisyTemplates = []Template{
	{Kind: KindLookup, Chain: []world.RelKey{world.RelBornIn},
		Prefix: "hey, quick question - where was ", Suffix: " born?"},
	{Kind: KindLookup, Chain: []world.RelKey{world.RelPopulation},
		Prefix: "i was wondering, what is the population of ", Suffix: " these days?"},
	{Kind: KindLookup, Chain: []world.RelKey{world.RelCapital},
		Prefix: "umm, could you tell me the capital of ", Suffix: " please?"},
	{Kind: KindLookup, Chain: []world.RelKey{world.RelAward},
		Prefix: "so, what award did ", Suffix: " end up winning?"},
	{Kind: KindLookup, Chain: []world.RelKey{world.RelFoundedBy},
		Prefix: "ok quick check: who founded ", Suffix: " again?"},
	{Kind: KindLookup, Chain: []world.RelKey{world.RelOfficialLang},
		Prefix: "btw what is the official language of ", Suffix: "?"},
}

// OpenTemplates are the Nature-Questions-like open-ended forms.
var OpenTemplates = []Template{
	{Kind: KindOpenField,
		Prefix: "Who is acknowledged as a leading figure in the field of ", Suffix: "?"},
	{Kind: KindOpenField,
		Prefix: "Who are the most notable researchers in ", Suffix: "?"},
	{Kind: KindOpenProfile, Prefix: "Tell me about ", Suffix: "."},
	{Kind: KindOpenProfile, Prefix: "What should I know about ", Suffix: "?"},
	{Kind: KindOpenList, Chain: []world.RelKey{world.RelProduct},
		Prefix: "What are the products of ", Suffix: "?"},
	{Kind: KindOpenList, Chain: []world.RelKey{world.RelNotableWork},
		Prefix: "What are the notable works of ", Suffix: "?"},
	{Kind: KindOpenList, Chain: []world.RelKey{world.RelCovers},
		Prefix: "Which countries are covered by ", Suffix: "?"},
	{Kind: KindOpenList, Chain: []world.RelKey{world.RelInflow},
		Prefix: "Which rivers flow into ", Suffix: "?"},
}

// allTemplates returns every template, longest prefix first so that
// specific forms ("What is the capital of the country where ...") win over
// general ones ("What is the capital of ...").
func allTemplates() []Template {
	var all []Template
	for _, ts := range LookupTemplates {
		all = append(all, ts...)
	}
	all = append(all, MultiHopTemplates...)
	all = append(all, CompareTemplates...)
	all = append(all, SuperlativeTemplates...)
	all = append(all, OpenTemplates...)
	all = append(all, TemporalTemplates...)
	all = append(all, CountTemplates...)
	all = append(all, NoisyTemplates...)
	return all
}

var parseOrder = func() []Template {
	all := allTemplates()
	// Insertion sort by descending prefix length (stable, tiny N).
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && len(all[j].Prefix) > len(all[j-1].Prefix); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	return all
}()

// Parse inverts a question back to its intent. It returns an error for text
// no template produced; the simulated LLM treats that as an
// incomprehensible question and falls back to guessing.
func Parse(text string) (Intent, error) {
	text = strings.TrimSpace(text)
	for _, t := range parseOrder {
		x, y, ok := t.match(text)
		if !ok {
			continue
		}
		in := Intent{
			Kind:      t.Kind,
			Subject:   x,
			Subject2:  y,
			Chain:     t.Chain,
			ValueRel:  t.ValueRel,
			FilterRel: t.FilterRel,
			TRef:      t.TRef,
		}
		return in, nil
	}
	return Intent{}, fmt.Errorf("qa: no template matches %q", text)
}

// PrimaryLookupTemplate returns the generator's phrasing for a single-hop
// relation.
func PrimaryLookupTemplate(rel world.RelKey) (Template, bool) {
	ts, ok := LookupTemplates[rel]
	if !ok || len(ts) == 0 {
		return Template{}, false
	}
	return ts[0], true
}
