package qa

import (
	"fmt"
	"strconv"

	"repro/internal/world"
)

// Resolver answers intents against the ground-truth world. Dataset builders
// use it to compute gold answers; tests use it as the oracle.
type Resolver struct {
	W *world.World
}

// walkChain returns the terminal surfaces of the chain starting at the
// subject entity. Multi-valued hops branch; time-varying hops take only the
// current value. The bool result reports whether the subject resolved.
func (r *Resolver) walkChain(subject string, chain []world.RelKey) ([]string, bool) {
	ent, ok := r.W.EntityByName(subject)
	if !ok {
		return nil, false
	}
	frontier := []int{ent.ID}
	for hop, rel := range chain {
		info, _ := world.RelByKey(rel)
		last := hop == len(chain)-1
		var nextIDs []int
		var terminals []string
		for _, id := range frontier {
			facts := r.W.FactsSR(id, rel)
			if len(facts) == 0 {
				continue
			}
			if info.TimeVarying {
				facts = facts[len(facts)-1:]
			}
			for _, f := range facts {
				if last {
					terminals = append(terminals, r.W.ObjectSurface(f))
					continue
				}
				if f.ObjectIsEntity() {
					nextIDs = append(nextIDs, f.Object)
				}
			}
		}
		if last {
			return dedupStrings(terminals), true
		}
		if len(nextIDs) == 0 {
			return nil, true
		}
		frontier = dedupInts(nextIDs)
	}
	return nil, true
}

// Gold returns the acceptable precise answers for an intent, or an error
// when the intent cannot be resolved (unknown subject, empty chain result).
func (r *Resolver) Gold(in Intent) ([]string, error) {
	switch in.Kind {
	case KindLookup:
		if in.TRef != TemporalCurrent {
			return r.temporalGold(in)
		}
		out, ok := r.walkChain(in.Subject, in.Chain)
		if !ok {
			return nil, fmt.Errorf("qa: unknown subject %q", in.Subject)
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("qa: chain %v from %q resolves to nothing", in.Chain, in.Subject)
		}
		return out, nil
	case KindCompareCount:
		a, okA := r.walkChain(in.Subject, in.Chain)
		b, okB := r.walkChain(in.Subject2, in.Chain)
		if !okA || !okB {
			return nil, fmt.Errorf("qa: unknown comparison subject")
		}
		switch {
		case len(a) > len(b):
			return []string{in.Subject}, nil
		case len(b) > len(a):
			return []string{in.Subject2}, nil
		default:
			return []string{in.Subject, in.Subject2}, nil
		}
	case KindCompareValue:
		av, errA := r.numericValue(in.Subject, in.Chain[0])
		bv, errB := r.numericValue(in.Subject2, in.Chain[0])
		if errA != nil {
			return nil, errA
		}
		if errB != nil {
			return nil, errB
		}
		if av >= bv {
			return []string{in.Subject}, nil
		}
		return []string{in.Subject2}, nil
	case KindSuperlative:
		return r.superlative(in)
	case KindCount:
		out, ok := r.walkChain(in.Subject, in.Chain)
		if !ok {
			return nil, fmt.Errorf("qa: unknown subject %q", in.Subject)
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("qa: %q has no %v facts to count", in.Subject, in.Chain)
		}
		return []string{strconv.Itoa(len(out))}, nil
	default:
		return nil, fmt.Errorf("qa: Gold is undefined for open intent %s", in.Kind)
	}
}

// temporalGold resolves a non-current revision of a time-varying single-hop
// lookup: the previous revision needs at least two recorded values, the
// original takes the first.
func (r *Resolver) temporalGold(in Intent) ([]string, error) {
	if len(in.Chain) != 1 {
		return nil, fmt.Errorf("qa: temporal lookup requires a single-hop chain, got %v", in.Chain)
	}
	rel := in.Chain[0]
	info, ok := world.RelByKey(rel)
	if !ok || !info.TimeVarying {
		return nil, fmt.Errorf("qa: temporal lookup over non-time-varying relation %s", rel)
	}
	ent, ok := r.W.EntityByName(in.Subject)
	if !ok {
		return nil, fmt.Errorf("qa: unknown subject %q", in.Subject)
	}
	facts := r.W.FactsSR(ent.ID, rel)
	switch in.TRef {
	case TemporalPrevious:
		if len(facts) < 2 {
			return nil, fmt.Errorf("qa: %q has no previous %s revision", in.Subject, rel)
		}
		return []string{r.W.ObjectSurface(facts[len(facts)-2])}, nil
	case TemporalOriginal:
		if len(facts) == 0 {
			return nil, fmt.Errorf("qa: %q has no %s facts", in.Subject, rel)
		}
		return []string{r.W.ObjectSurface(facts[0])}, nil
	default:
		return nil, fmt.Errorf("qa: unsupported temporal reference %v", in.TRef)
	}
}

// numericValue returns the current numeric value of (subject, rel).
func (r *Resolver) numericValue(subject string, rel world.RelKey) (float64, error) {
	ent, ok := r.W.EntityByName(subject)
	if !ok {
		return 0, fmt.Errorf("qa: unknown subject %q", subject)
	}
	f, ok := r.W.CurrentFact(ent.ID, rel)
	if !ok {
		return 0, fmt.Errorf("qa: %q has no %s", subject, rel)
	}
	v, err := strconv.ParseFloat(f.Literal, 64)
	if err != nil {
		return 0, fmt.Errorf("qa: %q %s is not numeric: %v", subject, rel, err)
	}
	return v, nil
}

// superlative finds the entity related to the filter subject that
// maximises the value relation.
func (r *Resolver) superlative(in Intent) ([]string, error) {
	filterEnt, ok := r.W.EntityByName(in.Subject)
	if !ok {
		return nil, fmt.Errorf("qa: unknown filter subject %q", in.Subject)
	}
	best := ""
	bestV := -1.0
	for _, f := range r.W.FactsByRel(in.FilterRel) {
		if !f.ObjectIsEntity() || f.Object != filterEnt.ID {
			continue
		}
		name := r.W.Entities[f.Subject].Name
		v, err := r.numericValue(name, in.ValueRel)
		if err != nil {
			continue
		}
		if v > bestV {
			bestV = v
			best = name
		}
	}
	if best == "" {
		return nil, fmt.Errorf("qa: no candidates for superlative over %q", in.Subject)
	}
	return []string{best}, nil
}

// SupportFacts returns the world facts an intent's answer rests on — the
// evidence set. Open intents return the subject's profile facts (or the
// field's people and their achievements); precise intents return every fact
// touched by the walk. The bench harness and reference-answer builder both
// use this.
func (r *Resolver) SupportFacts(in Intent) []world.Fact {
	switch in.Kind {
	case KindLookup, KindCount:
		return r.chainFacts(in.Subject, in.Chain)
	case KindCompareCount, KindCompareValue:
		out := r.chainFacts(in.Subject, in.Chain)
		return append(out, r.chainFacts(in.Subject2, in.Chain)...)
	case KindSuperlative:
		var out []world.Fact
		filterEnt, ok := r.W.EntityByName(in.Subject)
		if !ok {
			return nil
		}
		for _, f := range r.W.FactsByRel(in.FilterRel) {
			if f.ObjectIsEntity() && f.Object == filterEnt.ID {
				out = append(out, f)
				if vf, ok := r.W.CurrentFact(f.Subject, in.ValueRel); ok {
					out = append(out, vf)
				}
			}
		}
		return out
	case KindOpenProfile:
		ent, ok := r.W.EntityByName(in.Subject)
		if !ok {
			return nil
		}
		return r.currentFactsOf(ent.ID)
	case KindOpenList:
		ent, ok := r.W.EntityByName(in.Subject)
		if !ok {
			return nil
		}
		var out []world.Fact
		for _, f := range r.W.FactsSR(ent.ID, in.Chain[0]) {
			out = append(out, f)
		}
		return out
	case KindOpenField:
		return r.fieldFacts(in.Subject)
	default:
		return nil
	}
}

// chainFacts collects every fact touched while walking the chain from the
// subject, including branches and all time-varying revisions (the gold
// graph keeps them in chronological order).
func (r *Resolver) chainFacts(subject string, chain []world.RelKey) []world.Fact {
	ent, ok := r.W.EntityByName(subject)
	if !ok {
		return nil
	}
	var out []world.Fact
	frontier := []int{ent.ID}
	for _, rel := range chain {
		var next []int
		for _, id := range frontier {
			for _, f := range r.W.FactsSR(id, rel) {
				out = append(out, f)
				if f.ObjectIsEntity() {
					next = append(next, f.Object)
				}
			}
		}
		if len(next) == 0 {
			break
		}
		frontier = dedupInts(next)
	}
	return out
}

// currentFactsOf returns the subject's facts with stale time-varying
// revisions dropped.
func (r *Resolver) currentFactsOf(id int) []world.Fact {
	var out []world.Fact
	seenTV := map[world.RelKey]bool{}
	facts := r.W.FactsOf(id)
	// Walk backwards so the highest ordinal (current) revision wins.
	for i := len(facts) - 1; i >= 0; i-- {
		f := facts[i]
		info, _ := world.RelByKey(f.Rel)
		if info.TimeVarying {
			if seenTV[f.Rel] {
				continue
			}
			seenTV[f.Rel] = true
		}
		out = append(out, f)
	}
	// Restore forward order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// fieldFacts returns the facts about the most decorated people in a field:
// their field membership, awards and notable works.
func (r *Resolver) fieldFacts(fieldName string) []world.Fact {
	fieldEnt, ok := r.W.EntityByName(fieldName)
	if !ok {
		return nil
	}
	var people []int
	for _, f := range r.W.FactsByRel(world.RelFieldOfWork) {
		if f.ObjectIsEntity() && f.Object == fieldEnt.ID {
			people = append(people, f.Subject)
		}
	}
	// Rank people by decoration (award count, then notable works), keep a
	// handful — open answers are about the notable few, not a census.
	type ranked struct {
		id     int
		awards int
		works  int
	}
	rs := make([]ranked, 0, len(people))
	for _, p := range people {
		rs = append(rs, ranked{
			id:     p,
			awards: len(r.W.FactsSR(p, world.RelAward)),
			works:  len(r.W.FactsSR(p, world.RelNotableWork)),
		})
	}
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0; j-- {
			a, b := rs[j], rs[j-1]
			better := a.awards > b.awards ||
				(a.awards == b.awards && a.works > b.works) ||
				(a.awards == b.awards && a.works == b.works && a.id < b.id)
			if !better {
				break
			}
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
	if len(rs) > 4 {
		rs = rs[:4]
	}
	var out []world.Fact
	for _, p := range rs {
		for _, f := range r.W.FactsOf(p.id) {
			switch f.Rel {
			case world.RelFieldOfWork, world.RelAward, world.RelNotableWork, world.RelBornIn:
				out = append(out, f)
			}
		}
	}
	return out
}

func dedupStrings(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func dedupInts(in []int) []int {
	seen := make(map[int]bool, len(in))
	out := in[:0]
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
