package qa

import (
	"strings"

	"repro/internal/world"
)

// realizePatterns maps each relation to a sentence pattern with %S and %O
// slots. Reference answers (dataset side) and simulated model answers (LLM
// side) share these surfaces, so ROUGE-L differences measure *content*
// coverage — which facts made it into the answer — rather than phrasing
// luck, mirroring how the paper's human-written references reward factual
// completeness.
var realizePatterns = map[world.RelKey]string{
	world.RelBornIn:       "%S was born in %O.",
	world.RelBirthDate:    "%S was born on %O.",
	world.RelOccupation:   "%S works as a specialist in %O.",
	world.RelAward:        "%S received the %O.",
	world.RelEducatedAt:   "%S was educated at %O.",
	world.RelFieldOfWork:  "%S is known for work in %O.",
	world.RelNotableWork:  "%S created %O.",
	world.RelCitizenOf:    "%S is a citizen of %O.",
	world.RelInCountry:    "%S is a city in %O.",
	world.RelPopulation:   "%S has a population of %O.",
	world.RelCapital:      "The capital of %S is %O.",
	world.RelContinent:    "%S is on the continent of %O.",
	world.RelOfficialLang: "The official language of %S is %O.",
	world.RelArea:         "%S has an area of %O.",
	world.RelLocatedIn:    "%S is located in %O.",
	world.RelInflow:       "%O flows into %S.",
	world.RelCovers:       "%S covers %O.",
	world.RelElevation:    "%S rises to an elevation of %O.",
	world.RelFlowsThrough: "%S flows through %O.",
	world.RelLength:       "%S is %O long.",
	world.RelFoundedBy:    "%S was founded by %O.",
	world.RelHeadquarters: "%S is headquartered in %O.",
	world.RelIndustry:     "%S operates in the %O industry.",
	world.RelProduct:      "%S produces %O.",
	world.RelUnivIn:       "%S is located in %O.",
	world.RelInception:    "%S was established in %O.",
	world.RelCreator:      "%S was created by %O.",
	world.RelGenre:        "%S belongs to the genre of %O.",
	world.RelPubYear:      "%S was published in %O.",
	world.RelAwardFor:     "%S is awarded in the field of %O.",
}

// Realize renders one (subject, relation, object) statement as a sentence.
// Unknown relations fall back to "<S> <rel words> <O>."
func Realize(subject string, rel world.RelKey, object string) string {
	if p, ok := realizePatterns[rel]; ok {
		s := strings.ReplaceAll(p, "%S", subject)
		return strings.ReplaceAll(s, "%O", object)
	}
	return subject + " " + strings.ReplaceAll(string(rel), "_", " ") + " " + object + "."
}

// RealizeFacts renders a fact list into flowing text, one sentence per
// fact, in the given order.
func RealizeFacts(w *world.World, facts []world.Fact) string {
	var b strings.Builder
	for i, f := range facts {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(Realize(w.Entities[f.Subject].Name, f.Rel, w.ObjectSurface(f)))
	}
	return b.String()
}
