package qa

import (
	"strings"
	"testing"

	"repro/internal/world"
)

func testWorld(t *testing.T) *world.World {
	t.Helper()
	cfg := world.DefaultConfig()
	cfg.People = 80
	cfg.Cities = 30
	cfg.Countries = 15
	cfg.Works = 50
	cfg.Companies = 20
	cfg.Universities = 12
	cfg.Lakes = 20
	cfg.Mountains = 10
	cfg.Rivers = 20
	return world.MustGenerate(cfg)
}

// TestTemplateParseInverse: rendering any template with world entity names
// and parsing it back recovers the intent — the invertibility property the
// whole simulation rests on.
func TestTemplateParseInverse(t *testing.T) {
	w := testWorld(t)
	nameOf := func(k world.Kind) string {
		return w.Entities[w.OfKind(k)[0]].Name
	}
	for rel, ts := range LookupTemplates {
		info, _ := world.RelByKey(rel)
		subject := nameOf(info.SubjectKind)
		for _, tpl := range ts {
			text := tpl.Render(subject, "")
			in, err := Parse(text)
			if err != nil {
				t.Errorf("Parse(%q): %v", text, err)
				continue
			}
			if in.Kind != KindLookup || in.Subject != subject || len(in.Chain) != 1 || in.Chain[0] != rel {
				t.Errorf("Parse(%q) = %+v", text, in)
			}
		}
	}
	for _, tpl := range MultiHopTemplates {
		info, _ := world.RelByKey(tpl.Chain[0])
		subject := nameOf(info.SubjectKind)
		text := tpl.Render(subject, "")
		in, err := Parse(text)
		if err != nil {
			t.Errorf("Parse(%q): %v", text, err)
			continue
		}
		if in.Subject != subject || len(in.Chain) != len(tpl.Chain) {
			t.Errorf("Parse(%q) = %+v", text, in)
		}
	}
	for _, tpl := range CompareTemplates {
		info, _ := world.RelByKey(tpl.Chain[0])
		pool := w.OfKind(info.SubjectKind)
		a, b := w.Entities[pool[0]].Name, w.Entities[pool[1]].Name
		text := tpl.Render(a, b)
		in, err := Parse(text)
		if err != nil {
			t.Errorf("Parse(%q): %v", text, err)
			continue
		}
		if in.Kind != tpl.Kind || in.Subject != a || in.Subject2 != b {
			t.Errorf("Parse(%q) = %+v", text, in)
		}
	}
	for _, tpl := range SuperlativeTemplates {
		subject := nameOf(world.KindCountry)
		text := tpl.Render(subject, "")
		in, err := Parse(text)
		if err != nil {
			t.Errorf("Parse(%q): %v", text, err)
			continue
		}
		if in.Kind != KindSuperlative || in.ValueRel != tpl.ValueRel || in.FilterRel != tpl.FilterRel {
			t.Errorf("Parse(%q) = %+v", text, in)
		}
	}
	for _, tpl := range OpenTemplates {
		subject := "artificial intelligence"
		text := tpl.Render(subject, "")
		in, err := Parse(text)
		if err != nil {
			t.Errorf("Parse(%q): %v", text, err)
			continue
		}
		if in.Kind != tpl.Kind || in.Subject != subject {
			t.Errorf("Parse(%q) = %+v", text, in)
		}
	}
}

func TestParseDisambiguatesLongPrefixes(t *testing.T) {
	// Single-hop "capital of X" vs multi-hop "capital of the country where
	// X was born" must parse to different chains.
	single, err := Parse("What is the capital of Fooland?")
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Chain) != 1 || single.Chain[0] != world.RelCapital {
		t.Errorf("single-hop parse: %+v", single)
	}
	multi, err := Parse("What is the capital of the country where Ada Lovelace was born?")
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Chain) != 3 || multi.Subject != "Ada Lovelace" {
		t.Errorf("multi-hop parse: %+v", multi)
	}
}

func TestParseUnknownText(t *testing.T) {
	if _, err := Parse("This matches no template at all"); err == nil {
		t.Error("expected parse failure")
	}
}

func TestIntentHelpers(t *testing.T) {
	open := Intent{Kind: KindOpenProfile}
	if !open.IsOpen() || open.Hops() != 1 {
		t.Error("open intent helpers wrong")
	}
	lookup := Intent{Kind: KindLookup, Chain: []world.RelKey{world.RelBornIn, world.RelInCountry}}
	if lookup.IsOpen() || lookup.Hops() != 2 {
		t.Error("lookup intent helpers wrong")
	}
	cmp := Intent{Kind: KindCompareCount}
	if cmp.Hops() != 2 {
		t.Error("compare hops wrong")
	}
}

func TestResolverGoldSingleHop(t *testing.T) {
	w := testWorld(t)
	r := &Resolver{W: w}
	p := w.OfKind(world.KindPerson)[0]
	born := w.FactsSR(p, world.RelBornIn)[0]
	in := Intent{Kind: KindLookup, Subject: w.Entities[p].Name, Chain: []world.RelKey{world.RelBornIn}}
	golds, err := r.Gold(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(golds) != 1 || golds[0] != w.Entities[born.Object].Name {
		t.Errorf("gold = %v, want %q", golds, w.Entities[born.Object].Name)
	}
}

func TestResolverGoldTimeVarying(t *testing.T) {
	w := testWorld(t)
	r := &Resolver{W: w}
	city := w.OfKind(world.KindCity)[0]
	pops := w.FactsSR(city, world.RelPopulation)
	in := Intent{Kind: KindLookup, Subject: w.Entities[city].Name, Chain: []world.RelKey{world.RelPopulation}}
	golds, err := r.Gold(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(golds) != 1 || golds[0] != pops[len(pops)-1].Literal {
		t.Errorf("time-varying gold = %v, want latest %q", golds, pops[len(pops)-1].Literal)
	}
}

func TestResolverGoldMultiHop(t *testing.T) {
	w := testWorld(t)
	r := &Resolver{W: w}
	p := w.OfKind(world.KindPerson)[0]
	// Manual walk: born city -> country -> capital.
	city := w.FactsSR(p, world.RelBornIn)[0].Object
	country := w.FactsSR(city, world.RelInCountry)[0].Object
	capital := w.FactsSR(country, world.RelCapital)[0].Object
	in := Intent{Kind: KindLookup, Subject: w.Entities[p].Name,
		Chain: []world.RelKey{world.RelBornIn, world.RelInCountry, world.RelCapital}}
	golds, err := r.Gold(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(golds) != 1 || golds[0] != w.Entities[capital].Name {
		t.Errorf("multi-hop gold = %v, want %q", golds, w.Entities[capital].Name)
	}
}

func TestResolverGoldCompareCount(t *testing.T) {
	w := testWorld(t)
	r := &Resolver{W: w}
	ms := w.OfKind(world.KindMountain)
	a, b := w.Entities[ms[0]].Name, w.Entities[ms[1]].Name
	in := Intent{Kind: KindCompareCount, Subject: a, Subject2: b,
		Chain: []world.RelKey{world.RelCovers}}
	golds, err := r.Gold(in)
	if err != nil {
		t.Fatal(err)
	}
	ca := len(w.FactsSR(ms[0], world.RelCovers))
	cb := len(w.FactsSR(ms[1], world.RelCovers))
	switch {
	case ca > cb:
		if golds[0] != a {
			t.Errorf("compare gold = %v, want %q", golds, a)
		}
	case cb > ca:
		if golds[0] != b {
			t.Errorf("compare gold = %v, want %q", golds, b)
		}
	default:
		if len(golds) != 2 {
			t.Errorf("tie should accept both, got %v", golds)
		}
	}
}

func TestResolverGoldSuperlative(t *testing.T) {
	w := testWorld(t)
	r := &Resolver{W: w}
	// Find a country with at least one lake.
	for _, c := range w.OfKind(world.KindCountry) {
		in := Intent{Kind: KindSuperlative, Subject: w.Entities[c].Name,
			ValueRel: world.RelArea, FilterRel: world.RelLocatedIn}
		golds, err := r.Gold(in)
		if err != nil {
			continue // country without lakes
		}
		// Verify the answer is a lake in this country with maximal area.
		lake, ok := w.EntityByName(golds[0])
		if !ok || lake.Kind != world.KindLake {
			t.Fatalf("superlative gold %q is not a lake", golds[0])
		}
		return
	}
	t.Skip("no country with lakes in this world")
}

func TestResolverGoldErrors(t *testing.T) {
	w := testWorld(t)
	r := &Resolver{W: w}
	if _, err := r.Gold(Intent{Kind: KindLookup, Subject: "Nobody",
		Chain: []world.RelKey{world.RelBornIn}}); err == nil {
		t.Error("unknown subject accepted")
	}
	if _, err := r.Gold(Intent{Kind: KindOpenProfile, Subject: "X"}); err == nil {
		t.Error("Gold on open intent should fail")
	}
}

func TestSupportFactsProfile(t *testing.T) {
	w := testWorld(t)
	r := &Resolver{W: w}
	p := w.OfKind(world.KindPerson)[0]
	in := Intent{Kind: KindOpenProfile, Subject: w.Entities[p].Name}
	facts := r.SupportFacts(in)
	if len(facts) == 0 {
		t.Fatal("no support facts for profile")
	}
	// Time-varying facts must be collapsed to the current revision.
	popCount := 0
	for _, f := range facts {
		if f.Rel == world.RelPopulation {
			popCount++
		}
		if f.Subject != p {
			t.Errorf("profile fact about wrong subject: %+v", f)
		}
	}
	_ = popCount // persons have no population facts; presence check above suffices
}

func TestSupportFactsField(t *testing.T) {
	w := testWorld(t)
	r := &Resolver{W: w}
	field := w.Entities[w.OfKind(world.KindField)[0]]
	in := Intent{Kind: KindOpenField, Subject: field.Name}
	facts := r.SupportFacts(in)
	if len(facts) == 0 {
		t.Fatal("no support facts for field")
	}
	// All subjects must be people working in that field.
	for _, f := range facts {
		if w.Entities[f.Subject].Kind != world.KindPerson {
			t.Errorf("field fact subject is %v", w.Entities[f.Subject].Kind)
		}
	}
}

func TestRealize(t *testing.T) {
	got := Realize("China", world.RelPopulation, "1443497378")
	if got != "China has a population of 1443497378." {
		t.Errorf("Realize = %q", got)
	}
	// Unknown relation falls back to generic form.
	generic := Realize("A", world.RelKey("mystery_rel"), "B")
	if !strings.Contains(generic, "mystery rel") {
		t.Errorf("generic realize = %q", generic)
	}
}

func TestRealizeFacts(t *testing.T) {
	w := testWorld(t)
	p := w.OfKind(world.KindPerson)[0]
	text := RealizeFacts(w, w.FactsOf(p)[:3])
	if strings.Count(text, ".") < 3 {
		t.Errorf("RealizeFacts should emit one sentence per fact: %q", text)
	}
}

func TestDatasetValidate(t *testing.T) {
	d := &Dataset{Name: "x", Metric: "hit@1", Questions: []Question{
		{ID: 0, Text: "q", Golds: []string{"a"}},
	}}
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
	d.Questions[0].Golds = nil
	if err := d.Validate(); err == nil {
		t.Error("missing golds accepted")
	}
	open := &Dataset{Name: "y", Metric: "rouge-l", Questions: []Question{
		{ID: 0, Text: "q", Intent: Intent{Kind: KindOpenProfile}},
	}}
	if err := open.Validate(); err == nil {
		t.Error("missing refs accepted")
	}
	open.Questions[0].Refs = []string{"r"}
	if err := open.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPrimaryLookupTemplate(t *testing.T) {
	tpl, ok := PrimaryLookupTemplate(world.RelBornIn)
	if !ok {
		t.Fatal("no primary template for born_in")
	}
	if tpl.Render("X", "") != LookupTemplates[world.RelBornIn][0].Render("X", "") {
		t.Error("primary template should be the first registered phrasing")
	}
	if _, ok := PrimaryLookupTemplate(world.RelKey("nope")); ok {
		t.Error("unknown relation should have no template")
	}
}

func TestRealizeCoversAllRelations(t *testing.T) {
	// Every canonical relation must have a bespoke sentence pattern (the
	// generic fallback is for user-defined relations only) so model answers
	// and references stay in one lexical register.
	for _, r := range world.Relations {
		if _, ok := realizePatterns[r.Key]; !ok {
			t.Errorf("relation %s has no realisation pattern", r.Key)
			continue
		}
		got := Realize("SUBJ", r.Key, "OBJ")
		if !strings.Contains(got, "SUBJ") || !strings.Contains(got, "OBJ") {
			t.Errorf("relation %s pattern lost a slot: %q", r.Key, got)
		}
		if !strings.HasSuffix(got, ".") {
			t.Errorf("relation %s pattern is not a sentence: %q", r.Key, got)
		}
	}
}
