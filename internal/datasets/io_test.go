package datasets

import (
	"bytes"
	"strings"
	"testing"
)

func TestDatasetJSONRoundTrip(t *testing.T) {
	s, err := Build(testWorld(t), smallData())
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range s.Datasets() {
		var buf bytes.Buffer
		if err := WriteJSON(&buf, ds); err != nil {
			t.Fatal(err)
		}
		loaded, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("%s: %v", ds.Name, err)
		}
		if loaded.Name != ds.Name || loaded.Metric != ds.Metric {
			t.Errorf("header mismatch: %s/%s", loaded.Name, loaded.Metric)
		}
		if len(loaded.Questions) != len(ds.Questions) {
			t.Fatalf("%s: %d questions, want %d", ds.Name, len(loaded.Questions), len(ds.Questions))
		}
		for i, q := range ds.Questions {
			got := loaded.Questions[i]
			if got.Text != q.Text || got.Intent.Kind != q.Intent.Kind ||
				got.Intent.Subject != q.Intent.Subject || got.SourceKG != q.SourceKG {
				t.Fatalf("%s question %d mismatch:\n%+v\nvs\n%+v", ds.Name, i, got, q)
			}
			if len(got.Intent.Chain) != len(q.Intent.Chain) {
				t.Fatalf("%s question %d chain mismatch", ds.Name, i)
			}
			if len(got.Golds) != len(q.Golds) || len(got.Refs) != len(q.Refs) {
				t.Fatalf("%s question %d answers mismatch", ds.Name, i)
			}
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("nope")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"name":"x","metric":"hit@1","questions":[{"kind":"martian"}]}`)); err == nil {
		t.Error("unknown intent kind accepted")
	}
	// A loaded dataset must still validate (question without golds).
	bad := `{"name":"x","metric":"hit@1","questions":[{"id":0,"text":"q","kind":"lookup","subject":"s","source_kg":"wikidata"}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("invalid dataset accepted")
	}
}
