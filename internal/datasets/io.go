package datasets

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/kg"
	"repro/internal/qa"
	"repro/internal/world"
)

// questionJSON is the JSON wire form of one question, carrying the intent
// so loaded datasets remain machine-evaluable.
type questionJSON struct {
	ID        int      `json:"id"`
	Text      string   `json:"text"`
	Kind      string   `json:"kind"`
	Subject   string   `json:"subject"`
	Subject2  string   `json:"subject2,omitempty"`
	Chain     []string `json:"chain,omitempty"`
	ValueRel  string   `json:"value_rel,omitempty"`
	FilterRel string   `json:"filter_rel,omitempty"`
	TRef      string   `json:"temporal_ref,omitempty"`
	Golds     []string `json:"golds,omitempty"`
	Refs      []string `json:"refs,omitempty"`
	SourceKG  string   `json:"source_kg"`
}

// datasetJSON is the JSON wire form of a dataset.
type datasetJSON struct {
	Name      string         `json:"name"`
	Metric    string         `json:"metric"`
	Questions []questionJSON `json:"questions"`
}

var kindNames = map[qa.IntentKind]string{
	qa.KindLookup:       "lookup",
	qa.KindCompareCount: "compare-count",
	qa.KindCompareValue: "compare-value",
	qa.KindSuperlative:  "superlative",
	qa.KindOpenProfile:  "open-profile",
	qa.KindOpenField:    "open-field",
	qa.KindOpenList:     "open-list",
	qa.KindCount:        "count",
}

var trefNames = map[qa.TemporalRef]string{
	qa.TemporalPrevious: "previous",
	qa.TemporalOriginal: "original",
}

var trefByName = func() map[string]qa.TemporalRef {
	m := make(map[string]qa.TemporalRef, len(trefNames))
	for k, n := range trefNames {
		m[n] = k
	}
	return m
}()

var kindByName = func() map[string]qa.IntentKind {
	m := make(map[string]qa.IntentKind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// WriteJSON serialises a dataset.
func WriteJSON(w io.Writer, d *qa.Dataset) error {
	doc := datasetJSON{Name: d.Name, Metric: d.Metric}
	for _, q := range d.Questions {
		qj := questionJSON{
			ID:        q.ID,
			Text:      q.Text,
			Kind:      kindNames[q.Intent.Kind],
			Subject:   q.Intent.Subject,
			Subject2:  q.Intent.Subject2,
			ValueRel:  string(q.Intent.ValueRel),
			FilterRel: string(q.Intent.FilterRel),
			TRef:      trefNames[q.Intent.TRef],
			Golds:     q.Golds,
			Refs:      q.Refs,
			SourceKG:  q.SourceKG.String(),
		}
		for _, rel := range q.Intent.Chain {
			qj.Chain = append(qj.Chain, string(rel))
		}
		doc.Questions = append(doc.Questions, qj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("datasets: write: %w", err)
	}
	return nil
}

// ReadJSON loads a dataset written by WriteJSON and validates it.
func ReadJSON(r io.Reader) (*qa.Dataset, error) {
	var doc datasetJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("datasets: read: %w", err)
	}
	d := &qa.Dataset{Name: doc.Name, Metric: doc.Metric}
	for i, qj := range doc.Questions {
		kind, ok := kindByName[qj.Kind]
		if !ok {
			return nil, fmt.Errorf("datasets: question %d: unknown kind %q", i, qj.Kind)
		}
		src, err := kg.ParseSource(qj.SourceKG)
		if err != nil {
			return nil, fmt.Errorf("datasets: question %d: %w", i, err)
		}
		in := qa.Intent{
			Kind:      kind,
			Subject:   qj.Subject,
			Subject2:  qj.Subject2,
			ValueRel:  world.RelKey(qj.ValueRel),
			FilterRel: world.RelKey(qj.FilterRel),
		}
		if qj.TRef != "" {
			tref, ok := trefByName[qj.TRef]
			if !ok {
				return nil, fmt.Errorf("datasets: question %d: unknown temporal ref %q", i, qj.TRef)
			}
			in.TRef = tref
		}
		for _, rel := range qj.Chain {
			in.Chain = append(in.Chain, world.RelKey(rel))
		}
		d.Questions = append(d.Questions, qa.Question{
			ID: qj.ID, Text: qj.Text, Intent: in,
			Golds: qj.Golds, Refs: qj.Refs, SourceKG: src,
		})
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
