// Package datasets builds the three evaluation sets from a synthetic world,
// mirroring the paper's benchmark suite (DESIGN.md §2):
//
//   - SimpleQuestions-like: single-hop factoids sampled uniformly over the
//     world's facts (tail-heavy, Freebase-sourced in the paper);
//   - QALD-like: multi-hop chains, comparisons and superlatives over head
//     (prominent) entities (Wikidata-sourced in the paper);
//   - NatureQuestions-like: 50 open-ended questions with three reference
//     answers each, written from the world's ground truth.
package datasets

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/kg"
	"repro/internal/qa"
	"repro/internal/world"
)

// Config controls dataset sizes and sampling.
type Config struct {
	Seed int64
	// SimpleN is the SimpleQuestions subset size (the paper samples a
	// subset of the 100k original).
	SimpleN int
	// QALDN is the multi-hop set size (QALD-10's English test split is a
	// few hundred questions).
	QALDN int
	// NatureN is the open-ended set size (the paper hand-writes 50).
	NatureN int
}

// DefaultConfig matches the paper's evaluation scale.
func DefaultConfig() Config {
	return Config{Seed: 7, SimpleN: 400, QALDN: 200, NatureN: 50}
}

// Suite bundles the three datasets.
type Suite struct {
	Simple *qa.Dataset
	QALD   *qa.Dataset
	Nature *qa.Dataset
}

// Datasets returns the suite's sets in presentation order.
func (s *Suite) Datasets() []*qa.Dataset {
	return []*qa.Dataset{s.Simple, s.QALD, s.Nature}
}

// Build constructs the full suite from a world.
func Build(w *world.World, cfg Config) (*Suite, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &qa.Resolver{W: w}
	simple, err := buildSimple(w, res, rng, cfg.SimpleN)
	if err != nil {
		return nil, fmt.Errorf("datasets: SimpleQuestions: %w", err)
	}
	qald, err := buildQALD(w, res, rng, cfg.QALDN)
	if err != nil {
		return nil, fmt.Errorf("datasets: QALD: %w", err)
	}
	nature, err := buildNature(w, res, rng, cfg.NatureN)
	if err != nil {
		return nil, fmt.Errorf("datasets: NatureQuestions: %w", err)
	}
	for _, d := range []*qa.Dataset{simple, qald, nature} {
		if err := d.Validate(); err != nil {
			return nil, err
		}
	}
	return &Suite{Simple: simple, QALD: qald, Nature: nature}, nil
}

// singleHopRels are the relations eligible for SimpleQuestions items: every
// relation whose subject kind has enough instances to sample from.
var singleHopRels = []world.RelKey{
	world.RelBornIn, world.RelBirthDate, world.RelOccupation, world.RelAward,
	world.RelEducatedAt, world.RelFieldOfWork, world.RelNotableWork,
	world.RelCitizenOf, world.RelInCountry, world.RelPopulation,
	world.RelCapital, world.RelContinent, world.RelOfficialLang,
	world.RelArea, world.RelInflow, world.RelCovers, world.RelElevation,
	world.RelFlowsThrough, world.RelLength, world.RelFoundedBy,
	world.RelHeadquarters, world.RelIndustry, world.RelProduct,
	world.RelUnivIn, world.RelInception, world.RelCreator, world.RelGenre,
	world.RelPubYear,
}

// buildSimple samples single-hop questions uniformly over facts — the
// tail-heavy regime.
func buildSimple(w *world.World, res *qa.Resolver, rng *rand.Rand, n int) (*qa.Dataset, error) {
	d := &qa.Dataset{Name: "SimpleQuestions", Metric: "hit@1"}
	seen := make(map[string]bool)
	attempts := 0
	for len(d.Questions) < n {
		attempts++
		if attempts > n*200 {
			return nil, fmt.Errorf("could not sample %d questions (got %d)", n, len(d.Questions))
		}
		rel := singleHopRels[rng.Intn(len(singleHopRels))]
		facts := w.FactsByRel(rel)
		if len(facts) == 0 {
			continue
		}
		f := facts[rng.Intn(len(facts))]
		subject := w.Entities[f.Subject].Name
		// Sample among registered paraphrases (roughly a third of items use
		// a non-primary phrasing), exercising the full template registry as
		// real crowd-written questions would.
		tpls := qa.LookupTemplates[rel]
		if len(tpls) == 0 {
			continue
		}
		tpl := tpls[0]
		if len(tpls) > 1 && rng.Intn(3) == 0 {
			tpl = tpls[1+rng.Intn(len(tpls)-1)]
		}
		text := tpl.Render(subject, "")
		if seen[text] {
			continue
		}
		in := qa.Intent{Kind: qa.KindLookup, Subject: subject, Chain: []world.RelKey{rel}}
		golds, err := res.Gold(in)
		if err != nil {
			continue
		}
		seen[text] = true
		d.Questions = append(d.Questions, qa.Question{
			ID: len(d.Questions), Text: text, Intent: in,
			Golds: golds, SourceKG: kg.SourceFreebase,
		})
	}
	return d, nil
}

// buildQALD mixes multi-hop chains (60 %), value/count comparisons (25 %)
// and superlatives (15 %) over head entities.
func buildQALD(w *world.World, res *qa.Resolver, rng *rand.Rand, n int) (*qa.Dataset, error) {
	d := &qa.Dataset{Name: "QALD", Metric: "hit@1"}
	seen := make(map[string]bool)
	heads := map[world.Kind][]int{}
	headOf := func(k world.Kind) []int {
		if _, ok := heads[k]; !ok {
			heads[k] = w.HeadEntities(k, 0.4)
		}
		return heads[k]
	}
	attempts := 0
	for len(d.Questions) < n {
		attempts++
		if attempts > n*300 {
			return nil, fmt.Errorf("could not sample %d questions (got %d)", n, len(d.Questions))
		}
		var (
			text string
			in   qa.Intent
		)
		switch roll := rng.Intn(100); {
		case roll < 60:
			tpl := qa.MultiHopTemplates[rng.Intn(len(qa.MultiHopTemplates))]
			info, _ := world.RelByKey(tpl.Chain[0])
			pool := headOf(info.SubjectKind)
			subject := w.Entities[pool[rng.Intn(len(pool))]].Name
			text = tpl.Render(subject, "")
			in = qa.Intent{Kind: qa.KindLookup, Subject: subject, Chain: tpl.Chain}
		case roll < 85:
			tpl := qa.CompareTemplates[rng.Intn(len(qa.CompareTemplates))]
			info, _ := world.RelByKey(tpl.Chain[0])
			pool := headOf(info.SubjectKind)
			if len(pool) < 2 {
				continue
			}
			i, j := rng.Intn(len(pool)), rng.Intn(len(pool))
			if i == j {
				continue
			}
			a, b := w.Entities[pool[i]].Name, w.Entities[pool[j]].Name
			text = tpl.Render(a, b)
			in = qa.Intent{Kind: tpl.Kind, Subject: a, Subject2: b, Chain: tpl.Chain}
		default:
			tpl := qa.SuperlativeTemplates[rng.Intn(len(qa.SuperlativeTemplates))]
			pool := headOf(world.KindCountry)
			subject := w.Entities[pool[rng.Intn(len(pool))]].Name
			text = tpl.Render(subject, "")
			in = qa.Intent{Kind: qa.KindSuperlative, Subject: subject,
				ValueRel: tpl.ValueRel, FilterRel: tpl.FilterRel}
		}
		if seen[text] {
			continue
		}
		golds, err := res.Gold(in)
		if err != nil {
			continue
		}
		seen[text] = true
		d.Questions = append(d.Questions, qa.Question{
			ID: len(d.Questions), Text: text, Intent: in,
			Golds: golds, SourceKG: kg.SourceWikidata,
		})
	}
	return d, nil
}

// buildNature writes open-ended questions with three reference answers
// each, in the spirit of the paper's hand-built 50-question set: answers
// should be comprehensive, so references realise the full support-fact set
// in three different orders/selections.
func buildNature(w *world.World, res *qa.Resolver, rng *rand.Rand, n int) (*qa.Dataset, error) {
	d := &qa.Dataset{Name: "NatureQuestions", Metric: "rouge-l"}
	seen := make(map[string]bool)
	attempts := 0
	for len(d.Questions) < n {
		attempts++
		if attempts > n*300 {
			return nil, fmt.Errorf("could not sample %d questions (got %d)", n, len(d.Questions))
		}
		tpl := qa.OpenTemplates[rng.Intn(len(qa.OpenTemplates))]
		var subject string
		switch tpl.Kind {
		case qa.KindOpenField:
			pool := w.OfKind(world.KindField)
			subject = w.Entities[pool[rng.Intn(len(pool))]].Name
		case qa.KindOpenProfile:
			pool := w.HeadEntities(kindForProfile(rng), 0.5)
			subject = w.Entities[pool[rng.Intn(len(pool))]].Name
		case qa.KindOpenList:
			info, _ := world.RelByKey(tpl.Chain[0])
			pool := w.HeadEntities(info.SubjectKind, 0.5)
			subject = w.Entities[pool[rng.Intn(len(pool))]].Name
		}
		text := tpl.Render(subject, "")
		if seen[text] {
			continue
		}
		in := qa.Intent{Kind: tpl.Kind, Subject: subject, Chain: tpl.Chain}
		support := res.SupportFacts(in)
		if len(support) < 2 {
			continue
		}
		seen[text] = true
		d.Questions = append(d.Questions, qa.Question{
			ID: len(d.Questions), Text: text, Intent: in,
			Refs:     references(w, support, rng),
			SourceKG: kg.SourceWikidata,
		})
	}
	return d, nil
}

// kindForProfile picks an entity kind for "Tell me about X" questions.
func kindForProfile(rng *rand.Rand) world.Kind {
	kinds := []world.Kind{world.KindPerson, world.KindPerson, world.KindCompany, world.KindLake, world.KindMountain}
	return kinds[rng.Intn(len(kinds))]
}

// references produces three reference answers: the full support set in
// canonical order, a shuffled variant, and a trimmed "essentials" variant.
// Together they reward comprehensive, fact-dense answers, as the paper
// intends ("expecting the answer will be comprehensive enough").
func references(w *world.World, support []world.Fact, rng *rand.Rand) []string {
	full := qa.RealizeFacts(w, support)

	shuffled := make([]world.Fact, len(support))
	copy(shuffled, support)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	alt := qa.RealizeFacts(w, shuffled)

	trimmed := support
	if len(trimmed) > 3 {
		trimmed = trimmed[:len(trimmed)*2/3]
	}
	lead := "In short: " + qa.RealizeFacts(w, trimmed)

	return []string{full, alt, lead}
}

// Describe summarises the suite for logs.
func (s *Suite) Describe() string {
	var b strings.Builder
	for _, d := range s.Datasets() {
		fmt.Fprintf(&b, "%s: %d questions (%s)\n", d.Name, len(d.Questions), d.Metric)
	}
	return b.String()
}
