// Package datasets builds the three evaluation sets from a synthetic world,
// mirroring the paper's benchmark suite (DESIGN.md §2):
//
//   - SimpleQuestions-like: single-hop factoids sampled uniformly over the
//     world's facts (tail-heavy, Freebase-sourced in the paper);
//   - QALD-like: multi-hop chains, comparisons and superlatives over head
//     (prominent) entities (Wikidata-sourced in the paper);
//   - NatureQuestions-like: 50 open-ended questions with three reference
//     answers each, written from the world's ground truth.
//
// Beyond the paper trio, the package builds four scenario packs that
// stress specific failure modes: TemporalQuestions (previous/original
// revisions of time-varying facts), AggregationQuestions (cardinalities
// the graph methods compute by executing Cypher), AdversarialQuestions
// (false premises whose gold answer is "unanswerable") and NoisyQuestions
// (chatty, case-mangled surface forms).
package datasets

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/kg"
	"repro/internal/qa"
	"repro/internal/world"
)

// Config controls dataset sizes and sampling.
type Config struct {
	Seed int64
	// SimpleN is the SimpleQuestions subset size (the paper samples a
	// subset of the 100k original).
	SimpleN int
	// QALDN is the multi-hop set size (QALD-10's English test split is a
	// few hundred questions).
	QALDN int
	// NatureN is the open-ended set size (the paper hand-writes 50).
	NatureN int
	// TemporalN sizes the temporal scenario pack (questions about previous
	// or original revisions of time-varying facts).
	TemporalN int
	// AggregationN sizes the aggregation scenario pack (cardinality
	// questions the graph methods answer by executing Cypher).
	AggregationN int
	// AdversarialN sizes the adversarial scenario pack (false-premise
	// questions whose gold answer is "unanswerable").
	AdversarialN int
	// NoisyN sizes the noisy-surface scenario pack (chatty, case-mangled
	// paraphrases of single-hop lookups).
	NoisyN int
}

// DefaultConfig matches the paper's evaluation scale, plus the scenario
// packs.
func DefaultConfig() Config {
	return Config{Seed: 7, SimpleN: 400, QALDN: 200, NatureN: 50,
		TemporalN: 60, AggregationN: 60, AdversarialN: 40, NoisyN: 60}
}

// Suite bundles the three paper datasets and the four scenario packs.
type Suite struct {
	Simple *qa.Dataset
	QALD   *qa.Dataset
	Nature *qa.Dataset
	// Temporal, Aggregation, Adversarial and Noisy are the scenario packs:
	// stress sets beyond the paper's benchmark trio.
	Temporal    *qa.Dataset
	Aggregation *qa.Dataset
	Adversarial *qa.Dataset
	Noisy       *qa.Dataset
}

// Datasets returns the suite's sets in presentation order.
func (s *Suite) Datasets() []*qa.Dataset {
	return []*qa.Dataset{s.Simple, s.QALD, s.Nature,
		s.Temporal, s.Aggregation, s.Adversarial, s.Noisy}
}

// Build constructs the full suite from a world.
func Build(w *world.World, cfg Config) (*Suite, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &qa.Resolver{W: w}
	simple, err := buildSimple(w, res, rng, cfg.SimpleN)
	if err != nil {
		return nil, fmt.Errorf("datasets: SimpleQuestions: %w", err)
	}
	qald, err := buildQALD(w, res, rng, cfg.QALDN)
	if err != nil {
		return nil, fmt.Errorf("datasets: QALD: %w", err)
	}
	nature, err := buildNature(w, res, rng, cfg.NatureN)
	if err != nil {
		return nil, fmt.Errorf("datasets: NatureQuestions: %w", err)
	}
	// The scenario packs build after the paper trio, drawing from the same
	// rng stream: the trio above stays byte-identical to pre-pack builds
	// (the committed replay baselines depend on that).
	temporal, err := buildTemporal(w, res, rng, cfg.TemporalN)
	if err != nil {
		return nil, fmt.Errorf("datasets: TemporalQuestions: %w", err)
	}
	aggregation, err := buildAggregation(w, res, rng, cfg.AggregationN)
	if err != nil {
		return nil, fmt.Errorf("datasets: AggregationQuestions: %w", err)
	}
	adversarial, err := buildAdversarial(w, res, rng, cfg.AdversarialN)
	if err != nil {
		return nil, fmt.Errorf("datasets: AdversarialQuestions: %w", err)
	}
	noisy, err := buildNoisy(w, res, rng, cfg.NoisyN)
	if err != nil {
		return nil, fmt.Errorf("datasets: NoisyQuestions: %w", err)
	}
	s := &Suite{Simple: simple, QALD: qald, Nature: nature,
		Temporal: temporal, Aggregation: aggregation,
		Adversarial: adversarial, Noisy: noisy}
	for _, d := range s.Datasets() {
		if err := d.Validate(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// singleHopRels are the relations eligible for SimpleQuestions items: every
// relation whose subject kind has enough instances to sample from.
var singleHopRels = []world.RelKey{
	world.RelBornIn, world.RelBirthDate, world.RelOccupation, world.RelAward,
	world.RelEducatedAt, world.RelFieldOfWork, world.RelNotableWork,
	world.RelCitizenOf, world.RelInCountry, world.RelPopulation,
	world.RelCapital, world.RelContinent, world.RelOfficialLang,
	world.RelArea, world.RelInflow, world.RelCovers, world.RelElevation,
	world.RelFlowsThrough, world.RelLength, world.RelFoundedBy,
	world.RelHeadquarters, world.RelIndustry, world.RelProduct,
	world.RelUnivIn, world.RelInception, world.RelCreator, world.RelGenre,
	world.RelPubYear,
}

// buildSimple samples single-hop questions uniformly over facts — the
// tail-heavy regime.
func buildSimple(w *world.World, res *qa.Resolver, rng *rand.Rand, n int) (*qa.Dataset, error) {
	d := &qa.Dataset{Name: "SimpleQuestions", Metric: "hit@1"}
	seen := make(map[string]bool)
	attempts := 0
	for len(d.Questions) < n {
		attempts++
		if attempts > n*200 {
			return nil, fmt.Errorf("could not sample %d questions (got %d)", n, len(d.Questions))
		}
		rel := singleHopRels[rng.Intn(len(singleHopRels))]
		facts := w.FactsByRel(rel)
		if len(facts) == 0 {
			continue
		}
		f := facts[rng.Intn(len(facts))]
		subject := w.Entities[f.Subject].Name
		// Sample among registered paraphrases (roughly a third of items use
		// a non-primary phrasing), exercising the full template registry as
		// real crowd-written questions would.
		tpls := qa.LookupTemplates[rel]
		if len(tpls) == 0 {
			continue
		}
		tpl := tpls[0]
		if len(tpls) > 1 && rng.Intn(3) == 0 {
			tpl = tpls[1+rng.Intn(len(tpls)-1)]
		}
		text := tpl.Render(subject, "")
		if seen[text] {
			continue
		}
		in := qa.Intent{Kind: qa.KindLookup, Subject: subject, Chain: []world.RelKey{rel}}
		golds, err := res.Gold(in)
		if err != nil {
			continue
		}
		seen[text] = true
		d.Questions = append(d.Questions, qa.Question{
			ID: len(d.Questions), Text: text, Intent: in,
			Golds: golds, SourceKG: kg.SourceFreebase,
		})
	}
	return d, nil
}

// buildQALD mixes multi-hop chains (60 %), value/count comparisons (25 %)
// and superlatives (15 %) over head entities.
func buildQALD(w *world.World, res *qa.Resolver, rng *rand.Rand, n int) (*qa.Dataset, error) {
	d := &qa.Dataset{Name: "QALD", Metric: "hit@1"}
	seen := make(map[string]bool)
	heads := map[world.Kind][]int{}
	headOf := func(k world.Kind) []int {
		if _, ok := heads[k]; !ok {
			heads[k] = w.HeadEntities(k, 0.4)
		}
		return heads[k]
	}
	attempts := 0
	for len(d.Questions) < n {
		attempts++
		if attempts > n*300 {
			return nil, fmt.Errorf("could not sample %d questions (got %d)", n, len(d.Questions))
		}
		var (
			text string
			in   qa.Intent
		)
		switch roll := rng.Intn(100); {
		case roll < 60:
			tpl := qa.MultiHopTemplates[rng.Intn(len(qa.MultiHopTemplates))]
			info, _ := world.RelByKey(tpl.Chain[0])
			pool := headOf(info.SubjectKind)
			subject := w.Entities[pool[rng.Intn(len(pool))]].Name
			text = tpl.Render(subject, "")
			in = qa.Intent{Kind: qa.KindLookup, Subject: subject, Chain: tpl.Chain}
		case roll < 85:
			tpl := qa.CompareTemplates[rng.Intn(len(qa.CompareTemplates))]
			info, _ := world.RelByKey(tpl.Chain[0])
			pool := headOf(info.SubjectKind)
			if len(pool) < 2 {
				continue
			}
			i, j := rng.Intn(len(pool)), rng.Intn(len(pool))
			if i == j {
				continue
			}
			a, b := w.Entities[pool[i]].Name, w.Entities[pool[j]].Name
			text = tpl.Render(a, b)
			in = qa.Intent{Kind: tpl.Kind, Subject: a, Subject2: b, Chain: tpl.Chain}
		default:
			tpl := qa.SuperlativeTemplates[rng.Intn(len(qa.SuperlativeTemplates))]
			pool := headOf(world.KindCountry)
			subject := w.Entities[pool[rng.Intn(len(pool))]].Name
			text = tpl.Render(subject, "")
			in = qa.Intent{Kind: qa.KindSuperlative, Subject: subject,
				ValueRel: tpl.ValueRel, FilterRel: tpl.FilterRel}
		}
		if seen[text] {
			continue
		}
		golds, err := res.Gold(in)
		if err != nil {
			continue
		}
		seen[text] = true
		d.Questions = append(d.Questions, qa.Question{
			ID: len(d.Questions), Text: text, Intent: in,
			Golds: golds, SourceKG: kg.SourceWikidata,
		})
	}
	return d, nil
}

// buildNature writes open-ended questions with three reference answers
// each, in the spirit of the paper's hand-built 50-question set: answers
// should be comprehensive, so references realise the full support-fact set
// in three different orders/selections.
func buildNature(w *world.World, res *qa.Resolver, rng *rand.Rand, n int) (*qa.Dataset, error) {
	d := &qa.Dataset{Name: "NatureQuestions", Metric: "rouge-l"}
	seen := make(map[string]bool)
	attempts := 0
	for len(d.Questions) < n {
		attempts++
		if attempts > n*300 {
			return nil, fmt.Errorf("could not sample %d questions (got %d)", n, len(d.Questions))
		}
		tpl := qa.OpenTemplates[rng.Intn(len(qa.OpenTemplates))]
		var subject string
		switch tpl.Kind {
		case qa.KindOpenField:
			pool := w.OfKind(world.KindField)
			subject = w.Entities[pool[rng.Intn(len(pool))]].Name
		case qa.KindOpenProfile:
			pool := w.HeadEntities(kindForProfile(rng), 0.5)
			subject = w.Entities[pool[rng.Intn(len(pool))]].Name
		case qa.KindOpenList:
			info, _ := world.RelByKey(tpl.Chain[0])
			pool := w.HeadEntities(info.SubjectKind, 0.5)
			subject = w.Entities[pool[rng.Intn(len(pool))]].Name
		}
		text := tpl.Render(subject, "")
		if seen[text] {
			continue
		}
		in := qa.Intent{Kind: tpl.Kind, Subject: subject, Chain: tpl.Chain}
		support := res.SupportFacts(in)
		if len(support) < 2 {
			continue
		}
		seen[text] = true
		d.Questions = append(d.Questions, qa.Question{
			ID: len(d.Questions), Text: text, Intent: in,
			Refs:     references(w, support, rng),
			SourceKG: kg.SourceWikidata,
		})
	}
	return d, nil
}

// buildTemporal samples questions about previous/original revisions of the
// world's time-varying facts (population is the only such relation). Every
// subject is guaranteed at least two recorded revisions, so "previous"
// always has a referent.
func buildTemporal(w *world.World, res *qa.Resolver, rng *rand.Rand, n int) (*qa.Dataset, error) {
	d := &qa.Dataset{Name: "TemporalQuestions", Metric: "hit@1"}
	seen := make(map[string]bool)
	cities := w.OfKind(world.KindCity)
	if len(cities) == 0 {
		return nil, fmt.Errorf("world has no cities to ask about")
	}
	attempts := 0
	for len(d.Questions) < n {
		attempts++
		if attempts > n*300 {
			return nil, fmt.Errorf("could not sample %d questions (got %d)", n, len(d.Questions))
		}
		tpl := qa.TemporalTemplates[rng.Intn(len(qa.TemporalTemplates))]
		id := cities[rng.Intn(len(cities))]
		if len(w.FactsSR(id, world.RelPopulation)) < 2 {
			continue
		}
		subject := w.Entities[id].Name
		text := tpl.Render(subject, "")
		if seen[text] {
			continue
		}
		in := qa.Intent{Kind: qa.KindLookup, Subject: subject, Chain: tpl.Chain, TRef: tpl.TRef}
		golds, err := res.Gold(in)
		if err != nil {
			continue
		}
		seen[text] = true
		d.Questions = append(d.Questions, qa.Question{
			ID: len(d.Questions), Text: text, Intent: in,
			Golds: golds, SourceKG: kg.SourceWikidata,
		})
	}
	return d, nil
}

// buildAggregation samples cardinality questions over multi-valued
// relations. The gold is the true fact count; graph methods earn it by
// aggregating retrieved triples through the Cypher engine.
func buildAggregation(w *world.World, res *qa.Resolver, rng *rand.Rand, n int) (*qa.Dataset, error) {
	d := &qa.Dataset{Name: "AggregationQuestions", Metric: "hit@1"}
	seen := make(map[string]bool)
	attempts := 0
	for len(d.Questions) < n {
		attempts++
		if attempts > n*300 {
			return nil, fmt.Errorf("could not sample %d questions (got %d)", n, len(d.Questions))
		}
		tpl := qa.CountTemplates[rng.Intn(len(qa.CountTemplates))]
		facts := w.FactsByRel(tpl.Chain[0])
		if len(facts) == 0 {
			continue
		}
		f := facts[rng.Intn(len(facts))]
		subject := w.Entities[f.Subject].Name
		text := tpl.Render(subject, "")
		if seen[text] {
			continue
		}
		in := qa.Intent{Kind: qa.KindCount, Subject: subject, Chain: tpl.Chain}
		golds, err := res.Gold(in)
		if err != nil {
			continue
		}
		seen[text] = true
		d.Questions = append(d.Questions, qa.Question{
			ID: len(d.Questions), Text: text, Intent: in,
			Golds: golds, SourceKG: kg.SourceWikidata,
		})
	}
	return d, nil
}

// adversarialRels are the lookup relations the adversarial pack builds
// false-premise questions from.
var adversarialRels = []world.RelKey{
	world.RelPopulation, world.RelCapital, world.RelBornIn, world.RelAward,
	world.RelFoundedBy, world.RelOfficialLang, world.RelLength, world.RelGenre,
}

// buildAdversarial samples unanswerable questions: a well-formed lookup
// template filled with a real entity of the wrong kind ("What is the
// population of Marie Curie?"). The gold answer is qa.Unanswerable; any
// confident guess scores zero.
func buildAdversarial(w *world.World, res *qa.Resolver, rng *rand.Rand, n int) (*qa.Dataset, error) {
	d := &qa.Dataset{Name: "AdversarialQuestions", Metric: "hit@1"}
	seen := make(map[string]bool)
	attempts := 0
	for len(d.Questions) < n {
		attempts++
		if attempts > n*300 {
			return nil, fmt.Errorf("could not sample %d questions (got %d)", n, len(d.Questions))
		}
		rel := adversarialRels[rng.Intn(len(adversarialRels))]
		tpl, ok := qa.PrimaryLookupTemplate(rel)
		if !ok {
			continue
		}
		info, _ := world.RelByKey(rel)
		id := rng.Intn(len(w.Entities))
		ent := w.Entities[id]
		// The premise must genuinely fail: wrong subject kind and no facts.
		if ent.Kind == info.SubjectKind || len(w.FactsSR(id, rel)) > 0 {
			continue
		}
		text := tpl.Render(ent.Name, "")
		if seen[text] {
			continue
		}
		seen[text] = true
		d.Questions = append(d.Questions, qa.Question{
			ID:   len(d.Questions),
			Text: text,
			Intent: qa.Intent{Kind: qa.KindLookup, Subject: ent.Name,
				Chain: []world.RelKey{rel}},
			Golds:    []string{qa.Unanswerable},
			SourceKG: kg.SourceWikidata,
		})
	}
	return d, nil
}

// buildNoisy samples chatty paraphrases of single-hop lookups, lowercasing
// the subject surface about half the time. The intent keeps the canonical
// name — the noise lives only in the question text, which is what subject
// resolution has to see through.
func buildNoisy(w *world.World, res *qa.Resolver, rng *rand.Rand, n int) (*qa.Dataset, error) {
	d := &qa.Dataset{Name: "NoisyQuestions", Metric: "hit@1"}
	seen := make(map[string]bool)
	attempts := 0
	for len(d.Questions) < n {
		attempts++
		if attempts > n*300 {
			return nil, fmt.Errorf("could not sample %d questions (got %d)", n, len(d.Questions))
		}
		tpl := qa.NoisyTemplates[rng.Intn(len(qa.NoisyTemplates))]
		facts := w.FactsByRel(tpl.Chain[0])
		if len(facts) == 0 {
			continue
		}
		f := facts[rng.Intn(len(facts))]
		subject := w.Entities[f.Subject].Name
		surface := subject
		if rng.Intn(2) == 0 {
			surface = strings.ToLower(subject)
		}
		text := tpl.Render(surface, "")
		if seen[text] {
			continue
		}
		in := qa.Intent{Kind: qa.KindLookup, Subject: subject, Chain: tpl.Chain}
		golds, err := res.Gold(in)
		if err != nil {
			continue
		}
		seen[text] = true
		d.Questions = append(d.Questions, qa.Question{
			ID: len(d.Questions), Text: text, Intent: in,
			Golds: golds, SourceKG: kg.SourceWikidata,
		})
	}
	return d, nil
}

// kindForProfile picks an entity kind for "Tell me about X" questions.
func kindForProfile(rng *rand.Rand) world.Kind {
	kinds := []world.Kind{world.KindPerson, world.KindPerson, world.KindCompany, world.KindLake, world.KindMountain}
	return kinds[rng.Intn(len(kinds))]
}

// references produces three reference answers: the full support set in
// canonical order, a shuffled variant, and a trimmed "essentials" variant.
// Together they reward comprehensive, fact-dense answers, as the paper
// intends ("expecting the answer will be comprehensive enough").
func references(w *world.World, support []world.Fact, rng *rand.Rand) []string {
	full := qa.RealizeFacts(w, support)

	shuffled := make([]world.Fact, len(support))
	copy(shuffled, support)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	alt := qa.RealizeFacts(w, shuffled)

	trimmed := support
	if len(trimmed) > 3 {
		trimmed = trimmed[:len(trimmed)*2/3]
	}
	lead := "In short: " + qa.RealizeFacts(w, trimmed)

	return []string{full, alt, lead}
}

// Describe summarises the suite for logs.
func (s *Suite) Describe() string {
	var b strings.Builder
	for _, d := range s.Datasets() {
		fmt.Fprintf(&b, "%s: %d questions (%s)\n", d.Name, len(d.Questions), d.Metric)
	}
	return b.String()
}
