package datasets

import (
	"strings"
	"testing"

	"repro/internal/kg"
	"repro/internal/qa"
	"repro/internal/world"
)

func testWorld(t testing.TB) *world.World {
	t.Helper()
	cfg := world.DefaultConfig()
	cfg.People = 120
	cfg.Cities = 40
	cfg.Countries = 16
	cfg.Works = 80
	cfg.Companies = 30
	cfg.Universities = 15
	cfg.Lakes = 25
	cfg.Mountains = 12
	cfg.Rivers = 25
	return world.MustGenerate(cfg)
}

func smallData() Config {
	return Config{Seed: 7, SimpleN: 50, QALDN: 30, NatureN: 15,
		TemporalN: 10, AggregationN: 10, AdversarialN: 8, NoisyN: 10}
}

func TestBuildSizes(t *testing.T) {
	s, err := Build(testWorld(t), smallData())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Simple.Questions) != 50 {
		t.Errorf("Simple = %d", len(s.Simple.Questions))
	}
	if len(s.QALD.Questions) != 30 {
		t.Errorf("QALD = %d", len(s.QALD.Questions))
	}
	if len(s.Nature.Questions) != 15 {
		t.Errorf("Nature = %d", len(s.Nature.Questions))
	}
}

func TestBuildDeterministic(t *testing.T) {
	w := testWorld(t)
	a, err := Build(w, smallData())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(w, smallData())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Simple.Questions {
		if a.Simple.Questions[i].Text != b.Simple.Questions[i].Text {
			t.Fatal("SimpleQuestions not deterministic")
		}
	}
	for i := range a.Nature.Questions {
		if a.Nature.Questions[i].Text != b.Nature.Questions[i].Text {
			t.Fatal("NatureQuestions not deterministic")
		}
	}
}

func TestQuestionsUnique(t *testing.T) {
	s, err := Build(testWorld(t), smallData())
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range s.Datasets() {
		seen := map[string]bool{}
		for _, q := range ds.Questions {
			if seen[q.Text] {
				t.Fatalf("%s has duplicate question %q", ds.Name, q.Text)
			}
			seen[q.Text] = true
		}
	}
}

func TestMetricsAndSources(t *testing.T) {
	s, err := Build(testWorld(t), smallData())
	if err != nil {
		t.Fatal(err)
	}
	if s.Simple.Metric != "hit@1" || s.QALD.Metric != "hit@1" || s.Nature.Metric != "rouge-l" {
		t.Error("metrics wrong")
	}
	for _, q := range s.Simple.Questions {
		if q.SourceKG != kg.SourceFreebase {
			t.Fatal("SimpleQuestions should be Freebase-sourced")
		}
		if q.Open() {
			t.Fatal("SimpleQuestions should be precise")
		}
	}
	for _, q := range s.QALD.Questions {
		if q.SourceKG != kg.SourceWikidata {
			t.Fatal("QALD should be Wikidata-sourced")
		}
	}
	for _, q := range s.Nature.Questions {
		if !q.Open() || len(q.Refs) != 3 {
			t.Fatalf("Nature question %q: open=%v refs=%d", q.Text, q.Open(), len(q.Refs))
		}
	}
}

func TestQALDIsMultiStep(t *testing.T) {
	s, err := Build(testWorld(t), smallData())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range s.QALD.Questions {
		if q.Intent.Hops() < 2 {
			t.Errorf("QALD question %q has %d hops", q.Text, q.Intent.Hops())
		}
	}
	for _, q := range s.Simple.Questions {
		if q.Intent.Hops() != 1 {
			t.Errorf("Simple question %q has %d hops", q.Text, q.Intent.Hops())
		}
	}
}

// TestGoldsMatchResolver: every question's golds must equal a fresh
// resolution of its intent — the datasets cannot drift from the world.
func TestGoldsMatchResolver(t *testing.T) {
	w := testWorld(t)
	s, err := Build(w, smallData())
	if err != nil {
		t.Fatal(err)
	}
	res := &qa.Resolver{W: w}
	// Adversarial golds are fixed ("unanswerable"), not resolver-derived,
	// so that pack is excluded.
	for _, ds := range []*qa.Dataset{s.Simple, s.QALD, s.Temporal, s.Aggregation, s.Noisy} {
		for _, q := range ds.Questions {
			golds, err := res.Gold(q.Intent)
			if err != nil {
				t.Fatalf("%s %q: %v", ds.Name, q.Text, err)
			}
			if len(golds) != len(q.Golds) {
				t.Fatalf("%s %q: gold mismatch %v vs %v", ds.Name, q.Text, golds, q.Golds)
			}
			for i := range golds {
				if golds[i] != q.Golds[i] {
					t.Fatalf("%s %q: gold[%d] %q != %q", ds.Name, q.Text, i, golds[i], q.Golds[i])
				}
			}
		}
	}
}

// TestQuestionsParseBack: every generated question must parse back to its
// own intent (the invertibility contract the simulated LLM depends on).
func TestQuestionsParseBack(t *testing.T) {
	s, err := Build(testWorld(t), smallData())
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range s.Datasets() {
		for _, q := range ds.Questions {
			in, err := qa.Parse(q.Text)
			if err != nil {
				t.Fatalf("%s: Parse(%q): %v", ds.Name, q.Text, err)
			}
			// The noisy pack lowercases subject surfaces, so subjects
			// round-trip up to case; everything else is exact.
			if in.Kind != q.Intent.Kind || !strings.EqualFold(in.Subject, q.Intent.Subject) {
				t.Fatalf("%s: %q parsed to %+v, generated as %+v", ds.Name, q.Text, in, q.Intent)
			}
		}
	}
}

func TestNatureRefsRealiseSupport(t *testing.T) {
	w := testWorld(t)
	s, err := Build(w, smallData())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range s.Nature.Questions {
		for i, ref := range q.Refs {
			if len(ref) < 20 {
				t.Errorf("%q ref %d suspiciously short: %q", q.Text, i, ref)
			}
		}
	}
}

// TestScenarioPacks pins the contract of each scenario pack: sizes, intent
// shapes, and the properties the packs exist to stress.
func TestScenarioPacks(t *testing.T) {
	w := testWorld(t)
	s, err := Build(w, smallData())
	if err != nil {
		t.Fatal(err)
	}
	if n := len(s.Temporal.Questions); n != 10 {
		t.Errorf("Temporal = %d", n)
	}
	if n := len(s.Aggregation.Questions); n != 10 {
		t.Errorf("Aggregation = %d", n)
	}
	if n := len(s.Adversarial.Questions); n != 8 {
		t.Errorf("Adversarial = %d", n)
	}
	if n := len(s.Noisy.Questions); n != 10 {
		t.Errorf("Noisy = %d", n)
	}

	res := &qa.Resolver{W: w}
	for _, q := range s.Temporal.Questions {
		if q.Intent.TRef == qa.TemporalCurrent {
			t.Errorf("temporal question %q asks about the current value", q.Text)
		}
	}
	for _, q := range s.Aggregation.Questions {
		if q.Intent.Kind != qa.KindCount {
			t.Errorf("aggregation question %q is not a count intent", q.Text)
		}
	}
	for _, q := range s.Adversarial.Questions {
		if len(q.Golds) != 1 || q.Golds[0] != qa.Unanswerable {
			t.Errorf("adversarial question %q golds = %v", q.Text, q.Golds)
		}
		// The premise must genuinely fail against the world.
		if golds, err := res.Gold(q.Intent); err == nil {
			t.Errorf("adversarial question %q resolves to %v", q.Text, golds)
		}
	}
	sawLower, sawCanonical := false, false
	for _, q := range s.Noisy.Questions {
		lower := strings.ToLower(q.Intent.Subject)
		switch {
		case strings.Contains(q.Text, q.Intent.Subject):
			sawCanonical = true
		case strings.Contains(q.Text, lower):
			sawLower = true
		default:
			t.Errorf("noisy question %q does not contain subject %q in either case", q.Text, q.Intent.Subject)
		}
	}
	if !sawLower || !sawCanonical {
		t.Errorf("noisy pack should mix cased and lowercased subjects (lower=%v canonical=%v)", sawLower, sawCanonical)
	}
}

func TestDescribe(t *testing.T) {
	s, err := Build(testWorld(t), smallData())
	if err != nil {
		t.Fatal(err)
	}
	if s.Describe() == "" {
		t.Error("empty describe")
	}
}

func TestBuildFailsOnImpossibleSizes(t *testing.T) {
	cfg := world.DefaultConfig()
	cfg.People = 20
	cfg.Cities = 16
	cfg.Countries = 15
	cfg.Works = 10
	cfg.Companies = 4
	cfg.Universities = 4
	cfg.Lakes = 4
	cfg.Mountains = 4
	cfg.Rivers = 4
	w := world.MustGenerate(cfg)
	// Demanding far more unique questions than the world can supply must
	// fail with an error, not loop forever.
	_, err := Build(w, Config{Seed: 1, SimpleN: 20000, QALDN: 1, NatureN: 1})
	if err == nil {
		t.Error("impossible dataset size accepted")
	}
}
