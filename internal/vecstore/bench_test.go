package vecstore

import (
	"fmt"
	"testing"

	"repro/internal/embed"
)

// BenchmarkTopKMerge measures the bounded k-way heap merge against the
// shard fan-out's per-shard result lists: f sorted lists of k hits each,
// merged down to k.
func BenchmarkTopKMerge(b *testing.B) {
	for _, shards := range []int{4, 16, 64} {
		for _, k := range []int{10, 100} {
			per := make([][]Hit, shards)
			for s := range per {
				per[s] = make([]Hit, k)
				for i := range per[s] {
					// Descending per list, interleaved across lists.
					per[s][i] = Hit{Score: 1 - float64(i*shards+s)/float64(shards*k)}
					per[s][i].Triple.Subject = fmt.Sprintf("s%d-%d", s, i)
				}
			}
			b.Run(fmt.Sprintf("shards=%d/k=%d", shards, k), func(b *testing.B) {
				for b.Loop() {
					MergeTopK(per, k)
				}
			})
		}
	}
}

// BenchmarkExactScan and BenchmarkHNSWSearch are the before/after pair
// for sublinear retrieval: the same corpus and queries through the
// brute-force sharded scan and through the graph.
func BenchmarkExactScan(b *testing.B) {
	enc := embed.NewEncoder()
	triples := corpus(20000)
	s := BuildSharded(enc, triples, 0)
	qv := enc.Encode("Lake Superior 42 area")
	b.ResetTimer()
	for b.Loop() {
		s.SearchVector(qv, 10)
	}
}

func BenchmarkHNSWSearch(b *testing.B) {
	enc := embed.NewEncoder()
	triples := corpus(20000)
	g := BuildHNSW(enc, triples, HNSWConfig{})
	qv := enc.Encode("Lake Superior 42 area")
	b.ResetTimer()
	for b.Loop() {
		g.SearchVector(qv, 10)
	}
}
