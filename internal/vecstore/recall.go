package vecstore

import (
	"sort"
	"time"

	"repro/internal/embed"
)

// Recall evaluation: measure an HNSW graph's answer quality and speed
// against the exact sharded scan over the same corpus. The graph is
// probed raw — SearchVectorEf, no exact fallback — so a deliberately
// narrow beam shows up as lost recall instead of being silently rescued,
// which is exactly what the CI recall gate needs to trip on.

// RecallResult is one evaluation's summary: overlap of the graph's
// top-k with the exact reference's, and the two latency populations.
type RecallResult struct {
	Corpus  int `json:"corpus"`
	Queries int `json:"queries"`
	K       int `json:"k"`
	// RecallAt1 is the fraction of queries whose graph top hit appears
	// in the exact top-1 set; RecallAtK the mean top-k overlap.
	RecallAt1 float64 `json:"recall_at_1"`
	RecallAtK float64 `json:"recall_at_k"`
	// Latency medians per query, and their ratio (exact / graph).
	ExactP50 time.Duration `json:"exact_p50_ns"`
	ANNP50   time.Duration `json:"ann_p50_ns"`
	Speedup  float64       `json:"speedup"`
}

// EvalRecall probes the graph and the exact reference with the same
// pre-encoded queries and returns the recall/latency summary. The two
// searchers must cover the same corpus; ef is the beam width for the
// graph probes (clamped up to k inside the search, never rescued by an
// exact fallback). Queries are run sequentially so the latency medians
// reflect per-query service time, not scheduler luck.
func EvalRecall(g *HNSW, exact *Sharded, queries []string, k, ef int) RecallResult {
	res := RecallResult{Corpus: exact.Len(), Queries: len(queries), K: k}
	if len(queries) == 0 || k <= 0 {
		return res
	}
	enc := exact.Encoder()
	qvs := make([]embed.Vector, len(queries))
	for i, q := range queries {
		qvs[i] = enc.Encode(q)
	}

	exactTimes := make([]time.Duration, len(queries))
	annTimes := make([]time.Duration, len(queries))
	var sumAt1, sumAtK float64
	for i, qv := range qvs {
		t0 := time.Now()
		ref := exact.SearchVector(qv, k)
		exactTimes[i] = time.Since(t0)

		t1 := time.Now()
		got := g.SearchVectorEf(qv, k, ef)
		annTimes[i] = time.Since(t1)

		refKeys := make(map[string]bool, len(ref))
		for _, h := range ref {
			refKeys[h.Triple.Key()] = true
		}
		if len(ref) == 0 {
			continue
		}
		if len(got) > 0 && got[0].Triple.Key() == ref[0].Triple.Key() {
			sumAt1++
		}
		overlap := 0
		for _, h := range got {
			if refKeys[h.Triple.Key()] {
				overlap++
			}
		}
		sumAtK += float64(overlap) / float64(len(ref))
	}
	res.RecallAt1 = sumAt1 / float64(len(queries))
	res.RecallAtK = sumAtK / float64(len(queries))
	res.ExactP50 = durationP50(exactTimes)
	res.ANNP50 = durationP50(annTimes)
	if res.ANNP50 > 0 {
		res.Speedup = float64(res.ExactP50) / float64(res.ANNP50)
	}
	return res
}

// durationP50 returns the median of the sample (lower-median for even
// sizes, zero for empty).
func durationP50(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := make([]time.Duration, len(ds))
	copy(s, ds)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)-1)/2]
}
