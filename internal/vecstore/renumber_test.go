package vecstore

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/embed"
	"repro/internal/kg"
)

// TestReadShardsRenumbersDuplicateIDs: shards built independently (each
// numbering its triples from zero, as separate stores do) carry clashing
// IDs. ReadShards must renumber the combined sequence so every loaded
// triple has a unique sequential ID, and searching the recomposed view
// must still find triples from every shard.
func TestReadShardsRenumbersDuplicateIDs(t *testing.T) {
	enc := embed.NewEncoder()
	mk := func(tag string, n int) []kg.Triple {
		out := make([]kg.Triple, n)
		for i := range out {
			out[i] = kg.Triple{
				Subject:  fmt.Sprintf("%s subject %d", tag, i),
				Relation: "labelled",
				Object:   tag,
				ID:       i, // deliberate clash across shards
			}
		}
		return out
	}
	shards := []*Index{
		BuildTriples(enc, mk("alpha", 5)),
		BuildTriples(enc, mk("beta", 7)),
		BuildTriples(enc, mk("gamma", 3)),
	}

	var buf bytes.Buffer
	if _, err := WriteShards(&buf, shards); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadShards(&buf, enc)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	next := 0
	for si, sh := range loaded {
		for _, tr := range sh.triples {
			if seen[tr.ID] {
				t.Fatalf("shard %d: duplicate triple ID %d after renumbering", si, tr.ID)
			}
			seen[tr.ID] = true
			if tr.ID != next {
				t.Fatalf("shard %d: triple ID %d, want sequential %d", si, tr.ID, next)
			}
			next++
		}
	}
	if next != 15 {
		t.Fatalf("loaded %d triples, want 15", next)
	}
	view := Compose(enc, loaded...)
	for _, tag := range []string{"alpha", "beta", "gamma"} {
		hits := view.Search(tag+" subject 2 labelled", 3)
		if len(hits) == 0 || hits[0].Triple.Object != tag {
			t.Fatalf("%s: top hit %v, want a %s triple", tag, hits, tag)
		}
	}
}
