package vecstore

import (
	"sync/atomic"

	"repro/internal/embed"
)

// ANNCounters tracks how a Hybrid routed queries. The substrate manager
// owns one and threads it through successive snapshot publishes, so the
// counts survive recomposition (every ingest publishes a new Hybrid).
type ANNCounters struct {
	// Searches counts queries answered through the graph.
	Searches atomic.Int64
	// Fallbacks counts queries answered by the exact scan instead —
	// the ExactFallback escape hatch (beam narrower than k, or no
	// usable graph).
	Fallbacks atomic.Int64
}

// HybridOptions tunes a Hybrid view.
type HybridOptions struct {
	// EfSearch overrides the graph's configured beam width (0 keeps it).
	EfSearch int
	// DisableExactFallback turns the ef<k escape hatch off: narrow-beam
	// queries go to the graph anyway and may return fewer than k hits.
	// A missing or empty graph still falls back — exact is the only
	// path that can answer at all.
	DisableExactFallback bool
	// Counters receives routing counts; nil disables counting.
	Counters *ANNCounters
}

// Hybrid is the serving composite of the approximate/exact split: an
// HNSW graph over the frozen prefix of a segment sequence, an exact
// scan over the uncovered tail (late base segments after a mid-
// generation recovery, plus the hot delta segments), and a brute-force
// fallback over everything. Per-path top-k lists merge through
// MergeTopK, so results keep the deterministic (score desc, surface
// form asc) order every Searcher produces.
type Hybrid struct {
	enc  *embed.Encoder
	ann  *HNSW
	tail *Sharded // segments the graph does not cover
	full *Sharded // every segment: exact reference and fallback path
	opts HybridOptions
}

// ComposeHybrid assembles a Hybrid over the segments. ann must cover a
// prefix of the concatenated segments ending exactly on a segment
// boundary (the invariant the substrate maintains: the graph is built
// or reloaded against whole frozen segments). If the boundary does not
// align — a corrupted or mismatched graph — the graph is discarded and
// the view degrades to pure exact scan rather than serving wrong
// results. ann may be nil for an exact-only view with fallback
// accounting.
func ComposeHybrid(enc *embed.Encoder, ann *HNSW, segs []*Index, opts HybridOptions) *Hybrid {
	hy := &Hybrid{enc: enc, ann: ann, full: Compose(enc, segs...), opts: opts}
	if ann != nil && opts.EfSearch > 0 {
		ann.SetEfSearch(opts.EfSearch)
	}
	covered := 0
	if ann != nil {
		covered = ann.Len()
	}
	sum, split := 0, 0
	for split < len(segs) && sum < covered {
		if segs[split] != nil {
			sum += segs[split].Len()
		}
		split++
	}
	if sum != covered {
		// Misaligned graph: refuse to trust it.
		hy.ann = nil
		split = 0
	}
	hy.tail = Compose(enc, segs[split:]...)
	return hy
}

// ef returns the beam width in effect.
func (hy *Hybrid) ef() int {
	if hy.opts.EfSearch > 0 {
		return hy.opts.EfSearch
	}
	if hy.ann != nil {
		return hy.ann.Config().EfSearch
	}
	return DefaultHNSWEfSearch
}

// useFallback decides routing for one query: exact when there is no
// usable graph, or when the beam cannot fill k slots and the escape
// hatch is on.
func (hy *Hybrid) useFallback(k int) bool {
	if hy.ann == nil || hy.ann.Len() == 0 {
		return true
	}
	return hy.ef() < k && !hy.opts.DisableExactFallback
}

// route runs one query through the graph+tail split or the exact
// fallback, counting which path answered.
func (hy *Hybrid) route(k int, approx func() []Hit, tail func() []Hit, exact func() []Hit) []Hit {
	if k <= 0 {
		return nil
	}
	if hy.useFallback(k) {
		if hy.opts.Counters != nil {
			hy.opts.Counters.Fallbacks.Add(1)
		}
		return exact()
	}
	if hy.opts.Counters != nil {
		hy.opts.Counters.Searches.Add(1)
	}
	annHits := approx()
	var tailHits []Hit
	if hy.tail.Len() > 0 {
		tailHits = tail()
	}
	return MergeTopK([][]Hit{annHits, tailHits}, k)
}

// Len returns the number of indexed triples across graph and tail.
func (hy *Hybrid) Len() int { return hy.full.Len() }

// Encoder returns the encoder all segments were built with.
func (hy *Hybrid) Encoder() *embed.Encoder { return hy.enc }

// Search returns the top-k triples most similar to the query text.
func (hy *Hybrid) Search(query string, k int) []Hit {
	return hy.SearchPreEncoded(query, hy.enc.Encode(query), k)
}

// SearchExact is the brute-force reference over every segment,
// bypassing the graph.
func (hy *Hybrid) SearchExact(query string, k int) []Hit {
	return hy.full.SearchExact(query, k)
}

// SearchVector searches with a pre-encoded vector.
func (hy *Hybrid) SearchVector(qv embed.Vector, k int) []Hit {
	return hy.route(k,
		func() []Hit { return hy.ann.SearchVectorEf(qv, k, hy.ef()) },
		func() []Hit { return hy.tail.SearchVector(qv, k) },
		func() []Hit { return hy.full.SearchVector(qv, k) },
	)
}

// SearchPreEncoded is Search with the query's embedding supplied; the
// exact paths keep their token-filtered candidate selection.
func (hy *Hybrid) SearchPreEncoded(query string, qv embed.Vector, k int) []Hit {
	return hy.route(k,
		func() []Hit { return hy.ann.SearchVectorEf(qv, k, hy.ef()) },
		func() []Hit { return hy.tail.SearchPreEncoded(query, qv, k) },
		func() []Hit { return hy.full.SearchPreEncoded(query, qv, k) },
	)
}

// searchPreEncodedSequential keeps per-query work single-threaded for
// batchSearch, which already parallelises across queries.
func (hy *Hybrid) searchPreEncodedSequential(query string, qv embed.Vector, k int) []Hit {
	return hy.route(k,
		func() []Hit { return hy.ann.SearchVectorEf(qv, k, hy.ef()) },
		func() []Hit { return hy.tail.searchPreEncodedSequential(query, qv, k) },
		func() []Hit { return hy.full.searchPreEncodedSequential(query, qv, k) },
	)
}

// BatchSearch runs Search for each query concurrently.
func (hy *Hybrid) BatchSearch(queries []string, k int) [][]Hit {
	return batchSearch(hy, hy.enc.Encode, queries, k)
}

// BatchSearchWith is BatchSearch with caller-supplied embeddings.
func (hy *Hybrid) BatchSearchWith(encode func(string) embed.Vector, queries []string, k int) [][]Hit {
	return batchSearch(hy, encode, queries, k)
}

// Stats aggregates segment statistics plus the ANN layer description.
func (hy *Hybrid) Stats() Stats {
	st := hy.full.Stats()
	info := &ANNInfo{EfSearch: hy.ef()}
	if hy.ann != nil {
		g := hy.ann.Stats().ANN
		info.Nodes = g.Nodes
		info.MaxLevel = g.MaxLevel
		info.M = g.M
		info.EfConstruction = g.EfConstruction
	}
	if hy.opts.Counters != nil {
		info.Searches = hy.opts.Counters.Searches.Load()
		info.Fallbacks = hy.opts.Counters.Fallbacks.Load()
	}
	st.ANN = info
	return st
}

var (
	_ Searcher           = (*Hybrid)(nil)
	_ sequentialSearcher = (*Hybrid)(nil)
)
