// Package vecstore provides the vectorised triple index used by the
// pipeline's Semantic Query step: every KG triple is encoded once at build
// time, and pseudo-triples are matched against the index by cosine
// similarity to produce the temporary graph Gt.
//
// The index offers two search paths:
//
//   - Exact: brute-force cosine scan over all vectors — always correct,
//     used as the reference and for small stores.
//   - Filtered: an inverted token index pre-selects candidates sharing at
//     least one token with the query before scoring, which is typically
//     >10x faster on KG-scale stores with no recall loss in practice,
//     because zero-token-overlap pairs have near-zero cosine under the
//     hashing encoder anyway.
package vecstore

import (
	"container/heap"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/embed"
	"repro/internal/kg"
)

// Hit is one search result: the matched triple and its cosine score.
type Hit struct {
	Triple kg.Triple
	Score  float64
}

// Searcher is the query surface shared by the single-segment Index and the
// Sharded composite, and what the pipeline and serving layers program
// against: any consistent snapshot of a vector substrate, however it is
// assembled. Implementations are safe for concurrent searches.
type Searcher interface {
	// Len returns the number of indexed triples.
	Len() int
	// Encoder returns the encoder queries must be embedded with.
	Encoder() *embed.Encoder
	// Search returns the top-k triples most similar to the query text.
	Search(query string, k int) []Hit
	// SearchExact is the brute-force correctness reference for Search.
	SearchExact(query string, k int) []Hit
	// SearchVector searches with a pre-encoded vector over all triples.
	SearchVector(qv embed.Vector, k int) []Hit
	// SearchPreEncoded is Search with the query's embedding supplied.
	SearchPreEncoded(query string, qv embed.Vector, k int) []Hit
	// BatchSearch runs Search for each query concurrently.
	BatchSearch(queries []string, k int) [][]Hit
	// BatchSearchWith is BatchSearch with caller-supplied embeddings.
	BatchSearchWith(encode func(string) embed.Vector, queries []string, k int) [][]Hit
	// Stats describes the index for diagnostics.
	Stats() Stats
}

var _ Searcher = (*Index)(nil)

// Index is an immutable vector index over a triple store. Build it with
// Build; it is safe for concurrent searches afterwards.
type Index struct {
	enc     *embed.Encoder
	triples []kg.Triple
	vecs    []embed.Vector
	// inverted maps token -> posting list of triple offsets.
	inverted map[string][]int32
}

// Build encodes every triple in the store and constructs the index. The
// encoder must be the same one used to encode queries.
func Build(enc *embed.Encoder, store *kg.Store) *Index {
	return BuildTriples(enc, store.All())
}

// BuildTriples builds an index directly over a triple slice.
func BuildTriples(enc *embed.Encoder, triples []kg.Triple) *Index {
	idx := &Index{
		enc:      enc,
		triples:  triples,
		vecs:     make([]embed.Vector, len(triples)),
		inverted: make(map[string][]int32),
	}
	type job struct{ lo, hi int }
	const shard = 2048
	var wg sync.WaitGroup
	for lo := 0; lo < len(triples); lo += shard {
		hi := lo + shard
		if hi > len(triples) {
			hi = len(triples)
		}
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			for i := j.lo; i < j.hi; i++ {
				idx.vecs[i] = enc.Encode(triples[i].Text())
			}
		}(job{lo, hi})
	}
	wg.Wait()
	for i, t := range triples {
		seen := make(map[string]bool, 8)
		for _, tok := range embed.Tokenize(t.Text()) {
			if seen[tok] {
				continue
			}
			seen[tok] = true
			idx.inverted[tok] = append(idx.inverted[tok], int32(i))
		}
	}
	return idx
}

// Len returns the number of indexed triples.
func (idx *Index) Len() int { return len(idx.triples) }

// Encoder returns the encoder the index was built with.
func (idx *Index) Encoder() *embed.Encoder { return idx.enc }

// Search returns the top-k triples most similar to the query text, in
// descending score order, using the token-filtered path. If the filter
// yields no candidates (no token overlap at all) it falls back to the exact
// scan so the caller always gets k results when the index has them.
func (idx *Index) Search(query string, k int) []Hit {
	qv := idx.enc.Encode(query)
	cands := idx.candidates(query)
	if len(cands) < k {
		// Not enough token-overlapping candidates to fill k slots: scan
		// everything so the caller still gets k results.
		return idx.searchVec(qv, k, nil)
	}
	return idx.searchVec(qv, k, cands)
}

// SearchExact returns the top-k results by brute-force scan over the whole
// index. It is the correctness reference for Search.
func (idx *Index) SearchExact(query string, k int) []Hit {
	return idx.searchVec(idx.enc.Encode(query), k, nil)
}

// SearchVector searches with a pre-encoded query vector over all triples.
func (idx *Index) SearchVector(qv embed.Vector, k int) []Hit {
	return idx.searchVec(qv, k, nil)
}

// SearchPreEncoded is Search for callers that already hold the query's
// embedding (e.g. from a memo): it keeps the token-filtered candidate
// path — which needs the query text — but skips re-encoding. The vector
// must have been produced by this index's encoder for the given text.
func (idx *Index) SearchPreEncoded(query string, qv embed.Vector, k int) []Hit {
	cands := idx.candidates(query)
	if len(cands) < k {
		return idx.searchVec(qv, k, nil)
	}
	return idx.searchVec(qv, k, cands)
}

// candidates returns the offsets of triples sharing at least one query
// token, deduplicated, or nil when the query has no indexed token.
func (idx *Index) candidates(query string) []int32 {
	toks := embed.Tokenize(query)
	if len(toks) == 0 {
		return nil
	}
	seen := make(map[int32]bool)
	var out []int32
	dedup := make(map[string]bool, len(toks))
	for _, tok := range toks {
		if dedup[tok] {
			continue
		}
		dedup[tok] = true
		for _, off := range idx.inverted[tok] {
			if !seen[off] {
				seen[off] = true
				out = append(out, off)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// hitHeap is a min-heap over scores holding the best k hits seen so far.
type hitHeap []Hit

func (h hitHeap) Len() int           { return len(h) }
func (h hitHeap) Less(i, j int) bool { return h[i].Score < h[j].Score }
func (h hitHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *hitHeap) Push(x any)        { *h = append(*h, x.(Hit)) }
func (h *hitHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func (idx *Index) searchVec(qv embed.Vector, k int, subset []int32) []Hit {
	if k <= 0 || qv.IsZero() {
		return nil
	}
	h := make(hitHeap, 0, k+1)
	consider := func(i int) {
		// NormDot, not Vector.Dot: the per-candidate kernel takes
		// pointers (no 1 KiB array copies) and unrolls the accumulation.
		score := embed.NormDot(&qv, &idx.vecs[i])
		if len(h) < k {
			heap.Push(&h, Hit{Triple: idx.triples[i], Score: score})
			return
		}
		if score > h[0].Score {
			h[0] = Hit{Triple: idx.triples[i], Score: score}
			heap.Fix(&h, 0)
		}
	}
	if subset == nil {
		for i := range idx.vecs {
			consider(i)
		}
	} else {
		for _, off := range subset {
			consider(int(off))
		}
	}
	out := make([]Hit, len(h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Hit)
	}
	// Tie-break equal scores deterministically by triple surface form.
	sort.SliceStable(out, func(i, j int) bool { return hitBefore(out[i], out[j]) })
	return out
}

// hitBefore is the deterministic result order every Searcher produces:
// score descending, equal scores broken by triple surface form ascending.
func hitBefore(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Triple.Key() < b.Triple.Key()
}

// BatchSearch runs Search for each query concurrently and returns results
// in query order.
func (idx *Index) BatchSearch(queries []string, k int) [][]Hit {
	return idx.BatchSearchWith(idx.enc.Encode, queries, k)
}

// BatchSearchWith is BatchSearch with the query embeddings supplied by
// encode instead of the index's encoder — the hook for callers that
// memoise embeddings (internal/core's session memo). encode must be safe
// for concurrent use and consistent with the index's encoder.
func (idx *Index) BatchSearchWith(encode func(string) embed.Vector, queries []string, k int) [][]Hit {
	return batchSearch(idx, encode, queries, k)
}

// preEncodedSearcher is the minimal surface batchSearch fans out over.
type preEncodedSearcher interface {
	SearchPreEncoded(query string, qv embed.Vector, k int) []Hit
}

// batchSearch runs per-query searches concurrently, bounded by the
// machine's parallelism: the searches are CPU-bound scans, so more
// goroutines than schedulable threads only adds contention, and fewer
// leaves large boxes idle. A searcher that also offers a sequential scan
// (Sharded) is searched shard-sequentially per query — the outer pool
// already saturates the cores, so nesting a per-shard fan-out inside it
// would multiply the goroutine count without adding throughput.
func batchSearch(s preEncodedSearcher, encode func(string) embed.Vector, queries []string, k int) [][]Hit {
	search := s.SearchPreEncoded
	if seq, ok := s.(sequentialSearcher); ok {
		search = seq.searchPreEncodedSequential
	}
	out := make([][]Hit, len(queries))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, q := range queries {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, q string) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = search(q, encode(q), k)
		}(i, q)
	}
	wg.Wait()
	return out
}

// sequentialSearcher marks searchers with a no-internal-concurrency scan
// for use inside an already-parallel batch.
type sequentialSearcher interface {
	searchPreEncodedSequential(query string, qv embed.Vector, k int) []Hit
}

// Stats describes an index for diagnostics.
type Stats struct {
	Triples int `json:"triples"`
	Tokens  int `json:"tokens"`
	Dim     int `json:"dim"`
	// Shards is the number of fixed-size segments (1 for a plain Index).
	Shards int `json:"shards"`
	// ANN describes the approximate layer when one is composed in (an
	// HNSW graph or a Hybrid wrapping one); nil for purely exact views.
	ANN *ANNInfo `json:"ann,omitempty"`
}

// ANNInfo describes an approximate index layer: graph shape, the beam
// width in effect, and — on serving composites — how traffic split
// between the graph and the exact fallback, so loadgen runs can
// attribute latency wins to the index.
type ANNInfo struct {
	// Nodes is the graph size: how many triples the graph covers (the
	// remainder of the corpus, if any, is exact-scanned and merged).
	Nodes          int   `json:"nodes"`
	MaxLevel       int   `json:"max_level"`
	M              int   `json:"m"`
	EfConstruction int   `json:"ef_construction"`
	EfSearch       int   `json:"ef_search"`
	Searches       int64 `json:"searches"`
	Fallbacks      int64 `json:"fallbacks"`
}

// Stats returns index statistics.
func (idx *Index) Stats() Stats {
	return Stats{Triples: len(idx.triples), Tokens: len(idx.inverted), Dim: embed.Dim, Shards: 1}
}

// String renders the stats.
func (s Stats) String() string {
	if s.Shards > 1 {
		return fmt.Sprintf("vecstore: %d triples, %d tokens, dim=%d, %d shards", s.Triples, s.Tokens, s.Dim, s.Shards)
	}
	return fmt.Sprintf("vecstore: %d triples, %d tokens, dim=%d", s.Triples, s.Tokens, s.Dim)
}
