package vecstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/embed"
	"repro/internal/kg"
)

// persistMagic identifies the binary index format; the version byte bumps
// on incompatible changes.
var persistMagic = [8]byte{'P', 'G', 'A', 'K', 'V', 'I', 'X', 1}

// WriteTo serialises the index (triples + vectors) in a compact binary
// format, so large KGs can be indexed once and reloaded instantly. The
// inverted token index is rebuilt on load (it is derived data and cheaper
// to rebuild than to store).
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	count := func(n int, err error) error {
		written += int64(n)
		return err
	}
	if err := count(bw.Write(persistMagic[:])); err != nil {
		return written, fmt.Errorf("vecstore: write: %w", err)
	}
	writeU32 := func(v uint32) error {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], v)
		return count(bw.Write(buf[:]))
	}
	writeString := func(s string) error {
		if err := writeU32(uint32(len(s))); err != nil {
			return err
		}
		return count(bw.WriteString(s))
	}
	if err := writeU32(uint32(len(idx.triples))); err != nil {
		return written, fmt.Errorf("vecstore: write: %w", err)
	}
	if err := writeU32(uint32(embed.Dim)); err != nil {
		return written, fmt.Errorf("vecstore: write: %w", err)
	}
	for i, t := range idx.triples {
		for _, s := range []string{t.Subject, t.Relation, t.Object} {
			if err := writeString(s); err != nil {
				return written, fmt.Errorf("vecstore: write triple %d: %w", i, err)
			}
		}
		var meta [8]byte
		binary.LittleEndian.PutUint32(meta[:4], uint32(t.Source))
		binary.LittleEndian.PutUint32(meta[4:], uint32(t.Ord))
		if err := count(bw.Write(meta[:])); err != nil {
			return written, fmt.Errorf("vecstore: write triple %d: %w", i, err)
		}
		var vec [4 * embed.Dim]byte
		for d := 0; d < embed.Dim; d++ {
			binary.LittleEndian.PutUint32(vec[d*4:], math.Float32bits(idx.vecs[i][d]))
		}
		if err := count(bw.Write(vec[:])); err != nil {
			return written, fmt.Errorf("vecstore: write vector %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return written, fmt.Errorf("vecstore: flush: %w", err)
	}
	return written, nil
}

// ReadFrom loads an index written by WriteTo; the encoder must match the
// one used at build time (queries are encoded live).
func ReadFrom(r io.Reader, enc *embed.Encoder) (*Index, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("vecstore: read: %w", err)
	}
	if magic != persistMagic {
		return nil, fmt.Errorf("vecstore: bad magic %v", magic)
	}
	readU32 := func() (uint32, error) {
		var buf [4]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(buf[:]), nil
	}
	readString := func() (string, error) {
		n, err := readU32()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("vecstore: string length %d too large", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	n, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("vecstore: read count: %w", err)
	}
	dim, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("vecstore: read dim: %w", err)
	}
	if dim != embed.Dim {
		return nil, fmt.Errorf("vecstore: dimension mismatch: file has %d, build has %d", dim, embed.Dim)
	}
	// Grow incrementally instead of trusting n for the allocation: a
	// corrupted count field must fail cleanly at the first short read, not
	// attempt a multi-gigabyte up-front allocation.
	const preallocCap = 1 << 16
	initial := int(n)
	if initial > preallocCap {
		initial = preallocCap
	}
	triples := make([]kg.Triple, 0, initial)
	vecs := make([]embed.Vector, 0, initial)
	for i := 0; i < int(n); i++ {
		var t kg.Triple
		if t.Subject, err = readString(); err != nil {
			return nil, fmt.Errorf("vecstore: triple %d: %w", i, err)
		}
		if t.Relation, err = readString(); err != nil {
			return nil, fmt.Errorf("vecstore: triple %d: %w", i, err)
		}
		if t.Object, err = readString(); err != nil {
			return nil, fmt.Errorf("vecstore: triple %d: %w", i, err)
		}
		var meta [8]byte
		if _, err := io.ReadFull(br, meta[:]); err != nil {
			return nil, fmt.Errorf("vecstore: triple %d: %w", i, err)
		}
		t.Source = kg.Source(binary.LittleEndian.Uint32(meta[:4]))
		t.Ord = int(binary.LittleEndian.Uint32(meta[4:]))
		t.ID = i
		var vec [4 * embed.Dim]byte
		if _, err := io.ReadFull(br, vec[:]); err != nil {
			return nil, fmt.Errorf("vecstore: vector %d: %w", i, err)
		}
		var v embed.Vector
		for d := 0; d < embed.Dim; d++ {
			v[d] = math.Float32frombits(binary.LittleEndian.Uint32(vec[d*4:]))
		}
		triples = append(triples, t)
		vecs = append(vecs, v)
	}
	idx := &Index{
		enc:      enc,
		triples:  triples,
		vecs:     vecs,
		inverted: make(map[string][]int32),
	}
	for i, t := range triples {
		seen := make(map[string]bool, 8)
		for _, tok := range embed.Tokenize(t.Text()) {
			if !seen[tok] {
				seen[tok] = true
				idx.inverted[tok] = append(idx.inverted[tok], int32(i))
			}
		}
	}
	return idx, nil
}
