package vecstore

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/embed"
	"repro/internal/kg"
)

// corpus builds n synthetic triples with overlapping vocabulary so both
// the token-filtered and exact paths have work to do.
func corpus(n int) []kg.Triple {
	subjects := []string{"Lake Superior", "Lake Michigan", "Mount Kenya", "River Danube", "Beijing", "Toronto"}
	relations := []string{"area", "population", "country", "elevation", "length"}
	out := make([]kg.Triple, n)
	for i := range out {
		out[i] = kg.Triple{
			Subject:  fmt.Sprintf("%s %d", subjects[i%len(subjects)], i/len(subjects)),
			Relation: relations[i%len(relations)],
			Object:   fmt.Sprintf("%d", 1000+i),
		}
	}
	return out
}

func TestShardedMatchesSingleExact(t *testing.T) {
	enc := embed.NewEncoder()
	triples := corpus(500)
	single := BuildTriples(enc, triples)
	for _, shardSize := range []int{64, 100, 499, 500, 1000} {
		sharded := BuildSharded(enc, triples, shardSize)
		if sharded.Len() != single.Len() {
			t.Fatalf("shardSize=%d: Len = %d, want %d", shardSize, sharded.Len(), single.Len())
		}
		for _, k := range []int{1, 3, 10} {
			for _, q := range []string{"Lake Superior 3 area", "population of Beijing", "River Danube length"} {
				want := single.SearchExact(q, k)
				got := sharded.SearchExact(q, k)
				if len(got) != len(want) {
					t.Fatalf("shardSize=%d k=%d %q: %d hits, want %d", shardSize, k, q, len(got), len(want))
				}
				for i := range want {
					if got[i].Triple.Key() != want[i].Triple.Key() || got[i].Score != want[i].Score {
						t.Errorf("shardSize=%d k=%d %q hit %d: got %v@%g want %v@%g",
							shardSize, k, q, i, got[i].Triple, got[i].Score, want[i].Triple, want[i].Score)
					}
				}
			}
		}
	}
}

func TestShardedFilteredSearch(t *testing.T) {
	enc := embed.NewEncoder()
	triples := corpus(300)
	single := BuildTriples(enc, triples)
	sharded := BuildSharded(enc, triples, 50)
	// The filtered path may pre-select differently per shard, but the top
	// hit and the score ordering must agree with the single index.
	for _, q := range []string{"Lake Superior 0 area", "Toronto 2 country"} {
		want := single.Search(q, 5)
		got := sharded.Search(q, 5)
		if len(got) == 0 || len(want) == 0 {
			t.Fatalf("%q: empty results (got %d, want %d)", q, len(got), len(want))
		}
		if got[0].Triple.Key() != want[0].Triple.Key() {
			t.Errorf("%q top hit: got %v, want %v", q, got[0].Triple, want[0].Triple)
		}
		for i := 1; i < len(got); i++ {
			if got[i].Score > got[i-1].Score {
				t.Errorf("%q: results not score-ordered at %d", q, i)
			}
		}
	}
}

func TestShardedBatchSearch(t *testing.T) {
	enc := embed.NewEncoder()
	triples := corpus(200)
	sharded := BuildSharded(enc, triples, 32)
	queries := []string{"Lake Superior 0 area", "Beijing 1 population", "no overlap whatsoever zzz"}
	res := sharded.BatchSearch(queries, 3)
	if len(res) != len(queries) {
		t.Fatalf("batch returned %d lists, want %d", len(res), len(queries))
	}
	for i, q := range queries {
		want := sharded.Search(q, 3)
		if len(res[i]) != len(want) {
			t.Errorf("batch[%d] %q: %d hits, want %d", i, q, len(res[i]), len(want))
		}
	}
}

func TestShardedEdgeCases(t *testing.T) {
	enc := embed.NewEncoder()
	empty := BuildSharded(enc, nil, 10)
	if empty.Len() != 0 || empty.Shards() != 0 {
		t.Errorf("empty sharded: len=%d shards=%d", empty.Len(), empty.Shards())
	}
	if hits := empty.Search("anything", 5); len(hits) != 0 {
		t.Errorf("empty sharded returned hits: %v", hits)
	}

	one := BuildSharded(enc, corpus(10), 100)
	if one.Shards() != 1 {
		t.Errorf("10 triples at shard size 100 -> %d shards, want 1", one.Shards())
	}
	if hits := one.Search("Lake Superior 0 area", 0); hits != nil {
		t.Errorf("k=0 returned hits: %v", hits)
	}

	// Compose drops nil and empty segments.
	idx := BuildTriples(enc, corpus(5))
	composed := Compose(enc, nil, BuildTriples(enc, nil), idx)
	if composed.Shards() != 1 || composed.Len() != 5 {
		t.Errorf("compose: shards=%d len=%d", composed.Shards(), composed.Len())
	}
}

// TestShardedParallelPathMatches forces the concurrent worker-pool path
// (which single-core machines otherwise skip) and checks it agrees with
// the sequential scan.
func TestShardedParallelPathMatches(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	enc := embed.NewEncoder()
	triples := corpus(400)
	single := BuildTriples(enc, triples)
	sharded := BuildSharded(enc, triples, 64)
	for _, q := range []string{"Lake Superior 2 area", "Beijing 0 population", "Mount Kenya 1 elevation"} {
		want := single.SearchExact(q, 7)
		got := sharded.SearchExact(q, 7)
		if len(got) != len(want) {
			t.Fatalf("%q: %d hits, want %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i].Triple.Key() != want[i].Triple.Key() || got[i].Score != want[i].Score {
				t.Errorf("%q hit %d: got %v@%g want %v@%g", q, i, got[i].Triple, got[i].Score, want[i].Triple, want[i].Score)
			}
		}
	}
}

func TestShardedStats(t *testing.T) {
	enc := embed.NewEncoder()
	sharded := BuildSharded(enc, corpus(130), 50)
	st := sharded.Stats()
	if st.Triples != 130 || st.Shards != 3 || st.Dim != embed.Dim {
		t.Errorf("stats = %+v", st)
	}
	if st.String() == "" {
		t.Error("empty stats string")
	}
}
