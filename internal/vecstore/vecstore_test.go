package vecstore

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/embed"
	"repro/internal/kg"
)

func buildTestIndex(t *testing.T) *Index {
	t.Helper()
	enc := embed.NewEncoder()
	st := kg.NewStore(kg.SourceWikidata)
	st.AddAll([]kg.Triple{
		kg.NewTriple("China", "population", "1443497378"),
		kg.NewTriple("China", "capital", "Beijing"),
		kg.NewTriple("Lake Superior", "area", "82350"),
		kg.NewTriple("Lake Michigan", "area", "57750"),
		kg.NewTriple("Allen Newell", "award received", "Turing Award"),
		kg.NewTriple("John McCarthy", "award received", "Turing Award"),
		kg.NewTriple("John McCarthy", "notable work", "LISP"),
	})
	st.Freeze()
	return Build(enc, st)
}

func TestSearchTopHit(t *testing.T) {
	idx := buildTestIndex(t)
	hits := idx.Search("China population 1400000000", 3)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	if hits[0].Triple.Subject != "China" || hits[0].Triple.Relation != "population" {
		t.Errorf("top hit = %v", hits[0].Triple)
	}
}

func TestSearchDescendingScores(t *testing.T) {
	idx := buildTestIndex(t)
	hits := idx.Search("Lake Superior area", 5)
	for i := 1; i < len(hits); i++ {
		if hits[i-1].Score < hits[i].Score {
			t.Errorf("scores not descending at %d: %v", i, hits)
		}
	}
}

func TestSearchKZero(t *testing.T) {
	idx := buildTestIndex(t)
	if hits := idx.Search("China", 0); hits != nil {
		t.Errorf("k=0 returned %v", hits)
	}
}

func TestSearchEmptyQuery(t *testing.T) {
	idx := buildTestIndex(t)
	if hits := idx.Search("", 3); hits != nil {
		t.Errorf("empty query returned %v", hits)
	}
}

// TestFilteredAgreesOnTop: the token-filtered path returns the same number
// of hits as the exact scan and agrees on the top hit (the top hit always
// shares a word token with these queries, so the filter cannot lose it).
func TestFilteredAgreesOnTop(t *testing.T) {
	idx := buildTestIndex(t)
	queries := []string{
		"China population",
		"lake area 80000",
		"who received the Turing Award",
		"John McCarthy LISP",
	}
	for _, q := range queries {
		fast := idx.Search(q, 4)
		exact := idx.SearchExact(q, 4)
		if len(fast) != len(exact) {
			t.Fatalf("query %q: len mismatch %d vs %d", q, len(fast), len(exact))
		}
		if !fast[0].Triple.Equal(exact[0].Triple) {
			t.Errorf("query %q: top hit differs: %v vs %v", q, fast[0].Triple, exact[0].Triple)
		}
		for i := 1; i < len(fast); i++ {
			if fast[i].Score > exact[0].Score {
				t.Errorf("query %q: filtered score exceeds exact max", q)
			}
		}
	}
}

// Property: filtered search returns as many hits as the exact scan, never
// returns a better-than-exact top score, and when the exact top hit shares
// a word token with the query the filtered path finds the same top hit.
func TestFilteredVsExactProperty(t *testing.T) {
	enc := embed.NewEncoder()
	f := func(raw []uint8, qa, qb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var triples []kg.Triple
		for i, b := range raw {
			triples = append(triples, kg.Triple{
				Subject:  fmt.Sprintf("ent%d", b%11),
				Relation: fmt.Sprintf("rel%d", b%5),
				Object:   fmt.Sprintf("val%d", i),
			})
		}
		idx := BuildTriples(enc, triples)
		q := fmt.Sprintf("ent%d rel%d", qa%11, qb%5)
		fast := idx.Search(q, 5)
		exact := idx.SearchExact(q, 5)
		if len(fast) != len(exact) {
			return false
		}
		if len(exact) == 0 {
			return true
		}
		if len(fast) > 0 && fast[0].Score > exact[0].Score+1e-9 {
			return false
		}
		topShares := false
		qTokens := map[string]bool{}
		for _, tok := range embed.Tokenize(q) {
			qTokens[tok] = true
		}
		for _, tok := range embed.Tokenize(exact[0].Triple.Text()) {
			if qTokens[tok] {
				topShares = true
				break
			}
		}
		if topShares && !fast[0].Triple.Equal(exact[0].Triple) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSearchNoTokenOverlapFallsBack(t *testing.T) {
	idx := buildTestIndex(t)
	// Query shares no word token; fallback must still return k results
	// (scored via char features).
	hits := idx.Search("zzz qqq", 2)
	if len(hits) != 2 {
		t.Errorf("fallback returned %d hits, want 2", len(hits))
	}
}

func TestBatchSearchOrder(t *testing.T) {
	idx := buildTestIndex(t)
	queries := []string{"China population", "Lake Superior area", "Turing Award"}
	res := idx.BatchSearch(queries, 2)
	if len(res) != 3 {
		t.Fatalf("batch returned %d result sets", len(res))
	}
	for i, q := range queries {
		want := idx.Search(q, 2)
		if len(res[i]) != len(want) {
			t.Errorf("batch[%d] len %d != %d", i, len(res[i]), len(want))
			continue
		}
		for j := range want {
			if !res[i][j].Triple.Equal(want[j].Triple) {
				t.Errorf("batch[%d][%d] = %v, want %v", i, j, res[i][j].Triple, want[j].Triple)
			}
		}
	}
}

func TestKLargerThanIndex(t *testing.T) {
	idx := buildTestIndex(t)
	hits := idx.Search("China", 100)
	if len(hits) == 0 || len(hits) > idx.Len() {
		t.Errorf("k>len returned %d hits (index %d)", len(hits), idx.Len())
	}
}

func TestStats(t *testing.T) {
	idx := buildTestIndex(t)
	s := idx.Stats()
	if s.Triples != 7 || s.Dim != embed.Dim || s.Tokens == 0 {
		t.Errorf("Stats = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	enc := embed.NewEncoder()
	triples := []kg.Triple{
		kg.NewTriple("x", "r", "a"),
		kg.NewTriple("x", "r", "b"),
		kg.NewTriple("x", "r", "c"),
	}
	idx := BuildTriples(enc, triples)
	first := idx.Search("x r", 3)
	for i := 0; i < 5; i++ {
		again := idx.Search("x r", 3)
		for j := range first {
			if !first[j].Triple.Equal(again[j].Triple) {
				t.Fatalf("tie-break not deterministic on run %d", i)
			}
		}
	}
}

// TestSearchPreEncodedMatchesSearch: searching with a pre-encoded vector
// (the core embedding memo's path) must return exactly what Search does.
func TestSearchPreEncodedMatchesSearch(t *testing.T) {
	idx := buildTestIndex(t)
	for _, query := range []string{
		"China population 1400000000",
		"Turing Award winners",
		"area of Lake Superior",
		"",                    // no tokens: empty both ways
		"zzz qqq vvv unknown", // no overlap: exact-scan fallback
	} {
		qv := idx.Encoder().Encode(query)
		want := idx.Search(query, 3)
		got := idx.SearchPreEncoded(query, qv, 3)
		if len(got) != len(want) {
			t.Fatalf("%q: %d hits vs %d", query, len(got), len(want))
		}
		for i := range got {
			if got[i].Triple.Key() != want[i].Triple.Key() || got[i].Score != want[i].Score {
				t.Errorf("%q hit %d: %+v vs %+v", query, i, got[i], want[i])
			}
		}
	}
}
