package vecstore

import (
	"bytes"
	"testing"

	"repro/internal/embed"
)

func hitKeys(hits []Hit) []string {
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = h.Triple.Key()
	}
	return out
}

// TestHNSWSmallCorpusMatchesExact: with a beam at least as wide as the
// corpus the graph search degenerates to an exhaustive walk, so results
// must equal the brute-force reference exactly — scores, order and all.
func TestHNSWSmallCorpusMatchesExact(t *testing.T) {
	enc := embed.NewEncoder()
	triples := corpus(60)
	h := BuildHNSW(enc, triples, HNSWConfig{EfSearch: 128})
	exact := BuildTriples(enc, corpus(60))
	for _, k := range []int{1, 5, 10} {
		for _, q := range []string{"Lake Superior 3 area", "population of Beijing", "River Danube length"} {
			want := exact.SearchExact(q, k)
			got := h.Search(q, k)
			if len(got) != len(want) {
				t.Fatalf("k=%d %q: %d hits, want %d", k, q, len(got), len(want))
			}
			for i := range want {
				if got[i].Triple.Key() != want[i].Triple.Key() || got[i].Score != want[i].Score {
					t.Errorf("k=%d %q hit %d: got %v@%g want %v@%g",
						k, q, i, got[i].Triple, got[i].Score, want[i].Triple, want[i].Score)
				}
			}
		}
	}
}

// TestHNSWRecallSanity: at production-shaped parameters on a few
// thousand vectors, recall@10 against the exact scan must be high. The
// build is deterministic, so this is a fixed property of the corpus,
// not a flaky statistical bound.
func TestHNSWRecallSanity(t *testing.T) {
	enc := embed.NewEncoder()
	n := 2000
	h := BuildHNSW(enc, corpus(n), HNSWConfig{})
	exact := BuildTriples(enc, corpus(n))
	queries := []string{
		"Lake Superior 12 area", "Beijing 40 population", "Mount Kenya 7 elevation",
		"River Danube 3 length", "Toronto 25 country", "Lake Michigan 99 area",
	}
	var hit, total int
	for _, q := range queries {
		want := map[string]bool{}
		for _, w := range exact.SearchExact(q, 10) {
			want[w.Triple.Key()] = true
		}
		for _, g := range h.Search(q, 10) {
			if want[g.Triple.Key()] {
				hit++
			}
		}
		total += 10
	}
	if recall := float64(hit) / float64(total); recall < 0.9 {
		t.Fatalf("recall@10 = %.3f over %d queries, want >= 0.9", recall, len(queries))
	}
}

// TestHNSWDeterministicBuild: two builds over identical triples must
// produce byte-identical persisted graphs and identical search results —
// the contract the replay gate and CI artifacts depend on.
func TestHNSWDeterministicBuild(t *testing.T) {
	enc := embed.NewEncoder()
	a := BuildHNSW(enc, corpus(800), HNSWConfig{})
	b := BuildHNSW(enc, corpus(800), HNSWConfig{})
	var bufA, bufB bytes.Buffer
	if _, err := a.writeGraphTo(&bufA); err != nil {
		t.Fatal(err)
	}
	if _, err := b.writeGraphTo(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("two builds over identical input produced different graphs")
	}
	for _, q := range []string{"Lake Superior 5 area", "Toronto 1 country"} {
		ka, kb := hitKeys(a.Search(q, 10)), hitKeys(b.Search(q, 10))
		if len(ka) != len(kb) {
			t.Fatalf("%q: %d vs %d hits", q, len(ka), len(kb))
		}
		for i := range ka {
			if ka[i] != kb[i] {
				t.Errorf("%q hit %d: %s vs %s", q, i, ka[i], kb[i])
			}
		}
	}
}

// TestHNSWSearcherParity: the Searcher surface must behave like Index's —
// pre-encoded and vector paths agree with Search, batches preserve
// query order, and the degenerate inputs return nil.
func TestHNSWSearcherParity(t *testing.T) {
	enc := embed.NewEncoder()
	h := BuildHNSW(enc, corpus(300), HNSWConfig{})
	q := "Lake Superior 3 area"
	want := hitKeys(h.Search(q, 5))
	if got := hitKeys(h.SearchPreEncoded(q, enc.Encode(q), 5)); !equalStrings(got, want) {
		t.Errorf("SearchPreEncoded: %v, want %v", got, want)
	}
	if got := hitKeys(h.SearchVector(enc.Encode(q), 5)); !equalStrings(got, want) {
		t.Errorf("SearchVector: %v, want %v", got, want)
	}
	batch := h.BatchSearch([]string{q, "Beijing 0 population"}, 5)
	if len(batch) != 2 || !equalStrings(hitKeys(batch[0]), want) {
		t.Errorf("BatchSearch order or content wrong")
	}
	if h.Search(q, 0) != nil {
		t.Error("k=0 returned hits")
	}
	if h.Search("", 5) != nil {
		t.Error("empty query returned hits")
	}
	if got := h.Search(q, 1000); len(got) > h.Len() {
		t.Errorf("k>corpus returned %d hits from %d triples", len(got), h.Len())
	}
	empty := BuildHNSW(enc, nil, HNSWConfig{})
	if empty.Search(q, 5) != nil || empty.Len() != 0 {
		t.Error("empty graph returned hits")
	}
	st := h.Stats()
	if st.ANN == nil || st.ANN.Nodes != 300 || st.ANN.M != DefaultHNSWM {
		t.Errorf("stats = %+v", st.ANN)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestHNSWNarrowBeamReturnsFewer pins the ef<k degradation the exact-
// fallback escape hatch (and the CI recall gate's doctored run) relies
// on: a beam of width ef can fill at most ef of k slots.
func TestHNSWNarrowBeamReturnsFewer(t *testing.T) {
	enc := embed.NewEncoder()
	h := BuildHNSW(enc, corpus(500), HNSWConfig{})
	hits := h.SearchVectorEf(enc.Encode("Lake Superior 3 area"), 10, 2)
	if len(hits) > 2 {
		t.Fatalf("ef=2 k=10 returned %d hits, want <= 2", len(hits))
	}
}

// TestShardsHNSWRoundTrip: the v2 container carries the graph next to
// the exact segments, rebinding graph nodes to the renumbered combined
// ID space without storing vectors twice.
func TestShardsHNSWRoundTrip(t *testing.T) {
	enc := embed.NewEncoder()
	triples := corpus(200)
	shards := BuildShards(enc, triples, 64)
	g := BuildHNSW(enc, corpus(200), HNSWConfig{})
	var buf bytes.Buffer
	if _, err := WriteShardsHNSW(&buf, shards, g); err != nil {
		t.Fatal(err)
	}
	loadedShards, loaded, err := ReadShardsHNSW(bytes.NewReader(buf.Bytes()), enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(loadedShards) != len(shards) {
		t.Fatalf("%d shards, want %d", len(loadedShards), len(shards))
	}
	if loaded == nil || loaded.Len() != g.Len() {
		t.Fatalf("graph did not round trip: %v", loaded)
	}
	for _, q := range []string{"Lake Superior 0 area", "Beijing 4 population"} {
		want := hitKeys(g.Search(q, 10))
		got := hitKeys(loaded.Search(q, 10))
		if !equalStrings(got, want) {
			t.Errorf("%q: reloaded graph answers differ:\n got %v\nwant %v", q, got, want)
		}
	}
	// Node i must be bound to combined triple i.
	for i, tr := range loaded.triples {
		if tr.ID != i {
			t.Fatalf("graph triple %d has ID %d after renumbering", i, tr.ID)
		}
	}
}

// TestWriteShardsHNSWNilGraphIsV1: without a graph the writer emits the
// v1 container byte for byte, so enabling the ANN build path cannot
// perturb existing checkpoints.
func TestWriteShardsHNSWNilGraphIsV1(t *testing.T) {
	enc := embed.NewEncoder()
	shards := BuildShards(enc, corpus(50), 16)
	var v1, v2 bytes.Buffer
	if _, err := WriteShards(&v1, shards); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteShardsHNSW(&v2, shards, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v1.Bytes(), v2.Bytes()) {
		t.Fatal("nil-graph WriteShardsHNSW differs from WriteShards")
	}
}

// TestReadShardsDropsGraph: legacy callers reading a v2 container get
// the exact segments and silently lose the graph — never an error.
func TestReadShardsDropsGraph(t *testing.T) {
	enc := embed.NewEncoder()
	shards := BuildShards(enc, corpus(100), 32)
	g := BuildHNSW(enc, corpus(100), HNSWConfig{})
	var buf bytes.Buffer
	if _, err := WriteShardsHNSW(&buf, shards, g); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadShards(bytes.NewReader(buf.Bytes()), enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(shards) {
		t.Fatalf("%d shards, want %d", len(loaded), len(shards))
	}
}

// TestReadShardsHNSWEveryPrefixFailsCleanly extends the persistence
// robustness contract to the v2 container: every strict prefix must
// error, never panic or load short.
func TestReadShardsHNSWEveryPrefixFailsCleanly(t *testing.T) {
	enc := embed.NewEncoder()
	triples := corpus(12)
	shards := BuildShards(enc, triples, 4)
	g := BuildHNSW(enc, corpus(12), HNSWConfig{})
	var buf bytes.Buffer
	if _, err := WriteShardsHNSW(&buf, shards, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for i := 0; i < len(full); i++ {
		if _, _, err := ReadShardsHNSW(bytes.NewReader(full[:i]), enc); err == nil {
			t.Fatalf("prefix of %d/%d bytes loaded without error", i, len(full))
		}
	}
	if _, _, err := ReadShardsHNSW(bytes.NewReader(full), enc); err != nil {
		t.Fatalf("full container failed to load: %v", err)
	}
}

// TestBindGraphRejectsMisalignedBoundary: a graph that does not end on
// a segment boundary is corrupt and must be rejected at load.
func TestBindGraphRejectsMisalignedBoundary(t *testing.T) {
	enc := embed.NewEncoder()
	shards := BuildShards(enc, corpus(100), 32) // boundaries at 32, 64, 96, 100
	g := BuildHNSW(enc, corpus(50), HNSWConfig{})
	var buf bytes.Buffer
	if _, err := WriteShardsHNSW(&buf, shards, g); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadShardsHNSW(bytes.NewReader(buf.Bytes()), enc); err == nil {
		t.Fatal("misaligned graph boundary accepted")
	}
}

// TestHybridMatchesExact: with a full-width beam the hybrid's
// graph-over-base + exact-tail merge must reproduce the pure exact
// scan, covered prefix and uncovered tail alike.
func TestHybridMatchesExact(t *testing.T) {
	enc := embed.NewEncoder()
	triples := corpus(300)
	segs := BuildShards(enc, triples, 64)
	// Graph over the first 4 segments (256 triples); tail of 44.
	g := BuildHNSW(enc, corpus(256), HNSWConfig{EfSearch: 512})
	var counters ANNCounters
	hy := ComposeHybrid(enc, g, segs, HybridOptions{Counters: &counters})
	exact := Compose(enc, segs...)
	if hy.Len() != exact.Len() {
		t.Fatalf("hybrid len %d, want %d", hy.Len(), exact.Len())
	}
	for _, q := range []string{"Lake Superior 3 area", "Toronto 48 country", "Beijing 40 population"} {
		want := exact.SearchExact(q, 10)
		got := hy.SearchVector(enc.Encode(q), 10)
		if len(got) != len(want) {
			t.Fatalf("%q: %d hits, want %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i].Triple.Key() != want[i].Triple.Key() || got[i].Score != want[i].Score {
				t.Errorf("%q hit %d: got %v@%g want %v@%g",
					q, i, got[i].Triple, got[i].Score, want[i].Triple, want[i].Score)
			}
		}
	}
	if counters.Searches.Load() == 0 || counters.Fallbacks.Load() != 0 {
		t.Errorf("counters: searches=%d fallbacks=%d", counters.Searches.Load(), counters.Fallbacks.Load())
	}
	st := hy.Stats()
	if st.ANN == nil || st.ANN.Nodes != 256 || st.ANN.Searches == 0 {
		t.Errorf("hybrid stats = %+v", st.ANN)
	}
}

// TestHybridExactFallback: a beam narrower than k routes to the exact
// scan (counted), unless the escape hatch is disabled, in which case
// the graph answers with however few hits the beam holds.
func TestHybridExactFallback(t *testing.T) {
	enc := embed.NewEncoder()
	segs := BuildShards(enc, corpus(200), 64)
	g := BuildHNSW(enc, corpus(192), HNSWConfig{})
	var counters ANNCounters
	hy := ComposeHybrid(enc, g, segs, HybridOptions{EfSearch: 3, Counters: &counters})
	hits := hy.Search("Lake Superior 0 area", 10)
	if len(hits) != 10 {
		t.Fatalf("fallback returned %d hits, want 10", len(hits))
	}
	if counters.Fallbacks.Load() != 1 || counters.Searches.Load() != 0 {
		t.Errorf("counters: searches=%d fallbacks=%d", counters.Searches.Load(), counters.Fallbacks.Load())
	}
	// Narrow beam but k within it: graph path serves.
	hy.Search("Lake Superior 0 area", 2)
	if counters.Searches.Load() != 1 {
		t.Errorf("k<=ef did not use the graph: searches=%d", counters.Searches.Load())
	}
	// Hatch disabled: the graph answers anyway, contributing at most ef
	// hits (the 8-triple uncovered tail still merges in exactly).
	var c1 ANNCounters
	noEscape := ComposeHybrid(enc, g, segs, HybridOptions{EfSearch: 3, DisableExactFallback: true, Counters: &c1})
	if hits := noEscape.Search("Lake Superior 0 area", 10); len(hits) > 3+8 {
		t.Errorf("hatch-disabled hybrid returned %d hits, want <= 11", len(hits))
	}
	if c1.Searches.Load() != 1 || c1.Fallbacks.Load() != 0 {
		t.Errorf("hatch-disabled counters: searches=%d fallbacks=%d", c1.Searches.Load(), c1.Fallbacks.Load())
	}
	// A hybrid without any graph always falls back, hatch or not.
	var c2 ANNCounters
	exactOnly := ComposeHybrid(enc, nil, segs, HybridOptions{Counters: &c2, DisableExactFallback: true})
	if hits := exactOnly.Search("Lake Superior 0 area", 5); len(hits) != 5 {
		t.Fatalf("graph-less hybrid returned %d hits", len(hits))
	}
	if c2.Fallbacks.Load() != 1 {
		t.Errorf("graph-less hybrid did not count fallback")
	}
}

// TestHybridMisalignedGraphDegrades: ComposeHybrid must refuse a graph
// whose coverage does not end on a segment boundary and serve exact.
func TestHybridMisalignedGraphDegrades(t *testing.T) {
	enc := embed.NewEncoder()
	segs := BuildShards(enc, corpus(200), 64)
	g := BuildHNSW(enc, corpus(100), HNSWConfig{}) // 100 is not a boundary
	var counters ANNCounters
	hy := ComposeHybrid(enc, g, segs, HybridOptions{Counters: &counters})
	hits := hy.Search("Lake Superior 0 area", 5)
	if len(hits) != 5 {
		t.Fatalf("degraded hybrid returned %d hits", len(hits))
	}
	if counters.Fallbacks.Load() != 1 {
		t.Error("misaligned graph was not rejected")
	}
}
