package vecstore

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/embed"
	"repro/internal/kg"
)

// smallIndex builds a tiny index whose serialized form is cheap enough
// to re-read thousands of times.
func smallIndex(t *testing.T) *Index {
	t.Helper()
	enc := embed.NewEncoder()
	return BuildTriples(enc, []kg.Triple{
		{Subject: "China", Relation: "population", Object: "1443497378", ID: 0},
		{Subject: "Lake Superior", Relation: "area", Object: "82350", Ord: 2, ID: 1},
		{Subject: "Alan Turing", Relation: "field", Object: "computer science", ID: 2},
	})
}

// TestReadFromEveryPrefixFailsCleanly is the persistence robustness
// contract: every strict prefix of a valid index file must produce an
// error — never a panic, never a silently short index.
func TestReadFromEveryPrefixFailsCleanly(t *testing.T) {
	idx := smallIndex(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for i := 0; i < len(full); i++ {
		if _, err := ReadFrom(bytes.NewReader(full[:i]), embed.NewEncoder()); err == nil {
			t.Fatalf("prefix of %d/%d bytes loaded without error", i, len(full))
		}
	}
	if _, err := ReadFrom(bytes.NewReader(full), embed.NewEncoder()); err != nil {
		t.Fatalf("full file failed to load: %v", err)
	}
}

// TestReadFromCorruptCountFailsCleanly plants a huge triple count in an
// otherwise-truncated file: the reader must fail at the first short
// read instead of pre-allocating by the untrusted count.
func TestReadFromCorruptCountFailsCleanly(t *testing.T) {
	idx := smallIndex(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), buf.Bytes()...)
	binary.LittleEndian.PutUint32(corrupt[8:12], 0xFFFFFFFF)
	if _, err := ReadFrom(bytes.NewReader(corrupt), embed.NewEncoder()); err == nil {
		t.Fatal("corrupt triple count accepted")
	}
}

// TestShardsRoundTrip checks the multi-segment container: segments,
// lengths, search results and the renumbered combined ID space all
// survive WriteShards/ReadShards.
func TestShardsRoundTrip(t *testing.T) {
	enc := embed.NewEncoder()
	var all []kg.Triple
	for i := 0; i < 10; i++ {
		all = append(all, kg.Triple{
			Subject:  []string{"China", "Lake Superior", "Alan Turing"}[i%3],
			Relation: "fact",
			Object:   string(rune('a' + i)),
			ID:       i,
		})
	}
	shards := BuildShards(enc, all, 4)
	var buf bytes.Buffer
	if _, err := WriteShards(&buf, shards); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadShards(&buf, enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(shards) {
		t.Fatalf("round trip: %d shards, want %d", len(loaded), len(shards))
	}
	next := 0
	for si, sh := range loaded {
		if sh.Len() != shards[si].Len() {
			t.Fatalf("shard %d: %d triples, want %d", si, sh.Len(), shards[si].Len())
		}
		for _, tr := range sh.triples {
			if tr.ID != next {
				t.Fatalf("shard %d: triple ID %d, want sequential %d", si, tr.ID, next)
			}
			next++
		}
	}
	before := Compose(enc, shards...).Search("China fact", 5)
	after := Compose(enc, loaded...).Search("China fact", 5)
	if len(before) != len(after) {
		t.Fatalf("search hit counts differ: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if !before[i].Triple.Equal(after[i].Triple) || before[i].Score != after[i].Score {
			t.Errorf("hit %d differs: %v vs %v", i, before[i], after[i])
		}
	}
}

// TestReadShardsEveryPrefixFailsCleanly extends the prefix contract to
// the container format.
func TestReadShardsEveryPrefixFailsCleanly(t *testing.T) {
	enc := embed.NewEncoder()
	shards := BuildShards(enc, smallIndex(t).triples, 2)
	var buf bytes.Buffer
	if _, err := WriteShards(&buf, shards); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for i := 0; i < len(full); i++ {
		if _, err := ReadShards(bytes.NewReader(full[:i]), enc); err == nil {
			t.Fatalf("prefix of %d/%d bytes loaded without error", i, len(full))
		}
	}
}
