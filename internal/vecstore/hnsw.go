package vecstore

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/embed"
	"repro/internal/kg"
)

// Default HNSW parameters. M=16 / efConstruction=128 is the standard
// middle of the quality/build-cost curve from the HNSW paper;
// efSearch=96 lands recall@10 comfortably above the CI floor (0.95) on
// the 100k-scale corpora the recall harness exercises.
const (
	DefaultHNSWM              = 16
	DefaultHNSWEfConstruction = 128
	DefaultHNSWEfSearch       = 96
	// DefaultHNSWSeed seeds the level RNG; construction is a pure
	// function of (triples, config), so replay and CI artifacts stay
	// byte-identical across runs and platforms.
	DefaultHNSWSeed = 1

	// maxHNSWLevel caps the exponentially-distributed node level; with
	// mL = 1/ln(16) the probability of drawing a level this high is
	// ~16^-32, so the cap is unreachable in practice and exists only to
	// bound corrupted persisted graphs.
	maxHNSWLevel = 32
)

// HNSWConfig tunes graph construction and search.
type HNSWConfig struct {
	// M is the max neighbors per node on layers above 0 (layer 0 keeps
	// up to 2M). Higher M improves recall at more memory and build cost.
	M int
	// EfConstruction is the candidate beam width during insertion.
	EfConstruction int
	// EfSearch is the default candidate beam width during search; wider
	// beams trade latency for recall. Search returns at most
	// min(ef, k) results — callers that need a guaranteed k should keep
	// ef >= k (the substrate's exact-fallback escape hatch enforces
	// this in serving).
	EfSearch int
	// Seed drives the level RNG. Zero selects DefaultHNSWSeed, so the
	// zero config is fully deterministic.
	Seed int64
}

func (c HNSWConfig) withDefaults() HNSWConfig {
	if c.M <= 1 {
		c.M = DefaultHNSWM
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = DefaultHNSWEfConstruction
	}
	if c.EfSearch <= 0 {
		c.EfSearch = DefaultHNSWEfSearch
	}
	if c.Seed == 0 {
		c.Seed = DefaultHNSWSeed
	}
	return c
}

// HNSW is a hierarchical navigable small world graph over a frozen
// triple set: an approximate Searcher whose per-query cost is
// logarithmic in the corpus instead of the exact scan's linear cost.
// Construction is deterministic — node levels come from a seeded RNG and
// every traversal breaks similarity ties by node id — so the same
// triples and config always produce the same graph, the property the
// replay gate depends on. Like Index, an HNSW is immutable after build
// and safe for concurrent searches.
type HNSW struct {
	enc     *embed.Encoder
	cfg     HNSWConfig
	triples []kg.Triple
	vecs    []embed.Vector
	// links[i][l] is node i's neighbor list on layer l; len(links[i])-1
	// is the node's top layer.
	links    [][][]int32
	entry    int32
	maxLevel int32
}

// BuildHNSW constructs the graph over the triples. The builder takes
// ownership of the slice. Insertion order is the slice order and all
// randomness comes from the seeded level RNG, so the build is a pure
// function of (triples, cfg).
func BuildHNSW(enc *embed.Encoder, triples []kg.Triple, cfg HNSWConfig) *HNSW {
	cfg = cfg.withDefaults()
	h := &HNSW{
		enc:     enc,
		cfg:     cfg,
		triples: triples,
		vecs:    make([]embed.Vector, len(triples)),
		links:   make([][][]int32, len(triples)),
		entry:   -1,
	}
	// Vector encoding is order-independent, so it parallelises freely;
	// the graph inserts below stay sequential for determinism.
	const shard = 2048
	var wg sync.WaitGroup
	for lo := 0; lo < len(triples); lo += shard {
		hi := min(lo+shard, len(triples))
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				h.vecs[i] = enc.Encode(triples[i].Text())
			}
		}(lo, hi)
	}
	wg.Wait()
	// Draw every node level up front from the seeded RNG: the level
	// sequence depends only on (seed, node count), never on timing.
	rng := rand.New(rand.NewSource(cfg.Seed))
	mL := 1 / math.Log(float64(cfg.M))
	visited := make([]uint64, (len(triples)+63)/64)
	for i := range triples {
		f := -math.Log(rng.Float64()) * mL // u==0 -> +Inf, clamped below
		level := int32(maxHNSWLevel)
		if f < maxHNSWLevel {
			level = int32(f)
		}
		h.insert(int32(i), level, visited)
	}
	return h
}

// annCand is a candidate node during graph traversal.
type annCand struct {
	id  int32
	sim float64
}

// candBetter is the deterministic traversal order: similarity
// descending, ties broken by node id ascending.
func candBetter(a, b annCand) bool {
	if a.sim != b.sim {
		return a.sim > b.sim
	}
	return a.id < b.id
}

// annMaxHeap pops the best (highest-similarity) candidate first.
type annMaxHeap []annCand

func (h annMaxHeap) Len() int           { return len(h) }
func (h annMaxHeap) Less(i, j int) bool { return candBetter(h[i], h[j]) }
func (h annMaxHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *annMaxHeap) Push(x any)        { *h = append(*h, x.(annCand)) }
func (h *annMaxHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// annMinHeap pops the worst candidate first — the eviction end of the
// ef-bounded result set.
type annMinHeap []annCand

func (h annMinHeap) Len() int           { return len(h) }
func (h annMinHeap) Less(i, j int) bool { return candBetter(h[j], h[i]) }
func (h annMinHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *annMinHeap) Push(x any)        { *h = append(*h, x.(annCand)) }
func (h *annMinHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// insert adds node i at the given level. visited is scratch shared
// across inserts; searchLayer clears it before use.
func (h *HNSW) insert(i, level int32, visited []uint64) {
	h.links[i] = make([][]int32, level+1)
	if h.entry < 0 {
		h.entry, h.maxLevel = i, level
		return
	}
	q := &h.vecs[i]
	ep := annCand{id: h.entry, sim: embed.NormDot(q, &h.vecs[h.entry])}
	for lc := h.maxLevel; lc > level; lc-- {
		ep = h.greedy(q, ep, lc)
	}
	eps := []annCand{ep}
	for lc := min(level, h.maxLevel); lc >= 0; lc-- {
		w := h.searchLayer(q, eps, h.cfg.EfConstruction, lc, visited)
		sel := h.selectNeighbors(w, h.cfg.M)
		ids := make([]int32, len(sel))
		for n, c := range sel {
			ids[n] = c.id
		}
		h.links[i][lc] = ids
		for _, c := range sel {
			h.connect(c.id, i, lc)
		}
		eps = w
	}
	if level > h.maxLevel {
		h.entry, h.maxLevel = i, level
	}
}

// connect adds node i as a neighbor of n on layer lc, re-pruning n's
// list with the diversity heuristic when it overflows the layer cap.
func (h *HNSW) connect(n, i int32, lc int32) {
	l := append(h.links[n][lc], i)
	mmax := h.cfg.M
	if lc == 0 {
		mmax = 2 * h.cfg.M
	}
	if len(l) <= mmax {
		h.links[n][lc] = l
		return
	}
	nv := &h.vecs[n]
	cands := make([]annCand, len(l))
	for k, id := range l {
		cands[k] = annCand{id: id, sim: embed.NormDot(nv, &h.vecs[id])}
	}
	sort.Slice(cands, func(a, b int) bool { return candBetter(cands[a], cands[b]) })
	sel := h.selectNeighbors(cands, mmax)
	ids := make([]int32, len(sel))
	for k, c := range sel {
		ids[k] = c.id
	}
	h.links[n][lc] = ids
}

// selectNeighbors is the HNSW diversity heuristic (Malkov alg. 4): walk
// candidates best-first, keeping one only if it is closer to the query
// than to every already-kept neighbor, then fill remaining slots with
// the pruned candidates in order. cands must be sorted by candBetter.
func (h *HNSW) selectNeighbors(cands []annCand, m int) []annCand {
	if len(cands) <= m {
		return cands
	}
	sel := make([]annCand, 0, m)
	var pruned []annCand
	for _, c := range cands {
		if len(sel) == m {
			break
		}
		cv := &h.vecs[c.id]
		keep := true
		for _, s := range sel {
			if embed.NormDot(cv, &h.vecs[s.id]) > c.sim {
				keep = false
				break
			}
		}
		if keep {
			sel = append(sel, c)
		} else {
			pruned = append(pruned, c)
		}
	}
	for _, c := range pruned {
		if len(sel) == m {
			break
		}
		sel = append(sel, c)
	}
	return sel
}

// greedy walks layer lc from ep to the strict local similarity maximum.
// Only strictly-better moves are taken, so the walk terminates and is
// deterministic given the stored neighbor order.
func (h *HNSW) greedy(q *embed.Vector, ep annCand, lc int32) annCand {
	for {
		improved := false
		for _, n := range h.links[ep.id][lc] {
			if sim := embed.NormDot(q, &h.vecs[n]); sim > ep.sim {
				ep = annCand{id: n, sim: sim}
				improved = true
			}
		}
		if !improved {
			return ep
		}
	}
}

// searchLayer is the ef-bounded best-first expansion on one layer,
// returning up to ef candidates sorted by candBetter. visited is a
// caller-provided bitset scratch, cleared here.
func (h *HNSW) searchLayer(q *embed.Vector, eps []annCand, ef int, lc int32, visited []uint64) []annCand {
	clear(visited)
	cand := make(annMaxHeap, 0, ef)
	res := make(annMinHeap, 0, ef+1)
	for _, ep := range eps {
		if visited[ep.id>>6]&(1<<(uint(ep.id)&63)) != 0 {
			continue
		}
		visited[ep.id>>6] |= 1 << (uint(ep.id) & 63)
		cand = append(cand, ep)
		res = append(res, ep)
	}
	heap.Init(&cand)
	heap.Init(&res)
	for len(res) > ef {
		heap.Pop(&res)
	}
	for len(cand) > 0 {
		c := heap.Pop(&cand).(annCand)
		if len(res) >= ef && candBetter(res[0], c) {
			break
		}
		for _, n := range h.links[c.id][lc] {
			if visited[n>>6]&(1<<(uint(n)&63)) != 0 {
				continue
			}
			visited[n>>6] |= 1 << (uint(n) & 63)
			nc := annCand{id: n, sim: embed.NormDot(q, &h.vecs[n])}
			if len(res) < ef {
				heap.Push(&res, nc)
				heap.Push(&cand, nc)
			} else if candBetter(nc, res[0]) {
				res[0] = nc
				heap.Fix(&res, 0)
				heap.Push(&cand, nc)
			}
		}
	}
	out := []annCand(res)
	sort.Slice(out, func(a, b int) bool { return candBetter(out[a], out[b]) })
	return out
}

// Len returns the number of indexed triples.
func (h *HNSW) Len() int { return len(h.triples) }

// Encoder returns the encoder the graph was built with.
func (h *HNSW) Encoder() *embed.Encoder { return h.enc }

// Config returns the build/search parameters in effect.
func (h *HNSW) Config() HNSWConfig { return h.cfg }

// SetEfSearch overrides the default search beam width. It must be
// called before the graph starts serving concurrent searches (the
// substrate applies it at boot when reloading a persisted graph).
func (h *HNSW) SetEfSearch(ef int) {
	if ef > 0 {
		h.cfg.EfSearch = ef
	}
}

// Search returns the top-k triples most similar to the query text via
// the graph, using the configured EfSearch beam.
func (h *HNSW) Search(query string, k int) []Hit {
	return h.SearchVectorEf(h.enc.Encode(query), k, h.cfg.EfSearch)
}

// SearchExact is the brute-force correctness reference: an exact scan
// over the graph's own vectors, bypassing the graph entirely.
func (h *HNSW) SearchExact(query string, k int) []Hit {
	return h.exactVec(h.enc.Encode(query), k)
}

// SearchVector searches with a pre-encoded vector using the configured
// EfSearch beam.
func (h *HNSW) SearchVector(qv embed.Vector, k int) []Hit {
	return h.SearchVectorEf(qv, k, h.cfg.EfSearch)
}

// SearchPreEncoded is Search with the query's embedding supplied. The
// graph path is purely geometric, so unlike Index the query text takes
// no part in candidate selection.
func (h *HNSW) SearchPreEncoded(query string, qv embed.Vector, k int) []Hit {
	return h.SearchVectorEf(qv, k, h.cfg.EfSearch)
}

// SearchVectorEf is SearchVector with an explicit beam width, the hook
// the recall harness uses to sweep ef without rebuilding. It returns at
// most min(ef, k) hits: a beam narrower than k cannot fill k slots, the
// degradation the substrate's exact-fallback escape hatch (and the CI
// recall gate's doctored low-ef run) is built around.
func (h *HNSW) SearchVectorEf(qv embed.Vector, k, ef int) []Hit {
	if k <= 0 || len(h.triples) == 0 || qv.IsZero() {
		return nil
	}
	if ef < 1 {
		ef = 1
	}
	q := &qv
	ep := annCand{id: h.entry, sim: embed.NormDot(q, &h.vecs[h.entry])}
	for lc := h.maxLevel; lc > 0; lc-- {
		ep = h.greedy(q, ep, lc)
	}
	visited := make([]uint64, (len(h.vecs)+63)/64)
	w := h.searchLayer(q, []annCand{ep}, ef, 0, visited)
	if len(w) > k {
		w = w[:k]
	}
	out := make([]Hit, len(w))
	for i, c := range w {
		out[i] = Hit{Triple: h.triples[c.id], Score: c.sim}
	}
	// Graph order breaks ties by node id; re-break by surface form for
	// exact parity with every other Searcher.
	sort.SliceStable(out, func(i, j int) bool { return hitBefore(out[i], out[j]) })
	return out
}

// exactVec is the linear reference scan over the graph's vectors.
func (h *HNSW) exactVec(qv embed.Vector, k int) []Hit {
	if k <= 0 || qv.IsZero() {
		return nil
	}
	hh := make(hitHeap, 0, k+1)
	for i := range h.vecs {
		score := embed.NormDot(&qv, &h.vecs[i])
		if len(hh) < k {
			heap.Push(&hh, Hit{Triple: h.triples[i], Score: score})
			continue
		}
		if score > hh[0].Score {
			hh[0] = Hit{Triple: h.triples[i], Score: score}
			heap.Fix(&hh, 0)
		}
	}
	out := make([]Hit, len(hh))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&hh).(Hit)
	}
	sort.SliceStable(out, func(i, j int) bool { return hitBefore(out[i], out[j]) })
	return out
}

// BatchSearch runs Search for each query concurrently.
func (h *HNSW) BatchSearch(queries []string, k int) [][]Hit {
	return batchSearch(h, h.enc.Encode, queries, k)
}

// BatchSearchWith is BatchSearch with caller-supplied embeddings.
func (h *HNSW) BatchSearchWith(encode func(string) embed.Vector, queries []string, k int) [][]Hit {
	return batchSearch(h, encode, queries, k)
}

// Stats describes the graph for diagnostics.
func (h *HNSW) Stats() Stats {
	return Stats{
		Triples: len(h.triples),
		Dim:     embed.Dim,
		Shards:  1,
		ANN: &ANNInfo{
			Nodes:          len(h.triples),
			MaxLevel:       int(h.maxLevel),
			M:              h.cfg.M,
			EfConstruction: h.cfg.EfConstruction,
			EfSearch:       h.cfg.EfSearch,
		},
	}
}

var _ Searcher = (*HNSW)(nil)

// hnswMagic identifies the persisted graph record; the version byte
// bumps on incompatible changes.
var hnswMagic = [8]byte{'P', 'G', 'A', 'K', 'V', 'H', 'N', 1}

// writeGraphTo serialises the graph structure only — config, entry
// point and adjacency lists. Vectors and triples are not duplicated:
// inside the shards container the graph always covers a prefix of the
// exact segments, and the reader rebinds node i to combined triple i.
func (h *HNSW) writeGraphTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	count := func(n int, err error) error {
		written += int64(n)
		return err
	}
	writeU32 := func(v uint32) error {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], v)
		return count(bw.Write(buf[:]))
	}
	if err := count(bw.Write(hnswMagic[:])); err != nil {
		return written, fmt.Errorf("vecstore: write hnsw: %w", err)
	}
	var head [28]byte
	binary.LittleEndian.PutUint32(head[0:], uint32(len(h.triples)))
	binary.LittleEndian.PutUint32(head[4:], uint32(embed.Dim))
	binary.LittleEndian.PutUint32(head[8:], uint32(h.cfg.M))
	binary.LittleEndian.PutUint32(head[12:], uint32(h.cfg.EfConstruction))
	binary.LittleEndian.PutUint32(head[16:], uint32(h.cfg.EfSearch))
	binary.LittleEndian.PutUint32(head[20:], uint32(h.entry))
	binary.LittleEndian.PutUint32(head[24:], uint32(h.maxLevel))
	if err := count(bw.Write(head[:])); err != nil {
		return written, fmt.Errorf("vecstore: write hnsw header: %w", err)
	}
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], uint64(h.cfg.Seed))
	if err := count(bw.Write(seed[:])); err != nil {
		return written, fmt.Errorf("vecstore: write hnsw seed: %w", err)
	}
	for i, layers := range h.links {
		if err := writeU32(uint32(len(layers))); err != nil {
			return written, fmt.Errorf("vecstore: write hnsw node %d: %w", i, err)
		}
		for _, ids := range layers {
			if err := writeU32(uint32(len(ids))); err != nil {
				return written, fmt.Errorf("vecstore: write hnsw node %d: %w", i, err)
			}
			for _, id := range ids {
				if err := writeU32(uint32(id)); err != nil {
					return written, fmt.Errorf("vecstore: write hnsw node %d: %w", i, err)
				}
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return written, fmt.Errorf("vecstore: flush hnsw: %w", err)
	}
	return written, nil
}

// readGraphFrom loads a writeGraphTo stream. The returned graph has no
// triples, vectors or encoder bound yet — the container reader
// materialises those from the exact segments the graph covers. Every
// structural field is validated so any truncated or corrupted prefix
// fails cleanly.
func readGraphFrom(r io.Reader) (*HNSW, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("vecstore: read hnsw: %w", err)
	}
	if magic != hnswMagic {
		return nil, fmt.Errorf("vecstore: bad hnsw magic %v", magic)
	}
	var head [28]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, fmt.Errorf("vecstore: read hnsw header: %w", err)
	}
	nodes := binary.LittleEndian.Uint32(head[0:])
	dim := binary.LittleEndian.Uint32(head[4:])
	if dim != embed.Dim {
		return nil, fmt.Errorf("vecstore: hnsw dimension mismatch: file has %d, build has %d", dim, embed.Dim)
	}
	h := &HNSW{
		cfg: HNSWConfig{
			M:              int(binary.LittleEndian.Uint32(head[8:])),
			EfConstruction: int(binary.LittleEndian.Uint32(head[12:])),
			EfSearch:       int(binary.LittleEndian.Uint32(head[16:])),
		},
		entry:    int32(binary.LittleEndian.Uint32(head[20:])),
		maxLevel: int32(binary.LittleEndian.Uint32(head[24:])),
	}
	var seed [8]byte
	if _, err := io.ReadFull(br, seed[:]); err != nil {
		return nil, fmt.Errorf("vecstore: read hnsw seed: %w", err)
	}
	h.cfg.Seed = int64(binary.LittleEndian.Uint64(seed[:]))
	if h.cfg.M <= 1 || h.cfg.M > 1<<16 {
		return nil, fmt.Errorf("vecstore: hnsw M %d out of range", h.cfg.M)
	}
	if h.maxLevel < 0 || h.maxLevel > maxHNSWLevel {
		return nil, fmt.Errorf("vecstore: hnsw max level %d out of range", h.maxLevel)
	}
	if nodes == 0 {
		if h.entry != -1 {
			return nil, fmt.Errorf("vecstore: empty hnsw with entry %d", h.entry)
		}
	} else if h.entry < 0 || h.entry >= int32(nodes) {
		return nil, fmt.Errorf("vecstore: hnsw entry %d out of range", h.entry)
	}
	readU32 := func() (uint32, error) {
		var buf [4]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(buf[:]), nil
	}
	// Grow incrementally instead of trusting the node count up front,
	// same discipline as ReadFrom: corruption fails at the first short
	// read, never as a giant allocation.
	const preallocCap = 1 << 16
	h.links = make([][][]int32, 0, min(int(nodes), preallocCap))
	for i := 0; i < int(nodes); i++ {
		layerCount, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("vecstore: hnsw node %d: %w", i, err)
		}
		if layerCount == 0 || layerCount > maxHNSWLevel+1 {
			return nil, fmt.Errorf("vecstore: hnsw node %d: layer count %d out of range", i, layerCount)
		}
		layers := make([][]int32, layerCount)
		for l := range layers {
			n, err := readU32()
			if err != nil {
				return nil, fmt.Errorf("vecstore: hnsw node %d: %w", i, err)
			}
			if n > nodes {
				return nil, fmt.Errorf("vecstore: hnsw node %d: neighbor count %d out of range", i, n)
			}
			ids := make([]int32, n)
			for j := range ids {
				id, err := readU32()
				if err != nil {
					return nil, fmt.Errorf("vecstore: hnsw node %d: %w", i, err)
				}
				if id >= nodes {
					return nil, fmt.Errorf("vecstore: hnsw node %d: neighbor id %d out of range", i, id)
				}
				ids[j] = int32(id)
			}
			layers[l] = ids
		}
		h.links = append(h.links, layers)
	}
	// Structural pass: traversal indexes links[neighbor][layer], so every
	// edge on layer l must point at a node that reaches layer l, and the
	// entry point must reach maxLevel. Forward references make this
	// impossible to check while streaming.
	if nodes > 0 && len(h.links[h.entry]) <= int(h.maxLevel) {
		return nil, fmt.Errorf("vecstore: hnsw entry %d below max level %d", h.entry, h.maxLevel)
	}
	for i, layers := range h.links {
		for l, ids := range layers {
			for _, id := range ids {
				if len(h.links[id]) <= l {
					return nil, fmt.Errorf("vecstore: hnsw node %d: neighbor %d missing layer %d", i, id, l)
				}
			}
		}
	}
	return h, nil
}
