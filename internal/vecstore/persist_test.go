package vecstore

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/embed"
)

func TestPersistRoundTrip(t *testing.T) {
	idx := buildTestIndex(t)
	var buf bytes.Buffer
	n, err := idx.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	loaded, err := ReadFrom(&buf, embed.NewEncoder())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != idx.Len() {
		t.Fatalf("round trip lost triples: %d != %d", loaded.Len(), idx.Len())
	}
	// Searches must be identical.
	for _, q := range []string{"China population", "Turing Award", "lake area"} {
		a := idx.Search(q, 4)
		b := loaded.Search(q, 4)
		if len(a) != len(b) {
			t.Fatalf("query %q: lens differ", q)
		}
		for i := range a {
			if !a[i].Triple.Equal(b[i].Triple) || a[i].Score != b[i].Score {
				t.Errorf("query %q hit %d: %v/%v vs %v/%v",
					q, i, a[i].Triple, a[i].Score, b[i].Triple, b[i].Score)
			}
		}
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(strings.NewReader("not an index"), embed.NewEncoder()); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadFrom(strings.NewReader(""), embed.NewEncoder()); err == nil {
		t.Error("empty input accepted")
	}
}

func TestReadFromTruncated(t *testing.T) {
	idx := buildTestIndex(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadFrom(bytes.NewReader(truncated), embed.NewEncoder()); err == nil {
		t.Error("truncated index accepted")
	}
}
