package vecstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/embed"
)

// shardsMagic identifies the multi-segment container format: a header
// followed by each segment's WriteTo stream. The version byte bumps on
// incompatible changes.
var shardsMagic = [8]byte{'P', 'G', 'A', 'K', 'V', 'S', 'H', 1}

// maxShardCount bounds the container header so a corrupted count fails
// cleanly instead of driving a huge read loop.
const maxShardCount = 1 << 20

// WriteShards serialises a sequence of segment indexes as one stream:
// the substrate checkpoint writer's hook for persisting a sharded index
// (base segments plus delta segments) without flattening it. The caller
// owns w, so it can target a temporary file and fsync before renaming —
// nothing here touches the filesystem.
func WriteShards(w io.Writer, shards []*Index) (int64, error) {
	var written int64
	var head [12]byte
	copy(head[:8], shardsMagic[:])
	binary.LittleEndian.PutUint32(head[8:], uint32(len(shards)))
	n, err := w.Write(head[:])
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("vecstore: write shards header: %w", err)
	}
	for i, sh := range shards {
		nn, err := sh.WriteTo(w)
		written += nn
		if err != nil {
			return written, fmt.Errorf("vecstore: write shard %d: %w", i, err)
		}
	}
	return written, nil
}

// ReadShards loads a WriteShards stream back into its segment indexes.
// Triple IDs are renumbered sequentially across segments, restoring the
// combined ID space the segments were built over (base IDs first, then
// each delta segment in append order). The encoder must match the one
// used at build time.
func ReadShards(r io.Reader, enc *embed.Encoder) ([]*Index, error) {
	// One shared buffered reader: ReadFrom reuses it (bufio over bufio is
	// the identity), so each segment consumes exactly its own bytes.
	br := bufio.NewReader(r)
	var head [12]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, fmt.Errorf("vecstore: read shards header: %w", err)
	}
	var magic [8]byte
	copy(magic[:], head[:8])
	if magic != shardsMagic {
		return nil, fmt.Errorf("vecstore: bad shards magic %v", magic)
	}
	count := binary.LittleEndian.Uint32(head[8:])
	if count > maxShardCount {
		return nil, fmt.Errorf("vecstore: shard count %d too large", count)
	}
	shards := make([]*Index, 0, count)
	nextID := 0
	for i := 0; i < int(count); i++ {
		sh, err := ReadFrom(br, enc)
		if err != nil {
			return nil, fmt.Errorf("vecstore: shard %d: %w", i, err)
		}
		for j := range sh.triples {
			sh.triples[j].ID = nextID
			nextID++
		}
		shards = append(shards, sh)
	}
	return shards, nil
}
