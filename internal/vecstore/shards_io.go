package vecstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/embed"
	"repro/internal/kg"
)

// shardsMagic identifies the multi-segment container format: a header
// followed by each segment's WriteTo stream. The version byte bumps on
// incompatible changes.
var shardsMagic = [8]byte{'P', 'G', 'A', 'K', 'V', 'S', 'H', 1}

// shardsMagicV2 is the type-tagged container: each record is prefixed
// with a tag byte, so the stream can carry an HNSW graph record next to
// the exact segments. Writers emit v2 only when a graph is present —
// graph-free checkpoints stay byte-identical with v1.
var shardsMagicV2 = [8]byte{'P', 'G', 'A', 'K', 'V', 'S', 'H', 2}

// Record tags in the v2 container.
const (
	recTagIndex = byte('X') // an exact segment: one Index WriteTo stream
	recTagGraph = byte('H') // the HNSW graph over the segment prefix
)

// maxShardCount bounds the container header so a corrupted count fails
// cleanly instead of driving a huge read loop.
const maxShardCount = 1 << 20

// WriteShards serialises a sequence of segment indexes as one stream:
// the substrate checkpoint writer's hook for persisting a sharded index
// (base segments plus delta segments) without flattening it. The caller
// owns w, so it can target a temporary file and fsync before renaming —
// nothing here touches the filesystem.
func WriteShards(w io.Writer, shards []*Index) (int64, error) {
	var written int64
	var head [12]byte
	copy(head[:8], shardsMagic[:])
	binary.LittleEndian.PutUint32(head[8:], uint32(len(shards)))
	n, err := w.Write(head[:])
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("vecstore: write shards header: %w", err)
	}
	for i, sh := range shards {
		nn, err := sh.WriteTo(w)
		written += nn
		if err != nil {
			return written, fmt.Errorf("vecstore: write shard %d: %w", i, err)
		}
	}
	return written, nil
}

// WriteShardsHNSW is WriteShards plus an optional HNSW graph record.
// With a nil graph it delegates to WriteShards, keeping ANN-off
// checkpoints byte-identical with the v1 container. With a graph it
// writes the type-tagged v2 container: every segment as an 'X' record,
// then the graph as an 'H' record. The graph must cover a prefix of the
// concatenated segments ending on a segment boundary — only its
// adjacency is stored, and the reader rebinds node i to combined
// triple i.
func WriteShardsHNSW(w io.Writer, shards []*Index, g *HNSW) (int64, error) {
	if g == nil {
		return WriteShards(w, shards)
	}
	var written int64
	var head [12]byte
	copy(head[:8], shardsMagicV2[:])
	binary.LittleEndian.PutUint32(head[8:], uint32(len(shards))+1)
	n, err := w.Write(head[:])
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("vecstore: write shards header: %w", err)
	}
	for i, sh := range shards {
		n, err := w.Write([]byte{recTagIndex})
		written += int64(n)
		if err != nil {
			return written, fmt.Errorf("vecstore: write shard %d tag: %w", i, err)
		}
		nn, err := sh.WriteTo(w)
		written += nn
		if err != nil {
			return written, fmt.Errorf("vecstore: write shard %d: %w", i, err)
		}
	}
	n, err = w.Write([]byte{recTagGraph})
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("vecstore: write graph tag: %w", err)
	}
	nn, err := g.writeGraphTo(w)
	written += nn
	if err != nil {
		return written, fmt.Errorf("vecstore: write graph: %w", err)
	}
	return written, nil
}

// ReadShards loads a WriteShards stream back into its segment indexes,
// dropping any HNSW graph record a v2 container carries. The encoder
// must match the one used at build time.
func ReadShards(r io.Reader, enc *embed.Encoder) ([]*Index, error) {
	shards, _, err := ReadShardsHNSW(r, enc)
	return shards, err
}

// ReadShardsHNSW loads a WriteShards or WriteShardsHNSW stream back
// into its segment indexes plus the HNSW graph, if one was persisted
// (nil for v1 containers). Triple IDs are renumbered sequentially
// across segments, restoring the combined ID space the segments were
// built over (base IDs first, then each delta segment in append
// order); the graph's nodes bind to the prefix of that space, with
// vectors and triples materialised from the covering segments rather
// than stored twice.
func ReadShardsHNSW(r io.Reader, enc *embed.Encoder) ([]*Index, *HNSW, error) {
	// One shared buffered reader: ReadFrom reuses it (bufio over bufio is
	// the identity), so each segment consumes exactly its own bytes.
	br := bufio.NewReader(r)
	var head [12]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, nil, fmt.Errorf("vecstore: read shards header: %w", err)
	}
	var magic [8]byte
	copy(magic[:], head[:8])
	if magic != shardsMagic && magic != shardsMagicV2 {
		return nil, nil, fmt.Errorf("vecstore: bad shards magic %v", magic)
	}
	tagged := magic == shardsMagicV2
	count := binary.LittleEndian.Uint32(head[8:])
	if count > maxShardCount {
		return nil, nil, fmt.Errorf("vecstore: shard count %d too large", count)
	}
	shards := make([]*Index, 0, count)
	var g *HNSW
	nextID := 0
	for i := 0; i < int(count); i++ {
		if tagged {
			tag, err := br.ReadByte()
			if err != nil {
				return nil, nil, fmt.Errorf("vecstore: record %d tag: %w", i, err)
			}
			switch tag {
			case recTagIndex:
			case recTagGraph:
				if g != nil {
					return nil, nil, fmt.Errorf("vecstore: record %d: duplicate graph record", i)
				}
				gg, err := readGraphFrom(br)
				if err != nil {
					return nil, nil, fmt.Errorf("vecstore: record %d: %w", i, err)
				}
				g = gg
				continue
			default:
				return nil, nil, fmt.Errorf("vecstore: record %d: unknown tag %q", i, tag)
			}
		}
		sh, err := ReadFrom(br, enc)
		if err != nil {
			return nil, nil, fmt.Errorf("vecstore: shard %d: %w", i, err)
		}
		for j := range sh.triples {
			sh.triples[j].ID = nextID
			nextID++
		}
		shards = append(shards, sh)
	}
	if g != nil {
		if err := bindGraph(g, shards, enc); err != nil {
			return nil, nil, err
		}
	}
	return shards, g, nil
}

// bindGraph materialises a freshly-read graph's triples and vectors
// from the segment prefix it covers. The graph stores adjacency only;
// its node ids are, by the writer's contract, the first ids of the
// renumbered combined space, so the prefix copy restores exactly the
// (triple, vector) pairs the graph was built over.
func bindGraph(g *HNSW, shards []*Index, enc *embed.Encoder) error {
	nodes := len(g.links)
	g.enc = enc
	g.triples = make([]kg.Triple, 0, nodes)
	g.vecs = make([]embed.Vector, 0, nodes)
	for _, sh := range shards {
		if len(g.triples) == nodes {
			break
		}
		if len(g.triples)+sh.Len() > nodes {
			return fmt.Errorf("vecstore: hnsw graph covers %d triples, not a segment boundary", nodes)
		}
		g.triples = append(g.triples, sh.triples...)
		g.vecs = append(g.vecs, sh.vecs...)
	}
	if len(g.triples) != nodes {
		return fmt.Errorf("vecstore: hnsw graph covers %d triples but segments hold %d", nodes, len(g.triples))
	}
	return nil
}
