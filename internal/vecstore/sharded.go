package vecstore

import (
	"container/heap"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/embed"
	"repro/internal/kg"
)

// DefaultShardSize is the segment size BuildSharded uses when none is
// given. Segments of a few thousand vectors keep each per-shard scan well
// inside cache while leaving enough shards to occupy every core.
const DefaultShardSize = 4096

// Sharded is a segmented vector index: the triple set is split into
// fixed-size segments, each its own immutable Index, and every search fans
// out across the segments concurrently with a top-k merge by score. On
// KG-scale stores the parallel scan is the difference between one core and
// all of them (see BenchmarkShardedVsSingleSearch).
//
// Sharded is also the hot-swap substrate's composition point: Compose
// assembles a view over already-built segments, so an ingest can publish
// {base segments + fresh delta segment} without re-encoding the base.
type Sharded struct {
	enc    *embed.Encoder
	shards []*Index
	total  int
}

// BuildSharded encodes the triples into fixed-size segments. A
// non-positive shardSize uses DefaultShardSize. The builder takes
// ownership of the slice.
func BuildSharded(enc *embed.Encoder, triples []kg.Triple, shardSize int) *Sharded {
	return Compose(enc, BuildShards(enc, triples, shardSize)...)
}

// BuildShards encodes the triples into fixed-size segment indexes without
// composing them — the hook for callers (the substrate manager) that keep
// the segments around to recompose with a delta segment later. A
// non-positive shardSize uses DefaultShardSize.
func BuildShards(enc *embed.Encoder, triples []kg.Triple, shardSize int) []*Index {
	if shardSize <= 0 {
		shardSize = DefaultShardSize
	}
	var shards []*Index
	for lo := 0; lo < len(triples); lo += shardSize {
		hi := lo + shardSize
		if hi > len(triples) {
			hi = len(triples)
		}
		shards = append(shards, BuildTriples(enc, triples[lo:hi]))
	}
	return shards
}

// Compose assembles a sharded view over existing segment indexes. Empty
// segments are dropped. Every segment must have been built with enc.
func Compose(enc *embed.Encoder, shards ...*Index) *Sharded {
	s := &Sharded{enc: enc}
	for _, sh := range shards {
		if sh == nil || sh.Len() == 0 {
			continue
		}
		s.shards = append(s.shards, sh)
		s.total += sh.Len()
	}
	return s
}

// Len returns the number of indexed triples across all segments.
func (s *Sharded) Len() int { return s.total }

// Shards returns the number of non-empty segments.
func (s *Sharded) Shards() int { return len(s.shards) }

// Encoder returns the encoder the segments were built with.
func (s *Sharded) Encoder() *embed.Encoder { return s.enc }

// Search returns the top-k triples most similar to the query text, merged
// across all segments by score.
func (s *Sharded) Search(query string, k int) []Hit {
	return s.SearchPreEncoded(query, s.enc.Encode(query), k)
}

// SearchExact is the brute-force reference: an exact scan of every segment.
func (s *Sharded) SearchExact(query string, k int) []Hit {
	return s.SearchVector(s.enc.Encode(query), k)
}

// SearchVector searches all segments with a pre-encoded vector.
func (s *Sharded) SearchVector(qv embed.Vector, k int) []Hit {
	return s.fanOut(k, func(sh *Index) []Hit { return sh.SearchVector(qv, k) })
}

// SearchPreEncoded is Search with the query's embedding supplied; each
// segment keeps its token-filtered candidate path.
func (s *Sharded) SearchPreEncoded(query string, qv embed.Vector, k int) []Hit {
	return s.fanOut(k, func(sh *Index) []Hit { return sh.SearchPreEncoded(query, qv, k) })
}

// searchPreEncodedSequential is SearchPreEncoded without the worker pool,
// used by batchSearch where queries are already parallelised.
func (s *Sharded) searchPreEncodedSequential(query string, qv embed.Vector, k int) []Hit {
	if k <= 0 || len(s.shards) == 0 {
		return nil
	}
	per := make([][]Hit, len(s.shards))
	for i, sh := range s.shards {
		per[i] = sh.SearchPreEncoded(query, qv, k)
	}
	return MergeTopK(per, k)
}

// BatchSearch runs Search for each query concurrently.
func (s *Sharded) BatchSearch(queries []string, k int) [][]Hit {
	return batchSearch(s, s.enc.Encode, queries, k)
}

// BatchSearchWith is BatchSearch with caller-supplied embeddings.
func (s *Sharded) BatchSearchWith(encode func(string) embed.Vector, queries []string, k int) [][]Hit {
	return batchSearch(s, encode, queries, k)
}

// fanOut runs search on every segment and merges the per-segment top-k
// lists into the global top-k. Each segment returns its own correct
// top-k, so the merge of all of them contains the global winners. The
// scan is spread over a worker pool sized by the machine's parallelism:
// one worker per schedulable thread, capped at the shard count, falling
// back to a plain sequential loop on single-core boxes where goroutine
// hand-offs would only add overhead.
func (s *Sharded) fanOut(k int, search func(*Index) []Hit) []Hit {
	if k <= 0 || len(s.shards) == 0 {
		return nil
	}
	if len(s.shards) == 1 {
		return search(s.shards[0])
	}
	per := make([][]Hit, len(s.shards))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(s.shards) {
		workers = len(s.shards)
	}
	if workers <= 1 {
		for i, sh := range s.shards {
			per[i] = search(sh)
		}
		return MergeTopK(per, k)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(s.shards) {
					return
				}
				per[i] = search(s.shards[i])
			}
		}()
	}
	wg.Wait()
	return MergeTopK(per, k)
}

// hitCursor walks one per-segment result list inside MergeTopK.
type hitCursor struct {
	hits []Hit
	pos  int
}

// cursorHeap is a max-heap of cursors ordered by their current head hit,
// so the heap root always holds the globally next result.
type cursorHeap []hitCursor

func (h cursorHeap) Len() int { return len(h) }
func (h cursorHeap) Less(i, j int) bool {
	return hitBefore(h[i].hits[h[i].pos], h[j].hits[h[j].pos])
}
func (h cursorHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x any)   { *h = append(*h, x.(hitCursor)) }
func (h *cursorHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// MergeTopK merges per-list results — each already in the deterministic
// (score desc, surface-form asc) order every search path produces — into
// the global top-k with a bounded k-way heap merge: k pops over a heap of
// list heads instead of flattening and sorting every hit, so cost is
// O(k log lists) after seeding rather than O(total log total). Sharded
// fan-out and the ANN searcher's approximate-base/exact-delta assembly
// both merge through here.
func MergeTopK(per [][]Hit, k int) []Hit {
	if k <= 0 {
		return nil
	}
	h := make(cursorHeap, 0, len(per))
	for _, hits := range per {
		if len(hits) > 0 {
			h = append(h, hitCursor{hits: hits})
		}
	}
	switch len(h) {
	case 0:
		return nil
	case 1:
		hits := h[0].hits
		if len(hits) > k {
			hits = hits[:k]
		}
		return hits
	}
	heap.Init(&h)
	out := make([]Hit, 0, k)
	for len(h) > 0 && len(out) < k {
		c := &h[0]
		out = append(out, c.hits[c.pos])
		c.pos++
		if c.pos == len(c.hits) {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return out
}

// Stats aggregates segment statistics.
func (s *Sharded) Stats() Stats {
	st := Stats{Dim: embed.Dim, Shards: len(s.shards), Triples: s.total}
	for _, sh := range s.shards {
		st.Tokens += sh.Stats().Tokens
	}
	return st
}

var _ Searcher = (*Sharded)(nil)
