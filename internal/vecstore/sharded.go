package vecstore

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/embed"
	"repro/internal/kg"
)

// DefaultShardSize is the segment size BuildSharded uses when none is
// given. Segments of a few thousand vectors keep each per-shard scan well
// inside cache while leaving enough shards to occupy every core.
const DefaultShardSize = 4096

// Sharded is a segmented vector index: the triple set is split into
// fixed-size segments, each its own immutable Index, and every search fans
// out across the segments concurrently with a top-k merge by score. On
// KG-scale stores the parallel scan is the difference between one core and
// all of them (see BenchmarkShardedVsSingleSearch).
//
// Sharded is also the hot-swap substrate's composition point: Compose
// assembles a view over already-built segments, so an ingest can publish
// {base segments + fresh delta segment} without re-encoding the base.
type Sharded struct {
	enc    *embed.Encoder
	shards []*Index
	total  int
}

// BuildSharded encodes the triples into fixed-size segments. A
// non-positive shardSize uses DefaultShardSize. The builder takes
// ownership of the slice.
func BuildSharded(enc *embed.Encoder, triples []kg.Triple, shardSize int) *Sharded {
	return Compose(enc, BuildShards(enc, triples, shardSize)...)
}

// BuildShards encodes the triples into fixed-size segment indexes without
// composing them — the hook for callers (the substrate manager) that keep
// the segments around to recompose with a delta segment later. A
// non-positive shardSize uses DefaultShardSize.
func BuildShards(enc *embed.Encoder, triples []kg.Triple, shardSize int) []*Index {
	if shardSize <= 0 {
		shardSize = DefaultShardSize
	}
	var shards []*Index
	for lo := 0; lo < len(triples); lo += shardSize {
		hi := lo + shardSize
		if hi > len(triples) {
			hi = len(triples)
		}
		shards = append(shards, BuildTriples(enc, triples[lo:hi]))
	}
	return shards
}

// Compose assembles a sharded view over existing segment indexes. Empty
// segments are dropped. Every segment must have been built with enc.
func Compose(enc *embed.Encoder, shards ...*Index) *Sharded {
	s := &Sharded{enc: enc}
	for _, sh := range shards {
		if sh == nil || sh.Len() == 0 {
			continue
		}
		s.shards = append(s.shards, sh)
		s.total += sh.Len()
	}
	return s
}

// Len returns the number of indexed triples across all segments.
func (s *Sharded) Len() int { return s.total }

// Shards returns the number of non-empty segments.
func (s *Sharded) Shards() int { return len(s.shards) }

// Encoder returns the encoder the segments were built with.
func (s *Sharded) Encoder() *embed.Encoder { return s.enc }

// Search returns the top-k triples most similar to the query text, merged
// across all segments by score.
func (s *Sharded) Search(query string, k int) []Hit {
	return s.SearchPreEncoded(query, s.enc.Encode(query), k)
}

// SearchExact is the brute-force reference: an exact scan of every segment.
func (s *Sharded) SearchExact(query string, k int) []Hit {
	return s.SearchVector(s.enc.Encode(query), k)
}

// SearchVector searches all segments with a pre-encoded vector.
func (s *Sharded) SearchVector(qv embed.Vector, k int) []Hit {
	return s.fanOut(k, func(sh *Index) []Hit { return sh.SearchVector(qv, k) })
}

// SearchPreEncoded is Search with the query's embedding supplied; each
// segment keeps its token-filtered candidate path.
func (s *Sharded) SearchPreEncoded(query string, qv embed.Vector, k int) []Hit {
	return s.fanOut(k, func(sh *Index) []Hit { return sh.SearchPreEncoded(query, qv, k) })
}

// searchPreEncodedSequential is SearchPreEncoded without the worker pool,
// used by batchSearch where queries are already parallelised.
func (s *Sharded) searchPreEncodedSequential(query string, qv embed.Vector, k int) []Hit {
	if k <= 0 || len(s.shards) == 0 {
		return nil
	}
	per := make([][]Hit, len(s.shards))
	for i, sh := range s.shards {
		per[i] = sh.SearchPreEncoded(query, qv, k)
	}
	return mergeHits(per, k)
}

// BatchSearch runs Search for each query concurrently.
func (s *Sharded) BatchSearch(queries []string, k int) [][]Hit {
	return batchSearch(s, s.enc.Encode, queries, k)
}

// BatchSearchWith is BatchSearch with caller-supplied embeddings.
func (s *Sharded) BatchSearchWith(encode func(string) embed.Vector, queries []string, k int) [][]Hit {
	return batchSearch(s, encode, queries, k)
}

// fanOut runs search on every segment and merges the per-segment top-k
// lists into the global top-k. Each segment returns its own correct
// top-k, so the merge of all of them contains the global winners. The
// scan is spread over a worker pool sized by the machine's parallelism:
// one worker per schedulable thread, capped at the shard count, falling
// back to a plain sequential loop on single-core boxes where goroutine
// hand-offs would only add overhead.
func (s *Sharded) fanOut(k int, search func(*Index) []Hit) []Hit {
	if k <= 0 || len(s.shards) == 0 {
		return nil
	}
	if len(s.shards) == 1 {
		return search(s.shards[0])
	}
	per := make([][]Hit, len(s.shards))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(s.shards) {
		workers = len(s.shards)
	}
	if workers <= 1 {
		for i, sh := range s.shards {
			per[i] = search(sh)
		}
		return mergeHits(per, k)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(s.shards) {
					return
				}
				per[i] = search(s.shards[i])
			}
		}()
	}
	wg.Wait()
	return mergeHits(per, k)
}

// mergeHits flattens per-segment result lists and keeps the global top-k,
// with the same deterministic (score desc, surface-form asc) order the
// single-segment scan produces.
func mergeHits(per [][]Hit, k int) []Hit {
	n := 0
	for _, hits := range per {
		n += len(hits)
	}
	if n == 0 {
		return nil
	}
	out := make([]Hit, 0, n)
	for _, hits := range per {
		out = append(out, hits...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Triple.Key() < out[j].Triple.Key()
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Stats aggregates segment statistics.
func (s *Sharded) Stats() Stats {
	st := Stats{Dim: embed.Dim, Shards: len(s.shards), Triples: s.total}
	for _, sh := range s.shards {
		st.Tokens += sh.Stats().Tokens
	}
	return st
}

var _ Searcher = (*Sharded)(nil)
