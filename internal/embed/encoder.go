// Package embed provides the deterministic sentence encoder that stands in
// for Sentence-BERT in the PG&AKV pipeline (see DESIGN.md §2).
//
// The encoder maps text to a dense, L2-normalised vector using feature
// hashing over word unigrams, word bigrams and character trigrams. Texts
// sharing vocabulary and local word order land close in cosine space, which
// is the only property the pipeline's semantic query step relies on: a
// pseudo-triple "<China> <Number of population> <1463725000>" must score
// high against the KG triple "<China> <population> <1443497378>" because
// they share the subject and most relation vocabulary, even though the
// hallucinated object differs.
//
// The encoder is pure and deterministic: identical text always produces an
// identical vector, across runs and platforms.
package embed

import (
	"math"
	"strings"
	"unicode"
)

// Dim is the dimensionality of produced vectors. 256 gives enough hash
// buckets that collisions are rare over KG-scale vocabularies while keeping
// brute-force cosine scans cheap.
const Dim = 256

// Vector is a dense embedding. Vectors returned by the Encoder are
// L2-normalised, so Dot doubles as cosine similarity.
type Vector [Dim]float32

// Dot returns the inner product of two vectors. For encoder output this is
// the cosine similarity in [-1, 1].
func (v Vector) Dot(u Vector) float64 {
	var s float64
	for i := 0; i < Dim; i++ {
		s += float64(v[i]) * float64(u[i])
	}
	return s
}

// NormDot is the scan-loop scoring kernel: the inner product of two
// encoder-normalised vectors, i.e. their cosine similarity. It is Dot
// hoisted out of the hot path — pointer arguments avoid the two 1 KiB
// array copies a value-receiver call makes per candidate, and the body is
// unrolled over four independent accumulators so the multiplies pipeline
// instead of serialising on one dependency chain. Callers own the
// normalisation contract: Encoder.Encode output (and vectors persisted
// from it) is always normalised, so no per-call renormalisation happens
// here.
func NormDot(a, b *Vector) float64 {
	var s0, s1, s2, s3 float64
	for i := 0; i <= Dim-4; i += 4 {
		s0 += float64(a[i]) * float64(b[i])
		s1 += float64(a[i+1]) * float64(b[i+1])
		s2 += float64(a[i+2]) * float64(b[i+2])
		s3 += float64(a[i+3]) * float64(b[i+3])
	}
	return (s0 + s1) + (s2 + s3)
}

// Norm returns the L2 norm.
func (v Vector) Norm() float64 {
	var s float64
	for i := 0; i < Dim; i++ {
		s += float64(v[i]) * float64(v[i])
	}
	return math.Sqrt(s)
}

// IsZero reports whether every component is zero (the embedding of empty
// text).
func (v Vector) IsZero() bool {
	for i := 0; i < Dim; i++ {
		if v[i] != 0 {
			return false
		}
	}
	return true
}

// Cosine returns the cosine similarity of two arbitrary (possibly
// unnormalised) vectors; 0 if either is zero.
func Cosine(a, b Vector) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return a.Dot(b) / (na * nb)
}

// Encoder converts text to vectors. It is stateless and safe for concurrent
// use; the zero value is ready to use with default feature weights.
type Encoder struct {
	// WordWeight scales word-unigram features (default 1.0).
	WordWeight float64
	// BigramWeight scales word-bigram features (default 0.5). Bigrams
	// capture relation phrases like "place of" + "of birth".
	BigramWeight float64
	// CharWeight scales character-trigram features (default 0.35). Char
	// features let near-miss tokens (population vs populations,
	// schema-styled paths like people/person/place_of_birth) overlap.
	CharWeight float64
}

// NewEncoder returns an encoder with the default feature weights.
func NewEncoder() *Encoder {
	return &Encoder{WordWeight: 1.0, BigramWeight: 0.5, CharWeight: 0.35}
}

func (e *Encoder) weights() (w, b, c float64) {
	w, b, c = e.WordWeight, e.BigramWeight, e.CharWeight
	if w == 0 && b == 0 && c == 0 {
		return 1.0, 0.5, 0.35
	}
	return w, b, c
}

// Encode returns the L2-normalised embedding of text. Empty or
// all-separator text yields the zero vector.
func (e *Encoder) Encode(text string) Vector {
	var v Vector
	ww, wb, wc := e.weights()
	tokens := Tokenize(text)
	if len(tokens) == 0 {
		return v
	}
	for _, tok := range tokens {
		addFeature(&v, "w:"+tok, ww)
		if wc != 0 {
			padded := "^" + tok + "$"
			for i := 0; i+3 <= len(padded); i++ {
				addFeature(&v, "c:"+padded[i:i+3], wc)
			}
		}
	}
	if wb != 0 {
		for i := 0; i+1 < len(tokens); i++ {
			addFeature(&v, "b:"+tokens[i]+" "+tokens[i+1], wb)
		}
	}
	normalize(&v)
	return v
}

// addFeature hashes the feature into two buckets with signs derived from
// the hash (the "hashing trick" with sign bit), spreading mass and making
// accidental collisions cancel rather than compound.
func addFeature(v *Vector, feat string, weight float64) {
	h := fnv64(feat)
	i1 := int(h % Dim)
	s1 := float32(1)
	if h&(1<<40) != 0 {
		s1 = -1
	}
	h2 := fnv64a(feat)
	i2 := int(h2 % Dim)
	s2 := float32(1)
	if h2&(1<<40) != 0 {
		s2 = -1
	}
	v[i1] += s1 * float32(weight)
	v[i2] += s2 * float32(weight) * 0.5
}

func normalize(v *Vector) {
	n := v.Norm()
	if n == 0 {
		return
	}
	inv := float32(1 / n)
	for i := 0; i < Dim; i++ {
		v[i] *= inv
	}
}

// Tokenize lower-cases text and splits it into alphanumeric runs. Schema
// punctuation (slashes, underscores, dots) acts as a separator, so the
// Freebase-style relation "people/person/place_of_birth" tokenises to
// [people person place of birth] and overlaps the Wikidata-style label
// "place of birth". This cross-schema overlap is what makes atomic semantic
// querying source-agnostic, the property Table III depends on.
func Tokenize(text string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, cur.String())
			cur.Reset()
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			cur.WriteRune(unicode.ToLower(r))
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// Similarity is a convenience that encodes both texts and returns their
// cosine similarity.
func (e *Encoder) Similarity(a, b string) float64 {
	va := e.Encode(a)
	vb := e.Encode(b)
	if va.IsZero() || vb.IsZero() {
		return 0
	}
	return va.Dot(vb)
}

// fnv64 is FNV-1 64-bit.
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h *= prime
		h ^= uint64(s[i])
	}
	return h
}

// fnv64a is FNV-1a 64-bit (xor before multiply), giving an independent
// second hash for the two-bucket trick.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
