package embed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEncodeDeterministic(t *testing.T) {
	enc := NewEncoder()
	a := enc.Encode("Lake Superior area 82350")
	b := enc.Encode("Lake Superior area 82350")
	if a != b {
		t.Error("Encode is not deterministic")
	}
}

func TestEncodeNormalised(t *testing.T) {
	enc := NewEncoder()
	for _, text := range []string{"a", "hello world", "China population 1443497378"} {
		v := enc.Encode(text)
		if n := v.Norm(); math.Abs(n-1) > 1e-5 {
			t.Errorf("Encode(%q) norm = %v, want 1", text, n)
		}
	}
}

func TestEncodeEmpty(t *testing.T) {
	enc := NewEncoder()
	if !enc.Encode("").IsZero() {
		t.Error("Encode(empty) should be zero vector")
	}
	if !enc.Encode("   ...  ").IsZero() {
		t.Error("Encode(separators) should be zero vector")
	}
}

func TestSimilarityOrdering(t *testing.T) {
	enc := NewEncoder()
	query := "China population 1443497378"
	same := enc.Similarity(query, "China population 1375198619")
	related := enc.Similarity(query, "China capital Beijing")
	unrelated := enc.Similarity(query, "Lake Superior area 82350")
	if !(same > related && related > unrelated) {
		t.Errorf("similarity ordering broken: same=%.3f related=%.3f unrelated=%.3f",
			same, related, unrelated)
	}
}

func TestSelfSimilarityIsOne(t *testing.T) {
	enc := NewEncoder()
	if s := enc.Similarity("place of birth", "place of birth"); math.Abs(s-1) > 1e-5 {
		t.Errorf("self similarity = %v, want 1", s)
	}
}

// TestCrossSchemaOverlap asserts the property Table III relies on: a
// Wikidata-style label and the corresponding Freebase path land close.
func TestCrossSchemaOverlap(t *testing.T) {
	enc := NewEncoder()
	cases := []struct{ natural, path string }{
		{"place of birth", "people/person/place_of_birth"},
		{"population", "location/statistical_region/population"},
		{"founded by", "organization/organization/founders"},
	}
	for _, c := range cases {
		aligned := enc.Similarity(c.natural, c.path)
		foreign := enc.Similarity(c.natural, "geography/river/basin_countries")
		if aligned <= foreign {
			t.Errorf("%q vs %q (%.3f) should beat foreign path (%.3f)",
				c.natural, c.path, aligned, foreign)
		}
	}
}

func TestTokenize(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"Hello World", []string{"hello", "world"}},
		{"people/person/place_of_birth", []string{"people", "person", "place", "of", "birth"}},
		{"it's 42", []string{"it", "s", "42"}},
		{"", nil},
	}
	for _, tt := range tests {
		got := Tokenize(tt.in)
		if len(got) != len(tt.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("Tokenize(%q)[%d] = %q, want %q", tt.in, i, got[i], tt.want[i])
			}
		}
	}
}

// Property: cosine of encoder outputs is always within [-1, 1] + epsilon,
// and Dot on normalised vectors equals Cosine.
func TestCosineBounds(t *testing.T) {
	enc := NewEncoder()
	f := func(a, b string) bool {
		va, vb := enc.Encode(a), enc.Encode(b)
		d := va.Dot(vb)
		if d < -1.0001 || d > 1.0001 {
			return false
		}
		if va.IsZero() || vb.IsZero() {
			return true
		}
		return math.Abs(Cosine(va, vb)-d) < 1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: tokenisation is case-insensitive, so encodings are too.
func TestEncodeCaseInsensitive(t *testing.T) {
	enc := NewEncoder()
	f := func(s string) bool {
		return enc.Encode(s) == enc.Encode(upperASCII(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func upperASCII(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - 32
		}
	}
	return string(b)
}

func TestZeroWeightEncoderUsesDefaults(t *testing.T) {
	var enc Encoder // zero value
	v := enc.Encode("hello world")
	if v.IsZero() {
		t.Error("zero-value encoder produced zero vector; defaults not applied")
	}
}

func TestCustomWeights(t *testing.T) {
	wordOnly := &Encoder{WordWeight: 1, BigramWeight: 0, CharWeight: 0}
	// Without char features, morphological variants share nothing.
	sim := wordOnly.Similarity("educated", "education")
	full := NewEncoder().Similarity("educated", "education")
	if sim >= full {
		t.Errorf("char features should increase variant similarity: wordOnly=%.3f full=%.3f", sim, full)
	}
}

func TestVectorNormZero(t *testing.T) {
	var v Vector
	if v.Norm() != 0 {
		t.Error("zero vector norm != 0")
	}
	if Cosine(v, v) != 0 {
		t.Error("Cosine of zero vectors should be 0")
	}
}

// TestNormDotMatchesDot pins the kernel to the reference implementation:
// over encoder output the unrolled NormDot must agree with Vector.Dot to
// float64 round-off (the four-accumulator reordering moves only the last
// bits of a 256-term sum).
func TestNormDotMatchesDot(t *testing.T) {
	enc := NewEncoder()
	texts := []string{
		"China population 1443497378",
		"Alan Turing field computer science",
		"people/person/place_of_birth London",
		"Lake Superior area 82350",
	}
	for _, a := range texts {
		for _, b := range texts {
			va, vb := enc.Encode(a), enc.Encode(b)
			ref := va.Dot(vb)
			got := NormDot(&va, &vb)
			if diff := math.Abs(ref - got); diff > 1e-12 {
				t.Errorf("NormDot(%q, %q) = %v, Dot = %v (diff %v)", a, b, got, ref, diff)
			}
		}
	}
}

// BenchmarkDotKernel compares the value-receiver Dot against the NormDot
// scan kernel — the per-candidate cost of every exact scan and HNSW edge
// expansion.
func BenchmarkDotKernel(b *testing.B) {
	enc := NewEncoder()
	q := enc.Encode("entity 4242 of cluster 13 population")
	v := enc.Encode("entity 4241 of cluster 13 population")
	b.Run("Dot", func(b *testing.B) {
		var s float64
		for i := 0; i < b.N; i++ {
			s += q.Dot(v)
		}
		sinkFloat = s
	})
	b.Run("NormDot", func(b *testing.B) {
		var s float64
		for i := 0; i < b.N; i++ {
			s += NormDot(&q, &v)
		}
		sinkFloat = s
	})
}

var sinkFloat float64
