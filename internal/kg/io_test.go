package kg

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestNTRoundTrip(t *testing.T) {
	st := newTestStore(t)
	var buf bytes.Buffer
	if err := st.WriteNT(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadNT(&buf, SourceWikidata)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != st.Len() {
		t.Fatalf("round trip lost triples: %d != %d", loaded.Len(), st.Len())
	}
	for _, tr := range st.All() {
		found := false
		for _, got := range loaded.SubjectRelation(tr.Subject, tr.Relation) {
			if got.Object == tr.Object && got.Ord == tr.Ord {
				found = true
			}
		}
		if !found {
			t.Errorf("round trip lost %v (ord %d)", tr, tr.Ord)
		}
	}
}

func TestNTOrdSuffix(t *testing.T) {
	st := newTestStore(t)
	var buf bytes.Buffer
	if err := st.WriteNT(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "@ord=2") {
		t.Errorf("ord suffix missing:\n%s", buf.String())
	}
}

func TestReadNTSkipsCommentsAndBlanks(t *testing.T) {
	in := "# comment\n\n<a> <r> <x>\n  \n<b> <r> <y> @ord=3\n"
	st, err := ReadNT(strings.NewReader(in), SourceFreebase)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 2 {
		t.Fatalf("loaded %d triples, want 2", st.Len())
	}
	got := st.Subject("b")
	if len(got) != 1 || got[0].Ord != 3 {
		t.Errorf("ord not restored: %+v", got)
	}
}

func TestReadNTErrors(t *testing.T) {
	if _, err := ReadNT(strings.NewReader("<broken line"), SourceWikidata); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := ReadNT(strings.NewReader("<a> <b> <c> @ord=x"), SourceWikidata); err == nil {
		t.Error("bad ord suffix accepted")
	}
}

// TestReadNTErrorsCarryLineNumbers: parse failures are *LineError
// values pointing at the offending 1-based line, so WAL-replay and
// checkpoint-load diagnostics can name the bad input.
func TestReadNTErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		name  string
		input string
		line  int
	}{
		{"first line", "<broken", 1},
		{"after valid lines", "<a> <b> <c>\n# comment\n<d> <e> <f>\n<broken", 4},
		{"bad ord", "<a> <b> <c>\n<d> <e> <f> @ord=x", 2},
		{"blank lines still counted", "\n\n<broken", 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadNT(strings.NewReader(tc.input), SourceWikidata)
			if err == nil {
				t.Fatal("malformed input accepted")
			}
			var le *LineError
			if !errors.As(err, &le) {
				t.Fatalf("error %v is not a *LineError", err)
			}
			if le.Line != tc.line {
				t.Errorf("error line = %d, want %d (err: %v)", le.Line, tc.line, err)
			}
			if !strings.Contains(err.Error(), fmt.Sprintf("line %d", tc.line)) {
				t.Errorf("message %q does not name line %d", err.Error(), tc.line)
			}
		})
	}
}

// TestParseNTLine covers the single-line parser ReadNT and the
// substrate WAL codec share.
func TestParseNTLine(t *testing.T) {
	if _, ok, err := ParseNTLine("   "); ok || err != nil {
		t.Errorf("blank line: ok=%v err=%v", ok, err)
	}
	if _, ok, err := ParseNTLine("# comment"); ok || err != nil {
		t.Errorf("comment: ok=%v err=%v", ok, err)
	}
	tr, ok, err := ParseNTLine("<s> <r> <o> @ord=4")
	if err != nil || !ok {
		t.Fatalf("valid line: ok=%v err=%v", ok, err)
	}
	if tr.Subject != "s" || tr.Ord != 4 {
		t.Errorf("parsed %+v", tr)
	}
	if NTLine(tr) != "<s> <r> <o> @ord=4" {
		t.Errorf("NTLine round trip produced %q", NTLine(tr))
	}
	if _, _, err := ParseNTLine("<unterminated"); err == nil {
		t.Error("unterminated bracket accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	st := newTestStore(t)
	var buf bytes.Buffer
	if err := st.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Source() != st.Source() {
		t.Errorf("source = %v, want %v", loaded.Source(), st.Source())
	}
	if loaded.Len() != st.Len() {
		t.Errorf("round trip lost triples: %d != %d", loaded.Len(), st.Len())
	}
	// Time-varying ordering must survive.
	pops := loaded.SubjectRelation("China", "population")
	if len(pops) != 3 || pops[2].Object != "1443497378" {
		t.Errorf("ord ordering lost: %v", pops)
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"source":"dbpedia","triples":[]}`)); err == nil {
		t.Error("unknown source accepted")
	}
}
