package kg

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteNT streams the store's triples in a line-oriented N-Triples-like
// text format: one angle-bracket triple per line, with an optional
// "@ord=N" suffix for time-varying revisions. The format round-trips
// through ReadNT and is easy to diff and grep.
func (st *Store) WriteNT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, t := range st.All() {
		if _, err := bw.WriteString(t.String()); err != nil {
			return fmt.Errorf("kg: write: %w", err)
		}
		if t.Ord != 0 {
			if _, err := fmt.Fprintf(bw, " @ord=%d", t.Ord); err != nil {
				return fmt.Errorf("kg: write: %w", err)
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("kg: write: %w", err)
		}
	}
	return bw.Flush()
}

// ReadNT loads triples in the WriteNT format into a new store tagged with
// the given source. Blank lines and #-comments are skipped.
func ReadNT(r io.Reader, source Source) (*Store, error) {
	st := NewStore(source)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ord := 0
		if i := strings.LastIndex(line, "@ord="); i > 0 {
			if _, err := fmt.Sscanf(line[i:], "@ord=%d", &ord); err != nil {
				return nil, fmt.Errorf("kg: line %d: bad ord suffix: %w", lineNo, err)
			}
			line = strings.TrimSpace(line[:i])
		}
		t, err := ParseTriple(line)
		if err != nil {
			return nil, fmt.Errorf("kg: line %d: %w", lineNo, err)
		}
		t.Ord = ord
		st.Add(t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("kg: read: %w", err)
	}
	st.Freeze()
	return st, nil
}

// tripleJSON is the JSON wire form of a triple.
type tripleJSON struct {
	S   string `json:"s"`
	R   string `json:"r"`
	O   string `json:"o"`
	Ord int    `json:"ord,omitempty"`
}

// storeJSON is the JSON wire form of a store.
type storeJSON struct {
	Source  string       `json:"source"`
	Triples []tripleJSON `json:"triples"`
}

// WriteJSON serialises the store as a single JSON document.
func (st *Store) WriteJSON(w io.Writer) error {
	doc := storeJSON{Source: st.Source().String()}
	for _, t := range st.All() {
		doc.Triples = append(doc.Triples, tripleJSON{S: t.Subject, R: t.Relation, O: t.Object, Ord: t.Ord})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("kg: write json: %w", err)
	}
	return nil
}

// ReadJSON loads a store from the WriteJSON format.
func ReadJSON(r io.Reader) (*Store, error) {
	var doc storeJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("kg: read json: %w", err)
	}
	src, err := ParseSource(doc.Source)
	if err != nil {
		return nil, err
	}
	st := NewStore(src)
	for _, t := range doc.Triples {
		st.Add(Triple{Subject: t.S, Relation: t.R, Object: t.O, Ord: t.Ord})
	}
	st.Freeze()
	return st, nil
}
