package kg

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// NTLine renders one triple in the WriteNT line form: the angle-bracket
// surface with an optional "@ord=N" suffix for time-varying revisions.
func NTLine(t Triple) string {
	if t.Ord != 0 {
		return fmt.Sprintf("%s @ord=%d", t.String(), t.Ord)
	}
	return t.String()
}

// ParseNTLine parses one WriteNT-format line back into a triple. Blank
// lines and #-comments carry no triple: they return ok == false with no
// error. Errors do not carry line positions — ReadNT (and any other
// caller iterating a stream) wraps them in a *LineError.
func ParseNTLine(line string) (t Triple, ok bool, err error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return Triple{}, false, nil
	}
	ord := 0
	if i := strings.LastIndex(line, "@ord="); i > 0 {
		if _, err := fmt.Sscanf(line[i:], "@ord=%d", &ord); err != nil {
			return Triple{}, false, fmt.Errorf("bad ord suffix: %w", err)
		}
		line = strings.TrimSpace(line[:i])
	}
	t, err = ParseTriple(line)
	if err != nil {
		return Triple{}, false, err
	}
	t.Ord = ord
	return t, true, nil
}

// LineError reports a parse failure at a specific line of an NT stream,
// so replay and ingest diagnostics can point at the offending input.
// Callers extract the position with errors.As.
type LineError struct {
	// Line is the 1-based line number within the stream being parsed.
	Line int
	// Err is the underlying parse error.
	Err error
}

// Error renders the position and the cause.
func (e *LineError) Error() string { return fmt.Sprintf("kg: line %d: %v", e.Line, e.Err) }

// Unwrap exposes the underlying parse error to errors.Is/As.
func (e *LineError) Unwrap() error { return e.Err }

// WriteNTTriples streams triples in the line-oriented N-Triples-like text
// format (see NTLine). It is the writer hook checkpointing uses for
// arbitrary consistent views (snapshot unions, not just *Store): the
// caller owns the destination, so it can write to a temporary file and
// fsync before renaming.
func WriteNTTriples(w io.Writer, triples []Triple) error {
	bw := bufio.NewWriter(w)
	for _, t := range triples {
		if _, err := bw.WriteString(NTLine(t)); err != nil {
			return fmt.Errorf("kg: write: %w", err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("kg: write: %w", err)
		}
	}
	return bw.Flush()
}

// WriteNT streams the store's triples in a line-oriented N-Triples-like
// text format: one angle-bracket triple per line, with an optional
// "@ord=N" suffix for time-varying revisions. The format round-trips
// through ReadNT and is easy to diff and grep.
func (st *Store) WriteNT(w io.Writer) error {
	return WriteNTTriples(w, st.All())
}

// ReadNT loads triples in the WriteNT format into a new store tagged with
// the given source. Blank lines and #-comments are skipped. Parse
// failures are *LineError values carrying the 1-based offending line.
func ReadNT(r io.Reader, source Source) (*Store, error) {
	st := NewStore(source)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		t, ok, err := ParseNTLine(sc.Text())
		if err != nil {
			return nil, &LineError{Line: lineNo, Err: err}
		}
		if !ok {
			continue
		}
		st.Add(t)
	}
	if err := sc.Err(); err != nil {
		// The scanner failed between lines (typically a token past the
		// buffer cap); report the last line that parsed so the position
		// of the failure is still findable.
		return nil, &LineError{Line: lineNo + 1, Err: fmt.Errorf("read: %w", err)}
	}
	st.Freeze()
	return st, nil
}

// tripleJSON is the JSON wire form of a triple.
type tripleJSON struct {
	S   string `json:"s"`
	R   string `json:"r"`
	O   string `json:"o"`
	Ord int    `json:"ord,omitempty"`
}

// storeJSON is the JSON wire form of a store.
type storeJSON struct {
	Source  string       `json:"source"`
	Triples []tripleJSON `json:"triples"`
}

// WriteJSON serialises the store as a single JSON document.
func (st *Store) WriteJSON(w io.Writer) error {
	doc := storeJSON{Source: st.Source().String()}
	for _, t := range st.All() {
		doc.Triples = append(doc.Triples, tripleJSON{S: t.Subject, R: t.Relation, O: t.Object, Ord: t.Ord})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("kg: write json: %w", err)
	}
	return nil
}

// ReadJSON loads a store from the WriteJSON format.
func ReadJSON(r io.Reader) (*Store, error) {
	var doc storeJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("kg: read json: %w", err)
	}
	src, err := ParseSource(doc.Source)
	if err != nil {
		return nil, err
	}
	st := NewStore(src)
	for _, t := range doc.Triples {
		st.Add(Triple{Subject: t.S, Relation: t.R, Object: t.O, Ord: t.Ord})
	}
	st.Freeze()
	return st, nil
}
