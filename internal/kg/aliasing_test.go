package kg

import (
	"testing"
)

// aliasingStore builds a store whose posting lists have more than one
// entry, so a buggy accessor that returned internal slices would be
// corruptible by callers.
func aliasingStore(t *testing.T) *Store {
	t.Helper()
	st := NewStore(SourceWikidata)
	st.AddAll([]Triple{
		{Subject: "A", Relation: "r1", Object: "x", Ord: 0},
		{Subject: "A", Relation: "r1", Object: "y", Ord: 1},
		{Subject: "A", Relation: "r2", Object: "z"},
		{Subject: "B", Relation: "r1", Object: "x"},
	})
	st.Freeze()
	return st
}

// TestAccessorsReturnCopies proves the anti-aliasing contract of kg.Reader:
// appending to or mutating a returned slice must never change what the
// store returns next.
func TestAccessorsReturnCopies(t *testing.T) {
	st := aliasingStore(t)

	cases := []struct {
		name string
		get  func() []Triple
	}{
		{"Subject", func() []Triple { return st.Subject("A") }},
		{"Relation", func() []Triple { return st.Relation("r1") }},
		{"Object", func() []Triple { return st.Object("x") }},
		{"SubjectRelation", func() []Triple { return st.SubjectRelation("A", "r1") }},
		{"RelationObject", func() []Triple { return st.RelationObject("r1", "x") }},
		{"All", func() []Triple { return st.All() }},
		{"Neighbours", func() []Triple { return st.Neighbours("A") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := tc.get()
			if len(before) == 0 {
				t.Fatalf("%s returned nothing", tc.name)
			}
			// Mutate every element and append a poison triple.
			mutated := tc.get()
			for i := range mutated {
				mutated[i].Subject = "CORRUPTED"
				mutated[i].Object = "CORRUPTED"
			}
			_ = append(mutated, Triple{Subject: "POISON", Relation: "p", Object: "p"})

			after := tc.get()
			if len(after) != len(before) {
				t.Fatalf("%s length changed after caller mutation: %d -> %d", tc.name, len(before), len(after))
			}
			for i := range after {
				if !after[i].Equal(before[i]) {
					t.Errorf("%s[%d] changed after caller mutation: %v -> %v", tc.name, i, before[i], after[i])
				}
			}
		})
	}

	// String-slice accessors must be caller-owned too.
	subjects := st.Subjects()
	subjects[0] = "CORRUPTED"
	if st.Subjects()[0] == "CORRUPTED" {
		t.Error("Subjects returned an internal slice")
	}
	rels := st.Relations()
	rels[0] = "CORRUPTED"
	if st.Relations()[0] == "CORRUPTED" {
		t.Error("Relations returned an internal slice")
	}
	objs := st.Objects()
	objs[0] = "CORRUPTED"
	if st.Objects()[0] == "CORRUPTED" {
		t.Error("Objects returned an internal slice")
	}
}

func TestContains(t *testing.T) {
	st := aliasingStore(t)
	if !st.Contains(Triple{Subject: "A", Relation: "r1", Object: "x"}) {
		t.Error("Contains missed a stored triple")
	}
	// Source, Ord and ID are ignored in the comparison.
	if !st.Contains(Triple{Subject: "A", Relation: "r1", Object: "x", Source: SourceFreebase, Ord: 9, ID: 42}) {
		t.Error("Contains must ignore Source/Ord/ID")
	}
	if st.Contains(Triple{Subject: "A", Relation: "r1", Object: "nope"}) {
		t.Error("Contains invented a triple")
	}
}

func TestObjectsSorted(t *testing.T) {
	st := aliasingStore(t)
	objs := st.Objects()
	if len(objs) != 3 {
		t.Fatalf("Objects = %v, want 3 distinct", objs)
	}
	for i := 1; i < len(objs); i++ {
		if objs[i-1] >= objs[i] {
			t.Fatalf("Objects not sorted: %v", objs)
		}
	}
}

func TestGraphCloneNil(t *testing.T) {
	var g *Graph
	if g.Clone() != nil {
		t.Error("nil graph must clone to nil")
	}
}
