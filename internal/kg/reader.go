package kg

// Reader is the read-only surface of a triple substrate. *Store implements
// it directly; composite views (the substrate manager's base+delta union)
// implement it over several stores so the pipeline and the baselines can
// run against any consistent snapshot without knowing how it is assembled.
//
// Implementations must be safe for concurrent readers and must return
// slices the caller owns: appending to or mutating a returned slice never
// affects the underlying substrate.
type Reader interface {
	// Source identifies the KG schema the triples are rendered in.
	Source() Source
	// Len returns the number of triples in the view.
	Len() int
	// Get returns the triple with the given ID.
	Get(id int) (Triple, bool)
	// All returns every triple in insertion order.
	All() []Triple
	// Contains reports whether the view holds a triple with t's surface
	// form (Source, Ord and ID are ignored).
	Contains(t Triple) bool
	// Subject returns all triples whose subject matches exactly.
	Subject(s string) []Triple
	// Relation returns all triples with the given relation.
	Relation(r string) []Triple
	// Object returns all triples whose object matches exactly.
	Object(o string) []Triple
	// SubjectRelation returns the (subject, relation) triples in Ord order.
	SubjectRelation(s, r string) []Triple
	// RelationObject is the reverse lookup used by exploration baselines.
	RelationObject(r, o string) []Triple
	// HasSubject reports whether any triple has the given subject.
	HasSubject(s string) bool
	// Subjects returns all distinct subjects, sorted.
	Subjects() []string
	// Relations returns all distinct relations, sorted.
	Relations() []string
	// Objects returns all distinct objects, sorted.
	Objects() []string
	// Neighbours returns the one-hop neighbourhood of s.
	Neighbours(s string) []Triple
	// SubjectGraph returns a Graph holding the given subjects' triples.
	SubjectGraph(subjects []string) *Graph
	// FindSubjectFold resolves a case-folded subject to its canonical form.
	FindSubjectFold(q string) (string, bool)
	// Stats summarises the view for diagnostics.
	Stats() Stats
}

var _ Reader = (*Store)(nil)
