package kg

import (
	"fmt"
	"sync"
	"testing"
)

// concurrencyStore builds a store with enough shape to make the read
// paths non-trivial.
func concurrencyStore() *Store {
	st := NewStore(SourceWikidata)
	for i := 0; i < 200; i++ {
		subj := fmt.Sprintf("Entity%d", i%50)
		st.Add(Triple{
			Subject:  subj,
			Relation: fmt.Sprintf("rel%d", i%7),
			Object:   fmt.Sprintf("Object%d", i),
			Ord:      i % 3,
		})
	}
	return st
}

// TestStoreConcurrentReadsAfterFreeze hammers every read path from 32
// goroutines on a frozen store; run with -race.
func TestStoreConcurrentReadsAfterFreeze(t *testing.T) {
	st := concurrencyStore()
	st.Freeze()
	const goroutines = 32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				subj := fmt.Sprintf("Entity%d", (g+i)%50)
				if len(st.Subject(subj)) == 0 {
					t.Errorf("subject %s lost", subj)
					return
				}
				st.SubjectRelation(subj, fmt.Sprintf("rel%d", i%7))
				st.RelationObject(fmt.Sprintf("rel%d", i%7), fmt.Sprintf("Object%d", i%200))
				if !st.HasSubject(subj) {
					t.Errorf("HasSubject(%s) = false", subj)
					return
				}
				if i%20 == 0 {
					_ = st.Len()
					_ = st.Stats()
					_ = st.All()
					_ = st.Subjects()
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestStoreFreezeRacesReaders freezes the store while 32 goroutines read:
// Freeze sorts posting lists in place, so it must fully exclude readers.
// Run with -race.
func TestStoreFreezeRacesReaders(t *testing.T) {
	st := concurrencyStore()
	const goroutines = 32
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 100; i++ {
				subj := fmt.Sprintf("Entity%d", (g+i)%50)
				got := st.SubjectRelation(subj, fmt.Sprintf("rel%d", i%7))
				for _, tr := range got {
					if tr.Subject != subj {
						t.Errorf("SubjectRelation returned foreign triple %+v", tr)
						return
					}
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		st.Freeze()
	}()
	close(start)
	wg.Wait()

	// After the dust settles, SR lists are Ord-sorted.
	for i := 0; i < 50; i++ {
		subj := fmt.Sprintf("Entity%d", i)
		for r := 0; r < 7; r++ {
			ts := st.SubjectRelation(subj, fmt.Sprintf("rel%d", r))
			for j := 1; j < len(ts); j++ {
				if ts[j-1].Ord > ts[j].Ord {
					t.Fatalf("post-freeze SR list unsorted for %s/rel%d", subj, r)
				}
			}
		}
	}
}

// TestStoreConcurrentFreezeIdempotent: many goroutines freezing at once
// must leave one consistent frozen store.
func TestStoreConcurrentFreezeIdempotent(t *testing.T) {
	st := concurrencyStore()
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st.Freeze()
		}()
	}
	wg.Wait()
	defer func() {
		if recover() == nil {
			t.Fatal("Add after Freeze should panic")
		}
	}()
	st.Add(Triple{Subject: "s", Relation: "r", Object: "o"})
}
