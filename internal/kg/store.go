package kg

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Store is an indexed, in-memory triple store. It maintains SPO, POS and OSP
// orderings via hash indexes over each position plus pair indexes, which is
// sufficient for the access paths the pipeline needs:
//
//   - all triples for a subject (verification gold graph assembly),
//   - all triples for a (subject, relation) pair (fact lookup, time series),
//   - all subjects for a (relation, object) pair (reverse lookup, ToG),
//   - full scan in insertion order (vector-store construction).
//
// Store is safe for concurrent readers after Freeze; writes are mutex-guarded.
type Store struct {
	mu     sync.RWMutex
	source Source

	triples []Triple

	bySubject  map[string][]int
	byRelation map[string][]int
	byObject   map[string][]int
	bySR       map[string][]int
	byRO       map[string][]int
	byKey      map[string]int

	frozen bool
}

// NewStore returns an empty store whose triples will be tagged with the
// given source.
func NewStore(source Source) *Store {
	return &Store{
		source:     source,
		bySubject:  make(map[string][]int),
		byRelation: make(map[string][]int),
		byObject:   make(map[string][]int),
		bySR:       make(map[string][]int),
		byRO:       make(map[string][]int),
		byKey:      make(map[string]int),
	}
}

// Source returns the KG source the store holds.
func (st *Store) Source() Source {
	return st.source
}

// Len returns the number of stored triples.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.triples)
}

// Add inserts a triple, assigning its ID and Source. Duplicate surface
// forms are ignored (first write wins) so stores are idempotent under
// re-ingestion. It returns the triple's ID and whether it was newly added.
func (st *Store) Add(t Triple) (int, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.frozen {
		panic("kg: Add on frozen store")
	}
	key := t.Key()
	if id, ok := st.byKey[key]; ok {
		return id, false
	}
	id := len(st.triples)
	t.ID = id
	t.Source = st.source
	st.triples = append(st.triples, t)
	st.byKey[key] = id
	st.bySubject[t.Subject] = append(st.bySubject[t.Subject], id)
	st.byRelation[t.Relation] = append(st.byRelation[t.Relation], id)
	st.byObject[t.Object] = append(st.byObject[t.Object], id)
	st.bySR[t.SRKey()] = append(st.bySR[t.SRKey()], id)
	st.byRO[t.Relation+"\x00"+t.Object] = append(st.byRO[t.Relation+"\x00"+t.Object], id)
	return id, true
}

// AddAll inserts every triple in order, returning the count newly added.
func (st *Store) AddAll(ts []Triple) int {
	added := 0
	for _, t := range ts {
		if _, ok := st.Add(t); ok {
			added++
		}
	}
	return added
}

// Freeze marks the store read-only. Further Adds panic. Freezing sorts each
// (subject, relation) posting list by Ord so time-varying facts are returned
// chronologically, as the verification prompt requires.
func (st *Store) Freeze() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.frozen {
		return
	}
	for _, ids := range st.bySR {
		sort.SliceStable(ids, func(i, j int) bool {
			return st.triples[ids[i]].Ord < st.triples[ids[j]].Ord
		})
	}
	st.frozen = true
}

// Get returns the triple with the given ID.
func (st *Store) Get(id int) (Triple, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if id < 0 || id >= len(st.triples) {
		return Triple{}, false
	}
	return st.triples[id], true
}

// All returns a copy of every triple in insertion order.
func (st *Store) All() []Triple {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]Triple, len(st.triples))
	copy(out, st.triples)
	return out
}

// take returns the triples at the given ids in order.
func (st *Store) take(ids []int) []Triple {
	out := make([]Triple, 0, len(ids))
	for _, id := range ids {
		out = append(out, st.triples[id])
	}
	return out
}

// Contains reports whether the store holds a triple with t's surface form
// (Source, Ord and ID are ignored).
func (st *Store) Contains(t Triple) bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	_, ok := st.byKey[t.Key()]
	return ok
}

// Subject returns all triples whose subject matches exactly.
func (st *Store) Subject(s string) []Triple {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.take(st.bySubject[s])
}

// Relation returns all triples with the given relation.
func (st *Store) Relation(r string) []Triple {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.take(st.byRelation[r])
}

// Object returns all triples whose object matches exactly.
func (st *Store) Object(o string) []Triple {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.take(st.byObject[o])
}

// SubjectRelation returns the triples for (subject, relation), in Ord order
// once the store is frozen.
func (st *Store) SubjectRelation(s, r string) []Triple {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.take(st.bySR[s+"\x00"+r])
}

// RelationObject returns the triples for (relation, object) — the reverse
// lookup used by graph-exploration baselines.
func (st *Store) RelationObject(r, o string) []Triple {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.take(st.byRO[r+"\x00"+o])
}

// HasSubject reports whether any triple has the given subject.
func (st *Store) HasSubject(s string) bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.bySubject[s]) > 0
}

// Subjects returns all distinct subjects, sorted.
func (st *Store) Subjects() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]string, 0, len(st.bySubject))
	for s := range st.bySubject {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Relations returns all distinct relations, sorted.
func (st *Store) Relations() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]string, 0, len(st.byRelation))
	for r := range st.byRelation {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Objects returns all distinct objects, sorted.
func (st *Store) Objects() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]string, 0, len(st.byObject))
	for o := range st.byObject {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// Neighbours returns every triple whose subject is s — the one-hop
// neighbourhood used by exploration baselines. It is an alias of Subject
// kept for call-site readability.
func (st *Store) Neighbours(s string) []Triple {
	return st.Subject(s)
}

// SubjectGraph returns a Graph holding the given subjects' triples, in
// subject order then store order. Unknown subjects contribute nothing.
func (st *Store) SubjectGraph(subjects []string) *Graph {
	g := &Graph{}
	for _, s := range subjects {
		g.Add(st.Subject(s)...)
	}
	return g
}

// FindSubjectFold returns the canonical subject whose case-folded form
// matches the query, if any. Pseudo-triples often differ from KG entities
// only in capitalisation ("lake superior" vs "Lake Superior").
func (st *Store) FindSubjectFold(q string) (string, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if len(st.bySubject[q]) > 0 {
		return q, true
	}
	folded := strings.ToLower(q)
	for s := range st.bySubject {
		if strings.ToLower(s) == folded {
			return s, true
		}
	}
	return "", false
}

// Stats summarises the store for diagnostics.
type Stats struct {
	Source    Source
	Triples   int
	Subjects  int
	Relations int
	Objects   int
}

// Stats returns summary statistics.
func (st *Store) Stats() Stats {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return Stats{
		Source:    st.source,
		Triples:   len(st.triples),
		Subjects:  len(st.bySubject),
		Relations: len(st.byRelation),
		Objects:   len(st.byObject),
	}
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("%s: %d triples, %d subjects, %d relations, %d objects",
		s.Source, s.Triples, s.Subjects, s.Relations, s.Objects)
}
