package kg

import (
	"fmt"
	"testing"
	"testing/quick"
)

func newTestStore(t *testing.T) *Store {
	t.Helper()
	st := NewStore(SourceWikidata)
	st.AddAll([]Triple{
		{Subject: "China", Relation: "population", Object: "1375198619", Ord: 0},
		{Subject: "China", Relation: "population", Object: "1443497378", Ord: 2},
		{Subject: "China", Relation: "capital", Object: "Beijing"},
		{Subject: "China", Relation: "population", Object: "1442965000", Ord: 1},
		{Subject: "Beijing", Relation: "country", Object: "China"},
	})
	st.Freeze()
	return st
}

func TestStoreIndexes(t *testing.T) {
	st := newTestStore(t)
	if got := len(st.Subject("China")); got != 4 {
		t.Errorf("Subject(China) = %d triples, want 4", got)
	}
	if got := len(st.Relation("population")); got != 3 {
		t.Errorf("Relation(population) = %d, want 3", got)
	}
	if got := len(st.Object("China")); got != 1 {
		t.Errorf("Object(China) = %d, want 1", got)
	}
	if got := len(st.RelationObject("country", "China")); got != 1 {
		t.Errorf("RelationObject = %d, want 1", got)
	}
}

func TestStoreFreezeOrdersTimeVarying(t *testing.T) {
	st := newTestStore(t)
	pops := st.SubjectRelation("China", "population")
	if len(pops) != 3 {
		t.Fatalf("got %d population triples, want 3", len(pops))
	}
	for i := 1; i < len(pops); i++ {
		if pops[i-1].Ord > pops[i].Ord {
			t.Errorf("SR posting not ord-sorted: %v", pops)
		}
	}
	if pops[2].Object != "1443497378" {
		t.Errorf("latest population = %q, want 1443497378", pops[2].Object)
	}
}

func TestStoreDuplicateIgnored(t *testing.T) {
	st := NewStore(SourceFreebase)
	id1, added1 := st.Add(NewTriple("a", "r", "x"))
	id2, added2 := st.Add(NewTriple("a", "r", "x"))
	if !added1 || added2 {
		t.Errorf("duplicate handling wrong: added1=%v added2=%v", added1, added2)
	}
	if id1 != id2 {
		t.Errorf("duplicate got different IDs: %d vs %d", id1, id2)
	}
	if st.Len() != 1 {
		t.Errorf("Len = %d, want 1", st.Len())
	}
}

func TestStoreAddAfterFreezePanics(t *testing.T) {
	st := NewStore(SourceWikidata)
	st.Freeze()
	defer func() {
		if recover() == nil {
			t.Error("Add after Freeze did not panic")
		}
	}()
	st.Add(NewTriple("a", "r", "x"))
}

func TestStoreSourceTagging(t *testing.T) {
	st := NewStore(SourceFreebase)
	st.Add(NewTriple("a", "r", "x"))
	got, ok := st.Get(0)
	if !ok || got.Source != SourceFreebase {
		t.Errorf("stored triple source = %v, want freebase", got.Source)
	}
}

func TestStoreFindSubjectFold(t *testing.T) {
	st := newTestStore(t)
	if s, ok := st.FindSubjectFold("china"); !ok || s != "China" {
		t.Errorf("FindSubjectFold(china) = %q, %v", s, ok)
	}
	if _, ok := st.FindSubjectFold("atlantis"); ok {
		t.Error("FindSubjectFold found a non-subject")
	}
}

func TestStoreSubjectGraph(t *testing.T) {
	st := newTestStore(t)
	g := st.SubjectGraph([]string{"Beijing", "China", "nowhere"})
	if g.Len() != 5 {
		t.Errorf("SubjectGraph len = %d, want 5", g.Len())
	}
	if g.Triples[0].Subject != "Beijing" {
		t.Errorf("SubjectGraph order wrong: first subject %q", g.Triples[0].Subject)
	}
}

func TestStoreStats(t *testing.T) {
	st := newTestStore(t)
	s := st.Stats()
	if s.Triples != 5 || s.Subjects != 2 || s.Relations != 3 {
		t.Errorf("Stats = %+v", s)
	}
	if s.String() == "" {
		t.Error("Stats.String empty")
	}
}

func TestStoreGetOutOfRange(t *testing.T) {
	st := newTestStore(t)
	if _, ok := st.Get(-1); ok {
		t.Error("Get(-1) should fail")
	}
	if _, ok := st.Get(99); ok {
		t.Error("Get(99) should fail")
	}
}

// Property: every added triple is findable via all three single-position
// indexes, and All preserves insertion order of first occurrences.
func TestStoreIndexConsistency(t *testing.T) {
	f := func(raw []uint8) bool {
		st := NewStore(SourceWikidata)
		var inserted []Triple
		seen := map[string]bool{}
		for _, b := range raw {
			tr := Triple{
				Subject:  fmt.Sprintf("s%d", b%7),
				Relation: fmt.Sprintf("r%d", b%3),
				Object:   fmt.Sprintf("o%d", b%5),
			}
			if !seen[tr.Key()] {
				seen[tr.Key()] = true
				inserted = append(inserted, tr)
			}
			st.Add(tr)
		}
		st.Freeze()
		if st.Len() != len(inserted) {
			return false
		}
		for _, tr := range inserted {
			found := false
			for _, got := range st.SubjectRelation(tr.Subject, tr.Relation) {
				if got.Object == tr.Object {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		all := st.All()
		for i, tr := range inserted {
			if !all[i].Equal(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStoreSubjectsSorted(t *testing.T) {
	st := newTestStore(t)
	subs := st.Subjects()
	if len(subs) != 2 || subs[0] != "Beijing" || subs[1] != "China" {
		t.Errorf("Subjects() = %v", subs)
	}
	rels := st.Relations()
	if len(rels) != 3 || rels[0] != "capital" {
		t.Errorf("Relations() = %v", rels)
	}
}
