package kg

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTripleString(t *testing.T) {
	tr := NewTriple("China", "population", "1443497378")
	want := "<China> <population> <1443497378>"
	if got := tr.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestTripleText(t *testing.T) {
	tr := NewTriple("Lake Superior", "area", "82350")
	if got := tr.Text(); got != "Lake Superior area 82350" {
		t.Errorf("Text() = %q", got)
	}
}

func TestParseTriple(t *testing.T) {
	tests := []struct {
		in      string
		want    Triple
		wantErr bool
	}{
		{"<a> <b> <c>", Triple{Subject: "a", Relation: "b", Object: "c"}, false},
		{"  <Lake Superior> <area> <82350>  ", Triple{Subject: "Lake Superior", Relation: "area", Object: "82350"}, false},
		{"<a> <b>", Triple{}, true},                    // two fields
		{"<a> <b> <c> <d>", Triple{}, true},            // four fields
		{"<a> <b <c>", Triple{}, false},                // nested: "b <c" closes at first '>' => 2 fields -> err
		{"no brackets here", Triple{}, true},           // none
		{"<Allen Newell> <made Sora>", Triple{}, true}, // the paper's malformed example
	}
	for _, tt := range tests {
		got, err := ParseTriple(tt.in)
		if tt.in == "<a> <b <c>" {
			// This parses as 2 fields and must error.
			if err == nil {
				t.Errorf("ParseTriple(%q): expected error, got %v", tt.in, got)
			}
			continue
		}
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseTriple(%q): expected error, got %v", tt.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseTriple(%q): %v", tt.in, err)
			continue
		}
		if !got.Equal(tt.want) {
			t.Errorf("ParseTriple(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

// TestParseTripleRoundTrip: parsing a rendered triple recovers the triple,
// for any field content free of angle brackets and newlines.
func TestParseTripleRoundTrip(t *testing.T) {
	clean := func(s string) string {
		s = strings.Map(func(r rune) rune {
			switch r {
			case '<', '>', '\n':
				return -1
			}
			return r
		}, s)
		return strings.TrimSpace(s)
	}
	f := func(s, r, o string) bool {
		s, r, o = clean(s), clean(r), clean(o)
		if s == "" || r == "" || o == "" {
			return true // rendering empty fields is out of contract
		}
		in := Triple{Subject: s, Relation: r, Object: o}
		got, err := ParseTriple(in.String())
		return err == nil && got.Equal(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGraphSubjectsOrder(t *testing.T) {
	g := NewGraph(
		NewTriple("b", "r", "x"),
		NewTriple("a", "r", "y"),
		NewTriple("b", "r2", "z"),
	)
	got := g.Subjects()
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Errorf("Subjects() = %v, want [b a]", got)
	}
}

func TestGraphDedup(t *testing.T) {
	g := NewGraph(
		NewTriple("a", "r", "x"),
		NewTriple("a", "r", "x"),
		NewTriple("a", "r", "y"),
	)
	d := g.Dedup()
	if d.Len() != 2 {
		t.Errorf("Dedup() kept %d triples, want 2", d.Len())
	}
	if g.Len() != 3 {
		t.Errorf("Dedup() mutated the receiver: len=%d", g.Len())
	}
}

func TestGraphDedupIdempotent(t *testing.T) {
	f := func(raw []uint8) bool {
		g := &Graph{}
		for _, b := range raw {
			g.Add(NewTriple(string('a'+rune(b%5)), "r", string('x'+rune(b%3))))
		}
		once := g.Dedup()
		twice := once.Dedup()
		if once.Len() != twice.Len() {
			return false
		}
		for i := range once.Triples {
			if !once.Triples[i].Equal(twice.Triples[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGraphContains(t *testing.T) {
	g := NewGraph(NewTriple("a", "r", "x"))
	if !g.Contains(NewTriple("a", "r", "x")) {
		t.Error("Contains should find the triple")
	}
	if g.Contains(NewTriple("a", "r", "y")) {
		t.Error("Contains found a non-member")
	}
	if !g.ContainsSR("a", "r") {
		t.Error("ContainsSR should find (a, r)")
	}
	if g.ContainsSR("a", "q") {
		t.Error("ContainsSR found absent relation")
	}
}

func TestGraphEntityBlocks(t *testing.T) {
	g := NewGraph(
		NewTriple("Lake Superior", "area", "82350"),
		NewTriple("Lake Michigan", "area", "57750"),
		NewTriple("Lake Superior", "connects with", "Keweenaw Waterway"),
	)
	out := g.EntityBlocks([]string{"Lake Superior", "Lake Michigan"})
	if !strings.Contains(out, "[entity_0]:") || !strings.Contains(out, "[entity_1]:") {
		t.Fatalf("EntityBlocks missing headers:\n%s", out)
	}
	// Superior's two triples must appear before Michigan's block.
	supIdx := strings.Index(out, "Keweenaw")
	michIdx := strings.Index(out, "Lake Michigan")
	if supIdx < 0 || michIdx < 0 || supIdx > michIdx {
		t.Errorf("block ordering wrong:\n%s", out)
	}
}

func TestParseGraphSkipsHeaders(t *testing.T) {
	text := "[entity_0]:\n<a> <r> <x>\n\n[entity_1]:\n<b> <r> <y>\n"
	g, err := ParseGraph(text)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Errorf("ParseGraph kept %d triples, want 2", g.Len())
	}
}

func TestParseGraphRoundTripEntityBlocks(t *testing.T) {
	g := NewGraph(
		NewTriple("a", "r", "x"),
		NewTriple("b", "r", "y"),
		NewTriple("a", "r2", "z"),
	)
	parsed, err := ParseGraph(g.EntityBlocks(g.Subjects()))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != g.Len() {
		t.Errorf("round trip lost triples: %d != %d", parsed.Len(), g.Len())
	}
	for _, tr := range g.Triples {
		if !parsed.Contains(tr) {
			t.Errorf("round trip lost %v", tr)
		}
	}
}

func TestParseGraphMalformedLine(t *testing.T) {
	if _, err := ParseGraph("<a> <b> <c>\n<broken <"); err == nil {
		t.Error("expected error on malformed triple line")
	}
}

func TestSourceRoundTrip(t *testing.T) {
	for _, src := range []Source{SourceUnknown, SourceWikidata, SourceFreebase} {
		got, err := ParseSource(src.String())
		if err != nil {
			t.Fatalf("ParseSource(%q): %v", src.String(), err)
		}
		if got != src {
			t.Errorf("ParseSource(%q) = %v, want %v", src.String(), got, src)
		}
	}
	if _, err := ParseSource("dbpedia"); err == nil {
		t.Error("expected error for unknown source")
	}
}

func TestGraphSortStable(t *testing.T) {
	g := NewGraph(
		NewTriple("b", "r", "y"),
		NewTriple("a", "r", "x"),
		Triple{Subject: "a", Relation: "r", Object: "w", Ord: 1},
	)
	g.SortStable()
	if g.Triples[0].Subject != "a" || g.Triples[0].Object != "x" {
		t.Errorf("sort order wrong: %v", g.Triples)
	}
	if g.Triples[1].Ord != 1 {
		t.Errorf("ord ordering wrong: %v", g.Triples)
	}
}

func TestGraphClone(t *testing.T) {
	g := NewGraph(NewTriple("a", "r", "x"))
	c := g.Clone()
	c.Triples[0].Object = "mutated"
	if g.Triples[0].Object != "x" {
		t.Error("Clone shares backing storage")
	}
}
