package bench

import (
	"context"
	"testing"
	"time"

	"repro/internal/answer"
	"repro/internal/kg"
	"repro/internal/serve"
)

// TestEnvCachedRerunsSameScore proves the serving stack under the bench
// harness: with the cache on, a rerun of the same cell is answered from
// memory and scores identically to the cold run.
func TestEnvCachedRerunsSameScore(t *testing.T) {
	cfg := QuickEnvConfig()
	cfg.Data.SimpleN = 8
	cfg.Data.QALDN = 4
	cfg.Data.NatureN = 2
	cfg.Cache = serve.CacheConfig{Size: 256, TTL: time.Hour}
	env, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if env.Cache == nil {
		t.Fatal("cache should be enabled")
	}

	cold, err := env.Run(context.Background(), MethodOurs, ModelGPT35, env.Suite.QALD, kg.SourceWikidata)
	if err != nil {
		t.Fatal(err)
	}
	hitsBefore := env.Cache.Stats().Hits
	warm, err := env.Run(context.Background(), MethodOurs, ModelGPT35, env.Suite.QALD, kg.SourceWikidata)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Score != cold.Score {
		t.Fatalf("cached rerun changed the score: %v -> %v", cold.Score, warm.Score)
	}
	gained := env.Cache.Stats().Hits - hitsBefore
	if gained < int64(len(env.Suite.QALD.Questions)) {
		t.Fatalf("rerun hit the cache %d times, want >= %d", gained, len(env.Suite.QALD.Questions))
	}

	// The metrics collector saw both runs under the method's name.
	snaps := env.Metrics.Snapshot()
	if len(snaps) == 0 {
		t.Fatal("no metrics recorded")
	}
	var total int64
	for _, s := range snaps {
		total += s.Count
	}
	if want := int64(2 * len(env.Suite.QALD.Questions)); total != want {
		t.Fatalf("metrics recorded %d requests, want %d", total, want)
	}
}

// TestEnvCacheOffByDefault: experiment cells must measure real runs unless
// a caller opts in.
func TestEnvCacheOffByDefault(t *testing.T) {
	if DefaultEnvConfig().Cache.Size > 0 || QuickEnvConfig().Cache.Size > 0 {
		t.Fatal("cache must default off for experiment fidelity")
	}
}

// TestEnvCacheScopedBySource is the cross-substrate regression: the same
// question against different KG sources (or models) must never share a
// cache entry, even though Env shares one Cache across all answerers.
func TestEnvCacheScopedBySource(t *testing.T) {
	cfg := QuickEnvConfig()
	cfg.Data.SimpleN = 4
	cfg.Data.QALDN = 2
	cfg.Data.NatureN = 2
	cfg.Cache = serve.CacheConfig{Size: 64}
	env, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := answer.Query{Text: env.Suite.Simple.Questions[0].Text}

	missesBefore := env.Cache.Stats().Misses
	for _, src := range []kg.Source{kg.SourceWikidata, kg.SourceFreebase} {
		ans, err := env.Answerer(MethodIO, ModelGPT35, src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ans.Answer(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	g4, err := env.Answerer(MethodIO, ModelGPT4, kg.SourceWikidata)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g4.Answer(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	s := env.Cache.Stats()
	if got := s.Misses - missesBefore; got != 3 {
		t.Fatalf("same question over 2 sources + 2 models shared entries: %d misses, want 3 (stats %+v)", got, s)
	}
	if s.Hits != 0 {
		t.Fatalf("no request should have hit: %+v", s)
	}
}
