package bench

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/cypher"
	"repro/internal/kg"
	"repro/internal/llm"
	"repro/internal/prompts"
	"repro/internal/qa"
)

// paperTable2 holds the paper's reported numbers for side-by-side shape
// comparison in the output (we do not expect to match them absolutely —
// see EXPERIMENTS.md).
var paperTable2 = map[string]map[string][3]float64{
	// model -> method -> [SimpleQuestions, QALD-10, NatureQuestions]
	ModelGPT35: {
		MethodToG:  {45.4, 48.6, -1},
		MethodIO:   {20.2, 38.7, 20.5},
		MethodCoT:  {22.0, 40.5, 23.2},
		MethodSC:   {21.2, 41.1, 23.5},
		MethodRAG:  {27.5, 34.2, 23.8},
		MethodOurs: {34.3, 48.6, 37.5},
	},
	ModelGPT4: {
		MethodToG:  {58.6, 54.7, -1},
		MethodIO:   {29.9, 44.7, 20.9},
		MethodCoT:  {32.2, 48.9, 27.7},
		MethodSC:   {36.0, 48.9, 27.6},
		MethodRAG:  {31.3, 46.2, 27.0},
		MethodOurs: {40.0, 56.5, 39.2},
	},
}

// Table2 runs the main-results experiment: every method × both models ×
// all three datasets (ToG skips Nature Questions, as in the paper).
func Table2(ctx context.Context, e *Env, out io.Writer) error {
	methods := []string{MethodToG, MethodIO, MethodCoT, MethodSC, MethodRAG, MethodOurs}
	models := []string{ModelGPT35, ModelGPT4}
	// Explicitly the paper trio: the suite also carries scenario packs,
	// which have their own experiment (Scenarios).
	dss := []*qa.Dataset{e.Suite.Simple, e.Suite.QALD, e.Suite.Nature}

	fmt.Fprintln(out, "Table II — main results (Hit@1 for SimpleQuestions/QALD, ROUGE-L for NatureQuestions)")
	fmt.Fprintln(out, "(paper's numbers in parentheses; shape, not absolute match, is the target)")
	fmt.Fprintf(out, "%-8s %-6s %-22s %-22s %-22s\n", "Model", "Method", "SimpleQuestions", "QALD", "NatureQuestions")
	for _, model := range models {
		for _, method := range methods {
			row := make([]string, 0, 3)
			for di, ds := range dss {
				if method == MethodToG && ds.Name == "NatureQuestions" {
					row = append(row, "-")
					continue
				}
				cell, err := e.Run(ctx, method, model, ds, DefaultSource(ds.Name))
				if err != nil {
					return err
				}
				paper := paperTable2[model][method][di]
				if paper < 0 {
					row = append(row, fmt.Sprintf("%5.1f", cell.Score))
				} else {
					row = append(row, fmt.Sprintf("%5.1f (paper %4.1f)", cell.Score, paper))
				}
			}
			fmt.Fprintf(out, "%-8s %-6s %-22s %-22s %-22s\n", model, method, row[0], row[1], row[2])
		}
		fmt.Fprintln(out)
	}
	return nil
}

// Scenarios runs the scenario-pack experiment: parametric baselines vs the
// graph methods over the four stress sets (temporal revisions, Cypher-backed
// aggregation, false premises, noisy surface forms), GPT-3.5 grade. The
// output is a per-scenario accuracy breakdown.
func Scenarios(ctx context.Context, e *Env, out io.Writer) error {
	methods := []string{MethodIO, MethodCoT, MethodRAG, MethodOurs}
	dss := []*qa.Dataset{e.Suite.Temporal, e.Suite.Aggregation, e.Suite.Adversarial, e.Suite.Noisy}

	fmt.Fprintln(out, "Scenario packs — per-scenario accuracy (Hit@1, GPT-3.5 grade)")
	fmt.Fprintf(out, "%-8s %-20s %-20s %-22s %-18s\n", "Method",
		"TemporalQuestions", "AggregationQuestions", "AdversarialQuestions", "NoisyQuestions")
	for _, method := range methods {
		row := make([]string, 0, len(dss))
		for _, ds := range dss {
			cell, err := e.Run(ctx, method, ModelGPT35, ds, DefaultSource(ds.Name))
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%5.1f (n=%d)", cell.Score, cell.N))
		}
		fmt.Fprintf(out, "%-8s %-20s %-20s %-22s %-18s\n", method, row[0], row[1], row[2], row[3])
	}
	return nil
}

// Table3 runs the multi-source generalisation experiment: GPT-3.5, CoT
// baseline vs Ours over both KG schemas on SimpleQuestions and
// NatureQuestions (the paper's Table III).
func Table3(ctx context.Context, e *Env, out io.Writer) error {
	fmt.Fprintln(out, "Table III — generalisation across KG sources (GPT-3.5)")
	fmt.Fprintf(out, "%-16s %-18s %-18s\n", "Method", "SimpleQuestions", "NatureQuestions")

	dsS, dsN := e.Suite.Simple, e.Suite.Nature
	cot := map[string]float64{}
	for _, ds := range []*qa.Dataset{dsS, dsN} {
		cell, err := e.Run(ctx, MethodCoT, ModelGPT35, ds, DefaultSource(ds.Name))
		if err != nil {
			return err
		}
		cot[ds.Name] = cell.Score
	}
	fmt.Fprintf(out, "%-16s %-18.1f %-18.1f\n", "CoT", cot[dsS.Name], cot[dsN.Name])

	for _, src := range []kg.Source{kg.SourceFreebase, kg.SourceWikidata} {
		scores := map[string]float64{}
		for _, ds := range []*qa.Dataset{dsS, dsN} {
			cell, err := e.Run(ctx, MethodOurs, ModelGPT35, ds, src)
			if err != nil {
				return err
			}
			scores[ds.Name] = cell.Score
		}
		fmt.Fprintf(out, "%-16s %-18.1f %-18.1f\n", "Ours/"+src.String(), scores[dsS.Name], scores[dsN.Name])
		fmt.Fprintf(out, "%-16s %+-18.1f %+-18.1f\n", "  gain vs CoT",
			scores[dsS.Name]-cot[dsS.Name], scores[dsN.Name]-cot[dsN.Name])
	}
	fmt.Fprintln(out, "(paper: CoT 22.0/23.2; Ours/Freebase 38.2/26.7; Ours/Wikidata 28.1/37.5)")
	return nil
}

// ablation runs the Gp/Gf reference ablation for one model (Tables IV, V).
func ablation(ctx context.Context, e *Env, out io.Writer, model, title, paperNote string) error {
	fmt.Fprintln(out, title)
	fmt.Fprintf(out, "%-12s %-12s %-18s\n", "Method", "QALD", "NatureQuestions")
	dss := []*qa.Dataset{e.Suite.QALD, e.Suite.Nature}
	rows := []struct {
		label  string
		method string
	}{
		{"CoT", MethodCoT},
		{"w/ Gp", MethodOursGp},
		{"w/ Gf", MethodOurs},
	}
	base := map[string]float64{}
	for _, r := range rows {
		scores := make([]float64, len(dss))
		for i, ds := range dss {
			cell, err := e.Run(ctx, r.method, model, ds, DefaultSource(ds.Name))
			if err != nil {
				return err
			}
			scores[i] = cell.Score
		}
		fmt.Fprintf(out, "%-12s %-12.1f %-18.1f\n", r.label, scores[0], scores[1])
		if r.method == MethodCoT {
			base["q"], base["n"] = scores[0], scores[1]
		} else {
			fmt.Fprintf(out, "%-12s %+-12.1f %+-18.1f\n", "  gain", scores[0]-base["q"], scores[1]-base["n"])
		}
	}
	fmt.Fprintln(out, paperNote)
	return nil
}

// Table4 is the GPT-3.5 ablation (paper Table IV).
func Table4(ctx context.Context, e *Env, out io.Writer) error {
	return ablation(ctx, e, out, ModelGPT35,
		"Table IV — GPT-3.5 with different references",
		"(paper: CoT 40.5/23.2; w/Gp 44.4/24.3; w/Gf 48.6/37.5)")
}

// Table5 is the GPT-4 ablation (paper Table V), including the expected
// small Gp regression on NatureQuestions.
func Table5(ctx context.Context, e *Env, out io.Writer) error {
	return ablation(ctx, e, out, ModelGPT4,
		"Table V — GPT-4 with different references",
		"(paper: CoT 48.9/27.7; w/Gp 53.9/24.4; w/Gf 56.5/39.2)")
}

// Fig2Result carries the structural-validity rates of the two generation
// routes.
type Fig2Result struct {
	N           int
	CypherValid float64
	DirectValid float64
}

// Fig2 measures pseudo-graph structural validity for the Cypher route vs
// direct triple generation (paper §III-A: ~98 % vs ~75 %), over the
// SimpleQuestions and QALD questions.
func Fig2(ctx context.Context, e *Env, out io.Writer) (Fig2Result, error) {
	model := e.Models[ModelGPT35]
	var questions []string
	for _, ds := range []*qa.Dataset{e.Suite.Simple, e.Suite.QALD} {
		for _, q := range ds.Questions {
			questions = append(questions, q.Text)
		}
	}
	cyOK, dirOK := 0, 0
	for _, q := range questions {
		resp, err := model.Complete(ctx, llm.Request{Prompt: prompts.PseudoGraph(q)})
		if err != nil {
			return Fig2Result{}, err
		}
		if validCypher(resp.Text) {
			cyOK++
		}
		resp, err = model.Complete(ctx, llm.Request{Prompt: prompts.DirectTriples(q)})
		if err != nil {
			return Fig2Result{}, err
		}
		if validDirect(resp.Text) {
			dirOK++
		}
	}
	res := Fig2Result{
		N:           len(questions),
		CypherValid: 100 * float64(cyOK) / float64(len(questions)),
		DirectValid: 100 * float64(dirOK) / float64(len(questions)),
	}
	fmt.Fprintln(out, "Fig. 2 / §III-A — pseudo-graph structural validity")
	fmt.Fprintf(out, "questions: %d\n", res.N)
	fmt.Fprintf(out, "Cypher-mediated generation: %5.1f%% valid (paper ~98%%)\n", res.CypherValid)
	fmt.Fprintf(out, "direct triple generation:   %5.1f%% valid (paper ~75%%)\n", res.DirectValid)
	return res, nil
}

// validCypher reports whether a Fig. 3 completion decodes to a non-empty
// pseudo-graph.
func validCypher(completion string) bool {
	return cypher.Validate(core.ExtractCypher(completion))
}

// validDirect reports whether a direct-triples completion parses entirely:
// every non-empty line must be a well-formed 3-field triple (the paper's
// validity criterion — one malformed line breaks downstream querying).
func validDirect(completion string) bool {
	lines := 0
	for _, line := range strings.Split(completion, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		lines++
		if _, err := kg.ParseTriple(line); err != nil {
			return false
		}
	}
	return lines > 0
}

// Table1 prints the qualitative capability matrix (paper Table I).
func Table1(out io.Writer) {
	fmt.Fprintln(out, "Table I — capability comparison")
	header := []string{"Method", "Train-free", "QID-free", "Rel-free", "Knowledge", "Multi-source", "Robustness", "Open-ended"}
	rows := [][]string{
		{"CoT", "yes", "yes", "yes", "no", "no", "no", "yes"},
		{"RAG", "yes", "yes", "yes", "yes", "no", "yes", "yes"},
		{"SQL-PALM", "no", "no", "yes", "yes", "no", "no", "no"},
		{"ToG", "yes", "no", "no", "yes", "yes", "no", "no"},
		{"KGR", "yes", "yes", "no", "yes", "no", "yes", "no"},
		{"Ours", "yes", "yes", "yes", "yes", "yes", "yes", "yes"},
	}
	for _, h := range header {
		fmt.Fprintf(out, "%-12s", h)
	}
	fmt.Fprintln(out)
	for _, r := range rows {
		for _, c := range r {
			fmt.Fprintf(out, "%-12s", c)
		}
		fmt.Fprintln(out)
	}
}

// Sweeps runs the design-choice ablations of DESIGN.md §5 at the current
// environment scale: confidence threshold, retrieval depth, pruning
// strategy and verification context order, all with GPT-3.5 + PG&AKV.
func Sweeps(ctx context.Context, e *Env, out io.Writer) error {
	fmt.Fprintln(out, "Ablation sweeps — GPT-3.5, PG&AKV")

	rebuild := func(mutate func(*EnvConfig)) (*Env, error) {
		cfg := e.Cfg
		mutate(&cfg)
		return NewEnv(cfg)
	}
	run := func(env *Env, ds *qa.Dataset) (float64, error) {
		cell, err := env.Run(ctx, MethodOurs, ModelGPT35, ds, DefaultSource(ds.Name))
		if err != nil {
			return 0, err
		}
		return cell.Score, nil
	}

	fmt.Fprintln(out, "\nconfidence threshold (QALD):")
	for _, th := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
		env, err := rebuild(func(c *EnvConfig) { c.Core.ConfidenceThreshold = th })
		if err != nil {
			return err
		}
		score, err := run(env, env.Suite.QALD)
		if err != nil {
			return err
		}
		marker := ""
		if th == e.Cfg.Core.ConfidenceThreshold {
			marker = "   <- paper setting"
		}
		fmt.Fprintf(out, "  threshold %.1f: %5.1f%s\n", th, score, marker)
	}

	fmt.Fprintln(out, "\nretrieval depth top-K (SimpleQuestions):")
	for _, k := range []int{3, 5, 10, 20} {
		env, err := rebuild(func(c *EnvConfig) { c.Core.TopK = k })
		if err != nil {
			return err
		}
		score, err := run(env, env.Suite.Simple)
		if err != nil {
			return err
		}
		marker := ""
		if k == 10 {
			marker = "   <- paper setting"
		}
		fmt.Fprintf(out, "  top-%-2d: %5.1f%s\n", k, score, marker)
	}

	fmt.Fprintln(out, "\npruning strategy (QALD):")
	for _, strat := range []core.PruneStrategy{core.PruneTwoStep, core.PruneCountOnly, core.PruneNone} {
		env, err := rebuild(func(c *EnvConfig) { c.Core.Prune = strat })
		if err != nil {
			return err
		}
		score, err := run(env, env.Suite.QALD)
		if err != nil {
			return err
		}
		marker := ""
		if strat == core.PruneTwoStep {
			marker = "   <- paper setting"
		}
		fmt.Fprintf(out, "  %-11s: %5.1f%s\n", strat, score, marker)
	}

	fmt.Fprintln(out, "\nverification context order (QALD):")
	for _, shuffled := range []bool{false, true} {
		env, err := rebuild(func(c *EnvConfig) { c.Core.ShuffleGoldOrder = shuffled })
		if err != nil {
			return err
		}
		score, err := run(env, env.Suite.QALD)
		if err != nil {
			return err
		}
		label, marker := "confidence-sorted", "   <- paper setting"
		if shuffled {
			label, marker = "shuffled", ""
		}
		fmt.Fprintf(out, "  %-18s: %5.1f%s\n", label, score, marker)
	}
	return nil
}
