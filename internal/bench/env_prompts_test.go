package bench

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/answer"
	"repro/internal/kg"
	"repro/internal/serve"
)

// TestPromptSwapInvalidatesCache is the hot-reload-under-traffic
// regression: activating a different prompt version between two runs of
// the same traffic must never serve an answer cached under the old
// version. The cache scope embeds the registry fingerprint, so the proof
// is in the hit/miss deltas — after the swap every request misses, and
// restoring the original version makes the original entries valid again
// (same prompt set, same answers — that is keying, not flat flushing).
func TestPromptSwapInvalidatesCache(t *testing.T) {
	cfg := QuickEnvConfig()
	cfg.Data.SimpleN = 6
	cfg.Data.QALDN = 2
	cfg.Data.NatureN = 2
	cfg.Cache = serve.CacheConfig{Size: 256, TTL: time.Hour}
	env, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	ctx := context.Background()
	n := int64(len(env.Suite.Simple.Questions))

	// Cold traffic fills the cache under the v1 fingerprint.
	cold, err := env.Run(ctx, MethodOurs, ModelGPT35, env.Suite.Simple, kg.SourceWikidata)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := env.Cache.Stats().Hits, env.Cache.Stats().Misses
	if misses < n {
		t.Fatalf("cold run missed %d times, want >= %d", misses, n)
	}

	// Same traffic again: all served from cache.
	if _, err := env.Run(ctx, MethodOurs, ModelGPT35, env.Suite.Simple, kg.SourceWikidata); err != nil {
		t.Fatal(err)
	}
	if got := env.Cache.Stats().Hits - hits; got != n {
		t.Fatalf("warm run hit %d times, want %d", got, n)
	}

	// Hot swap: activate answer-graph v2 mid-flight.
	if err := env.Prompts.SetActive("answer-graph", 2); err != nil {
		t.Fatal(err)
	}
	hits, misses = env.Cache.Stats().Hits, env.Cache.Stats().Misses
	if _, err := env.Run(ctx, MethodOurs, ModelGPT35, env.Suite.Simple, kg.SourceWikidata); err != nil {
		t.Fatal(err)
	}
	s := env.Cache.Stats()
	if s.Hits != hits {
		t.Fatalf("prompt swap served %d stale cached answers", s.Hits-hits)
	}
	if got := s.Misses - misses; got != n {
		t.Fatalf("post-swap run missed %d times, want %d", got, n)
	}

	// Restoring v1 restores the original fingerprint: the entries the cold
	// run wrote are live again, proving invalidation is by scope key and
	// not by guesswork.
	if err := env.Prompts.SetActive("answer-graph", 1); err != nil {
		t.Fatal(err)
	}
	hits = env.Cache.Stats().Hits
	restored, err := env.Run(ctx, MethodOurs, ModelGPT35, env.Suite.Simple, kg.SourceWikidata)
	if err != nil {
		t.Fatal(err)
	}
	if got := env.Cache.Stats().Hits - hits; got != n {
		t.Fatalf("restored version hit %d times, want %d", got, n)
	}
	if restored.Score != cold.Score {
		t.Fatalf("restored version changed the score: %v -> %v", cold.Score, restored.Score)
	}
}

// TestPromptSwapUnderConcurrentTraffic hammers one cached answerer from
// many goroutines while another goroutine flips the active answer-graph
// version, then checks the invariant that survives the race: after the
// dust settles on a final version, a full pass over the questions misses
// at most once per question — nothing keyed under the loser of a flip is
// ever served to the winner. Run under -race this also proves the
// registry swap itself is safe under load.
func TestPromptSwapUnderConcurrentTraffic(t *testing.T) {
	cfg := QuickEnvConfig()
	cfg.Data.SimpleN = 6
	cfg.Data.QALDN = 2
	cfg.Data.NatureN = 2
	cfg.Cache = serve.CacheConfig{Size: 256, TTL: time.Hour}
	env, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	ans, err := env.Answerer(MethodOurs, ModelGPT35, kg.SourceWikidata)
	if err != nil {
		t.Fatal(err)
	}
	questions := env.Suite.Simple.Questions
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3*len(questions); i++ {
				q := questions[(g+i)%len(questions)]
				if _, err := ans.Answer(ctx, answer.Query{Text: q.Text}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := 0; v < 6; v++ {
			if err := env.Prompts.SetActive("answer-graph", 1+v%2); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Settle on v2 and measure one clean pass.
	if err := env.Prompts.SetActive("answer-graph", 2); err != nil {
		t.Fatal(err)
	}
	before := env.Cache.Stats()
	for _, q := range questions {
		if _, err := ans.Answer(ctx, answer.Query{Text: q.Text}); err != nil {
			t.Fatal(err)
		}
	}
	after := env.Cache.Stats()
	if gotMiss := after.Misses - before.Misses; gotMiss > int64(len(questions)) {
		t.Fatalf("settled pass missed %d times over %d questions", gotMiss, len(questions))
	}
	if total := (after.Misses - before.Misses) + (after.Hits - before.Hits); total != int64(len(questions)) {
		t.Fatalf("settled pass accounted %d lookups over %d questions", total, len(questions))
	}
}
