package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestReportCollectAndWrite(t *testing.T) {
	env := tinyEnv(t)
	r := &Report{Title: "smoke"}
	if err := r.Collect(context.Background(), env, MethodCoT, ModelGPT35, "SimpleQuestions"); err != nil {
		t.Fatal(err)
	}
	if err := r.Collect(context.Background(), env, MethodCoT, ModelGPT35, "NatureQuestions", "freebase"); err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 2 {
		t.Fatalf("cells = %d", len(r.Cells))
	}
	if r.Cells[1].Source.String() != "freebase" {
		t.Errorf("source override ignored: %v", r.Cells[1].Source)
	}

	var csvBuf bytes.Buffer
	if err := r.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "method,") {
		t.Errorf("csv output:\n%s", csvBuf.String())
	}

	var jsonBuf bytes.Buffer
	if err := r.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(jsonBuf.Bytes(), &doc); err != nil {
		t.Fatalf("json output invalid: %v", err)
	}
	if doc["title"] != "smoke" {
		t.Errorf("title = %v", doc["title"])
	}
}

func TestReportCollectErrors(t *testing.T) {
	env := tinyEnv(t)
	r := &Report{}
	if err := r.Collect(context.Background(), env, MethodCoT, ModelGPT35, "NoSuchDataset"); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := r.Collect(context.Background(), env, MethodCoT, ModelGPT35, "QALD", "marsbase"); err == nil {
		t.Error("unknown source accepted")
	}
}
