package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

func TestBuildPerfArtifact(t *testing.T) {
	env := tinyEnv(t)
	r := &Report{Title: "table2"}
	if err := r.Collect(context.Background(), env, MethodIO, ModelGPT35, "QALD"); err != nil {
		t.Fatal(err)
	}
	if err := r.Collect(context.Background(), env, MethodCoT, ModelGPT35, "QALD"); err != nil {
		t.Fatal(err)
	}

	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	art := BuildPerf(env, r, true, now)
	if art.GeneratedAt != "2026-08-08T12:00:00Z" || !art.Quick || art.Seed != env.Cfg.WorldSeed {
		t.Fatalf("header wrong: %+v", art)
	}
	if len(art.Cells) != 2 {
		t.Fatalf("want 2 cells, got %d", len(art.Cells))
	}
	for _, c := range art.Cells {
		if c.N == 0 || c.Dataset != "QALD" || c.Source != "wikidata" {
			t.Errorf("cell wrong: %+v", c)
		}
	}
	// The serving aggregates cover both methods that answered, with token
	// cost and latency filled in.
	methods := map[string]PerfMethod{}
	for _, m := range art.Serving {
		methods[m.Method] = m
	}
	for _, name := range []string{"io", "cot"} {
		m, ok := methods[name]
		if !ok {
			t.Fatalf("serving aggregate missing %q: %+v", name, art.Serving)
		}
		if m.Count == 0 || m.LLMCalls == 0 || m.PromptTokens == 0 {
			t.Errorf("%s: usage not accounted: %+v", name, m)
		}
		if m.P95MS < m.P50MS {
			t.Errorf("%s: latency percentiles disordered: %+v", name, m)
		}
	}

	// Write emits parseable JSON that round-trips the shape.
	var buf bytes.Buffer
	if err := art.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var back PerfArtifact
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("artifact not parseable: %v", err)
	}
	if len(back.Cells) != 2 || len(back.Serving) != len(art.Serving) {
		t.Fatalf("round trip diverged: %+v", back)
	}
}
