// Package bench is the experiment harness: it assembles the full
// environment (world, KG stores in both schemas, vector indexes, simulated
// models, datasets) and regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §4 for the experiment index).
package bench

import (
	"fmt"
	"sync"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/embed"
	"repro/internal/kg"
	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/qa"
	"repro/internal/vecstore"
	"repro/internal/world"
)

// Model identifiers used throughout the harness.
const (
	ModelGPT35 = "GPT-3.5"
	ModelGPT4  = "GPT-4"
)

// Method identifiers.
const (
	MethodToG    = "ToG"
	MethodIO     = "IO"
	MethodCoT    = "CoT"
	MethodSC     = "SC"
	MethodRAG    = "RAG"
	MethodOurs   = "Ours"
	MethodOursGp = "Ours-Gp" // ablation: answer from the raw pseudo-graph
)

// EnvConfig sizes the environment.
type EnvConfig struct {
	WorldSeed int64
	World     world.Config
	Data      datasets.Config
	Core      core.Config
	// Workers is the per-cell evaluation parallelism.
	Workers int
}

// DefaultEnvConfig returns the paper-scale environment.
func DefaultEnvConfig() EnvConfig {
	return EnvConfig{
		WorldSeed: 42,
		World:     world.DefaultConfig(),
		Data:      datasets.DefaultConfig(),
		Core:      core.DefaultConfig(),
		Workers:   8,
	}
}

// QuickEnvConfig returns a small environment for unit tests.
func QuickEnvConfig() EnvConfig {
	wc := world.DefaultConfig()
	wc.People = 150
	wc.Cities = 60
	wc.Works = 100
	wc.Companies = 40
	wc.Universities = 25
	cfg := DefaultEnvConfig()
	cfg.World = wc
	cfg.Data = datasets.Config{Seed: 7, SimpleN: 60, QALDN: 40, NatureN: 20}
	return cfg
}

// Env is the assembled experiment environment.
type Env struct {
	Cfg     EnvConfig
	World   *world.World
	Suite   *datasets.Suite
	Enc     *embed.Encoder
	Stores  map[kg.Source]*kg.Store
	Indexes map[kg.Source]*vecstore.Index
	Models  map[string]*llm.SimLM

	pipeMu    sync.Mutex
	pipelines map[string]*core.Pipeline
}

// NewEnv builds the environment deterministically.
func NewEnv(cfg EnvConfig) (*Env, error) {
	cfg.World.Seed = cfg.WorldSeed
	w, err := world.Generate(cfg.World)
	if err != nil {
		return nil, fmt.Errorf("bench: world: %w", err)
	}
	suite, err := datasets.Build(w, cfg.Data)
	if err != nil {
		return nil, fmt.Errorf("bench: datasets: %w", err)
	}
	enc := embed.NewEncoder()
	stores := map[kg.Source]*kg.Store{
		kg.SourceWikidata: world.WikidataSchema().Render(w),
		kg.SourceFreebase: world.FreebaseSchema().Render(w),
	}
	indexes := map[kg.Source]*vecstore.Index{}
	for src, st := range stores {
		indexes[src] = vecstore.Build(enc, st)
	}
	models := map[string]*llm.SimLM{
		ModelGPT35: llm.NewSim(w, llm.GPT35Params(), cfg.WorldSeed),
		ModelGPT4:  llm.NewSim(w, llm.GPT4Params(), cfg.WorldSeed),
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	return &Env{
		Cfg:       cfg,
		World:     w,
		Suite:     suite,
		Enc:       enc,
		Stores:    stores,
		Indexes:   indexes,
		Models:    models,
		pipelines: map[string]*core.Pipeline{},
	}, nil
}

// Pipeline returns (building on demand) the PG&AKV pipeline for a model
// and KG source.
func (e *Env) Pipeline(model string, src kg.Source) (*core.Pipeline, error) {
	key := model + "/" + src.String()
	e.pipeMu.Lock()
	defer e.pipeMu.Unlock()
	if p, ok := e.pipelines[key]; ok {
		return p, nil
	}
	m, ok := e.Models[model]
	if !ok {
		return nil, fmt.Errorf("bench: unknown model %q", model)
	}
	p, err := core.New(m, e.Stores[src], e.Indexes[src], e.Cfg.Core)
	if err != nil {
		return nil, err
	}
	e.pipelines[key] = p
	return p, nil
}

// Cell is one (method, model, dataset, source) evaluation result.
type Cell struct {
	Method  string
	Model   string
	Dataset string
	Source  kg.Source
	// Score is Hit@1 or ROUGE-L-f1 as a percentage.
	Score float64
	N     int
}

// answerOne produces one method's answer for one question.
func (e *Env) answerOne(method, model string, q qa.Question, src kg.Source) (string, error) {
	m := e.Models[model]
	switch method {
	case MethodIO:
		return baselines.IO(m, q.Text)
	case MethodCoT:
		return baselines.CoT(m, q.Text)
	case MethodSC:
		return baselines.SC(m, q.Text, q.Open(), baselines.DefaultSCConfig())
	case MethodRAG:
		return baselines.RAG(m, e.Indexes[src], q.Text, baselines.DefaultRAGConfig())
	case MethodToG:
		anchors := []string{q.Intent.Subject}
		if q.Intent.Subject2 != "" {
			anchors = append(anchors, q.Intent.Subject2)
		}
		return baselines.ToG(m, e.Stores[src], e.Enc, q.Text, anchors, baselines.DefaultToGConfig())
	case MethodOurs:
		p, err := e.Pipeline(model, src)
		if err != nil {
			return "", err
		}
		res, err := p.Answer(q.Text)
		if err != nil {
			return "", err
		}
		return res.Answer, nil
	case MethodOursGp:
		p, err := e.Pipeline(model, src)
		if err != nil {
			return "", err
		}
		gp, err := p.GeneratePseudoGraph(q.Text, nil)
		if err != nil {
			return "", err
		}
		return p.AnswerFromGraph(q.Text, gp, nil)
	default:
		return "", fmt.Errorf("bench: unknown method %q", method)
	}
}

// score evaluates one answer against the question's gold material.
func score(q qa.Question, answer string) float64 {
	if q.Open() {
		return metrics.RougeLMulti(answer, q.Refs)
	}
	return metrics.Hit1(answer, q.Golds)
}

// Run evaluates a method×model over a dataset against the given KG source
// and returns the aggregate cell.
func (e *Env) Run(method, model string, ds *qa.Dataset, src kg.Source) (Cell, error) {
	type job struct {
		i int
		q qa.Question
	}
	scores := make([]float64, len(ds.Questions))
	errs := make([]error, len(ds.Questions))
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < e.Cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				ans, err := e.answerOne(method, model, j.q, src)
				if err != nil {
					errs[j.i] = err
					continue
				}
				scores[j.i] = score(j.q, ans)
			}
		}()
	}
	for i, q := range ds.Questions {
		jobs <- job{i, q}
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Cell{}, fmt.Errorf("bench: %s/%s on %s: %w", method, model, ds.Name, err)
		}
	}
	return Cell{
		Method:  method,
		Model:   model,
		Dataset: ds.Name,
		Source:  src,
		Score:   metrics.Mean(scores) * 100,
		N:       len(scores),
	}, nil
}

// DefaultSource returns the KG source a dataset is evaluated against by
// default: SimpleQuestions is Freebase-based in the paper, the others use
// Wikidata.
func DefaultSource(datasetName string) kg.Source {
	if datasetName == "SimpleQuestions" {
		return kg.SourceFreebase
	}
	return kg.SourceWikidata
}
