// Package bench is the experiment harness: it assembles the full
// environment (world, KG stores in both schemas, vector indexes, simulated
// models, datasets) and regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §4 for the experiment index).
//
// Method execution goes through the unified answer registry: every cell is
// an answer.Batch over the dataset with the harness's worker budget, so
// the bench exercises exactly the surface production callers use.
package bench

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/answer"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/embed"
	"repro/internal/kg"
	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/prompts"
	"repro/internal/qa"
	"repro/internal/serve"
	"repro/internal/substrate"
	"repro/internal/trace"
	"repro/internal/vecstore"
	"repro/internal/world"
)

// Model identifiers used throughout the harness.
const (
	ModelGPT35 = "GPT-3.5"
	ModelGPT4  = "GPT-4"
)

// Method identifiers: the registry names of internal/answer, capitalised
// as the paper's tables print them (answer.New is case-insensitive).
const (
	MethodToG    = "ToG"
	MethodIO     = "IO"
	MethodCoT    = "CoT"
	MethodSC     = "SC"
	MethodRAG    = "RAG"
	MethodOurs   = "Ours"
	MethodOursGp = "Ours-Gp" // ablation: answer from the raw pseudo-graph
)

// EnvConfig sizes the environment.
type EnvConfig struct {
	WorldSeed int64
	World     world.Config
	Data      datasets.Config
	Core      core.Config
	// Workers is the per-cell evaluation parallelism (answer.Batch
	// concurrency).
	Workers int
	// Cache configures the serving-layer answer cache every Answerer is
	// wrapped with; Size <= 0 (the default) leaves caching off so
	// experiment cells always measure real pipeline runs.
	Cache serve.CacheConfig
	// Substrate sizes the live substrate managers (vector-index shard
	// size, auto-compaction threshold); the zero value uses the package
	// defaults with auto-compaction off.
	Substrate substrate.Config
	// LLMConcurrency bounds in-flight LLM calls across the whole
	// environment with the shared scheduler (interactive traffic preempts
	// batch work when saturated); <= 0 leaves admission unbounded — bench
	// cells then measure raw method cost, not queueing.
	LLMConcurrency int
	// Trace, when set, records every request that flows through an
	// Answerer — bench cells and serving traffic alike — into the store
	// (question, answer, usage, stage spans, substrate epoch, cache-hit
	// flag). nil leaves tracing off.
	Trace trace.Store
	// Prompts is the versioned prompt registry every answerer renders
	// from; nil gives the environment its own registry over the embedded
	// defaults. The active version set's fingerprint joins the cache/
	// singleflight scope exactly like the substrate epoch, so a hot
	// reload that changes any prompt invalidates cached answers.
	Prompts *prompts.Registry
}

// DefaultEnvConfig returns the paper-scale environment.
func DefaultEnvConfig() EnvConfig {
	return EnvConfig{
		WorldSeed: 42,
		World:     world.DefaultConfig(),
		Data:      datasets.DefaultConfig(),
		Core:      core.DefaultConfig(),
		Workers:   8,
	}
}

// QuickEnvConfig returns a small environment for unit tests.
func QuickEnvConfig() EnvConfig {
	wc := world.DefaultConfig()
	wc.People = 150
	wc.Cities = 60
	wc.Works = 100
	wc.Companies = 40
	wc.Universities = 25
	cfg := DefaultEnvConfig()
	cfg.World = wc
	cfg.Data = datasets.Config{Seed: 7, SimpleN: 60, QALDN: 40, NatureN: 20,
		TemporalN: 12, AggregationN: 12, AdversarialN: 8, NoisyN: 12}
	return cfg
}

// Env is the assembled experiment environment.
type Env struct {
	Cfg   EnvConfig
	World *world.World
	Suite *datasets.Suite
	Enc   *embed.Encoder
	// Stores holds the boot-time base store per source. Live state —
	// ingested triples, compacted bases — lives in Substrates; tools that
	// only inspect the seeded KG keep using Stores.
	Stores map[kg.Source]*kg.Store
	// Indexes holds each source's boot-snapshot sharded index (a
	// consistent view of Stores). Like Stores, it does not follow ingests.
	Indexes map[kg.Source]vecstore.Searcher
	// Substrates owns the live snapshot chain per source: every Answerer
	// resolves its (store, index) through these, so ingests and hot swaps
	// are visible to serving traffic immediately.
	Substrates map[kg.Source]*substrate.Manager
	Models     map[string]*llm.SimLM
	// Scheduler is the shared LLM admission controller (nil when
	// LLMConcurrency is unbounded); Clients are the per-model serving
	// clients every pipeline and answerer routes Complete through — the
	// sim models wrapped by the scheduler when one is configured.
	Scheduler *llm.Scheduler
	Clients   map[string]llm.Client

	// Cache is the shared answer cache (nil when EnvConfig.Cache is off);
	// Metrics collects per-method serving metrics for every request that
	// goes through Answerer, bench cells included.
	Cache   *serve.Cache
	Metrics *serve.Collector
	// Prompts is the environment's versioned prompt registry (never nil
	// after NewEnv); hot reloads and A/B pins go through it.
	Prompts *prompts.Registry

	pipeMu    sync.Mutex
	pipelines map[string]cachedPipeline

	ansMu     sync.Mutex
	answerers map[string]answer.Answerer
	flights   *serve.Group
}

// NewEnv builds the environment deterministically.
func NewEnv(cfg EnvConfig) (*Env, error) {
	cfg.World.Seed = cfg.WorldSeed
	w, err := world.Generate(cfg.World)
	if err != nil {
		return nil, fmt.Errorf("bench: world: %w", err)
	}
	suite, err := datasets.Build(w, cfg.Data)
	if err != nil {
		return nil, fmt.Errorf("bench: datasets: %w", err)
	}
	enc := embed.NewEncoder()
	stores := map[kg.Source]*kg.Store{
		kg.SourceWikidata: world.WikidataSchema().Render(w),
		kg.SourceFreebase: world.FreebaseSchema().Render(w),
	}
	substrates := map[kg.Source]*substrate.Manager{}
	indexes := map[kg.Source]vecstore.Searcher{}
	for src, st := range stores {
		// Recover is NewManager when EnvConfig.Substrate.Durability is off
		// (the default); with a data dir set it restores checkpoint + WAL
		// state from a previous run before serving.
		mgr, err := substrate.Recover(enc, st, cfg.Substrate)
		if err != nil {
			return nil, fmt.Errorf("bench: substrate %s: %w", src, err)
		}
		substrates[src] = mgr
		indexes[src] = mgr.Current().Index
	}
	models := map[string]*llm.SimLM{
		ModelGPT35: llm.NewSim(w, llm.GPT35Params(), cfg.WorldSeed),
		ModelGPT4:  llm.NewSim(w, llm.GPT4Params(), cfg.WorldSeed),
	}
	var sched *llm.Scheduler
	if cfg.LLMConcurrency > 0 {
		sched = llm.NewScheduler(llm.SchedulerConfig{Concurrency: cfg.LLMConcurrency})
	}
	clients := make(map[string]llm.Client, len(models))
	for name, m := range models {
		clients[name] = sched.Wrap(m) // nil scheduler wraps to the model itself
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Core.Memo == nil {
		// One embedding memo for the whole environment: text -> vector is
		// encoder-level, so every pipeline and answerer across models and
		// KG sources can share it.
		cfg.Core.Memo = core.NewMemo(enc, 0)
	}
	if cfg.Core.HedgeBudget > 0 && cfg.Core.HedgeCounters == nil {
		// One hedge counter set for the whole environment, mirroring the
		// Memo: every pipeline across models and sources reports into it,
		// so /v1/metrics sees process-wide tail-latency hedging.
		cfg.Core.HedgeCounters = core.NewHedge()
	}
	if cfg.Prompts == nil {
		cfg.Prompts = prompts.NewRegistry()
	}
	cfg.Core.Prompts = cfg.Prompts
	return &Env{
		Cfg:        cfg,
		World:      w,
		Suite:      suite,
		Enc:        enc,
		Stores:     stores,
		Indexes:    indexes,
		Substrates: substrates,
		Models:     models,
		Scheduler:  sched,
		Clients:    clients,
		Cache:      serve.NewCache(cfg.Cache), // nil when Size <= 0
		Metrics:    serve.NewCollector(),
		Prompts:    cfg.Prompts,
		pipelines:  map[string]cachedPipeline{},
		answerers:  map[string]answer.Answerer{},
		flights:    serve.NewGroup(),
	}, nil
}

// Pipeline returns (building on demand) the PG&AKV pipeline for a model
// and KG source — the trace-level entry point for tools that inspect
// intermediate artefacts (cmd/failures, the micro-benchmarks). The
// pipeline is bound to the substrate's current snapshot: a pipeline
// requested after an ingest or compaction is rebuilt over the fresh view
// (replacing the cached one, so the map stays bounded at one entry per
// model/source) while in-flight holders keep their consistent snapshot.
func (e *Env) Pipeline(model string, src kg.Source) (*core.Pipeline, error) {
	mgr, ok := e.Substrates[src]
	if !ok {
		return nil, fmt.Errorf("bench: no substrate for source %q", src)
	}
	key := model + "/" + src.String()
	e.pipeMu.Lock()
	defer e.pipeMu.Unlock()
	// Load the snapshot under pipeMu so a swap between the epoch check
	// and the cache write cannot replace a newer cached pipeline with one
	// built over an older snapshot.
	snap := mgr.Current()
	if c, ok := e.pipelines[key]; ok && c.epoch == snap.Epoch {
		return c.pipeline, nil
	}
	m, ok := e.Clients[model]
	if !ok {
		return nil, fmt.Errorf("bench: unknown model %q", model)
	}
	p, err := core.New(m, snap.Store, snap.Index, e.Cfg.Core)
	if err != nil {
		return nil, err
	}
	e.pipelines[key] = cachedPipeline{epoch: snap.Epoch, pipeline: p}
	return p, nil
}

// Answerer returns (building and caching on demand) the registry method
// bound to this environment's substrates for a model and KG source,
// wrapped in the serving middleware stack: metrics always, then the
// answer cache and singleflight dedup when EnvConfig.Cache enables them.
func (e *Env) Answerer(method, model string, src kg.Source) (answer.Answerer, error) {
	key := strings.ToLower(method) + "/" + model + "/" + src.String()
	e.ansMu.Lock()
	defer e.ansMu.Unlock()
	if a, ok := e.answerers[key]; ok {
		return a, nil
	}
	m, ok := e.Clients[model]
	if !ok {
		return nil, fmt.Errorf("bench: unknown model %q", model)
	}
	mgr, ok := e.Substrates[src]
	if !ok {
		// Guard before the Deps assignment: a nil *substrate.Manager in
		// the Substrate interface field would be non-nil to the registry's
		// validation and panic at first Resolve.
		return nil, fmt.Errorf("bench: no substrate for source %q", src)
	}
	a, err := answer.New(method, answer.Deps{
		Client:    m,
		Substrate: mgr,
		Encoder:   e.Enc,
		Prompts:   e.Prompts,
	}, answer.WithCoreConfig(e.Cfg.Core), answer.WithModelLabel(model))
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	// The cache and singleflight group are shared across every answerer
	// this environment hands out; the (model, source, epoch, prompt-set)
	// scope keeps identical questions against different substrates from
	// colliding and makes every hot swap — of the substrate or of the
	// active prompt versions — an implicit cache invalidation: entries
	// keyed under an older epoch or prompt fingerprint can never be
	// served again.
	prefix := model + "/" + src.String() + "@"
	scope := func() string {
		return prefix + strconv.FormatUint(mgr.Epoch(), 10) + "#" + e.Prompts.Fingerprint()
	}
	mws := []serve.Middleware{serve.WithMetrics(e.Metrics)}
	if e.Cfg.Trace != nil {
		// Outside the cache and singleflight so each record captures what
		// the stack did with the request (hit, shared) plus the epoch.
		mws = append(mws, serve.WithTrace(e.Cfg.Trace, src.String()))
	}
	if e.Cache != nil {
		mws = append(mws, serve.WithCache(e.Cache, scope), serve.WithSingleflight(e.flights, scope))
	}
	a = serve.Stack(a, mws...)
	e.answerers[key] = a
	return a, nil
}

// Close shuts the environment's substrate managers down: background
// fsync/checkpoint loops stop and WALs are flushed and closed. Only
// meaningful for durable environments, but always safe to call.
func (e *Env) Close() error {
	var first error
	for _, mgr := range e.Substrates {
		if err := mgr.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SubstrateStats reports each source's live substrate summary.
func (e *Env) SubstrateStats() map[string]substrate.Stats {
	out := make(map[string]substrate.Stats, len(e.Substrates))
	for src, mgr := range e.Substrates {
		out[src.String()] = mgr.Stats()
	}
	return out
}

// cachedPipeline is one Pipeline entry pinned to the snapshot epoch it
// was built over.
type cachedPipeline struct {
	epoch    uint64
	pipeline *core.Pipeline
}

// DedupStats reports the environment's singleflight counters.
func (e *Env) DedupStats() serve.GroupStats { return e.flights.Stats() }

// SchedulerStats reports the shared LLM scheduler's depth/wait counters
// (zeros when admission is unbounded).
func (e *Env) SchedulerStats() llm.SchedulerStats { return e.Scheduler.Stats() }

// TraceStats reports the configured trace store's counters (zeros when
// tracing is off).
func (e *Env) TraceStats() trace.StoreStats {
	if e.Cfg.Trace == nil {
		return trace.StoreStats{}
	}
	return e.Cfg.Trace.Stats()
}

// MemoStats reports the environment-wide embedding memo counters.
func (e *Env) MemoStats() core.MemoStats { return e.Cfg.Core.Memo.Stats() }

// HedgeStats reports the environment-wide hedged-retrieval counters
// (zeros when Core.HedgeBudget is unset).
func (e *Env) HedgeStats() core.HedgeStats { return e.Cfg.Core.HedgeCounters.Stats() }

// Cell is one (method, model, dataset, source) evaluation result.
type Cell struct {
	Method  string
	Model   string
	Dataset string
	Source  kg.Source
	// Score is Hit@1 or ROUGE-L-f1 as a percentage.
	Score float64
	N     int
}

// query maps a dataset question onto the unified request shape.
func query(method, model string, q qa.Question) answer.Query {
	anchors := []string{q.Intent.Subject}
	if q.Intent.Subject2 != "" {
		anchors = append(anchors, q.Intent.Subject2)
	}
	return answer.Query{
		Text:    q.Text,
		Method:  method,
		Model:   model,
		Open:    q.Open(),
		Anchors: anchors,
	}
}

// score evaluates one answer against the question's gold material.
func score(q qa.Question, answer string) float64 {
	if q.Open() {
		return metrics.RougeLMulti(answer, q.Refs)
	}
	return metrics.Hit1(answer, q.Golds)
}

// Run evaluates a method×model over a dataset against the given KG source
// and returns the aggregate cell. The context bounds the whole cell:
// cancellation aborts in-flight questions and skips the rest.
func (e *Env) Run(ctx context.Context, method, model string, ds *qa.Dataset, src kg.Source) (Cell, error) {
	ans, err := e.Answerer(method, model, src)
	if err != nil {
		return Cell{}, err
	}
	queries := make([]answer.Query, len(ds.Questions))
	for i, q := range ds.Questions {
		queries[i] = query(method, model, q)
	}
	items := answer.Batch(ctx, ans, queries, answer.Concurrency(e.Cfg.Workers))
	if err := answer.FirstError(items); err != nil {
		return Cell{}, fmt.Errorf("bench: %s/%s on %s: %w", method, model, ds.Name, err)
	}
	scores := make([]float64, len(items))
	for i, item := range items {
		scores[i] = score(ds.Questions[i], item.Result.Answer)
	}
	return Cell{
		Method:  method,
		Model:   model,
		Dataset: ds.Name,
		Source:  src,
		Score:   metrics.Mean(scores) * 100,
		N:       len(scores),
	}, nil
}

// DefaultSource returns the KG source a dataset is evaluated against by
// default: SimpleQuestions is Freebase-based in the paper, the others use
// Wikidata.
func DefaultSource(datasetName string) kg.Source {
	if datasetName == "SimpleQuestions" {
		return kg.SourceFreebase
	}
	return kg.SourceWikidata
}
