package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/kg"
)

// tinyEnv builds the smallest workable environment for harness tests.
func tinyEnv(t testing.TB) *Env {
	t.Helper()
	cfg := QuickEnvConfig()
	cfg.Data.SimpleN = 20
	cfg.Data.QALDN = 12
	cfg.Data.NatureN = 8
	env, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestNewEnv(t *testing.T) {
	env := tinyEnv(t)
	if env.World == nil || env.Suite == nil {
		t.Fatal("env incomplete")
	}
	if len(env.Stores) != 2 || len(env.Indexes) != 2 || len(env.Models) != 2 {
		t.Fatalf("env components: %d stores %d indexes %d models",
			len(env.Stores), len(env.Indexes), len(env.Models))
	}
}

func TestPipelineCache(t *testing.T) {
	env := tinyEnv(t)
	a, err := env.Pipeline(ModelGPT35, kg.SourceWikidata)
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.Pipeline(ModelGPT35, kg.SourceWikidata)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("pipeline not cached")
	}
	if _, err := env.Pipeline("no-such-model", kg.SourceWikidata); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestRunAllMethods(t *testing.T) {
	env := tinyEnv(t)
	ds := env.Suite.Simple
	src := DefaultSource(ds.Name)
	for _, method := range []string{MethodIO, MethodCoT, MethodSC, MethodRAG, MethodToG, MethodOurs, MethodOursGp} {
		cell, err := env.Run(context.Background(), method, ModelGPT35, ds, src)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if cell.N != len(ds.Questions) {
			t.Errorf("%s: N = %d", method, cell.N)
		}
		if cell.Score < 0 || cell.Score > 100 {
			t.Errorf("%s: score = %v", method, cell.Score)
		}
	}
	if _, err := env.Run(context.Background(), "bogus", ModelGPT35, ds, src); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	env := tinyEnv(t)
	ds := env.Suite.QALD
	a, err := env.Run(context.Background(), MethodOurs, ModelGPT4, ds, DefaultSource(ds.Name))
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.Run(context.Background(), MethodOurs, ModelGPT4, ds, DefaultSource(ds.Name))
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != b.Score {
		t.Errorf("Run not deterministic: %v vs %v", a.Score, b.Score)
	}
}

func TestDefaultSource(t *testing.T) {
	if DefaultSource("SimpleQuestions") != kg.SourceFreebase {
		t.Error("SimpleQuestions should default to Freebase")
	}
	if DefaultSource("QALD") != kg.SourceWikidata {
		t.Error("QALD should default to Wikidata")
	}
	if DefaultSource("NatureQuestions") != kg.SourceWikidata {
		t.Error("NatureQuestions should default to Wikidata")
	}
}

func TestTable1Output(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	out := buf.String()
	for _, want := range []string{"CoT", "ToG", "KGR", "Ours", "Multi-source"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output lacks %q", want)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	env := tinyEnv(t)
	var buf bytes.Buffer
	res, err := Fig2(context.Background(), env, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != len(env.Suite.Simple.Questions)+len(env.Suite.QALD.Questions) {
		t.Errorf("Fig2 N = %d", res.N)
	}
	if res.CypherValid < 90 {
		t.Errorf("Cypher validity %.1f, want >= 90", res.CypherValid)
	}
	if res.DirectValid >= res.CypherValid {
		t.Errorf("direct validity %.1f should be below Cypher %.1f",
			res.DirectValid, res.CypherValid)
	}
}

// TestHeadlineOrderings is the integration test of the reproduction: on a
// small environment, the paper's core claims must hold as orderings.
func TestHeadlineOrderings(t *testing.T) {
	if testing.Short() {
		t.Skip("integration ordering test")
	}
	env, err := NewEnv(QuickEnvConfig())
	if err != nil {
		t.Fatal(err)
	}
	score := func(method, model string, ds string) float64 {
		var d = env.Suite.Simple
		switch ds {
		case "qald":
			d = env.Suite.QALD
		case "nature":
			d = env.Suite.Nature
		}
		cell, err := env.Run(context.Background(), method, model, d, DefaultSource(d.Name))
		if err != nil {
			t.Fatal(err)
		}
		return cell.Score
	}
	for _, model := range []string{ModelGPT35, ModelGPT4} {
		// Claim 1: Ours beats the self-enhancement baselines everywhere.
		for _, ds := range []string{"simple", "qald", "nature"} {
			ours := score(MethodOurs, model, ds)
			for _, base := range []string{MethodIO, MethodCoT, MethodSC} {
				if b := score(base, model, ds); ours <= b {
					t.Errorf("%s/%s: Ours (%.1f) should beat %s (%.1f)", model, ds, ours, base, b)
				}
			}
		}
		// Claim 2: RAG collapses below IO on multi-hop QALD.
		if rag, io := score(MethodRAG, model, "qald"), score(MethodIO, model, "qald"); rag >= io {
			t.Errorf("%s: RAG on QALD (%.1f) should fall below IO (%.1f)", model, rag, io)
		}
		// Claim 3: the abstract's open-ended headline — Ours beats the CoT
		// baseline by a wide ROUGE margin (paper: at least +11.5).
		if ours, cot := score(MethodOurs, model, "nature"), score(MethodCoT, model, "nature"); ours < cot+8 {
			t.Errorf("%s: Ours on Nature (%.1f) should beat CoT (%.1f) by >= 8 points", model, ours, cot)
		}
	}
	// Claim 3b: Ours beats RAG on open-ended questions for GPT-3.5 (for
	// GPT-4 the two tie within noise in this substrate — RAG's open-ended
	// strength is the small-KG retrieval artifact documented in
	// EXPERIMENTS.md).
	if ours, rag := score(MethodOurs, ModelGPT35, "nature"), score(MethodRAG, ModelGPT35, "nature"); ours <= rag {
		t.Errorf("GPT-3.5: Ours on Nature (%.1f) should beat RAG (%.1f)", ours, rag)
	}
	// Claim 4: GPT-3.5 + Ours beats GPT-4 CoT on open-ended questions.
	if ours35, cot4 := score(MethodOurs, ModelGPT35, "nature"), score(MethodCoT, ModelGPT4, "nature"); ours35 <= cot4 {
		t.Errorf("GPT-3.5+Ours on Nature (%.1f) should beat GPT-4 CoT (%.1f)", ours35, cot4)
	}
	// Claim 5: ToG (QID-anchored) tops Ours on tail-heavy SimpleQuestions.
	if tog, ours := score(MethodToG, ModelGPT35, "simple"), score(MethodOurs, ModelGPT35, "simple"); tog <= ours {
		t.Errorf("ToG on SimpleQuestions (%.1f) should top Ours (%.1f)", tog, ours)
	}
}

// TestMultiSourceGains: PG&AKV must improve over CoT with BOTH KG sources
// on both SimpleQuestions and NatureQuestions (Table III's claim).
func TestMultiSourceGains(t *testing.T) {
	if testing.Short() {
		t.Skip("integration ordering test")
	}
	env, err := NewEnv(QuickEnvConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range []string{"simple", "nature"} {
		d := env.Suite.Simple
		if ds == "nature" {
			d = env.Suite.Nature
		}
		cot, err := env.Run(context.Background(), MethodCoT, ModelGPT35, d, DefaultSource(d.Name))
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range []kg.Source{kg.SourceFreebase, kg.SourceWikidata} {
			ours, err := env.Run(context.Background(), MethodOurs, ModelGPT35, d, src)
			if err != nil {
				t.Fatal(err)
			}
			if ours.Score <= cot.Score {
				t.Errorf("%s with %s KG: Ours (%.1f) should beat CoT (%.1f)",
					d.Name, src, ours.Score, cot.Score)
			}
		}
	}
}
