package bench

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/kg"
)

// Report accumulates evaluation cells with timing, for machine-readable
// experiment logs (CSV/JSON) alongside the human-readable tables.
type Report struct {
	// Title labels the report (e.g. "table2").
	Title string
	// Cells are the collected results, in run order.
	Cells []TimedCell
}

// TimedCell is a Cell plus wall-clock duration.
type TimedCell struct {
	Cell
	Elapsed time.Duration
}

// Collect runs one cell and records it with timing.
func (r *Report) Collect(ctx context.Context, e *Env, method, model string, dsName string, srcOverride ...string) error {
	var ds = e.Suite.Simple
	switch dsName {
	case "QALD":
		ds = e.Suite.QALD
	case "NatureQuestions":
		ds = e.Suite.Nature
	case "SimpleQuestions":
		ds = e.Suite.Simple
	case "TemporalQuestions":
		ds = e.Suite.Temporal
	case "AggregationQuestions":
		ds = e.Suite.Aggregation
	case "AdversarialQuestions":
		ds = e.Suite.Adversarial
	case "NoisyQuestions":
		ds = e.Suite.Noisy
	default:
		return fmt.Errorf("bench: unknown dataset %q", dsName)
	}
	src := DefaultSource(ds.Name)
	if len(srcOverride) > 0 {
		parsed, err := kg.ParseSource(srcOverride[0])
		if err != nil {
			return err
		}
		src = parsed
	}
	start := time.Now()
	cell, err := e.Run(ctx, method, model, ds, src)
	if err != nil {
		return err
	}
	r.Cells = append(r.Cells, TimedCell{Cell: cell, Elapsed: time.Since(start)})
	return nil
}

// WriteCSV emits the report as CSV with a header row.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"method", "model", "dataset", "kg_source", "score", "n", "elapsed_ms"}); err != nil {
		return fmt.Errorf("bench: csv: %w", err)
	}
	for _, c := range r.Cells {
		rec := []string{
			c.Method, c.Model, c.Dataset, c.Source.String(),
			strconv.FormatFloat(c.Score, 'f', 2, 64),
			strconv.Itoa(c.N),
			strconv.FormatInt(c.Elapsed.Milliseconds(), 10),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("bench: csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// reportJSON is the JSON wire form.
type reportJSON struct {
	Title string     `json:"title"`
	Cells []cellJSON `json:"cells"`
}

type cellJSON struct {
	Method    string  `json:"method"`
	Model     string  `json:"model"`
	Dataset   string  `json:"dataset"`
	Source    string  `json:"kg_source"`
	Score     float64 `json:"score"`
	N         int     `json:"n"`
	ElapsedMS int64   `json:"elapsed_ms"`
}

// WriteJSON emits the report as a JSON document.
func (r *Report) WriteJSON(w io.Writer) error {
	doc := reportJSON{Title: r.Title}
	for _, c := range r.Cells {
		doc.Cells = append(doc.Cells, cellJSON{
			Method: c.Method, Model: c.Model, Dataset: c.Dataset,
			Source: c.Source.String(), Score: c.Score, N: c.N,
			ElapsedMS: c.Elapsed.Milliseconds(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("bench: json: %w", err)
	}
	return nil
}
