package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/serve"
)

// PerfArtifact is one benchrun's machine-readable perf-trajectory entry:
// the accuracy cells it evaluated plus the serving collector's per-method
// cost and latency aggregates. Committed artifacts (BENCH_*.json) form a
// trajectory of how the reproduction's speed and cost move across PRs —
// unlike replay artifacts these carry real wall-clock numbers and are
// records, not gates.
type PerfArtifact struct {
	GeneratedAt string `json:"generated_at"`
	Quick       bool   `json:"quick"`
	Seed        int64  `json:"seed"`
	Workers     int    `json:"workers"`
	// Cells are the accuracy results (Table-II shape).
	Cells []PerfCell `json:"cells"`
	// Serving are the per-method serving aggregates for everything the
	// environment answered this run: token cost and wall latency
	// percentiles.
	Serving []PerfMethod `json:"serving"`
	// Load, when present, is the client-side account of a loadgen run
	// against a live server — the traffic-realistic counterpart to the
	// bench cells (cmd/loadgen emits these; benchrun artifacts omit it).
	Load *PerfLoad `json:"load,omitempty"`
	// Recall, when present, is a recall-gate run's summary: HNSW answer
	// quality and p50 speedup against the exact scan over the same
	// corpus (benchrun -experiment recall emits these).
	Recall *PerfRecall `json:"recall,omitempty"`
}

// PerfRecall is one ANN recall-gate evaluation for the perf trajectory.
type PerfRecall struct {
	Corpus         int     `json:"corpus"`
	Queries        int     `json:"queries"`
	K              int     `json:"k"`
	M              int     `json:"m"`
	EfConstruction int     `json:"ef_construction"`
	EfSearch       int     `json:"ef_search"`
	RecallAt1      float64 `json:"recall_at_1"`
	RecallAtK      float64 `json:"recall_at_k"`
	ExactP50MS     float64 `json:"exact_p50_ms"`
	ANNP50MS       float64 `json:"ann_p50_ms"`
	Speedup        float64 `json:"speedup"`
	BuildMS        int64   `json:"build_ms"`
}

// BuildRecallPerf wraps a recall-gate result as a standalone artifact
// (no accuracy cells or serving aggregates — no environment ran).
func BuildRecallPerf(pr PerfRecall, seed int64, now time.Time) PerfArtifact {
	return PerfArtifact{
		GeneratedAt: now.UTC().Format(time.RFC3339),
		Seed:        seed,
		Cells:       []PerfCell{},
		Serving:     []PerfMethod{},
		Recall:      &pr,
	}
}

// PerfLoad is one load-generation run's client-side summary: what was
// offered, what was served, what was refused, and the two latency
// populations kept apart (a healthy overload posture shows Refused far
// below Accepted).
type PerfLoad struct {
	Mode        string          `json:"mode"` // "closed" or "open"
	Clients     int             `json:"clients"`
	ZipfS       float64         `json:"zipf_s"`
	Issued      int64           `json:"issued"`
	OK          int64           `json:"ok"`
	CacheHits   int64           `json:"cache_hits"`
	Rejected    int64           `json:"rejected"`
	Errors      int64           `json:"errors"`
	ElapsedMS   int64           `json:"elapsed_ms"`
	AchievedRPS float64         `json:"achieved_rps"`
	Accepted    PerfLoadLatency `json:"accepted"`
	Refused     PerfLoadLatency `json:"refused"`
	// Nodes splits the accepted population by backing node when the run
	// targeted a pgakvlb router (loadgen -target-lb): per-node counts and
	// latency, keyed by the X-Served-By value. Absent for single-node runs.
	Nodes map[string]PerfLoadNode `json:"nodes,omitempty"`
}

// PerfLoadNode is one backing node's share of a routed load run.
type PerfLoadNode struct {
	OK        int64           `json:"ok"`
	CacheHits int64           `json:"cache_hits"`
	Latency   PerfLoadLatency `json:"latency"`
}

// PerfLoadLatency is a client-observed latency distribution.
type PerfLoadLatency struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// BuildLoadPerf assembles a perf artifact from a loadgen run: the serving
// section comes from the target server's scraped /v1/metrics method
// snapshots (the server did the work, so it owns the cost numbers), the
// load section from the client-side account. Cells stay empty — no
// accuracy was evaluated.
func BuildLoadPerf(methods []serve.MethodSnapshot, load PerfLoad, quick bool, seed int64, now time.Time) PerfArtifact {
	art := PerfArtifact{
		GeneratedAt: now.UTC().Format(time.RFC3339),
		Quick:       quick,
		Seed:        seed,
		Cells:       []PerfCell{},
		Serving:     []PerfMethod{},
		Load:        &load,
	}
	for _, m := range methods {
		art.Serving = append(art.Serving, perfMethod(m))
	}
	return art
}

// PerfCell is one accuracy cell.
type PerfCell struct {
	Method    string  `json:"method"`
	Model     string  `json:"model"`
	Dataset   string  `json:"dataset"`
	Source    string  `json:"kg_source"`
	Score     float64 `json:"score"`
	N         int     `json:"n"`
	ElapsedMS int64   `json:"elapsed_ms"`
}

// PerfMethod is one method's serving aggregate.
type PerfMethod struct {
	Method           string  `json:"method"`
	Count            int64   `json:"count"`
	Errors           int64   `json:"errors"`
	LLMCalls         int64   `json:"llm_calls"`
	PromptTokens     int64   `json:"prompt_tokens"`
	CompletionTokens int64   `json:"completion_tokens"`
	MeanMS           float64 `json:"mean_ms"`
	P50MS            float64 `json:"p50_ms"`
	P95MS            float64 `json:"p95_ms"`
}

// BuildPerf assembles the artifact from a collected report and the
// environment's metrics collector.
func BuildPerf(e *Env, r *Report, quick bool, now time.Time) PerfArtifact {
	art := PerfArtifact{
		GeneratedAt: now.UTC().Format(time.RFC3339),
		Quick:       quick,
		Seed:        e.Cfg.WorldSeed,
		Workers:     e.Cfg.Workers,
		Cells:       []PerfCell{},
		Serving:     []PerfMethod{},
	}
	for _, c := range r.Cells {
		art.Cells = append(art.Cells, PerfCell{
			Method: c.Method, Model: c.Model, Dataset: c.Dataset,
			Source: c.Source.String(), Score: c.Score, N: c.N,
			ElapsedMS: c.Elapsed.Milliseconds(),
		})
	}
	for _, m := range e.Metrics.Snapshot() {
		art.Serving = append(art.Serving, perfMethod(m))
	}
	return art
}

func perfMethod(m serve.MethodSnapshot) PerfMethod {
	return PerfMethod{
		Method:           m.Method,
		Count:            m.Count,
		Errors:           m.Errors,
		LLMCalls:         m.LLMCalls,
		PromptTokens:     m.PromptTokens,
		CompletionTokens: m.CompletionTokens,
		MeanMS:           m.Latency.MeanMS,
		P50MS:            m.Latency.P50MS,
		P95MS:            m.Latency.P95MS,
	}
}

// Write emits the artifact as indented JSON.
func (p PerfArtifact) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p); err != nil {
		return fmt.Errorf("bench: perf artifact: %w", err)
	}
	return nil
}
