package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestTablePrinters runs each experiment printer on the tiny environment
// and asserts the output is well-formed (headers, paper references, and
// per-row numbers present).
func TestTablePrinters(t *testing.T) {
	env := tinyEnv(t)

	t.Run("table2", func(t *testing.T) {
		var buf bytes.Buffer
		if err := Table2(context.Background(), env, &buf); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		for _, want := range []string{"Table II", "GPT-3.5", "GPT-4", "Ours", "paper"} {
			if !strings.Contains(out, want) {
				t.Errorf("table2 output lacks %q", want)
			}
		}
		// Eleven method rows (ToG skips Nature but still has a row).
		if rows := strings.Count(out, "paper"); rows < 12 {
			t.Errorf("table2 shows %d paper references, want many", rows)
		}
	})

	t.Run("table3", func(t *testing.T) {
		var buf bytes.Buffer
		if err := Table3(context.Background(), env, &buf); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		for _, want := range []string{"Table III", "Ours/freebase", "Ours/wikidata", "gain vs CoT"} {
			if !strings.Contains(out, want) {
				t.Errorf("table3 output lacks %q", want)
			}
		}
	})

	t.Run("table4and5", func(t *testing.T) {
		var buf bytes.Buffer
		if err := Table4(context.Background(), env, &buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "w/ Gp") || !strings.Contains(buf.String(), "w/ Gf") {
			t.Errorf("table4 output malformed:\n%s", buf.String())
		}
		buf.Reset()
		if err := Table5(context.Background(), env, &buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "Table V") {
			t.Errorf("table5 output malformed:\n%s", buf.String())
		}
	})
}

func TestSweepsPrinter(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps rebuild the environment repeatedly")
	}
	env := tinyEnv(t)
	var buf bytes.Buffer
	if err := Sweeps(context.Background(), env, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"confidence threshold", "retrieval depth", "pruning strategy",
		"verification context order", "paper setting",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("sweeps output lacks %q", want)
		}
	}
	if strings.Count(out, "paper setting") != 4 {
		t.Errorf("sweeps should mark 4 paper settings:\n%s", out)
	}
}
