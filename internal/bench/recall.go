package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/embed"
	"repro/internal/kg"
	"repro/internal/vecstore"
)

// Recall experiment: build an HNSW graph and the exact sharded scan over
// the same synthetic corpus, probe both with the same queries, and report
// recall@1 / recall@k plus the p50 latency ratio. Unlike the accuracy
// tables this experiment gates: when a floor or minimum speedup is set
// and missed, RunRecall returns an error so CI fails the run. The graph
// is probed without its exact-fallback hatch, so a deliberately starved
// beam (the CI trip-wire run) loses recall instead of being rescued.

// RecallOptions parameterise one recall-gate run.
type RecallOptions struct {
	// N is the corpus size; Queries the number of probes; K the depth.
	N       int
	Queries int
	K       int
	// HNSW build/search parameters (zero = vecstore defaults).
	M              int
	EfConstruction int
	EfSearch       int
	Seed           int64
	// Floor is the minimum acceptable recall@K and MinSpeedup the
	// minimum exact/graph p50 ratio; zero disables each gate.
	Floor      float64
	MinSpeedup float64
}

// DefaultRecallOptions is the CI-gate configuration: a corpus large
// enough that the sublinear graph separates clearly from the linear scan
// even on small CI boxes, with the acceptance thresholds from the issue.
func DefaultRecallOptions() RecallOptions {
	return RecallOptions{
		N:              100000,
		Queries:        200,
		K:              10,
		M:              vecstore.DefaultHNSWM,
		EfConstruction: vecstore.DefaultHNSWEfConstruction,
		EfSearch:       vecstore.DefaultHNSWEfSearch,
		Seed:           vecstore.DefaultHNSWSeed,
		Floor:          0.95,
		MinSpeedup:     5,
	}
}

// recallWords are the pools the synthetic corpus draws from. Realism is
// not the point — variety is: enough distinct tokens that the embedding
// space has structure (clusters around shared words) instead of
// degenerating into near-orthogonal noise.
var (
	recallAdjs = []string{
		"crimson", "hollow", "ancient", "silent", "northern", "gilded",
		"frozen", "verdant", "obsidian", "amber", "restless", "pale",
		"sunken", "howling", "marble", "iron",
	}
	recallNouns = []string{
		"reservoir", "observatory", "archive", "foundry", "basin",
		"expedition", "dynasty", "glacier", "aqueduct", "citadel",
		"meridian", "plateau", "garrison", "orchard", "causeway", "strait",
	}
	recallRels = []string{
		"located in", "bordered by", "discovered by", "named after",
		"flows into", "classified as", "governed by", "measured against",
		"connected to", "derived from", "succeeded by", "maintained by",
	}
	recallPlaces = []string{
		"Kareth Province", "the Veldan Coast", "Upper Morvane",
		"the Tashir Valley", "Old Quarra", "the Ilmen Reach",
		"Port Senna", "the Dravik Steppe", "Lake Othune", "Cape Virell",
		"the Sorrel Highlands", "New Calden",
	}
)

// RecallCorpus generates a deterministic synthetic corpus of n triples:
// adjective–noun entities related to shared places, so queries about an
// entity have a dense neighbourhood of plausible near-misses.
func RecallCorpus(n int, seed int64) []kg.Triple {
	rng := rand.New(rand.NewSource(seed))
	triples := make([]kg.Triple, n)
	for i := range triples {
		subj := fmt.Sprintf("the %s %s %d",
			recallAdjs[rng.Intn(len(recallAdjs))],
			recallNouns[rng.Intn(len(recallNouns))], i)
		var obj string
		if rng.Intn(2) == 0 {
			obj = recallPlaces[rng.Intn(len(recallPlaces))]
		} else {
			obj = fmt.Sprintf("the %s %s %d",
				recallAdjs[rng.Intn(len(recallAdjs))],
				recallNouns[rng.Intn(len(recallNouns))], rng.Intn(n))
		}
		triples[i] = kg.Triple{
			Subject:  subj,
			Relation: recallRels[rng.Intn(len(recallRels))],
			Object:   obj,
			Source:   kg.SourceWikidata,
		}
	}
	return triples
}

// RecallQueries derives q probe strings from the corpus: each takes a
// random triple's subject and relation (the shape of the pipeline's
// pseudo-triple queries) and appends a random place, so the exact top-k
// is a genuine nearest-neighbour set rather than a single perfect match.
func RecallQueries(corpus []kg.Triple, q int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed + 1))
	out := make([]string, q)
	for i := range out {
		t := corpus[rng.Intn(len(corpus))]
		out[i] = fmt.Sprintf("%s %s %s", t.Subject, t.Relation,
			recallPlaces[rng.Intn(len(recallPlaces))])
	}
	return out
}

// RunRecall executes one recall-gate run: build both indexes, evaluate,
// print the report, and enforce the configured thresholds. The returned
// PerfRecall is the artifact section regardless of gate outcome.
func RunRecall(opts RecallOptions, w io.Writer) (PerfRecall, error) {
	def := DefaultRecallOptions()
	if opts.N <= 0 {
		opts.N = def.N
	}
	if opts.Queries <= 0 {
		opts.Queries = def.Queries
	}
	if opts.K <= 0 {
		opts.K = def.K
	}
	cfg := vecstore.HNSWConfig{
		M:              opts.M,
		EfConstruction: opts.EfConstruction,
		EfSearch:       opts.EfSearch,
		Seed:           opts.Seed,
	}

	fmt.Fprintf(w, "recall gate: corpus=%d queries=%d k=%d\n", opts.N, opts.Queries, opts.K)
	corpus := RecallCorpus(opts.N, opts.Seed)
	queries := RecallQueries(corpus, opts.Queries, opts.Seed)

	enc := embed.NewEncoder()
	t0 := time.Now()
	exact := vecstore.BuildSharded(enc, corpus, 0)
	exactBuild := time.Since(t0)
	t1 := time.Now()
	graph := vecstore.BuildHNSW(enc, corpus, cfg)
	graphBuild := time.Since(t1)
	built := graph.Config()
	fmt.Fprintf(w, "built exact scan (%d shards) in %v, hnsw (M=%d efC=%d) in %v\n",
		exact.Shards(), exactBuild.Round(time.Millisecond),
		built.M, built.EfConstruction, graphBuild.Round(time.Millisecond))

	res := vecstore.EvalRecall(graph, exact, queries, opts.K, built.EfSearch)
	fmt.Fprintf(w, "recall@1=%.3f recall@%d=%.3f  exact p50=%v  hnsw p50=%v  speedup=%.1fx (ef=%d)\n",
		res.RecallAt1, opts.K, res.RecallAtK,
		res.ExactP50.Round(time.Microsecond), res.ANNP50.Round(time.Microsecond),
		res.Speedup, built.EfSearch)

	pr := PerfRecall{
		Corpus:         res.Corpus,
		Queries:        res.Queries,
		K:              res.K,
		M:              built.M,
		EfConstruction: built.EfConstruction,
		EfSearch:       built.EfSearch,
		RecallAt1:      res.RecallAt1,
		RecallAtK:      res.RecallAtK,
		ExactP50MS:     float64(res.ExactP50) / float64(time.Millisecond),
		ANNP50MS:       float64(res.ANNP50) / float64(time.Millisecond),
		Speedup:        res.Speedup,
		BuildMS:        graphBuild.Milliseconds(),
	}
	if opts.Floor > 0 && res.RecallAtK < opts.Floor {
		return pr, fmt.Errorf("recall gate: recall@%d %.3f below floor %.2f", opts.K, res.RecallAtK, opts.Floor)
	}
	if opts.MinSpeedup > 0 && res.Speedup < opts.MinSpeedup {
		return pr, fmt.Errorf("recall gate: speedup %.1fx below required %.1fx", res.Speedup, opts.MinSpeedup)
	}
	fmt.Fprintln(w, "recall gate: PASS")
	return pr, nil
}
