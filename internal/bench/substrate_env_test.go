package bench

import (
	"testing"

	"repro/internal/kg"
)

// quickEnv is a tiny shared environment for substrate plumbing tests.
func quickEnv(t *testing.T) *Env {
	t.Helper()
	cfg := QuickEnvConfig()
	cfg.Data.SimpleN = 4
	cfg.Data.QALDN = 4
	cfg.Data.NatureN = 2
	env, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// TestUnknownSourceIsErrorNotPanic: a source with no substrate must fail
// with an error from both Answerer and Pipeline — a nil *Manager stored
// into the Substrate interface field would pass the registry's nil check
// and panic at first Resolve instead.
func TestUnknownSourceIsErrorNotPanic(t *testing.T) {
	env := quickEnv(t)
	if _, err := env.Answerer(MethodOurs, ModelGPT35, kg.SourceUnknown); err == nil {
		t.Error("Answerer accepted a source with no substrate")
	}
	if _, err := env.Pipeline(ModelGPT35, kg.SourceUnknown); err == nil {
		t.Error("Pipeline accepted a source with no substrate")
	}
}

// TestPipelineCacheFollowsEpoch: Env.Pipeline hands back the cached
// pipeline while the snapshot is unchanged, rebuilds it after a swap, and
// keeps the map bounded at one entry per (model, source).
func TestPipelineCacheFollowsEpoch(t *testing.T) {
	env := quickEnv(t)
	p1, err := env.Pipeline(ModelGPT35, kg.SourceWikidata)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := env.Pipeline(ModelGPT35, kg.SourceWikidata)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("same epoch should reuse the cached pipeline")
	}

	if _, err := env.Substrates[kg.SourceWikidata].Ingest([]kg.Triple{
		{Subject: "Zorblax", Relation: "prime directive", Object: "Flumox"},
	}); err != nil {
		t.Fatal(err)
	}
	p3, err := env.Pipeline(ModelGPT35, kg.SourceWikidata)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("epoch bump should rebuild the pipeline over the new snapshot")
	}
	env.pipeMu.Lock()
	n := len(env.pipelines)
	env.pipeMu.Unlock()
	if n != 1 {
		t.Errorf("pipeline cache holds %d entries, want 1 (old epochs must be replaced)", n)
	}
}
