package world

import (
	"encoding/json"
	"fmt"
	"io"
)

// entityJSON is the JSON wire form of an entity.
type entityJSON struct {
	ID   int    `json:"id"`
	Kind string `json:"kind"`
	Name string `json:"name"`
}

// factJSON is the JSON wire form of a fact.
type factJSON struct {
	Subject int    `json:"s"`
	Rel     string `json:"r"`
	Object  int    `json:"o"` // entity ID, -1 for literals
	Literal string `json:"lit,omitempty"`
	Ord     int    `json:"ord,omitempty"`
}

// worldJSON is the JSON wire form of a world.
type worldJSON struct {
	Entities []entityJSON `json:"entities"`
	Facts    []factJSON   `json:"facts"`
}

// kindNames maps kinds to their stable wire names.
var kindNames = func() map[Kind]string {
	m := map[Kind]string{}
	for k := Kind(0); k < kindCount; k++ {
		m[k] = k.String()
	}
	return m
}()

var kindByName = func() map[string]Kind {
	m := map[string]Kind{}
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// WriteJSON serialises the world. Together with ReadJSON it lets tools
// pin a world to disk or hand-author custom worlds for the pipeline.
func (w *World) WriteJSON(out io.Writer) error {
	doc := worldJSON{}
	for _, e := range w.Entities {
		doc.Entities = append(doc.Entities, entityJSON{ID: e.ID, Kind: kindNames[e.Kind], Name: e.Name})
	}
	for _, f := range w.Facts {
		doc.Facts = append(doc.Facts, factJSON{
			Subject: f.Subject, Rel: string(f.Rel), Object: f.Object,
			Literal: f.Literal, Ord: f.Ord,
		})
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", " ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("world: write: %w", err)
	}
	return nil
}

// ReadJSON loads a world written by WriteJSON (or hand-authored in the
// same format) and rebuilds the indexes. Entity IDs must be dense and in
// order; facts must reference valid entities.
func ReadJSON(in io.Reader) (*World, error) {
	var doc worldJSON
	if err := json.NewDecoder(in).Decode(&doc); err != nil {
		return nil, fmt.Errorf("world: read: %w", err)
	}
	w := &World{}
	for i, e := range doc.Entities {
		if e.ID != i {
			return nil, fmt.Errorf("world: entity %d has non-dense ID %d", i, e.ID)
		}
		kind, ok := kindByName[e.Kind]
		if !ok {
			return nil, fmt.Errorf("world: entity %d has unknown kind %q", i, e.Kind)
		}
		if e.Name == "" {
			return nil, fmt.Errorf("world: entity %d has empty name", i)
		}
		w.Entities = append(w.Entities, Entity{ID: e.ID, Kind: kind, Name: e.Name})
	}
	for i, f := range doc.Facts {
		if f.Subject < 0 || f.Subject >= len(w.Entities) {
			return nil, fmt.Errorf("world: fact %d has bad subject %d", i, f.Subject)
		}
		if f.Object >= len(w.Entities) {
			return nil, fmt.Errorf("world: fact %d has bad object %d", i, f.Object)
		}
		if f.Object < 0 && f.Literal == "" {
			return nil, fmt.Errorf("world: fact %d has neither object nor literal", i)
		}
		w.Facts = append(w.Facts, Fact{
			ID: i, Subject: f.Subject, Rel: RelKey(f.Rel),
			Object: f.Object, Literal: f.Literal, Ord: f.Ord,
		})
		if f.Object < 0 {
			w.Facts[i].Object = -1
		}
	}
	w.index()
	return w, nil
}
