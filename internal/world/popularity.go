package world

// Popularity returns a deterministic prominence score in (0, 1] for an
// entity: earlier-created entities within each kind are more prominent,
// following the long-tail structure of real KGs (a few head entities carry
// most mentions). The simulated LLM's chance of knowing a fact grows with
// the popularity of the fact's subject, which is what makes a
// SimpleQuestions-style uniform sample (tail-heavy) harder for parametric
// recall than a QALD-style head-entity sample — the inversion visible in
// the paper's Table II (IO: 20.2 on SimpleQuestions vs 38.7 on QALD-10).
func (w *World) Popularity(entityID int) float64 {
	if entityID < 0 || entityID >= len(w.Entities) {
		return 0
	}
	e := w.Entities[entityID]
	kindIDs := w.byKind[e.Kind]
	if len(kindIDs) == 0 {
		return 0
	}
	rank := 0
	for i, id := range kindIDs {
		if id == entityID {
			rank = i
			break
		}
	}
	// Zipf-flavoured decay: head entities near 1, tail entities near 0.15.
	frac := float64(rank) / float64(len(kindIDs))
	return 1.0 - 0.85*frac
}

// FactPopularity scores a fact by its subject's prominence.
func (w *World) FactPopularity(f Fact) float64 {
	return w.Popularity(f.Subject)
}

// HeadEntities returns the most prominent frac (0..1] of entities of a
// kind, in creation order. Dataset builders use it to sample QALD-style
// head-entity questions.
func (w *World) HeadEntities(k Kind, frac float64) []int {
	ids := w.byKind[k]
	n := int(float64(len(ids)) * frac)
	if n < 1 {
		n = 1
	}
	if n > len(ids) {
		n = len(ids)
	}
	out := make([]int, n)
	copy(out, ids[:n])
	return out
}
